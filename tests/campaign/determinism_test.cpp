// Campaign determinism: the parallel mutation-campaign engine must produce
// a report identical to the serial path (excluding timing fields) at any
// thread count, and the campaign layer must merge item results in task-id
// order with per-item failure capture.
#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "core/flow.h"

namespace xlv::campaign {
namespace {

using insertion::SensorKind;

void expectSameReport(const analysis::AnalysisReport& a, const analysis::AnalysisReport& b,
                      const char* what) {
  ASSERT_EQ(a.results.size(), b.results.size()) << what;
  EXPECT_EQ(a.cyclesPerRun, b.cyclesPerRun) << what;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const auto& x = a.results[i];
    const auto& y = b.results[i];
    EXPECT_EQ(x.id, y.id) << what << " mutant " << i;
    EXPECT_EQ(x.endpoint, y.endpoint) << what << " mutant " << i;
    EXPECT_EQ(x.kind, y.kind) << what << " mutant " << i;
    EXPECT_EQ(x.deltaTicks, y.deltaTicks) << what << " mutant " << i;
    EXPECT_EQ(x.killed, y.killed) << what << " mutant " << i;
    EXPECT_EQ(x.detected, y.detected) << what << " mutant " << i;
    EXPECT_EQ(x.errorRisen, y.errorRisen) << what << " mutant " << i;
    EXPECT_EQ(x.corrected, y.corrected) << what << " mutant " << i;
    EXPECT_EQ(x.correctionChecked, y.correctionChecked) << what << " mutant " << i;
    EXPECT_EQ(x.measuredDelay, y.measuredDelay) << what << " mutant " << i;
  }
}

class ThreadCountP : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountP, DspRazorCampaignIsThreadCountInvariant) {
  ips::CaseStudy cs = ips::buildDspCase();
  core::FlowOptions opts;
  opts.sensorKind = SensorKind::Razor;
  opts.testbenchCycles = 120;

  core::FlowReport flow;
  core::stageElaborate(cs, opts, flow);
  core::stageInsertion(cs, opts, flow);
  core::stageInjection(cs, opts, flow);
  ASSERT_GT(flow.mutantSpecs.size(), 1u);

  analysis::Testbench tb = cs.testbench;
  tb.cycles = core::flowCycles(cs, opts);

  auto analyzeAt = [&](int threads) {
    analysis::AnalysisConfig acfg;
    acfg.hfRatio = flow.hfRatio;
    acfg.sensorKind = opts.sensorKind;
    acfg.threads = threads;
    return analysis::analyzeMutations<hdt::FourState>(flow.augmentedDesign, flow.injected,
                                                      flow.sensors, tb, acfg);
  };

  const analysis::AnalysisReport serial = analyzeAt(1);
  EXPECT_EQ(1, serial.threadsUsed);
  EXPECT_DOUBLE_EQ(100.0, serial.killedPct());

  const analysis::AnalysisReport parallel = analyzeAt(GetParam());
  expectSameReport(serial, parallel, "DSP Razor");
  EXPECT_GT(parallel.simSeconds, 0.0);
  EXPECT_GT(parallel.wallSeconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountP, ::testing::Values(1, 2, 8));

TEST(Campaign, CounterCampaignIsThreadCountInvariant) {
  // The dual-clock scheduler exercises the DeltaDelay phases; make sure the
  // shared-layout session cloning preserves them too.
  ips::CaseStudy cs = ips::buildDspCase();
  core::FlowOptions opts;
  opts.sensorKind = SensorKind::Counter;
  opts.testbenchCycles = 100;

  core::FlowReport flow;
  core::stageElaborate(cs, opts, flow);
  core::stageInsertion(cs, opts, flow);
  core::stageInjection(cs, opts, flow);

  analysis::Testbench tb = cs.testbench;
  tb.cycles = core::flowCycles(cs, opts);
  analysis::AnalysisConfig acfg;
  acfg.hfRatio = flow.hfRatio;
  acfg.sensorKind = opts.sensorKind;

  acfg.threads = 1;
  const analysis::AnalysisReport serial = analysis::analyzeMutations<hdt::FourState>(
      flow.augmentedDesign, flow.injected, flow.sensors, tb, acfg);
  acfg.threads = 4;
  const analysis::AnalysisReport parallel = analysis::analyzeMutations<hdt::FourState>(
      flow.augmentedDesign, flow.injected, flow.sensors, tb, acfg);
  expectSameReport(serial, parallel, "DSP Counter");
}

TEST(Campaign, MergesItemsInTaskIdOrder) {
  core::FlowOptions base;
  base.testbenchCycles = 60;
  base.measureRtl = false;
  base.measureOptimized = false;

  CampaignSpec spec;
  spec.name = "order-test";
  spec.executor = ExecutorConfig{4, 0};
  std::vector<ips::CaseStudy> cases = {ips::buildFilterCase(), ips::buildDspCase()};
  for (const auto& cs : cases) {
    CampaignItem item;
    item.caseStudy = cs;
    item.options = base;
    item.options.analysisThreads = 1;
    spec.items.push_back(std::move(item));
  }

  const CampaignResult r = runCampaign(spec);
  ASSERT_EQ(2u, r.items.size());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(0u, r.items[0].taskId);
  EXPECT_EQ(1u, r.items[1].taskId);
  EXPECT_EQ(cases[0].name, r.items[0].report.ipName);
  EXPECT_EQ(cases[1].name, r.items[1].report.ipName);
  EXPECT_NE(nullptr, r.find(cases[0].name + "/razor"));
  EXPECT_GE(r.simSeconds, 0.0);
  EXPECT_GT(r.wallSeconds, 0.0);
}

TEST(Campaign, CapturesItemFailuresWithoutAbortingTheBatch) {
  CampaignSpec spec;
  spec.executor = ExecutorConfig{2, 0};

  CampaignItem good;
  good.caseStudy = ips::buildFilterCase();
  good.options.testbenchCycles = 40;
  good.options.measureRtl = false;
  good.options.measureOptimized = false;
  good.options.runMutationAnalysis = false;

  CampaignItem bad = good;
  bad.caseStudy.module = nullptr;  // elaboration will throw
  bad.label = "broken";

  spec.items.push_back(bad);
  spec.items.push_back(good);

  const CampaignResult r = runCampaign(spec);
  ASSERT_EQ(2u, r.items.size());
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.items[0].error.empty());
  EXPECT_TRUE(r.items[1].error.empty());
  EXPECT_EQ(ips::buildFilterCase().name, r.items[1].report.ipName);
}

TEST(Campaign, FullMatrixSpansCasesTimesKinds) {
  std::vector<ips::CaseStudy> cases = {ips::buildFilterCase(), ips::buildDspCase()};
  core::FlowOptions base;
  base.analysisThreads = 0;
  const CampaignSpec spec = fullMatrixCampaign(cases, base, ExecutorConfig{4, 0});
  ASSERT_EQ(4u, spec.items.size());
  EXPECT_EQ(SensorKind::Razor, spec.items[0].options.sensorKind);
  EXPECT_EQ(SensorKind::Counter, spec.items[1].options.sensorKind);
  // The outer pool is parallel, so the inner analysis must be serialized.
  for (const auto& item : spec.items) EXPECT_EQ(1, item.options.analysisThreads);
}

TEST(Flow, MakeDriverOnlyTestbenchWorksEndToEnd) {
  // A stateful testbench per the Testbench contract: no shared drive at
  // all, only a per-session factory. Every engine of the flow (RTL timing,
  // TLM timing, injected model, mutation campaign) must still run.
  ips::CaseStudy cs = ips::buildFilterCase();
  const analysis::DriveFn pure = cs.testbench.drive;
  cs.testbench.drive = nullptr;
  cs.testbench.makeDriver = [pure](std::uint64_t) { return pure; };

  core::FlowOptions opts;
  opts.testbenchCycles = 120;
  opts.analysisThreads = 2;
  const core::FlowReport r = core::runFlow(cs, opts);
  EXPECT_DOUBLE_EQ(100.0, r.analysis.killedPct());
  EXPECT_GT(r.timings.rtlSeconds, 0.0);
  EXPECT_GT(r.timings.tlmSeconds, 0.0);
}

TEST(Flow, AnalysisThreadsOptionFlowsThrough) {
  ips::CaseStudy cs = ips::buildFilterCase();
  core::FlowOptions opts;
  opts.testbenchCycles = 120;  // budget for every mutant to propagate (cf. flow_test)
  opts.measureRtl = false;
  opts.measureOptimized = false;
  opts.analysisThreads = 2;
  const core::FlowReport r = core::runFlow(cs, opts);
  EXPECT_GE(r.analysis.threadsUsed, 1);
  EXPECT_LE(r.analysis.threadsUsed, 2);
  EXPECT_DOUBLE_EQ(100.0, r.analysis.killedPct());
}

}  // namespace
}  // namespace xlv::campaign
