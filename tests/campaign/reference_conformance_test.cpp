// Divergence-driven mutant simulation conformance: the fast path
// (checkpoint fast-forward + verdict-saturation early exit,
// analysis/mutation_analysis.h) must be sameResults-bit-identical to the
// XLV_REFERENCE_SIM=1 full-replay path — across thread counts, across
// process-level shards, with warm artifact/mutant caches, and for stateful
// (makeDriver) testbenches whose drivers are replayed through the skipped
// prefix. Only the cycle ledgers may differ: the reference path skips
// nothing, the fast path must skip something on these workloads.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/serialize.h"
#include "campaign/shard.h"
#include "core/flow.h"
#include "ips/case_study.h"
#include "util/artifact_store.h"

namespace xlv::campaign {
namespace {

namespace fs = std::filesystem;

void freshProcess() { core::clearProcessCaches(); }

/// Scoped XLV_REFERENCE_SIM override; restores the previous value so a
/// failing test cannot leak reference mode into the rest of the suite.
class ReferenceModeGuard {
 public:
  explicit ReferenceModeGuard(bool enable) {
    const char* prev = std::getenv("XLV_REFERENCE_SIM");
    had_ = prev != nullptr;
    if (had_) prev_ = prev;
    if (enable) {
      ::setenv("XLV_REFERENCE_SIM", "1", 1);
    } else {
      ::unsetenv("XLV_REFERENCE_SIM");
    }
  }
  ~ReferenceModeGuard() {
    if (had_) {
      ::setenv("XLV_REFERENCE_SIM", prev_.c_str(), 1);
    } else {
      ::unsetenv("XLV_REFERENCE_SIM");
    }
  }

 private:
  bool had_ = false;
  std::string prev_;
};

CampaignSpec quickSmokeSpec(int threads = 1) {
  CampaignSpec spec = builtinCampaignSpec("smoke");
  for (auto& item : spec.items) item.options.testbenchCycles = 60;
  spec.executor.threads = threads;
  return spec;
}

CampaignResult runReference(const CampaignSpec& spec) {
  ReferenceModeGuard guard(true);
  freshProcess();
  return runCampaign(spec);
}

CampaignResult runFast(const CampaignSpec& spec) {
  ReferenceModeGuard guard(false);
  freshProcess();
  return runCampaign(spec);
}

TEST(ReferenceConformance, FastPathMatchesReferenceAcrossThreadCounts) {
  const CampaignResult reference = runReference(quickSmokeSpec());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(0u, reference.cyclesSkipped);
  EXPECT_GT(reference.cyclesSimulated, 0u);

  for (int threads : {1, 2, 8}) {
    const CampaignResult fast = runFast(quickSmokeSpec(threads));
    ASSERT_TRUE(fast.ok());
    EXPECT_TRUE(reference.sameResults(fast))
        << "fast path diverged from full replay at threads=" << threads;
    EXPECT_GT(fast.cyclesSkipped, 0u)
        << "fast path skipped nothing — fast-forward/early-exit silently off?";
    EXPECT_LT(fast.cyclesSimulated, reference.cyclesSimulated);
    // simulated + skipped covers every per-mutant cycle; the fast sum can
    // only exceed the reference total by the once-per-item checkpoint
    // recording runs (charged to cyclesSimulated, never to cyclesSkipped).
    EXPECT_GE(fast.cyclesSimulated + fast.cyclesSkipped,
              reference.cyclesSimulated + reference.cyclesSkipped);
  }
}

TEST(ReferenceConformance, CycleLedgerIsThreadCountInvariantWithoutResultSharing) {
  // With the cross-item mutant-result cache ON, which item's task performs
  // a shared build — and therefore whether that item's lazy checkpoint
  // recording fires — depends on scheduling, so only the RESULTS are
  // thread-count invariant (like simSeconds, the ledger is work
  // accounting). With result sharing off, every item simulates every
  // mutant and the cycle ledger must be exactly reproducible.
  auto spec = [] {
    CampaignSpec s = quickSmokeSpec();
    for (auto& item : s.items) {
      item.options.useGoldenCache = false;
      item.options.useMutantCache = false;
    }
    return s;
  };
  CampaignSpec serialSpec = spec();
  const CampaignResult serial = runFast(serialSpec);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial.cyclesSkipped, 0u);
  for (int threads : {2, 8}) {
    CampaignSpec parallelSpec = spec();
    parallelSpec.executor.threads = threads;
    const CampaignResult parallel = runFast(parallelSpec);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial.cyclesSimulated, parallel.cyclesSimulated) << "threads=" << threads;
    EXPECT_EQ(serial.cyclesSkipped, parallel.cyclesSkipped) << "threads=" << threads;
  }
}

TEST(ReferenceConformance, ThreeWayShardedFastPathMatchesReference) {
  const CampaignSpec spec = quickSmokeSpec();
  const CampaignResult reference = runReference(spec);
  ASSERT_TRUE(reference.ok());

  // Each shard runs like a separate worker process: cold in-memory caches,
  // spec/plan/output pushed through the wire codecs.
  const ShardPlan plan = planShards(spec, ShardPlanOptions{3, 0, {}});
  const std::string specWire = encodeCampaignSpec(spec);
  const std::string planWire = encodeShardPlan(plan);
  std::vector<ShardOutput> outputs;
  {
    ReferenceModeGuard guard(false);
    for (int s = 0; s < plan.shardCount(); ++s) {
      freshProcess();
      outputs.push_back(decodeShardOutput(encodeShardOutput(
          runShard(decodeCampaignSpec(specWire), decodeShardPlan(planWire), s))));
    }
  }
  freshProcess();
  const CampaignResult merged = mergeShards(spec, outputs);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(reference.sameResults(merged));
  EXPECT_GT(merged.cyclesSkipped, 0u);
  EXPECT_LT(merged.cyclesSimulated, reference.cyclesSimulated);
}

TEST(ReferenceConformance, WarmMutantCacheMatchesReferenceWithZeroSimulation) {
  const fs::path dir = fs::temp_directory_path() /
                       ("xlv-refconf-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  const CampaignSpec spec = quickSmokeSpec();
  const CampaignResult reference = runReference(spec);
  ASSERT_TRUE(reference.ok());

  util::configureProcessArtifactStore(util::ArtifactStoreConfig{dir.string(), 0});
  const CampaignResult cold = runFast(spec);
  const CampaignResult warm = runFast(spec);  // fresh memory caches, warm store
  util::configureProcessArtifactStore(std::nullopt);
  freshProcess();
  std::error_code ec;
  fs::remove_all(dir, ec);

  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(reference.sameResults(cold));
  EXPECT_TRUE(reference.sameResults(warm));
  EXPECT_GT(warm.mutantCacheHits, 0);
  // Every mutant came from the store, so no co-simulation ran at all: the
  // ledgers are empty — including the lazy checkpoint recording, which must
  // not fire for a campaign that simulates nothing.
  EXPECT_EQ(0u, warm.cyclesSimulated);
  EXPECT_EQ(0u, warm.cyclesSkipped);
}

TEST(ReferenceConformance, StatefulTestbenchDriverReplayMatchesReference) {
  // The handshake case study drives the DUT from a per-task protocol-FSM
  // driver (Testbench::makeDriver): the fast path must replay the driver
  // through the fast-forwarded prefix so its state matches the restored
  // model. Both sensor kinds, flow level.
  for (insertion::SensorKind kind :
       {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
    core::FlowOptions opts;
    opts.sensorKind = kind;
    opts.testbenchCycles = 96;
    opts.measureRtl = false;
    opts.measureOptimized = false;

    core::FlowReport fast, reference;
    {
      ReferenceModeGuard guard(false);
      freshProcess();
      fast = core::runFlow(ips::buildHandshakeCase(), opts);
    }
    {
      ReferenceModeGuard guard(true);
      freshProcess();
      reference = core::runFlow(ips::buildHandshakeCase(), opts);
    }
    EXPECT_TRUE(fast.analysis.sameResults(reference.analysis))
        << "stateful-driver fast path diverged (" << insertion::sensorKindName(kind)
        << ")";
    EXPECT_EQ(0u, reference.analysis.cyclesSkipped);
    // No cycle-saving claim here: on a tiny workload the once-per-campaign
    // checkpoint recording can cost more than the prefix skips save. The
    // property under test is bit-identity with a stateful driver.
  }
}

}  // namespace
}  // namespace xlv::campaign
