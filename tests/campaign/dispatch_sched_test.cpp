// Deterministic unit tests of the dispatcher's scheduling layer
// (campaign/dispatch.h): the work-stealing TaskQueue under seeded
// adversarial weights, the frame transport, and the worker-count
// resolution. No processes are spawned here — the queue is pure state, so
// every property is checked by direct simulation (the daemon end-to-end
// paths live in dispatch_fault_test.cpp).
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/dispatch.h"
#include "campaign/serialize.h"
#include "util/codec.h"
#include "util/subprocess.h"

namespace xlv::campaign {
namespace {

/// Adversarial unit plan: one 100x-heavy fragment buried mid-list among
/// many tiny units — the shape that wrecks a static weight balance when
/// the heavy unit lands late in a shard.
DispatchUnitPlan adversarialPlan(std::size_t tiny, std::uint64_t heavyWeight) {
  DispatchUnitPlan plan;
  plan.specFnv = 0x5EED;
  for (std::size_t i = 0; i < tiny + 1; ++i) {
    plan.units.push_back(ShardUnit{i, 0, 0});
    plan.weights.push_back(i == tiny / 2 ? heavyWeight : 1);
  }
  return plan;
}

struct SimEvent {
  std::uint64_t time = 0;
  std::size_t worker = 0;
  std::size_t task = 0;
  bool operator==(const SimEvent&) const = default;
};

struct SimRun {
  std::vector<SimEvent> claims;   ///< in claim order
  std::uint64_t makespan = 0;
  std::uint64_t idleWhilePending = 0;  ///< worker-steps idle with work queued
};

/// Discrete-event simulation of the dispatcher's claim loop: each worker
/// runs its claimed task for exactly `weight` ticks, then steals the next.
/// Deterministic by construction — ties go to the lower worker index.
SimRun simulate(TaskQueue& queue, std::size_t workers) {
  SimRun run;
  std::vector<std::uint64_t> freeAt(workers, 0);
  std::vector<bool> busy(workers, false);
  std::vector<std::size_t> taskOf(workers, 0);
  std::uint64_t now = 0;
  while (!queue.done()) {
    for (std::size_t w = 0; w < workers; ++w) {
      if (busy[w] || !queue.hasPending()) continue;
      const DispatchTask& t = queue.claim();
      run.claims.push_back(SimEvent{now, w, t.index});
      busy[w] = true;
      taskOf[w] = t.index;
      freeAt[w] = now + t.weight;
    }
    // A worker idle at this instant while the queue still has work would be
    // a scheduling hole; the claim loop above makes it impossible, and the
    // counter proves it stayed zero.
    for (std::size_t w = 0; w < workers; ++w) {
      if (!busy[w] && queue.hasPending()) ++run.idleWhilePending;
    }
    std::uint64_t nextFree = 0;
    bool any = false;
    for (std::size_t w = 0; w < workers; ++w) {
      if (busy[w] && (!any || freeAt[w] < nextFree)) {
        nextFree = freeAt[w];
        any = true;
      }
    }
    if (!any) break;  // nothing running and nothing pending: queue must be done
    now = nextFree;
    for (std::size_t w = 0; w < workers; ++w) {
      if (busy[w] && freeAt[w] == now) {
        busy[w] = false;
        queue.complete(taskOf[w]);
      }
    }
    run.makespan = now;
  }
  return run;
}

TEST(DispatchSched, QueueOrdersHeaviestFirst) {
  const DispatchUnitPlan plan = adversarialPlan(12, 100);
  TaskQueue queue(plan);
  ASSERT_EQ(queue.taskCount(), 13u);
  // The 100x fragment is claimed FIRST despite sitting mid-list; ties
  // resolve by ascending index.
  EXPECT_EQ(queue.claim().index, 6u);
  EXPECT_EQ(queue.claim().index, 0u);
  EXPECT_EQ(queue.claim().index, 1u);
}

TEST(DispatchSched, WorkStealingKeepsAllWorkersBusyAcrossPoolSizes) {
  for (const std::size_t workers : {2u, 3u, 5u}) {
    const DispatchUnitPlan plan = adversarialPlan(40, 100);
    TaskQueue queue(plan);
    const SimRun run = simulate(queue, workers);
    EXPECT_TRUE(queue.done()) << workers << " workers";
    // Starvation-freedom: every task claimed exactly once.
    std::vector<int> claimed(plan.units.size(), 0);
    for (const SimEvent& e : run.claims) ++claimed[e.task];
    EXPECT_TRUE(std::all_of(claimed.begin(), claimed.end(), [](int c) { return c == 1; }))
        << workers << " workers";
    // No worker ever idled while the queue held work.
    EXPECT_EQ(run.idleWhilePending, 0u) << workers << " workers";
    // LPT's classic bound: makespan <= totalWeight/workers + maxWeight.
    const std::uint64_t total =
        std::accumulate(plan.weights.begin(), plan.weights.end(), std::uint64_t{0});
    const std::uint64_t maxW = *std::max_element(plan.weights.begin(), plan.weights.end());
    EXPECT_LE(run.makespan, total / workers + maxW) << workers << " workers";
    // With the heavy fragment started first, the adversarial plan's
    // makespan is exactly the heavy weight — the tiny units pack around it.
    EXPECT_EQ(run.makespan, 100u) << workers << " workers";
  }
}

TEST(DispatchSched, SimulationIsDeterministic) {
  const DispatchUnitPlan plan = adversarialPlan(25, 100);
  TaskQueue qa(plan);
  TaskQueue qb(plan);
  const SimRun a = simulate(qa, 3);
  const SimRun b = simulate(qb, 3);
  EXPECT_EQ(a.claims, b.claims);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(DispatchSched, RequeueGoesToTheFrontAndCountsAttempts) {
  const DispatchUnitPlan plan = adversarialPlan(6, 100);
  TaskQueue queue(plan);
  const std::size_t heavy = queue.claim().index;
  EXPECT_EQ(queue.task(heavy).attempts, 1u);
  const std::size_t other = queue.claim().index;
  // The heavy unit's worker died: the retry outranks everything pending.
  queue.requeue(heavy);
  EXPECT_EQ(queue.claim().index, heavy);
  EXPECT_EQ(queue.task(heavy).attempts, 2u);
  EXPECT_TRUE(queue.complete(heavy));
  EXPECT_TRUE(queue.complete(other));
  // A raced duplicate result is reported, not double-counted.
  EXPECT_FALSE(queue.complete(heavy));
  while (queue.hasPending()) queue.complete(queue.claim().index);
  EXPECT_TRUE(queue.done());
}

TEST(DispatchSched, DrainedResultCompletesARequeuedTask) {
  // A SIGKILLed worker's result can still be sitting in the pipe and be
  // drained AFTER the dispatcher re-queued the task: completing a PENDING
  // task must pull it back out of the queue.
  const DispatchUnitPlan plan = adversarialPlan(3, 10);
  TaskQueue queue(plan);
  const std::size_t first = queue.claim().index;
  queue.requeue(first);
  EXPECT_TRUE(queue.complete(first));  // drained from the dead worker's pipe
  std::vector<std::size_t> rest;
  while (queue.hasPending()) rest.push_back(queue.claim().index);
  EXPECT_EQ(std::count(rest.begin(), rest.end(), first), 0);
  for (const std::size_t t : rest) queue.complete(t);
  EXPECT_TRUE(queue.done());
}

TEST(DispatchSched, QueueRejectsInvalidTransitions) {
  const DispatchUnitPlan plan = adversarialPlan(2, 5);
  TaskQueue queue(plan);
  EXPECT_THROW(queue.requeue(0), std::logic_error);  // not in flight
  const std::size_t t = queue.claim().index;
  queue.complete(t);
  EXPECT_THROW(queue.requeue(t), std::logic_error);  // already completed
  TaskQueue empty;
  EXPECT_THROW(empty.claim(), std::logic_error);
  EXPECT_TRUE(empty.done());
}

// --- frame transport ---------------------------------------------------------

TEST(DispatchSched, FrameReaderReassemblesArbitraryChunking) {
  SubmitFrame submit;
  submit.specFnv = 7;
  submit.seq = 1;
  submit.taskIndex = 3;
  submit.taskCount = 9;
  submit.unit = ShardUnit{3, 2, 4};
  HeartbeatFrame beat;
  beat.workerIndex = 1;
  beat.seq = 1;
  const std::string wire =
      frameWire(encodeSubmitFrame(submit)) + frameWire(encodeHeartbeatFrame(beat));
  // Feed byte-by-byte: frames must pop exactly when complete, in order.
  FrameReader reader;
  std::vector<std::string> docs;
  std::string doc;
  for (char c : wire) {
    reader.feed(std::string_view(&c, 1));
    while (reader.next(doc)) docs.push_back(doc);
  }
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(decodeSubmitFrame(docs[0]), submit);
  EXPECT_EQ(decodeHeartbeatFrame(docs[1]), beat);
  EXPECT_EQ(reader.pendingBytes(), 0u);

  // One big feed yields the same two documents.
  FrameReader big;
  big.feed(wire);
  std::vector<std::string> bigDocs;
  while (big.next(doc)) bigDocs.push_back(doc);
  EXPECT_EQ(bigDocs, docs);
}

TEST(DispatchSched, FrameReaderRejectsCorruptFraming) {
  FrameReader badMagic;
  badMagic.feed("xlvq 5\nhello");
  std::string doc;
  EXPECT_THROW(badMagic.next(doc), util::DecodeError);

  FrameReader badLen;
  badLen.feed("xlvf 12a\npayload");
  EXPECT_THROW(badLen.next(doc), util::DecodeError);

  FrameReader hugeLen;
  hugeLen.feed("xlvf 99999999999999999999\n");
  EXPECT_THROW(hugeLen.next(doc), util::DecodeError);

  // A partial frame is not an error — it is just not ready yet.
  FrameReader partial;
  partial.feed("xlvf 10\nabc");
  EXPECT_FALSE(partial.next(doc));
  partial.feed("defghij");
  ASSERT_TRUE(partial.next(doc));
  EXPECT_EQ(doc, "abcdefghij");
}

// --- blocking frame reads ----------------------------------------------------

TEST(DispatchSched, ReadFrameBlockingDistinguishesEofFromError) {
  // Clean EOF: the peer closed the pipe with nothing buffered.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[1]);
  FrameReader reader;
  std::string doc;
  int err = -1;
  EXPECT_EQ(readFrameBlocking(fds[0], reader, doc, &err), FrameRead::Eof);
  ::close(fds[0]);

  // A real read(2) failure must NOT masquerade as EOF — it surfaces as
  // FrameRead::Error with the errno preserved for the caller's log line.
  FrameReader reader2;
  err = 0;
  EXPECT_EQ(readFrameBlocking(-1, reader2, doc, &err), FrameRead::Error);
  EXPECT_EQ(err, EBADF);

  // And a complete frame still round-trips through the same entry point.
  ASSERT_EQ(::pipe(fds), 0);
  HeartbeatFrame beat;
  beat.workerIndex = 2;
  beat.seq = 9;
  const std::string wire = frameWire(encodeHeartbeatFrame(beat));
  ASSERT_EQ(::write(fds[1], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  ::close(fds[1]);
  FrameReader reader3;
  EXPECT_EQ(readFrameBlocking(fds[0], reader3, doc, nullptr), FrameRead::Frame);
  EXPECT_EQ(decodeHeartbeatFrame(doc), beat);
  EXPECT_EQ(readFrameBlocking(fds[0], reader3, doc, nullptr), FrameRead::Eof);
  ::close(fds[0]);
}

// --- non-blocking outbound buffers -------------------------------------------

#ifdef F_SETPIPE_SZ
TEST(DispatchSched, OutboundBufferSurvivesTinyPipeBackpressure) {
  // Regression test for the dispatcher write deadlock: a worker stdin pipe
  // shrunk to one page fills instantly under a burst of submit frames. The
  // old blocking writeAll would wedge the poll loop right there; the
  // OutboundBuffer must instead take the EAGAIN, keep the overflow queued,
  // and drain as the reader makes room.
  ::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_GT(::fcntl(fds[1], F_SETPIPE_SZ, 4096), 0);
  ASSERT_TRUE(util::setNonBlocking(fds[1]));

  // Far more than one page of framed submissions.
  std::string payload;
  SubmitFrame submit;
  submit.specFnv = 0x5EED;
  submit.campaignId = 1;
  for (std::size_t i = 0; i < 256; ++i) {
    submit.seq = i;
    submit.taskIndex = i;
    submit.taskCount = 256;
    submit.unit = ShardUnit{i, 0, 0};
    payload += frameWire(encodeSubmitFrame(submit));
  }
  ASSERT_GT(payload.size(), 32u * 1024u);

  OutboundBuffer out;
  out.enqueue(payload);
  ASSERT_TRUE(out.flushTo(fds[1]));  // pipe full is not fatal...
  EXPECT_GT(out.pendingBytes(), 0u);  // ...and the overflow stays queued
  EXPECT_LT(out.pendingBytes(), payload.size());

  // Alternate reader-drain with flush, the way the poll loop's POLLOUT
  // handler does, until every byte crossed the one-page pipe intact.
  std::string received;
  char buf[4096];
  while (!out.empty() || received.size() < payload.size()) {
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n > 0) received.append(buf, static_cast<std::size_t>(n));
    ASSERT_TRUE(out.flushTo(fds[1]));
    if (n <= 0 && out.empty()) break;
  }
  EXPECT_EQ(received, payload);
  EXPECT_TRUE(out.empty());

  // A closed read end is the fatal case: flushTo reports it instead of
  // retrying forever.
  ::close(fds[0]);
  out.enqueue("straggler");
  EXPECT_FALSE(out.flushTo(fds[1]));
  ::close(fds[1]);
}
#endif  // F_SETPIPE_SZ

// --- worker-count resolution -------------------------------------------------

struct EnvGuard {
  std::string name;
  std::string saved;
  bool had = false;
  EnvGuard(const char* n, const char* value) : name(n) {
    const char* old = std::getenv(n);
    if (old != nullptr) {
      had = true;
      saved = old;
    }
    ::setenv(n, value, 1);
  }
  ~EnvGuard() {
    if (had) {
      ::setenv(name.c_str(), saved.c_str(), 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
};

TEST(DispatchSched, ResolveWorkerCountPrefersExplicitThenEnv) {
  {
    EnvGuard env("XLV_WORKERS", "7");
    EXPECT_EQ(resolveWorkerCount(3), 3);  // explicit wins
    EXPECT_EQ(resolveWorkerCount(0), 7);  // env fills the default
  }
  {
    // Strict parse: a typo'd pool size stops the daemon instead of
    // silently fanning out differently.
    EnvGuard env("XLV_WORKERS", "3abc");
    EXPECT_THROW(resolveWorkerCount(0), std::invalid_argument);
  }
  {
    EnvGuard env("XLV_WORKERS", "0");
    EXPECT_THROW(resolveWorkerCount(0), std::invalid_argument);
  }
  ::unsetenv("XLV_WORKERS");
  EXPECT_GE(resolveWorkerCount(0), 1);  // hardware fallback
}

TEST(DispatchSched, EnvLongStrictThrowsOnMalformedValues) {
  // The timing knobs (XLV_HEARTBEAT_MS, XLV_HEARTBEAT_TIMEOUT_MS, the fault
  // hooks) all parse through envLongStrict: unset or empty means the
  // fallback, anything else must parse COMPLETELY. The old lenient parser
  // silently fell back on a typo — a daemon run with a mistyped heartbeat
  // timeout used the default and nobody noticed.
  ::unsetenv("XLV_TEST_ENV_LONG");
  EXPECT_EQ(envLongStrict("XLV_TEST_ENV_LONG", 42), 42);
  {
    EnvGuard env("XLV_TEST_ENV_LONG", "");
    EXPECT_EQ(envLongStrict("XLV_TEST_ENV_LONG", 42), 42);
  }
  {
    EnvGuard env("XLV_TEST_ENV_LONG", "250");
    EXPECT_EQ(envLongStrict("XLV_TEST_ENV_LONG", 42), 250);
  }
  {
    EnvGuard env("XLV_TEST_ENV_LONG", "-3");
    EXPECT_EQ(envLongStrict("XLV_TEST_ENV_LONG", 42), -3);
  }
  const char* bad[] = {"250ms", "abc", "1.5", "99999999999999999999"};
  for (const char* value : bad) {
    EnvGuard env("XLV_TEST_ENV_LONG", value);
    try {
      envLongStrict("XLV_TEST_ENV_LONG", 42);
      FAIL() << "accepted '" << value << "'";
    } catch (const std::invalid_argument& e) {
      // The message names the variable AND the offending value, so the
      // operator can see what to fix without strace.
      EXPECT_NE(std::string(e.what()).find("XLV_TEST_ENV_LONG"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(value), std::string::npos);
    }
  }
}

// --- ledger JSON -------------------------------------------------------------

TEST(DispatchSched, LedgerJsonCarriesRequeueRecords) {
  DispatchLedger ledger;
  ledger.tasksTotal = 5;
  ledger.tasksCompleted = 5;
  ledger.submissions = 6;
  RequeueRecord rec;
  rec.taskIndex = 2;
  rec.unit = ShardUnit{0, 4, 8};
  rec.attempt = 1;
  rec.reason = "heartbeat-timeout";
  rec.workerIndex = 1;
  ledger.requeuedShards.push_back(rec);
  const std::string json = encodeDispatchLedgerJson(ledger);
  EXPECT_NE(json.find("\"tasksTotal\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"heartbeat-timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"mutantBegin\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"taskIndex\": 2"), std::string::npos);
}

}  // namespace
}  // namespace xlv::campaign
