// Deterministic unit tests of the dispatcher's scheduling layer
// (campaign/dispatch.h): the work-stealing TaskQueue under seeded
// adversarial weights, the frame transport, and the worker-count
// resolution. No processes are spawned here — the queue is pure state, so
// every property is checked by direct simulation (the daemon end-to-end
// paths live in dispatch_fault_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/dispatch.h"
#include "campaign/serialize.h"
#include "util/codec.h"

namespace xlv::campaign {
namespace {

/// Adversarial unit plan: one 100x-heavy fragment buried mid-list among
/// many tiny units — the shape that wrecks a static weight balance when
/// the heavy unit lands late in a shard.
DispatchUnitPlan adversarialPlan(std::size_t tiny, std::uint64_t heavyWeight) {
  DispatchUnitPlan plan;
  plan.specFnv = 0x5EED;
  for (std::size_t i = 0; i < tiny + 1; ++i) {
    plan.units.push_back(ShardUnit{i, 0, 0});
    plan.weights.push_back(i == tiny / 2 ? heavyWeight : 1);
  }
  return plan;
}

struct SimEvent {
  std::uint64_t time = 0;
  std::size_t worker = 0;
  std::size_t task = 0;
  bool operator==(const SimEvent&) const = default;
};

struct SimRun {
  std::vector<SimEvent> claims;   ///< in claim order
  std::uint64_t makespan = 0;
  std::uint64_t idleWhilePending = 0;  ///< worker-steps idle with work queued
};

/// Discrete-event simulation of the dispatcher's claim loop: each worker
/// runs its claimed task for exactly `weight` ticks, then steals the next.
/// Deterministic by construction — ties go to the lower worker index.
SimRun simulate(TaskQueue& queue, std::size_t workers) {
  SimRun run;
  std::vector<std::uint64_t> freeAt(workers, 0);
  std::vector<bool> busy(workers, false);
  std::vector<std::size_t> taskOf(workers, 0);
  std::uint64_t now = 0;
  while (!queue.done()) {
    for (std::size_t w = 0; w < workers; ++w) {
      if (busy[w] || !queue.hasPending()) continue;
      const DispatchTask& t = queue.claim();
      run.claims.push_back(SimEvent{now, w, t.index});
      busy[w] = true;
      taskOf[w] = t.index;
      freeAt[w] = now + t.weight;
    }
    // A worker idle at this instant while the queue still has work would be
    // a scheduling hole; the claim loop above makes it impossible, and the
    // counter proves it stayed zero.
    for (std::size_t w = 0; w < workers; ++w) {
      if (!busy[w] && queue.hasPending()) ++run.idleWhilePending;
    }
    std::uint64_t nextFree = 0;
    bool any = false;
    for (std::size_t w = 0; w < workers; ++w) {
      if (busy[w] && (!any || freeAt[w] < nextFree)) {
        nextFree = freeAt[w];
        any = true;
      }
    }
    if (!any) break;  // nothing running and nothing pending: queue must be done
    now = nextFree;
    for (std::size_t w = 0; w < workers; ++w) {
      if (busy[w] && freeAt[w] == now) {
        busy[w] = false;
        queue.complete(taskOf[w]);
      }
    }
    run.makespan = now;
  }
  return run;
}

TEST(DispatchSched, QueueOrdersHeaviestFirst) {
  const DispatchUnitPlan plan = adversarialPlan(12, 100);
  TaskQueue queue(plan);
  ASSERT_EQ(queue.taskCount(), 13u);
  // The 100x fragment is claimed FIRST despite sitting mid-list; ties
  // resolve by ascending index.
  EXPECT_EQ(queue.claim().index, 6u);
  EXPECT_EQ(queue.claim().index, 0u);
  EXPECT_EQ(queue.claim().index, 1u);
}

TEST(DispatchSched, WorkStealingKeepsAllWorkersBusyAcrossPoolSizes) {
  for (const std::size_t workers : {2u, 3u, 5u}) {
    const DispatchUnitPlan plan = adversarialPlan(40, 100);
    TaskQueue queue(plan);
    const SimRun run = simulate(queue, workers);
    EXPECT_TRUE(queue.done()) << workers << " workers";
    // Starvation-freedom: every task claimed exactly once.
    std::vector<int> claimed(plan.units.size(), 0);
    for (const SimEvent& e : run.claims) ++claimed[e.task];
    EXPECT_TRUE(std::all_of(claimed.begin(), claimed.end(), [](int c) { return c == 1; }))
        << workers << " workers";
    // No worker ever idled while the queue held work.
    EXPECT_EQ(run.idleWhilePending, 0u) << workers << " workers";
    // LPT's classic bound: makespan <= totalWeight/workers + maxWeight.
    const std::uint64_t total =
        std::accumulate(plan.weights.begin(), plan.weights.end(), std::uint64_t{0});
    const std::uint64_t maxW = *std::max_element(plan.weights.begin(), plan.weights.end());
    EXPECT_LE(run.makespan, total / workers + maxW) << workers << " workers";
    // With the heavy fragment started first, the adversarial plan's
    // makespan is exactly the heavy weight — the tiny units pack around it.
    EXPECT_EQ(run.makespan, 100u) << workers << " workers";
  }
}

TEST(DispatchSched, SimulationIsDeterministic) {
  const DispatchUnitPlan plan = adversarialPlan(25, 100);
  TaskQueue qa(plan);
  TaskQueue qb(plan);
  const SimRun a = simulate(qa, 3);
  const SimRun b = simulate(qb, 3);
  EXPECT_EQ(a.claims, b.claims);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(DispatchSched, RequeueGoesToTheFrontAndCountsAttempts) {
  const DispatchUnitPlan plan = adversarialPlan(6, 100);
  TaskQueue queue(plan);
  const std::size_t heavy = queue.claim().index;
  EXPECT_EQ(queue.task(heavy).attempts, 1u);
  const std::size_t other = queue.claim().index;
  // The heavy unit's worker died: the retry outranks everything pending.
  queue.requeue(heavy);
  EXPECT_EQ(queue.claim().index, heavy);
  EXPECT_EQ(queue.task(heavy).attempts, 2u);
  EXPECT_TRUE(queue.complete(heavy));
  EXPECT_TRUE(queue.complete(other));
  // A raced duplicate result is reported, not double-counted.
  EXPECT_FALSE(queue.complete(heavy));
  while (queue.hasPending()) queue.complete(queue.claim().index);
  EXPECT_TRUE(queue.done());
}

TEST(DispatchSched, DrainedResultCompletesARequeuedTask) {
  // A SIGKILLed worker's result can still be sitting in the pipe and be
  // drained AFTER the dispatcher re-queued the task: completing a PENDING
  // task must pull it back out of the queue.
  const DispatchUnitPlan plan = adversarialPlan(3, 10);
  TaskQueue queue(plan);
  const std::size_t first = queue.claim().index;
  queue.requeue(first);
  EXPECT_TRUE(queue.complete(first));  // drained from the dead worker's pipe
  std::vector<std::size_t> rest;
  while (queue.hasPending()) rest.push_back(queue.claim().index);
  EXPECT_EQ(std::count(rest.begin(), rest.end(), first), 0);
  for (const std::size_t t : rest) queue.complete(t);
  EXPECT_TRUE(queue.done());
}

TEST(DispatchSched, QueueRejectsInvalidTransitions) {
  const DispatchUnitPlan plan = adversarialPlan(2, 5);
  TaskQueue queue(plan);
  EXPECT_THROW(queue.requeue(0), std::logic_error);  // not in flight
  const std::size_t t = queue.claim().index;
  queue.complete(t);
  EXPECT_THROW(queue.requeue(t), std::logic_error);  // already completed
  TaskQueue empty;
  EXPECT_THROW(empty.claim(), std::logic_error);
  EXPECT_TRUE(empty.done());
}

// --- frame transport ---------------------------------------------------------

TEST(DispatchSched, FrameReaderReassemblesArbitraryChunking) {
  SubmitFrame submit;
  submit.specFnv = 7;
  submit.seq = 1;
  submit.taskIndex = 3;
  submit.taskCount = 9;
  submit.unit = ShardUnit{3, 2, 4};
  HeartbeatFrame beat;
  beat.workerIndex = 1;
  beat.seq = 1;
  const std::string wire =
      frameWire(encodeSubmitFrame(submit)) + frameWire(encodeHeartbeatFrame(beat));
  // Feed byte-by-byte: frames must pop exactly when complete, in order.
  FrameReader reader;
  std::vector<std::string> docs;
  std::string doc;
  for (char c : wire) {
    reader.feed(std::string_view(&c, 1));
    while (reader.next(doc)) docs.push_back(doc);
  }
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(decodeSubmitFrame(docs[0]), submit);
  EXPECT_EQ(decodeHeartbeatFrame(docs[1]), beat);
  EXPECT_EQ(reader.pendingBytes(), 0u);

  // One big feed yields the same two documents.
  FrameReader big;
  big.feed(wire);
  std::vector<std::string> bigDocs;
  while (big.next(doc)) bigDocs.push_back(doc);
  EXPECT_EQ(bigDocs, docs);
}

TEST(DispatchSched, FrameReaderRejectsCorruptFraming) {
  FrameReader badMagic;
  badMagic.feed("xlvq 5\nhello");
  std::string doc;
  EXPECT_THROW(badMagic.next(doc), util::DecodeError);

  FrameReader badLen;
  badLen.feed("xlvf 12a\npayload");
  EXPECT_THROW(badLen.next(doc), util::DecodeError);

  FrameReader hugeLen;
  hugeLen.feed("xlvf 99999999999999999999\n");
  EXPECT_THROW(hugeLen.next(doc), util::DecodeError);

  // A partial frame is not an error — it is just not ready yet.
  FrameReader partial;
  partial.feed("xlvf 10\nabc");
  EXPECT_FALSE(partial.next(doc));
  partial.feed("defghij");
  ASSERT_TRUE(partial.next(doc));
  EXPECT_EQ(doc, "abcdefghij");
}

// --- worker-count resolution -------------------------------------------------

struct EnvGuard {
  std::string name;
  std::string saved;
  bool had = false;
  EnvGuard(const char* n, const char* value) : name(n) {
    const char* old = std::getenv(n);
    if (old != nullptr) {
      had = true;
      saved = old;
    }
    ::setenv(n, value, 1);
  }
  ~EnvGuard() {
    if (had) {
      ::setenv(name.c_str(), saved.c_str(), 1);
    } else {
      ::unsetenv(name.c_str());
    }
  }
};

TEST(DispatchSched, ResolveWorkerCountPrefersExplicitThenEnv) {
  {
    EnvGuard env("XLV_WORKERS", "7");
    EXPECT_EQ(resolveWorkerCount(3), 3);  // explicit wins
    EXPECT_EQ(resolveWorkerCount(0), 7);  // env fills the default
  }
  {
    // Strict parse: a typo'd pool size stops the daemon instead of
    // silently fanning out differently.
    EnvGuard env("XLV_WORKERS", "3abc");
    EXPECT_THROW(resolveWorkerCount(0), std::invalid_argument);
  }
  {
    EnvGuard env("XLV_WORKERS", "0");
    EXPECT_THROW(resolveWorkerCount(0), std::invalid_argument);
  }
  ::unsetenv("XLV_WORKERS");
  EXPECT_GE(resolveWorkerCount(0), 1);  // hardware fallback
}

// --- ledger JSON -------------------------------------------------------------

TEST(DispatchSched, LedgerJsonCarriesRequeueRecords) {
  DispatchLedger ledger;
  ledger.tasksTotal = 5;
  ledger.tasksCompleted = 5;
  ledger.submissions = 6;
  RequeueRecord rec;
  rec.taskIndex = 2;
  rec.unit = ShardUnit{0, 4, 8};
  rec.attempt = 1;
  rec.reason = "heartbeat-timeout";
  rec.workerIndex = 1;
  ledger.requeuedShards.push_back(rec);
  const std::string json = encodeDispatchLedgerJson(ledger);
  EXPECT_NE(json.find("\"tasksTotal\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"heartbeat-timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"mutantBegin\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"taskIndex\": 2"), std::string::npos);
}

}  // namespace
}  // namespace xlv::campaign
