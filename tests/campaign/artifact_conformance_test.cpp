// Cross-process artifact-store conformance: the acceptance criteria of the
// persistent cache PR, stated as tests.
//
//   * A campaign with a cache dir is sameResults-bit-identical cold vs warm
//     vs sharded-warm (each warm pass runs with cleared in-memory caches,
//     i.e. what a fresh worker process sees).
//   * The mutant-set-variant axis performs ZERO mutant re-simulations when
//     the `full` variant's results are cached (ledger-asserted).
//   * Eviction under an artificially small byte cap — and outright entry
//     corruption — degrade to a rebuild, never to wrong or torn results.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "campaign/serialize.h"
#include "campaign/shard.h"
#include "campaign/sweep.h"
#include "core/flow.h"
#include "util/artifact_store.h"

namespace xlv::campaign {
namespace {

namespace fs = std::filesystem;

/// Clear every in-memory cache: what a brand-new worker process starts
/// with. The artifact store (when configured) is the only surviving layer.
void freshProcess() { core::clearProcessCaches(); }

struct StoreFixture : ::testing::Test {
  fs::path dir;

  void SetUp() override {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("xlv-conformance-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter++));
    fs::remove_all(dir);
  }

  void TearDown() override {
    util::configureProcessArtifactStore(std::nullopt);
    freshProcess();
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  void configureStore(std::uint64_t maxBytes = 0) {
    util::configureProcessArtifactStore(
        util::ArtifactStoreConfig{dir.string(), maxBytes});
  }
};

CampaignSpec quickSmokeSpec() {
  CampaignSpec spec = builtinCampaignSpec("smoke");
  for (auto& item : spec.items) item.options.testbenchCycles = 40;
  return spec;
}

std::size_t totalMutants(const CampaignResult& r) {
  std::size_t n = 0;
  for (const auto& it : r.items) n += it.report.analysis.results.size();
  return n;
}

TEST_F(StoreFixture, ColdWarmAndShardedWarmAreBitIdentical) {
  const CampaignSpec spec = quickSmokeSpec();

  // Reference: no store at all.
  util::configureProcessArtifactStore(std::nullopt);
  freshProcess();
  const CampaignResult reference = runCampaign(spec);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(0, reference.diskStores);

  // Cold pass populates the store.
  configureStore();
  freshProcess();
  const CampaignResult cold = runCampaign(spec);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(reference.sameResults(cold)) << "store writes must not change results";
  EXPECT_GT(cold.diskStores, 0);
  EXPECT_EQ(0, cold.diskHits);

  // Warm pass in a "fresh process": in-memory caches cleared, same dir.
  freshProcess();
  const CampaignResult warm = runCampaign(spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(reference.sameResults(warm)) << "warm run must be bit-identical";
  EXPECT_GT(warm.diskHits, 0) << "a warm run must actually load from the store";
  // Every mutant co-simulation was served from the store: analysis-free.
  EXPECT_EQ(static_cast<int>(totalMutants(warm)), warm.mutantCacheHits);
  EXPECT_GT(warm.mutantCacheHits, 0);

  // Sharded warm: three "processes" over the shared store, merged back.
  const ShardPlan plan = planShards(spec, ShardPlanOptions{3, 0, {}});
  const std::string specWire = encodeCampaignSpec(spec);
  const std::string planWire = encodeShardPlan(plan);
  std::vector<ShardOutput> outputs;
  for (int s = 0; s < plan.shardCount(); ++s) {
    freshProcess();
    const CampaignSpec workerSpec = decodeCampaignSpec(specWire);
    const ShardPlan workerPlan = decodeShardPlan(planWire);
    outputs.push_back(
        decodeShardOutput(encodeShardOutput(runShard(workerSpec, workerPlan, s))));
  }
  freshProcess();
  const CampaignResult mergedWarm = mergeShards(spec, outputs);
  EXPECT_TRUE(reference.sameResults(mergedWarm)) << "sharded-warm must be bit-identical";
  EXPECT_GT(mergedWarm.diskHits, 0);
  EXPECT_EQ(static_cast<int>(totalMutants(mergedWarm)), mergedWarm.mutantCacheHits);
}

TEST_F(StoreFixture, VariantAxisIsAnalysisFreeOnceFullRan) {
  auto variantSweep = [](std::vector<core::MutantSetVariant> variants) {
    SweepSpec sweep;
    sweep.name = "variant-sweep";
    sweep.cases = {ips::buildFilterCase()};
    sweep.base.testbenchCycles = 60;
    sweep.base.measureRtl = false;
    sweep.base.measureOptimized = false;
    sweep.axes.sensorKinds = {insertion::SensorKind::Counter};
    sweep.axes.mutantSets = std::move(variants);
    return sweep;
  };

  // Reference min/max results with every cache off (fully cold semantics).
  util::configureProcessArtifactStore(std::nullopt);
  freshProcess();
  SweepSpec coldSpec = variantSweep(
      {core::MutantSetVariant::MinDelay, core::MutantSetVariant::MaxDelay});
  coldSpec.sharePrefixes = false;
  coldSpec.shareGoldenTraces = false;
  coldSpec.shareMutantResults = false;
  const CampaignResult coldMinMax = runSweep(coldSpec);
  ASSERT_TRUE(coldMinMax.ok());
  EXPECT_EQ(0, coldMinMax.mutantCacheHits);

  // Run `full` once against the store.
  configureStore();
  freshProcess();
  const CampaignResult full = runSweep(variantSweep({core::MutantSetVariant::Full}));
  ASSERT_TRUE(full.ok());
  ASSERT_GT(totalMutants(full), 0u);

  // A later process sweeps min+max: every mutant is a slice of `full`'s
  // set, so the whole variant axis must be analysis-free (zero fresh
  // co-simulations) and still bit-identical to the cold reference.
  freshProcess();
  const CampaignResult minMax =
      runSweep(variantSweep({core::MutantSetVariant::MinDelay,
                             core::MutantSetVariant::MaxDelay}));
  ASSERT_TRUE(minMax.ok());
  EXPECT_TRUE(coldMinMax.sameResults(minMax));
  EXPECT_EQ(static_cast<int>(totalMutants(minMax)), minMax.mutantCacheHits)
      << "every min/max mutant must reuse full's cached result";
  EXPECT_GT(minMax.mutantCacheHits, 0);
  EXPECT_GT(minMax.diskHits, 0);

  // The id fix-up is what keeps those reports aligned: within each report
  // ids are the slice-local injected ids (0..n-1 in order).
  for (const auto& it : minMax.items) {
    const auto& results = it.report.analysis.results;
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(static_cast<int>(i), results[i].id) << it.label;
    }
  }
}

TEST_F(StoreFixture, TinyByteCapEvictsButNeverChangesResults) {
  const CampaignSpec spec = quickSmokeSpec();

  util::configureProcessArtifactStore(std::nullopt);
  freshProcess();
  const CampaignResult reference = runCampaign(spec);

  // A cap far below the working set: constant eviction churn.
  configureStore(/*maxBytes=*/2048);
  freshProcess();
  const CampaignResult cold = runCampaign(spec);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(reference.sameResults(cold));
  EXPECT_GT(cold.diskEvictions, 0) << "the tiny cap must actually evict";

  freshProcess();
  const CampaignResult warm = runCampaign(spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(reference.sameResults(warm))
      << "evicted entries must degrade to rebuild, never to wrong results";
  EXPECT_LE(util::processArtifactStore()->diskBytes(), 2048u + 1024u)
      << "the store must stay near its cap (one oversize entry of slack)";
}

TEST_F(StoreFixture, CorruptedEntriesAreDroppedAndRebuilt) {
  const CampaignSpec spec = quickSmokeSpec();

  configureStore();
  freshProcess();
  const CampaignResult cold = runCampaign(spec);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold.diskStores, 0);

  // Flip one byte near the end of EVERY entry (payload region): the
  // fingerprint check must catch each one.
  std::size_t corrupted = 0;
  for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
    if (!it->is_regular_file() || it->path().extension() != ".art") continue;
    std::fstream f(it->path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-3, std::ios::end);
    const int c = f.get();
    f.seekp(-3, std::ios::end);
    f.put(static_cast<char>(c ^ 0x5a));
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  freshProcess();
  const CampaignResult warm = runCampaign(spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(cold.sameResults(warm))
      << "corruption must degrade to rebuild, never to wrong results";
  EXPECT_EQ(0, warm.diskHits) << "no corrupted entry may be served";
  EXPECT_GE(util::processArtifactStore()->stats().corrupt, corrupted);

  // The rebuild re-populated the store: a third pass is warm again.
  freshProcess();
  const CampaignResult rewarm = runCampaign(spec);
  EXPECT_TRUE(cold.sameResults(rewarm));
  EXPECT_GT(rewarm.diskHits, 0);
}

TEST_F(StoreFixture, FlowPrefixArtifactRoundTripsAndRejectsMismatch) {
  const ips::CaseStudy cs = ips::buildFilterCase();
  core::FlowOptions opts;
  opts.testbenchCycles = 40;
  const core::FlowPrefix built = core::buildFlowPrefix(cs, opts);
  const std::string wire = encodeFlowPrefix(built);

  // Decode rebuilds deterministically: same STA content, same sensors.
  const core::FlowPrefix decoded = decodeFlowPrefix(wire, cs, opts);
  EXPECT_EQ(built.report.sta.criticalCount, decoded.report.sta.criticalCount);
  EXPECT_EQ(built.report.sta.thresholdPs, decoded.report.sta.thresholdPs);
  EXPECT_EQ(built.report.sta.minSlackPs, decoded.report.sta.minSlackPs);
  ASSERT_EQ(built.report.sensors.size(), decoded.report.sensors.size());
  for (std::size_t i = 0; i < built.report.sensors.size(); ++i) {
    EXPECT_EQ(built.report.sensors[i].endpointName,
              decoded.report.sensors[i].endpointName);
    EXPECT_EQ(built.report.sensors[i].endpointArrivalPs,
              decoded.report.sensors[i].endpointArrivalPs);
  }
  EXPECT_EQ(built.report.loc.rtlAugmented, decoded.report.loc.rtlAugmented);
  // Byte-stability through the rebuild.
  EXPECT_EQ(wire, encodeFlowPrefix(decoded));

  // An artifact recorded for another (ip, kind) must be rejected, not
  // silently reinterpreted.
  core::FlowOptions counterOpts = opts;
  counterOpts.sensorKind = insertion::SensorKind::Counter;
  EXPECT_THROW(decodeFlowPrefix(wire, cs, counterOpts), util::DecodeError);
  const ips::CaseStudy dsp = ips::buildDspCase();
  EXPECT_THROW(decodeFlowPrefix(wire, dsp, opts), util::DecodeError);
}

}  // namespace
}  // namespace xlv::campaign
