// Native-codegen backend conformance: simulating through the compiled
// engine (abstraction/native_backend.h, FlowOptions::backend = Native) must
// be sameResults-bit-identical to the interpreter — across thread counts,
// across process-level shards, with a warm artifact store, for stateful
// (makeDriver) testbenches, and under XLV_REFERENCE_SIM=1 full replay.
// Mutant batching (FlowOptions::batch = K) is the second axis: any K must
// reproduce the K=1 results exactly, on either engine.
//
// Every test is gated on a system C++ compiler being present; without one
// the native path deliberately falls back to the interpreter, which would
// make these checks vacuous.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "abstraction/native_backend.h"
#include "campaign/serialize.h"
#include "campaign/shard.h"
#include "core/flow.h"
#include "ips/case_study.h"
#include "util/artifact_store.h"

namespace xlv::campaign {
namespace {

namespace fs = std::filesystem;

#define REQUIRE_NATIVE_TOOLCHAIN()                                            \
  if (!abstraction::nativeToolchainAvailable()) {                             \
    GTEST_SKIP() << "no system C++ compiler — native backend unavailable";    \
  }

void freshProcess() { core::clearProcessCaches(); }

CampaignSpec smokeSpec(analysis::SimBackend backend, int threads = 1) {
  CampaignSpec spec = builtinCampaignSpec("smoke");
  for (auto& item : spec.items) {
    item.options.testbenchCycles = 60;
    item.options.backend = backend;
  }
  spec.executor.threads = threads;
  return spec;
}

CampaignResult runCold(const CampaignSpec& spec) {
  freshProcess();
  return runCampaign(spec);
}

/// A native-backend result is only meaningful when the native engine was
/// actually used (the silent-fallback path would make bit-identity vacuous).
void expectNativeWork(const CampaignResult& r) {
  EXPECT_GT(r.nativeCompiles + r.nativeCacheHits, 0)
      << "native run reports no compiles and no cache hits — fell back?";
}

TEST(NativeConformance, MatchesInterpreterAcrossThreadCounts) {
  REQUIRE_NATIVE_TOOLCHAIN();
  const CampaignResult interp = runCold(smokeSpec(analysis::SimBackend::Interpreter));
  ASSERT_TRUE(interp.ok());
  EXPECT_EQ(0, interp.nativeCompiles + interp.nativeCacheHits);

  for (int threads : {1, 2, 8}) {
    const CampaignResult native =
        runCold(smokeSpec(analysis::SimBackend::Native, threads));
    ASSERT_TRUE(native.ok());
    expectNativeWork(native);
    EXPECT_TRUE(interp.sameResults(native))
        << "native backend diverged from interpreter at threads=" << threads;
  }
}

TEST(NativeConformance, MatchesReferenceFullReplay) {
  REQUIRE_NATIVE_TOOLCHAIN();
  // Under XLV_REFERENCE_SIM=1 neither engine skips anything, so even the
  // cycle ledgers must agree — the strictest cross-engine comparison.
  ::setenv("XLV_REFERENCE_SIM", "1", 1);
  const CampaignResult interp = runCold(smokeSpec(analysis::SimBackend::Interpreter));
  const CampaignResult native = runCold(smokeSpec(analysis::SimBackend::Native));
  ::unsetenv("XLV_REFERENCE_SIM");
  freshProcess();

  ASSERT_TRUE(interp.ok());
  ASSERT_TRUE(native.ok());
  expectNativeWork(native);
  EXPECT_TRUE(interp.sameResults(native));
  EXPECT_EQ(0u, interp.cyclesSkipped);
  EXPECT_EQ(0u, native.cyclesSkipped);
  EXPECT_EQ(interp.cyclesSimulated, native.cyclesSimulated);
}

TEST(NativeConformance, ThreeWayShardedNativeMatchesInterpreter) {
  REQUIRE_NATIVE_TOOLCHAIN();
  const CampaignResult interp = runCold(smokeSpec(analysis::SimBackend::Interpreter));
  ASSERT_TRUE(interp.ok());

  // Each shard runs like a separate worker process: cold in-memory caches
  // (so each re-compiles or re-loads its own native library), wire codecs
  // in between — the backend/batch options must survive the v4 codec.
  const CampaignSpec spec = smokeSpec(analysis::SimBackend::Native);
  const ShardPlan plan = planShards(spec, ShardPlanOptions{3, 0, {}});
  const std::string specWire = encodeCampaignSpec(spec);
  const std::string planWire = encodeShardPlan(plan);
  std::vector<ShardOutput> outputs;
  for (int s = 0; s < plan.shardCount(); ++s) {
    freshProcess();
    outputs.push_back(decodeShardOutput(encodeShardOutput(
        runShard(decodeCampaignSpec(specWire), decodeShardPlan(planWire), s))));
  }
  freshProcess();
  const CampaignResult merged = mergeShards(spec, outputs);
  ASSERT_TRUE(merged.ok());
  expectNativeWork(merged);
  EXPECT_TRUE(interp.sameResults(merged));
}

TEST(NativeConformance, WarmStoreServesNativeResultsAndStaysIdentical) {
  REQUIRE_NATIVE_TOOLCHAIN();
  const fs::path dir =
      fs::temp_directory_path() / ("xlv-nativeconf-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  const CampaignSpec spec = smokeSpec(analysis::SimBackend::Native);
  const CampaignResult interp = runCold(smokeSpec(analysis::SimBackend::Interpreter));
  ASSERT_TRUE(interp.ok());

  util::configureProcessArtifactStore(util::ArtifactStoreConfig{dir.string(), 0});
  const CampaignResult cold = runCold(spec);
  const CampaignResult warm = runCold(spec);  // fresh memory caches, warm store
  util::configureProcessArtifactStore(std::nullopt);
  freshProcess();
  std::error_code ec;
  fs::remove_all(dir, ec);

  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  expectNativeWork(cold);
  EXPECT_TRUE(interp.sameResults(cold));
  EXPECT_TRUE(interp.sameResults(warm));
  // The warm pass reloads every mutant verdict from the store, so no
  // simulation runs — and the native engine is never even invoked (the
  // compiled .so itself is also store-cached, but nothing asks for it).
  EXPECT_GT(warm.mutantCacheHits, 0);
  EXPECT_EQ(0u, warm.cyclesSimulated);
  EXPECT_EQ(0u, warm.cyclesSkipped);
}

TEST(NativeConformance, StatefulTestbenchDriverMatchesInterpreter) {
  REQUIRE_NATIVE_TOOLCHAIN();
  // The handshake case drives the DUT from a per-task protocol-FSM driver
  // (Testbench::makeDriver): the native session must observe the same
  // recorded input stream, including the null-sink prefix replay after a
  // checkpoint fast-forward. Both sensor kinds, flow level.
  for (insertion::SensorKind kind :
       {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
    core::FlowOptions opts;
    opts.sensorKind = kind;
    opts.testbenchCycles = 96;
    opts.measureRtl = false;
    opts.measureTlm = false;
    opts.measureOptimized = false;

    freshProcess();
    opts.backend = analysis::SimBackend::Interpreter;
    const core::FlowReport interp = core::runFlow(ips::buildHandshakeCase(), opts);
    freshProcess();
    opts.backend = analysis::SimBackend::Native;
    const core::FlowReport native = core::runFlow(ips::buildHandshakeCase(), opts);

    EXPECT_TRUE(interp.analysis.sameResults(native.analysis))
        << "stateful-driver native run diverged (" << insertion::sensorKindName(kind)
        << ")";
    EXPECT_GT(native.analysis.nativeCompiles + native.analysis.nativeCacheHits, 0);
  }
  freshProcess();
}

TEST(NativeConformance, BatchSizesReproduceUnbatchedResults) {
  // Batching is engine-independent, so this case runs even without a
  // toolchain (interpreter legs) — the native legs are gated inside.
  auto spec = [](analysis::SimBackend backend, int batch) {
    CampaignSpec s = smokeSpec(backend);
    for (auto& item : s.items) item.options.batch = batch;
    return s;
  };

  const CampaignResult solo = runCold(spec(analysis::SimBackend::Interpreter, 1));
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(0, solo.batchedMutants);

  for (int k : {4, 64}) {
    const CampaignResult batched = runCold(spec(analysis::SimBackend::Interpreter, k));
    ASSERT_TRUE(batched.ok());
    EXPECT_TRUE(solo.sameResults(batched)) << "interpreter batch=" << k;
    EXPECT_GT(batched.batchedMutants, 0) << "batch=" << k << " grouped nothing";
  }

  if (!abstraction::nativeToolchainAvailable()) {
    GTEST_SKIP() << "no system C++ compiler — native batching legs skipped";
  }
  for (int k : {1, 4, 64}) {
    const CampaignResult batched = runCold(spec(analysis::SimBackend::Native, k));
    ASSERT_TRUE(batched.ok());
    expectNativeWork(batched);
    EXPECT_TRUE(solo.sameResults(batched)) << "native batch=" << k;
  }
}

}  // namespace
}  // namespace xlv::campaign
