// Regression suite for CampaignResult::firstError and the CLI exit-code-3
// contract: the builtin "failing" spec (deliberately broken mid-campaign
// items whose breakage lives in the OPTIONS, so it survives the wire
// codecs) is pushed through the same library paths the xlv_campaign
// run / run-shard / merge / diff commands wrap, asserting the
// lowest-task-id error survives serialization, sharding and merging — and
// that campaignExitCode maps it to 3, never a vacuous 0.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "campaign/serialize.h"
#include "campaign/shard.h"
#include "core/flow.h"

namespace xlv::campaign {
namespace {

void clearProcessCaches() { core::clearProcessCaches(); }

TEST(FailingCampaign, PresetCarriesItsBreakageThroughTheWire) {
  const CampaignSpec spec = builtinCampaignSpec("failing");
  ASSERT_EQ(4u, spec.items.size());
  EXPECT_EQ("bad-hf0", spec.items[1].label);
  EXPECT_EQ("bad-hf-negative", spec.items[3].label);

  // The breakage is an options field, so — unlike a nulled-out module — the
  // by-name case-study rebuild cannot heal it.
  const CampaignSpec decoded = decodeCampaignSpec(encodeCampaignSpec(spec));
  ASSERT_EQ(4u, decoded.items.size());
  ASSERT_TRUE(decoded.items[1].options.hfRatio.has_value());
  EXPECT_EQ(0, *decoded.items[1].options.hfRatio);
  EXPECT_EQ(campaignSpecFnv(spec), campaignSpecFnv(decoded));
}

TEST(FailingCampaign, RunSurfacesLowestTaskIdErrorAndExitCode3) {
  clearProcessCaches();
  // The same path as `xlv_campaign run`: decode the spec wire form, run,
  // encode the result.
  const CampaignSpec spec =
      decodeCampaignSpec(encodeCampaignSpec(builtinCampaignSpec("failing")));
  const CampaignResult result = runCampaign(spec);

  EXPECT_FALSE(result.ok());
  EXPECT_EQ(3, campaignExitCode(result));
  ASSERT_NE(nullptr, result.firstError());
  EXPECT_EQ(1u, result.firstError()->taskId) << "items 1 and 3 fail; 1 is first";
  EXPECT_EQ("bad-hf0", result.firstError()->label);
  EXPECT_NE(nullptr, std::strstr(result.firstError()->error.c_str(), "hfRatio"));

  // Healthy items completed despite the failures (per-item capture).
  const CampaignItemResult* ok = result.find("ok-razor");
  ASSERT_NE(nullptr, ok);
  EXPECT_TRUE(ok->error.empty());
  EXPECT_GT(ok->report.analysis.total(), 0);

  // The result file a CI `diff` would read back preserves everything the
  // exit-code decision needs.
  const CampaignResult decoded = decodeCampaignResult(encodeCampaignResult(result));
  EXPECT_EQ(3, campaignExitCode(decoded));
  ASSERT_NE(nullptr, decoded.firstError());
  EXPECT_EQ(1u, decoded.firstError()->taskId);
  EXPECT_EQ(result.firstError()->error, decoded.firstError()->error);
  EXPECT_TRUE(result.sameResults(decoded));
}

TEST(FailingCampaign, ShardingAndMergePreserveTheFirstErrorAndExitCode) {
  const CampaignSpec spec =
      decodeCampaignSpec(encodeCampaignSpec(builtinCampaignSpec("failing")));

  clearProcessCaches();
  const CampaignResult single = runCampaign(spec);

  // run-shard / merge, through the wire codecs like separate processes.
  const ShardPlan plan = planShards(spec, ShardPlanOptions{2, 0, {}});
  std::vector<ShardOutput> outputs;
  for (int s = 0; s < plan.shardCount(); ++s) {
    clearProcessCaches();
    const ShardOutput out = runShard(spec, plan, s);
    // A shard that ran a broken item reports exit 3 itself (the worker
    // process must fail loudly, not hand a quiet file to the merger).
    if (!out.result.ok()) EXPECT_EQ(3, campaignExitCode(out.result));
    outputs.push_back(decodeShardOutput(encodeShardOutput(out)));
  }
  clearProcessCaches();
  const CampaignResult merged = mergeShards(spec, outputs);

  EXPECT_FALSE(merged.ok());
  EXPECT_EQ(3, campaignExitCode(merged));
  ASSERT_NE(nullptr, merged.firstError());
  EXPECT_EQ(1u, merged.firstError()->taskId)
      << "merge must surface the LOWEST task id error across shards";
  EXPECT_NE(nullptr, std::strstr(merged.firstError()->error.c_str(), "hfRatio"));

  // The `diff` comparator treats errors as content: merged == single.
  EXPECT_TRUE(single.sameResults(merged));
}

TEST(FailingCampaign, InvalidHfRatioFailsIdenticallyOnBothPrefixCachePaths) {
  // flowPrefixKey deliberately excludes hfRatio, so a bad-hf item can share
  // a prefix with a valid one. Whichever item populates the cache first,
  // the bad item must fail with the SAME error (error text is part of
  // sameResults — a cache-order-dependent message would break the
  // sharded-vs-single bit-identity contract).
  auto makeItem = [](int hf, const std::string& label) {
    CampaignItem item;
    item.caseStudy = ips::buildFilterCase();
    item.options.sensorKind = insertion::SensorKind::Counter;
    item.options.hfRatio = hf;
    item.options.testbenchCycles = 40;
    item.options.measureRtl = false;
    item.options.measureOptimized = false;
    item.options.runMutationAnalysis = false;
    item.prefixKey = core::flowPrefixKey(item.caseStudy, item.options);
    item.label = label;
    return item;
  };
  // Same prefix key despite different hfRatio values (that is the point).
  ASSERT_EQ(makeItem(4, "a").prefixKey, makeItem(0, "b").prefixKey);

  auto runOrder = [&](bool badFirst) {
    clearProcessCaches();
    CampaignSpec spec;
    spec.name = badFirst ? "bad-first" : "good-first";
    spec.executor.threads = 1;  // serial: deterministic population order
    if (badFirst) {
      spec.items.push_back(makeItem(0, "bad"));
      spec.items.push_back(makeItem(4, "good"));
    } else {
      spec.items.push_back(makeItem(4, "good"));
      spec.items.push_back(makeItem(0, "bad"));
    }
    return runCampaign(spec);
  };

  const CampaignResult goodFirst = runOrder(false);  // bad item hits the cached prefix
  const CampaignResult badFirst = runOrder(true);    // bad item would build the prefix
  const CampaignItemResult* viaCache = goodFirst.find("bad");
  const CampaignItemResult* direct = badFirst.find("bad");
  ASSERT_NE(nullptr, viaCache);
  ASSERT_NE(nullptr, direct);
  EXPECT_NE(nullptr, std::strstr(viaCache->error.c_str(), "hfRatio")) << viaCache->error;
  EXPECT_EQ(direct->error, viaCache->error)
      << "error text must not depend on which item populated the prefix cache";
  // The good item succeeds in both orders.
  EXPECT_TRUE(goodFirst.find("good")->error.empty());
  EXPECT_TRUE(badFirst.find("good")->error.empty());
}

TEST(FailingCampaign, ExitCodeZeroForCleanCampaigns) {
  CampaignResult ok;
  ok.items.resize(2);
  EXPECT_EQ(0, campaignExitCode(ok));
  EXPECT_EQ(nullptr, ok.firstError());
  ok.items[1].error = "boom";
  ok.items[1].taskId = 1;
  EXPECT_EQ(3, campaignExitCode(ok));
  ASSERT_NE(nullptr, ok.firstError());
  EXPECT_EQ(1u, ok.firstError()->taskId);
}

}  // namespace
}  // namespace xlv::campaign
