// Chaos conformance suite: the REAL xlv_campaignd daemon process under
// XLV_FAULTS (util/fault_point.h), driven over its Unix socket by in-process
// clients. The invariant locked here is the PR's acceptance criterion:
// every accepted campaign either completes bit-identical to a local run
// (per surviving item when units were quarantined) or fails with a
// STRUCTURED, attributed error — and the server process itself never dies.
// A SIGTERM always drains it to exit code 0 with a ledger that says so.
//
// The fault env is injected ONLY into the daemon's environment, so the
// in-process clients and the local reference runs stay clean. Workers
// inherit the daemon's env and arm the same fault points (their main()
// calls initFaultPointsFromEnv), which is intentional: frame.write and
// store.write chaos must hit both sides of every pipe.
#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/server.h"
#include "campaign/shard.h"
#include "core/flow.h"
#include "util/subprocess.h"

#ifdef XLV_CAMPAIGND_BIN

namespace xlv::campaign {
namespace {

/// Keeps the TEST process env clean of every chaos knob, so only the
/// daemon's extraEnv decides what faults fly.
struct CleanEnv {
  CleanEnv() { clear(); }
  ~CleanEnv() { clear(); }
  static void clear() {
    for (const char* v : {"XLV_FAULTS", "XLV_TEST_DIE_AFTER_ITEMS",
                          "XLV_TEST_HANG_AFTER_ITEMS", "XLV_TEST_EXIT_AFTER_ITEMS",
                          "XLV_TEST_FAULT_WORKER", "XLV_TEST_POISON_ITEM",
                          "XLV_TEST_POISON_MUTANT"}) {
      ::unsetenv(v);
    }
  }
};

/// The real daemon as a child process: spawn `xlv_campaignd serve` with a
/// chaos env, wait for the listener, SIGTERM it to drain, and read back the
/// ledger JSON it wrote on exit.
struct Daemon {
  util::Subprocess proc;
  std::string sock;
  std::string ledgerFile;

  explicit Daemon(const util::SubprocessEnv& extraEnv, int workers = 2) {
    static int counter = 0;
    const std::string id =
        std::to_string(::getpid()) + "-" + std::to_string(counter++);
    sock = "/tmp/xlv-chaos-" + id + ".sock";
    ledgerFile = "/tmp/xlv-chaos-ledger-" + id + ".json";
    ::unlink(sock.c_str());
    ::unlink(ledgerFile.c_str());
    proc = util::Subprocess::spawn(
        {XLV_CAMPAIGND_BIN, "serve", "--socket", sock, "--workers",
         std::to_string(workers), "--max-fragment", "2", "--heartbeat-ms", "50",
         "--heartbeat-timeout-ms", "5000", "--max-attempts", "3",
         "--max-respawns", "50", "--ledger", ledgerFile},
        extraEnv);
  }

  ~Daemon() {
    if (proc.started() && proc.running()) proc.kill(SIGKILL);
    if (proc.started()) proc.wait();
    ::unlink(sock.c_str());
    ::unlink(ledgerFile.c_str());
  }

  bool waitListening() {
    for (int i = 0; i < 500; ++i) {
      if (::access(sock.c_str(), F_OK) == 0) return true;
      if (!proc.running()) return false;
      ::usleep(10000);
    }
    return false;
  }

  /// SIGTERM, wait for exit, and return the exit code (-1 on signal death —
  /// which is exactly what the conformance tests must never see).
  int drain() {
    if (proc.running()) proc.kill(SIGTERM);
    return proc.wait();
  }

  std::string ledgerJson() const {
    std::ifstream in(ledgerFile);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  SubmitOptions clientOptions(const std::string& name) const {
    SubmitOptions o;
    o.socketPath = sock;
    o.clientName = name;
    return o;
  }
};

const CampaignResult& localSingle() {
  static const CampaignResult* ref = [] {
    core::clearProcessCaches();
    auto* r = new CampaignResult(runCampaign(builtinCampaignSpec("single")));
    core::clearProcessCaches();
    return r;
  }();
  return *ref;
}

CampaignSpec oneItemSpec(const std::string& name) {
  CampaignSpec spec = builtinCampaignSpec("smoke");
  spec.items.resize(1);
  spec.name = name;
  return spec;
}

bool sameItem(const CampaignItemResult& a, const CampaignItemResult& b) {
  CampaignResult x, y;
  x.items.push_back(a);
  y.items.push_back(b);
  return x.sameResults(y);
}

/// THE invariant: a campaign that reports clean completion must match the
/// local truth item-for-item (quarantined items excepted — they must carry
/// their attribution instead); any other outcome must be structured, never
/// a silent empty result.
void expectConformant(const SubmitOutcome& out, const CampaignResult& local,
                      const std::string& who) {
  if (out.done && out.error.empty()) {
    ASSERT_EQ(out.result.items.size(), local.items.size()) << who;
    for (std::size_t i = 0; i < local.items.size(); ++i) {
      if (!out.result.items[i].error.empty()) {
        EXPECT_NE(out.result.items[i].error.find("quarantined"), std::string::npos)
            << who << " item " << i << ": unattributed error: "
            << out.result.items[i].error;
        continue;
      }
      EXPECT_TRUE(sameItem(out.result.items[i], local.items[i]))
          << who << " item " << i << " diverged from the local run";
    }
  } else if (out.rejected) {
    EXPECT_FALSE(out.rejectReason.empty()) << who << ": reject without a reason";
  } else {
    EXPECT_FALSE(out.error.empty())
        << who << ": non-done outcome without a structured error";
  }
}

#define XLV_REQUIRE_CHAOS_DAEMON()                                          \
  do {                                                                      \
    if (::access(XLV_CAMPAIGND_BIN, X_OK) != 0)                             \
      GTEST_SKIP() << "xlv_campaignd binary not built: " XLV_CAMPAIGND_BIN; \
  } while (0)

TEST(CampaignChaos, FaultStormNeverKillsTheServerAndSurvivorsStayBitIdentical) {
  XLV_REQUIRE_CHAOS_DAEMON();
  CleanEnv clean;
  // The storm: worker 0's spawn fails outright (the slot is retired),
  // worker 1 SIGKILLs itself on its first unit (the slot is respawned),
  // every frame write on either side can come up short, and the artifact
  // store drops a fifth of its writes (degrading to recomputation).
  // Deterministic seeds keep the schedule reproducible.
  Daemon daemon({{"XLV_FAULTS",
                  "worker.spawn:fail:times=1,"
                  "frame.write:short:p=0.01:seed=3,"
                  "store.write:fail:p=0.2:seed=4"},
                 {"XLV_TEST_FAULT_WORKER", "1"},
                 {"XLV_TEST_DIE_AFTER_ITEMS", "0"}},
                3);
  ASSERT_TRUE(daemon.waitListening()) << "daemon died on startup";

  core::clearProcessCaches();
  const CampaignResult localOne = runCampaign(oneItemSpec("chaos-a"));

  const SubmitOutcome big = submitCampaign(builtinCampaignSpec("single"),
                                           daemon.clientOptions("chaos-big"));
  expectConformant(big, localSingle(), "chaos-big");
  for (const char* name : {"chaos-a", "chaos-b"}) {
    SubmitOptions o = daemon.clientOptions(name);
    o.maxRetries = 2;
    o.retryBaseMs = 50;
    o.retryJitterSeed = 11;
    const SubmitOutcome out = submitCampaign(oneItemSpec(name), o);
    // The two one-item specs are identical up to the name the ledger sees.
    expectConformant(out, localOne, name);
  }

  // The whole storm and the server is still standing — and a SIGTERM still
  // means a clean drain, exit 0, and a ledger that records it.
  ASSERT_TRUE(daemon.proc.running()) << "server died under chaos";
  EXPECT_EQ(daemon.drain(), 0);
  const std::string ledger = daemon.ledgerJson();
  ASSERT_FALSE(ledger.empty()) << "no ledger written on drain";
  EXPECT_NE(ledger.find("\"drained\": true"), std::string::npos) << ledger;
}

TEST(CampaignChaos, AcceptFaultsBounceConnectionsButNeverTheServer) {
  XLV_REQUIRE_CHAOS_DAEMON();
  CleanEnv clean;
  // More than half of all accepted connections are dropped on the floor.
  // Clients see structured connect/transport errors; retries (and plain
  // persistence) still get campaigns through, and the listener never dies.
  Daemon daemon({{"XLV_FAULTS", "server.accept:fail:p=0.6:seed=9"}}, 2);
  ASSERT_TRUE(daemon.waitListening()) << "daemon died on startup";

  core::clearProcessCaches();
  const CampaignResult local = runCampaign(oneItemSpec("accept-chaos"));
  int completed = 0;
  for (int i = 0; i < 20 && completed == 0; ++i) {
    const SubmitOutcome out =
        submitCampaign(oneItemSpec("accept-chaos"), daemon.clientOptions("accept"));
    expectConformant(out, local, "accept-chaos");
    if (out.done && out.error.empty()) ++completed;
    ASSERT_TRUE(daemon.proc.running()) << "server died on a dropped accept";
  }
  EXPECT_GT(completed, 0) << "no submission survived 20 attempts at p=0.6";
  EXPECT_EQ(daemon.drain(), 0);
}

TEST(CampaignChaos, MidRunSigtermDrainsTheInFlightCampaignAndExitsZero) {
  XLV_REQUIRE_CHAOS_DAEMON();
  CleanEnv clean;
  Daemon daemon({}, 1);
  ASSERT_TRUE(daemon.waitListening()) << "daemon died on startup";

  SubmitOutcome inflight;
  std::thread client([&] {
    SubmitOptions o = daemon.clientOptions("inflight");
    o.maxFragmentMutants = 1;  // longest tail: the drain has work to finish
    inflight = submitCampaign(builtinCampaignSpec("single"), o);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // First SIGTERM: drain. The in-flight campaign must still complete and
  // reach its client before the process exits 0.
  if (daemon.proc.running()) daemon.proc.kill(SIGTERM);
  client.join();
  ASSERT_TRUE(inflight.error.empty()) << inflight.error;
  ASSERT_TRUE(inflight.done);
  EXPECT_TRUE(localSingle().sameResults(inflight.result));
  EXPECT_EQ(daemon.proc.wait(), 0);

  const std::string ledger = daemon.ledgerJson();
  ASSERT_FALSE(ledger.empty());
  EXPECT_NE(ledger.find("\"drained\": true"), std::string::npos) << ledger;
  EXPECT_NE(ledger.find("\"campaignsCompleted\": 1"), std::string::npos) << ledger;
}

}  // namespace
}  // namespace xlv::campaign

#else  // !XLV_CAMPAIGND_BIN

TEST(CampaignChaos, DaemonBinaryUnavailable) {
  GTEST_SKIP() << "built without XLV_CAMPAIGND_BIN (tools disabled)";
}

#endif
