// Executor unit tests: task coverage, deterministic merge order, serial
// purity, exception propagation, and thread-count resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "campaign/executor.h"

namespace xlv::campaign {
namespace {

TEST(Executor, RunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    Executor ex(ExecutorConfig{threads, 0});
    constexpr std::size_t kTasks = 250;
    std::vector<std::atomic<int>> hits(kTasks);
    ex.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(1, hits[i].load()) << "task " << i << " with " << threads << " threads";
    }
  }
}

TEST(Executor, MapMergesInTaskIdOrder) {
  for (int threads : {1, 3, 8}) {
    Executor ex(ExecutorConfig{threads, 2});
    const std::vector<int> out =
        ex.map<int>(100, [](std::size_t i) { return static_cast<int>(i) * 7; });
    ASSERT_EQ(100u, out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(static_cast<int>(i) * 7, out[i]) << threads << " threads";
    }
  }
}

TEST(Executor, SingleThreadRunsInlineInIndexOrder) {
  Executor ex(ExecutorConfig{1, 0});
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  ex.run(20, [&](std::size_t i) {
    EXPECT_EQ(caller, std::this_thread::get_id());
    order.push_back(i);
  });
  ASSERT_EQ(20u, order.size());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(i, order[i]);
}

TEST(Executor, EmptyRunIsANoop) {
  Executor ex(ExecutorConfig{4, 0});
  bool called = false;
  ex.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Executor, PropagatesTaskException) {
  for (int threads : {1, 4}) {
    Executor ex(ExecutorConfig{threads, 1});
    EXPECT_THROW(
        ex.run(16,
               [](std::size_t i) {
                 if (i == 5) throw std::runtime_error("task 5 failed");
               }),
        std::runtime_error)
        << threads << " threads";
  }
}

TEST(Executor, RethrowsLowestIndexExceptionAtAnyThreadCount) {
  // Tasks 3 and 11 both fail; the reported failure must be task 3's,
  // matching what the serial loop would throw first.
  for (int threads : {1, 2, 8}) {
    Executor ex(ExecutorConfig{threads, 1});
    std::string message;
    try {
      ex.run(16, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("task 3 failed");
        if (i == 11) throw std::runtime_error("task 11 failed");
      });
      FAIL() << "expected an exception with " << threads << " threads";
    } catch (const std::runtime_error& e) {
      message = e.what();
    }
    EXPECT_EQ("task 3 failed", message) << threads << " threads";
  }
}

TEST(Executor, ExplicitThreadCountWins) {
  EXPECT_EQ(3, Executor(ExecutorConfig{3, 0}).threads());
  EXPECT_EQ(1, Executor(ExecutorConfig{1, 0}).threads());
}

TEST(Executor, EnvOverrideDrivesAutoThreadCount) {
  ASSERT_EQ(0, setenv("XLV_THREADS", "5", 1));
  EXPECT_EQ(5, resolveThreadCount(0));
  EXPECT_EQ(2, resolveThreadCount(2)) << "explicit request beats the env override";

  ASSERT_EQ(0, setenv("XLV_THREADS", "not-a-number", 1));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  EXPECT_EQ(hw == 0 ? 1 : hw, resolveThreadCount(0)) << "garbage env falls back to hardware";

  ASSERT_EQ(0, unsetenv("XLV_THREADS"));
  EXPECT_EQ(hw == 0 ? 1 : hw, resolveThreadCount(0));
}

TEST(Executor, MalformedEnvOverrideWarnsAndFallsBackToAuto) {
  // Strict parsing: "4abc" must not silently run on 4 threads, and every
  // malformed or out-of-range value degrades to the auto thread count with
  // a visible warning (an empty variable is simply unset — no warning).
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int autoThreads = hw == 0 ? 1 : hw;
  resetThreadEnvWarningsForTest();  // warnings are once per value per process
  struct Case {
    const char* value;
    bool expectWarning;
  };
  for (const Case& c : {Case{"", false}, Case{"0", true}, Case{"-3", true},
                        Case{"foo", true}, Case{"99999", true}, Case{"4abc", true}}) {
    ASSERT_EQ(0, setenv("XLV_THREADS", c.value, 1));
    testing::internal::CaptureStderr();
    EXPECT_EQ(autoThreads, resolveThreadCount(0)) << "XLV_THREADS='" << c.value << "'";
    const std::string warnings = testing::internal::GetCapturedStderr();
    if (c.expectWarning) {
      EXPECT_NE(std::string::npos, warnings.find("XLV_THREADS"))
          << "expected a warning for XLV_THREADS='" << c.value << "'";
    } else {
      EXPECT_EQ(std::string::npos, warnings.find("XLV_THREADS"))
          << "unexpected warning for XLV_THREADS='" << c.value << "': " << warnings;
    }
  }
  ASSERT_EQ(0, unsetenv("XLV_THREADS"));
}

}  // namespace
}  // namespace xlv::campaign
