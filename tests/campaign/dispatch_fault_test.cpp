// The dispatcher's crash-recovery lock: fault-injection against the REAL
// daemon worker binary (tools/xlv_campaignd, via the XLV_CAMPAIGND_BIN
// compile definition).
//
// Each test runs the builtin "single" campaign through runDispatcher with a
// 3-worker pool of actual subprocesses, injects one fault into worker 0's
// first generation through the XLV_TEST_* hooks (SIGKILL mid-shard, hang
// without heartbeats, nonzero exit), and asserts the two halves of the
// acceptance criterion:
//
//   1. the lost unit shows up in ledger.requeuedShards with the right
//      reason, and
//   2. the merged result is CampaignResult::sameResults-bit-identical to a
//      single-process runCampaign of the same spec — the retry changed
//      nothing observable.
//
// The tests skip (not fail) when the tools were not built.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/dispatch.h"
#include "campaign/shard.h"
#include "core/flow.h"

namespace xlv::campaign {
namespace {

const char* const kFaultVars[] = {
    "XLV_TEST_DIE_AFTER_ITEMS",
    "XLV_TEST_HANG_AFTER_ITEMS",
    "XLV_TEST_EXIT_AFTER_ITEMS",
    "XLV_TEST_FAULT_WORKER",
};

/// Clears every fault hook on construction AND destruction, so a failing
/// test cannot leak a fault into its neighbors; set() arms one hook for the
/// lifetime of the guard.
struct FaultEnv {
  FaultEnv() { clear(); }
  ~FaultEnv() { clear(); }
  static void clear() {
    for (const char* v : kFaultVars) ::unsetenv(v);
  }
  void set(const char* name, const char* value) { ::setenv(name, value, 1); }
};

#ifdef XLV_CAMPAIGND_BIN

/// Single-process truth, computed once per test binary with cold caches.
const CampaignResult& referenceResult() {
  static const CampaignResult* ref = [] {
    core::clearProcessCaches();
    auto* r = new CampaignResult(runCampaign(builtinCampaignSpec("single")));
    core::clearProcessCaches();
    return r;
  }();
  return *ref;
}

DispatchOptions daemonOptions() {
  DispatchOptions opt;
  opt.workers = 3;
  // Fragment to 2 mutants per unit so a dozen-plus stealable units exist
  // and a mid-campaign kill genuinely loses work in flight.
  opt.maxFragmentMutants = 2;
  opt.workerCommand = {XLV_CAMPAIGND_BIN, "worker"};
  opt.heartbeatIntervalMs = 100;
  opt.heartbeatTimeoutMs = 5000;
  return opt;
}

#define XLV_REQUIRE_DAEMON()                                                \
  do {                                                                      \
    if (::access(XLV_CAMPAIGND_BIN, X_OK) != 0)                             \
      GTEST_SKIP() << "xlv_campaignd binary not built: " XLV_CAMPAIGND_BIN; \
  } while (0)

TEST(DispatchFault, CleanDaemonRunIsBitIdenticalToSingleProcess) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  const CampaignSpec spec = builtinCampaignSpec("single");
  const DispatchResult out = runDispatcher(spec, daemonOptions());
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));
  EXPECT_GT(out.ledger.tasksTotal, 1u) << "fragmentation produced no stealable units";
  EXPECT_EQ(out.ledger.tasksCompleted, out.ledger.tasksTotal);
  EXPECT_EQ(out.ledger.submissions, out.ledger.tasksTotal);
  EXPECT_TRUE(out.ledger.requeuedShards.empty());
  EXPECT_EQ(out.ledger.workerRespawns, 0u);
  EXPECT_EQ(out.ledger.workersKilled, 0u);
  EXPECT_EQ(out.ledger.workersSpawned, 3u);
}

TEST(DispatchFault, SigkilledWorkerShardIsRequeuedAndMergeStaysBitIdentical) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // Worker 0 (generation 0) raises SIGKILL on accepting its first unit —
  // the crash-mid-shard case of the ISSUE, via the documented test hook.
  env.set("XLV_TEST_DIE_AFTER_ITEMS", "0");
  const CampaignSpec spec = builtinCampaignSpec("single");
  const DispatchResult out = runDispatcher(spec, daemonOptions());

  // The lost unit is visible in the ledger...
  ASSERT_FALSE(out.ledger.requeuedShards.empty());
  const RequeueRecord& rec = out.ledger.requeuedShards.front();
  EXPECT_EQ(rec.reason, "worker-signal");
  EXPECT_EQ(rec.workerIndex, 0u);
  EXPECT_EQ(rec.generation, 0u);
  EXPECT_EQ(rec.attempt, 1u);
  EXPECT_GE(out.ledger.workerRespawns, 1u);
  EXPECT_GT(out.ledger.submissions, out.ledger.tasksTotal)
      << "a re-queued unit must be submitted again";
  EXPECT_EQ(out.ledger.tasksCompleted, out.ledger.tasksTotal);

  // ...and invisible in the result: the retry is bit-identical.
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));
}

TEST(DispatchFault, HungWorkerHitsHeartbeatTimeoutAndItsShardIsRequeued) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // Worker 0 accepts a unit, then goes silent (no heartbeats, no result).
  env.set("XLV_TEST_HANG_AFTER_ITEMS", "0");
  DispatchOptions opt = daemonOptions();
  // Tight liveness window so the test completes quickly; the real default
  // stays at 10 s.
  opt.heartbeatIntervalMs = 50;
  opt.heartbeatTimeoutMs = 400;
  const CampaignSpec spec = builtinCampaignSpec("single");
  const DispatchResult out = runDispatcher(spec, opt);

  ASSERT_FALSE(out.ledger.requeuedShards.empty());
  EXPECT_EQ(out.ledger.requeuedShards.front().reason, "heartbeat-timeout");
  EXPECT_GE(out.ledger.workersKilled, 1u) << "the hung worker must be SIGKILLed";
  EXPECT_GE(out.ledger.workerRespawns, 1u);
  EXPECT_EQ(out.ledger.tasksCompleted, out.ledger.tasksTotal);
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));
}

TEST(DispatchFault, NonzeroExitWorkerShardIsRequeued) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  env.set("XLV_TEST_EXIT_AFTER_ITEMS", "0");
  const CampaignSpec spec = builtinCampaignSpec("single");
  const DispatchResult out = runDispatcher(spec, daemonOptions());

  ASSERT_FALSE(out.ledger.requeuedShards.empty());
  EXPECT_EQ(out.ledger.requeuedShards.front().reason, "worker-exit");
  EXPECT_GE(out.ledger.workerRespawns, 1u);
  EXPECT_EQ(out.ledger.tasksCompleted, out.ledger.tasksTotal);
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));
}

TEST(DispatchFault, FaultOnALaterWorkerSlotRecoversToo) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // Same SIGKILL hook, but aimed at worker 2 — recovery must not depend on
  // which slot dies.
  env.set("XLV_TEST_DIE_AFTER_ITEMS", "0");
  env.set("XLV_TEST_FAULT_WORKER", "2");
  const CampaignSpec spec = builtinCampaignSpec("single");
  const DispatchResult out = runDispatcher(spec, daemonOptions());

  ASSERT_FALSE(out.ledger.requeuedShards.empty());
  EXPECT_EQ(out.ledger.requeuedShards.front().workerIndex, 2u);
  EXPECT_EQ(out.ledger.requeuedShards.front().reason, "worker-signal");
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));
}

TEST(DispatchFault, DispatcherRejectsMalformedOptions) {
  FaultEnv env;
  const CampaignSpec spec = builtinCampaignSpec("single");
  {
    DispatchOptions opt = daemonOptions();
    opt.workerCommand.clear();
    EXPECT_THROW(runDispatcher(spec, opt), std::invalid_argument);
  }
  {
    DispatchOptions opt = daemonOptions();
    opt.heartbeatTimeoutMs = 0;
    EXPECT_THROW(runDispatcher(spec, opt), std::invalid_argument);
  }
  {
    DispatchOptions opt = daemonOptions();
    opt.maxTaskAttempts = 0;
    EXPECT_THROW(runDispatcher(spec, opt), std::invalid_argument);
  }
}

#else  // !XLV_CAMPAIGND_BIN

TEST(DispatchFault, DaemonBinaryUnavailable) {
  GTEST_SKIP() << "built without XLV_CAMPAIGND_BIN (tools disabled)";
}

#endif

}  // namespace
}  // namespace xlv::campaign
