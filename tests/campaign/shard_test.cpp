// Process-level sharding: the cross-shard bit-identity conformance suite.
//
// The single-process campaign is the truth; a sharded run — any shard
// count, whole items or mutant-range fragments, each shard executed with
// cold process caches exactly like a separate worker process — must merge
// back into a CampaignResult that CampaignResult::sameResults cannot tell
// apart from that truth.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "campaign/serialize.h"
#include "campaign/shard.h"
#include "core/flow.h"

namespace xlv::campaign {
namespace {

void clearProcessCaches() { core::clearProcessCaches(); }

/// Run every shard of the plan as a separate worker process would see it:
/// cold caches per shard, spec/plan/output pushed through the wire codecs.
std::vector<ShardOutput> runAllShards(const CampaignSpec& spec, const ShardPlan& plan) {
  const std::string specWire = encodeCampaignSpec(spec);
  const std::string planWire = encodeShardPlan(plan);
  std::vector<ShardOutput> outputs;
  for (int s = 0; s < plan.shardCount(); ++s) {
    clearProcessCaches();
    const CampaignSpec workerSpec = decodeCampaignSpec(specWire);
    const ShardPlan workerPlan = decodeShardPlan(planWire);
    outputs.push_back(
        decodeShardOutput(encodeShardOutput(runShard(workerSpec, workerPlan, s))));
  }
  clearProcessCaches();
  return outputs;
}

// --- the acceptance workload: PR 2 sweep, N in {2, 3, 5} ---------------------

TEST(Shard, MergedSweepIsBitIdenticalToSingleProcessForAnyShardCount) {
  const CampaignSpec spec = builtinCampaignSpec("smoke");
  ASSERT_EQ(8u, spec.items.size()) << "2 IPs x 2 sensor kinds x 2 corners";

  clearProcessCaches();
  const CampaignResult single = runCampaign(spec);
  EXPECT_TRUE(single.ok());

  std::vector<CampaignResult> merged;
  for (const int shards : {2, 3, 5}) {
    const ShardPlan plan = planShards(spec, ShardPlanOptions{shards, 0, {}});
    ASSERT_EQ(shards, plan.shardCount());
    merged.push_back(mergeShards(spec, runAllShards(spec, plan)));
    EXPECT_TRUE(merged.back().ok()) << shards << " shards";
    EXPECT_TRUE(single.sameResults(merged.back())) << shards << " shards vs single";
    EXPECT_EQ(single.items.size(), merged.back().items.size());
  }
  // Every pairing of shard counts agrees too (sameResults is the single
  // comparator, so this is transitivity made explicit).
  for (std::size_t i = 0; i < merged.size(); ++i) {
    for (std::size_t j = i + 1; j < merged.size(); ++j) {
      EXPECT_TRUE(merged[i].sameResults(merged[j])) << i << " vs " << j;
    }
  }
}

// --- mutant-range fragmentation of one oversized item ------------------------

TEST(Shard, OversizedItemSplitsByMutantRangeAndStitchesBack) {
  const CampaignSpec spec = builtinCampaignSpec("single");
  ASSERT_EQ(1u, spec.items.size());
  const std::size_t mutants =
      countFlowMutants(spec.items[0].caseStudy, spec.items[0].options);
  ASSERT_GE(mutants, 3u) << "Counter sets carry a DeltaDelay triple per sensor";

  clearProcessCaches();
  const CampaignResult single = runCampaign(spec);
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(mutants, single.items[0].report.analysis.results.size());

  ShardPlanOptions opt;
  opt.shards = 3;
  opt.maxFragmentMutants = 2;
  const ShardPlan plan = planShards(spec, opt);
  // The one item must actually fragment: every unit is a range, ranges tile
  // [0, mutants) in order.
  std::size_t units = 0, expectBegin = 0;
  for (const auto& shard : plan.shards) {
    for (const auto& u : shard) {
      ++units;
      EXPECT_FALSE(u.wholeItem());
      EXPECT_EQ(0u, u.taskId);
      EXPECT_EQ(expectBegin, u.mutantBegin);
      EXPECT_LE(u.mutantEnd - u.mutantBegin, opt.maxFragmentMutants);
      expectBegin = u.mutantEnd;
    }
  }
  EXPECT_EQ(mutants, expectBegin);
  EXPECT_EQ((mutants + 1) / 2, units);

  const CampaignResult merged = mergeShards(spec, runAllShards(spec, plan));
  EXPECT_TRUE(merged.ok());
  EXPECT_TRUE(single.sameResults(merged));
  // The stitched analysis is the full set with global ids in order.
  ASSERT_EQ(mutants, merged.items[0].report.analysis.results.size());
  EXPECT_EQ(single.items[0].report.analysis.results,
            merged.items[0].report.analysis.results);
}

// --- planner properties ------------------------------------------------------

TEST(Shard, PlannerIsDeterministicContiguousAndComplete) {
  const CampaignSpec spec = builtinCampaignSpec("smoke");
  const ShardPlan a = planShards(spec, ShardPlanOptions{3, 0, {}});
  const ShardPlan b = planShards(spec, ShardPlanOptions{3, 0, {}});
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(encodeShardPlan(a), encodeShardPlan(b));

  // Whole-item planning covers every task id exactly once, in order, with
  // contiguous slices per shard.
  std::size_t expect = 0;
  for (const auto& shard : a.shards) {
    for (const auto& u : shard) {
      EXPECT_TRUE(u.wholeItem());
      EXPECT_EQ(expect++, u.taskId);
    }
  }
  EXPECT_EQ(spec.items.size(), expect);

  // More shards than units: trailing shards are empty, never invalid.
  const ShardPlan wide = planShards(spec, ShardPlanOptions{64, 0, {}});
  std::size_t covered = 0;
  for (const auto& shard : wide.shards) covered += shard.size();
  EXPECT_EQ(spec.items.size(), covered);

  EXPECT_THROW(planShards(spec, ShardPlanOptions{0, 0, {}}), std::invalid_argument);
  EXPECT_THROW(planShards(spec, ShardPlanOptions{2, 0, {1, 2, 3}}), std::invalid_argument);
}

// --- failure propagation across the shard boundary ---------------------------

TEST(Shard, MergeSurfacesTheLowestTaskIdError) {
  // Items 1 and 3 carry a broken case study (no module): each fails inside
  // its shard, the campaign captures the error per item, and the merged
  // result reports the LOWEST task id first — the same failure the
  // single-process run surfaces.
  CampaignSpec spec;
  spec.name = "broken-items";
  for (int i = 0; i < 5; ++i) {
    CampaignItem item;
    item.caseStudy = ips::buildFilterCase();
    item.options.testbenchCycles = 40;
    item.options.measureRtl = false;
    item.options.measureOptimized = false;
    item.options.runMutationAnalysis = false;
    item.label = "item" + std::to_string(i);
    if (i == 1 || i == 3) item.caseStudy.module = nullptr;
    spec.items.push_back(std::move(item));
  }

  clearProcessCaches();
  const CampaignResult single = runCampaign(spec);
  EXPECT_FALSE(single.ok());
  ASSERT_NE(nullptr, single.firstError());
  EXPECT_EQ(1u, single.firstError()->taskId);

  // Shards run on the in-memory spec (not the wire round trip — the codec
  // rebuilds case studies by name, which would heal the broken module).
  const ShardPlan plan = planShards(spec, ShardPlanOptions{3, 0, {}});
  std::vector<ShardOutput> outputs;
  for (int s = 0; s < plan.shardCount(); ++s) {
    clearProcessCaches();
    outputs.push_back(runShard(spec, plan, s));
  }
  const CampaignResult merged = mergeShards(spec, outputs);
  EXPECT_FALSE(merged.ok());
  ASSERT_NE(nullptr, merged.firstError());
  EXPECT_EQ(1u, merged.firstError()->taskId);
  EXPECT_NE(nullptr, std::strstr(merged.firstError()->error.c_str(), "has no module"));
  EXPECT_TRUE(single.sameResults(merged)) << "errors are part of the compared content";
}

// --- merge validation --------------------------------------------------------

TEST(Shard, MergeRejectsIncompleteMismatchedOrDuplicateOutputs) {
  const CampaignSpec spec = builtinCampaignSpec("single");
  const ShardPlan plan = planShards(spec, ShardPlanOptions{2, 0, {}});
  clearProcessCaches();
  std::vector<ShardOutput> outputs = runAllShards(spec, plan);
  ASSERT_EQ(2u, outputs.size());

  // Complete set merges.
  EXPECT_NO_THROW(mergeShards(spec, outputs));

  // A missing shard is incomplete.
  EXPECT_THROW(mergeShards(spec, {outputs[0]}), std::invalid_argument);

  // The same shard twice still leaves shard 1 uncovered: incomplete. (The
  // duplicate itself is tolerated now — see
  // MergeDeduplicatesDoubleSubmittedShardsByFragmentId.)
  EXPECT_THROW(mergeShards(spec, {outputs[0], outputs[0]}), std::invalid_argument);

  // Outputs from a different spec are rejected by fingerprint.
  CampaignSpec other = spec;
  other.name = "renamed";
  EXPECT_THROW(mergeShards(other, outputs), std::invalid_argument);

  // A stale plan (fingerprint mismatch) cannot even start a shard run.
  const ShardPlan stalePlan = planShards(other, ShardPlanOptions{2, 0, {}});
  EXPECT_THROW(runShard(spec, stalePlan, 0), std::invalid_argument);
  EXPECT_THROW(runShard(spec, plan, 7), std::invalid_argument);
}

TEST(Shard, MergeDeduplicatesDoubleSubmittedShardsByFragmentId) {
  const CampaignSpec spec = builtinCampaignSpec("single");
  // Fragmented plan so both shards carry real mutant ranges.
  const ShardPlan plan = planShards(spec, ShardPlanOptions{2, 2, {}});
  clearProcessCaches();
  std::vector<ShardOutput> outputs = runAllShards(spec, plan);
  ASSERT_EQ(2u, outputs.size());
  ASSERT_FALSE(outputs[0].units.empty());
  ASSERT_FALSE(outputs[1].units.empty());

  const CampaignResult once = mergeShards(spec, outputs);

  // A crashed worker's retry can race its dead predecessor's
  // already-delivered result, so the dispatcher may hand the merge the same
  // shard twice. The merge dedups by fragment id and stays bit-identical...
  const CampaignResult twice = mergeShards(spec, {outputs[0], outputs[1], outputs[0]});
  EXPECT_TRUE(once.sameResults(twice));
  EXPECT_EQ(once.items.size(), twice.items.size());

  // ...independent of delivery order (results stream back in completion
  // order, which work stealing does not fix)...
  const CampaignResult shuffled = mergeShards(spec, {outputs[1], outputs[0], outputs[0]});
  EXPECT_TRUE(once.sameResults(shuffled));

  // ...while the duplicated work still lands in the ledgers: that
  // simulation time was truly spent twice.
  EXPECT_GE(twice.simSeconds, once.simSeconds);

  // A duplicate that DISAGREES is spec skew, not a retry: rejected.
  ShardOutput tampered = outputs[0];
  ASSERT_FALSE(tampered.result.items.empty());
  tampered.result.items[0].label += "-skew";
  EXPECT_THROW(mergeShards(spec, {outputs[0], outputs[1], tampered}),
               std::invalid_argument);
}

TEST(Shard, RunShardUnitsMatchesRunShardOnThePlannedUnits) {
  const CampaignSpec spec = builtinCampaignSpec("single");
  const ShardPlan plan = planShards(spec, ShardPlanOptions{2, 2, {}});
  clearProcessCaches();
  const ShardOutput viaPlan = runShard(spec, plan, 0);
  clearProcessCaches();
  // The dispatcher path: same units, no plan validation wrapper.
  const ShardOutput direct = runShardUnits(spec, plan.shards[0], 0, 2);
  clearProcessCaches();
  EXPECT_EQ(viaPlan.units, direct.units);
  EXPECT_EQ(viaPlan.shardIndex, direct.shardIndex);
  EXPECT_EQ(viaPlan.shardCount, direct.shardCount);
  EXPECT_TRUE(viaPlan.result.sameResults(direct.result));
}

TEST(Shard, PlanDispatchUnitsUnderpinsPlanShards) {
  const CampaignSpec spec = builtinCampaignSpec("single");
  const DispatchUnitPlan units = planDispatchUnits(spec, 2);
  ASSERT_EQ(units.units.size(), units.weights.size());
  ASSERT_GT(units.units.size(), 1u) << "fragmentation requested but not applied";
  EXPECT_EQ(units.specFnv, campaignSpecFnv(spec));
  for (const std::uint64_t w : units.weights) EXPECT_GE(w, 1u);
  // planShards is exactly a contiguous partition of this unit list.
  const ShardPlan plan = planShards(spec, ShardPlanOptions{3, 2, {}});
  std::vector<ShardUnit> flattened;
  for (const auto& shard : plan.shards) {
    flattened.insert(flattened.end(), shard.begin(), shard.end());
  }
  EXPECT_EQ(flattened, units.units);
  // Explicit per-item counts skip the probe; a size mismatch is rejected.
  const DispatchUnitPlan counted = planDispatchUnits(spec, 2, {4});
  EXPECT_EQ(counted.units.size(), 2u);
  EXPECT_THROW(planDispatchUnits(spec, 2, {4, 4}), std::invalid_argument);
}

}  // namespace
}  // namespace xlv::campaign
