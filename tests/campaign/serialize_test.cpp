// Wire-codec tests: byte-stable round trips for the campaign domain types,
// and strict rejection (with a diagnostic, never a crash or a silently
// skewed value) of truncated, version-mismatched and field-reordered inputs.
#include <gtest/gtest.h>

#include <string>

#include "campaign/serialize.h"
#include "campaign/shard.h"
#include "util/codec.h"

namespace xlv::campaign {
namespace {

using util::DecodeError;

CampaignSpec smokeSpec() { return builtinCampaignSpec("smoke"); }

/// A synthetic result exercising the awkward corners of the format:
/// separator bytes inside strings, exact doubles, empty lists, errors.
CampaignResult syntheticResult() {
  CampaignResult r;
  r.name = "synthetic=tricky:name\nwith newline";
  r.simSeconds = 1.0 / 3.0;
  r.goldenSeconds = 0.125;
  r.goldenCacheHits = 3;
  r.prefixCacheHits = 2;
  r.wallSeconds = 9.75e-3;
  r.threadsUsed = 8;

  CampaignItemResult it;
  it.taskId = 7;
  it.label = "Filter/razor/thr=0.25";
  it.error = "";
  it.taskSeconds = 0.75;
  it.goldenSeconds = 0.5;
  it.goldenFromCache = true;
  it.prefixShared = true;
  it.report.ipName = "Filter";
  it.report.sensorKind = insertion::SensorKind::Counter;
  it.report.hfRatio = 8;
  it.report.skippedEndpoints = 1;
  it.report.sensorAreaGates = 123.456;
  it.report.sta.criticalCount = 4;
  it.report.sta.thresholdPs = 250.5;
  it.report.sta.clockPeriodPs = 1000.0;
  it.report.sta.minSlackPs = -17.25;
  it.report.loc = {100, 140, 90, 110};
  it.report.sensors.push_back(insertion::InsertedSensor{
      "acc_reg", "sensor_0", "", "", "mv_0", "ok_0", 812.5});
  it.report.mutantSpecs.push_back(
      mutation::MutantSpec{"acc_reg", mutation::MutantKind::DeltaDelay, 3});
  it.report.analysis.cyclesPerRun = 120;
  it.report.analysis.simSeconds = 0.25;
  it.report.analysis.wallSeconds = 0.25;
  it.report.analysis.goldenSeconds = 0.1;
  it.report.analysis.goldenFromCache = false;
  it.report.analysis.threadsUsed = 2;
  analysis::MutantResult m;
  m.id = 5;
  m.endpoint = "acc_reg";
  m.kind = mutation::MutantKind::DeltaDelay;
  m.deltaTicks = 3;
  m.killed = true;
  m.detected = true;
  m.errorRisen = false;
  m.corrected = false;
  m.correctionChecked = false;
  m.measuredDelay = 42;
  it.report.analysis.results.push_back(m);
  r.items.push_back(it);

  CampaignItemResult failed;
  failed.taskId = 8;
  failed.label = "broken";
  failed.error = "flow: case study 'broken' has no module";
  r.items.push_back(failed);
  return r;
}

// --- round trips -------------------------------------------------------------

TEST(Serialize, CampaignSpecRoundTripIsByteStable) {
  const CampaignSpec spec = smokeSpec();
  const std::string wire = encodeCampaignSpec(spec);
  const CampaignSpec decoded = decodeCampaignSpec(wire);
  EXPECT_EQ(wire, encodeCampaignSpec(decoded));

  ASSERT_EQ(spec.items.size(), decoded.items.size());
  EXPECT_EQ(spec.name, decoded.name);
  EXPECT_EQ(spec.executor.threads, decoded.executor.threads);
  for (std::size_t i = 0; i < spec.items.size(); ++i) {
    const CampaignItem& a = spec.items[i];
    const CampaignItem& b = decoded.items[i];
    EXPECT_EQ(a.caseStudy.name, b.caseStudy.name);
    EXPECT_NE(nullptr, b.caseStudy.module) << "case study must be rebuilt by name";
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.prefixKey, b.prefixKey);
    EXPECT_EQ(a.options.sensorKind, b.options.sensorKind);
    EXPECT_EQ(a.options.testbenchCycles, b.options.testbenchCycles);
    EXPECT_EQ(a.options.staCorner.has_value(), b.options.staCorner.has_value());
    if (a.options.staCorner) {
      EXPECT_EQ(a.options.staCorner->name, b.options.staCorner->name);
      EXPECT_EQ(a.options.staCorner->processFactor, b.options.staCorner->processFactor);
    }
    EXPECT_EQ(a.options.mutantSet, b.options.mutantSet);
    EXPECT_EQ(a.options.useGoldenCache, b.options.useGoldenCache);
    EXPECT_EQ(a.options.analysisThreads, b.options.analysisThreads);
  }
  // Byte-stability is what makes the spec fingerprint process-portable.
  EXPECT_EQ(campaignSpecFnv(spec), campaignSpecFnv(decoded));
}

TEST(Serialize, CampaignResultRoundTripIsByteStable) {
  const CampaignResult r = syntheticResult();
  const std::string wire = encodeCampaignResult(r);
  const CampaignResult decoded = decodeCampaignResult(wire);
  EXPECT_EQ(wire, encodeCampaignResult(decoded));

  // sameResults covers labels, errors, and the whole compared report
  // subset; the ledger fields are checked explicitly.
  EXPECT_TRUE(r.sameResults(decoded));
  EXPECT_EQ(r.simSeconds, decoded.simSeconds);
  EXPECT_EQ(r.goldenSeconds, decoded.goldenSeconds);
  EXPECT_EQ(r.wallSeconds, decoded.wallSeconds);
  EXPECT_EQ(r.goldenCacheHits, decoded.goldenCacheHits);
  EXPECT_EQ(r.prefixCacheHits, decoded.prefixCacheHits);
  ASSERT_EQ(2u, decoded.items.size());
  EXPECT_EQ(7u, decoded.items[0].taskId);
  EXPECT_EQ(r.items[0].taskSeconds, decoded.items[0].taskSeconds);
  EXPECT_TRUE(decoded.items[0].goldenFromCache);
  EXPECT_EQ(r.items[0].report.sensorAreaGates, decoded.items[0].report.sensorAreaGates);
  EXPECT_EQ(r.items[0].report.sensors.size(), decoded.items[0].report.sensors.size());
  EXPECT_EQ("mv_0", decoded.items[0].report.sensors[0].measValSignal);
  EXPECT_EQ(r.items[0].report.analysis.results, decoded.items[0].report.analysis.results);
  EXPECT_EQ(r.items[1].error, decoded.items[1].error);
}

TEST(Serialize, MutantResultRoundTripIsByteStable) {
  analysis::MutantResult m;
  m.id = 11;
  m.endpoint = "pipe:reg=2";
  m.kind = mutation::MutantKind::MaxDelay;
  m.deltaTicks = -2;
  m.killed = true;
  m.correctionChecked = true;
  m.corrected = true;
  m.measuredDelay = ~0ULL;
  const std::string wire = encodeMutantResult(m);
  const analysis::MutantResult decoded = decodeMutantResult(wire);
  EXPECT_EQ(m, decoded);  // MutantResult has full-field operator==
  EXPECT_EQ(wire, encodeMutantResult(decoded));
}

TEST(Serialize, AnalysisReportRoundTripIsByteStable) {
  const analysis::AnalysisReport a = syntheticResult().items[0].report.analysis;
  const std::string wire = encodeAnalysisReport(a);
  const analysis::AnalysisReport decoded = decodeAnalysisReport(wire);
  EXPECT_TRUE(a.sameResults(decoded));
  EXPECT_EQ(a.simSeconds, decoded.simSeconds);
  EXPECT_EQ(wire, encodeAnalysisReport(decoded));
}

TEST(Serialize, ShardPlanAndOutputRoundTrip) {
  const CampaignSpec spec = smokeSpec();
  const ShardPlan plan = planShards(spec, ShardPlanOptions{3, 0, {}});
  const ShardPlan decoded = decodeShardPlan(encodeShardPlan(plan));
  EXPECT_EQ(plan.specFnv, decoded.specFnv);
  EXPECT_EQ(plan.specItems, decoded.specItems);
  EXPECT_EQ(plan.shards, decoded.shards);
  EXPECT_EQ(encodeShardPlan(plan), encodeShardPlan(decoded));

  ShardOutput out;
  out.specFnv = plan.specFnv;
  out.shardIndex = 1;
  out.shardCount = 3;
  out.units = plan.shards[1];
  out.result = syntheticResult();
  const ShardOutput outDecoded = decodeShardOutput(encodeShardOutput(out));
  EXPECT_EQ(out.units, outDecoded.units);
  EXPECT_TRUE(out.result.sameResults(outDecoded.result));
  EXPECT_EQ(encodeShardOutput(out), encodeShardOutput(outDecoded));
}

// --- strict rejection --------------------------------------------------------

TEST(Serialize, DecoderRejectsTruncatedInputs) {
  const std::string wire = encodeCampaignResult(syntheticResult());
  // Chop at several structurally different places: inside the header,
  // right after it, mid-field-name, mid-payload, and just before the final
  // newline. All must throw DecodeError, never crash or misparse.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, wire.find('\n') + 1, wire.find('\n') + 4,
        wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(decodeCampaignResult(wire.substr(0, cut)), DecodeError)
        << "cut at " << cut << " of " << wire.size();
  }
}

TEST(Serialize, DecoderRejectsVersionMismatch) {
  const std::string wire = encodeCampaignSpec(smokeSpec());
  std::string bumped = wire;
  const std::string needle = " v" + std::to_string(kCampaignCodecVersion) + "\n";
  const std::size_t pos = bumped.find(needle);
  ASSERT_NE(std::string::npos, pos);
  bumped.replace(pos, needle.size(),
                 " v" + std::to_string(kCampaignCodecVersion + 1) + "\n");
  try {
    decodeCampaignSpec(bumped);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_NE(nullptr, std::strstr(e.what(), "header mismatch")) << e.what();
  }
}

TEST(Serialize, DecoderRejectsWrongDocumentTag) {
  // A valid spec is not a valid result: the header tag check fires before
  // any field is interpreted.
  EXPECT_THROW(decodeCampaignResult(encodeCampaignSpec(smokeSpec())), DecodeError);
  EXPECT_THROW(decodeCampaignSpec(encodeCampaignResult(syntheticResult())), DecodeError);
}

TEST(Serialize, DecoderRejectsReorderedFields) {
  const std::string wire = encodeCampaignSpec(smokeSpec());
  // Swap the first two field lines after the header (name and
  // executor.threads). The smoke spec contains no newline payloads, so
  // line-swapping is a faithful "field reordering" corruption.
  const std::size_t l0 = wire.find('\n') + 1;
  const std::size_t l1 = wire.find('\n', l0) + 1;
  const std::size_t l2 = wire.find('\n', l1) + 1;
  const std::string reordered = wire.substr(0, l0) + wire.substr(l1, l2 - l1) +
                                wire.substr(l0, l1 - l0) + wire.substr(l2);
  try {
    decodeCampaignSpec(reordered);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_NE(nullptr, std::strstr(e.what(), "field order mismatch")) << e.what();
  }
}

TEST(Serialize, DecoderRejectsUnknownCaseStudyAndEnums) {
  CampaignSpec spec;
  spec.name = "bad";
  CampaignItem item;
  item.caseStudy.name = "NoSuchIp";  // encoding only needs the name
  spec.items.push_back(item);
  const std::string wire = encodeCampaignSpec(spec);
  try {
    decodeCampaignSpec(wire);
    FAIL() << "expected DecodeError";
  } catch (const DecodeError& e) {
    EXPECT_NE(nullptr, std::strstr(e.what(), "NoSuchIp")) << e.what();
  }

  // Corrupt an enum payload in place ("razor" -> "blade", same length).
  std::string enumWire = encodeCampaignSpec(smokeSpec());
  const std::size_t pos = enumWire.find("opt.sensorKind=5:razor");
  ASSERT_NE(std::string::npos, pos);
  enumWire.replace(pos, std::strlen("opt.sensorKind=5:razor"), "opt.sensorKind=5:blade");
  EXPECT_THROW(decodeCampaignSpec(enumWire), DecodeError);
}

TEST(Serialize, DecoderRejectsNonCanonicalNumbers) {
  // strto* would skip leading whitespace and accept '+'; the canonical
  // encoder never emits either, and accepting them would break the
  // byte-stability the spec fingerprints rely on.
  for (const char* payload : {" 5", "\t5", "\n5", "+5", "", "007"}) {
    util::Encoder e("num", 1);
    e.str("v", payload);
    {
      util::Decoder d(e.out(), "num", 1);
      EXPECT_THROW(d.u64("v"), DecodeError) << "u64 '" << payload << "'";
    }
    {
      util::Decoder d(e.out(), "num", 1);
      EXPECT_THROW(d.i64("v"), DecodeError) << "i64 '" << payload << "'";
    }
  }
  // Doubles additionally reject anything that is not the exact "%a"
  // hexfloat rendering: decimal text, uppercase, and values strtod
  // saturates (1e999 -> inf) re-render differently.
  for (const char* payload : {" 5", "+5", "", "1.5", "1e999", "0X1.8P+0", "007"}) {
    util::Encoder e("num", 1);
    e.str("v", payload);
    util::Decoder d(e.out(), "num", 1);
    EXPECT_THROW(d.f64("v"), DecodeError) << "f64 '" << payload << "'";
  }
}

TEST(Serialize, DecoderRejectsImplausibleListCounts) {
  // A corrupted count must throw before any caller resizes a vector from
  // it (100000000 items cannot fit in a few bytes of remaining input).
  util::Encoder e("num", 1);
  e.beginList("items", 100000000);
  util::Decoder d(e.out(), "num", 1);
  EXPECT_THROW(d.beginList("items"), DecodeError);
}

TEST(Serialize, DecoderRejectsTrailingData) {
  std::string wire = encodeMutantResult(analysis::MutantResult{});
  wire += "extra=1:x\n";
  EXPECT_THROW(decodeMutantResult(wire), DecodeError);
}

}  // namespace
}  // namespace xlv::campaign
