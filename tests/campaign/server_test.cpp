// End-to-end tests of the campaign service (campaign/server.h): a real
// `runCampaignServer` loop driving real worker subprocesses (the
// XLV_CAMPAIGND_BIN daemon binary), with real `submitCampaign` clients on a
// Unix-domain socket — the full v6 wire protocol, not mocks.
//
// The load-bearing assertions mirror dispatch_fault_test.cpp's: whatever
// faults fly (worker SIGKILL, hung worker, client disconnect, backpressure
// rejects), every campaign that SURVIVES must merge bit-identical
// (CampaignResult::sameResults) to a single-process runCampaign of the same
// spec. Fairness and backpressure are made deterministic by hanging the
// single worker on the big campaign's first unit: while the heartbeat clock
// runs down, the competing submissions are admitted, so the post-recovery
// schedule — round-robin across campaigns — is observable without timing
// luck.
//
// The tests skip (not fail) when the tools were not built.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/dispatch.h"
#include "campaign/server.h"
#include "campaign/shard.h"
#include "core/flow.h"

namespace xlv::campaign {
namespace {

const char* const kFaultVars[] = {
    "XLV_TEST_DIE_AFTER_ITEMS",
    "XLV_TEST_HANG_AFTER_ITEMS",
    "XLV_TEST_EXIT_AFTER_ITEMS",
    "XLV_TEST_FAULT_WORKER",
};

/// Clears every fault hook on construction AND destruction, so a failing
/// test cannot leak a fault into its neighbors; set() arms one hook for the
/// lifetime of the guard.
struct FaultEnv {
  FaultEnv() { clear(); }
  ~FaultEnv() { clear(); }
  static void clear() {
    for (const char* v : kFaultVars) ::unsetenv(v);
  }
  void set(const char* name, const char* value) { ::setenv(name, value, 1); }
};

TEST(CampaignServer, LedgerJsonCarriesPerCampaignEntries) {
  ServeLedger ledger;
  ledger.campaignsAccepted = 2;
  ledger.campaignsRejected = 1;
  ledger.campaignsCancelled = 1;
  CampaignLedgerEntry entry;
  entry.campaignId = 7;
  entry.name = "smoke \"quoted\"";
  entry.unitsTotal = 4;
  entry.unitsCompleted = 2;
  entry.requeues = 1;
  entry.cancelled = true;
  entry.error = "gave up";
  ledger.campaigns.push_back(entry);
  const std::string json = encodeServeLedgerJson(ledger);
  EXPECT_NE(json.find("\"campaignsAccepted\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"campaignsRejected\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"campaignId\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"cancelled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"requeues\": 1"), std::string::npos);
  EXPECT_NE(json.find("smoke \\\"quoted\\\""), std::string::npos)
      << "ledger names must be JSON-escaped";
  EXPECT_NE(json.find("\"error\": \"gave up\""), std::string::npos);
}

#ifdef XLV_CAMPAIGND_BIN

/// Single-process truth, computed once per test binary with cold caches.
const CampaignResult& referenceResult() {
  static const CampaignResult* ref = [] {
    core::clearProcessCaches();
    auto* r = new CampaignResult(runCampaign(builtinCampaignSpec("single")));
    core::clearProcessCaches();
    return r;
  }();
  return *ref;
}

/// A one-item campaign a served client can finish in a single unit.
CampaignSpec smallSpec(const std::string& name) {
  CampaignSpec spec = builtinCampaignSpec("smoke");
  spec.items.resize(1);
  spec.name = name;
  return spec;
}

/// Runs runCampaignServer on a background thread against a fresh /tmp
/// socket, waits until the listener is up, and joins (returning the ledger)
/// when the server's maxCampaignsServed bound stops it.
struct ServerHarness {
  ServeOptions opt;
  ServeResult result;
  std::string error;

  explicit ServerHarness(const std::function<void(ServeOptions&)>& tweak = {}) {
    static int counter = 0;
    path_ = "/tmp/xlv-serve-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++) + ".sock";
    opt.socketPath = path_;
    opt.workers = 3;
    opt.maxFragmentMutants = 2;
    opt.workerCommand = {XLV_CAMPAIGND_BIN, "worker"};
    opt.heartbeatIntervalMs = 100;
    opt.heartbeatTimeoutMs = 5000;
    opt.maxCampaignsServed = 1;
    if (tweak) tweak(opt);
    thread_ = std::thread([this] {
      try {
        result = runCampaignServer(opt);
      } catch (const std::exception& e) {
        error = e.what();
      }
      stopped_.store(true);
    });
    // The listener exists before the first client can connect; a server
    // that died on startup stops the wait early (error tells why).
    for (int i = 0; i < 500; ++i) {
      if (stopped_.load()) break;
      if (!opt.socketPath.empty() && ::access(path_.c_str(), F_OK) == 0) break;
      if (opt.socketPath.empty() && i >= 20) break;  // TCP: just give it 200 ms
      ::usleep(10000);
    }
  }

  ~ServerHarness() {
    join();
    ::unlink(path_.c_str());
  }

  SubmitOptions clientOptions(const std::string& name) const {
    SubmitOptions o;
    o.socketPath = opt.socketPath;
    o.tcpPort = opt.tcpPort;
    o.clientName = name;
    return o;
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  const ServeLedger& ledger() {
    join();
    return result.ledger;
  }

 private:
  std::string path_;
  std::thread thread_;
  std::atomic<bool> stopped_{false};
};

#define XLV_REQUIRE_DAEMON()                                                \
  do {                                                                      \
    if (::access(XLV_CAMPAIGND_BIN, X_OK) != 0)                             \
      GTEST_SKIP() << "xlv_campaignd binary not built: " XLV_CAMPAIGND_BIN; \
  } while (0)

TEST(CampaignServer, ServedCampaignIsBitIdenticalToSingleProcess) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  ServerHarness server;
  const SubmitOutcome out =
      submitCampaign(builtinCampaignSpec("single"), server.clientOptions("clean"));
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_TRUE(out.accepted);
  ASSERT_TRUE(out.done);
  EXPECT_FALSE(out.rejected);
  EXPECT_GT(out.campaignId, 0u);
  EXPECT_GT(out.unitCount, 1u) << "fragmentation produced no stealable units";
  EXPECT_EQ(out.outputs.size(), out.unitCount) << "every unit streams one result";
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));

  const ServeLedger& ledger = server.ledger();
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_EQ(ledger.campaignsAccepted, 1u);
  EXPECT_EQ(ledger.campaignsCompleted, 1u);
  EXPECT_EQ(ledger.campaignsRejected, 0u);
  EXPECT_EQ(ledger.campaignsCancelled, 0u);
  EXPECT_EQ(ledger.workersSpawned, 3u);
  ASSERT_EQ(ledger.campaigns.size(), 1u);
  const CampaignLedgerEntry& entry = ledger.campaigns.front();
  EXPECT_EQ(entry.name, "clean");
  EXPECT_EQ(entry.unitsCompleted, entry.unitsTotal);
  EXPECT_EQ(entry.unitsTotal, out.unitCount);
  EXPECT_FALSE(entry.cancelled);
  EXPECT_TRUE(entry.error.empty());
}

TEST(CampaignServer, SigkilledWorkerIsRespawnedAndServedResultStaysBitIdentical) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // Worker 0 (generation 0) SIGKILLs itself on its first unit — the
  // acceptance criterion's fault-injected serve run.
  env.set("XLV_TEST_DIE_AFTER_ITEMS", "0");
  ServerHarness server;
  const SubmitOutcome out =
      submitCampaign(builtinCampaignSpec("single"), server.clientOptions("survivor"));
  ASSERT_TRUE(out.error.empty()) << out.error;
  ASSERT_TRUE(out.done);
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));

  const ServeLedger& ledger = server.ledger();
  EXPECT_GE(ledger.workerRespawns, 1u);
  ASSERT_EQ(ledger.campaigns.size(), 1u);
  // The lost unit's re-queue is attributed to the campaign that owned it.
  EXPECT_GE(ledger.campaigns.front().requeues, 1u);
  EXPECT_EQ(ledger.campaigns.front().unitsCompleted, ledger.campaigns.front().unitsTotal);
}

TEST(CampaignServer, SmallCampaignsFinishBeforeAHugeCampaignsTail) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // One worker, hung on the huge campaign's first unit: while the
  // heartbeat clock runs down, two small submissions arrive. Round-robin
  // fairness then MUST finish both one-unit campaigns before the huge
  // campaign's remaining units — deterministically, not by timing luck.
  env.set("XLV_TEST_HANG_AFTER_ITEMS", "0");
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;
    o.heartbeatIntervalMs = 50;
    o.heartbeatTimeoutMs = 800;
    o.maxCampaignsServed = 3;
  });
  using Clock = std::chrono::steady_clock;
  Clock::time_point hugeDone, smallDone[2];
  SubmitOutcome huge, small[2];
  std::thread hugeClient([&] {
    SubmitOptions o = server.clientOptions("huge");
    o.maxFragmentMutants = 1;  // maximum stealable units -> longest tail
    huge = submitCampaign(builtinCampaignSpec("single"), o);
    hugeDone = Clock::now();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::thread smallClients[2];
  for (int i = 0; i < 2; ++i) {
    smallClients[i] = std::thread([&, i] {
      const std::string name = "small-" + std::to_string(i);
      small[i] = submitCampaign(smallSpec(name), server.clientOptions(name));
      smallDone[i] = Clock::now();
    });
  }
  hugeClient.join();
  for (auto& t : smallClients) t.join();

  ASSERT_TRUE(huge.error.empty()) << huge.error;
  ASSERT_TRUE(huge.done);
  EXPECT_TRUE(referenceResult().sameResults(huge.result));
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(small[i].error.empty()) << small[i].error;
    ASSERT_TRUE(small[i].done);
    // Each small campaign merges bit-identical to its own local run AND
    // beats the huge campaign to the finish line.
    core::clearProcessCaches();
    const CampaignResult local = runCampaign(smallSpec("small-" + std::to_string(i)));
    EXPECT_TRUE(local.sameResults(small[i].result));
    EXPECT_LT(smallDone[i], hugeDone) << "small campaign " << i
                                      << " finished after the huge one's tail";
  }

  const ServeLedger& ledger = server.ledger();
  EXPECT_EQ(ledger.campaignsCompleted, 3u);
  EXPECT_GE(ledger.workerRespawns, 1u) << "the hung worker was SIGKILLed and respawned";
  // The lost unit belonged to the huge campaign; the re-queue lands in ITS
  // ledger entry, not a neighbor's.
  for (const CampaignLedgerEntry& entry : ledger.campaigns) {
    if (entry.name == "huge") {
      EXPECT_GE(entry.requeues, 1u);
    } else {
      EXPECT_EQ(entry.requeues, 0u);
    }
  }
}

TEST(CampaignServer, FloodedQueueYieldsStructuredRejectAndTheSurvivorCompletes) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // The single worker hangs on the huge campaign's first unit, freezing
  // ~two dozen pending units in the admission queue; a second submission
  // during that window must bounce off maxPendingUnits with a structured
  // RejectFrame, not hang and not kill the server.
  env.set("XLV_TEST_HANG_AFTER_ITEMS", "0");
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;
    o.heartbeatIntervalMs = 50;
    o.heartbeatTimeoutMs = 1500;
    o.maxPendingUnits = 4;
    o.rejectRetryAfterMs = 123;
    o.maxCampaignsServed = 1;
  });
  SubmitOutcome huge;
  std::thread hugeClient([&] {
    SubmitOptions o = server.clientOptions("huge");
    o.maxFragmentMutants = 1;
    huge = submitCampaign(builtinCampaignSpec("single"), o);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const SubmitOutcome bounced =
      submitCampaign(smallSpec("flooded"), server.clientOptions("flooded"));
  EXPECT_TRUE(bounced.rejected);
  EXPECT_FALSE(bounced.accepted);
  EXPECT_FALSE(bounced.done);
  EXPECT_FALSE(bounced.rejectReason.empty());
  EXPECT_EQ(bounced.retryAfterMs, 123u);

  // The admitted campaign rides out the hang and still merges clean.
  hugeClient.join();
  ASSERT_TRUE(huge.error.empty()) << huge.error;
  ASSERT_TRUE(huge.done);
  EXPECT_TRUE(referenceResult().sameResults(huge.result));

  const ServeLedger& ledger = server.ledger();
  EXPECT_EQ(ledger.campaignsAccepted, 1u);
  EXPECT_EQ(ledger.campaignsRejected, 1u);
  EXPECT_EQ(ledger.campaignsCompleted, 1u);
}

TEST(CampaignServer, DisconnectingClientsCampaignIsCancelledAndOthersFinish) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;  // serialize so the huge campaign is live when it dies
    o.maxCampaignsServed = 2;
  });
  SubmitOutcome dying;
  std::thread dyingClient([&] {
    SubmitOptions o = server.clientOptions("dying");
    o.maxFragmentMutants = 1;
    o.disconnectAfterItems = 1;  // hard-close mid-stream
    dying = submitCampaign(builtinCampaignSpec("single"), o);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const SubmitOutcome healthy =
      submitCampaign(smallSpec("healthy"), server.clientOptions("healthy"));
  dyingClient.join();

  EXPECT_TRUE(dying.disconnected);
  EXPECT_FALSE(dying.done);
  ASSERT_TRUE(healthy.error.empty()) << healthy.error;
  ASSERT_TRUE(healthy.done);
  core::clearProcessCaches();
  EXPECT_TRUE(runCampaign(smallSpec("healthy")).sameResults(healthy.result));

  const ServeLedger& ledger = server.ledger();
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_EQ(ledger.campaignsAccepted, 2u);
  EXPECT_EQ(ledger.campaignsCancelled, 1u);
  EXPECT_EQ(ledger.campaignsCompleted, 1u);
  bool sawCancelled = false;
  for (const CampaignLedgerEntry& entry : ledger.campaigns) {
    if (entry.name == "dying") {
      sawCancelled = true;
      EXPECT_TRUE(entry.cancelled);
      EXPECT_LT(entry.unitsCompleted, entry.unitsTotal);
    }
  }
  EXPECT_TRUE(sawCancelled);
}

TEST(CampaignServer, LoopbackTcpServesToo) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // Deterministic-ish per-process port keeps parallel CI jobs apart; if
  // the port is taken anyway the server fails to bind and the test skips.
  const int port = 42000 + static_cast<int>(::getpid() % 20000);
  ServerHarness server([port](ServeOptions& o) {
    o.socketPath.clear();
    o.tcpPort = port;
  });
  SubmitOutcome out;
  for (int attempt = 0; attempt < 20; ++attempt) {
    out = submitCampaign(builtinCampaignSpec("single"), server.clientOptions("tcp"));
    if (out.accepted || out.rejected) break;
    if (!server.error.empty()) GTEST_SKIP() << "TCP bind failed: " << server.error;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(out.error.empty()) << out.error;
  ASSERT_TRUE(out.done);
  EXPECT_TRUE(referenceResult().sameResults(out.result));
}

TEST(CampaignServer, ServerRejectsMalformedOptions) {
  FaultEnv env;
  {
    ServeOptions opt;  // no listen address at all
    opt.workerCommand = {XLV_CAMPAIGND_BIN, "worker"};
    EXPECT_THROW(runCampaignServer(opt), std::invalid_argument);
  }
  {
    ServeOptions opt;
    opt.socketPath = "/tmp/xlv-serve-test-invalid.sock";
    EXPECT_THROW(runCampaignServer(opt), std::invalid_argument);  // no worker command
  }
  {
    ServeOptions opt;
    opt.socketPath = "/tmp/xlv-serve-test-invalid.sock";
    opt.workerCommand = {XLV_CAMPAIGND_BIN, "worker"};
    opt.heartbeatTimeoutMs = 0;
    EXPECT_THROW(runCampaignServer(opt), std::invalid_argument);
  }
}

#else  // !XLV_CAMPAIGND_BIN

TEST(CampaignServer, DaemonBinaryUnavailable) {
  GTEST_SKIP() << "built without XLV_CAMPAIGND_BIN (tools disabled)";
}

#endif

}  // namespace
}  // namespace xlv::campaign
