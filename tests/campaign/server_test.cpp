// End-to-end tests of the campaign service (campaign/server.h): a real
// `runCampaignServer` loop driving real worker subprocesses (the
// XLV_CAMPAIGND_BIN daemon binary), with real `submitCampaign` clients on a
// Unix-domain socket — the full v6 wire protocol, not mocks.
//
// The load-bearing assertions mirror dispatch_fault_test.cpp's: whatever
// faults fly (worker SIGKILL, hung worker, client disconnect, backpressure
// rejects), every campaign that SURVIVES must merge bit-identical
// (CampaignResult::sameResults) to a single-process runCampaign of the same
// spec. Fairness and backpressure are made deterministic by hanging the
// single worker on the big campaign's first unit: while the heartbeat clock
// runs down, the competing submissions are admitted, so the post-recovery
// schedule — round-robin across campaigns — is observable without timing
// luck.
//
// The tests skip (not fail) when the tools were not built.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/dispatch.h"
#include "campaign/server.h"
#include "campaign/shard.h"
#include "core/flow.h"

namespace xlv::campaign {
namespace {

const char* const kFaultVars[] = {
    "XLV_TEST_DIE_AFTER_ITEMS",
    "XLV_TEST_HANG_AFTER_ITEMS",
    "XLV_TEST_EXIT_AFTER_ITEMS",
    "XLV_TEST_FAULT_WORKER",
    "XLV_TEST_POISON_ITEM",
    "XLV_TEST_POISON_MUTANT",
    "XLV_FAULTS",
};

/// Clears every fault hook on construction AND destruction, so a failing
/// test cannot leak a fault into its neighbors; set() arms one hook for the
/// lifetime of the guard.
struct FaultEnv {
  FaultEnv() { clear(); }
  ~FaultEnv() { clear(); }
  static void clear() {
    for (const char* v : kFaultVars) ::unsetenv(v);
  }
  void set(const char* name, const char* value) { ::setenv(name, value, 1); }
};

TEST(CampaignServer, LedgerJsonCarriesPerCampaignEntries) {
  ServeLedger ledger;
  ledger.campaignsAccepted = 2;
  ledger.campaignsRejected = 1;
  ledger.campaignsCancelled = 1;
  CampaignLedgerEntry entry;
  entry.campaignId = 7;
  entry.name = "smoke \"quoted\"";
  entry.unitsTotal = 4;
  entry.unitsCompleted = 2;
  entry.requeues = 1;
  entry.cancelled = true;
  entry.error = "gave up";
  entry.bisections = 3;
  entry.quarantined = {2, 5};
  entry.drained = true;
  ledger.quarantinedUnits = 1;
  ledger.bisections = 3;
  ledger.deadlineFailures = 2;
  ledger.frameCapRejects = 4;
  ledger.drainRequests = 1;
  ledger.drained = true;
  ledger.campaigns.push_back(entry);
  const std::string json = encodeServeLedgerJson(ledger);
  EXPECT_NE(json.find("\"campaignsAccepted\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"campaignsRejected\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"campaignId\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"cancelled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"requeues\": 1"), std::string::npos);
  EXPECT_NE(json.find("smoke \\\"quoted\\\""), std::string::npos)
      << "ledger names must be JSON-escaped";
  EXPECT_NE(json.find("\"error\": \"gave up\""), std::string::npos);
  EXPECT_NE(json.find("\"quarantinedUnits\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"deadlineFailures\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"frameCapRejects\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"drainRequests\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"drained\": true"), std::string::npos);
  EXPECT_NE(json.find("\"bisections\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": [2, 5]"), std::string::npos)
      << "per-campaign quarantined task indices must round-trip";
}

TEST(CampaignServer, ClientRetriesARefusedConnectionWithBackoff) {
  CampaignSpec spec = builtinCampaignSpec("smoke");
  spec.items.resize(1);
  SubmitOptions o;
  o.socketPath =
      "/tmp/xlv-serve-test-nobody-" + std::to_string(::getpid()) + ".sock";
  o.maxRetries = 2;
  o.retryBaseMs = 1;  // keep the jittered backoff in the microsecond range
  o.retryJitterSeed = 7;
  const SubmitOutcome out = submitCampaign(spec, o);
  EXPECT_FALSE(out.accepted);
  EXPECT_FALSE(out.done);
  EXPECT_FALSE(out.rejected);
  EXPECT_EQ(out.retries, 2u) << "the whole retry budget goes to a refused connect";
  EXPECT_EQ(out.error.rfind("cannot connect", 0), 0u) << out.error;
}

#ifdef XLV_CAMPAIGND_BIN

/// Single-process truth, computed once per test binary with cold caches.
const CampaignResult& referenceResult() {
  static const CampaignResult* ref = [] {
    core::clearProcessCaches();
    auto* r = new CampaignResult(runCampaign(builtinCampaignSpec("single")));
    core::clearProcessCaches();
    return r;
  }();
  return *ref;
}

/// A one-item campaign a served client can finish in a single unit.
CampaignSpec smallSpec(const std::string& name) {
  CampaignSpec spec = builtinCampaignSpec("smoke");
  spec.items.resize(1);
  spec.name = name;
  return spec;
}

/// sameResults over a single item pair — the quarantine tests compare each
/// SURVIVING item against a local run while the poisoned one carries an
/// error.
bool sameItem(const CampaignItemResult& a, const CampaignItemResult& b) {
  CampaignResult x, y;
  x.items.push_back(a);
  y.items.push_back(b);
  return x.sameResults(y);
}

/// Runs runCampaignServer on a background thread against a fresh /tmp
/// socket, waits until the listener is up, and joins (returning the ledger)
/// when the server's maxCampaignsServed bound stops it.
struct ServerHarness {
  ServeOptions opt;
  ServeResult result;
  std::string error;

  explicit ServerHarness(const std::function<void(ServeOptions&)>& tweak = {}) {
    static int counter = 0;
    path_ = "/tmp/xlv-serve-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++) + ".sock";
    opt.socketPath = path_;
    opt.workers = 3;
    opt.maxFragmentMutants = 2;
    opt.workerCommand = {XLV_CAMPAIGND_BIN, "worker"};
    opt.heartbeatIntervalMs = 100;
    opt.heartbeatTimeoutMs = 5000;
    opt.maxCampaignsServed = 1;
    if (tweak) tweak(opt);
    path_ = opt.socketPath;  // a tweak may point the server elsewhere
    thread_ = std::thread([this] {
      try {
        result = runCampaignServer(opt);
      } catch (const std::exception& e) {
        error = e.what();
      }
      stopped_.store(true);
    });
    // The listener must be accepting before the first client connects; a
    // server that died on startup stops the wait early (error tells why).
    // Probe with a real connect() — the socket file merely existing is not
    // enough when a stale file predates the server (it unlinks and rebinds).
    for (int i = 0; i < 500; ++i) {
      if (stopped_.load()) break;
      if (!opt.socketPath.empty()) {
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
          sockaddr_un addr{};
          addr.sun_family = AF_UNIX;
          std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path_.c_str());
          const bool up =
              ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
          ::close(probe);
          if (up) break;
        }
      }
      if (opt.socketPath.empty() && i >= 20) break;  // TCP: just give it 200 ms
      ::usleep(10000);
    }
  }

  ~ServerHarness() {
    join();
    ::unlink(path_.c_str());
  }

  SubmitOptions clientOptions(const std::string& name) const {
    SubmitOptions o;
    o.socketPath = opt.socketPath;
    o.tcpPort = opt.tcpPort;
    o.clientName = name;
    return o;
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  const ServeLedger& ledger() {
    join();
    return result.ledger;
  }

 private:
  std::string path_;
  std::thread thread_;
  std::atomic<bool> stopped_{false};
};

#define XLV_REQUIRE_DAEMON()                                                \
  do {                                                                      \
    if (::access(XLV_CAMPAIGND_BIN, X_OK) != 0)                             \
      GTEST_SKIP() << "xlv_campaignd binary not built: " XLV_CAMPAIGND_BIN; \
  } while (0)

TEST(CampaignServer, ServedCampaignIsBitIdenticalToSingleProcess) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  ServerHarness server;
  const SubmitOutcome out =
      submitCampaign(builtinCampaignSpec("single"), server.clientOptions("clean"));
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_TRUE(out.accepted);
  ASSERT_TRUE(out.done);
  EXPECT_FALSE(out.rejected);
  EXPECT_GT(out.campaignId, 0u);
  EXPECT_GT(out.unitCount, 1u) << "fragmentation produced no stealable units";
  EXPECT_EQ(out.outputs.size(), out.unitCount) << "every unit streams one result";
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));

  const ServeLedger& ledger = server.ledger();
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_EQ(ledger.campaignsAccepted, 1u);
  EXPECT_EQ(ledger.campaignsCompleted, 1u);
  EXPECT_EQ(ledger.campaignsRejected, 0u);
  EXPECT_EQ(ledger.campaignsCancelled, 0u);
  EXPECT_EQ(ledger.workersSpawned, 3u);
  ASSERT_EQ(ledger.campaigns.size(), 1u);
  const CampaignLedgerEntry& entry = ledger.campaigns.front();
  EXPECT_EQ(entry.name, "clean");
  EXPECT_EQ(entry.unitsCompleted, entry.unitsTotal);
  EXPECT_EQ(entry.unitsTotal, out.unitCount);
  EXPECT_FALSE(entry.cancelled);
  EXPECT_TRUE(entry.error.empty());
}

TEST(CampaignServer, SigkilledWorkerIsRespawnedAndServedResultStaysBitIdentical) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // Worker 0 (generation 0) SIGKILLs itself on its first unit — the
  // acceptance criterion's fault-injected serve run.
  env.set("XLV_TEST_DIE_AFTER_ITEMS", "0");
  ServerHarness server;
  const SubmitOutcome out =
      submitCampaign(builtinCampaignSpec("single"), server.clientOptions("survivor"));
  ASSERT_TRUE(out.error.empty()) << out.error;
  ASSERT_TRUE(out.done);
  EXPECT_TRUE(out.result.ok());
  EXPECT_TRUE(referenceResult().sameResults(out.result));

  const ServeLedger& ledger = server.ledger();
  EXPECT_GE(ledger.workerRespawns, 1u);
  ASSERT_EQ(ledger.campaigns.size(), 1u);
  // The lost unit's re-queue is attributed to the campaign that owned it.
  EXPECT_GE(ledger.campaigns.front().requeues, 1u);
  EXPECT_EQ(ledger.campaigns.front().unitsCompleted, ledger.campaigns.front().unitsTotal);
}

TEST(CampaignServer, SmallCampaignsFinishBeforeAHugeCampaignsTail) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // One worker, hung on the huge campaign's first unit: while the
  // heartbeat clock runs down, two small submissions arrive. Round-robin
  // fairness then MUST finish both one-unit campaigns before the huge
  // campaign's remaining units — deterministically, not by timing luck.
  env.set("XLV_TEST_HANG_AFTER_ITEMS", "0");
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;
    o.heartbeatIntervalMs = 50;
    o.heartbeatTimeoutMs = 800;
    o.maxCampaignsServed = 3;
  });
  using Clock = std::chrono::steady_clock;
  Clock::time_point hugeDone, smallDone[2];
  SubmitOutcome huge, small[2];
  std::thread hugeClient([&] {
    SubmitOptions o = server.clientOptions("huge");
    o.maxFragmentMutants = 1;  // maximum stealable units -> longest tail
    huge = submitCampaign(builtinCampaignSpec("single"), o);
    hugeDone = Clock::now();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::thread smallClients[2];
  for (int i = 0; i < 2; ++i) {
    smallClients[i] = std::thread([&, i] {
      const std::string name = "small-" + std::to_string(i);
      small[i] = submitCampaign(smallSpec(name), server.clientOptions(name));
      smallDone[i] = Clock::now();
    });
  }
  hugeClient.join();
  for (auto& t : smallClients) t.join();

  ASSERT_TRUE(huge.error.empty()) << huge.error;
  ASSERT_TRUE(huge.done);
  EXPECT_TRUE(referenceResult().sameResults(huge.result));
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(small[i].error.empty()) << small[i].error;
    ASSERT_TRUE(small[i].done);
    // Each small campaign merges bit-identical to its own local run AND
    // beats the huge campaign to the finish line.
    core::clearProcessCaches();
    const CampaignResult local = runCampaign(smallSpec("small-" + std::to_string(i)));
    EXPECT_TRUE(local.sameResults(small[i].result));
    EXPECT_LT(smallDone[i], hugeDone) << "small campaign " << i
                                      << " finished after the huge one's tail";
  }

  const ServeLedger& ledger = server.ledger();
  EXPECT_EQ(ledger.campaignsCompleted, 3u);
  EXPECT_GE(ledger.workerRespawns, 1u) << "the hung worker was SIGKILLed and respawned";
  // The lost unit belonged to the huge campaign; the re-queue lands in ITS
  // ledger entry, not a neighbor's.
  for (const CampaignLedgerEntry& entry : ledger.campaigns) {
    if (entry.name == "huge") {
      EXPECT_GE(entry.requeues, 1u);
    } else {
      EXPECT_EQ(entry.requeues, 0u);
    }
  }
}

TEST(CampaignServer, FloodedQueueYieldsStructuredRejectAndTheSurvivorCompletes) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // The single worker hangs on the huge campaign's first unit, freezing
  // ~two dozen pending units in the admission queue; a second submission
  // during that window must bounce off maxPendingUnits with a structured
  // RejectFrame, not hang and not kill the server.
  env.set("XLV_TEST_HANG_AFTER_ITEMS", "0");
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;
    o.heartbeatIntervalMs = 50;
    o.heartbeatTimeoutMs = 1500;
    o.maxPendingUnits = 4;
    o.rejectRetryAfterMs = 123;
    o.maxCampaignsServed = 1;
  });
  SubmitOutcome huge;
  std::thread hugeClient([&] {
    SubmitOptions o = server.clientOptions("huge");
    o.maxFragmentMutants = 1;
    huge = submitCampaign(builtinCampaignSpec("single"), o);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const SubmitOutcome bounced =
      submitCampaign(smallSpec("flooded"), server.clientOptions("flooded"));
  EXPECT_TRUE(bounced.rejected);
  EXPECT_FALSE(bounced.accepted);
  EXPECT_FALSE(bounced.done);
  EXPECT_FALSE(bounced.rejectReason.empty());
  EXPECT_EQ(bounced.retryAfterMs, 123u);

  // The admitted campaign rides out the hang and still merges clean.
  hugeClient.join();
  ASSERT_TRUE(huge.error.empty()) << huge.error;
  ASSERT_TRUE(huge.done);
  EXPECT_TRUE(referenceResult().sameResults(huge.result));

  const ServeLedger& ledger = server.ledger();
  EXPECT_EQ(ledger.campaignsAccepted, 1u);
  EXPECT_EQ(ledger.campaignsRejected, 1u);
  EXPECT_EQ(ledger.campaignsCompleted, 1u);
}

TEST(CampaignServer, DisconnectingClientsCampaignIsCancelledAndOthersFinish) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;  // serialize so the huge campaign is live when it dies
    o.maxCampaignsServed = 2;
  });
  SubmitOutcome dying;
  std::thread dyingClient([&] {
    SubmitOptions o = server.clientOptions("dying");
    o.maxFragmentMutants = 1;
    o.disconnectAfterItems = 1;  // hard-close mid-stream
    dying = submitCampaign(builtinCampaignSpec("single"), o);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const SubmitOutcome healthy =
      submitCampaign(smallSpec("healthy"), server.clientOptions("healthy"));
  dyingClient.join();

  EXPECT_TRUE(dying.disconnected);
  EXPECT_FALSE(dying.done);
  ASSERT_TRUE(healthy.error.empty()) << healthy.error;
  ASSERT_TRUE(healthy.done);
  core::clearProcessCaches();
  EXPECT_TRUE(runCampaign(smallSpec("healthy")).sameResults(healthy.result));

  const ServeLedger& ledger = server.ledger();
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_EQ(ledger.campaignsAccepted, 2u);
  EXPECT_EQ(ledger.campaignsCancelled, 1u);
  EXPECT_EQ(ledger.campaignsCompleted, 1u);
  bool sawCancelled = false;
  for (const CampaignLedgerEntry& entry : ledger.campaigns) {
    if (entry.name == "dying") {
      sawCancelled = true;
      EXPECT_TRUE(entry.cancelled);
      EXPECT_LT(entry.unitsCompleted, entry.unitsTotal);
    }
  }
  EXPECT_TRUE(sawCancelled);
}

TEST(CampaignServer, LoopbackTcpServesToo) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // Deterministic-ish per-process port keeps parallel CI jobs apart; if
  // the port is taken anyway the server fails to bind and the test skips.
  const int port = 42000 + static_cast<int>(::getpid() % 20000);
  ServerHarness server([port](ServeOptions& o) {
    o.socketPath.clear();
    o.tcpPort = port;
  });
  SubmitOutcome out;
  for (int attempt = 0; attempt < 20; ++attempt) {
    out = submitCampaign(builtinCampaignSpec("single"), server.clientOptions("tcp"));
    if (out.accepted || out.rejected) break;
    if (!server.error.empty()) GTEST_SKIP() << "TCP bind failed: " << server.error;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(out.error.empty()) << out.error;
  ASSERT_TRUE(out.done);
  EXPECT_TRUE(referenceResult().sameResults(out.result));
}

TEST(CampaignServer, PoisonFragmentIsBisectedUntilTheMutantIsQuarantined) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // Every worker of every generation SIGKILLs itself the moment it starts
  // item 0's mutant 1 — a reproducible poison unit. Attempt exhaustion must
  // bisect the [0,2) fragment, re-queue both halves, and quarantine the
  // irreducible [1,2) half: the campaign COMPLETES with a structured
  // per-item error instead of failing wholesale.
  env.set("XLV_TEST_POISON_ITEM", "0");
  env.set("XLV_TEST_POISON_MUTANT", "1");
  ServerHarness server([](ServeOptions& o) {
    o.maxTaskAttempts = 2;
    o.maxWorkerRespawns = 50;  // each poison hit costs one respawn
  });
  const SubmitOutcome out =
      submitCampaign(builtinCampaignSpec("single"), server.clientOptions("poisoned"));
  ASSERT_TRUE(out.error.empty()) << out.error;
  ASSERT_TRUE(out.done);
  ASSERT_EQ(out.quarantined.size(), 1u);
  ASSERT_EQ(out.result.items.size(), 1u);
  EXPECT_NE(out.result.items[0].error.find("quarantined"), std::string::npos)
      << out.result.items[0].error;

  const ServeLedger& ledger = server.ledger();
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_EQ(ledger.campaignsCompleted, 1u);
  EXPECT_EQ(ledger.bisections, 1u) << "one split isolates the poison in a 2-mutant fragment";
  EXPECT_EQ(ledger.quarantinedUnits, 1u);
  ASSERT_EQ(ledger.campaigns.size(), 1u);
  const CampaignLedgerEntry& entry = ledger.campaigns.front();
  EXPECT_EQ(entry.bisections, 1u);
  ASSERT_EQ(entry.quarantined.size(), 1u);
  EXPECT_TRUE(entry.error.empty()) << "quarantine must not be campaign-fatal: " << entry.error;
  // unitsTotal is the FINAL task count: the bisected original and the
  // quarantined half are retired, everything else completed.
  EXPECT_EQ(entry.unitsCompleted + 2, entry.unitsTotal);
}

TEST(CampaignServer, QuarantineIsolatesThePoisonItemAndNeighborsStayBitIdentical) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  env.set("XLV_TEST_POISON_ITEM", "1");
  env.set("XLV_TEST_POISON_MUTANT", "0");
  CampaignSpec spec = builtinCampaignSpec("smoke");
  ASSERT_GE(spec.items.size(), 3u);
  spec.items.resize(3);
  spec.name = "quarantine-neighbors";
  ServerHarness server([](ServeOptions& o) {
    o.maxTaskAttempts = 2;
    o.maxWorkerRespawns = 50;
  });
  const SubmitOutcome out = submitCampaign(spec, server.clientOptions("neighbors"));
  ASSERT_TRUE(out.error.empty()) << out.error;
  ASSERT_TRUE(out.done);
  EXPECT_FALSE(out.quarantined.empty());
  ASSERT_EQ(out.result.items.size(), 3u);
  EXPECT_NE(out.result.items[1].error.find("quarantined"), std::string::npos)
      << out.result.items[1].error;

  // The poisoned item must not perturb its neighbors: items 0 and 2 merge
  // bit-identical to a clean single-process run of the same spec.
  core::clearProcessCaches();
  const CampaignResult local = runCampaign(spec);
  ASSERT_EQ(local.items.size(), 3u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_TRUE(out.result.items[i].error.empty()) << out.result.items[i].error;
    EXPECT_TRUE(sameItem(out.result.items[i], local.items[i]))
        << "surviving item " << i << " diverged from the local run";
  }
}

TEST(CampaignServer, SigtermDrainsFinishInFlightAndRejectsNewSubmissions) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // The single gen-0 worker hangs on the first unit, pinning the admitted
  // campaign live while the drain signal lands; the heartbeat then kills
  // the hung worker and its respawn finishes the campaign under drain.
  env.set("XLV_TEST_HANG_AFTER_ITEMS", "0");
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;
    o.heartbeatIntervalMs = 50;
    o.heartbeatTimeoutMs = 1500;
    o.maxCampaignsServed = 0;  // the drain, not a quota, ends this server
    o.enableSignalDrain = true;
  });
  SubmitOutcome inflight;
  std::thread inflightClient([&] {
    SubmitOptions o = server.clientOptions("inflight");
    o.maxFragmentMutants = 1;
    inflight = submitCampaign(builtinCampaignSpec("single"), o);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // The handler self-pipes; the embedded loop sees it on its next poll
  // wake-up. The hung worker guarantees the campaign is still live.
  ::kill(::getpid(), SIGTERM);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const SubmitOutcome bounced =
      submitCampaign(smallSpec("latecomer"), server.clientOptions("latecomer"));
  EXPECT_TRUE(bounced.rejected);
  EXPECT_NE(bounced.rejectReason.find("draining"), std::string::npos)
      << bounced.rejectReason;
  EXPECT_GT(bounced.retryAfterMs, 0u) << "a drain reject must carry a retry hint";

  inflightClient.join();
  ASSERT_TRUE(inflight.error.empty()) << inflight.error;
  ASSERT_TRUE(inflight.done);
  EXPECT_TRUE(referenceResult().sameResults(inflight.result));

  const ServeLedger& ledger = server.ledger();  // join(): drain exits the loop
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_TRUE(ledger.drained);
  EXPECT_GE(ledger.drainRequests, 1u);
  EXPECT_EQ(ledger.campaignsCompleted, 1u);
  EXPECT_EQ(ledger.campaignsRejected, 1u);
  ASSERT_EQ(ledger.campaigns.size(), 1u);
  EXPECT_TRUE(ledger.campaigns.front().drained);
  EXPECT_TRUE(ledger.campaigns.front().error.empty());
}

TEST(CampaignServer, SecondServerOnALiveSocketRefusesToStealIt) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  ServerHarness server;  // live listener, idle
  ServeOptions opt2;
  opt2.socketPath = server.opt.socketPath;
  opt2.workerCommand = {XLV_CAMPAIGND_BIN, "worker"};
  try {
    runCampaignServer(opt2);
    FAIL() << "second server bound over a live listener";
  } catch (const DispatchError& e) {
    EXPECT_NE(std::string(e.what()).find("already listening"), std::string::npos)
        << e.what();
  }
  // The probe connection must not have harmed the incumbent: it still serves.
  const SubmitOutcome out =
      submitCampaign(smallSpec("after-probe"), server.clientOptions("after-probe"));
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_TRUE(out.done);
}

TEST(CampaignServer, StaleSocketFileIsStillUnlinkedAndServed) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // A leftover socket FILE with no listener behind it (crashed server): the
  // connect() probe finds nobody home, so taking the path stays legal.
  const std::string stale =
      "/tmp/xlv-serve-test-stale-" + std::to_string(::getpid()) + ".sock";
  ::unlink(stale.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", stale.c_str());
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  ::close(fd);  // the file stays behind, bound to nothing
  ServerHarness server([&stale](ServeOptions& o) { o.socketPath = stale; });
  const SubmitOutcome out = submitCampaign(smallSpec("stale"), server.clientOptions("stale"));
  ASSERT_TRUE(out.error.empty()) << out.error;
  EXPECT_TRUE(out.done);
}

TEST(CampaignServer, OversizeSubmitFrameIsRejectedFromItsHeader) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  ServerHarness server([](ServeOptions& o) {
    o.maxClientFrameBytes = 256;  // any real spec blows this
    o.maxCampaignsServed = 0;
    o.enableSignalDrain = true;  // the drain is how this idle server exits
  });
  const SubmitOutcome out =
      submitCampaign(builtinCampaignSpec("single"), server.clientOptions("fat"));
  EXPECT_TRUE(out.rejected);
  EXPECT_FALSE(out.done);
  EXPECT_NE(out.rejectReason.find("exceeds connection cap"), std::string::npos)
      << out.rejectReason;
  EXPECT_EQ(out.retryAfterMs, 0u) << "a frame-cap reject is not retryable";
  ::kill(::getpid(), SIGTERM);
  const ServeLedger& ledger = server.ledger();
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_EQ(ledger.frameCapRejects, 1u);
  EXPECT_EQ(ledger.campaignsRejected, 1u);
  EXPECT_EQ(ledger.campaignsAccepted, 0u);
}

TEST(CampaignServer, HalfOpenClientIsTimedOutWithAStructuredReject) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  ServerHarness server([](ServeOptions& o) {
    o.clientReadTimeoutMs = 200;
    o.maxCampaignsServed = 0;
    o.enableSignalDrain = true;
  });
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                server.opt.socketPath.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  // Send nothing: the server owes this half-open connection a reject frame
  // and a close, never an open-ended poll slot.
  std::string got;
  char buf[512];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) got.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  EXPECT_FALSE(got.empty()) << "connection closed without a reject frame";
  ::kill(::getpid(), SIGTERM);
  const ServeLedger& ledger = server.ledger();
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_EQ(ledger.clientReadTimeouts, 1u);
  EXPECT_EQ(ledger.campaignsRejected, 1u);
}

TEST(CampaignServer, DeadlineExceededFailsTheCampaignStructurally) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  env.set("XLV_TEST_HANG_AFTER_ITEMS", "0");  // the worker sits on unit 0
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;
    o.heartbeatIntervalMs = 50;
    o.heartbeatTimeoutMs = 1500;  // the 300 ms deadline must fire FIRST
    o.maxCampaignsServed = 1;
  });
  SubmitOptions o = server.clientOptions("deadline");
  o.deadlineMs = 300;
  const SubmitOutcome out = submitCampaign(builtinCampaignSpec("single"), o);
  ASSERT_TRUE(out.done);
  EXPECT_NE(out.error.find("deadline exceeded"), std::string::npos) << out.error;

  const ServeLedger& ledger = server.ledger();
  EXPECT_TRUE(server.error.empty()) << server.error;
  EXPECT_EQ(ledger.deadlineFailures, 1u);
  ASSERT_EQ(ledger.campaigns.size(), 1u);
  EXPECT_NE(ledger.campaigns.front().error.find("deadline"), std::string::npos);
}

TEST(CampaignServer, RejectedSubmissionIsRetriedAfterTheServersHint) {
  XLV_REQUIRE_DAEMON();
  FaultEnv env;
  // The hung worker freezes the huge campaign's units in the admission
  // queue for its whole 1.5 s heartbeat window; both attempts of the
  // retrying client land inside it, so both bounce — proving the retry
  // actually ran and came back with the same structured answer.
  env.set("XLV_TEST_HANG_AFTER_ITEMS", "0");
  ServerHarness server([](ServeOptions& o) {
    o.workers = 1;
    o.heartbeatIntervalMs = 50;
    o.heartbeatTimeoutMs = 1500;
    o.maxPendingUnits = 4;
    o.rejectRetryAfterMs = 10;
    o.maxCampaignsServed = 1;
  });
  SubmitOutcome huge;
  std::thread hugeClient([&] {
    SubmitOptions o = server.clientOptions("huge");
    o.maxFragmentMutants = 1;
    huge = submitCampaign(builtinCampaignSpec("single"), o);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  SubmitOptions retrying = server.clientOptions("retrying");
  retrying.maxRetries = 1;
  retrying.retryBaseMs = 1;
  retrying.retryJitterSeed = 42;
  const SubmitOutcome bounced = submitCampaign(smallSpec("retrying"), retrying);
  EXPECT_TRUE(bounced.rejected);
  EXPECT_EQ(bounced.retries, 1u);

  hugeClient.join();
  ASSERT_TRUE(huge.error.empty()) << huge.error;
  ASSERT_TRUE(huge.done);
  EXPECT_TRUE(referenceResult().sameResults(huge.result));
  EXPECT_EQ(server.ledger().campaignsRejected, 2u);
}

TEST(CampaignServer, ServerRejectsMalformedOptions) {
  FaultEnv env;
  {
    ServeOptions opt;  // no listen address at all
    opt.workerCommand = {XLV_CAMPAIGND_BIN, "worker"};
    EXPECT_THROW(runCampaignServer(opt), std::invalid_argument);
  }
  {
    ServeOptions opt;
    opt.socketPath = "/tmp/xlv-serve-test-invalid.sock";
    EXPECT_THROW(runCampaignServer(opt), std::invalid_argument);  // no worker command
  }
  {
    ServeOptions opt;
    opt.socketPath = "/tmp/xlv-serve-test-invalid.sock";
    opt.workerCommand = {XLV_CAMPAIGND_BIN, "worker"};
    opt.heartbeatTimeoutMs = 0;
    EXPECT_THROW(runCampaignServer(opt), std::invalid_argument);
  }
}

#else  // !XLV_CAMPAIGND_BIN

TEST(CampaignServer, DaemonBinaryUnavailable) {
  GTEST_SKIP() << "built without XLV_CAMPAIGND_BIN (tools disabled)";
}

#endif

}  // namespace
}  // namespace xlv::campaign
