// Sweep expander: cardinality and labelling of the axis cross-product, and
// bit-identity of a full sweep result across thread counts (the campaign
// merge rule extended to sweep-generated items, with the prefix and
// golden-trace caches in play).
#include <gtest/gtest.h>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "campaign/sweep.h"
#include "core/flow.h"

namespace xlv::campaign {
namespace {

using core::MutantSetVariant;
using insertion::SensorKind;

core::FlowOptions quickBase() {
  core::FlowOptions base;
  base.testbenchCycles = 80;
  base.measureRtl = false;
  base.measureOptimized = false;
  return base;
}

TEST(Sweep, CardinalityIsTheAxisProduct) {
  SweepSpec sweep;
  sweep.cases = {ips::buildFilterCase(), ips::buildDspCase()};
  sweep.axes.sensorKinds = {SensorKind::Razor, SensorKind::Counter};
  sweep.axes.corners = {sta::Corner::typical(), sta::Corner::slow(), sta::Corner::fast()};
  sweep.axes.thresholdFractions = {0.2, 0.3};
  sweep.axes.mutantSets = {MutantSetVariant::Full, MutantSetVariant::MaxDelay};
  EXPECT_EQ(2u * 2u * 3u * 2u * 2u, sweepCardinality(sweep));
  EXPECT_EQ(sweepCardinality(sweep), expandSweep(sweep).items.size());

  // Unswept axes contribute factor 1 and the case-study values apply.
  SweepSpec flat;
  flat.cases = {ips::buildFilterCase()};
  EXPECT_EQ(1u, sweepCardinality(flat));
  const CampaignSpec spec = expandSweep(flat);
  ASSERT_EQ(1u, spec.items.size());
  EXPECT_FALSE(spec.items[0].options.staCorner.has_value());
  EXPECT_FALSE(spec.items[0].options.staThresholdFraction.has_value());
}

TEST(Sweep, LabelsAreDeterministicAndUnique) {
  SweepSpec sweep;
  sweep.cases = {ips::buildFilterCase()};
  sweep.axes.sensorKinds = {SensorKind::Razor};
  sweep.axes.corners = {sta::Corner::typical(), sta::Corner::slow()};
  sweep.axes.thresholdFractions = {0.25};
  sweep.axes.mutantSets = {MutantSetVariant::Full, MutantSetVariant::MinDelay};
  const CampaignSpec spec = expandSweep(sweep);
  ASSERT_EQ(4u, spec.items.size());
  EXPECT_EQ("Filter/razor/typical/thr=0.25/mutants=full", spec.items[0].label);
  EXPECT_EQ("Filter/razor/typical/thr=0.25/mutants=min", spec.items[1].label);
  EXPECT_EQ("Filter/razor/ss_0.95v_125c/thr=0.25/mutants=full", spec.items[2].label);
  EXPECT_EQ("Filter/razor/ss_0.95v_125c/thr=0.25/mutants=min", spec.items[3].label);
  for (std::size_t i = 0; i < spec.items.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.items.size(); ++j) {
      EXPECT_NE(spec.items[i].label, spec.items[j].label);
    }
  }
  // Unswept axes emit no label segment.
  SweepSpec flat;
  flat.cases = {ips::buildFilterCase()};
  EXPECT_EQ("Filter/razor", expandSweep(flat).items[0].label);
}

TEST(Sweep, SharesPrefixKeysAcrossMutantSetPoints) {
  SweepSpec sweep;
  sweep.cases = {ips::buildFilterCase()};
  sweep.axes.corners = {sta::Corner::typical(), sta::Corner::slow()};
  sweep.axes.mutantSets = {MutantSetVariant::Full, MutantSetVariant::MaxDelay};
  const CampaignSpec spec = expandSweep(sweep);
  ASSERT_EQ(4u, spec.items.size());
  // Same corner, different mutant set -> same elaborate+insertion prefix.
  EXPECT_EQ(spec.items[0].prefixKey, spec.items[1].prefixKey);
  EXPECT_EQ(spec.items[2].prefixKey, spec.items[3].prefixKey);
  // Different corner -> different prefix.
  EXPECT_NE(spec.items[0].prefixKey, spec.items[2].prefixKey);
  // Sweeps default to shared golden traces, shared per-mutant results and
  // serialized inner analysis under a parallel outer pool.
  for (const auto& item : spec.items) {
    EXPECT_TRUE(item.options.useGoldenCache);
    EXPECT_TRUE(item.options.useMutantCache);
  }
}

TEST(Sweep, MutantSetVariantsSliceThePool) {
  ips::CaseStudy cs = ips::buildDspCase();
  core::FlowOptions opts = quickBase();
  opts.sensorKind = SensorKind::Counter;
  opts.runMutationAnalysis = false;

  core::FlowReport full;
  core::stageElaborate(cs, opts, full);
  core::stageInsertion(cs, opts, full);
  core::stageInjection(cs, opts, full);
  ASSERT_GT(full.mutantSpecs.size(), full.sensors.size());  // the triple per sensor

  opts.mutantSet = core::MutantSetVariant::MaxDelay;
  core::FlowReport sliced;
  core::stageElaborate(cs, opts, sliced);
  core::stageInsertion(cs, opts, sliced);
  core::stageInjection(cs, opts, sliced);
  ASSERT_EQ(sliced.mutantSpecs.size(), sliced.sensors.size());  // one per endpoint
  // Each kept mutant is its endpoint's most severe (largest deltaTicks).
  for (const auto& kept : sliced.mutantSpecs) {
    for (const auto& any : full.mutantSpecs) {
      if (any.targetSignal == kept.targetSignal) EXPECT_GE(kept.deltaTicks, any.deltaTicks);
    }
  }
}

// --- full-sweep bit-identity across thread counts ---------------------------

// CampaignResult::sameResults covers labels, errors and every non-timing
// report field (MutantResult/MutantSpec operator== keep it in lockstep with
// the structs); on failure, narrow down per item via r.find(label).
void expectSameSweepResult(const CampaignResult& a, const CampaignResult& b,
                           const char* what) {
  ASSERT_EQ(a.items.size(), b.items.size()) << what;
  EXPECT_TRUE(a.sameResults(b)) << what;
}

SweepSpec threeAxisSweep(int threads) {
  // The acceptance sweep: >= 3 axes (corner x threshold x mutant set) on
  // one IP.
  SweepSpec sweep;
  sweep.name = "filter-3axis";
  sweep.cases = {ips::buildFilterCase()};
  sweep.base = quickBase();
  sweep.axes.sensorKinds = {SensorKind::Razor};
  // Name-based corner addressing (sta::Corner::byName).
  sweep.axes.corners = {sta::Corner::byName("typical"), sta::Corner::byName("slow")};
  sweep.axes.thresholdFractions = {0.25, 0.3};
  sweep.axes.mutantSets = {MutantSetVariant::Full, MutantSetVariant::MaxDelay};
  sweep.executor = ExecutorConfig{threads, 0};
  return sweep;
}

TEST(Sweep, HfAxisAppliesOnlyToCounterItems) {
  SweepSpec sweep;
  sweep.cases = {ips::buildFilterCase()};
  sweep.axes.sensorKinds = {SensorKind::Razor, SensorKind::Counter};
  sweep.axes.hfRatios = {4, 8};
  // Razor ignores hfRatio: 1 Razor point + 2 Counter points, no duplicate
  // (or misleadingly hf-labelled) Razor items.
  EXPECT_EQ(3u, sweepCardinality(sweep));
  const CampaignSpec spec = expandSweep(sweep);
  ASSERT_EQ(3u, spec.items.size());
  EXPECT_EQ("Filter/razor", spec.items[0].label);
  EXPECT_FALSE(spec.items[0].options.hfRatio.has_value());
  EXPECT_EQ("Filter/counter/hf=4", spec.items[1].label);
  EXPECT_EQ("Filter/counter/hf=8", spec.items[2].label);
}

TEST(Sweep, FullSweepIsThreadCountInvariant) {
  core::clearProcessCaches();

  const CampaignResult serial = runSweep(threeAxisSweep(1));
  ASSERT_EQ(8u, serial.items.size());
  EXPECT_TRUE(serial.ok());
  EXPECT_EQ(1, serial.threadsUsed);

  // On the serial first pass every (corner, threshold) pair elaborates once
  // and its second mutant-set point reuses prefix AND golden trace: 4
  // distinct prefixes, >= 4 shared reuses of each kind. The max-variant
  // points additionally reuse the full variant's per-mutant results.
  EXPECT_EQ(4, serial.prefixCacheHits);
  EXPECT_GE(serial.goldenCacheHits, 4);
  EXPECT_GT(serial.goldenSeconds, 0.0);
  EXPECT_GT(serial.mutantCacheHits, 0);

  for (int threads : {2, 8}) {
    const CampaignResult parallel = runSweep(threeAxisSweep(threads));
    EXPECT_TRUE(parallel.ok());
    expectSameSweepResult(serial, parallel, "filter-3axis");
    // Later passes find everything cached.
    EXPECT_EQ(8, parallel.goldenCacheHits);
    EXPECT_EQ(8, parallel.prefixCacheHits);
  }
}

TEST(Sweep, CacheDisabledSweepMatchesCachedSweep) {
  core::clearProcessCaches();
  const CampaignResult cached = runSweep(threeAxisSweep(2));

  SweepSpec cold = threeAxisSweep(2);
  cold.sharePrefixes = false;
  cold.shareGoldenTraces = false;
  cold.shareMutantResults = false;
  const CampaignResult uncached = runSweep(cold);
  EXPECT_EQ(0, uncached.goldenCacheHits);
  EXPECT_EQ(0, uncached.prefixCacheHits);
  EXPECT_EQ(0, uncached.mutantCacheHits);
  expectSameSweepResult(cached, uncached, "cached-vs-uncached");
}

}  // namespace
}  // namespace xlv::campaign
