// Evaluator / executor: expression semantics over a value store, VHDL
// assignment rules (signal = nonblocking, variable = immediate), both
// policies via typed tests.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/elaborate.h"
#include "ir/eval.h"

namespace xlv::ir {
namespace {

template <class P>
class EvalTypedTest : public ::testing::Test {};

using Policies = ::testing::Types<hdt::FourState, hdt::TwoState>;
TYPED_TEST_SUITE(EvalTypedTest, Policies);

struct Fixture {
  std::shared_ptr<Module> mod;
  Design d;
  Sig a, b, y, v, clk;
  Arr mem;

  Fixture() {
    ModuleBuilder mb("fx");
    clk = mb.clock("clk");
    a = mb.in("a", 8);
    b = mb.in("b", 8);
    y = mb.out("y", 8);
    v = mb.var("v", 8);
    mem = mb.array("mem", 8, 8);
    mb.onRising("p", clk, [&](ProcBuilder& p) { p.assign(y, Ex(a) + Ex(b)); });
    mod = mb.finish();
    d = elaborate(*mod);
  }
};

TYPED_TEST(EvalTypedTest, EvaluatesArithmetic) {
  using P = TypeParam;
  Fixture fx;
  ValueStore<P> st(fx.d);
  Executor<P> ex(fx.d, st);
  st.set(fx.a.id, P::Vec::fromUint(8, 33));
  st.set(fx.b.id, P::Vec::fromUint(8, 9));
  auto e = (Ex(fx.a) + Ex(fx.b)).ptr();
  EXPECT_EQ(42u, ex.eval(*e).toUint());
  auto m = (Ex(fx.a) * Ex(fx.b)).ptr();
  EXPECT_EQ((33u * 9u) & 0xFFu, ex.eval(*m).toUint());
}

TYPED_TEST(EvalTypedTest, SignalAssignIsNonblocking) {
  using P = TypeParam;
  Fixture fx;
  ValueStore<P> st(fx.d);
  Executor<P> ex(fx.d, st);
  st.set(fx.a.id, P::Vec::fromUint(8, 5));
  st.set(fx.b.id, P::Vec::fromUint(8, 6));

  std::vector<SignalWrite<P>> nba;
  ex.run(*fx.d.processes[0].body, nba);
  // Not yet visible.
  EXPECT_EQ(0u, st.get(fx.y.id).toUint());
  ASSERT_EQ(1u, nba.size());
  EXPECT_TRUE(commitWrite(st, nba[0]));
  EXPECT_EQ(11u, st.get(fx.y.id).toUint());
  // Committing the same value again reports no change.
  EXPECT_FALSE(commitWrite(st, nba[0]));
}

TYPED_TEST(EvalTypedTest, VariableAssignIsImmediate) {
  using P = TypeParam;
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto v = mb.var("v", 8);
  auto y = mb.out("y", 8);
  mb.onRising("p", clk, [&](ProcBuilder& p) {
    p.assign(v, Ex(a) + 1u);   // immediate
    p.assign(y, Ex(v) + 1u);   // sees updated v in the same run
  });
  Design d = elaborate(*mb.finish());
  ValueStore<P> st(d);
  Executor<P> ex(d, st);
  st.set(d.findSymbol("a"), P::Vec::fromUint(8, 10));
  std::vector<SignalWrite<P>> nba;
  ex.run(*d.processes[0].body, nba);
  EXPECT_EQ(11u, st.get(d.findSymbol("v")).toUint());
  ASSERT_EQ(1u, nba.size());
  EXPECT_EQ(12u, nba[0].value.toUint());
}

TYPED_TEST(EvalTypedTest, ArrayReadWrite) {
  using P = TypeParam;
  Fixture fx;
  ValueStore<P> st(fx.d);
  Executor<P> ex(fx.d, st);
  st.setArray(fx.mem.id, 3, P::Vec::fromUint(8, 77));
  auto e = at(fx.mem, lit(3, 3)).ptr();
  EXPECT_EQ(77u, ex.eval(*e).toUint());
}

TYPED_TEST(EvalTypedTest, ArrayIndexWraps) {
  using P = TypeParam;
  Fixture fx;
  ValueStore<P> st(fx.d);
  Executor<P> ex(fx.d, st);
  st.setArray(fx.mem.id, 1, P::Vec::fromUint(8, 55));
  // Index 9 wraps to 1 on a size-8 array (documented clamp-by-wrap).
  auto e = at(fx.mem, lit(4, 9)).ptr();
  EXPECT_EQ(55u, ex.eval(*e).toUint());
}

TYPED_TEST(EvalTypedTest, CaseSelectsMatchingArm) {
  using P = TypeParam;
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto s = mb.in("s", 2);
  auto y = mb.out("y", 8);
  mb.onRising("p", clk, [&](ProcBuilder& p) {
    p.switch_(Ex(s),
              {{{0}, [&] { p.assign(y, lit(8, 10)); }},
               {{1, 2}, [&] { p.assign(y, lit(8, 20)); }}},
              [&] { p.assign(y, lit(8, 30)); });
  });
  Design d = elaborate(*mb.finish());
  ValueStore<P> st(d);
  Executor<P> ex(d, st);

  auto runWith = [&](std::uint64_t sv) {
    st.set(d.findSymbol("s"), P::Vec::fromUint(2, sv));
    std::vector<SignalWrite<P>> nba;
    ex.run(*d.processes[0].body, nba);
    EXPECT_EQ(1u, nba.size());
    return nba[0].value.toUint();
  };
  EXPECT_EQ(10u, runWith(0));
  EXPECT_EQ(20u, runWith(1));
  EXPECT_EQ(20u, runWith(2));
  EXPECT_EQ(30u, runWith(3));
}

TYPED_TEST(EvalTypedTest, RangeAssignMergesBits) {
  using P = TypeParam;
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto y = mb.signal("y", 8);
  mb.onRising("p", clk, [&](ProcBuilder& p) {
    p.assignRange(y, 7, 4, lit(4, 0xA));
  });
  Design d = elaborate(*mb.finish());
  ValueStore<P> st(d);
  Executor<P> ex(d, st);
  st.set(d.findSymbol("y"), P::Vec::fromUint(8, 0x0C));
  std::vector<SignalWrite<P>> nba;
  ex.run(*d.processes[0].body, nba);
  ASSERT_EQ(1u, nba.size());
  EXPECT_TRUE(commitWrite(st, nba[0]));
  EXPECT_EQ(0xACu, st.get(d.findSymbol("y")).toUint());
}

TYPED_TEST(EvalTypedTest, InitialValuesApplied) {
  using P = TypeParam;
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  (void)clk;
  auto s = mb.signalInit("s", 8, 0x5A);
  auto arr = mb.array("rom", 8, 4);
  mb.initArray(arr, {1, 2, 3, 4});
  Design d = elaborate(*mb.finish());
  ValueStore<P> st(d);
  EXPECT_EQ(0x5Au, st.get(d.findSymbol("s")).toUint());
  EXPECT_EQ(3u, st.getArray(d.findSymbol("rom"), 2).toUint());
  (void)s;
}

TYPED_TEST(EvalTypedTest, SelectConditionChoosesArm) {
  using P = TypeParam;
  Fixture fx;
  ValueStore<P> st(fx.d);
  Executor<P> ex(fx.d, st);
  st.set(fx.a.id, P::Vec::fromUint(8, 1));
  auto e = sel(Ex(fx.a) == 1u, lit(8, 100), lit(8, 200)).ptr();
  EXPECT_EQ(100u, ex.eval(*e).toUint());
  st.set(fx.a.id, P::Vec::fromUint(8, 2));
  EXPECT_EQ(200u, ex.eval(*e).toUint());
}

TYPED_TEST(EvalTypedTest, SignedComparisonFollowsOperandTypes) {
  using P = TypeParam;
  ModuleBuilder mb("m");
  auto a = mb.signal("a", 8, /*isSigned=*/true);
  auto b = mb.signal("b", 8, /*isSigned=*/true);
  Design d = elaborate(*mb.finish());
  ValueStore<P> st(d);
  Executor<P> ex(d, st);
  st.set(d.findSymbol("a"), P::Vec::fromUint(8, 0xFF));  // -1
  st.set(d.findSymbol("b"), P::Vec::fromUint(8, 0x01));  // +1
  auto lt = (Ex(a) < Ex(b)).ptr();
  EXPECT_EQ(1u, ex.eval(*lt).toUint());
}

// 4-state-only behaviours.
TEST(EvalFourState, UnknownConditionTakesElseBranch) {
  using P = hdt::FourState;
  Fixture fx;
  ValueStore<P> st(fx.d);
  Executor<P> ex(fx.d, st);
  st.set(fx.a.id, hdt::LogicVector::allX(8));
  auto e = sel(Ex(fx.a) == 1u, lit(8, 100), lit(8, 200)).ptr();
  EXPECT_EQ(200u, ex.eval(*e).toUint());
}

TEST(EvalFourState, UnknownArrayIndexYieldsAllX) {
  using P = hdt::FourState;
  Fixture fx;
  ValueStore<P> st(fx.d);
  Executor<P> ex(fx.d, st);
  ModuleBuilder mb("aux");
  auto i = mb.signal("i", 3);
  (void)i;
  // Use input a as an X index.
  st.set(fx.a.id, hdt::LogicVector::allX(8));
  auto e = makeArrayRef(fx.mem.id, Type{8, false}, makeRef(fx.a.id, Type{8, false}));
  EXPECT_TRUE(ex.eval(*e).anyUnknown());
}

}  // namespace
}  // namespace xlv::ir
