// Elaboration: flattening, port unification, legality checks.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/elaborate.h"

namespace xlv::ir {
namespace {

std::shared_ptr<Module> makeCounterChild() {
  ModuleBuilder mb("ctr");
  auto clk = mb.clock("clk");
  auto en = mb.in("en", 1);
  auto q = mb.out("q", 4);
  mb.onRising("count", clk, [&](ProcBuilder& p) {
    p.if_(Ex(en) == 1u, [&] { p.assign(q, Ex(q) + 1u); });
  });
  return mb.finish();
}

TEST(Elaborate, FlatTopKeepsPortNames) {
  auto m = makeCounterChild();
  Design d = elaborate(*m);
  EXPECT_EQ("ctr", d.name);
  EXPECT_NE(kNoSymbol, d.findSymbol("clk"));
  EXPECT_NE(kNoSymbol, d.findSymbol("en"));
  EXPECT_NE(kNoSymbol, d.findSymbol("q"));
  EXPECT_EQ(d.findSymbol("clk"), d.mainClock);
  ASSERT_EQ(1u, d.inputs.size());  // clk excluded from inputs
  EXPECT_EQ(d.findSymbol("en"), d.inputs[0]);
}

TEST(Elaborate, InstanceSymbolsArePrefixed) {
  auto child = makeCounterChild();
  ModuleBuilder top("top");
  auto clk = top.clock("clk");
  auto en = top.in("en", 1);
  auto q0 = top.out("q0", 4);
  auto q1 = top.out("q1", 4);
  top.instance("u0", child, {{"clk", clk}, {"en", en}, {"q", q0}});
  top.instance("u1", child, {{"clk", clk}, {"en", en}, {"q", q1}});
  Design d = elaborate(*top.finish());

  // Child ports unified with parent symbols; no duplicated port symbols.
  EXPECT_EQ(kNoSymbol, d.findSymbol("u0.clk"));
  EXPECT_EQ(kNoSymbol, d.findSymbol("u0.q"));
  // Two processes, one per instance, with prefixed names.
  ASSERT_EQ(2u, d.processes.size());
  EXPECT_EQ("u0.count", d.processes[0].name);
  EXPECT_EQ("u1.count", d.processes[1].name);
  // Both sync processes reference the single flat clock.
  EXPECT_EQ(d.mainClock, d.processes[0].clock);
  EXPECT_EQ(d.mainClock, d.processes[1].clock);
}

TEST(Elaborate, NestedHierarchyFlattens) {
  auto leaf = makeCounterChild();
  ModuleBuilder mid("mid");
  auto mclk = mid.clock("clk");
  auto men = mid.in("en", 1);
  auto mq = mid.out("q", 4);
  mid.instance("leaf0", leaf, {{"clk", mclk}, {"en", men}, {"q", mq}});
  auto midM = mid.finish();

  ModuleBuilder top("top");
  auto clk = top.clock("clk");
  auto en = top.in("en", 1);
  auto q = top.out("q", 4);
  top.instance("m0", midM, {{"clk", clk}, {"en", en}, {"q", q}});
  Design d = elaborate(*top.finish());
  ASSERT_EQ(1u, d.processes.size());
  EXPECT_EQ("m0.leaf0.count", d.processes[0].name);
}

TEST(Elaborate, DetectsMultipleDrivers) {
  ModuleBuilder mb("bad");
  auto clk = mb.clock("clk");
  auto y = mb.signal("y", 1);
  mb.onRising("p1", clk, [&](ProcBuilder& p) { p.assign(y, lit(1, 0)); });
  mb.onRising("p2", clk, [&](ProcBuilder& p) { p.assign(y, lit(1, 1)); });
  EXPECT_THROW(elaborate(*mb.finish()), ElaborationError);
}

TEST(Elaborate, DetectsClockWrite) {
  ModuleBuilder mb("bad");
  auto clk = mb.clock("clk");
  mb.comb("p", [&](ProcBuilder& p) { p.assign(clk, lit(1, 1)); });
  EXPECT_THROW(elaborate(*mb.finish()), ElaborationError);
}

TEST(Elaborate, DetectsInputPortWrite) {
  ModuleBuilder mb("bad");
  auto a = mb.in("a", 4);
  mb.comb("p", [&](ProcBuilder& p) { p.assign(a, lit(4, 1)); });
  EXPECT_THROW(elaborate(*mb.finish()), ElaborationError);
}

TEST(Elaborate, MarksRegisters) {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto r = mb.signal("r", 8);
  auto w = mb.signal("w", 8);
  auto y = mb.out("y", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, a); });
  mb.comb("wire", [&](ProcBuilder& p) { p.assign(w, Ex(r) + 1u); });
  mb.comb("drive", [&](ProcBuilder& p) { p.assign(y, w); });
  Design d = elaborate(*mb.finish());
  EXPECT_TRUE(d.isRegister[static_cast<std::size_t>(d.findSymbol("r"))]);
  EXPECT_FALSE(d.isRegister[static_cast<std::size_t>(d.findSymbol("w"))]);
  EXPECT_EQ(8, d.flipFlopBits());
}

TEST(Elaborate, FlipFlopBitsCountsArrays) {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto idx = mb.in("i", 2);
  auto rf = mb.array("rf", 8, 4);
  mb.onRising("wr", clk, [&](ProcBuilder& p) { p.write(rf, Ex(idx), Ex(a)); });
  Design d = elaborate(*mb.finish());
  EXPECT_EQ(32, d.flipFlopBits());
}

TEST(Elaborate, CountProcesses) {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 1);
  auto r = mb.signal("r", 1);
  auto w = mb.out("w", 1);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, a); });
  mb.comb("c1", [&](ProcBuilder& p) { p.assign(w, ~Ex(r)); });
  Design d = elaborate(*mb.finish());
  EXPECT_EQ(1, d.countProcesses(true));
  EXPECT_EQ(1, d.countProcesses(false));
}

}  // namespace
}  // namespace xlv::ir
