// Builder DSL: declarations, operator width alignment, process construction.
#include <gtest/gtest.h>

#include "ir/builder.h"

namespace xlv::ir {
namespace {

TEST(Builder, DeclarationsCreateSymbols) {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto y = mb.out("y", 8);
  auto s = mb.signal("s", 4);
  auto v = mb.var("v", 4);
  auto arr = mb.array("mem", 8, 16);
  auto m = mb.finish();

  EXPECT_EQ(6u, m->symbols().size());
  EXPECT_TRUE(m->symbol(clk.id).isClock());
  EXPECT_EQ(PortDir::In, m->symbol(a.id).dir);
  EXPECT_EQ(PortDir::Out, m->symbol(y.id).dir);
  EXPECT_EQ(SymKind::Signal, m->symbol(s.id).kind);
  EXPECT_EQ(SymKind::Variable, m->symbol(v.id).kind);
  EXPECT_EQ(SymKind::Array, m->symbol(arr.id).kind);
  EXPECT_EQ(16, m->symbol(arr.id).arraySize);
}

TEST(Builder, RejectsDuplicateNames) {
  ModuleBuilder mb("m");
  mb.signal("s", 4);
  EXPECT_THROW(mb.signal("s", 8), std::invalid_argument);
}

TEST(Builder, OperatorAlignmentZeroExtendsUnsigned) {
  ModuleBuilder mb("m");
  auto a = mb.signal("a", 4);
  auto b = mb.signal("b", 8);
  Ex sum = Ex(a) + Ex(b);
  EXPECT_EQ(8, sum.width());
}

TEST(Builder, OperatorAlignmentSignExtendsSigned) {
  ModuleBuilder mb("m");
  auto a = mb.signal("a", 4, /*isSigned=*/true);
  auto b = mb.signal("b", 8, /*isSigned=*/true);
  Ex sum = Ex(a) + Ex(b);
  EXPECT_EQ(8, sum.width());
  EXPECT_TRUE(sum.isSigned());
  // The narrow operand was sign-extended.
  EXPECT_EQ(ExprKind::Binary, sum.ptr()->kind);
  EXPECT_EQ(ExprKind::Sext, sum.ptr()->a->kind);
}

TEST(Builder, ComparisonIsOneBit) {
  ModuleBuilder mb("m");
  auto a = mb.signal("a", 16);
  Ex e = Ex(a) == 5u;
  EXPECT_EQ(1, e.width());
}

TEST(Builder, ConcatAndSlice) {
  ModuleBuilder mb("m");
  auto a = mb.signal("a", 4);
  auto b = mb.signal("b", 4);
  EXPECT_EQ(8, concat(a, b).width());
  EXPECT_EQ(2, slice(Ex(a), 2, 1).width());
  EXPECT_EQ(1, bitof(Ex(a), 3).width());
}

TEST(Builder, SyncProcessRecordsClockAndEdge) {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto q = mb.signal("q", 1);
  auto d = mb.in("d", 1);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(q, d); });
  mb.onFalling("sh", clk, [&](ProcBuilder& p) { p.assign(q, d); });
  auto m = mb.finish();
  ASSERT_EQ(2u, m->processes().size());
  EXPECT_TRUE(m->processes()[0].isSync);
  EXPECT_EQ(clk.id, m->processes()[0].clock);
  EXPECT_EQ(EdgeKind::Rising, m->processes()[0].edge);
  EXPECT_EQ(EdgeKind::Falling, m->processes()[1].edge);
}

TEST(Builder, CombProcessDerivesSensitivity) {
  ModuleBuilder mb("m");
  auto a = mb.in("a", 4);
  auto b = mb.in("b", 4);
  auto c = mb.in("c", 1);
  auto y = mb.out("y", 4);
  mb.comb("mux", [&](ProcBuilder& p) { p.assign(y, sel(Ex(c) == 1u, a, b)); });
  auto m = mb.finish();
  const auto& sens = m->processes()[0].sensitivity;
  // Reads a, b, c — but never its own output.
  EXPECT_EQ(3u, sens.size());
  EXPECT_TRUE(std::find(sens.begin(), sens.end(), a.id) != sens.end());
  EXPECT_TRUE(std::find(sens.begin(), sens.end(), b.id) != sens.end());
  EXPECT_TRUE(std::find(sens.begin(), sens.end(), c.id) != sens.end());
  EXPECT_TRUE(std::find(sens.begin(), sens.end(), y.id) == sens.end());
}

TEST(Builder, NestedControlFlow) {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto st = mb.signal("st", 2);
  auto y = mb.signal("y", 4);
  mb.onRising("fsm", clk, [&](ProcBuilder& p) {
    p.switch_(Ex(st),
              {{{0}, [&] { p.assign(y, lit(4, 1)); }},
               {{1, 2}, [&] { p.if_(Ex(y) == 3u, [&] { p.assign(y, lit(4, 0)); }); }}},
              [&] { p.assign(y, lit(4, 15)); });
  });
  auto m = mb.finish();
  const auto& body = *m->processes()[0].body;
  ASSERT_EQ(StmtKind::Block, body.kind);
  ASSERT_EQ(1u, body.stmts.size());
  const auto& cs = *body.stmts[0];
  ASSERT_EQ(StmtKind::Case, cs.kind);
  EXPECT_EQ(2u, cs.arms.size());
  EXPECT_NE(nullptr, cs.defaultArm);
  EXPECT_EQ(3, countAssignments(cs));
}

TEST(Builder, AssignAutoResizesValue) {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto wide = mb.signal("wide", 16);
  auto narrow = mb.in("narrow", 4);
  mb.onRising("p", clk, [&](ProcBuilder& p) { p.assign(wide, narrow); });
  auto m = mb.finish();
  const auto& assign = *m->processes()[0].body->stmts[0];
  EXPECT_EQ(16, assign.value->type.width);
}

TEST(Builder, InstanceChecksPortNamesAndWidths) {
  ModuleBuilder child("child");
  child.in("i", 4);
  child.out("o", 4);
  auto cm = child.finish();

  ModuleBuilder parent("parent");
  auto s4 = parent.signal("s4", 4);
  auto s8 = parent.signal("s8", 8);
  EXPECT_THROW(parent.instance("u1", cm, {{"nope", s4}}), std::invalid_argument);
  EXPECT_THROW(parent.instance("u2", cm, {{"i", s8}}), std::invalid_argument);
  parent.instance("u3", cm, {{"i", s4}, {"o", s4}});
  EXPECT_EQ(1u, parent.module().instances().size());
}

TEST(Builder, BitselSelectsDynamicBit) {
  ModuleBuilder mb("m");
  auto a = mb.signal("a", 8);
  auto i = mb.signal("i", 3);
  Ex b = bitsel(a, i);
  EXPECT_EQ(1, b.width());
}

}  // namespace
}  // namespace xlv::ir
