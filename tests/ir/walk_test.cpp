// IR traversal: read/write sets, remapping clones, assignment rewriting.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/walk.h"

namespace xlv::ir {
namespace {

TEST(Walk, CollectReadsSeesConditionsAndIndices) {
  ModuleBuilder mb("m");
  auto a = mb.in("a", 4);
  auto b = mb.in("b", 4);
  auto i = mb.in("i", 2);
  auto arr = mb.array("mem", 4, 4);
  auto y = mb.out("y", 4);
  mb.comb("p", [&](ProcBuilder& p) {
    p.if_(Ex(a) == 0u, [&] { p.assign(y, at(arr, Ex(i)) + Ex(b)); });
  });
  auto m = mb.finish();
  std::set<SymbolId> reads;
  collectReads(*m->processes()[0].body, reads);
  EXPECT_TRUE(reads.count(a.id));
  EXPECT_TRUE(reads.count(b.id));
  EXPECT_TRUE(reads.count(i.id));
  EXPECT_TRUE(reads.count(arr.id));
  EXPECT_FALSE(reads.count(y.id));
}

TEST(Walk, CollectWritesSeesAllBranches) {
  ModuleBuilder mb("m");
  auto c = mb.in("c", 1);
  auto y = mb.signal("y", 4);
  auto z = mb.signal("z", 4);
  auto clk = mb.clock("clk");
  mb.onRising("p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(c) == 1u, [&] { p.assign(y, lit(4, 1)); }, [&] { p.assign(z, lit(4, 2)); });
  });
  auto m = mb.finish();
  std::set<SymbolId> writes;
  collectWrites(*m->processes()[0].body, writes);
  EXPECT_TRUE(writes.count(y.id));
  EXPECT_TRUE(writes.count(z.id));
  EXPECT_FALSE(writes.count(c.id));
}

TEST(Walk, RemapStmtSubstitutesSymbols) {
  ModuleBuilder mb("m");
  auto a = mb.in("a", 4);
  auto y = mb.signal("y", 4);
  auto clk = mb.clock("clk");
  mb.onRising("p", clk, [&](ProcBuilder& p) { p.assign(y, Ex(a) + 1u); });
  auto m = mb.finish();

  std::unordered_map<SymbolId, SymbolId> map{{a.id, 100}, {y.id, 200}};
  auto mapped = remapStmt(m->processes()[0].body, map);
  std::set<SymbolId> reads, writes;
  collectReads(*mapped, reads);
  collectWrites(*mapped, writes);
  EXPECT_TRUE(reads.count(100));
  EXPECT_TRUE(writes.count(200));
  EXPECT_FALSE(reads.count(a.id));
}

TEST(Walk, RemapLeavesUnmappedSymbolsAlone) {
  auto e = makeRef(7, Type{4, false});
  auto r = remapExpr(e, {{3, 30}});
  EXPECT_EQ(7, r->sym);
}

TEST(Walk, RewriteAssignsTransformsLeaves) {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto y = mb.signal("y", 4);
  auto z = mb.signal("z", 4);
  auto c = mb.in("c", 1);
  mb.onRising("p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(c) == 1u, [&] { p.assign(y, lit(4, 1)); }, [&] { p.assign(z, lit(4, 2)); });
  });
  auto m = mb.finish();

  // Redirect writes of y to z (the shape of a mutant's tmp redirection).
  int rewrites = 0;
  auto out = rewriteAssigns(m->processes()[0].body, [&](const StmtPtr& s) -> StmtPtr {
    if (s->target == y.id) {
      ++rewrites;
      auto n = std::make_shared<Stmt>(*s);
      n->target = z.id;
      return n;
    }
    return s;
  });
  EXPECT_EQ(1, rewrites);
  std::set<SymbolId> writes;
  collectWrites(*out, writes);
  EXPECT_FALSE(writes.count(y.id));
  EXPECT_TRUE(writes.count(z.id));
  // Original untouched (persistent tree).
  std::set<SymbolId> origWrites;
  collectWrites(*m->processes()[0].body, origWrites);
  EXPECT_TRUE(origWrites.count(y.id));
}

TEST(Walk, DeriveSensitivityIsSortedUnique) {
  ModuleBuilder mb("m");
  auto a = mb.in("a", 4);
  auto y = mb.out("y", 4);
  mb.comb("p", [&](ProcBuilder& p) { p.assign(y, Ex(a) + Ex(a)); });
  auto m = mb.finish();
  const auto& sens = m->processes()[0].sensitivity;
  EXPECT_EQ(1u, sens.size());
  EXPECT_EQ(a.id, sens[0]);
}

}  // namespace
}  // namespace xlv::ir
