// Statement factories and the assignment counter.
#include <gtest/gtest.h>

#include "ir/stmt.h"

namespace xlv::ir {
namespace {

TEST(Stmt, AssignValidation) {
  EXPECT_THROW(makeAssign(kNoSymbol, makeConst(1, 0)), std::invalid_argument);
  EXPECT_THROW(makeAssign(0, nullptr), std::invalid_argument);
  auto s = makeAssign(3, makeConst(8, 1));
  EXPECT_EQ(StmtKind::Assign, s->kind);
  EXPECT_EQ(3, s->target);
  EXPECT_EQ(-1, s->hi);
}

TEST(Stmt, RangeAssignChecksWidth) {
  EXPECT_THROW(makeAssignRange(0, 7, 4, makeConst(8, 1)), std::invalid_argument);
  auto s = makeAssignRange(0, 7, 4, makeConst(4, 1));
  EXPECT_EQ(7, s->hi);
  EXPECT_EQ(4, s->lo);
}

TEST(Stmt, CountAssignmentsWalksNesting) {
  auto a1 = makeAssign(0, makeConst(1, 0));
  auto a2 = makeAssign(1, makeConst(1, 1));
  auto a3 = makeArrayWrite(2, makeConst(4, 0), makeConst(8, 0));
  auto inner = makeIf(makeConst(1, 1), a1, a2);
  std::vector<CaseArm> arms;
  arms.push_back(CaseArm{{0, 1}, makeBlock({inner, a3})});
  auto c = makeCase(makeConst(2, 0), std::move(arms), a1);
  EXPECT_EQ(4, countAssignments(*c));  // if(2) + arraywrite + default
}

TEST(Stmt, EmptyBlockCountsZero) {
  EXPECT_EQ(0, countAssignments(*makeBlock({})));
}

}  // namespace
}  // namespace xlv::ir
