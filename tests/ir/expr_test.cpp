// Expression factories: width/type computation and validation.
#include <gtest/gtest.h>

#include "ir/expr.h"

namespace xlv::ir {
namespace {

TEST(Expr, ConstMasksValue) {
  auto e = makeConst(4, 0x1F);
  EXPECT_EQ(0xFu, e->cval);
  EXPECT_EQ(4, e->type.width);
}

TEST(Expr, ConstRejectsZeroWidth) {
  EXPECT_THROW(makeConst(0, 1), std::invalid_argument);
}

TEST(Expr, BinaryWidthRules) {
  auto a = makeConst(8, 1);
  auto b = makeConst(8, 2);
  EXPECT_EQ(8, makeBinary(BinOp::Add, a, b)->type.width);
  EXPECT_EQ(1, makeBinary(BinOp::Eq, a, b)->type.width);
  EXPECT_EQ(16, makeBinary(BinOp::Concat, a, b)->type.width);
}

TEST(Expr, BinaryRejectsWidthMismatch) {
  auto a = makeConst(8, 1);
  auto b = makeConst(4, 2);
  EXPECT_THROW(makeBinary(BinOp::Add, a, b), std::invalid_argument);
  EXPECT_THROW(makeBinary(BinOp::Eq, a, b), std::invalid_argument);
}

TEST(Expr, ShiftAllowsAnyAmountWidth) {
  auto a = makeConst(8, 1);
  auto amt = makeConst(32, 3);
  EXPECT_EQ(8, makeBinary(BinOp::Shl, a, amt)->type.width);
}

TEST(Expr, SliceBoundsChecked) {
  auto a = makeConst(8, 0xFF);
  EXPECT_EQ(4, makeSlice(a, 7, 4)->type.width);
  EXPECT_THROW(makeSlice(a, 8, 0), std::invalid_argument);
  EXPECT_THROW(makeSlice(a, 3, 5), std::invalid_argument);
}

TEST(Expr, SelectRequiresMatchingArms) {
  auto c = makeConst(1, 1);
  auto t = makeConst(8, 1);
  auto f4 = makeConst(4, 1);
  EXPECT_THROW(makeSelect(c, t, f4), std::invalid_argument);
  auto f8 = makeConst(8, 2);
  EXPECT_EQ(8, makeSelect(c, t, f8)->type.width);
}

TEST(Expr, ResizeIsIdentityAtSameWidth) {
  auto a = makeConst(8, 1);
  EXPECT_EQ(a.get(), makeResize(a, 8).get());
  EXPECT_EQ(12, makeResize(a, 12)->type.width);
}

TEST(Expr, SextMarksSigned) {
  auto a = makeConst(8, 0x80);
  auto s = makeSext(a, 16);
  EXPECT_TRUE(s->type.isSigned);
  EXPECT_EQ(16, s->type.width);
}

TEST(Expr, ReductionsAreOneBit) {
  auto a = makeConst(8, 3);
  EXPECT_EQ(1, makeUnary(UnOp::RedAnd, a)->type.width);
  EXPECT_EQ(1, makeUnary(UnOp::RedOr, a)->type.width);
  EXPECT_EQ(1, makeUnary(UnOp::BoolNot, a)->type.width);
  EXPECT_EQ(8, makeUnary(UnOp::Not, a)->type.width);
}

TEST(Expr, ToStringRendersStructure) {
  std::vector<Symbol> syms(2);
  syms[0].name = "a";
  syms[1].name = "b";
  auto ra = makeRef(0, Type{8, false});
  auto rb = makeRef(1, Type{8, false});
  auto e = makeBinary(BinOp::Add, ra, rb);
  EXPECT_EQ("(a + b)", exprToString(*e, syms));
  EXPECT_EQ("a[3:1]", exprToString(*makeSlice(ra, 3, 1), syms));
}

}  // namespace
}  // namespace xlv::ir
