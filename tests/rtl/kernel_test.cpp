// Event-driven kernel: clocking, delta cycles, NBA semantics, stimulus,
// transport-delay injection, high-frequency ticks, loop protection.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"

namespace xlv::rtl {
namespace {

using namespace xlv::ir;

template <class P>
class KernelTypedTest : public ::testing::Test {};

using Policies = ::testing::Types<hdt::FourState, hdt::TwoState>;
TYPED_TEST_SUITE(KernelTypedTest, Policies);

Design counterDesign() {
  ModuleBuilder mb("ctr");
  auto clk = mb.clock("clk");
  auto en = mb.in("en", 1);
  auto q = mb.out("q", 8);
  mb.onRising("count", clk, [&](ProcBuilder& p) {
    p.if_(Ex(en) == 1u, [&] { p.assign(q, Ex(q) + 1u); });
  });
  return elaborate(*mb.finish());
}

TYPED_TEST(KernelTypedTest, CounterCountsEnabledCycles) {
  using P = TypeParam;
  Design d = counterDesign();
  RtlSimulator<P> sim(d, KernelConfig{1000, 0, 100});
  sim.setStimulus([&](std::uint64_t cycle, RtlSimulator<P>& s) {
    s.setInputByName("en", cycle >= 2 ? 1 : 0);
  });
  sim.runCycles(10);
  // Enabled on cycles 2..9 -> 8 increments.
  EXPECT_EQ(8u, sim.valueUintByName("q"));
  EXPECT_EQ(10u, sim.stats().mainCycles);
}

TYPED_TEST(KernelTypedTest, ShiftRegisterProvesNonblockingSemantics) {
  using P = TypeParam;
  ModuleBuilder mb("shift");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 1);
  auto s1 = mb.signal("s1", 1);
  auto s2 = mb.signal("s2", 1);
  auto dout = mb.out("dout", 1);
  // All three FFs in one process: with NBA semantics each stage sees the
  // previous stage's OLD value, so data takes 3 cycles to reach dout.
  mb.onRising("ffs", clk, [&](ProcBuilder& p) {
    p.assign(s1, din);
    p.assign(s2, s1);
    p.assign(dout, s2);
  });
  Design d = elaborate(*mb.finish());
  RtlSimulator<P> sim(d, KernelConfig{1000, 0, 100});
  std::vector<std::uint64_t> outs;
  sim.setStimulus([&](std::uint64_t cycle, RtlSimulator<P>& s) {
    s.setInputByName("din", cycle == 0 ? 1 : 0);
    outs.push_back(s.valueUintByName("dout"));
  });
  sim.runCycles(5);
  // din=1 at cycle 0 appears on dout after the 3rd edge => observed at the
  // stimulus point of cycle 3.
  ASSERT_EQ(5u, outs.size());
  EXPECT_EQ(0u, outs[1]);
  EXPECT_EQ(0u, outs[2]);
  EXPECT_EQ(1u, outs[3]);
  EXPECT_EQ(0u, outs[4]);
}

TYPED_TEST(KernelTypedTest, AsyncChainSettlesWithinDeltas) {
  using P = TypeParam;
  ModuleBuilder mb("chain");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto w1 = mb.signal("w1", 8);
  auto w2 = mb.signal("w2", 8);
  auto y = mb.out("y", 8);
  auto r = mb.signal("r", 8);
  mb.comb("c1", [&](ProcBuilder& p) { p.assign(w1, Ex(a) + 1u); });
  mb.comb("c2", [&](ProcBuilder& p) { p.assign(w2, Ex(w1) + 1u); });
  mb.comb("c3", [&](ProcBuilder& p) { p.assign(y, Ex(w2) + 1u); });
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, y); });
  Design d = elaborate(*mb.finish());
  RtlSimulator<P> sim(d, KernelConfig{1000, 0, 100});
  sim.setStimulus([&](std::uint64_t cycle, RtlSimulator<P>& s) {
    s.setInputByName("a", 10 + cycle);
  });
  sim.runCycles(1);
  // a=10 settles through the chain before the edge; register captured 13.
  EXPECT_EQ(13u, sim.valueUintByName("r"));
  sim.runCycles(1);
  EXPECT_EQ(14u, sim.valueUintByName("r"));
}

TYPED_TEST(KernelTypedTest, CombinationalLoopHitsDeltaLimit) {
  using P = TypeParam;
  ModuleBuilder mb("loop");
  auto a = mb.signal("a", 1);
  auto start = mb.in("start", 1);
  // Ring oscillator: while start is high, a inverts itself every delta.
  mb.comb("osc", [&](ProcBuilder& p) { p.assign(a, sel(Ex(start) == 1u, ~Ex(a), Ex(a))); });
  // A main clock must exist for the schedule even if unused by processes.
  mb.clock("clk");
  Design d = elaborate(*mb.finish());
  RtlSimulator<P> sim(d, KernelConfig{1000, 0, 50});
  sim.setStimulus([&](std::uint64_t, RtlSimulator<P>& s) { s.setInputByName("start", 1); });
  EXPECT_THROW(sim.runCycles(1), std::runtime_error);
}

TYPED_TEST(KernelTypedTest, FallingEdgeProcessesRunAtFall) {
  using P = TypeParam;
  ModuleBuilder mb("both");
  auto clk = mb.clock("clk");
  auto d_in = mb.in("d", 8);
  auto qr = mb.signal("qr", 8);
  auto qf = mb.signal("qf", 8);
  mb.onRising("pr", clk, [&](ProcBuilder& p) { p.assign(qr, d_in); });
  mb.onFalling("pf", clk, [&](ProcBuilder& p) { p.assign(qf, d_in); });
  Design d = elaborate(*mb.finish());
  RtlSimulator<P> sim(d, KernelConfig{1000, 0, 100});
  sim.setStimulus([&](std::uint64_t cycle, RtlSimulator<P>& s) {
    s.setInputByName("d", cycle + 1);
  });
  sim.runCycles(1);
  // Both edges saw the cycle-0 stimulus value.
  EXPECT_EQ(1u, sim.valueUintByName("qr"));
  EXPECT_EQ(1u, sim.valueUintByName("qf"));
}

TYPED_TEST(KernelTypedTest, InjectedDelayPostponesCommitPastEdge) {
  using P = TypeParam;
  ModuleBuilder mb("late");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto w = mb.signal("w", 8);
  auto r = mb.out("r", 8);
  mb.comb("c", [&](ProcBuilder& p) { p.assign(w, Ex(a) + 1u); });
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, w); });
  Design d = elaborate(*mb.finish());

  // Without delay: r == a+1 after one cycle.
  {
    RtlSimulator<P> sim(d, KernelConfig{1000, 0, 100});
    sim.setStimulus([&](std::uint64_t, RtlSimulator<P>& s) { s.setInputByName("a", 41); });
    sim.runCycles(1);
    EXPECT_EQ(42u, sim.valueUintByName("r"));
  }
  // With a transport delay of 600ps on w (> T/4 from the stimulus point at
  // period 1000), the edge samples the OLD w value.
  {
    RtlSimulator<P> sim(d, KernelConfig{1000, 0, 100});
    sim.injectDelay(d.findSymbol("w"), 600);
    sim.setStimulus([&](std::uint64_t, RtlSimulator<P>& s) { s.setInputByName("a", 41); });
    sim.runCycles(1);
    EXPECT_EQ(0u, sim.valueUintByName("r"));  // captured pre-update w
    sim.runCycles(1);
    EXPECT_EQ(42u, sim.valueUintByName("r"));  // arrives one cycle later
  }
}

TYPED_TEST(KernelTypedTest, HighFrequencyTicksCountedPerCycle) {
  using P = TypeParam;
  ModuleBuilder mb("hf");
  auto clk = mb.clock("clk");
  auto hclk = mb.clock("hclk", ClockRole::HighFreq);
  auto cnt = mb.out("cnt", 16);
  mb.onRising("tick", hclk, [&](ProcBuilder& p) { p.assign(cnt, Ex(cnt) + 1u); });
  (void)clk;
  Design d = elaborate(*mb.finish());
  RtlSimulator<P> sim(d, KernelConfig{1000, 10, 100});
  sim.runCycles(3);
  EXPECT_EQ(30u, sim.valueUintByName("cnt"));
}

TYPED_TEST(KernelTypedTest, StatsAccumulate) {
  using P = TypeParam;
  Design d = counterDesign();
  RtlSimulator<P> sim(d, KernelConfig{1000, 0, 100});
  sim.setStimulus([&](std::uint64_t, RtlSimulator<P>& s) { s.setInputByName("en", 1); });
  sim.runCycles(4);
  const auto& st = sim.stats();
  EXPECT_EQ(4u, st.mainCycles);
  EXPECT_GE(st.processRuns, 4u);
  EXPECT_GE(st.commits, 4u);
}

TYPED_TEST(KernelTypedTest, HfRatioWithoutHfClockThrows) {
  using P = TypeParam;
  Design d = counterDesign();
  EXPECT_THROW((RtlSimulator<P>(d, KernelConfig{1000, 10, 100})), std::invalid_argument);
}

TYPED_TEST(KernelTypedTest, TimeAdvancesMonotonically) {
  using P = TypeParam;
  Design d = counterDesign();
  RtlSimulator<P> sim(d, KernelConfig{1000, 0, 100});
  sim.runCycles(2);
  EXPECT_EQ(2u * 1000u - 1u, sim.timePs());
}

}  // namespace
}  // namespace xlv::rtl
