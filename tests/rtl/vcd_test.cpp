// VCD writer: header structure and value change records.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"
#include "rtl/vcd.h"

namespace xlv::rtl {
namespace {

using namespace xlv::ir;

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(Vcd, HeaderListsWires) {
  ModuleBuilder mb("m");
  mb.clock("clk");
  mb.in("a", 8);
  mb.out("y", 1);
  mb.array("mem", 8, 4);
  Design d = elaborate(*mb.finish());

  const std::string path = ::testing::TempDir() + "/xlv_vcd_header.vcd";
  {
    VcdWriter vcd(path, d);
    ASSERT_TRUE(vcd.ok());
  }
  const std::string text = slurp(path);
  EXPECT_NE(std::string::npos, text.find("$timescale 1ps $end"));
  EXPECT_NE(std::string::npos, text.find("$var wire 1"));
  EXPECT_NE(std::string::npos, text.find("$var wire 8"));
  EXPECT_NE(std::string::npos, text.find("a [7:0]"));
  // Arrays are not traced.
  EXPECT_EQ(std::string::npos, text.find("mem"));
  EXPECT_NE(std::string::npos, text.find("$enddefinitions"));
}

TEST(Vcd, KernelEmitsChanges) {
  ModuleBuilder mb("ctr");
  auto clk = mb.clock("clk");
  auto q = mb.out("q", 4);
  mb.onRising("count", clk, [&](ProcBuilder& p) { p.assign(q, Ex(q) + 1u); });
  Design d = elaborate(*mb.finish());

  const std::string path = ::testing::TempDir() + "/xlv_vcd_changes.vcd";
  {
    VcdWriter vcd(path, d);
    RtlSimulator<hdt::FourState> sim(d, KernelConfig{1000, 0, 100});
    sim.attachVcd(&vcd);
    sim.runCycles(3);
  }
  const std::string text = slurp(path);
  // Time advances and multi-bit changes appear with the b-prefix.
  EXPECT_NE(std::string::npos, text.find("#250"));
  EXPECT_NE(std::string::npos, text.find("b0001"));
  EXPECT_NE(std::string::npos, text.find("b0010"));
  EXPECT_NE(std::string::npos, text.find("b0011"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xlv::rtl
