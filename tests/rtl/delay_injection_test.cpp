// Transport-delay injection in the event-driven kernel — the RTL half of the
// paper's Section 8.5 validation: semantics of concurrent delays, clearing,
// boundary maturities, and downstream corruption thresholds.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"

namespace xlv::rtl {
namespace {

using namespace xlv::ir;

constexpr std::uint64_t kT = 1000;

struct Pipe {
  Design d;
  SymbolId r1, r2;

  Pipe() {
    ModuleBuilder mb("pipe");
    auto clk = mb.clock("clk");
    auto din = mb.in("din", 8);
    auto a = mb.signal("r1", 8);
    auto b = mb.signal("r2", 8);
    auto dout = mb.out("dout", 8);
    mb.onRising("s1", clk, [&](ProcBuilder& p) { p.assign(a, din); });
    mb.onRising("s2", clk, [&](ProcBuilder& p) { p.assign(b, a); });
    mb.comb("drv", [&](ProcBuilder& p) { p.assign(dout, b); });
    d = elaborate(*mb.finish());
    r1 = d.findSymbol("r1");
    r2 = d.findSymbol("r2");
  }
};

RtlSimulator<hdt::FourState> makeSim(const Design& d) {
  return RtlSimulator<hdt::FourState>(d, KernelConfig{kT, 0, 1000});
}

// A delay below one period is architecturally invisible downstream: the next
// stage samples at the next edge, after the late commit matured.
TEST(DelayInjection, SubPeriodDelayInvisibleDownstream) {
  Pipe clean, delayed;
  auto a = makeSim(clean.d);
  auto b = makeSim(delayed.d);
  b.injectDelay(delayed.r1, kT / 2);
  for (auto* s : {&a, &b}) {
    s->setStimulus([](std::uint64_t c, auto& sim) { sim.setInputByName("din", 10 + c); });
  }
  for (int c = 0; c < 10; ++c) {
    a.runCycles(1);
    b.runCycles(1);
    EXPECT_EQ(a.valueUintByName("dout"), b.valueUintByName("dout")) << "cycle " << c;
  }
}

// A delay beyond one period corrupts downstream sampling: the next stage
// captures the stale value — the "failure" the sensors exist to catch.
TEST(DelayInjection, OverPeriodDelayCorruptsDownstream) {
  Pipe clean, delayed;
  auto a = makeSim(clean.d);
  auto b = makeSim(delayed.d);
  b.injectDelay(delayed.r1, kT + kT / 4);
  for (auto* s : {&a, &b}) {
    s->setStimulus([](std::uint64_t c, auto& sim) { sim.setInputByName("din", 10 + c); });
  }
  bool diverged = false;
  for (int c = 0; c < 10; ++c) {
    a.runCycles(1);
    b.runCycles(1);
    diverged |= a.valueUintByName("dout") != b.valueUintByName("dout");
  }
  EXPECT_TRUE(diverged);
}

TEST(DelayInjection, IndependentDelaysOnMultipleSignals) {
  Pipe fx;
  auto sim = makeSim(fx.d);
  sim.injectDelay(fx.r1, 300);
  sim.injectDelay(fx.r2, 450);
  sim.setStimulus([](std::uint64_t c, auto& s) { s.setInputByName("din", c); });
  EXPECT_NO_THROW(sim.runCycles(12));
  // Both signals carry pipeline data with their own lateness; values are
  // still the architectural ones (delays < T).
  EXPECT_EQ(sim.valueUintByName("r1"), 11u);
  EXPECT_EQ(sim.valueUintByName("r2"), 10u);
}

TEST(DelayInjection, ClearDelayRestoresTiming) {
  Pipe fx;
  auto sim = makeSim(fx.d);
  sim.setStimulus([](std::uint64_t c, auto& s) { s.setInputByName("din", c + 1); });
  sim.injectDelay(fx.r1, 600);
  sim.runCycles(4);
  sim.clearDelay(fx.r1);
  sim.runCycles(4);
  // After clearing, the pipeline is fully caught up.
  EXPECT_EQ(sim.valueUintByName("r1"), 8u);
  EXPECT_EQ(sim.valueUintByName("r2"), 7u);
}

TEST(DelayInjection, ClearAllDelays) {
  Pipe fx;
  auto sim = makeSim(fx.d);
  sim.injectDelay(fx.r1, 100);
  sim.injectDelay(fx.r2, 100);
  sim.clearAllDelays();
  sim.setStimulus([](std::uint64_t c, auto& s) { s.setInputByName("din", c); });
  sim.runCycles(3);
  EXPECT_EQ(1u, sim.stats().scheduledEvents + 1);  // no wheel traffic occurred
}

// Boundary: a write maturing exactly at a sampling edge is visible to that
// edge (matured events are applied before processes run).
TEST(DelayInjection, MaturityAtEdgeIsVisible) {
  ModuleBuilder mb("edge");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 8);
  auto r = mb.signal("r", 8);
  auto snap = mb.signal("snap", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, din); });
  mb.onFalling("sample", clk, [&](ProcBuilder& p) { p.assign(snap, r); });
  Design d = elaborate(*mb.finish());
  auto sim = RtlSimulator<hdt::FourState>(d, KernelConfig{kT, 0, 1000});
  // Falling edge sits T/2 after rising: a T/2 transport delay matures
  // exactly there and must be sampled.
  sim.injectDelay(d.findSymbol("r"), kT / 2);
  sim.setStimulus([](std::uint64_t c, auto& s) { s.setInputByName("din", 0x40 + c); });
  sim.runCycles(3);
  EXPECT_EQ(0x42u, sim.valueUintByName("snap"));
}

TEST(DelayInjection, StatsCountScheduledEvents) {
  Pipe fx;
  auto sim = makeSim(fx.d);
  sim.injectDelay(fx.r1, 200);
  sim.setStimulus([](std::uint64_t c, auto& s) { s.setInputByName("din", c); });
  sim.runCycles(5);
  EXPECT_GE(sim.stats().scheduledEvents, 4u);  // one diverted commit per change
}

}  // namespace
}  // namespace xlv::rtl
