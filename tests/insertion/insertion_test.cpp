// Sensor insertion: endpoint selection, port creation, wiring, functional
// preservation of the augmented IP.
#include <gtest/gtest.h>

#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"
#include "sta/sta.h"

namespace xlv::insertion {
namespace {

using namespace xlv::ir;

std::shared_ptr<Module> multiRegIp() {
  ModuleBuilder mb("ip");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto y = mb.out("y", 8);
  auto r1 = mb.signal("r1", 8);
  auto r2 = mb.signal("r2", 8);
  auto r3 = mb.signal("r3", 8);
  auto mem = mb.array("mem", 8, 16);
  auto idx = mb.in("idx", 4);
  // r1: shallow; r2, r3: deep cones.
  mb.onRising("ffs", clk, [&](ProcBuilder& p) {
    p.assign(r1, Ex(a) + 1u);
    p.assign(r2, (Ex(a) * Ex(r1)) + Ex(r2));
    p.assign(r3, (Ex(r2) * Ex(r1)) + Ex(a));
    p.write(mem, Ex(idx), (Ex(a) * Ex(r2)) + Ex(r3));
  });
  mb.comb("drive", [&](ProcBuilder& p) { p.assign(y, Ex(r2) ^ Ex(r3)); });
  return mb.finish();
}

sta::StaReport reportFor(const Module& m, double thresholdPs) {
  sta::StaConfig cfg;
  cfg.clockPeriodPs = 2000.0;
  cfg.slackThresholdPs = thresholdPs;
  return sta::analyze(elaborate(m), cfg);
}

TEST(Insertion, OneSensorPerEligibleCriticalEndpoint) {
  auto ip = multiRegIp();
  auto report = reportFor(*ip, 2000.0);  // everything critical
  InsertionConfig cfg;
  cfg.kind = SensorKind::Razor;
  auto res = insertSensors(*ip, report, cfg);
  // r1, r2, r3 get sensors; mem (array) and y (combinational output) are
  // skipped.
  EXPECT_EQ(3u, res.sensors.size());
  EXPECT_GE(res.skippedEndpoints, 1);
  EXPECT_GT(res.sensorAreaGates, 0.0);
}

TEST(Insertion, ThresholdControlsSensorCount) {
  auto ip = multiRegIp();
  auto loose = insertSensors(*ip, reportFor(*ip, 0.0), InsertionConfig{});
  auto tight = insertSensors(*ip, reportFor(*ip, 2000.0), InsertionConfig{});
  EXPECT_LT(loose.sensors.size(), tight.sensors.size());
}

TEST(Insertion, RazorAddsRecoveryAndMetricOkPorts) {
  auto ip = multiRegIp();
  auto res = insertSensors(*ip, reportFor(*ip, 2000.0), InsertionConfig{});
  const Module& m = *res.augmented;
  const SymbolId rec = m.findSymbol("recovery_en");
  const SymbolId ok = m.findSymbol("metric_ok");
  ASSERT_NE(kNoSymbol, rec);
  ASSERT_NE(kNoSymbol, ok);
  EXPECT_EQ(PortDir::In, m.symbol(rec).dir);
  EXPECT_EQ(PortDir::Out, m.symbol(ok).dir);
}

TEST(Insertion, CounterAddsHfClockAndMeasValPorts) {
  auto ip = multiRegIp();
  InsertionConfig cfg;
  cfg.kind = SensorKind::Counter;
  auto res = insertSensors(*ip, reportFor(*ip, 2000.0), cfg);
  const Module& m = *res.augmented;
  const SymbolId hclk = m.findSymbol("hclk");
  ASSERT_NE(kNoSymbol, hclk);
  EXPECT_EQ(ClockRole::HighFreq, m.symbol(hclk).clock);
  EXPECT_NE(kNoSymbol, m.findSymbol("meas_val"));
  EXPECT_NE(kNoSymbol, m.findSymbol("metric_ok"));
  // Default: full-register CPS, no extraction alias.
  EXPECT_EQ(kNoSymbol, m.findSymbol("cps_0"));
}

TEST(Insertion, CounterSingleBitModeCreatesExtractionAlias) {
  auto ip = multiRegIp();
  InsertionConfig cfg;
  cfg.kind = SensorKind::Counter;
  cfg.monitoredBit = 0;  // the literal Section 4.2 single-critical-bit mode
  auto res = insertSensors(*ip, reportFor(*ip, 2000.0), cfg);
  EXPECT_NE(kNoSymbol, res.augmented->findSymbol("cps_0"));
  EXPECT_NO_THROW(elaborate(*res.augmented));
}

TEST(Insertion, AugmentedDesignElaborates) {
  auto ip = multiRegIp();
  for (SensorKind kind : {SensorKind::Razor, SensorKind::Counter}) {
    InsertionConfig cfg;
    cfg.kind = kind;
    auto res = insertSensors(*ip, reportFor(*ip, 2000.0), cfg);
    EXPECT_NO_THROW(elaborate(*res.augmented));
  }
}

// Functional preservation (DESIGN.md invariant 5): with no delays injected,
// the augmented IP's original outputs match the clean IP cycle by cycle.
TEST(Insertion, AugmentationPreservesFunctionality) {
  auto ip = multiRegIp();
  Design clean = elaborate(*ip);
  auto res = insertSensors(*ip, reportFor(*ip, 2000.0), InsertionConfig{});
  Design aug = elaborate(*res.augmented);

  rtl::RtlSimulator<hdt::FourState> simClean(clean, rtl::KernelConfig{1000, 0, 1000});
  rtl::RtlSimulator<hdt::FourState> simAug(aug, rtl::KernelConfig{1000, 0, 1000});
  auto drive = [](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
    s.setInputByName("a", (c * 7 + 3) & 0xFF);
    s.setInputByName("idx", c & 0xF);
    if (s.design().findSymbol("recovery_en") != kNoSymbol) {
      s.setInputByName("recovery_en", 1);
    }
  };
  simClean.setStimulus(drive);
  simAug.setStimulus(drive);
  for (int c = 0; c < 30; ++c) {
    simClean.runCycles(1);
    simAug.runCycles(1);
    EXPECT_EQ(simClean.valueUintByName("y"), simAug.valueUintByName("y")) << "cycle " << c;
    EXPECT_EQ(simClean.valueUintByName("r3"), simAug.valueUintByName("r3"));
  }
  // And no sensor fired.
  EXPECT_EQ(1u, simAug.valueUintByName("metric_ok"));
}

TEST(Insertion, SensorInfoRecordsEndpointArrival) {
  auto ip = multiRegIp();
  auto report = reportFor(*ip, 2000.0);
  auto res = insertSensors(*ip, report, InsertionConfig{});
  for (const auto& s : res.sensors) {
    EXPECT_GT(s.endpointArrivalPs, 0.0) << s.endpointName;
    EXPECT_FALSE(s.instanceName.empty());
  }
}

TEST(Insertion, CloneModulePreservesStructure) {
  auto ip = multiRegIp();
  auto copy = cloneModule(*ip, "copy");
  EXPECT_EQ("copy", copy->name());
  EXPECT_EQ(ip->symbols().size(), copy->symbols().size());
  EXPECT_EQ(ip->processes().size(), copy->processes().size());
  // Clean designs from both elaborate identically-shaped.
  Design d1 = elaborate(*ip);
  Design d2 = elaborate(*copy);
  EXPECT_EQ(d1.symbols.size(), d2.symbols.size());
}

TEST(Insertion, MissingMainClockThrows) {
  ModuleBuilder mb("noclk");
  auto a = mb.in("a", 4);
  auto y = mb.out("y", 4);
  mb.comb("c", [&](ProcBuilder& p) { p.assign(y, a); });
  auto ip = mb.finish();
  sta::StaConfig cfg;
  auto report = sta::analyze(elaborate(*ip), cfg);
  EXPECT_THROW(insertSensors(*ip, report, InsertionConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace xlv::insertion
