// Compiled scalar backend: every opcode cross-checked against the
// tree-interpreting RTL kernel, on a hand-built "op zoo" design and on
// randomized stimuli sweeps (property: compiled == interpreted, cycle by
// cycle, for both value policies).
#include <gtest/gtest.h>

#include "abstraction/compiled.h"
#include "abstraction/tlm_model.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"
#include "util/prng.h"

namespace xlv::abstraction {
namespace {

using namespace xlv::ir;
using rtl::KernelConfig;
using rtl::RtlSimulator;

/// A design exercising every IR operator the compiler must translate:
/// arithmetic (incl. div/mod), signed/unsigned comparisons in both
/// directions, variable shifts, reductions, concat/slice/sext, ternaries,
/// case with multi-labels and default, range assignment, array read/write,
/// variables.
Design opZoo() {
  ModuleBuilder mb("zoo");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 16);
  auto b = mb.in("b", 16);
  auto sa = mb.in("sa", 16, /*isSigned=*/true);
  auto sb = mb.in("sb", 16, /*isSigned=*/true);
  auto sel4 = mb.in("sel4", 2);

  auto arith = mb.signal("arith", 16);
  auto divmod = mb.signal("divmod", 16);
  auto cmps = mb.signal("cmps", 8);
  auto shifts = mb.signal("shifts", 16);
  auto reds = mb.signal("reds", 4);
  auto structural = mb.signal("structural", 24);
  auto cased = mb.signal("cased", 16);
  auto ranged = mb.signal("ranged", 16);
  auto viaVar = mb.signal("via_var", 16);
  auto tmp = mb.var("tmp", 16);
  auto mem = mb.array("mem", 16, 8);
  auto memOut = mb.signal("mem_out", 16);

  mb.onRising("p_arith", clk, [&](ProcBuilder& p) {
    p.assign(arith, (Ex(a) + Ex(b)) * (Ex(a) - Ex(b)) + neg(Ex(b)));
  });
  mb.onRising("p_divmod", clk, [&](ProcBuilder& p) {
    p.assign(divmod, (Ex(a) / (Ex(b) | lit(16, 1))) ^ (Ex(a) % (Ex(b) | lit(16, 3))));
  });
  mb.onRising("p_cmps", clk, [&](ProcBuilder& p) {
    Ex c0 = Ex(a) < Ex(b);
    Ex c1 = Ex(a) <= Ex(b);
    Ex c2 = Ex(a) > Ex(b);
    Ex c3 = Ex(a) >= Ex(b);
    Ex c4 = Ex(sa) < Ex(sb);
    Ex c5 = Ex(sa) >= Ex(sb);
    Ex c6 = Ex(a) == Ex(b);
    Ex c7 = Ex(a) != Ex(b);
    p.assign(cmps, concat(concat(concat(c7, c6), concat(c5, c4)),
                          concat(concat(c3, c2), concat(c1, c0))));
  });
  mb.onRising("p_shifts", clk, [&](ProcBuilder& p) {
    const Ex amt = slice(Ex(b), 3, 0);
    p.assign(shifts, shl(Ex(a), amt) ^ shr(Ex(a), amt) ^ ashr(Ex(sa), amt));
  });
  mb.onRising("p_reds", clk, [&](ProcBuilder& p) {
    p.assign(reds, concat(concat(redand(Ex(a)), redor(Ex(a))),
                          concat(redxor(Ex(a)), bnot(Ex(a)))));
  });
  mb.onRising("p_structural", clk, [&](ProcBuilder& p) {
    p.assign(structural,
             concat(slice(Ex(a), 11, 4), sext(slice(Ex(sa), 7, 0), 16)));
  });
  mb.onRising("p_case", clk, [&](ProcBuilder& p) {
    p.switch_(Ex(sel4),
              {{{0}, [&] { p.assign(cased, Ex(a) & Ex(b)); }},
               {{1, 2}, [&] { p.assign(cased, sel(Ex(a) < Ex(b), Ex(a), Ex(b))); }}},
              [&] { p.assign(cased, ~Ex(a)); });
  });
  mb.onRising("p_ranged", clk, [&](ProcBuilder& p) {
    p.assignRange(ranged, 7, 0, slice(Ex(a), 15, 8));
    p.assignRange(ranged, 15, 8, slice(Ex(b), 7, 0));
  });
  mb.onRising("p_var", clk, [&](ProcBuilder& p) {
    p.assign(tmp, Ex(a) ^ Ex(b));       // immediate
    p.assign(viaVar, Ex(tmp) + Ex(tmp));  // sees the updated variable
  });
  mb.onRising("p_mem", clk, [&](ProcBuilder& p) {
    p.write(mem, slice(Ex(a), 2, 0), Ex(b));
    p.assign(memOut, at(mem, slice(Ex(b), 2, 0)));
  });
  return elaborate(*mb.finish());
}

template <class P>
class CompiledTypedTest : public ::testing::Test {};
using Policies = ::testing::Types<hdt::FourState, hdt::TwoState>;
TYPED_TEST_SUITE(CompiledTypedTest, Policies);

TYPED_TEST(CompiledTypedTest, OpZooMatchesKernelOnRandomStimuli) {
  using P = TypeParam;
  Design d = opZoo();
  RtlSimulator<P> rtlSim(d, KernelConfig{1000, 0, 1000});
  TlmIpModel<P> tlmSim(d, TlmModelConfig{0, false});
  util::Prng rng(0xD15EA5E);

  for (int c = 0; c < 200; ++c) {
    const std::uint64_t a = rng.bits(16), b = rng.bits(16);
    const std::uint64_t sa = rng.bits(16), sb = rng.bits(16);
    const std::uint64_t s4 = rng.bits(2);
    rtlSim.setStimulus([&](std::uint64_t, RtlSimulator<P>& s) {
      s.setInputByName("a", a);
      s.setInputByName("b", b);
      s.setInputByName("sa", sa);
      s.setInputByName("sb", sb);
      s.setInputByName("sel4", s4);
    });
    rtlSim.runCycles(1);
    for (const auto& n : {"a", "b", "sa", "sb", "sel4"}) {
      tlmSim.setInputByName(n, n == std::string("a")      ? a
                               : n == std::string("b")    ? b
                               : n == std::string("sa")   ? sa
                               : n == std::string("sb")   ? sb
                                                          : s4);
    }
    tlmSim.scheduler();
    for (std::size_t i = 0; i < d.symbols.size(); ++i) {
      const auto id = static_cast<SymbolId>(i);
      if (d.symbols[i].isClock() || d.symbols[i].kind == SymKind::Array) continue;
      EXPECT_TRUE(rtlSim.value(id).identical(tlmSim.value(id)))
          << "cycle " << c << " symbol " << d.symbols[i].name << " rtl="
          << rtlSim.value(id).toString() << " tlm=" << tlmSim.value(id).toString();
    }
  }
}

TEST(Compiled, ConstantsArePooled) {
  Design d = opZoo();
  CompiledDesign code = compileDesign(d);
  // The pool deduplicates (width, value) pairs: far fewer constants than
  // opcodes referencing them.
  std::size_t refs = 0;
  for (const auto& p : code.procs) {
    for (const auto& op : p.ops) {
      if (op.code == OpCode::PushConst) ++refs;
    }
  }
  EXPECT_GT(refs, code.constants.size() / 2);
  EXPECT_FALSE(code.constants.empty());
}

TEST(Compiled, MaxStackIsSufficientBound) {
  Design d = opZoo();
  CompiledDesign code = compileDesign(d);
  for (const auto& p : code.procs) {
    EXPECT_GT(p.maxStack, 0);
    EXPECT_LT(p.maxStack, 64);  // sanity: op zoo is not that deep
  }
}

TEST(ScalarMachine, RejectsWideSymbols) {
  ModuleBuilder mb("wide");
  mb.clock("clk");
  auto w = mb.signal("w", 100);
  (void)w;
  Design d = elaborate(*mb.finish());
  EXPECT_THROW((TlmIpModel<hdt::FourState>(d, TlmModelConfig{0, false})),
               std::invalid_argument);
}

TEST(ScalarMachine, FourStateXPropagation) {
  // X inputs propagate pessimistically, exactly as in the kernel.
  ModuleBuilder mb("xprop");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto y = mb.signal("y", 8);
  auto cmp = mb.signal("cmp", 1);
  mb.onRising("p", clk, [&](ProcBuilder& p) {
    p.assign(y, Ex(a) + 1u);
    p.assign(cmp, Ex(a) == 3u);
  });
  Design d = elaborate(*mb.finish());
  TlmIpModel<hdt::FourState> m(d, TlmModelConfig{0, false});
  m.setInput(d.findSymbol("a"), hdt::LogicVector::allX(8));
  m.scheduler();
  EXPECT_TRUE(m.value(d.findSymbol("y")).anyUnknown());
  EXPECT_TRUE(m.value(d.findSymbol("cmp")).anyUnknown());
}

// Reference Vec-based executor agrees with the scalar machine (both against
// the same compiled program).
TYPED_TEST(CompiledTypedTest, VecExecutorAgreesWithScalarMachine) {
  using P = TypeParam;
  Design d = opZoo();
  CompiledDesign code = compileDesign(d);
  ir::ValueStore<P> store(d);
  CompiledExecutor<P> vecExec(d, code, store);
  TlmIpModel<P> scalarModel(d, TlmModelConfig{0, false});

  util::Prng rng(42);
  const std::uint64_t a = rng.bits(16), b = rng.bits(16);
  // Drive the same inputs into both.
  store.set(d.findSymbol("a"), P::Vec::fromUint(16, a));
  store.set(d.findSymbol("b"), P::Vec::fromUint(16, b));
  scalarModel.setInputByName("a", a);
  scalarModel.setInputByName("b", b);

  // Run one representative process through the Vec executor manually.
  int procIdx = -1;
  for (std::size_t i = 0; i < d.processes.size(); ++i) {
    if (d.processes[i].name == "p_arith") procIdx = static_cast<int>(i);
  }
  ASSERT_GE(procIdx, 0);
  std::vector<ir::SignalWrite<P>> nba;
  vecExec.run(procIdx, nba);
  ASSERT_EQ(1u, nba.size());

  scalarModel.scheduler();
  EXPECT_EQ(nba[0].value.toUint(), scalarModel.valueUintByName("arith"));
}

}  // namespace
}  // namespace xlv::abstraction
