// Native-codegen backend conformance at the model level: the emitted +
// system-compiled translation unit (abstraction/emit_native.h) must be a
// bit-exact replacement for TlmIpModel. Pinned properties:
//
//   * lock-step equivalence — every symbol, both planes, every cycle, for
//     both value policies, on designs exercising arrays, division-by-zero
//     unknowns, dual clocks and sensor-augmented IPs;
//   * full-state equivalence — the native xlvn_save word image equals
//     snapshotToWords(interpreter snapshot) exactly, so checkpoints are
//     interchangeable between engines;
//   * cross-engine restore — an interpreter snapshot loads into a native
//     session (and vice versa) and the tails stay identical;
//   * mutant phases — activating min/max/delta mutants produces the same
//     sensor observations on both engines;
//   * caching — a second getNativeLibrary call for the same layout is a
//     cache hit, not a recompile.
//
// Every test skips (visibly) when no system C++ compiler is present; the
// interpreter remains the reference in that configuration.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "abstraction/emit_native.h"
#include "abstraction/native_backend.h"
#include "abstraction/tlm_model.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "mutation/adam.h"
#include "sta/sta.h"

namespace xlv::abstraction {
namespace {

using namespace xlv::ir;
using insertion::InsertionConfig;
using insertion::SensorKind;
using mutation::MutantKind;

#define XLV_REQUIRE_TOOLCHAIN()                                              \
  do {                                                                       \
    if (!nativeToolchainAvailable()) {                                       \
      GTEST_SKIP() << "no system C++ compiler; native backend unavailable";  \
    }                                                                        \
  } while (0)

/// Arrays, a divide-by-zero path (live unknown plane in 4-state), shifts and
/// comparisons — a cross-section of the opcode set.
Design stressDesign() {
  ModuleBuilder mb("stress");
  auto clk = mb.clock("clk");
  auto en = mb.in("en", 1);
  auto d = mb.in("d", 8);
  auto acc = mb.signal("acc", 16);
  auto idx = mb.signal("idx", 3);
  auto regs = mb.array("regs", 16, 8);
  auto rom = mb.array("rom", 8, 4);
  mb.initArray(rom, {0x11, 0x22, 0x33, 0x44});
  auto quot = mb.signal("quot", 8);
  auto cmp = mb.signal("cmp", 1);
  auto y = mb.out("y", 16);

  mb.onRising("accumulate", clk, [&](ProcBuilder& p) {
    p.if_(Ex(en) == 1u, [&] {
      p.assign(acc, Ex(acc) + zext(Ex(d), 16));
      p.write(regs, Ex(idx), Ex(acc));
      p.assign(idx, Ex(idx) + 1u);
    });
  });
  mb.comb("divide", [&](ProcBuilder& p) { p.assign(quot, Ex(d) / (Ex(d) & lit(8, 7))); });
  mb.comb("compare", [&](ProcBuilder& p) { p.assign(cmp, Ex(acc) > zext(Ex(d), 16)); });
  mb.comb("output", [&](ProcBuilder& p) {
    p.assign(y, Ex(acc) ^ zext(at(regs, Ex(idx)), 16) ^ zext(Ex(quot), 16) ^
                    zext(at(rom, Ex(idx) & lit(3, 3)), 16) ^ zext(Ex(cmp), 16));
  });
  return elaborate(*mb.finish());
}

std::uint64_t stimulus(std::uint64_t c, const std::string& name) {
  if (name == "en") return (c % 3) != 0 ? 1 : 0;
  if (name == "recovery_en") return 1;
  return (c * 37 + 11) & 0xff;
}

template <class P>
constexpr bool kFourState = std::is_same_v<P, hdt::FourState>;

/// Drive interpreter and native sessions with identical stimulus and demand
/// bit-exact values (both planes) for every non-clock scalar symbol, plus
/// full-state word-image equality, every cycle.
template <class P>
void expectLockStep(const TlmModelLayoutPtr& layout, int cycles, int activeMutant = -1) {
  const NativeLibraryPtr lib = getNativeLibrary(*layout, kFourState<P>);
  ASSERT_NE(nullptr, lib) << "native build failed despite available toolchain";

  TlmIpModel<P> interp(layout);
  NativeSession native(lib);
  if (activeMutant >= 0) {
    interp.activateMutant(activeMutant);
    native.activateMutant(activeMutant);
  }
  const Design& d = layout->design;
  std::vector<std::uint64_t> nativeWords, interpWords;
  for (int c = 0; c < cycles; ++c) {
    for (SymbolId in : d.inputs) {
      const std::uint64_t v = stimulus(static_cast<std::uint64_t>(c), d.symbol(in).name);
      interp.setInputUint(in, v);
      native.setInputUint(in, v);
    }
    interp.scheduler();
    native.scheduler();
    ASSERT_EQ(interp.cycle(), native.cycle());
    for (std::size_t i = 0; i < d.symbols.size(); ++i) {
      const auto id = static_cast<SymbolId>(i);
      if (d.symbols[i].kind == SymKind::Array) continue;
      const SV iv = interp.rawValue(id);
      const SV nv = native.rawValue(id);
      ASSERT_TRUE(iv.val == nv.val && iv.unk == nv.unk)
          << "cycle " << c << " symbol '" << d.symbols[i].name << "': interp=("
          << iv.val << "," << iv.unk << ") native=(" << nv.val << "," << nv.unk << ")";
      ASSERT_EQ(interp.valueUint(id), native.valueUint(id));
    }
    // The strongest check: the two engines' serialized state — values,
    // arrays, dirty flags, cycle counter — is the same word image.
    nativeWords.clear();
    native.saveWords(nativeWords);
    interpWords.clear();
    snapshotToWords(*layout, interp.snapshot(), interpWords);
    ASSERT_EQ(interpWords, nativeWords) << "state image diverged at cycle " << c;
  }
}

template <class P>
class NativeEmitTypedTest : public ::testing::Test {};
using Policies = ::testing::Types<hdt::FourState, hdt::TwoState>;
TYPED_TEST_SUITE(NativeEmitTypedTest, Policies);

TYPED_TEST(NativeEmitTypedTest, StressDesignLockStep) {
  XLV_REQUIRE_TOOLCHAIN();
  expectLockStep<TypeParam>(buildTlmModelLayout(stressDesign(), TlmModelConfig{0, false}),
                            40);
}

struct AugmentedFixture {
  Design design;
  std::vector<insertion::InsertedSensor> sensors;

  explicit AugmentedFixture(SensorKind kind) {
    ModuleBuilder mb("dut");
    auto clk = mb.clock("clk");
    auto din = mb.in("din", 8);
    auto dout = mb.out("dout", 8);
    auto r = mb.signal("r", 8);
    auto r2 = mb.signal("r2", 8);
    mb.onRising("ff", clk, [&](ProcBuilder& p) {
      p.assign(r, Ex(din) ^ Ex(r));
      p.assign(r2, Ex(r) * Ex(din));
    });
    mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, Ex(r) ^ Ex(r2)); });
    auto ip = mb.finish();

    sta::StaConfig staCfg;
    staCfg.clockPeriodPs = 1200;
    staCfg.thresholdFraction = 1.0;
    auto report = sta::analyze(elaborate(*ip), staCfg);
    InsertionConfig icfg;
    icfg.kind = kind;
    auto ins = insertSensors(*ip, report, icfg);
    design = elaborate(*ins.augmented);
    sensors = ins.sensors;
  }
};

TYPED_TEST(NativeEmitTypedTest, RazorAugmentedWithMutantsLockStep) {
  XLV_REQUIRE_TOOLCHAIN();
  AugmentedFixture fx(SensorKind::Razor);
  auto injected = mutation::injectMutants(
      fx.design, {{"r", MutantKind::MinDelay, 0}, {"r", MutantKind::MaxDelay, 0}});
  const auto layout =
      buildTlmModelLayout(injected.design, TlmModelConfig{0, false}, injected.mutants);
  expectLockStep<TypeParam>(layout, 20, -1);
  expectLockStep<TypeParam>(layout, 20, 0);
  expectLockStep<TypeParam>(layout, 20, 1);
}

TYPED_TEST(NativeEmitTypedTest, CounterAugmentedDualClockDeltaMutantLockStep) {
  XLV_REQUIRE_TOOLCHAIN();
  AugmentedFixture fx(SensorKind::Counter);
  auto injected =
      mutation::injectMutants(fx.design, {{"r", MutantKind::DeltaDelay, 3}});
  const auto layout =
      buildTlmModelLayout(injected.design, TlmModelConfig{10, false}, injected.mutants);
  expectLockStep<TypeParam>(layout, 12, -1);
  expectLockStep<TypeParam>(layout, 12, 0);
}

// An interpreter checkpoint loads into a native session (and the reverse)
// and the continued runs stay bit-identical — the property the campaign's
// shared checkpoint recordings rely on.
TYPED_TEST(NativeEmitTypedTest, CrossEngineSnapshotHandoff) {
  using P = TypeParam;
  XLV_REQUIRE_TOOLCHAIN();
  const Design d = stressDesign();
  const auto layout = buildTlmModelLayout(d, TlmModelConfig{0, false});
  const NativeLibraryPtr lib = getNativeLibrary(*layout, kFourState<P>);
  ASSERT_NE(nullptr, lib);
  ASSERT_EQ(nativeStateWords(*layout), lib->stateWords);

  auto drive = [&](auto& session, std::uint64_t c) {
    for (SymbolId in : d.inputs) {
      session.setInputUint(in, stimulus(c, d.symbol(in).name));
    }
    session.scheduler();
  };

  // Interpreter runs 9 cycles; its snapshot seeds a native session.
  TlmIpModel<P> interp(layout);
  for (std::uint64_t c = 0; c < 9; ++c) drive(interp, c);
  std::vector<std::uint64_t> words;
  snapshotToWords(*layout, interp.snapshot(), words);
  NativeSession native(lib);
  native.loadWords(words);
  EXPECT_EQ(interp.cycle(), native.cycle());

  // Both continue; every symbol matches every cycle.
  for (std::uint64_t c = 9; c < 25; ++c) {
    drive(interp, c);
    drive(native, c);
    for (std::size_t i = 0; i < d.symbols.size(); ++i) {
      const auto id = static_cast<SymbolId>(i);
      if (d.symbols[i].kind == SymKind::Array) continue;
      const SV iv = interp.rawValue(id);
      const SV nv = native.rawValue(id);
      ASSERT_TRUE(iv.val == nv.val && iv.unk == nv.unk)
          << "cycle " << c << " symbol '" << d.symbols[i].name << "'";
    }
  }

  // Reverse handoff: native words restore a fresh interpreter session.
  words.clear();
  native.saveWords(words);
  TlmIpModel<P> resumed(layout);
  resumed.restore(wordsToSnapshot(*layout, words));
  EXPECT_EQ(native.cycle(), resumed.cycle());
  drive(resumed, 25);
  drive(native, 25);
  const SymbolId y = d.findSymbol("y");
  EXPECT_EQ(native.valueUint(y), resumed.valueUint(y));
}

TEST(NativeEmit, WordCodecRejectsShapeMismatch) {
  const Design d = stressDesign();
  const auto layout = buildTlmModelLayout(d, TlmModelConfig{0, false});
  std::vector<std::uint64_t> words(nativeStateWords(*layout) + 1, 0);
  EXPECT_THROW(wordsToSnapshot(*layout, words), std::invalid_argument);
}

TEST(NativeEmit, SecondLookupIsACacheHit) {
  XLV_REQUIRE_TOOLCHAIN();
  const auto layout = buildTlmModelLayout(stressDesign(), TlmModelConfig{0, false});
  clearNativeLibraryCache();
  NativeUseStats first, second;
  const NativeLibraryPtr a = getNativeLibrary(*layout, true, &first);
  const NativeLibraryPtr b = getNativeLibrary(*layout, true, &second);
  ASSERT_NE(nullptr, a);
  EXPECT_EQ(a.get(), b.get());
  // First call compiled (or pulled the .so from a warm artifact store);
  // the second must be served from the in-process cache.
  EXPECT_EQ(1, first.compiles + first.cacheHits);
  EXPECT_EQ(0, second.compiles);
  EXPECT_EQ(1, second.cacheHits);
}

TEST(NativeEmit, EmittedSourceIsDeterministic) {
  const auto layout = buildTlmModelLayout(stressDesign(), TlmModelConfig{0, false});
  EXPECT_EQ(emitNativeCpp(*layout, true, "id"), emitNativeCpp(*layout, true, "id"));
  EXPECT_NE(emitNativeCpp(*layout, true, "id"), emitNativeCpp(*layout, false, "id"));
}

}  // namespace
}  // namespace xlv::abstraction
