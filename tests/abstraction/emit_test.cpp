// Code emitters: VHDL and SystemC-TLM text generation.
#include <gtest/gtest.h>

#include "abstraction/abstractor.h"
#include "abstraction/emit_vhdl.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "mutation/adam.h"
#include "sta/sta.h"

namespace xlv::abstraction {
namespace {

using namespace xlv::ir;

std::shared_ptr<Module> smallIp() {
  ModuleBuilder mb("acc");
  auto clk = mb.clock("clk");
  auto rst = mb.in("rst", 1);
  auto din = mb.in("din", 8);
  auto acc = mb.out("acc", 16);
  mb.onRising("p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u, [&] { p.assign(acc, lit(16, 0)); },
          [&] { p.assign(acc, Ex(acc) + zext(Ex(din), 16)); });
  });
  return mb.finish();
}

TEST(EmitVhdl, ContainsEntityArchitectureProcess) {
  const std::string v = emitVhdl(*smallIp());
  EXPECT_NE(std::string::npos, v.find("entity acc is"));
  EXPECT_NE(std::string::npos, v.find("architecture rtl of acc"));
  EXPECT_NE(std::string::npos, v.find("rising_edge(clk)"));
  EXPECT_NE(std::string::npos, v.find("acc <= "));
  EXPECT_NE(std::string::npos, v.find("port ("));
}

TEST(EmitVhdl, EmitsChildEntitiesOnce) {
  auto ip = smallIp();
  sta::StaConfig cfg;
  cfg.clockPeriodPs = 1000;
  cfg.thresholdFraction = 1.0;
  auto report = sta::analyze(elaborate(*ip), cfg);
  insertion::InsertionConfig icfg;
  auto res = insertion::insertSensors(*ip, report, icfg);
  const std::string v = emitVhdl(*res.augmented);
  // The Razor entity appears exactly once even with many instances.
  std::size_t count = 0;
  for (std::size_t pos = v.find("entity razor_w16 is"); pos != std::string::npos;
       pos = v.find("entity razor_w16 is", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(1u, count);
  EXPECT_NE(std::string::npos, v.find("port map"));
}

TEST(EmitVhdl, AugmentedIpHasMoreLines) {
  auto ip = smallIp();
  const int base = countLines(emitVhdl(*ip));
  sta::StaConfig cfg;
  cfg.clockPeriodPs = 1000;
  cfg.thresholdFraction = 1.0;
  auto report = sta::analyze(elaborate(*ip), cfg);
  auto res = insertion::insertSensors(*ip, report, insertion::InsertionConfig{});
  const int aug = countLines(emitVhdl(*res.augmented));
  EXPECT_GT(aug, base);
}

TEST(EmitCpp, ContainsSchedulerAndProcesses) {
  Design d = elaborate(*smallIp());
  EmitCppOptions opts;
  const std::string c = emitCpp(d, opts);
  EXPECT_NE(std::string::npos, c.find("void scheduler()"));
  EXPECT_NE(std::string::npos, c.find("proc_p()"));
  EXPECT_NE(std::string::npos, c.find("b_transport"));
  EXPECT_NE(std::string::npos, c.find("hdt::LogicVector"));
}

TEST(EmitCpp, TwoStateOptionSwitchesTypes) {
  Design d = elaborate(*smallIp());
  EmitCppOptions opts;
  opts.twoStateTypes = true;
  const std::string c = emitCpp(d, opts);
  EXPECT_NE(std::string::npos, c.find("hdt::BitVector"));
  EXPECT_EQ(std::string::npos, c.find("hdt::LogicVector"));
}

TEST(EmitCpp, DualClockEmitsHfLoop) {
  ModuleBuilder mb("dual");
  auto clk = mb.clock("clk");
  auto hclk = mb.clock("hclk", ClockRole::HighFreq);
  auto t = mb.signal("t", 8);
  mb.onRising("cnt", hclk, [&](ProcBuilder& p) { p.assign(t, Ex(t) + 1u); });
  (void)clk;
  Design d = elaborate(*mb.finish());
  EmitCppOptions opts;
  opts.hfRatio = 10;
  const std::string c = emitCpp(d, opts);
  EXPECT_NE(std::string::npos, c.find("for (int hfclk = 1; hfclk <= 10"));
}

TEST(EmitCpp, InjectedEmitsApplyMutantFunctions) {
  Design d = elaborate(*smallIp());
  auto injected = mutation::injectMutants(d, {{"acc", mutation::MutantKind::MinDelay, 0}});
  EmitCppOptions opts;
  const std::string c = emitCppInjected(injected, opts);
  EXPECT_NE(std::string::npos, c.find("apply_mutant_acc_0"));
  EXPECT_NE(std::string::npos, c.find("MIN_DELAY"));
  EXPECT_NE(std::string::npos, c.find("adam_tmp_acc"));
  // The injected model has more lines than the clean one (Table 5 vs 3).
  EXPECT_GT(countLines(c), countLines(emitCpp(d, opts)));
}

TEST(Abstractor, ArtifactsRecordLinesAndTime) {
  Design d = elaborate(*smallIp());
  AbstractionOptions opts;
  auto a = abstractDesign(d, opts);
  EXPECT_GT(a.sourceLines, 20);
  EXPECT_GE(a.abstractionSeconds, 0.0);
  EXPECT_EQ(a.sourceLines, countLines(a.source));
}

}  // namespace
}  // namespace xlv::abstraction
