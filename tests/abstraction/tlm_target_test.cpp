// TlmIpTarget: the memory-mapped TLM-2.0 wrapper around abstracted models —
// LT (b_transport), AT (nb_transport early completion) and debug access.
#include <gtest/gtest.h>

#include "abstraction/abstractor.h"
#include "ir/builder.h"
#include "ir/elaborate.h"

namespace xlv::abstraction {
namespace {

using namespace xlv::ir;

struct TargetRig {
  Design d;
  std::unique_ptr<TlmIpModel<hdt::FourState>> model;
  std::unique_ptr<TlmIpTarget<hdt::FourState>> target;
  tlm::InitiatorSocket bus;

  TargetRig() {
    ModuleBuilder mb("ctr");
    auto clk = mb.clock("clk");
    auto en = mb.in("en", 1);
    auto q = mb.out("q", 16);
    mb.onRising("count", clk, [&](ProcBuilder& p) {
      p.if_(Ex(en) == 1u, [&] { p.assign(q, Ex(q) + 1u); });
    });
    d = elaborate(*mb.finish());
    model = std::make_unique<TlmIpModel<hdt::FourState>>(d, TlmModelConfig{0, false});
    target = std::make_unique<TlmIpTarget<hdt::FourState>>(*model, tlm::Time(1000));
    bus.bind(target->socket());
  }

  std::uint32_t read32(std::uint64_t addr) {
    tlm::GenericPayload p;
    tlm::Time t;
    p.setRead(addr, 4);
    bus.b_transport(p, t);
    EXPECT_TRUE(p.ok());
    return p.dataWord();
  }

  void write32(std::uint64_t addr, std::uint32_t v) {
    tlm::GenericPayload p;
    tlm::Time t;
    p.setWriteWord(addr, v);
    bus.b_transport(p, t);
    EXPECT_TRUE(p.ok());
  }
};

TEST(TlmIpTarget, CtrlRunsCyclesAndOutputsReadBack) {
  TargetRig rig;
  rig.write32(rig.target->inputAddress(0), 1);  // en = 1
  rig.write32(TlmIpMap::kCtrl, 10);             // 10 cycles
  EXPECT_EQ(10u, rig.read32(rig.target->outputAddress(0)));
  EXPECT_EQ(10u, rig.read32(TlmIpMap::kCycleCount));
}

TEST(TlmIpTarget, LatencyAccumulatesPerCycle) {
  TargetRig rig;
  tlm::GenericPayload p;
  tlm::Time t;
  p.setWriteWord(TlmIpMap::kCtrl, 7);
  rig.bus.b_transport(p, t);
  EXPECT_EQ(7u * 1000u, t.ps());  // one cycle latency per transaction cycle
}

TEST(TlmIpTarget, BadAddressesReportErrors) {
  TargetRig rig;
  tlm::GenericPayload p;
  tlm::Time t;
  p.setWriteWord(TlmIpMap::kInputBase + 4 * 100, 1);  // no 101st input
  rig.bus.b_transport(p, t);
  EXPECT_EQ(tlm::Response::AddressError, p.response);
  p.setRead(TlmIpMap::kOutputBase + 4 * 100, 4);
  rig.bus.b_transport(p, t);
  EXPECT_EQ(tlm::Response::AddressError, p.response);
}

TEST(TlmIpTarget, NbTransportEarlyCompletion) {
  TargetRig rig;
  rig.write32(rig.target->inputAddress(0), 1);
  tlm::GenericPayload p;
  p.setWriteWord(TlmIpMap::kCtrl, 5);
  tlm::Phase phase = tlm::Phase::BeginReq;
  tlm::Time t;
  EXPECT_EQ(tlm::SyncEnum::Completed, rig.bus.nb_transport_fw(p, phase, t));
  EXPECT_EQ(tlm::Phase::BeginResp, phase);
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(5u, rig.read32(rig.target->outputAddress(0)));
  // Wrong starting phase is rejected.
  phase = tlm::Phase::EndResp;
  EXPECT_EQ(tlm::SyncEnum::Completed, rig.bus.nb_transport_fw(p, phase, t));
  EXPECT_EQ(tlm::Response::GenericError, p.response);
}

TEST(TlmIpTarget, DebugAccessHasNoTimingSideEffect) {
  TargetRig rig;
  rig.write32(rig.target->inputAddress(0), 1);
  rig.write32(TlmIpMap::kCtrl, 3);
  tlm::GenericPayload p;
  p.setRead(rig.target->outputAddress(0), 4);
  EXPECT_EQ(4u, rig.target->transport_dbg(p));
  EXPECT_EQ(3u, p.dataWord());
  EXPECT_EQ(3u, rig.read32(TlmIpMap::kCycleCount));  // no extra cycles ran
}

}  // namespace
}  // namespace xlv::abstraction
