// TlmIpModel: cycle equivalence against the event-driven RTL kernel (the
// flow's invariant 1), mutant phase semantics, and the Section 8.5
// cross-check (RTL transport delays vs TLM mutants produce identical sensor
// observations).
#include <gtest/gtest.h>

#include "abstraction/tlm_model.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"
#include "sta/sta.h"

namespace xlv::abstraction {
namespace {

using namespace xlv::ir;
using insertion::InsertionConfig;
using insertion::SensorKind;
using mutation::MutantKind;
using rtl::KernelConfig;
using rtl::RtlSimulator;

constexpr std::uint64_t kPeriod = 1200;
constexpr int kRatio = 10;
constexpr std::uint64_t kTick = (kPeriod / 2) / (kRatio + 1);

/// Drive both engines with the same stimulus and compare every non-clock
/// symbol after every cycle.
template <class P>
void expectCycleEquivalence(const Design& d, int hfRatio, int cycles,
                            const std::function<std::uint64_t(std::uint64_t, const std::string&)>&
                                stimulusFor) {
  RtlSimulator<P> rtlSim(d, KernelConfig{kPeriod, hfRatio, 1000});
  TlmIpModel<P> tlmSim(d, TlmModelConfig{hfRatio, false});

  std::vector<std::string> inputNames;
  for (SymbolId in : d.inputs) inputNames.push_back(d.symbol(in).name);

  rtlSim.setStimulus([&](std::uint64_t c, RtlSimulator<P>& s) {
    for (const auto& n : inputNames) s.setInputByName(n, stimulusFor(c, n));
  });

  for (int c = 0; c < cycles; ++c) {
    rtlSim.runCycles(1);
    for (const auto& n : inputNames) {
      tlmSim.setInputByName(n, stimulusFor(static_cast<std::uint64_t>(c), n));
    }
    tlmSim.scheduler();
    for (std::size_t i = 0; i < d.symbols.size(); ++i) {
      const auto id = static_cast<SymbolId>(i);
      if (d.symbols[i].isClock() || d.symbols[i].kind == SymKind::Array) continue;
      EXPECT_TRUE(rtlSim.value(id).identical(tlmSim.value(id)))
          << "cycle " << c << " symbol '" << d.symbols[i].name << "': rtl="
          << rtlSim.value(id).toString() << " tlm=" << tlmSim.value(id).toString();
    }
  }
}

Design pipelineDesign() {
  ModuleBuilder mb("pipe");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 8);
  auto b = mb.in("b", 8);
  auto s1 = mb.signal("s1", 8);
  auto s2 = mb.signal("s2", 8);
  auto w = mb.signal("w", 8);
  auto y = mb.out("y", 8);
  mb.onRising("st1", clk, [&](ProcBuilder& p) { p.assign(s1, Ex(a) * Ex(b)); });
  mb.onRising("st2", clk, [&](ProcBuilder& p) { p.assign(s2, Ex(s1) + Ex(w)); });
  mb.comb("c1", [&](ProcBuilder& p) { p.assign(w, Ex(a) ^ Ex(b)); });
  mb.comb("c2", [&](ProcBuilder& p) { p.assign(y, Ex(s2) + 1u); });
  return elaborate(*mb.finish());
}

template <class P>
class TlmTypedTest : public ::testing::Test {};
using Policies = ::testing::Types<hdt::FourState, hdt::TwoState>;
TYPED_TEST_SUITE(TlmTypedTest, Policies);

TYPED_TEST(TlmTypedTest, PipelineCycleEquivalence) {
  expectCycleEquivalence<TypeParam>(pipelineDesign(), 0, 25,
                                    [](std::uint64_t c, const std::string& n) {
                                      return (n == "a" ? 3 * c + 1 : 5 * c + 2) & 0xFF;
                                    });
}

TYPED_TEST(TlmTypedTest, FsmCycleEquivalence) {
  ModuleBuilder mb("fsm");
  auto clk = mb.clock("clk");
  auto go = mb.in("go", 1);
  auto st = mb.signal("st", 2);
  auto y = mb.out("y", 4);
  mb.onRising("next", clk, [&](ProcBuilder& p) {
    p.switch_(Ex(st),
              {{{0}, [&] { p.if_(Ex(go) == 1u, [&] { p.assign(st, lit(2, 1)); }); }},
               {{1}, [&] { p.assign(st, lit(2, 2)); }},
               {{2}, [&] { p.assign(st, lit(2, 3)); }}},
              [&] { p.assign(st, lit(2, 0)); });
  });
  mb.comb("out", [&](ProcBuilder& p) { p.assign(y, shl(lit(4, 1), Ex(st))); });
  expectCycleEquivalence<TypeParam>(elaborate(*mb.finish()), 0, 20,
                                    [](std::uint64_t c, const std::string&) {
                                      return (c % 3) == 0 ? 1u : 0u;
                                    });
}

TYPED_TEST(TlmTypedTest, DualClockCycleEquivalence) {
  ModuleBuilder mb("dual");
  auto clk = mb.clock("clk");
  auto hclk = mb.clock("hclk", ClockRole::HighFreq);
  auto d_in = mb.in("d", 8);
  auto r = mb.signal("r", 8);
  auto ticks = mb.signal("ticks", 16);
  auto y = mb.out("y", 16);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, d_in); });
  mb.onRising("cnt", hclk, [&](ProcBuilder& p) { p.assign(ticks, Ex(ticks) + 1u); });
  mb.comb("c", [&](ProcBuilder& p) { p.assign(y, Ex(ticks) + zext(Ex(r), 16)); });
  expectCycleEquivalence<TypeParam>(elaborate(*mb.finish()), kRatio, 15,
                                    [](std::uint64_t c, const std::string&) { return c & 0xFF; });
}

// Equivalence holds for the sensor-augmented IPs too — the heart of the
// "sensor-aware abstraction preserves sensor behaviour" claim (Section 5.2).
struct AugmentedFixture {
  Design design;
  std::vector<insertion::InsertedSensor> sensors;

  explicit AugmentedFixture(SensorKind kind) {
    ModuleBuilder mb("dut");
    auto clk = mb.clock("clk");
    auto din = mb.in("din", 8);
    auto dout = mb.out("dout", 8);
    auto r = mb.signal("r", 8);
    auto r2 = mb.signal("r2", 8);
    mb.onRising("ff", clk, [&](ProcBuilder& p) {
      // XOR-toggle keeps both registers (and their parity) changing every
      // cycle, which the Counter's observation function requires.
      p.assign(r, Ex(din) ^ Ex(r));
      p.assign(r2, Ex(r) * Ex(din));
    });
    mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, Ex(r) ^ Ex(r2)); });
    auto ip = mb.finish();

    sta::StaConfig staCfg;
    staCfg.clockPeriodPs = kPeriod;
    staCfg.thresholdFraction = 1.0;
    auto report = sta::analyze(elaborate(*ip), staCfg);
    InsertionConfig icfg;
    icfg.kind = kind;
    auto ins = insertSensors(*ip, report, icfg);
    design = elaborate(*ins.augmented);
    sensors = ins.sensors;
  }
};

TYPED_TEST(TlmTypedTest, RazorAugmentedCycleEquivalence) {
  AugmentedFixture fx(SensorKind::Razor);
  expectCycleEquivalence<TypeParam>(fx.design, 0, 20,
                                    [](std::uint64_t c, const std::string& n) {
                                      if (n == "recovery_en") return std::uint64_t{1};
                                      return (3 * c + 1) & 0xFF;
                                    });
}

TYPED_TEST(TlmTypedTest, CounterAugmentedCycleEquivalence) {
  AugmentedFixture fx(SensorKind::Counter);
  expectCycleEquivalence<TypeParam>(fx.design, kRatio, 20,
                                    [](std::uint64_t c, const std::string&) {
                                      return (3 * c + 1) & 0xFF;
                                    });
}

// Injected model with no active mutant is cycle-equivalent to the clean one.
TEST(TlmModel, InactiveMutantsPreserveBehaviour) {
  AugmentedFixture fx(SensorKind::Razor);
  auto injected = mutation::injectMutants(
      fx.design, {{"r", MutantKind::MinDelay, 0}, {"r", MutantKind::MaxDelay, 0}});

  TlmIpModel<hdt::FourState> clean(fx.design, TlmModelConfig{0, false});
  TlmIpModel<hdt::FourState> inj(injected, TlmModelConfig{0, false});
  for (int c = 0; c < 25; ++c) {
    for (auto* m : {&clean, &inj}) {
      m->setInputByName("din", (3 * c + 1) & 0xFF);
      m->setInputByName("recovery_en", 1);
      m->scheduler();
    }
    EXPECT_EQ(clean.valueUintByName("dout"), inj.valueUintByName("dout")) << "cycle " << c;
    EXPECT_EQ(1u, inj.valueUintByName("metric_ok")) << "cycle " << c;
  }
}

// Active mutants land in the Razor detection window (Section 6.1).
class RazorMutantP : public ::testing::TestWithParam<MutantKind> {};

TEST_P(RazorMutantP, RazorDetectsMinAndMaxMutants) {
  AugmentedFixture fx(SensorKind::Razor);
  // Locate the sensor monitoring register r (sensor order follows slack).
  std::string errSignal;
  for (const auto& s : fx.sensors) {
    if (s.endpointName == "r") errSignal = s.errorSignal;
  }
  ASSERT_FALSE(errSignal.empty());
  auto injected = mutation::injectMutants(fx.design, {{"r", GetParam(), 0}});
  TlmIpModel<hdt::FourState> m(injected, TlmModelConfig{0, false});
  m.activateMutant(0);
  bool risen = false;
  for (int c = 0; c < 20; ++c) {
    m.setInputByName("din", 7);  // odd parity: CPS toggles every cycle
    m.setInputByName("recovery_en", 1);
    m.scheduler();
    if (m.valueUintByName(errSignal) == 1) risen = true;
  }
  EXPECT_TRUE(risen);
  EXPECT_EQ(0u, m.valueUintByName("metric_ok"));
}

INSTANTIATE_TEST_SUITE_P(Kinds, RazorMutantP,
                         ::testing::Values(MutantKind::MinDelay, MutantKind::MaxDelay));

// Delta mutants measure exactly their tick on the Counter sensor
// (Section 6.2): the TLM delta-delay of n HF periods reads n on MEAS_VAL.
class DeltaMutantP : public ::testing::TestWithParam<int> {};

TEST_P(DeltaMutantP, CounterMeasuresDeltaMutantTicks) {
  const int n = GetParam();
  AugmentedFixture fx(SensorKind::Counter);
  auto injected = mutation::injectMutants(fx.design, {{"r", MutantKind::DeltaDelay, n}});
  TlmIpModel<hdt::FourState> m(injected, TlmModelConfig{kRatio, false});
  m.activateMutant(0);
  for (int c = 0; c < 8; ++c) {
    m.setInputByName("din", 7);  // odd parity: CPS toggles every cycle
    m.scheduler();
  }
  EXPECT_EQ(static_cast<std::uint64_t>(n), m.valueUintByName("meas_val"));
  const bool risen = m.valueUintByName("metric_ok") == 0;
  EXPECT_EQ(n > 8, risen);  // threshold = 8 HF periods
}

INSTANTIATE_TEST_SUITE_P(Ticks, DeltaMutantP, ::testing::Range(1, kRatio + 1));

// Section 8.5 cross-check: the TLM delta mutant of n HF periods and an RTL
// transport delay landing in the same HF period produce identical sensor
// readings.
class CrossCheckP : public ::testing::TestWithParam<int> {};

TEST_P(CrossCheckP, RtlDelayAndTlmMutantAgree) {
  const int n = GetParam();
  AugmentedFixture fx(SensorKind::Counter);

  // RTL: transport delay of n ticks on r.
  RtlSimulator<hdt::FourState> rtlSim(fx.design, KernelConfig{kPeriod, kRatio, 1000});
  rtlSim.setStimulus([](std::uint64_t, RtlSimulator<hdt::FourState>& s) {
    s.setInputByName("din", 7);
  });
  rtlSim.injectDelay(fx.design.findSymbol("r"), static_cast<std::uint64_t>(n) * kTick);
  rtlSim.runCycles(8);

  // TLM: delta mutant of n HF periods on r.
  auto injected = mutation::injectMutants(fx.design, {{"r", MutantKind::DeltaDelay, n}});
  TlmIpModel<hdt::FourState> tlmSim(injected, TlmModelConfig{kRatio, false});
  tlmSim.activateMutant(0);
  for (int c = 0; c < 8; ++c) {
    tlmSim.setInputByName("din", 7);  // odd parity: CPS toggles every cycle
    tlmSim.scheduler();
  }

  EXPECT_EQ(rtlSim.valueUintByName("meas_val"), tlmSim.valueUintByName("meas_val"));
  EXPECT_EQ(rtlSim.valueUintByName("metric_ok"), tlmSim.valueUintByName("metric_ok"));
}

INSTANTIATE_TEST_SUITE_P(Ticks, CrossCheckP, ::testing::Range(1, kRatio + 1));

TEST(TlmModel, CombinationalCycleRejected) {
  ModuleBuilder mb("loop");
  mb.clock("clk");
  auto x = mb.signal("x", 4);
  auto y = mb.signal("y", 4);
  mb.comb("c1", [&](ProcBuilder& p) { p.assign(x, Ex(y) + 1u); });
  mb.comb("c2", [&](ProcBuilder& p) { p.assign(y, Ex(x) + 1u); });
  Design d = elaborate(*mb.finish());
  EXPECT_THROW((TlmIpModel<hdt::FourState>(d, TlmModelConfig{0, false})),
               std::invalid_argument);
}

TEST(TlmModel, StatsCountTransactions) {
  Design d = pipelineDesign();
  TlmIpModel<hdt::FourState> m(d, TlmModelConfig{0, false});
  m.run(7, [](std::uint64_t c, TlmIpModel<hdt::FourState>& mm) {
    mm.setInputByName("a", c);
    mm.setInputByName("b", c + 1);
  });
  EXPECT_EQ(7u, m.stats().transactions);
  EXPECT_GT(m.stats().processRuns, 0u);
}

TEST(TlmModel, ActivateMutantValidatesId) {
  AugmentedFixture fx(SensorKind::Razor);
  auto injected = mutation::injectMutants(fx.design, {{"r", MutantKind::MinDelay, 0}});
  TlmIpModel<hdt::FourState> m(injected, TlmModelConfig{0, false});
  EXPECT_THROW(m.activateMutant(5), std::out_of_range);
  EXPECT_NO_THROW(m.activateMutant(0));
  EXPECT_NO_THROW(m.activateMutant(-1));
}

}  // namespace
}  // namespace xlv::abstraction
