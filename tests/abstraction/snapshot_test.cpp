// snapshot()/restore() round trips for both simulation backends: the
// state-checkpoint API behind the campaign's golden fast-forward
// (analysis/mutation_analysis.h). Pinned properties:
//
//   * mid-simulation restore equivalence — restoring a cycle-k snapshot
//     into a FRESH session and replaying cycles k..n is bit-identical,
//     symbol for symbol and cycle for cycle, to the straight-line run;
//   * both value policies (2-state and 4-state, including a live unknown
//     plane produced by a division by zero);
//   * array state (a register-file write pattern) is part of the snapshot;
//   * shape-mismatched snapshots are rejected, never half-applied.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "abstraction/tlm_model.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"

namespace xlv::abstraction {
namespace {

using namespace xlv::ir;
using rtl::KernelConfig;
using rtl::RtlSimulator;

/// Counter/accumulator design with a register file and a division (the
/// divide-by-zero path turns the 4-state unknown plane on, so snapshots
/// must carry both planes to round-trip).
Design snapshotDesign() {
  ModuleBuilder mb("snap");
  auto clk = mb.clock("clk");
  auto en = mb.in("en", 1);
  auto d = mb.in("d", 8);
  auto acc = mb.signal("acc", 16);
  auto idx = mb.signal("idx", 3);
  auto regs = mb.array("regs", 16, 8);
  auto quot = mb.signal("quot", 8);
  auto y = mb.out("y", 16);

  mb.onRising("accumulate", clk, [&](ProcBuilder& p) {
    p.if_(Ex(en) == 1u, [&] {
      p.assign(acc, Ex(acc) + zext(Ex(d), 16));
      p.write(regs, Ex(idx), Ex(acc));
      p.assign(idx, Ex(idx) + 1u);
    });
  });
  // d / (d & 7): divides by zero whenever the low bits of d are zero —
  // 4-state yields all-X, 2-state scrubs to 0.
  mb.comb("divide", [&](ProcBuilder& p) { p.assign(quot, Ex(d) / (Ex(d) & lit(8, 7))); });
  mb.comb("output", [&](ProcBuilder& p) {
    p.assign(y, Ex(acc) ^ zext(at(regs, Ex(idx)), 16) ^ zext(Ex(quot), 16));
  });
  return elaborate(*mb.finish());
}

std::uint64_t stimulus(std::uint64_t c, const std::string& name) {
  if (name == "en") return (c % 3) != 0 ? 1 : 0;
  return (c * 37 + 11) & 0xff;
}

template <class P>
void driveTlm(TlmIpModel<P>& m, const Design& d, std::uint64_t c) {
  for (SymbolId in : d.inputs) m.setInputByName(d.symbol(in).name, stimulus(c, d.symbol(in).name));
  m.scheduler();
}

template <class P>
class SnapshotTypedTest : public ::testing::Test {};
using Policies = ::testing::Types<hdt::FourState, hdt::TwoState>;
TYPED_TEST_SUITE(SnapshotTypedTest, Policies);

TYPED_TEST(SnapshotTypedTest, MidSimulationRestoreEquality) {
  using P = TypeParam;
  const Design d = snapshotDesign();
  const TlmModelLayoutPtr layout = buildTlmModelLayout(d, TlmModelConfig{0, false});

  constexpr std::uint64_t kSnapAt = 7, kTotal = 25;
  TlmIpModel<P> straight(layout);
  TlmModelSnapshot snap;
  // Straight-line run, snapshot at the cycle-kSnapAt boundary, recording
  // every symbol's value each cycle afterwards.
  std::vector<std::vector<std::string>> tail;
  for (std::uint64_t c = 0; c < kTotal; ++c) {
    if (c == kSnapAt) snap = straight.snapshot();
    driveTlm(straight, d, c);
    if (c >= kSnapAt) {
      std::vector<std::string> row;
      for (std::size_t i = 0; i < d.symbols.size(); ++i) {
        if (d.symbols[i].kind == SymKind::Array) continue;
        row.push_back(straight.value(static_cast<SymbolId>(i)).toString());
      }
      tail.push_back(std::move(row));
    }
  }

  // Fresh session, restore, replay the tail: every symbol must match every
  // cycle (the unknown plane included — toString renders X/Z).
  TlmIpModel<P> resumed(layout);
  resumed.restore(snap);
  EXPECT_EQ(kSnapAt, resumed.cycle());
  for (std::uint64_t c = kSnapAt; c < kTotal; ++c) {
    driveTlm(resumed, d, c);
    std::size_t col = 0;
    for (std::size_t i = 0; i < d.symbols.size(); ++i) {
      if (d.symbols[i].kind == SymKind::Array) continue;
      EXPECT_EQ(tail[c - kSnapAt][col], resumed.value(static_cast<SymbolId>(i)).toString())
          << "cycle " << c << " symbol '" << d.symbols[i].name << "'";
      ++col;
    }
  }
}

TYPED_TEST(SnapshotTypedTest, ArrayStateRoundTrips) {
  using P = TypeParam;
  const Design d = snapshotDesign();
  const TlmModelLayoutPtr layout = buildTlmModelLayout(d, TlmModelConfig{0, false});
  const SymbolId regs = d.findSymbol("regs");
  ASSERT_NE(kNoSymbol, regs);

  TlmIpModel<P> m(layout);
  for (std::uint64_t c = 0; c < 12; ++c) driveTlm(m, d, c);
  const TlmModelSnapshot snap = m.snapshot();

  TlmIpModel<P> fresh(layout);
  fresh.restore(snap);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(m.arrayElem(regs, i).identical(fresh.arrayElem(regs, i)))
        << "register-file slot " << i;
  }
}

TYPED_TEST(SnapshotTypedTest, UnknownPlaneIsCapturedWhenFourState) {
  using P = TypeParam;
  const Design d = snapshotDesign();
  const TlmModelLayoutPtr layout = buildTlmModelLayout(d, TlmModelConfig{0, false});
  TlmIpModel<P> m(layout);
  // d = 8 -> low bits 0 -> division by zero -> X quotient in 4-state.
  m.setInputByName("en", 1);
  m.setInputByName("d", 8);
  m.scheduler();
  const SymbolId quot = d.findSymbol("quot");
  const SV raw = m.rawValue(quot);
  if (std::is_same_v<P, hdt::FourState>) {
    ASSERT_NE(0u, raw.unk) << "test design no longer produces an unknown plane";
  }
  TlmIpModel<P> fresh(layout);
  fresh.restore(m.snapshot());
  EXPECT_EQ(raw.val, fresh.rawValue(quot).val);
  EXPECT_EQ(raw.unk, fresh.rawValue(quot).unk);
}

TYPED_TEST(SnapshotTypedTest, ShapeMismatchIsRejected) {
  using P = TypeParam;
  const Design d = snapshotDesign();
  TlmIpModel<P> m(d, TlmModelConfig{0, false});
  TlmModelSnapshot snap = m.snapshot();
  snap.machine.vals.pop_back();
  EXPECT_THROW(m.restore(snap), std::invalid_argument);
  TlmModelSnapshot snap2 = m.snapshot();
  snap2.dirty.push_back(1);
  EXPECT_THROW(m.restore(snap2), std::invalid_argument);
}

TYPED_TEST(SnapshotTypedTest, RtlSimulatorRestoreEquality) {
  using P = TypeParam;
  const Design d = snapshotDesign();
  constexpr std::uint64_t kPeriod = 1000, kSnapAt = 6, kTotal = 20;

  auto makeSim = [&] {
    auto sim = std::make_unique<RtlSimulator<P>>(d, KernelConfig{kPeriod, 0, 1000});
    sim->setStimulus([&d](std::uint64_t c, RtlSimulator<P>& s) {
      for (SymbolId in : d.inputs) {
        s.setInputByName(d.symbol(in).name, stimulus(c, d.symbol(in).name));
      }
    });
    // A transport delay longer than one period keeps a pending time-wheel
    // event alive across the snapshot boundary — the wheel must round-trip.
    sim->injectDelay(d.findSymbol("acc"), kPeriod + kPeriod / 2);
    return sim;
  };

  auto straight = makeSim();
  straight->runCycles(kSnapAt);
  const rtl::RtlSnapshot<P> snap = straight->snapshot();
  std::vector<std::vector<std::string>> tail;
  for (std::uint64_t c = kSnapAt; c < kTotal; ++c) {
    straight->runCycles(1);
    std::vector<std::string> row;
    for (std::size_t i = 0; i < d.symbols.size(); ++i) {
      if (d.symbols[i].kind == SymKind::Array) continue;
      row.push_back(straight->value(static_cast<SymbolId>(i)).toString());
    }
    tail.push_back(std::move(row));
  }

  auto resumed = makeSim();
  resumed->restore(snap);
  for (std::uint64_t c = kSnapAt; c < kTotal; ++c) {
    resumed->runCycles(1);
    std::size_t col = 0;
    for (std::size_t i = 0; i < d.symbols.size(); ++i) {
      if (d.symbols[i].kind == SymKind::Array) continue;
      EXPECT_EQ(tail[c - kSnapAt][col], resumed->value(static_cast<SymbolId>(i)).toString())
          << "cycle " << c << " symbol '" << d.symbols[i].name << "'";
      ++col;
    }
  }
}

}  // namespace
}  // namespace xlv::abstraction
