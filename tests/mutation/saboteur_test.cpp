// Saboteur insertion: structural corruption stages, activation semantics,
// functional preservation when disabled.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/elaborate.h"
#include "mutation/saboteur.h"
#include "rtl/kernel.h"

namespace xlv::mutation {
namespace {

using namespace xlv::ir;
using rtl::KernelConfig;
using rtl::RtlSimulator;

std::shared_ptr<Module> smallIp() {
  ModuleBuilder mb("ip");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 8);
  auto r = mb.signal("r", 8);
  auto dout = mb.out("dout", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) + Ex(r)); });
  mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, Ex(r) ^ lit(8, 0x0F)); });
  return mb.finish();
}

TEST(Saboteur, AddsEnablePortAndPreWire) {
  auto ip = smallIp();
  auto res = insertSaboteurs(*ip, {{"r", SaboteurKind::BitFlip, 0xFF}});
  ASSERT_EQ(1u, res.saboteurs.size());
  const Module& m = *res.sabotaged;
  EXPECT_NE(kNoSymbol, m.findSymbol("sab_en_0"));
  EXPECT_NE(kNoSymbol, m.findSymbol("r__pre0"));
  EXPECT_EQ(PortDir::In, m.symbol(m.findSymbol("sab_en_0")).dir);
  EXPECT_NO_THROW(elaborate(m));
}

TEST(Saboteur, DisabledPreservesFunctionality) {
  auto ip = smallIp();
  auto res = insertSaboteurs(*ip, {{"r", SaboteurKind::BitFlip, 0xFF}});
  Design clean = elaborate(*ip);
  Design sab = elaborate(*res.sabotaged);

  RtlSimulator<hdt::FourState> a(clean, KernelConfig{1000, 0, 1000});
  RtlSimulator<hdt::FourState> b(sab, KernelConfig{1000, 0, 1000});
  a.setStimulus([](std::uint64_t c, auto& s) { s.setInputByName("din", 3 * c + 1); });
  b.setStimulus([](std::uint64_t c, auto& s) {
    s.setInputByName("din", 3 * c + 1);
    s.setInputByName("sab_en_0", 0);
  });
  for (int c = 0; c < 25; ++c) {
    a.runCycles(1);
    b.runCycles(1);
    EXPECT_EQ(a.valueUintByName("dout"), b.valueUintByName("dout")) << "cycle " << c;
  }
}

class SaboteurKindP : public ::testing::TestWithParam<SaboteurKind> {};

TEST_P(SaboteurKindP, EnabledCorruptsPerKind) {
  auto ip = smallIp();
  auto res = insertSaboteurs(*ip, {{"r", GetParam(), 0x0F}});
  Design sab = elaborate(*res.sabotaged);
  RtlSimulator<hdt::FourState> sim(sab, KernelConfig{1000, 0, 1000});
  sim.setStimulus([](std::uint64_t c, auto& s) {
    s.setInputByName("din", 3 * c + 1);
    s.setInputByName("sab_en_0", 1);
  });
  sim.runCycles(10);
  const auto pre = sim.valueUintByName("r__pre0");
  const auto post = sim.valueUintByName("r");
  switch (GetParam()) {
    case SaboteurKind::StuckAtZero:
      EXPECT_EQ(0u, post);
      break;
    case SaboteurKind::StuckAtOne:
      EXPECT_EQ(0xFFu, post);
      break;
    case SaboteurKind::BitFlip:
      EXPECT_EQ(pre ^ 0x0Fu, post);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SaboteurKindP,
                         ::testing::Values(SaboteurKind::StuckAtZero,
                                           SaboteurKind::StuckAtOne, SaboteurKind::BitFlip));

TEST(Saboteur, MidRunActivationToggles) {
  auto ip = smallIp();
  auto res = insertSaboteurs(*ip, {{"r", SaboteurKind::StuckAtZero, 0}});
  Design sab = elaborate(*res.sabotaged);
  RtlSimulator<hdt::FourState> sim(sab, KernelConfig{1000, 0, 1000});
  sim.setStimulus([](std::uint64_t c, auto& s) {
    s.setInputByName("din", 1);
    s.setInputByName("sab_en_0", (c >= 5 && c < 10) ? 1 : 0);
  });
  sim.runCycles(5);
  EXPECT_NE(0u, sim.valueUintByName("r"));
  sim.runCycles(5);
  EXPECT_EQ(0u, sim.valueUintByName("r"));  // fault window
  sim.runCycles(5);
  EXPECT_NE(0u, sim.valueUintByName("r"));  // recovered
}

TEST(Saboteur, ValidatesTargets) {
  auto ip = smallIp();
  EXPECT_THROW(insertSaboteurs(*ip, {{"nope", SaboteurKind::BitFlip, 1}}),
               std::invalid_argument);
  EXPECT_THROW(insertSaboteurs(*ip, {{"din", SaboteurKind::BitFlip, 1}}),
               std::invalid_argument);  // input port has no driving process
}

TEST(Saboteur, MultipleIndependentSaboteurs) {
  auto ip = smallIp();
  auto res = insertSaboteurs(*ip, {{"r", SaboteurKind::BitFlip, 0x01},
                                   {"dout", SaboteurKind::StuckAtOne, 0}});
  EXPECT_EQ(2u, res.saboteurs.size());
  Design sab = elaborate(*res.sabotaged);
  RtlSimulator<hdt::FourState> sim(sab, KernelConfig{1000, 0, 1000});
  sim.setStimulus([](std::uint64_t c, auto& s) {
    s.setInputByName("din", 2 * c);
    s.setInputByName("sab_en_0", 0);
    s.setInputByName("sab_en_1", 1);  // only the output saboteur fires
  });
  sim.runCycles(6);
  EXPECT_EQ(0xFFu, sim.valueUintByName("dout"));
}

TEST(Saboteur, KindNames) {
  EXPECT_STREQ("stuck-at-0", saboteurKindName(SaboteurKind::StuckAtZero));
  EXPECT_STREQ("stuck-at-1", saboteurKindName(SaboteurKind::StuckAtOne));
  EXPECT_STREQ("bit-flip", saboteurKindName(SaboteurKind::BitFlip));
}

}  // namespace
}  // namespace xlv::mutation
