// ADAM mutant injection: code rewriting, validation, shared tmp variables.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/elaborate.h"
#include "ir/walk.h"
#include "mutation/adam.h"

namespace xlv::mutation {
namespace {

using namespace xlv::ir;

Design simpleDesign() {
  ModuleBuilder mb("m");
  auto clk = mb.clock("clk");
  auto hclk = mb.clock("hclk", ClockRole::HighFreq);
  (void)hclk;
  auto din = mb.in("din", 8);
  auto r = mb.signal("r", 8);
  auto w = mb.signal("w", 8);
  auto y = mb.out("y", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) + Ex(r)); });
  mb.comb("c", [&](ProcBuilder& p) { p.assign(w, Ex(r) + 1u); });
  mb.comb("d", [&](ProcBuilder& p) { p.assign(y, w); });
  return elaborate(*mb.finish());
}

TEST(Adam, RewritesTargetAssignmentToTmp) {
  Design d = simpleDesign();
  auto injected = injectMutants(d, {{"r", MutantKind::MinDelay, 0}});
  ASSERT_EQ(1u, injected.mutants.size());
  const auto& m = injected.mutants[0];
  EXPECT_EQ(d.findSymbol("r"), m.target);
  EXPECT_NE(kNoSymbol, m.tmpVar);
  EXPECT_EQ(SymKind::Variable, injected.design.symbol(m.tmpVar).kind);

  // The driving process no longer writes r; it writes the tmp variable.
  std::set<SymbolId> writes;
  collectWrites(*injected.design.processes[0].body, writes);
  EXPECT_FALSE(writes.count(m.target));
  EXPECT_TRUE(writes.count(m.tmpVar));
  // Original design untouched.
  std::set<SymbolId> origWrites;
  collectWrites(*d.processes[0].body, origWrites);
  EXPECT_TRUE(origWrites.count(d.findSymbol("r")));
}

TEST(Adam, MutantsOnSameTargetShareTmp) {
  Design d = simpleDesign();
  auto injected = injectMutants(d, {{"r", MutantKind::MinDelay, 0},
                                    {"r", MutantKind::MaxDelay, 0},
                                    {"r", MutantKind::DeltaDelay, 3}});
  ASSERT_EQ(3u, injected.mutants.size());
  EXPECT_EQ(injected.mutants[0].tmpVar, injected.mutants[1].tmpVar);
  EXPECT_EQ(injected.mutants[1].tmpVar, injected.mutants[2].tmpVar);
  EXPECT_EQ(1u, injected.targets().size());
}

TEST(Adam, RejectsUnknownSignal) {
  Design d = simpleDesign();
  EXPECT_THROW(injectMutants(d, {{"nope", MutantKind::MinDelay, 0}}), std::invalid_argument);
}

TEST(Adam, RejectsCombinationalTarget) {
  Design d = simpleDesign();
  EXPECT_THROW(injectMutants(d, {{"w", MutantKind::MinDelay, 0}}), std::invalid_argument);
}

TEST(Adam, RejectsDeltaWithoutHfClock) {
  ModuleBuilder mb("nohf");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 8);
  auto r = mb.signal("r", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, din); });
  Design d = elaborate(*mb.finish());
  EXPECT_THROW(injectMutants(d, {{"r", MutantKind::DeltaDelay, 2}}), std::invalid_argument);
  // Min/max are fine without an HF clock.
  EXPECT_NO_THROW(injectMutants(d, {{"r", MutantKind::MinDelay, 0}}));
}

TEST(Adam, RejectsRangeAssignedTarget) {
  ModuleBuilder mb("range");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 4);
  auto r = mb.signal("r", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assignRange(r, 3, 0, din); });
  Design d = elaborate(*mb.finish());
  EXPECT_THROW(injectMutants(d, {{"r", MutantKind::MinDelay, 0}}), std::invalid_argument);
}

TEST(Adam, MutantKindNames) {
  EXPECT_STREQ("min-delay", mutantKindName(MutantKind::MinDelay));
  EXPECT_STREQ("max-delay", mutantKindName(MutantKind::MaxDelay));
  EXPECT_STREQ("delta-delay", mutantKindName(MutantKind::DeltaDelay));
}

TEST(Adam, IdsAreSequential) {
  Design d = simpleDesign();
  auto injected = injectMutants(d, {{"r", MutantKind::MinDelay, 0},
                                    {"r", MutantKind::MaxDelay, 0}});
  EXPECT_EQ(0, injected.mutants[0].id);
  EXPECT_EQ(1, injected.mutants[1].id);
}

}  // namespace
}  // namespace xlv::mutation
