// Razor sensor semantics at RTL, end-to-end through STA + insertion:
// detection window (0, T/2], no false positives, correction tracking.
// RTL delays are injected as transport delays (VHDL `after`), the mechanism
// the paper uses to validate the flow at RTL (Section 8.5).
#include <gtest/gtest.h>

#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"
#include "sta/sta.h"

namespace xlv::sensors {
namespace {

using namespace xlv::ir;
using namespace xlv::insertion;
using rtl::KernelConfig;
using rtl::RtlSimulator;

constexpr std::uint64_t kPeriod = 1000;

struct RazorFixture {
  Design design;
  SymbolId rSym, eSym, qSym, mainFfSym, metricOkSym;

  explicit RazorFixture(double thresholdFraction = 1.0) {
    ModuleBuilder mb("dut");
    auto clk = mb.clock("clk");
    auto din = mb.in("din", 8);
    auto dout = mb.out("dout", 8);
    auto r = mb.signal("r", 8);
    mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) + Ex(r)); });
    mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, r); });
    auto ip = mb.finish();

    sta::StaConfig staCfg;
    staCfg.clockPeriodPs = kPeriod;
    staCfg.thresholdFraction = thresholdFraction;
    auto report = sta::analyze(elaborate(*ip), staCfg);

    InsertionConfig icfg;
    icfg.kind = SensorKind::Razor;
    auto ins = insertSensors(*ip, report, icfg);
    EXPECT_EQ(1u, ins.sensors.size());
    design = elaborate(*ins.augmented);
    rSym = design.findSymbol("r");
    eSym = design.findSymbol("rz_e_0");
    qSym = design.findSymbol("rz_q_0");
    mainFfSym = design.findSymbol("razor0.main_ff");
    metricOkSym = design.findSymbol("metric_ok");
    EXPECT_NE(kNoSymbol, eSym);
    EXPECT_NE(kNoSymbol, mainFfSym);
  }
};

template <class P>
RtlSimulator<P> makeSim(const Design& d) {
  return RtlSimulator<P>(d, KernelConfig{kPeriod, 0, 1000});
}

void driveChanging(std::uint64_t, RtlSimulator<hdt::FourState>& s) {
  s.setInputByName("din", 3);
  s.setInputByName("recovery_en", 1);
}

TEST(Razor, NoFalsePositiveOnTimingClosedDesign) {
  RazorFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus(driveChanging);
  for (int c = 0; c < 20; ++c) {
    sim.runCycles(1);
    EXPECT_EQ(0u, sim.valueUint(fx.eSym)) << "cycle " << c;
    EXPECT_EQ(1u, sim.valueUint(fx.metricOkSym)) << "cycle " << c;
  }
}

// Parameterized over transport delay: delays inside (0, T/2] are detected,
// delays beyond the window are not (paper Section 4.1.1 / Fig. 4b).
class RazorWindowP : public ::testing::TestWithParam<std::pair<std::uint64_t, bool>> {};

TEST_P(RazorWindowP, DetectionWindowIsHalfPeriod) {
  const auto [delayPs, expectDetect] = GetParam();
  RazorFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus(driveChanging);
  sim.injectDelay(fx.rSym, delayPs);
  bool detected = false;
  for (int c = 0; c < 20; ++c) {
    sim.runCycles(1);
    if (sim.valueUint(fx.eSym) == 1) detected = true;
  }
  EXPECT_EQ(expectDetect, detected) << "delay " << delayPs << "ps";
}

INSTANTIATE_TEST_SUITE_P(
    Delays, RazorWindowP,
    ::testing::Values(std::pair<std::uint64_t, bool>{1, true},       // minimum delay
                      std::pair<std::uint64_t, bool>{100, true},     // inside window
                      std::pair<std::uint64_t, bool>{250, true},     // quarter period
                      std::pair<std::uint64_t, bool>{500, true},     // boundary: T/2
                      std::pair<std::uint64_t, bool>{600, false},    // beyond the window
                      std::pair<std::uint64_t, bool>{900, false}));  // far beyond

TEST(Razor, MainFfMissesDelayedValueShadowCatchesIt) {
  RazorFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus(driveChanging);
  sim.injectDelay(fx.rSym, 200);
  sim.runCycles(5);
  // The main FF sampled the stale register value; the register itself holds
  // the fresher one committed 200ps after the edge.
  EXPECT_NE(sim.valueUint(fx.mainFfSym), sim.valueUint(fx.rSym));
}

TEST(Razor, NoTransitionMeansNoDetection) {
  RazorFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  // din = 0: r never changes value, so delayed commits are value-identical
  // and the error can never rise (paper: the testbench must make the
  // monitored value change for the mutant/delay to be observable).
  sim.setStimulus([](std::uint64_t, RtlSimulator<hdt::FourState>& s) {
    s.setInputByName("din", 0);
    s.setInputByName("recovery_en", 1);
  });
  sim.injectDelay(fx.rSym, 300);
  for (int c = 0; c < 10; ++c) {
    sim.runCycles(1);
    EXPECT_EQ(0u, sim.valueUint(fx.eSym));
  }
}

TEST(Razor, CorrectionTracksTrueValueWithOneCycleLag) {
  RazorFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus(driveChanging);
  sim.injectDelay(fx.rSym, 300);
  std::uint64_t prevR = 0;
  sim.runCycles(3);
  prevR = sim.valueUint(fx.rSym);
  for (int c = 0; c < 10; ++c) {
    sim.runCycles(1);
    if (sim.valueUint(fx.eSym) == 1) {
      // Recovery presented the caught (shadow) value on q: it equals the
      // monitored register's previous-cycle value.
      EXPECT_EQ(prevR, sim.valueUint(fx.qSym)) << "cycle " << c;
    }
    prevR = sim.valueUint(fx.rSym);
  }
}

TEST(Razor, MetricOkAggregatesError) {
  RazorFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus(driveChanging);
  sim.injectDelay(fx.rSym, 300);
  sim.runCycles(5);
  EXPECT_EQ(1u, sim.valueUint(fx.eSym));
  EXPECT_EQ(0u, sim.valueUint(fx.metricOkSym));
}

TEST(Razor, ModuleIsWidthParametricAndCached) {
  auto r8 = buildRazor(8);
  auto r8b = buildRazor(8);
  auto r16 = buildRazor(16);
  EXPECT_EQ(r8.get(), r8b.get());
  EXPECT_NE(r8.get(), r16.get());
  EXPECT_EQ(8, r8->symbol(r8->findSymbol(RazorPorts::d)).type.width);
  EXPECT_EQ(16, r16->symbol(r16->findSymbol(RazorPorts::d)).type.width);
}

TEST(Razor, AreaModelScalesWithWidth) {
  EXPECT_GT(razorAreaGates(16), razorAreaGates(8));
  EXPECT_GT(razorAreaGates(8), 0.0);
}

}  // namespace
}  // namespace xlv::sensors
