// Counter-based monitor semantics at RTL through STA + insertion: delay
// measurement in HF periods, threshold comparison, no-transition behaviour.
#include <gtest/gtest.h>

#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"
#include "sta/sta.h"

namespace xlv::sensors {
namespace {

using namespace xlv::ir;
using namespace xlv::insertion;
using rtl::KernelConfig;
using rtl::RtlSimulator;

constexpr std::uint64_t kPeriod = 1200;
constexpr int kRatio = 10;
/// HF tick spacing used by the kernel: (T/2) / (R+1).
constexpr std::uint64_t kTick = (kPeriod / 2) / (kRatio + 1);

struct CounterFixture {
  Design design;
  SymbolId rSym, mvSym, okSym, metricOkSym, measPortSym;

  CounterFixture() {
    ModuleBuilder mb("dut");
    auto clk = mb.clock("clk");
    auto din = mb.in("din", 8);
    auto dout = mb.out("dout", 8);
    auto r = mb.signal("r", 8);
    // XOR-toggle register: with a nonzero din, r's parity flips every cycle,
    // giving the Counter a transition in every observability window.
    mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) ^ Ex(r)); });
    mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, r); });
    auto ip = mb.finish();

    sta::StaConfig staCfg;
    staCfg.clockPeriodPs = kPeriod;
    staCfg.thresholdFraction = 1.0;  // everything critical
    auto report = sta::analyze(elaborate(*ip), staCfg);

    InsertionConfig icfg;
    icfg.kind = SensorKind::Counter;
    auto ins = insertSensors(*ip, report, icfg);
    EXPECT_EQ(1u, ins.sensors.size());
    design = elaborate(*ins.augmented);
    rSym = design.findSymbol("r");
    mvSym = design.findSymbol("mv_0");
    okSym = design.findSymbol("ok_0");
    metricOkSym = design.findSymbol("metric_ok");
    measPortSym = design.findSymbol("meas_val");
    EXPECT_NE(kNoSymbol, mvSym);
    EXPECT_NE(kNoSymbol, design.hfClock);
  }
};

template <class P>
RtlSimulator<P> makeSim(const Design& d) {
  return RtlSimulator<P>(d, KernelConfig{kPeriod, kRatio, 1000});
}

void driveToggle(std::uint64_t, RtlSimulator<hdt::FourState>& s) {
  // din with odd parity: the XOR-toggle register's parity flips every cycle.
  s.setInputByName("din", 1);
}

TEST(CounterMonitor, OnTimeCommitsMeasureZero) {
  CounterFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus(driveToggle);
  for (int c = 0; c < 12; ++c) {
    sim.runCycles(1);
    EXPECT_EQ(0u, sim.valueUint(fx.mvSym)) << "cycle " << c;
    EXPECT_EQ(1u, sim.valueUint(fx.okSym));
    EXPECT_EQ(1u, sim.valueUint(fx.metricOkSym));
  }
}

// The headline property: a transport delay of j HF periods measures exactly
// j (resolution = one HF period, paper Section 4.1.2).
class CounterMeasureP : public ::testing::TestWithParam<int> {};

TEST_P(CounterMeasureP, MeasuresDelayInHfPeriods) {
  const int j = GetParam();
  CounterFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus(driveToggle);
  sim.injectDelay(fx.rSym, static_cast<std::uint64_t>(j) * kTick);
  sim.runCycles(6);
  EXPECT_EQ(static_cast<std::uint64_t>(j), sim.valueUint(fx.mvSym));
  EXPECT_EQ(static_cast<std::uint64_t>(j), sim.valueUint(fx.measPortSym));
}

INSTANTIATE_TEST_SUITE_P(HfPeriods, CounterMeasureP, ::testing::Range(1, kRatio + 1));

TEST(CounterMonitor, ThresholdSeparatesTolerableDelays) {
  // Threshold is 8 HF periods (paper Section 8.5): j=8 -> OK, j=9 -> error.
  {
    CounterFixture fx;
    auto sim = makeSim<hdt::FourState>(fx.design);
    sim.setStimulus(driveToggle);
    sim.injectDelay(fx.rSym, 8 * kTick);
    sim.runCycles(6);
    EXPECT_EQ(8u, sim.valueUint(fx.mvSym));
    EXPECT_EQ(1u, sim.valueUint(fx.okSym));
  }
  {
    CounterFixture fx;
    auto sim = makeSim<hdt::FourState>(fx.design);
    sim.setStimulus(driveToggle);
    sim.injectDelay(fx.rSym, 9 * kTick);
    sim.runCycles(6);
    EXPECT_EQ(9u, sim.valueUint(fx.mvSym));
    EXPECT_EQ(0u, sim.valueUint(fx.okSym));
    EXPECT_EQ(0u, sim.valueUint(fx.metricOkSym));
  }
}

TEST(CounterMonitor, NoTransitionMeansZeroEvenWithDelay) {
  CounterFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus([](std::uint64_t, RtlSimulator<hdt::FourState>& s) {
    s.setInputByName("din", 0);  // r frozen: no transitions to observe
  });
  sim.injectDelay(fx.rSym, 5 * kTick);
  sim.runCycles(8);
  EXPECT_EQ(0u, sim.valueUint(fx.mvSym));
  EXPECT_EQ(1u, sim.valueUint(fx.okSym));
}

TEST(CounterMonitor, MeasurementRearmsEveryCycle) {
  CounterFixture fx;
  auto sim = makeSim<hdt::FourState>(fx.design);
  sim.setStimulus(driveToggle);
  sim.injectDelay(fx.rSym, 4 * kTick);
  sim.runCycles(6);
  EXPECT_EQ(4u, sim.valueUint(fx.mvSym));
  // Delay removed: the next windows measure on-time behaviour again.
  sim.clearDelay(fx.rSym);
  sim.runCycles(3);
  EXPECT_EQ(0u, sim.valueUint(fx.mvSym));
  EXPECT_EQ(1u, sim.valueUint(fx.okSym));
}

TEST(CounterMonitor, ModuleCachedPerConfig) {
  auto a = buildCounterMonitor({8, 8});
  auto b = buildCounterMonitor({8, 8});
  auto c = buildCounterMonitor({8, 6});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

TEST(CounterMonitor, AreaModelPositive) {
  EXPECT_GT(counterAreaGates({8, 8}), 0.0);
  EXPECT_GT(counterAreaGates({12, 8}), counterAreaGates({8, 8}));
}

}  // namespace
}  // namespace xlv::sensors
