// BitVector: 2-value semantics and agreement with LogicVector on X-free data.
#include <gtest/gtest.h>

#include "hdt/bit_vector.h"
#include "hdt/logic_vector.h"
#include "hdt/policy.h"
#include "util/prng.h"

namespace xlv::hdt {
namespace {

using util::Prng;

TEST(BitVector, DefaultIsZero) {
  BitVector v(40);
  EXPECT_TRUE(v.isZero());
  EXPECT_EQ(40, v.width());
  EXPECT_FALSE(v.anyUnknown());
}

TEST(BitVector, FromStringCollapsesXZToZero) {
  const auto v = BitVector::fromString("1XZ0");
  EXPECT_EQ(0x8u, v.toUint());
}

TEST(BitVector, StringRoundTripBinary) {
  const std::string s = "1011001";
  EXPECT_EQ(s, BitVector::fromString(s).toString());
}

TEST(BitVector, SetBitGetBit) {
  BitVector v(70);
  v.setBit(69, Logic::L1);
  v.setBit(3, Logic::L1);
  EXPECT_EQ(Logic::L1, v.bit(69));
  EXPECT_EQ(Logic::L1, v.bit(3));
  EXPECT_EQ(Logic::L0, v.bit(68));
  v.setBit(69, Logic::L0);
  EXPECT_EQ(Logic::L0, v.bit(69));
}

TEST(BitVector, DivisionByZeroIsZero) {
  const auto a = BitVector::fromUint(8, 42);
  EXPECT_EQ(0u, vec_div(a, BitVector::zeros(8)).toUint());
  EXPECT_EQ(0u, vec_mod(a, BitVector::zeros(8)).toUint());
}

// Cross-type property: every operation agrees between LogicVector and
// BitVector on X-free inputs. This is the backbone of the flow's
// "data type abstraction is sound" claim (Table 4 compares the two).
class CrossPolicyP : public ::testing::TestWithParam<int> {};

TEST_P(CrossPolicyP, OperationsAgreeOnKnownData) {
  const int width = GetParam();
  Prng rng(0xC0FFEE ^ static_cast<unsigned>(width));
  for (int iter = 0; iter < 60; ++iter) {
    const std::uint64_t x = rng.bits(std::min(width, 64));
    const std::uint64_t y = rng.bits(std::min(width, 64));
    const auto la = LogicVector::fromUint(width, x);
    const auto lb = LogicVector::fromUint(width, y);
    const auto ba = BitVector::fromUint(width, x);
    const auto bb = BitVector::fromUint(width, y);

    auto same = [](const LogicVector& l, const BitVector& b) {
      return toTwoState(l).identical(b);
    };

    EXPECT_TRUE(same(vec_and(la, lb), vec_and(ba, bb)));
    EXPECT_TRUE(same(vec_or(la, lb), vec_or(ba, bb)));
    EXPECT_TRUE(same(vec_xor(la, lb), vec_xor(ba, bb)));
    EXPECT_TRUE(same(vec_not(la), vec_not(ba)));
    EXPECT_TRUE(same(vec_add(la, lb), vec_add(ba, bb)));
    EXPECT_TRUE(same(vec_sub(la, lb), vec_sub(ba, bb)));
    EXPECT_TRUE(same(vec_mul(la, lb), vec_mul(ba, bb)));
    EXPECT_TRUE(same(vec_eq(la, lb), vec_eq(ba, bb)));
    EXPECT_TRUE(same(vec_ltu(la, lb), vec_ltu(ba, bb)));
    EXPECT_TRUE(same(vec_lts(la, lb), vec_lts(ba, bb)));
    EXPECT_TRUE(same(vec_redand(la), vec_redand(ba)));
    EXPECT_TRUE(same(vec_redor(la), vec_redor(ba)));
    EXPECT_TRUE(same(vec_redxor(la), vec_redxor(ba)));
    const int amt = static_cast<int>(rng.below(static_cast<std::uint64_t>(width + 2)));
    EXPECT_TRUE(same(vec_shl(la, amt), vec_shl(ba, amt)));
    EXPECT_TRUE(same(vec_shr(la, amt), vec_shr(ba, amt)));
    EXPECT_TRUE(same(vec_ashr(la, amt), vec_ashr(ba, amt)));
    EXPECT_TRUE(same(vec_concat(la, lb), vec_concat(ba, bb)));
    if (width > 2) {
      EXPECT_TRUE(same(vec_slice(la, width - 2, 1), vec_slice(ba, width - 2, 1)));
    }
    EXPECT_TRUE(same(vec_resize(la, width + 7), vec_resize(ba, width + 7)));
    EXPECT_TRUE(same(vec_sext(la, width + 7), vec_sext(ba, width + 7)));
    EXPECT_EQ(vec_isTrue(la), vec_isTrue(ba));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CrossPolicyP, ::testing::Values(1, 8, 16, 32, 33, 64, 96));

TEST(Policy, RoundTripConversions) {
  Prng rng(5);
  for (int iter = 0; iter < 30; ++iter) {
    const auto b = BitVector::fromUint(48, rng.bits(48));
    EXPECT_TRUE(b.identical(toTwoState(toFourState(b))));
  }
}

TEST(Policy, ToTwoStateScrubs) {
  const auto l = LogicVector::fromString("Z1X0");
  EXPECT_EQ(0x4u, toTwoState(l).toUint());
}

}  // namespace
}  // namespace xlv::hdt
