// Word-level 4-value formulas: exhaustive agreement with scalar tables.
#include <gtest/gtest.h>

#include "hdt/logic.h"
#include "hdt/word_ops.h"

namespace xlv::hdt {
namespace {

W4 encode(Logic v) {
  switch (v) {
    case Logic::L0: return {0, 0};
    case Logic::L1: return {1, 0};
    case Logic::X: return {0, 1};
    case Logic::Z: return {1, 1};
  }
  return {0, 0};
}

Logic decode(W4 w) {
  const bool val = w.val & 1;
  const bool unk = w.unk & 1;
  if (!unk) return val ? Logic::L1 : Logic::L0;
  return val ? Logic::Z : Logic::X;
}

const Logic kAll[] = {Logic::L0, Logic::L1, Logic::X, Logic::Z};

// Exhaustive: the Karnaugh-minimized word formulas realize exactly the
// 4-value truth tables, for every input pair. Note the word forms normalize
// results to {0,1,X} (no operator yields Z), same as the scalar tables.
TEST(WordOps, And4MatchesTable) {
  for (Logic a : kAll) {
    for (Logic b : kAll) {
      EXPECT_EQ(a & b, decode(and4(encode(a), encode(b))))
          << toChar(a) << " & " << toChar(b);
    }
  }
}

TEST(WordOps, Or4MatchesTable) {
  for (Logic a : kAll) {
    for (Logic b : kAll) {
      EXPECT_EQ(a | b, decode(or4(encode(a), encode(b))))
          << toChar(a) << " | " << toChar(b);
    }
  }
}

TEST(WordOps, Xor4MatchesTable) {
  for (Logic a : kAll) {
    for (Logic b : kAll) {
      EXPECT_EQ(a ^ b, decode(xor4(encode(a), encode(b))))
          << toChar(a) << " ^ " << toChar(b);
    }
  }
}

TEST(WordOps, Not4MatchesTable) {
  for (Logic a : kAll) {
    EXPECT_EQ(~a, decode(not4(encode(a)))) << toChar(a);
  }
}

TEST(WordOps, To2CollapsesUnknowns) {
  EXPECT_EQ(0u, to2(encode(Logic::X)) & 1);
  EXPECT_EQ(0u, to2(encode(Logic::Z)) & 1);
  EXPECT_EQ(1u, to2(encode(Logic::L1)) & 1);
  EXPECT_EQ(0u, to2(encode(Logic::L0)) & 1);
}

TEST(WordOps, FullWordParallelism) {
  // All 16 input combinations packed into one word, verified in parallel.
  W4 a{0, 0}, b{0, 0};
  int bitIdx = 0;
  Logic expectAnd[16];
  for (Logic x : kAll) {
    for (Logic y : kAll) {
      const W4 ex = encode(x);
      const W4 ey = encode(y);
      a.val |= (ex.val & 1) << bitIdx;
      a.unk |= (ex.unk & 1) << bitIdx;
      b.val |= (ey.val & 1) << bitIdx;
      b.unk |= (ey.unk & 1) << bitIdx;
      expectAnd[bitIdx] = x & y;
      ++bitIdx;
    }
  }
  const W4 r = and4(a, b);
  for (int i = 0; i < 16; ++i) {
    const W4 bitw{(r.val >> i) & 1, (r.unk >> i) & 1};
    EXPECT_EQ(expectAnd[i], decode(bitw)) << "packed bit " << i;
  }
}

}  // namespace
}  // namespace xlv::hdt
