// LogicVector: construction, word-parallel op consistency against the scalar
// truth tables, arithmetic against 64-bit references, structural ops.
#include <gtest/gtest.h>

#include "hdt/logic_vector.h"
#include "util/prng.h"

namespace xlv::hdt {
namespace {

using util::Prng;

LogicVector randomVec(Prng& rng, int width, bool withUnknowns) {
  LogicVector v(width);
  for (int i = 0; i < width; ++i) {
    const int r = static_cast<int>(rng.below(withUnknowns ? 4 : 2));
    v.setBit(i, static_cast<Logic>(r));
  }
  return v;
}

TEST(LogicVector, DefaultIsZero) {
  LogicVector v(17);
  EXPECT_EQ(17, v.width());
  EXPECT_TRUE(v.isZero());
  EXPECT_FALSE(v.anyUnknown());
}

TEST(LogicVector, FromUintMasksToWidth) {
  auto v = LogicVector::fromUint(4, 0xFFu);
  EXPECT_EQ(0xFu, v.toUint());
}

TEST(LogicVector, StringRoundTrip) {
  const std::string s = "01XZ10ZX";
  auto v = LogicVector::fromString(s);
  EXPECT_EQ(s, v.toString());
  EXPECT_TRUE(v.anyUnknown());
}

TEST(LogicVector, BitOrderMsbFirstInString) {
  auto v = LogicVector::fromString("100");
  EXPECT_EQ(Logic::L1, v.bit(2));
  EXPECT_EQ(Logic::L0, v.bit(1));
  EXPECT_EQ(Logic::L0, v.bit(0));
  EXPECT_EQ(4u, v.toUint());
}

TEST(LogicVector, AllXHasNoKnownValue) {
  auto v = LogicVector::allX(8);
  EXPECT_TRUE(v.anyUnknown());
  EXPECT_EQ(0u, v.toUint());  // X reads as 0 in the 2-value projection
  for (int i = 0; i < 8; ++i) EXPECT_EQ(Logic::X, v.bit(i));
}

TEST(LogicVector, IdenticalDistinguishesXFromZero) {
  EXPECT_FALSE(LogicVector::allX(4).identical(LogicVector::zeros(4)));
  EXPECT_FALSE(LogicVector::allZ(4).identical(LogicVector::allX(4)));
  EXPECT_TRUE(LogicVector::allX(4).identical(LogicVector::allX(4)));
}

// Property: word-parallel bitwise ops agree with the scalar truth tables on
// every bit, across widths spanning the word boundary.
class LogicVectorBitwiseP : public ::testing::TestWithParam<int> {};

TEST_P(LogicVectorBitwiseP, MatchesScalarSemantics) {
  const int width = GetParam();
  Prng rng(0xABCD0000u + static_cast<unsigned>(width));
  for (int iter = 0; iter < 50; ++iter) {
    const LogicVector a = randomVec(rng, width, true);
    const LogicVector b = randomVec(rng, width, true);
    const LogicVector iand = vec_and(a, b);
    const LogicVector ior = vec_or(a, b);
    const LogicVector ixor = vec_xor(a, b);
    const LogicVector inot = vec_not(a);
    for (int i = 0; i < width; ++i) {
      EXPECT_EQ(a.bit(i) & b.bit(i), iand.bit(i)) << "width=" << width << " bit=" << i;
      EXPECT_EQ(a.bit(i) | b.bit(i), ior.bit(i));
      EXPECT_EQ(a.bit(i) ^ b.bit(i), ixor.bit(i));
      EXPECT_EQ(~a.bit(i), inot.bit(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LogicVectorBitwiseP,
                         ::testing::Values(1, 7, 8, 31, 32, 33, 63, 64, 65, 127, 128, 200));

// Property: arithmetic on X-free vectors matches plain 64-bit arithmetic.
class LogicVectorArithP : public ::testing::TestWithParam<int> {};

TEST_P(LogicVectorArithP, MatchesUint64Reference) {
  const int width = GetParam();
  const std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  Prng rng(0x1234u + static_cast<unsigned>(width));
  for (int iter = 0; iter < 100; ++iter) {
    const std::uint64_t x = rng.bits(width);
    const std::uint64_t y = rng.bits(width);
    const auto a = LogicVector::fromUint(width, x);
    const auto b = LogicVector::fromUint(width, y);
    EXPECT_EQ((x + y) & mask, vec_add(a, b).toUint());
    EXPECT_EQ((x - y) & mask, vec_sub(a, b).toUint());
    EXPECT_EQ((x * y) & mask, vec_mul(a, b).toUint());
    EXPECT_EQ((x < y) ? 1u : 0u, vec_ltu(a, b).toUint());
    EXPECT_EQ((x <= y) ? 1u : 0u, vec_leu(a, b).toUint());
    EXPECT_EQ((x == y) ? 1u : 0u, vec_eq(a, b).toUint());
    if (y != 0) {
      EXPECT_EQ((x / y) & mask, vec_div(a, b).toUint());
      EXPECT_EQ((x % y) & mask, vec_mod(a, b).toUint());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LogicVectorArithP, ::testing::Values(4, 8, 16, 31, 32, 48, 64));

TEST(LogicVector, WideAddCarriesAcrossWords) {
  // 128-bit: (2^64 - 1) + 1 == 2^64.
  LogicVector a(128);
  for (int i = 0; i < 64; ++i) a.setBit(i, Logic::L1);
  const auto one = LogicVector::fromUint(128, 1);
  const auto sum = vec_add(a, one);
  EXPECT_EQ(Logic::L1, sum.bit(64));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(Logic::L0, sum.bit(i));
}

TEST(LogicVector, ArithmeticIsPessimisticOnUnknowns) {
  const auto a = LogicVector::fromString("1X01");
  const auto b = LogicVector::fromUint(4, 3);
  EXPECT_TRUE(vec_add(a, b).anyUnknown());
  EXPECT_TRUE(vec_eq(a, b).anyUnknown());
  EXPECT_TRUE(vec_ltu(a, b).anyUnknown());
}

TEST(LogicVector, DivisionByZeroIsAllX) {
  const auto a = LogicVector::fromUint(8, 42);
  const auto z = LogicVector::zeros(8);
  EXPECT_TRUE(vec_div(a, z).anyUnknown());
  EXPECT_TRUE(vec_mod(a, z).anyUnknown());
}

class LogicVectorShiftP : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LogicVectorShiftP, MatchesUint64Reference) {
  const auto [width, amount] = GetParam();
  const std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  Prng rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t x = rng.bits(width);
    const auto a = LogicVector::fromUint(width, x);
    const std::uint64_t shlRef = amount >= width ? 0 : ((x << amount) & mask);
    const std::uint64_t shrRef = amount >= width ? 0 : (x >> amount);
    EXPECT_EQ(shlRef, vec_shl(a, amount).toUint()) << width << " << " << amount;
    EXPECT_EQ(shrRef, vec_shr(a, amount).toUint()) << width << " >> " << amount;
    // Arithmetic shift reference via sign extension.
    std::int64_t sx = static_cast<std::int64_t>(x << (64 - width)) >> (64 - width);
    const std::uint64_t ashrRef =
        static_cast<std::uint64_t>(sx >> std::min(amount, 63)) & mask;
    EXPECT_EQ(ashrRef, vec_ashr(a, amount).toUint()) << width << " >>> " << amount;
  }
}

INSTANTIATE_TEST_SUITE_P(WidthAmount, LogicVectorShiftP,
                         ::testing::Values(std::pair{8, 0}, std::pair{8, 3}, std::pair{8, 8},
                                           std::pair{8, 12}, std::pair{32, 1}, std::pair{32, 31},
                                           std::pair{64, 17}, std::pair{64, 63}));

TEST(LogicVector, ShiftPreservesUnknownPositions) {
  const auto a = LogicVector::fromString("X100");
  EXPECT_EQ("1000", vec_shl(a, 1).toString());
  EXPECT_EQ("0X10", vec_shr(a, 1).toString());
  EXPECT_EQ(Logic::X, vec_shr(a, 1).bit(2));
}

TEST(LogicVector, ConcatOrdersHighLow) {
  const auto hi = LogicVector::fromUint(4, 0xA);
  const auto lo = LogicVector::fromUint(4, 0x5);
  EXPECT_EQ(0xA5u, vec_concat(hi, lo).toUint());
  EXPECT_EQ(8, vec_concat(hi, lo).width());
}

TEST(LogicVector, SliceExtractsRange) {
  const auto v = LogicVector::fromUint(12, 0xABC);
  EXPECT_EQ(0xBu, vec_slice(v, 7, 4).toUint());
  EXPECT_EQ(0xAu, vec_slice(v, 11, 8).toUint());
  EXPECT_EQ(0xCu, vec_slice(v, 3, 0).toUint());
}

TEST(LogicVector, SliceConcatRoundTrip) {
  Prng rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    const auto v = randomVec(rng, 24, true);
    const auto hi = vec_slice(v, 23, 12);
    const auto lo = vec_slice(v, 11, 0);
    EXPECT_TRUE(v.identical(vec_concat(hi, lo)));
  }
}

TEST(LogicVector, ResizeZeroExtends) {
  const auto v = LogicVector::fromUint(4, 0xF);
  const auto w = vec_resize(v, 8);
  EXPECT_EQ(0x0Fu, w.toUint());
  EXPECT_EQ(8, w.width());
}

TEST(LogicVector, SextSignExtends) {
  const auto v = LogicVector::fromUint(4, 0x8);  // -8 in 4 bits
  EXPECT_EQ(0xF8u, vec_sext(v, 8).toUint());
  const auto p = LogicVector::fromUint(4, 0x7);
  EXPECT_EQ(0x07u, vec_sext(p, 8).toUint());
}

TEST(LogicVector, SextPropagatesUnknownSign) {
  auto v = LogicVector::fromString("X01");
  const auto w = vec_sext(v, 6);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(Logic::X, w.bit(i));
}

TEST(LogicVector, SetSliceWritesRange) {
  LogicVector v = LogicVector::zeros(12);
  vec_setSlice(v, 7, 4, LogicVector::fromUint(4, 0xB));
  EXPECT_EQ(0x0B0u, v.toUint());
}

TEST(LogicVector, Reductions) {
  EXPECT_EQ(1u, vec_redand(LogicVector::ones(9)).toUint());
  EXPECT_EQ(0u, vec_redand(LogicVector::fromUint(9, 0x1FE)).toUint());
  EXPECT_EQ(1u, vec_redor(LogicVector::fromUint(9, 0x010)).toUint());
  EXPECT_EQ(0u, vec_redor(LogicVector::zeros(9)).toUint());
  EXPECT_EQ(1u, vec_redxor(LogicVector::fromUint(8, 0x01)).toUint());
  EXPECT_EQ(0u, vec_redxor(LogicVector::fromUint(8, 0x03)).toUint());
}

TEST(LogicVector, RedorKnownOneDominatesUnknown) {
  const auto v = LogicVector::fromString("1X");
  EXPECT_EQ(1u, vec_redor(v).toUint());
  const auto u = LogicVector::fromString("0X");
  EXPECT_TRUE(vec_redor(u).anyUnknown());
}

TEST(LogicVector, SignedComparison) {
  const auto minus1 = LogicVector::fromUint(8, 0xFF);
  const auto plus1 = LogicVector::fromUint(8, 0x01);
  EXPECT_EQ(1u, vec_lts(minus1, plus1).toUint());
  EXPECT_EQ(0u, vec_lts(plus1, minus1).toUint());
  EXPECT_EQ(1u, vec_ltu(plus1, minus1).toUint());
}

TEST(LogicVector, ToIntSignExtends) {
  EXPECT_EQ(-1, LogicVector::fromUint(4, 0xF).toInt());
  EXPECT_EQ(7, LogicVector::fromUint(4, 0x7).toInt());
}

TEST(LogicVector, To2StateScrubsUnknowns) {
  const auto v = LogicVector::fromString("1XZ0");
  const auto s = vec_to2state(v);
  EXPECT_FALSE(s.anyUnknown());
  EXPECT_EQ(0x8u, s.toUint());  // only the known 1 survives
}

TEST(LogicVector, IsTruePessimisticOnUnknown) {
  EXPECT_FALSE(vec_isTrue(LogicVector::fromString("X")));
  EXPECT_FALSE(vec_isTrue(LogicVector::zeros(5)));
  EXPECT_TRUE(vec_isTrue(LogicVector::fromUint(5, 4)));
}

}  // namespace
}  // namespace xlv::hdt
