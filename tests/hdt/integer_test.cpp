// Signed / Unsigned HDL integers: wrap semantics and conversions.
#include <gtest/gtest.h>

#include "hdt/integer.h"

namespace xlv::hdt {
namespace {

TEST(Unsigned, WrapsAtWidth) {
  Unsigned a(8, 250);
  Unsigned b(8, 10);
  EXPECT_EQ(4u, (a + b).value());  // 260 mod 256
  EXPECT_EQ(240u, (a - b).value());
  EXPECT_EQ((250u * 10u) & 0xFFu, (a * b).value());
}

TEST(Unsigned, ShiftsStayInWidth) {
  Unsigned a(8, 0x81);
  EXPECT_EQ(0x02u, (a << 1).value());
  EXPECT_EQ(0x40u, (a >> 1).value());
}

TEST(Unsigned, Comparisons) {
  EXPECT_TRUE(Unsigned(8, 3) < Unsigned(8, 200));
  EXPECT_TRUE(Unsigned(8, 200) <= Unsigned(8, 200));
  EXPECT_TRUE(Unsigned(8, 5) == Unsigned(8, 5));
}

TEST(Signed, WrapsIntoSignedRange) {
  Signed a(8, 127);
  Signed one(8, 1);
  EXPECT_EQ(-128, (a + one).value());
  Signed m(8, -128);
  EXPECT_EQ(127, (m - one).value());
}

TEST(Signed, ArithmeticShiftKeepsSign) {
  Signed a(8, -64);
  EXPECT_EQ(-32, (a >> 1).value());
  EXPECT_EQ(-128, (a << 1).value());
}

TEST(Signed, NegationWraps) {
  Signed m(8, -128);
  EXPECT_EQ(-128, (-m).value());  // two's complement edge case
  EXPECT_EQ(-5, (-Signed(8, 5)).value());
}

TEST(Integer, VectorConversions) {
  EXPECT_EQ(0xF4u, Signed(8, -12).toLogicVector().toUint());
  EXPECT_EQ(-12, Signed(8, -12).toBitVector().toInt());
  EXPECT_EQ(200u, Unsigned(8, 200).toBitVector().toUint());
}

}  // namespace
}  // namespace xlv::hdt
