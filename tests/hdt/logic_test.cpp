// Scalar 4-value logic: truth-table semantics and identities.
#include <gtest/gtest.h>

#include "hdt/logic.h"

namespace xlv::hdt {
namespace {

const Logic kAll[] = {Logic::L0, Logic::L1, Logic::X, Logic::Z};

TEST(Logic, KnownPredicate) {
  EXPECT_TRUE(isKnown(Logic::L0));
  EXPECT_TRUE(isKnown(Logic::L1));
  EXPECT_FALSE(isKnown(Logic::X));
  EXPECT_FALSE(isKnown(Logic::Z));
}

TEST(Logic, AndDominantZero) {
  for (Logic a : kAll) {
    EXPECT_EQ(Logic::L0, a & Logic::L0) << toChar(a);
    EXPECT_EQ(Logic::L0, Logic::L0 & a) << toChar(a);
  }
}

TEST(Logic, OrDominantOne) {
  for (Logic a : kAll) {
    EXPECT_EQ(Logic::L1, a | Logic::L1) << toChar(a);
    EXPECT_EQ(Logic::L1, Logic::L1 | a) << toChar(a);
  }
}

TEST(Logic, UnknownPropagation) {
  // X/Z op anything-not-dominant yields X.
  EXPECT_EQ(Logic::X, Logic::X & Logic::L1);
  EXPECT_EQ(Logic::X, Logic::Z & Logic::L1);
  EXPECT_EQ(Logic::X, Logic::X | Logic::L0);
  EXPECT_EQ(Logic::X, Logic::Z | Logic::L0);
  EXPECT_EQ(Logic::X, Logic::X ^ Logic::L0);
  EXPECT_EQ(Logic::X, Logic::X ^ Logic::L1);
  EXPECT_EQ(Logic::X, Logic::Z ^ Logic::Z);
}

TEST(Logic, NotTable) {
  EXPECT_EQ(Logic::L1, ~Logic::L0);
  EXPECT_EQ(Logic::L0, ~Logic::L1);
  EXPECT_EQ(Logic::X, ~Logic::X);
  EXPECT_EQ(Logic::X, ~Logic::Z);
}

TEST(Logic, KnownSubsetMatchesBool) {
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      EXPECT_EQ(fromBool(a && b), fromBool(a) & fromBool(b));
      EXPECT_EQ(fromBool(a || b), fromBool(a) | fromBool(b));
      EXPECT_EQ(fromBool(a != b), fromBool(a) ^ fromBool(b));
    }
    EXPECT_EQ(fromBool(!a), ~fromBool(a));
  }
}

TEST(Logic, Commutativity) {
  for (Logic a : kAll) {
    for (Logic b : kAll) {
      EXPECT_EQ(a & b, b & a);
      EXPECT_EQ(a | b, b | a);
      EXPECT_EQ(a ^ b, b ^ a);
    }
  }
}

TEST(Logic, CharRoundTrip) {
  EXPECT_EQ(Logic::L0, logicFromChar('0'));
  EXPECT_EQ(Logic::L1, logicFromChar('1'));
  EXPECT_EQ(Logic::X, logicFromChar('X'));
  EXPECT_EQ(Logic::X, logicFromChar('x'));
  EXPECT_EQ(Logic::Z, logicFromChar('Z'));
  EXPECT_EQ(Logic::Z, logicFromChar('z'));
  for (Logic a : kAll) EXPECT_EQ(a, logicFromChar(toChar(a)));
}

}  // namespace
}  // namespace xlv::hdt
