// SmallWords storage: inline/heap transitions, copy/move correctness —
// the foundation under both vector types.
#include <gtest/gtest.h>

#include "hdt/small_words.h"

namespace xlv::hdt {
namespace {

TEST(SmallWords, InlineStorageHoldsValues) {
  SmallWords w(3, 0xAB);
  EXPECT_EQ(3, w.size());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(0xABu, w[i]);
  w[1] = 42;
  EXPECT_EQ(42u, w[1]);
  EXPECT_EQ(0xABu, w[0]);
}

TEST(SmallWords, HeapStorageBeyondInlineCapacity) {
  SmallWords w(9, 7);
  EXPECT_EQ(9, w.size());
  for (int i = 0; i < 9; ++i) EXPECT_EQ(7u, w[i]);
  w[8] = 99;
  EXPECT_EQ(99u, w[8]);
}

TEST(SmallWords, CopyIsDeep) {
  SmallWords a(8, 5);
  SmallWords b(a);
  b[0] = 1;
  EXPECT_EQ(5u, a[0]);
  EXPECT_EQ(1u, b[0]);
}

TEST(SmallWords, CopyAssignAcrossSizes) {
  SmallWords small(2, 3);
  SmallWords big(10, 4);
  small = big;  // inline -> heap
  EXPECT_EQ(10, small.size());
  EXPECT_EQ(4u, small[9]);
  SmallWords tiny(1, 9);
  big = tiny;  // heap -> inline
  EXPECT_EQ(1, big.size());
  EXPECT_EQ(9u, big[0]);
}

TEST(SmallWords, MoveStealsHeap) {
  SmallWords a(12, 6);
  const std::uint64_t* data = a.data();
  SmallWords b(std::move(a));
  EXPECT_EQ(12, b.size());
  EXPECT_EQ(data, b.data());  // heap pointer moved, not copied
  EXPECT_EQ(6u, b[11]);
}

TEST(SmallWords, MoveInlineCopiesBytes) {
  SmallWords a(2, 8);
  SmallWords b(std::move(a));
  EXPECT_EQ(2, b.size());
  EXPECT_EQ(8u, b[0]);
}

TEST(SmallWords, SelfAssignmentSafe) {
  SmallWords a(6, 2);
  auto& ref = a;
  a = ref;
  EXPECT_EQ(6, a.size());
  EXPECT_EQ(2u, a[5]);
}

TEST(SmallWords, MoveAssignReleasesOldHeap) {
  SmallWords a(10, 1);
  SmallWords b(11, 2);
  a = std::move(b);
  EXPECT_EQ(11, a.size());
  EXPECT_EQ(2u, a[10]);
}

}  // namespace
}  // namespace xlv::hdt
