// TLM-2.0-lite library: payload, sockets, memory target, router, quantum.
#include <gtest/gtest.h>

#include "tlm/memory.h"
#include "tlm/router.h"
#include "tlm/socket.h"

namespace xlv::tlm {
namespace {

TEST(Payload, WordHelpersRoundTrip) {
  GenericPayload p;
  p.setWriteWord(0x40, 0xDEADBEEF);
  EXPECT_EQ(Command::Write, p.command);
  EXPECT_EQ(0x40u, p.address);
  EXPECT_EQ(0xDEADBEEFu, p.dataWord());
  EXPECT_EQ(Response::Incomplete, p.response);
}

TEST(Payload, ResponseNames) {
  EXPECT_STREQ("OK", responseName(Response::Ok));
  EXPECT_STREQ("ADDRESS_ERROR", responseName(Response::AddressError));
}

TEST(Memory, ReadBackAfterWrite) {
  Memory mem(256);
  InitiatorSocket init;
  init.bind(mem.socket());

  GenericPayload p;
  Time delay;
  p.setWriteWord(16, 0xCAFEBABE);
  init.b_transport(p, delay);
  EXPECT_TRUE(p.ok());

  p.setRead(16, 4);
  init.b_transport(p, delay);
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(0xCAFEBABEu, p.dataWord());
  EXPECT_GT(delay.ps(), 0u);
}

TEST(Memory, OutOfRangeIsAddressError) {
  Memory mem(64);
  InitiatorSocket init;
  init.bind(mem.socket());
  GenericPayload p;
  Time delay;
  p.setWriteWord(62, 1);  // 4 bytes starting at 62 overflow a 64-byte memory
  init.b_transport(p, delay);
  EXPECT_EQ(Response::AddressError, p.response);
}

TEST(Memory, NbTransportEarlyCompletion) {
  Memory mem(64);
  GenericPayload p;
  p.setWriteWord(0, 0x12345678);
  Phase phase = Phase::BeginReq;
  Time t;
  EXPECT_EQ(SyncEnum::Completed, mem.nb_transport_fw(p, phase, t));
  EXPECT_EQ(Phase::BeginResp, phase);
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(0x12345678u, mem.word(0));
}

TEST(Memory, DmiGrantsWholeRange) {
  Memory mem(128);
  GenericPayload p;
  DmiRegion region;
  ASSERT_TRUE(mem.get_direct_mem_ptr(p, region));
  EXPECT_EQ(0u, region.startAddress);
  EXPECT_EQ(127u, region.endAddress);
  ASSERT_NE(nullptr, region.base);
  region.base[5] = 42;
  EXPECT_EQ(42, mem.data()[5]);
}

TEST(Memory, DebugTransportHasNoTiming) {
  Memory mem(64);
  mem.setWord(8, 0x11223344);
  GenericPayload p;
  p.setRead(8, 4);
  EXPECT_EQ(4u, mem.transport_dbg(p));
  EXPECT_EQ(0x11223344u, p.dataWord());
}

TEST(Router, RoutesByAddressAndRebases) {
  Memory m0(64), m1(64);
  Router router;
  router.map(0x000, 64, m0.socket(), "m0");
  router.map(0x100, 64, m1.socket(), "m1");

  InitiatorSocket init;
  init.bind(router.socket());
  GenericPayload p;
  Time delay;
  p.setWriteWord(0x104, 7);
  init.b_transport(p, delay);
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(7u, m1.word(4));
  EXPECT_EQ(0u, m0.word(4));
  EXPECT_EQ(0x104u, p.address);  // restored after routing
}

TEST(Router, UnmappedAddressFails) {
  Memory m0(64);
  Router router;
  router.map(0, 64, m0.socket());
  InitiatorSocket init;
  init.bind(router.socket());
  GenericPayload p;
  Time delay;
  p.setWriteWord(0x500, 1);
  init.b_transport(p, delay);
  EXPECT_EQ(Response::AddressError, p.response);
}

TEST(Router, RejectsOverlappingRegions) {
  Memory m0(64), m1(64);
  Router router;
  router.map(0, 64, m0.socket());
  EXPECT_THROW(router.map(32, 64, m1.socket()), std::invalid_argument);
}

TEST(Socket, UnboundTransportThrows) {
  InitiatorSocket init;
  GenericPayload p;
  Time delay;
  EXPECT_THROW(init.b_transport(p, delay), std::runtime_error);
}

TEST(QuantumKeeper, SyncsAtQuantum) {
  QuantumKeeper qk(Time(1000));
  qk.inc(Time(400));
  EXPECT_FALSE(qk.needSync());
  qk.inc(Time(600));
  EXPECT_TRUE(qk.needSync());
  EXPECT_EQ(1000u, qk.sync().ps());
  EXPECT_EQ(0u, qk.localTime().ps());
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time(300), Time(100) + Time(200));
  EXPECT_TRUE(Time(100) < Time(200));
  EXPECT_DOUBLE_EQ(1.5, Time(1500).ns());
}

}  // namespace
}  // namespace xlv::tlm
