// Corner plumbing for the sweep layer: name-based lookup and the Table-1
// V-f operating-point derate model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sta/sta.h"
#include "sta/tech_library.h"

namespace xlv::sta {
namespace {

TEST(Corner, ByNameResolvesTheStandardCorners) {
  EXPECT_EQ(Corner::typical().name, Corner::byName("typical").name);
  EXPECT_EQ(Corner::slow().name, Corner::byName("slow").name);
  EXPECT_EQ(Corner::fast().name, Corner::byName("fast").name);
  EXPECT_DOUBLE_EQ(Corner::slow().derate(), Corner::byName("slow").derate());
  EXPECT_THROW(Corner::byName("ss_typo"), std::invalid_argument);
}

TEST(Corner, StandardCornersSpanTypicalSlowFast) {
  const auto corners = standardCorners();
  ASSERT_EQ(3u, corners.size());
  EXPECT_LT(corners[2].derate(), corners[0].derate());  // fast < typical
  EXPECT_LT(corners[0].derate(), corners[1].derate());  // typical < slow
}

TEST(Corner, OperatingPointDerateGrowsAsSupplyDrops) {
  // Alpha-power-law shape: nominal supply is the 1.0 reference, lower Vdd
  // slows paths (larger factor), higher Vdd speeds them up — the Table 1
  // V-f trade the paper characterizes each IP across.
  const Corner nominal = Corner::atOperatingPoint(1.05);
  EXPECT_NEAR(1.0, nominal.derate(), 1e-12);
  const Corner low = Corner::atOperatingPoint(0.9);
  const Corner lower = Corner::atOperatingPoint(0.8);
  const Corner high = Corner::atOperatingPoint(1.2);
  EXPECT_GT(low.derate(), 1.0);
  EXPECT_GT(lower.derate(), low.derate());
  EXPECT_LT(high.derate(), 1.0);
  EXPECT_EQ("vf_0.90v", low.name);
  EXPECT_THROW(Corner::atOperatingPoint(0.0), std::invalid_argument);

  // A lower-supply corner tightens critical binning: derated arrivals rise,
  // so the critical set can only grow for a fixed threshold.
  StaConfig cfg;
  cfg.corner = lower;
  EXPECT_GT(cfg.corner.derate(), StaConfig{}.corner.derate() * 0.8);
}

}  // namespace
}  // namespace xlv::sta
