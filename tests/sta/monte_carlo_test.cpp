// Monte-Carlo statistical timing: yield estimates, monotonicity properties.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/elaborate.h"
#include "sta/sta.h"

namespace xlv::sta {
namespace {

using namespace xlv::ir;

Design chainDesign(int depth) {
  ModuleBuilder mb("chain" + std::to_string(depth));
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 16);
  auto r = mb.signal("r", 16);
  Ex e(a);
  for (int i = 0; i < depth; ++i) e = (e + lit(16, 1)) * lit(16, 3);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, e); });
  return elaborate(*mb.finish());
}

StaConfig cfgWithPeriod(double ps) {
  StaConfig cfg;
  cfg.clockPeriodPs = ps;
  cfg.corner = Corner::typical();
  cfg.agingYears = 0;
  cfg.ocvDerate = 1.0;
  return cfg;
}

TEST(MonteCarlo, GenerousPeriodYieldsFully) {
  MonteCarloConfig mc;
  mc.samples = 500;
  auto rep = monteCarlo(chainDesign(2), cfgWithPeriod(100000), mc);
  EXPECT_DOUBLE_EQ(1.0, rep.designYield);
  for (const auto& e : rep.endpoints) EXPECT_DOUBLE_EQ(0.0, e.failProb);
}

TEST(MonteCarlo, ImpossiblePeriodFailsFully) {
  MonteCarloConfig mc;
  mc.samples = 500;
  auto rep = monteCarlo(chainDesign(4), cfgWithPeriod(60), mc);
  EXPECT_NEAR(0.0, rep.designYield, 0.01);
}

TEST(MonteCarlo, MarginalPeriodGivesPartialYield) {
  // Pick the period right at the nominal arrival: ~half the global samples
  // land above it.
  Design d = chainDesign(4);
  StaConfig cfg = cfgWithPeriod(1000);
  auto det = analyze(d, cfg);
  const double nominal = det.paths.front().arrivalPs;
  cfg.clockPeriodPs = nominal + cfg.setupTimePs + cfg.clockUncertaintyPs;

  MonteCarloConfig mc;
  mc.samples = 4000;
  auto rep = monteCarlo(d, cfg, mc);
  EXPECT_GT(rep.designYield, 0.2);
  EXPECT_LT(rep.designYield, 0.8);
}

TEST(MonteCarlo, YieldMonotoneInPeriod) {
  Design d = chainDesign(5);
  MonteCarloConfig mc;
  mc.samples = 1500;
  double prev = -1.0;
  for (double period : {400.0, 600.0, 900.0, 1400.0, 3000.0}) {
    auto rep = monteCarlo(d, cfgWithPeriod(period), mc);
    EXPECT_GE(rep.designYield, prev) << "period " << period;
    prev = rep.designYield;
  }
}

TEST(MonteCarlo, DeterministicPerSeed) {
  Design d = chainDesign(3);
  MonteCarloConfig mc;
  mc.samples = 300;
  mc.seed = 77;
  auto a = monteCarlo(d, cfgWithPeriod(500), mc);
  auto b = monteCarlo(d, cfgWithPeriod(500), mc);
  EXPECT_DOUBLE_EQ(a.designYield, b.designYield);
  mc.seed = 78;
  auto c = monteCarlo(d, cfgWithPeriod(500), mc);
  (void)c;  // different seed may coincide; only the API contract matters
}

TEST(MonteCarlo, DeeperConesFailMore) {
  // Two endpoints of different depth in one design: the deeper one's
  // failure probability dominates.
  ModuleBuilder mb("two");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 16);
  auto shallow = mb.signal("shallow", 16);
  auto deep = mb.signal("deep", 16);
  Ex e(a);
  for (int i = 0; i < 6; ++i) e = (e + lit(16, 1)) * lit(16, 3);
  mb.onRising("ff", clk, [&](ProcBuilder& p) {
    p.assign(shallow, Ex(a) + 1u);
    p.assign(deep, e);
  });
  Design d = elaborate(*mb.finish());

  StaConfig cfg = cfgWithPeriod(1000);
  auto det = analyze(d, cfg);
  cfg.clockPeriodPs =
      det.paths.front().arrivalPs + cfg.setupTimePs + cfg.clockUncertaintyPs;
  MonteCarloConfig mc;
  mc.samples = 2000;
  auto rep = monteCarlo(d, cfg, mc);
  ASSERT_EQ(2u, rep.endpoints.size());
  EXPECT_EQ("deep", rep.endpoints.front().name);  // sorted by failProb
  EXPECT_GT(rep.endpoints.front().failProb, rep.endpoints.back().failProb);
  EXPECT_GT(rep.endpoints.front().p95ArrivalPs, rep.endpoints.front().meanArrivalPs);
}

}  // namespace
}  // namespace xlv::sta
