// Static timing analysis: arrivals, slacks, threshold binning, corners,
// statistical mode, aging, monotonicity, area estimation.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/elaborate.h"
#include "sta/sta.h"

namespace xlv::sta {
namespace {

using namespace xlv::ir;

/// Two registers: r_short <- a + 1 (shallow cone), r_long <- deep cone.
Design twoConesDesign() {
  ModuleBuilder mb("cones");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 16);
  auto b = mb.in("b", 16);
  auto rShort = mb.signal("r_short", 16);
  auto rLong = mb.signal("r_long", 16);
  auto w1 = mb.signal("w1", 16);
  auto w2 = mb.signal("w2", 16);
  mb.comb("c1", [&](ProcBuilder& p) { p.assign(w1, Ex(a) * Ex(b)); });
  mb.comb("c2", [&](ProcBuilder& p) { p.assign(w2, (Ex(w1) + Ex(a)) * Ex(b)); });
  mb.onRising("ffs", clk, [&](ProcBuilder& p) {
    p.assign(rShort, Ex(a) + 1u);
    p.assign(rLong, Ex(w2) + Ex(w1));
  });
  return elaborate(*mb.finish());
}

StaConfig baseCfg() {
  StaConfig cfg;
  cfg.clockPeriodPs = 2000.0;
  cfg.corner = Corner::typical();
  cfg.agingYears = 0.0;
  cfg.ocvDerate = 1.0;
  return cfg;
}

TEST(Sta, DeepConeHasLargerArrival) {
  Design d = twoConesDesign();
  StaReport r = analyze(d, baseCfg());
  const auto* s = r.findEndpoint(d.findSymbol("r_short"));
  const auto* l = r.findEndpoint(d.findSymbol("r_long"));
  ASSERT_NE(nullptr, s);
  ASSERT_NE(nullptr, l);
  EXPECT_GT(l->arrivalPs, s->arrivalPs);
  EXPECT_LT(l->slackPs, s->slackPs);
  EXPECT_GT(l->logicLevels, s->logicLevels);
}

TEST(Sta, PathsSortedBySlack) {
  Design d = twoConesDesign();
  StaReport r = analyze(d, baseCfg());
  for (std::size_t i = 1; i < r.paths.size(); ++i) {
    EXPECT_LE(r.paths[i - 1].slackPs, r.paths[i].slackPs);
  }
}

TEST(Sta, ThresholdBinsCritical) {
  Design d = twoConesDesign();
  StaConfig cfg = baseCfg();
  StaReport r0 = analyze(d, cfg);
  const auto* l = r0.findEndpoint(d.findSymbol("r_long"));
  const auto* s = r0.findEndpoint(d.findSymbol("r_short"));
  ASSERT_NE(nullptr, l);
  ASSERT_NE(nullptr, s);

  // Threshold between the two slacks -> exactly the deep path is critical.
  cfg.slackThresholdPs = (l->slackPs + s->slackPs) / 2.0;
  StaReport r = analyze(d, cfg);
  EXPECT_TRUE(r.findEndpoint(d.findSymbol("r_long"))->critical);
  EXPECT_FALSE(r.findEndpoint(d.findSymbol("r_short"))->critical);
  EXPECT_EQ(1, r.criticalCount);
}

TEST(Sta, FractionalThresholdDefault) {
  StaConfig cfg;
  cfg.clockPeriodPs = 1000.0;
  cfg.slackThresholdPs = -1.0;
  cfg.thresholdFraction = 0.25;
  EXPECT_DOUBLE_EQ(250.0, cfg.effectiveThresholdPs());
  cfg.slackThresholdPs = 100.0;
  EXPECT_DOUBLE_EQ(100.0, cfg.effectiveThresholdPs());
}

TEST(Sta, SlowCornerIncreasesArrival) {
  Design d = twoConesDesign();
  StaConfig cfg = baseCfg();
  StaReport typ = analyze(d, cfg);
  cfg.corner = Corner::slow();
  StaReport slow = analyze(d, cfg);
  for (std::size_t i = 0; i < typ.paths.size(); ++i) {
    const auto* a = typ.findEndpoint(slow.paths[i].endpoint);
    ASSERT_NE(nullptr, a);
    EXPECT_GT(slow.paths[i].arrivalPs, a->arrivalPs);
  }
}

TEST(Sta, FastCornerDecreasesArrival) {
  Design d = twoConesDesign();
  StaConfig cfg = baseCfg();
  StaReport typ = analyze(d, cfg);
  cfg.corner = Corner::fast();
  StaReport fast = analyze(d, cfg);
  EXPECT_LT(fast.findEndpoint(d.findSymbol("r_long"))->arrivalPs,
            typ.findEndpoint(d.findSymbol("r_long"))->arrivalPs);
}

TEST(Sta, AgingIncreasesArrivalMonotonically) {
  EXPECT_DOUBLE_EQ(1.0, TechLibrary::agingDerate(0.0));
  EXPECT_GT(TechLibrary::agingDerate(1.0), 1.0);
  EXPECT_GT(TechLibrary::agingDerate(10.0), TechLibrary::agingDerate(1.0));
  EXPECT_GT(TechLibrary::agingDerate(20.0), TechLibrary::agingDerate(10.0));
}

TEST(Sta, StatisticalModeAddsMargin) {
  Design d = twoConesDesign();
  StaConfig cfg = baseCfg();
  StaReport det = analyze(d, cfg);
  cfg.statistical = true;
  StaReport stat = analyze(d, cfg);
  for (const auto& p : stat.paths) {
    const auto* q = det.findEndpoint(p.endpoint);
    ASSERT_NE(nullptr, q);
    if (p.logicLevels > 0) {
      EXPECT_GT(p.arrivalPs, q->arrivalPs);
    }
  }
}

// Monotonicity property (DESIGN.md invariant 6): adding logic to a cone
// never decreases the endpoint's arrival.
TEST(Sta, AddingLogicNeverDecreasesArrival) {
  for (int depth = 1; depth <= 6; ++depth) {
    ModuleBuilder mb("chain" + std::to_string(depth));
    auto clk = mb.clock("clk");
    auto a = mb.in("a", 8);
    auto r = mb.signal("r", 8);
    Ex e(a);
    for (int i = 0; i < depth; ++i) e = e + lit(8, 1);
    mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, e); });
    Design d = elaborate(*mb.finish());
    StaReport rep = analyze(d, baseCfg());
    const double arrival = rep.findEndpoint(d.findSymbol("r"))->arrivalPs;
    static double prev = 0.0;
    if (depth == 1) prev = 0.0;
    EXPECT_GE(arrival, prev) << "depth " << depth;
    prev = arrival;
  }
}

TEST(Sta, StartpointTracksLaunchRegisterOrInput) {
  Design d = twoConesDesign();
  StaReport r = analyze(d, baseCfg());
  const auto* l = r.findEndpoint(d.findSymbol("r_long"));
  ASSERT_NE(nullptr, l);
  // Long cone starts at one of the primary inputs.
  EXPECT_TRUE(l->startpointName == "a" || l->startpointName == "b");
}

TEST(Sta, CombinationalLoopDetected) {
  ModuleBuilder mb("loop");
  mb.clock("clk");
  auto x = mb.signal("x", 4);
  auto y = mb.signal("y", 4);
  auto r = mb.signal("r", 4);
  auto clk2 = Sig{0, Type{1, false}};
  (void)clk2;
  mb.comb("c1", [&](ProcBuilder& p) { p.assign(x, Ex(y) + 1u); });
  mb.comb("c2", [&](ProcBuilder& p) { p.assign(y, Ex(x) + 1u); });
  mb.onRising("ff", Sig{0, Type{1, false}}, [&](ProcBuilder& p) { p.assign(r, x); });
  Design d = elaborate(*mb.finish());
  EXPECT_THROW(analyze(d, baseCfg()), std::runtime_error);
}

TEST(Sta, AreaGrowsWithWidth) {
  auto makeDesign = [](int w) {
    ModuleBuilder mb("aw");
    auto clk = mb.clock("clk");
    auto a = mb.in("a", w);
    auto b = mb.in("b", w);
    auto r = mb.signal("r", w);
    mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(a) * Ex(b)); });
    return elaborate(*mb.finish());
  };
  const double a8 = estimateAreaGates(makeDesign(8));
  const double a16 = estimateAreaGates(makeDesign(16));
  const double a32 = estimateAreaGates(makeDesign(32));
  EXPECT_GT(a16, a8);
  EXPECT_GT(a32, a16);
}

TEST(Sta, AreaIncludesFlipFlops) {
  ModuleBuilder mb("ffarea");
  auto clk = mb.clock("clk");
  auto a = mb.in("a", 32);
  auto r = mb.signal("r", 32);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, a); });
  Design d = elaborate(*mb.finish());
  TechLibrary lib;
  EXPECT_GE(estimateAreaGates(d, lib), lib.ffAreaGates() * 32);
}

TEST(Sta, ReportFormatsWithoutCrashing) {
  Design d = twoConesDesign();
  StaReport r = analyze(d, baseCfg());
  const std::string text = formatReport(r);
  EXPECT_NE(std::string::npos, text.find("STA report"));
  EXPECT_NE(std::string::npos, text.find("r_long"));
}

TEST(Sta, AnalysisTimeRecorded) {
  Design d = twoConesDesign();
  StaReport r = analyze(d, baseCfg());
  EXPECT_GE(r.analysisSeconds, 0.0);
}

}  // namespace
}  // namespace xlv::sta
