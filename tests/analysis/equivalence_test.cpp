// Equivalence-check utility: cross-level and cross-design comparisons with
// divergence localization.
#include <gtest/gtest.h>

#include "analysis/equivalence.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "mutation/adam.h"
#include "sta/sta.h"

namespace xlv::analysis {
namespace {

using namespace xlv::ir;

Design counterDesign(std::uint64_t bug = 0) {
  ModuleBuilder mb("ctr");
  auto clk = mb.clock("clk");
  auto en = mb.in("en", 1);
  auto q = mb.out("q", 8);
  mb.onRising("p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(en) == 1u, [&] { p.assign(q, Ex(q) + lit(8, 1 + bug)); });
  });
  return elaborate(*mb.finish());
}

Testbench enableAll(std::uint64_t cycles) {
  Testbench tb;
  tb.cycles = cycles;
  tb.drive = [](std::uint64_t, const PortSetter& set) { set("en", 1); };
  return tb;
}

TEST(Equivalence, RtlVsTlmOnSameDesign) {
  EquivalenceConfig cfg;
  cfg.scope = CompareScope::AllSignals;
  auto rep = checkRtlVsTlm(counterDesign(), enableAll(30), cfg);
  EXPECT_TRUE(rep.equivalent);
  EXPECT_EQ(30u, rep.cyclesCompared);
  EXPECT_FALSE(rep.firstDivergence.has_value());
}

TEST(Equivalence, DivergentDesignsLocalized) {
  EquivalenceConfig cfg;
  auto rep = checkTlmVsTlm(counterDesign(0), counterDesign(1), enableAll(20), cfg);
  EXPECT_FALSE(rep.equivalent);
  ASSERT_TRUE(rep.firstDivergence.has_value());
  EXPECT_EQ("q", rep.firstDivergence->symbol);
  EXPECT_EQ(0u, rep.firstDivergence->cycle);  // differs from the first increment
  EXPECT_NE(rep.firstDivergence->lhsValue, rep.firstDivergence->rhsValue);
}

TEST(Equivalence, DivergenceCapRespected) {
  EquivalenceConfig cfg;
  cfg.maxDivergences = 3;
  auto rep = checkTlmVsTlm(counterDesign(0), counterDesign(1), enableAll(50), cfg);
  EXPECT_EQ(3u, rep.divergences.size());
  EXPECT_LE(rep.cyclesCompared, 50u);
}

TEST(Equivalence, CleanVsAugmentedIgnoringSensorPorts) {
  // The insertion-preserves-functionality invariant, via the public API.
  ModuleBuilder mb("ip");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 8);
  auto dout = mb.out("dout", 8);
  auto r = mb.signal("r", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) + Ex(r)); });
  mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, r); });
  auto ip = mb.finish();

  sta::StaConfig staCfg;
  staCfg.clockPeriodPs = 1000;
  staCfg.thresholdFraction = 1.0;
  auto ins = insertion::insertSensors(*ip, sta::analyze(elaborate(*ip), staCfg), {});

  Testbench tb;
  tb.cycles = 25;
  tb.drive = [](std::uint64_t c, const PortSetter& set) {
    set("din", (3 * c + 1) & 0xFF);
    set("recovery_en", 1);
  };
  EquivalenceConfig cfg;
  auto rep = checkTlmVsTlm(elaborate(*ip), elaborate(*ins.augmented), tb, cfg,
                           {"metric_ok"});
  EXPECT_TRUE(rep.equivalent);
}

TEST(Equivalence, InjectedInactiveEqualsClean) {
  Design d = counterDesign();
  auto injected = mutation::injectMutants(d, {{"q", mutation::MutantKind::MinDelay, 0}});
  EquivalenceConfig cfg;
  cfg.scope = CompareScope::AllSignals;
  auto rep = checkCleanVsInjected(d, injected, enableAll(30), cfg);
  EXPECT_TRUE(rep.equivalent) << (rep.firstDivergence ? rep.firstDivergence->symbol : "");
}

}  // namespace
}  // namespace xlv::analysis
