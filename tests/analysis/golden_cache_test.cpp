// Golden-trace cache: key discrimination (distinct hfRatio / cycles /
// testbench must miss), concurrent-access safety (one recording per key,
// whatever the race), and cached-vs-uncached report equality.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/golden_cache.h"
#include "analysis/mutation_analysis.h"
#include "core/flow.h"
#include "ips/case_study.h"
#include "util/once_cache.h"

namespace xlv::analysis {
namespace {

struct Fixture {
  ips::CaseStudy cs;
  core::FlowReport flow;
  Testbench tb;
  AnalysisConfig cfg;

  explicit Fixture(std::uint64_t cycles = 80) {
    cs = ips::buildFilterCase();
    core::FlowOptions opts;
    opts.testbenchCycles = cycles;
    core::stageElaborate(cs, opts, flow);
    core::stageInsertion(cs, opts, flow);
    core::stageInjection(cs, opts, flow);
    tb = cs.testbench;
    tb.cycles = cycles;
    cfg.hfRatio = flow.hfRatio;
    cfg.sensorKind = opts.sensorKind;
  }

  std::string key() const {
    return goldenTraceKey(flow.augmentedDesign, flow.sensors, tb, cfg, "4s");
  }
};

TEST(GoldenCacheKey, IdenticalInputsAgreeDistinctInputsMiss) {
  const Fixture a;
  EXPECT_EQ(a.key(), Fixture().key());  // fully re-derived, same key

  Fixture cycles;
  cycles.tb.cycles = 81;
  EXPECT_NE(a.key(), cycles.key());

  Fixture hf;
  hf.cfg.hfRatio = 7;
  EXPECT_NE(a.key(), hf.key());

  Fixture tbName;
  tbName.tb.name = "other_stimulus";
  EXPECT_NE(a.key(), tbName.key());

  Fixture seed;
  seed.tb.seed ^= 1;
  EXPECT_NE(a.key(), seed.key());

  Fixture stim;
  stim.cfg.stimulusId = 3;
  EXPECT_NE(a.key(), stim.key());

  EXPECT_NE(a.key(), goldenTraceKey(a.flow.augmentedDesign, a.flow.sensors, a.tb, a.cfg, "2s"));

  // A different design (the clean IP instead of the augmented one) misses.
  EXPECT_NE(designFingerprint(a.flow.augmentedDesign, 0),
            designFingerprint(a.flow.cleanDesign, 0));
}

TEST(GoldenCache, ConcurrentRequestsRecordExactlyOnce) {
  util::OnceCache<GoldenTrace> cache;
  const Fixture f;
  std::atomic<int> recordings{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const GoldenTrace>> traces(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      traces[t] = cache.getOrBuild(f.key(), [&] {
        recordings.fetch_add(1);
        return recordGoldenTrace<hdt::FourState>(f.flow.augmentedDesign, f.flow.sensors,
                                                 f.tb, f.cfg);
      });
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(1, recordings.load());
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(traces[0], traces[t]);  // same object
  EXPECT_EQ(1u, cache.stats().misses);
  EXPECT_EQ(static_cast<std::size_t>(kThreads - 1), cache.stats().hits);
}

TEST(GoldenCache, CachedAnalysisIsBitIdenticalToUncached) {
  goldenTraceCache().clear();
  const Fixture f;

  auto analyze = [&](bool useCache) {
    AnalysisConfig cfg = f.cfg;
    cfg.useGoldenCache = useCache;
    return analyzeMutations<hdt::FourState>(f.flow.augmentedDesign, f.flow.injected,
                                            f.flow.sensors, f.tb, cfg);
  };

  const AnalysisReport uncached = analyze(false);
  EXPECT_FALSE(uncached.goldenFromCache);

  const AnalysisReport first = analyze(true);
  EXPECT_FALSE(first.goldenFromCache);  // cold cache: this run recorded
  const AnalysisReport second = analyze(true);
  EXPECT_TRUE(second.goldenFromCache);
  EXPECT_EQ(1u, goldenTraceCache().stats().hits);

  ASSERT_GT(uncached.total(), 0);
  EXPECT_TRUE(uncached.sameResults(first));
  EXPECT_TRUE(uncached.sameResults(second));
  // The ledger shows the saving: a hit spends (almost) no golden time.
  EXPECT_GT(first.goldenSeconds, 0.0);
  EXPECT_LT(second.goldenSeconds, first.goldenSeconds);
}

TEST(OnceCache, BuildFailureIsRetriedNotCached) {
  util::OnceCache<int> cache;
  EXPECT_THROW(cache.getOrBuild("k", []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  auto v = cache.getOrBuild("k", [] { return 42; });
  ASSERT_NE(nullptr, v);
  EXPECT_EQ(42, *v);
}

}  // namespace
}  // namespace xlv::analysis
