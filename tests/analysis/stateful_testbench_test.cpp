// Stateful-protocol testbench case study (ROADMAP coverage item): the
// req/ack Handshake IP ships a makeDriver-only testbench — a protocol FSM
// with an incremental PRNG — so every engine of the flow must go through
// per-task seeded driver sessions. This is the end-to-end exercise of
// Testbench::makeDriver beyond the API-level tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/mutation_analysis.h"
#include "core/flow.h"
#include "ips/case_study.h"

namespace xlv::analysis {
namespace {

using insertion::SensorKind;

/// Replay a driver session and record every (cycle, port, value) it emits.
std::vector<std::uint64_t> replay(const DriveFn& drive, std::uint64_t cycles) {
  std::vector<std::uint64_t> log;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    drive(c, [&](const std::string& name, std::uint64_t v) {
      log.push_back(c * 1000003ULL + std::hash<std::string>{}(name) % 997ULL * 31ULL + v);
    });
  }
  return log;
}

TEST(StatefulTestbench, DriverSessionsReplayBySeedAndDivergeAcrossSeeds) {
  const ips::CaseStudy cs = ips::buildHandshakeCase();
  ASSERT_TRUE(cs.testbench.makeDriver);
  ASSERT_FALSE(cs.testbench.drive);  // makeDriver-only by design

  // Same stimulus id -> fresh sessions, identical replayed inputs.
  EXPECT_EQ(replay(cs.testbench.driverForTask(0), 200),
            replay(cs.testbench.driverForTask(0), 200));
  // Different stimulus ids -> different traffic shapes (seeded PRNG).
  EXPECT_NE(replay(cs.testbench.driverForTask(0), 200),
            replay(cs.testbench.driverForTask(1), 200));
}

TEST(StatefulTestbench, HandshakeProtocolReachesAckAndProgressesState) {
  // Simulate the clean design directly and check the protocol actually
  // cycles: ack rises, drops after req release, and the checksum moves.
  const ips::CaseStudy cs = ips::buildHandshakeCase();
  core::FlowOptions opts;
  core::FlowReport flow;
  core::stageElaborate(cs, opts, flow);

  abstraction::TlmIpModel<hdt::FourState> model(flow.cleanDesign,
                                                abstraction::TlmModelConfig{0, false});
  const DriveFn drive = cs.testbench.driverForTask(0);
  const ir::SymbolId ackSym = flow.cleanDesign.findSymbol("ack");
  const ir::SymbolId chkSym = flow.cleanDesign.findSymbol("checksum");
  ASSERT_NE(ir::kNoSymbol, ackSym);
  ASSERT_NE(ir::kNoSymbol, chkSym);

  int ackRises = 0, ackFalls = 0;
  std::uint64_t lastAck = 0;
  std::map<std::uint64_t, int> checksums;
  for (std::uint64_t c = 0; c < 400; ++c) {
    drive(c, [&](const std::string& name, std::uint64_t v) { model.setInputByName(name, v); });
    model.scheduler();
    const std::uint64_t a = model.valueUint(ackSym);
    ackRises += (a == 1 && lastAck == 0) ? 1 : 0;
    ackFalls += (a == 0 && lastAck == 1) ? 1 : 0;
    lastAck = a;
    ++checksums[model.valueUint(chkSym)];
  }
  EXPECT_GE(ackRises, 10) << "handshake should complete many transactions in 400 cycles";
  EXPECT_GE(ackFalls, 10) << "four-phase release must drop ack after req";
  EXPECT_GE(checksums.size(), 5u) << "each transaction should perturb the checksum";
}

TEST(StatefulTestbench, EndToEndMutationAnalysisRazor) {
  ips::CaseStudy cs = ips::buildHandshakeCase();
  core::FlowOptions opts;
  opts.sensorKind = SensorKind::Razor;
  opts.analysisThreads = 2;
  opts.measureRtl = false;
  opts.measureOptimized = false;

  const core::FlowReport r = core::runFlow(cs, opts);
  ASSERT_GT(r.sensors.size(), 0u) << "STA must bin the MAC endpoints critical";
  ASSERT_GT(r.analysis.total(), 0);
  // The random traffic exercises every monitored endpoint: the full mutant
  // set is killed and every sensor observes its delay.
  EXPECT_DOUBLE_EQ(100.0, r.analysis.killedPct());
  EXPECT_EQ(r.analysis.total(), r.analysis.countDetected());

  // Thread-count invariance holds for the stateful testbench too (per-task
  // sessions replay the same stimulus at any thread count).
  analysis::Testbench tb = cs.testbench;
  tb.cycles = core::flowCycles(cs, opts);
  AnalysisConfig acfg;
  acfg.sensorKind = opts.sensorKind;
  acfg.hfRatio = r.hfRatio;
  acfg.threads = 1;
  const AnalysisReport serial = analyzeMutations<hdt::FourState>(
      r.augmentedDesign, r.injected, r.sensors, tb, acfg);
  acfg.threads = 8;
  const AnalysisReport parallel = analyzeMutations<hdt::FourState>(
      r.augmentedDesign, r.injected, r.sensors, tb, acfg);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].killed, parallel.results[i].killed) << i;
    EXPECT_EQ(serial.results[i].detected, parallel.results[i].detected) << i;
    EXPECT_EQ(serial.results[i].errorRisen, parallel.results[i].errorRisen) << i;
    EXPECT_EQ(serial.results[i].measuredDelay, parallel.results[i].measuredDelay) << i;
  }
}

TEST(StatefulTestbench, EndToEndMutationAnalysisCounter) {
  ips::CaseStudy cs = ips::buildHandshakeCase();
  core::FlowOptions opts;
  opts.sensorKind = SensorKind::Counter;
  opts.measureRtl = false;
  opts.measureOptimized = false;

  const core::FlowReport r = core::runFlow(cs, opts);
  ASSERT_GT(r.sensors.size(), 0u);
  ASSERT_GT(r.analysis.total(), 0);
  EXPECT_GT(r.analysis.countDetected(), 0)
      << "counter sensors must measure delays under handshake traffic";
  EXPECT_GT(r.analysis.killedPct(), 0.0);
}

}  // namespace
}  // namespace xlv::analysis
