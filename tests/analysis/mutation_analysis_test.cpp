// Mutation analysis harness: kill/detect/risen/corrected classification and
// the Table 5 mutant-set generators.
#include <gtest/gtest.h>

#include "analysis/mutation_analysis.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "sta/sta.h"

namespace xlv::analysis {
namespace {

using namespace xlv::ir;
using insertion::InsertionConfig;
using insertion::SensorKind;
using mutation::MutantKind;

constexpr std::uint64_t kPeriod = 1200;
constexpr int kRatio = 10;

struct Rig {
  Design design;
  std::vector<insertion::InsertedSensor> sensors;
  Testbench tb;

  explicit Rig(SensorKind kind) {
    ModuleBuilder mb("dut");
    auto clk = mb.clock("clk");
    auto din = mb.in("din", 8);
    auto dout = mb.out("dout", 8);
    auto r = mb.signal("r", 8);
    mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) + Ex(r)); });
    mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, r); });
    auto ip = mb.finish();

    sta::StaConfig staCfg;
    staCfg.clockPeriodPs = kPeriod;
    staCfg.thresholdFraction = 1.0;
    auto report = sta::analyze(elaborate(*ip), staCfg);
    InsertionConfig icfg;
    icfg.kind = kind;
    auto ins = insertion::insertSensors(*ip, report, icfg);
    design = elaborate(*ins.augmented);
    sensors = ins.sensors;

    tb.name = "toggler";
    tb.cycles = 40;
    tb.drive = [](std::uint64_t, const PortSetter& set) { set("din", 3); };
  }
};

TEST(MutationAnalysis, RazorMutantsKilledRisenCorrected) {
  Rig rig(SensorKind::Razor);
  auto specs = razorMutantSet(rig.sensors);
  ASSERT_EQ(2u, specs.size());  // min + max per sensor
  auto injected = mutation::injectMutants(rig.design, specs);

  AnalysisConfig cfg;
  cfg.sensorKind = SensorKind::Razor;
  auto report = analyzeMutations<hdt::FourState>(rig.design, injected, rig.sensors, rig.tb, cfg);

  ASSERT_EQ(2, report.total());
  EXPECT_DOUBLE_EQ(100.0, report.killedPct());
  EXPECT_DOUBLE_EQ(100.0, report.risenPct());
  EXPECT_DOUBLE_EQ(100.0, report.correctedPct());
  EXPECT_DOUBLE_EQ(100.0, report.mutationScorePct());
  for (const auto& r : report.results) {
    EXPECT_TRUE(r.killed);
    EXPECT_TRUE(r.detected);
    EXPECT_TRUE(r.correctionChecked);
  }
}

TEST(MutationAnalysis, CounterMutantsMeasuredAndThresholded) {
  Rig rig(SensorKind::Counter);
  // One below, one at, one above the 8-period threshold.
  std::vector<mutation::MutantSpec> specs = {
      {"r", MutantKind::DeltaDelay, 3},
      {"r", MutantKind::DeltaDelay, 8},
      {"r", MutantKind::DeltaDelay, 9},
  };
  auto injected = mutation::injectMutants(rig.design, specs);
  AnalysisConfig cfg;
  cfg.hfRatio = kRatio;
  cfg.sensorKind = SensorKind::Counter;
  auto report = analyzeMutations<hdt::FourState>(rig.design, injected, rig.sensors, rig.tb, cfg);

  ASSERT_EQ(3, report.total());
  EXPECT_DOUBLE_EQ(100.0, report.killedPct());
  EXPECT_EQ(3u, report.results[0].measuredDelay);
  EXPECT_EQ(8u, report.results[1].measuredDelay);
  EXPECT_EQ(9u, report.results[2].measuredDelay);
  EXPECT_FALSE(report.results[0].errorRisen);  // below threshold: tolerable
  EXPECT_FALSE(report.results[1].errorRisen);  // at threshold: tolerable
  EXPECT_TRUE(report.results[2].errorRisen);   // above threshold
  // Counter has no correction: "n.a." in Table 5.
  EXPECT_DOUBLE_EQ(-1.0, report.correctedPct());
}

TEST(MutationAnalysis, UntoggledTargetSurvives) {
  Rig rig(SensorKind::Razor);
  rig.tb.drive = [](std::uint64_t, const PortSetter& set) { set("din", 0); };  // r frozen
  auto injected = mutation::injectMutants(rig.design, razorMutantSet(rig.sensors));
  AnalysisConfig cfg;
  auto report = analyzeMutations<hdt::FourState>(rig.design, injected, rig.sensors, rig.tb, cfg);
  // The testbench fails to stress the mutants: survived, not detected
  // (the paper's "testbench has failed to generate a proper input sequence").
  EXPECT_DOUBLE_EQ(0.0, report.killedPct());
  EXPECT_DOUBLE_EQ(0.0, report.risenPct());
}

TEST(MutationAnalysis, RazorMutantSetIsTwoPerSensor) {
  Rig rig(SensorKind::Razor);
  auto specs = razorMutantSet(rig.sensors);
  EXPECT_EQ(rig.sensors.size() * 2, specs.size());
  int mins = 0, maxs = 0;
  for (const auto& s : specs) {
    mins += s.kind == MutantKind::MinDelay ? 1 : 0;
    maxs += s.kind == MutantKind::MaxDelay ? 1 : 0;
  }
  EXPECT_EQ(mins, maxs);
}

TEST(MutationAnalysis, CounterMutantSetIsThreePerSensorWithinRange) {
  Rig rig(SensorKind::Counter);
  auto specs = counterMutantSet(rig.sensors, kPeriod, kRatio);
  EXPECT_EQ(rig.sensors.size() * 3, specs.size());
  for (const auto& s : specs) {
    EXPECT_EQ(MutantKind::DeltaDelay, s.kind);
    EXPECT_GE(s.deltaTicks, 1);
    EXPECT_LE(s.deltaTicks, kRatio);
  }
}

TEST(MutationAnalysis, ReportCountsConsistent) {
  Rig rig(SensorKind::Razor);
  auto injected = mutation::injectMutants(rig.design, razorMutantSet(rig.sensors));
  AnalysisConfig cfg;
  auto report = analyzeMutations<hdt::FourState>(rig.design, injected, rig.sensors, rig.tb, cfg);
  EXPECT_EQ(report.total(), report.countKilled());
  EXPECT_EQ(rig.tb.cycles, report.cyclesPerRun);
  EXPECT_GT(report.simSeconds, 0.0);
}

}  // namespace
}  // namespace xlv::analysis
