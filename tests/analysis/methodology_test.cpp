// Methodology-level tests: the paper's "detection only" vs "detection and
// correction" paradigms (Section 2.1), and failure injection — the flow
// must FLAG defective sensor integrations, not silently pass them.
#include <gtest/gtest.h>

#include "abstraction/tlm_model.h"
#include "analysis/mutation_analysis.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "sta/sta.h"

namespace xlv::analysis {
namespace {

using namespace xlv::ir;
using abstraction::TlmIpModel;
using abstraction::TlmModelConfig;
using insertion::InsertionConfig;
using insertion::SensorKind;
using mutation::MutantKind;

struct Dut {
  Design design;
  std::vector<insertion::InsertedSensor> sensors;

  explicit Dut(SensorKind kind, InsertionConfig icfg = {}) {
    ModuleBuilder mb("dut");
    auto clk = mb.clock("clk");
    auto din = mb.in("din", 8);
    auto dout = mb.out("dout", 8);
    auto r = mb.signal("r", 8);
    mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) ^ Ex(r)); });
    mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, r); });
    auto ip = mb.finish();
    sta::StaConfig staCfg;
    staCfg.clockPeriodPs = 1200;
    staCfg.thresholdFraction = 1.0;
    auto report = sta::analyze(elaborate(*ip), staCfg);
    icfg.kind = kind;
    auto ins = insertSensors(*ip, report, icfg);
    design = elaborate(*ins.augmented);
    sensors = ins.sensors;
  }
};

// Section 2.1 "detection only": with the recovery input low, the Razor
// flags errors (E rises) but performs no correction — q keeps presenting
// the (possibly stale) sampled data.
TEST(Paradigm, DetectionOnlyRazorFlagsWithoutCorrecting) {
  Dut dut(SensorKind::Razor);
  auto injected = mutation::injectMutants(dut.design, {{"r", MutantKind::MinDelay, 0}});
  TlmIpModel<hdt::FourState> m(injected, TlmModelConfig{0, false});
  m.activateMutant(0);

  bool risen = false;
  bool qEverDiffersFromShadow = false;
  const SymbolId q = dut.design.findSymbol("rz_q_0");
  const SymbolId shadow = dut.design.findSymbol("razor0.shadow");
  const SymbolId mainFf = dut.design.findSymbol("razor0.main_ff");
  ASSERT_NE(kNoSymbol, shadow);
  for (int c = 0; c < 20; ++c) {
    m.setInputByName("din", 7);
    m.setInputByName("recovery_en", 0);  // detection only
    m.scheduler();
    if (m.valueUintByName("rz_e_0") == 1) risen = true;
    // Without recovery, q tracks the main FF (stale), never the shadow.
    if (m.valueUint(q) != m.valueUint(mainFf)) qEverDiffersFromShadow = true;
  }
  EXPECT_TRUE(risen);
  EXPECT_FALSE(qEverDiffersFromShadow) << "q must mirror the main FF when R=0";
  (void)shadow;
}

TEST(Paradigm, DetectionAndCorrectionRecoversShadowValue) {
  // A *transient* timing failure shows the replay: at the first healthy
  // cycle after the error, q presents the shadow-caught value the main FF
  // missed, diverging from the main FF for exactly that cycle.
  Dut dut(SensorKind::Razor);
  auto injected = mutation::injectMutants(dut.design, {{"r", MutantKind::MinDelay, 0}});
  TlmIpModel<hdt::FourState> m(injected, TlmModelConfig{0, false});
  const SymbolId q = dut.design.findSymbol("rz_q_0");
  const SymbolId mainFf = dut.design.findSymbol("razor0.main_ff");
  const SymbolId r = dut.design.findSymbol("r");

  m.activateMutant(0);  // delay present for cycles 0..7
  std::uint64_t missedValue = 0;
  for (int c = 0; c < 8; ++c) {
    m.setInputByName("din", 7);
    m.setInputByName("recovery_en", 1);
    m.scheduler();
    missedValue = m.valueUint(r);  // the late-arriving true value
  }
  EXPECT_EQ(1u, m.valueUintByName("rz_e_0"));

  m.activateMutant(-1);  // silicon healthy again
  m.setInputByName("din", 7);
  m.setInputByName("recovery_en", 1);
  m.scheduler();
  // Replay cycle: q presents the caught (shadow) value, not the main FF's.
  EXPECT_NE(m.valueUint(q), m.valueUint(mainFf));
  EXPECT_EQ(missedValue, m.valueUint(q));
}

// Failure injection: a defectively integrated sensor (Counter wired to a
// critical bit that never toggles) must show up as undetected mutants in the
// analysis report — this is precisely what the verification step exists to
// catch (paper Section 7's "the sensor failed at verifying the delay").
TEST(FailureInjection, MiswiredCounterIsFlaggedByAnalysis) {
  InsertionConfig bad;
  bad.monitoredBit = 7;  // r toggles only in bits 0..2 under din=7
  Dut dut(SensorKind::Counter, bad);

  Testbench tb;
  tb.cycles = 40;
  tb.drive = [](std::uint64_t, const PortSetter& set) { set("din", 7); };

  auto injected = mutation::injectMutants(dut.design, {{"r", MutantKind::DeltaDelay, 9}});
  AnalysisConfig cfg;
  cfg.hfRatio = 10;
  cfg.sensorKind = SensorKind::Counter;
  auto report = analyzeMutations<hdt::FourState>(dut.design, injected, dut.sensors, tb, cfg);

  ASSERT_EQ(1, report.total());
  EXPECT_FALSE(report.results[0].detected) << "the defective wiring must be visible";
  EXPECT_FALSE(report.results[0].errorRisen);
  EXPECT_EQ(0u, report.results[0].measuredDelay);
}

// The same configuration with a correctly chosen bit detects everything —
// the control for the failure-injection case above.
TEST(FailureInjection, CorrectlyWiredCounterDetects) {
  InsertionConfig good;
  good.monitoredBit = 0;
  Dut dut(SensorKind::Counter, good);
  Testbench tb;
  tb.cycles = 40;
  tb.drive = [](std::uint64_t, const PortSetter& set) { set("din", 7); };
  auto injected = mutation::injectMutants(dut.design, {{"r", MutantKind::DeltaDelay, 9}});
  AnalysisConfig cfg;
  cfg.hfRatio = 10;
  cfg.sensorKind = SensorKind::Counter;
  auto report = analyzeMutations<hdt::FourState>(dut.design, injected, dut.sensors, tb, cfg);
  EXPECT_TRUE(report.results[0].detected);
  EXPECT_TRUE(report.results[0].errorRisen);
  EXPECT_EQ(9u, report.results[0].measuredDelay);
}

// A testbench that never exercises the monitored register leaves mutants
// survived — the paper's diagnosis "the testbench has failed to generate a
// proper input sequence" — and the report exposes it through the score.
TEST(FailureInjection, InadequateTestbenchLowersMutationScore) {
  Dut dut(SensorKind::Razor);
  Testbench frozen;
  frozen.cycles = 40;
  frozen.drive = [](std::uint64_t, const PortSetter& set) { set("din", 0); };
  auto injected = mutation::injectMutants(dut.design, razorMutantSet(dut.sensors));
  AnalysisConfig cfg;
  auto report = analyzeMutations<hdt::FourState>(dut.design, injected, dut.sensors, frozen, cfg);
  EXPECT_LT(report.mutationScorePct(), 100.0);
  EXPECT_EQ(0, report.countDetected());
}

}  // namespace
}  // namespace xlv::analysis
