// OnceCache under contention: N threads x M keys hammering getOrBuild with
// a throwing first build per key — exactly-once successful builds,
// retry-after-throw, ledger consistency (hits + misses == successful
// calls), and the LRU capacity policy.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/once_cache.h"

namespace xlv::util {
namespace {

TEST(OnceCacheStress, ExactlyOnceBuildsWithThrowingFirstAttempt) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 24;
  constexpr int kRounds = 3;

  OnceCache<int> cache;
  std::vector<std::unique_ptr<std::atomic<int>>> attempts;     // builds started
  std::vector<std::unique_ptr<std::atomic<int>>> successes;    // builds returned
  std::vector<std::unique_ptr<std::atomic<bool>>> threwOnce;   // first-attempt poison
  for (int k = 0; k < kKeys; ++k) {
    attempts.push_back(std::make_unique<std::atomic<int>>(0));
    successes.push_back(std::make_unique<std::atomic<int>>(0));
    threwOnce.push_back(std::make_unique<std::atomic<bool>>(false));
  }

  std::atomic<int> successfulCalls{0};
  std::atomic<int> caughtThrows{0};
  std::atomic<int> wrongValues{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kKeys; ++i) {
          // Different traversal order per thread maximizes cross-key races.
          const int k = (i * 7 + t * 3 + round) % kKeys;
          const std::string key = "key-" + std::to_string(k);
          // Retry until served: the first build of each key throws, and
          // call_once must hand the build to a later caller, never cache
          // the failure.
          for (;;) {
            try {
              auto v = cache.getOrBuild(key, [&]() -> int {
                attempts[k]->fetch_add(1);
                if (!threwOnce[k]->exchange(true)) {
                  throw std::runtime_error("first build of " + key + " fails");
                }
                successes[k]->fetch_add(1);
                return 1000 + k;
              });
              successfulCalls.fetch_add(1);
              if (v == nullptr || *v != 1000 + k) wrongValues.fetch_add(1);
              break;
            } catch (const std::runtime_error&) {
              caughtThrows.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(0, wrongValues.load());
  int totalAttempts = 0;
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(1, successes[k]->load()) << "key " << k << " must build exactly once";
    // One throwing attempt + one successful retry, no more.
    EXPECT_EQ(2, attempts[k]->load()) << "key " << k;
    totalAttempts += attempts[k]->load();
  }
  EXPECT_EQ(kKeys, caughtThrows.load()) << "each key throws exactly one caller";

  // Ledger consistency: every *successful* call is exactly one hit or one
  // miss; misses == successful builds (throwing attempts count neither).
  const OnceCacheStats stats = cache.stats();
  EXPECT_EQ(static_cast<std::size_t>(kKeys), stats.misses);
  EXPECT_EQ(static_cast<std::size_t>(successfulCalls.load()), stats.hits + stats.misses);
  EXPECT_EQ(static_cast<std::size_t>(kThreads * kRounds * kKeys), stats.hits + stats.misses);
  EXPECT_EQ(0u, stats.evictions);
  EXPECT_EQ(static_cast<std::size_t>(kKeys), cache.size());
  (void)totalAttempts;
}

TEST(OnceCacheStress, CapacityEvictsLeastRecentlyUsed) {
  OnceCache<int> cache;
  cache.setCapacity(2);
  EXPECT_EQ(1, *cache.getOrBuild("k1", [] { return 1; }));
  EXPECT_EQ(2, *cache.getOrBuild("k2", [] { return 2; }));
  // Touch k1: k2 becomes the LRU entry.
  EXPECT_EQ(1, *cache.getOrBuild("k1", [] { return -1; }));
  EXPECT_EQ(3, *cache.getOrBuild("k3", [] { return 3; }));

  EXPECT_EQ(2u, cache.size());
  EXPECT_NE(nullptr, cache.find("k1"));
  EXPECT_NE(nullptr, cache.find("k3"));
  EXPECT_EQ(nullptr, cache.find("k2")) << "k2 was least recently used";
  EXPECT_EQ(1u, cache.stats().evictions);

  // An evicted key rebuilds (counts as a fresh miss), evicting the next LRU.
  bool wasHit = true;
  EXPECT_EQ(22, *cache.getOrBuild("k2", [] { return 22; }, &wasHit));
  EXPECT_FALSE(wasHit);
  EXPECT_EQ(2u, cache.size());

  // Shrinking the cap evicts immediately.
  cache.setCapacity(1);
  EXPECT_EQ(1u, cache.size());

  // Capacity 0 = unlimited again.
  cache.setCapacity(0);
  cache.getOrBuild("k4", [] { return 4; });
  cache.getOrBuild("k5", [] { return 5; });
  EXPECT_EQ(3u, cache.size());
}

TEST(OnceCacheStress, FailedBuildEntriesDoNotPinTheCapacityCap) {
  OnceCache<int> cache;
  cache.setCapacity(2);
  // A stream of keys whose builds ALWAYS throw — no successful build ever
  // runs the eviction path for them — must still not grow the map past the
  // cap: an idle failed entry (null value, nobody inside) is evictable,
  // and the throw path enforces the cap itself.
  for (int i = 0; i < 16; ++i) {
    EXPECT_THROW(cache.getOrBuild("poison-" + std::to_string(i),
                                  []() -> int { throw std::runtime_error("boom"); }),
                 std::runtime_error);
    EXPECT_LE(cache.size(), 2u) << "after failing key " << i;
  }
  // Mixed failure/success streams stay bounded too.
  for (int i = 0; i < 8; ++i) {
    EXPECT_THROW(cache.getOrBuild("poison2-" + std::to_string(i),
                                  []() -> int { throw std::runtime_error("boom"); }),
                 std::runtime_error);
    cache.getOrBuild("good-" + std::to_string(i), [i] { return i; });
    EXPECT_LE(cache.size(), 2u) << "iteration " << i;
  }
  // A previously failed key retries cleanly after re-insertion.
  EXPECT_EQ(5, *cache.getOrBuild("poison-0", [] { return 5; }));
}

TEST(OnceCacheStress, EvictionNeverDropsAnInFlightBuild) {
  OnceCache<int> cache;
  cache.setCapacity(1);

  std::mutex m;
  std::condition_variable cv;
  bool gateOpen = false;
  bool building = false;

  // Thread A starts building "slow" and blocks inside the build.
  std::thread a([&] {
    cache.getOrBuild("slow", [&] {
      {
        std::lock_guard<std::mutex> lock(m);
        building = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return gateOpen; });
      return 7;
    });
  });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return building; });
  }

  // While "slow" is in flight, fill and overflow the cache: the in-flight
  // entry must never be a victim.
  cache.getOrBuild("fast1", [] { return 1; });
  cache.getOrBuild("fast2", [] { return 2; });
  {
    std::lock_guard<std::mutex> lock(m);
    gateOpen = true;
  }
  cv.notify_all();
  a.join();

  // The slow build completed exactly once and its value is correct: either
  // still resident or evicted afterwards, but never corrupted.
  bool wasHit = false;
  auto v = cache.getOrBuild("slow", [] { return -1; }, &wasHit);
  ASSERT_NE(nullptr, v);
  EXPECT_TRUE(*v == 7 || (*v == -1 && !wasHit))
      << "in-flight build must publish 7, or a post-eviction rebuild runs fresh";
}

}  // namespace
}  // namespace xlv::util
