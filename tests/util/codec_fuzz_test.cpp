// Fuzz-style (seeded, deterministic) conformance suite for the util/codec.h
// wire format through its real schemas: randomized specs/results round-trip
// byte-stably (encode -> decode -> encode reproduces the input bytes), every
// single-byte truncation raises DecodeError, and every single-byte
// corruption either raises DecodeError or decodes to a value whose
// re-encoding IS the corrupted input — i.e. the decoder is the exact
// inverse of the encoder and never maps non-canonical bytes onto a
// different value ("mis-decoding"). Byte-level corruption that survives
// decoding (e.g. a flipped character inside a string payload) is caught one
// layer up by the artifact store's payload fingerprint.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "campaign/serialize.h"
#include "campaign/shard.h"
#include "util/codec.h"
#include "util/prng.h"

namespace xlv {
namespace {

using util::DecodeError;
using util::Prng;

// --- randomized domain values ------------------------------------------------

/// Random bytes including the format's structural characters ('=', ':',
/// '\n') and non-ASCII — string payloads are length-prefixed raw bytes, so
/// none of these may confuse the framing.
std::string randomString(Prng& rng) {
  static const char alphabet[] = "abcXYZ019=:\n|\t\\\"%a-+ ";
  const std::size_t len = rng.below(24);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.chance(0.15)) {
      s.push_back(static_cast<char>(rng.below(256)));
    } else {
      s.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    }
  }
  return s;
}

double randomDouble(Prng& rng) {
  switch (rng.below(8)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return 1.0 / 3.0;
    case 3: return -1e300;
    case 4: return 5e-324;  // smallest denormal
    case 5: return static_cast<double>(rng.next()) * 1e-9;
    default: return rng.uniform() * (rng.chance(0.5) ? -1.0 : 1.0);
  }
}

mutation::MutantKind randomKind(Prng& rng) {
  switch (rng.below(3)) {
    case 0: return mutation::MutantKind::MinDelay;
    case 1: return mutation::MutantKind::MaxDelay;
    default: return mutation::MutantKind::DeltaDelay;
  }
}

analysis::MutantResult randomMutantResult(Prng& rng) {
  analysis::MutantResult m;
  m.id = static_cast<int>(rng.below(1000)) - 1;
  m.endpoint = randomString(rng);
  m.kind = randomKind(rng);
  m.deltaTicks = static_cast<int>(rng.range(-16, 16));
  m.killed = rng.chance(0.5);
  m.detected = rng.chance(0.5);
  m.errorRisen = rng.chance(0.5);
  m.corrected = rng.chance(0.5);
  m.correctionChecked = rng.chance(0.5);
  m.measuredDelay = rng.next();
  return m;
}

analysis::AnalysisReport randomAnalysisReport(Prng& rng) {
  analysis::AnalysisReport a;
  a.cyclesPerRun = rng.below(100000);
  a.cyclesSimulated = rng.below(100000);
  a.cyclesSkipped = rng.below(100000);
  a.simSeconds = randomDouble(rng);
  a.wallSeconds = randomDouble(rng);
  a.goldenSeconds = randomDouble(rng);
  a.goldenFromCache = rng.chance(0.5);
  a.goldenFromDisk = rng.chance(0.5);
  a.mutantCacheHits = static_cast<int>(rng.below(64));
  a.threadsUsed = 1 + static_cast<int>(rng.below(16));
  a.nativeCompiles = static_cast<int>(rng.below(8));
  a.nativeCacheHits = static_cast<int>(rng.below(8));
  a.batchedMutants = static_cast<int>(rng.below(256));
  const std::size_t n = rng.below(5);
  for (std::size_t i = 0; i < n; ++i) a.results.push_back(randomMutantResult(rng));
  return a;
}

campaign::CampaignResult randomCampaignResult(Prng& rng) {
  campaign::CampaignResult r;
  r.name = randomString(rng);
  r.simSeconds = randomDouble(rng);
  r.goldenSeconds = randomDouble(rng);
  r.goldenCacheHits = static_cast<int>(rng.below(16));
  r.prefixCacheHits = static_cast<int>(rng.below(16));
  r.mutantCacheHits = static_cast<int>(rng.below(64));
  r.diskHits = static_cast<int>(rng.below(64));
  r.diskStores = static_cast<int>(rng.below(64));
  r.diskEvictions = static_cast<int>(rng.below(64));
  r.cyclesSimulated = rng.below(1000000);
  r.cyclesSkipped = rng.below(1000000);
  r.nativeCompiles = static_cast<int>(rng.below(8));
  r.nativeCacheHits = static_cast<int>(rng.below(8));
  r.batchedMutants = static_cast<int>(rng.below(256));
  r.wallSeconds = randomDouble(rng);
  r.threadsUsed = 1 + static_cast<int>(rng.below(8));
  const std::size_t items = rng.below(3);
  for (std::size_t i = 0; i < items; ++i) {
    campaign::CampaignItemResult it;
    it.taskId = rng.below(100);
    it.label = randomString(rng);
    if (rng.chance(0.3)) it.error = randomString(rng);
    it.taskSeconds = randomDouble(rng);
    it.goldenSeconds = randomDouble(rng);
    it.goldenFromCache = rng.chance(0.5);
    it.prefixShared = rng.chance(0.5);
    it.report.ipName = randomString(rng);
    it.report.sensorKind = rng.chance(0.5) ? insertion::SensorKind::Razor
                                           : insertion::SensorKind::Counter;
    it.report.hfRatio = static_cast<int>(rng.below(16));
    it.report.skippedEndpoints = static_cast<int>(rng.below(8));
    it.report.sensorAreaGates = randomDouble(rng);
    it.report.sta.criticalCount = static_cast<int>(rng.below(32));
    it.report.sta.thresholdPs = randomDouble(rng);
    it.report.sta.clockPeriodPs = randomDouble(rng);
    it.report.sta.minSlackPs = randomDouble(rng);
    it.report.loc.rtlClean = static_cast<int>(rng.below(500));
    it.report.loc.rtlAugmented = static_cast<int>(rng.below(500));
    it.report.loc.tlm = static_cast<int>(rng.below(500));
    it.report.loc.tlmInjected = static_cast<int>(rng.below(500));
    const std::size_t sensors = rng.below(3);
    for (std::size_t s = 0; s < sensors; ++s) {
      it.report.sensors.push_back(insertion::InsertedSensor{
          randomString(rng), randomString(rng), randomString(rng), randomString(rng),
          randomString(rng), randomString(rng), randomDouble(rng)});
    }
    const std::size_t specs = rng.below(3);
    for (std::size_t s = 0; s < specs; ++s) {
      it.report.mutantSpecs.push_back(mutation::MutantSpec{
          randomString(rng), randomKind(rng), static_cast<int>(rng.range(-8, 8))});
    }
    it.report.analysis = randomAnalysisReport(rng);
    r.items.push_back(std::move(it));
  }
  return r;
}

core::FlowOptions randomFlowOptions(Prng& rng) {
  core::FlowOptions o;
  o.sensorKind = rng.chance(0.5) ? insertion::SensorKind::Razor
                                 : insertion::SensorKind::Counter;
  o.testbenchCycles = rng.below(4096);
  if (rng.chance(0.5)) {
    o.staCorner = sta::Corner{randomString(rng), randomDouble(rng), randomDouble(rng),
                              randomDouble(rng)};
  }
  if (rng.chance(0.5)) o.staThresholdFraction = randomDouble(rng);
  if (rng.chance(0.5)) o.staSpreadFraction = randomDouble(rng);
  if (rng.chance(0.5)) o.hfRatio = static_cast<int>(rng.below(16));
  switch (rng.below(3)) {
    case 0: o.mutantSet = core::MutantSetVariant::Full; break;
    case 1: o.mutantSet = core::MutantSetVariant::MinDelay; break;
    default: o.mutantSet = core::MutantSetVariant::MaxDelay; break;
  }
  o.mutantBegin = rng.below(64);
  o.mutantEnd = rng.below(64);
  o.useGoldenCache = rng.chance(0.5);
  o.useMutantCache = rng.chance(0.5);
  o.timingRepetitions = static_cast<int>(rng.below(8));
  o.measureRtl = rng.chance(0.5);
  o.measureTlm = rng.chance(0.5);
  o.measureOptimized = rng.chance(0.5);
  o.runMutationAnalysis = rng.chance(0.5);
  o.analysisThreads = static_cast<int>(rng.below(16));
  switch (rng.below(3)) {
    case 0: o.backend = analysis::SimBackend::Auto; break;
    case 1: o.backend = analysis::SimBackend::Interpreter; break;
    default: o.backend = analysis::SimBackend::Native; break;
  }
  o.batch = static_cast<int>(rng.below(128));
  return o;
}

campaign::CampaignSpec randomCampaignSpec(Prng& rng) {
  campaign::CampaignSpec spec;
  spec.name = randomString(rng);
  spec.executor.threads = static_cast<int>(rng.below(16));
  spec.executor.chunkSize = static_cast<int>(rng.below(16));
  static const char* const kCases[] = {"Plasma", "DSP", "Filter", "Handshake"};
  const std::size_t items = rng.below(4);
  for (std::size_t i = 0; i < items; ++i) {
    campaign::CampaignItem item;
    // Only the case NAME is encoded (the decoder rebuilds the case study
    // from it), so the generator skips the expensive builders.
    item.caseStudy.name = kCases[rng.below(4)];
    item.label = randomString(rng);
    item.prefixKey = randomString(rng);
    item.options = randomFlowOptions(rng);
    spec.items.push_back(std::move(item));
  }
  return spec;
}

campaign::ShardPlan randomShardPlan(Prng& rng) {
  campaign::ShardPlan plan;
  plan.specFnv = rng.next();
  plan.specItems = rng.below(64);
  const std::size_t shards = 1 + rng.below(4);
  plan.shards.resize(shards);
  for (auto& shard : plan.shards) {
    const std::size_t units = rng.below(4);
    for (std::size_t u = 0; u < units; ++u) {
      shard.push_back(campaign::ShardUnit{rng.below(64), rng.below(8), rng.below(32)});
    }
  }
  return plan;
}

campaign::ShardUnit randomShardUnit(Prng& rng) {
  return campaign::ShardUnit{rng.below(64), rng.below(8), rng.below(32)};
}

campaign::ShardOutput randomShardOutput(Prng& rng) {
  campaign::ShardOutput o;
  o.specFnv = rng.next();
  o.shardIndex = static_cast<int>(rng.below(8));
  o.shardCount = 1 + static_cast<int>(rng.below(8));
  const std::size_t units = rng.below(3);
  for (std::size_t u = 0; u < units; ++u) o.units.push_back(randomShardUnit(rng));
  o.result = randomCampaignResult(rng);
  return o;
}

// --- dispatcher daemon wire frames (campaign/dispatch.h) ---------------------

campaign::SubmitFrame randomSubmitFrame(Prng& rng) {
  campaign::SubmitFrame f;
  f.specFnv = rng.next();
  f.campaignId = rng.below(256);  // 0 = dispatcher run mode, nonzero = served
  f.seq = rng.next();
  f.taskIndex = rng.below(256);
  f.taskCount = 1 + rng.below(256);
  f.attempt = rng.below(4);
  f.unit = randomShardUnit(rng);
  if (rng.chance(0.5)) f.specPath = randomString(rng);
  f.shutdown = rng.chance(0.2);
  return f;
}

campaign::StatusFrame randomStatusFrame(Prng& rng) {
  campaign::StatusFrame f;
  f.workerIndex = rng.below(16);
  f.generation = rng.below(4);
  f.itemsDone = rng.below(256);
  f.state = rng.chance(0.5) ? "ready" : "working";
  return f;
}

campaign::HeartbeatFrame randomHeartbeatFrame(Prng& rng) {
  campaign::HeartbeatFrame f;
  f.workerIndex = rng.below(16);
  f.generation = rng.below(4);
  f.seq = rng.next();
  f.itemsDone = rng.below(256);
  return f;
}

campaign::ResultFrame randomResultFrame(Prng& rng) {
  campaign::ResultFrame f;
  f.campaignId = rng.below(256);
  f.seq = rng.next();
  f.taskIndex = rng.below(256);
  f.attempt = rng.below(4);
  f.output = randomShardOutput(rng);
  return f;
}

// --- campaign service client frames (campaign/server.h, codec v6) ------------

campaign::ClientSubmitFrame randomClientSubmitFrame(Prng& rng) {
  campaign::ClientSubmitFrame f;
  f.clientName = randomString(rng);
  f.spec = campaign::encodeCampaignSpec(randomCampaignSpec(rng));
  f.maxFragmentMutants = rng.below(32);
  if (rng.chance(0.5)) f.deadlineMs = rng.below(1u << 20);  // v7: 0 = none
  return f;
}

campaign::AcceptFrame randomAcceptFrame(Prng& rng) {
  campaign::AcceptFrame f;
  f.campaignId = 1 + rng.below(1u << 20);  // the decoder rejects id 0
  f.specFnv = rng.next();
  f.unitCount = rng.below(1024);
  return f;
}

campaign::RejectFrame randomRejectFrame(Prng& rng) {
  campaign::RejectFrame f;
  f.reason = randomString(rng);
  f.retryAfterMs = rng.below(100000);
  return f;
}

campaign::ItemResultFrame randomItemResultFrame(Prng& rng) {
  campaign::ItemResultFrame f;
  f.campaignId = 1 + rng.below(256);
  f.taskIndex = rng.below(256);
  f.taskCount = 1 + rng.below(256);
  f.output = randomShardOutput(rng);
  return f;
}

campaign::CampaignDoneFrame randomCampaignDoneFrame(Prng& rng) {
  campaign::CampaignDoneFrame f;
  f.campaignId = 1 + rng.below(256);
  f.unitsTotal = rng.below(1024);
  f.unitsCompleted = rng.below(1024);
  f.requeues = rng.below(8);
  f.cancelled = rng.chance(0.3);
  if (rng.chance(0.3)) f.error = randomString(rng);
  const std::size_t quarantined = rng.below(5);  // v7
  for (std::size_t i = 0; i < quarantined; ++i) f.quarantined.push_back(rng.below(1024));
  return f;
}

analysis::GoldenTrace randomGoldenTrace(Prng& rng) {
  analysis::GoldenTrace trace;
  const std::size_t cycles = rng.below(12);
  const std::size_t outW = rng.below(4);
  const std::size_t epW = rng.below(4);
  for (std::size_t c = 0; c < cycles; ++c) {
    std::vector<std::uint64_t> outs(outW), eps(epW);
    for (auto& w : outs) w = rng.next();
    for (auto& w : eps) w = rng.next();
    trace.outputs.push_back(std::move(outs));
    trace.endpoints.push_back(std::move(eps));
  }
  // epWidth is derived from the endpoint rows at encode time: a zero-cycle
  // trace has no rows, hence no endpoint columns to carry metadata for.
  trace.firstActivity.resize(cycles == 0 ? 0 : epW);
  for (auto& w : trace.firstActivity) w = rng.next();
  return trace;
}

// --- the three fuzz properties -----------------------------------------------

/// A named encode/decode pair: decode(bytes) either throws DecodeError or
/// yields a value, and reencode(decode(bytes)) lets the harness check the
/// inverse property without knowing the value type.
struct Codec {
  const char* name;
  std::function<std::string(Prng&)> randomDoc;          // encode(randomValue)
  std::function<std::string(std::string_view)> reroll;  // encode(decode(bytes))
};

std::vector<Codec> codecs() {
  return {
      {"mutant-result",
       [](Prng& rng) { return campaign::encodeMutantResult(randomMutantResult(rng)); },
       [](std::string_view b) {
         return campaign::encodeMutantResult(campaign::decodeMutantResult(b));
       }},
      {"mutant-artifact",
       [](Prng& rng) {
         return analysis::encodeMutantResultArtifact(randomMutantResult(rng));
       },
       [](std::string_view b) {
         return analysis::encodeMutantResultArtifact(
             analysis::decodeMutantResultArtifact(b));
       }},
      {"analysis-report",
       [](Prng& rng) { return campaign::encodeAnalysisReport(randomAnalysisReport(rng)); },
       [](std::string_view b) {
         return campaign::encodeAnalysisReport(campaign::decodeAnalysisReport(b));
       }},
      {"campaign-result",
       [](Prng& rng) { return campaign::encodeCampaignResult(randomCampaignResult(rng)); },
       [](std::string_view b) {
         return campaign::encodeCampaignResult(campaign::decodeCampaignResult(b));
       }},
      {"campaign-spec",
       [](Prng& rng) { return campaign::encodeCampaignSpec(randomCampaignSpec(rng)); },
       [](std::string_view b) {
         return campaign::encodeCampaignSpec(campaign::decodeCampaignSpec(b));
       }},
      {"shard-plan",
       [](Prng& rng) { return campaign::encodeShardPlan(randomShardPlan(rng)); },
       [](std::string_view b) {
         return campaign::encodeShardPlan(campaign::decodeShardPlan(b));
       }},
      {"shard-output",
       [](Prng& rng) { return campaign::encodeShardOutput(randomShardOutput(rng)); },
       [](std::string_view b) {
         return campaign::encodeShardOutput(campaign::decodeShardOutput(b));
       }},
      {"dispatch-submit",
       [](Prng& rng) { return campaign::encodeSubmitFrame(randomSubmitFrame(rng)); },
       [](std::string_view b) {
         return campaign::encodeSubmitFrame(campaign::decodeSubmitFrame(b));
       }},
      {"dispatch-status",
       [](Prng& rng) { return campaign::encodeStatusFrame(randomStatusFrame(rng)); },
       [](std::string_view b) {
         return campaign::encodeStatusFrame(campaign::decodeStatusFrame(b));
       }},
      {"dispatch-heartbeat",
       [](Prng& rng) { return campaign::encodeHeartbeatFrame(randomHeartbeatFrame(rng)); },
       [](std::string_view b) {
         return campaign::encodeHeartbeatFrame(campaign::decodeHeartbeatFrame(b));
       }},
      {"dispatch-result",
       [](Prng& rng) { return campaign::encodeResultFrame(randomResultFrame(rng)); },
       [](std::string_view b) {
         return campaign::encodeResultFrame(campaign::decodeResultFrame(b));
       }},
      {"client-submit",
       [](Prng& rng) {
         return campaign::encodeClientSubmitFrame(randomClientSubmitFrame(rng));
       },
       [](std::string_view b) {
         return campaign::encodeClientSubmitFrame(campaign::decodeClientSubmitFrame(b));
       }},
      {"dispatch-accept",
       [](Prng& rng) { return campaign::encodeAcceptFrame(randomAcceptFrame(rng)); },
       [](std::string_view b) {
         return campaign::encodeAcceptFrame(campaign::decodeAcceptFrame(b));
       }},
      {"dispatch-reject",
       [](Prng& rng) { return campaign::encodeRejectFrame(randomRejectFrame(rng)); },
       [](std::string_view b) {
         return campaign::encodeRejectFrame(campaign::decodeRejectFrame(b));
       }},
      {"dispatch-item-result",
       [](Prng& rng) {
         return campaign::encodeItemResultFrame(randomItemResultFrame(rng));
       },
       [](std::string_view b) {
         return campaign::encodeItemResultFrame(campaign::decodeItemResultFrame(b));
       }},
      {"dispatch-done",
       [](Prng& rng) {
         return campaign::encodeCampaignDoneFrame(randomCampaignDoneFrame(rng));
       },
       [](std::string_view b) {
         return campaign::encodeCampaignDoneFrame(campaign::decodeCampaignDoneFrame(b));
       }},
      {"golden-trace",
       [](Prng& rng) { return analysis::encodeGoldenTrace(randomGoldenTrace(rng)); },
       [](std::string_view b) {
         return analysis::encodeGoldenTrace(analysis::decodeGoldenTrace(b));
       }},
  };
}

TEST(CodecFuzz, RandomizedRoundTripsAreByteStable) {
  Prng rng(0xC0DEC0DEC0DEC0DEULL);
  for (const Codec& codec : codecs()) {
    for (int iter = 0; iter < 50; ++iter) {
      const std::string doc = codec.randomDoc(rng);
      std::string rerolled;
      ASSERT_NO_THROW(rerolled = codec.reroll(doc))
          << codec.name << " iteration " << iter;
      EXPECT_EQ(doc, rerolled) << codec.name << " iteration " << iter;
    }
  }
}

TEST(CodecFuzz, EverySingleByteTruncationRaisesDecodeError) {
  Prng rng(0x7142C47E5EEDULL);
  for (const Codec& codec : codecs()) {
    for (int iter = 0; iter < 8; ++iter) {
      const std::string doc = codec.randomDoc(rng);
      for (std::size_t cut = 0; cut < doc.size(); ++cut) {
        EXPECT_THROW(codec.reroll(std::string_view(doc).substr(0, cut)), DecodeError)
            << codec.name << " iteration " << iter << " cut at " << cut << "/"
            << doc.size();
      }
    }
  }
}

TEST(CodecFuzz, GoldenTraceRejectsOverflowingCountsBeforeAllocating) {
  // A verified-but-hostile entry (fingerprint collision or crafted file):
  // counts whose product wraps std::size_t must throw DecodeError up
  // front, never reach a resize() that dies with length_error/bad_alloc.
  util::Encoder e("golden-trace", analysis::kGoldenTraceCodecVersion);
  e.u64("cycles", 1);
  e.u64("outWidth", 1ULL << 61);
  e.u64("epWidth", 0);
  e.str("outputs", "");
  e.str("endpoints", "");
  e.str("firstActivity", "");
  EXPECT_THROW(analysis::decodeGoldenTrace(e.out()), DecodeError);
}

TEST(CodecFuzz, DispatchFramesRejectMixedSchemaVersions) {
  // A dispatcher and a worker built against different campaign schema
  // versions must refuse to talk: every daemon frame re-rendered with a
  // NEIGHBORING version in its header is a DecodeError, for every frame
  // kind, in both directions of the skew.
  Prng rng(0xD15BA7C4ULL);
  const struct {
    const char* tag;
    std::function<std::string(Prng&)> randomDoc;
    std::function<void(std::string_view)> decode;
  } frames[] = {
      {campaign::kSubmitFrameTag,
       [](Prng& r) { return campaign::encodeSubmitFrame(randomSubmitFrame(r)); },
       [](std::string_view b) { campaign::decodeSubmitFrame(b); }},
      {campaign::kStatusFrameTag,
       [](Prng& r) { return campaign::encodeStatusFrame(randomStatusFrame(r)); },
       [](std::string_view b) { campaign::decodeStatusFrame(b); }},
      {campaign::kHeartbeatFrameTag,
       [](Prng& r) { return campaign::encodeHeartbeatFrame(randomHeartbeatFrame(r)); },
       [](std::string_view b) { campaign::decodeHeartbeatFrame(b); }},
      {campaign::kResultFrameTag,
       [](Prng& r) { return campaign::encodeResultFrame(randomResultFrame(r)); },
       [](std::string_view b) { campaign::decodeResultFrame(b); }},
      {campaign::kClientSubmitFrameTag,
       [](Prng& r) { return campaign::encodeClientSubmitFrame(randomClientSubmitFrame(r)); },
       [](std::string_view b) { campaign::decodeClientSubmitFrame(b); }},
      {campaign::kAcceptFrameTag,
       [](Prng& r) { return campaign::encodeAcceptFrame(randomAcceptFrame(r)); },
       [](std::string_view b) { campaign::decodeAcceptFrame(b); }},
      {campaign::kRejectFrameTag,
       [](Prng& r) { return campaign::encodeRejectFrame(randomRejectFrame(r)); },
       [](std::string_view b) { campaign::decodeRejectFrame(b); }},
      {campaign::kItemResultFrameTag,
       [](Prng& r) { return campaign::encodeItemResultFrame(randomItemResultFrame(r)); },
       [](std::string_view b) { campaign::decodeItemResultFrame(b); }},
      {campaign::kCampaignDoneFrameTag,
       [](Prng& r) { return campaign::encodeCampaignDoneFrame(randomCampaignDoneFrame(r)); },
       [](std::string_view b) { campaign::decodeCampaignDoneFrame(b); }},
  };
  for (const auto& frame : frames) {
    const std::string doc = frame.randomDoc(rng);
    const std::string header =
        "xlv " + std::string(frame.tag) + " v" +
        std::to_string(campaign::kCampaignCodecVersion) + "\n";
    ASSERT_EQ(doc.substr(0, header.size()), header) << frame.tag;
    EXPECT_EQ(util::peekDocumentTag(doc), frame.tag);
    for (const int skew : {-1, 1}) {
      const std::string other =
          "xlv " + std::string(frame.tag) + " v" +
          std::to_string(campaign::kCampaignCodecVersion + skew) + "\n" +
          doc.substr(header.size());
      EXPECT_THROW(frame.decode(other), DecodeError) << frame.tag << " skew " << skew;
      // The tag still peeks (that is how the dispatcher would route it to
      // the decoder that then rejects the version).
      EXPECT_EQ(util::peekDocumentTag(other), frame.tag);
    }
  }
}

TEST(CodecFuzz, PeekDocumentTagRejectsMalformedHeaders) {
  EXPECT_EQ(util::peekDocumentTag("xlv shard-plan v5\nrest"), "shard-plan");
  EXPECT_THROW(util::peekDocumentTag(""), DecodeError);
  EXPECT_THROW(util::peekDocumentTag("xlv shard-plan v5"), DecodeError);  // no newline
  EXPECT_THROW(util::peekDocumentTag("XLV shard-plan v5\n"), DecodeError);
  EXPECT_THROW(util::peekDocumentTag("xlv \n"), DecodeError);
  EXPECT_THROW(util::peekDocumentTag("xlv v5\n"), DecodeError);
}

TEST(CodecFuzz, EverySingleByteCorruptionIsRejectedOrDecodesToExactlyThoseBytes) {
  Prng rng(0xBADBADBADBADULL);
  for (const Codec& codec : codecs()) {
    for (int iter = 0; iter < 4; ++iter) {
      const std::string doc = codec.randomDoc(rng);
      for (std::size_t pos = 0; pos < doc.size(); ++pos) {
        for (const unsigned char delta : {0x01, 0x80}) {
          std::string corrupted = doc;
          corrupted[pos] = static_cast<char>(corrupted[pos] ^ delta);
          try {
            const std::string rerolled = codec.reroll(corrupted);
            // Accepted: then the decode must be the exact inverse — the
            // corrupted bytes themselves are the canonical encoding of the
            // decoded value, never a silently skewed reading of them.
            EXPECT_EQ(corrupted, rerolled)
                << codec.name << " iteration " << iter << " flip 0x" << std::hex
                << static_cast<int>(delta) << " at byte " << std::dec << pos;
          } catch (const DecodeError&) {
            // Rejected: equally fine (and mandatory for framing bytes).
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace xlv
