// ArtifactStore: round trips, fingerprint verification (corruption degrades
// to a rebuild, never a wrong value), LRU byte-cap eviction, and the
// OnceCache spill hook (memory -> disk -> build with write-through).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/artifact_store.h"
#include "util/once_cache.h"

namespace xlv::util {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("xlv-artifact-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::vector<fs::path> entryFiles(const fs::path& root) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file() && it->path().extension() == ".art") {
      files.push_back(it->path());
    }
  }
  return files;
}

TEST(ArtifactStore, StoreLoadRoundTripAndStats) {
  TempDir dir;
  ArtifactStore store(ArtifactStoreConfig{dir.str(), 0});

  EXPECT_FALSE(store.load("golden", "key-a").has_value());
  EXPECT_EQ(1u, store.stats().misses);

  std::string payload = "binary";
  payload.push_back('\0');
  payload += "payload\nwith=weird:bytes";
  store.store("golden", "key-a", payload);
  EXPECT_EQ(1u, store.stats().stores);

  const auto loaded = store.load("golden", "key-a");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(payload, *loaded);
  EXPECT_EQ(1u, store.stats().hits);

  // Same key, different domain: a distinct entry.
  EXPECT_FALSE(store.load("prefix", "key-a").has_value());
  store.store("prefix", "key-a", "other");
  EXPECT_EQ("other", store.load("prefix", "key-a").value());

  // Overwrite (atomic replace) serves the newest payload.
  store.store("golden", "key-a", "v2");
  EXPECT_EQ("v2", store.load("golden", "key-a").value());
}

TEST(ArtifactStore, PersistsAcrossStoreInstancesLikeProcesses) {
  TempDir dir;
  {
    ArtifactStore writer(ArtifactStoreConfig{dir.str(), 0});
    writer.store("golden", "shared", "across-process payload");
  }
  ArtifactStore reader(ArtifactStoreConfig{dir.str(), 0});
  const auto loaded = reader.load("golden", "shared");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ("across-process payload", *loaded);
}

TEST(ArtifactStore, CorruptEntryIsDroppedAndReportedAsMiss) {
  TempDir dir;
  ArtifactStore store(ArtifactStoreConfig{dir.str(), 0});
  store.store("golden", "k", "the payload");

  const auto files = entryFiles(dir.path);
  ASSERT_EQ(1u, files.size());

  // Flip one payload byte on disk: the embedded FNV fingerprint must catch
  // it; the entry is dropped (no file left) and the load is a miss.
  {
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    f.put('X');
  }
  EXPECT_FALSE(store.load("golden", "k").has_value());
  EXPECT_EQ(1u, store.stats().corrupt);
  EXPECT_TRUE(entryFiles(dir.path).empty());

  // Truncation (a torn write that bypassed the atomic rename) is equally
  // fatal for that entry and equally recoverable.
  store.store("golden", "k", "the payload");
  const auto files2 = entryFiles(dir.path);
  ASSERT_EQ(1u, files2.size());
  fs::resize_file(files2[0], fs::file_size(files2[0]) / 2);
  EXPECT_FALSE(store.load("golden", "k").has_value());
  EXPECT_EQ(2u, store.stats().corrupt);

  // After the drop a rebuild + store works again.
  store.store("golden", "k", "rebuilt");
  EXPECT_EQ("rebuilt", store.load("golden", "k").value());
}

TEST(ArtifactStore, TempFilesAreNeverVisibleAsEntries) {
  TempDir dir;
  ArtifactStore store(ArtifactStoreConfig{dir.str(), 0});
  for (int i = 0; i < 16; ++i) {
    store.store("d", "k" + std::to_string(i), std::string(100, 'x'));
  }
  // Only finished entries on disk: no .tmp leftovers (rename is the commit).
  std::size_t tmp = 0;
  for (fs::recursive_directory_iterator it(dir.path), end; it != end; ++it) {
    if (it->is_regular_file() && it->path().extension() != ".art") ++tmp;
  }
  EXPECT_EQ(0u, tmp);
  EXPECT_EQ(16u, entryFiles(dir.path).size());
}

TEST(ArtifactStore, ByteCapEvictsLeastRecentlyUsed) {
  TempDir dir;
  // Entries are ~payload + envelope; a cap of ~2.5 entries keeps two.
  const std::string payload(400, 'p');
  ArtifactStore probe(ArtifactStoreConfig{dir.str(), 0});
  probe.store("d", "probe", payload);
  const std::uint64_t entryBytes = probe.diskBytes();
  ASSERT_GT(entryBytes, 400u);
  fs::remove_all(dir.path / "d");

  // Millisecond gaps keep the mtime-based LRU order unambiguous even on
  // filesystems with coarse timestamp resolution.
  const auto gap = [] { std::this_thread::sleep_for(std::chrono::milliseconds(15)); };
  ArtifactStore store(ArtifactStoreConfig{dir.str(), entryBytes * 5 / 2});
  store.store("d", "a", payload);
  gap();
  store.store("d", "b", payload);
  EXPECT_EQ(0u, store.stats().evictions);

  // Touch "a" so "b" is the least recently used, then overflow.
  gap();
  ASSERT_TRUE(store.load("d", "a").has_value());
  gap();
  store.store("d", "c", payload);
  EXPECT_EQ(1u, store.stats().evictions);
  EXPECT_TRUE(store.load("d", "a").has_value());
  EXPECT_TRUE(store.load("d", "c").has_value());
  EXPECT_FALSE(store.load("d", "b").has_value()) << "LRU victim must be b";
  EXPECT_LE(store.diskBytes(), entryBytes * 5 / 2);
}

TEST(ArtifactStore, ProcessStoreConfigureAndDisable) {
  TempDir dir;
  EXPECT_EQ(nullptr, processArtifactStore());
  configureProcessArtifactStore(ArtifactStoreConfig{dir.str(), 0});
  ASSERT_NE(nullptr, processArtifactStore());
  processArtifactStore()->store("d", "k", "v");
  EXPECT_EQ("v", processArtifactStore()->load("d", "k").value());
  configureProcessArtifactStore(std::nullopt);
  EXPECT_EQ(nullptr, processArtifactStore());
}

// --- the OnceCache spill hook ------------------------------------------------

std::string encodeInt(const int& v) { return std::to_string(v); }
int decodeInt(std::string_view s) {
  // Strict tiny codec for the test: any non-digit is a DecodeError.
  if (s.empty()) throw DecodeError("empty int");
  int v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') throw DecodeError("bad int");
    v = v * 10 + (c - '0');
  }
  return v;
}

TEST(ArtifactStore, GetOrBuildWithStoreLayersMemoryDiskBuild) {
  TempDir dir;
  ArtifactStore store(ArtifactStoreConfig{dir.str(), 0});
  OnceCache<int> mem;
  int builds = 0;
  const std::function<int()> build = [&] { return ++builds, 41 + builds; };

  // Cold everything: builds, writes through.
  bool memHit = true, diskHit = true;
  auto v1 = getOrBuildWithStore<int>(mem, &store, "d", "k", build, encodeInt, decodeInt,
                                     &memHit, &diskHit);
  EXPECT_EQ(42, *v1);
  EXPECT_EQ(1, builds);
  EXPECT_FALSE(memHit);
  EXPECT_FALSE(diskHit);
  EXPECT_EQ(1u, store.stats().stores);

  // Memory-warm: no disk traffic at all.
  const auto diskStatsBefore = store.stats();
  auto v2 = getOrBuildWithStore<int>(mem, &store, "d", "k", build, encodeInt, decodeInt,
                                     &memHit, &diskHit);
  EXPECT_EQ(42, *v2);
  EXPECT_TRUE(memHit);
  EXPECT_FALSE(diskHit);
  EXPECT_EQ(1, builds);
  EXPECT_EQ(diskStatsBefore.hits, store.stats().hits);

  // Fresh memory (a new process): served from disk, not rebuilt.
  OnceCache<int> mem2;
  auto v3 = getOrBuildWithStore<int>(mem2, &store, "d", "k", build, encodeInt, decodeInt,
                                     &memHit, &diskHit);
  EXPECT_EQ(42, *v3);
  EXPECT_FALSE(memHit);
  EXPECT_TRUE(diskHit);
  EXPECT_EQ(1, builds);

  // No store configured: plain OnceCache behavior.
  OnceCache<int> mem3;
  auto v4 = getOrBuildWithStore<int>(mem3, nullptr, "d", "k", build, encodeInt, decodeInt,
                                     &memHit, &diskHit);
  EXPECT_EQ(43, *v4);
  EXPECT_EQ(2, builds);
  EXPECT_FALSE(diskHit);
}

TEST(ArtifactStore, UndecodablePayloadIsDroppedAndRebuilt) {
  TempDir dir;
  ArtifactStore store(ArtifactStoreConfig{dir.str(), 0});
  // A verified entry whose *decode* fails (schema skew): not-an-int bytes.
  store.store("d", "k", "not-an-int");

  OnceCache<int> mem;
  int builds = 0;
  bool memHit = true, diskHit = true;
  auto v = getOrBuildWithStore<int>(
      mem, &store, "d", "k", [&] { return ++builds, 7; }, encodeInt, decodeInt, &memHit,
      &diskHit);
  EXPECT_EQ(7, *v);
  EXPECT_EQ(1, builds) << "decode failure must fall back to a rebuild";
  EXPECT_FALSE(diskHit);
  EXPECT_EQ(1u, store.stats().corrupt);
  // The unusable entry must not linger in the hit ledger: a warm run that
  // rebuilt everything has to report zero hits (--require-disk-hits).
  EXPECT_EQ(0u, store.stats().hits);
  EXPECT_GE(store.stats().misses, 1u);

  // The rebuild overwrote the bad entry: a fresh memory layer now disk-hits.
  OnceCache<int> mem2;
  auto v2 = getOrBuildWithStore<int>(
      mem2, &store, "d", "k", [&] { return ++builds, 8; }, encodeInt, decodeInt, &memHit,
      &diskHit);
  EXPECT_EQ(7, *v2);
  EXPECT_EQ(1, builds);
  EXPECT_TRUE(diskHit);
}

// --- age-based expiry (ROADMAP store housekeeping) ---------------------------

/// Backdate an entry file's mtime so it looks `age` old to the expiry scan.
void backdate(const fs::path& file, std::chrono::seconds age) {
  fs::last_write_time(file, fs::file_time_type::clock::now() - age);
}

TEST(ArtifactStore, GcExpiresEntriesOlderThanMaxAge) {
  TempDir dir;
  ArtifactStore store(ArtifactStoreConfig{dir.str(), 0, /*maxAgeSeconds=*/3600});
  store.store("golden", "old", "stale-payload");
  store.store("golden", "fresh", "fresh-payload");
  ASSERT_EQ(2u, entryFiles(dir.path).size());

  // Age one entry past the limit; the other stays current.
  for (const fs::path& f : entryFiles(dir.path)) {
    if (fs::file_size(f) == 0) continue;
    std::ifstream in(f);
    std::string content((std::istreambuf_iterator<char>(in)), {});
    if (content.find("stale-payload") != std::string::npos) {
      backdate(f, std::chrono::seconds(7200));
    }
  }

  EXPECT_EQ(1u, store.gc());
  EXPECT_EQ(1u, store.stats().expired);
  EXPECT_FALSE(store.load("golden", "old").has_value());
  EXPECT_EQ("fresh-payload", store.load("golden", "fresh").value());
  EXPECT_EQ(1u, entryFiles(dir.path).size());
}

TEST(ArtifactStore, ConstructionSweepExpiresAgedEntries) {
  TempDir dir;
  {
    ArtifactStore store(ArtifactStoreConfig{dir.str(), 0});
    store.store("golden", "k", "payload");
  }
  for (const fs::path& f : entryFiles(dir.path)) backdate(f, std::chrono::seconds(7200));

  // A new store instance (a later process) with an age limit self-cleans at
  // construction — the stale entry is gone before the first load.
  ArtifactStore store(ArtifactStoreConfig{dir.str(), 0, /*maxAgeSeconds=*/3600});
  EXPECT_EQ(1u, store.stats().expired);
  EXPECT_EQ(0u, entryFiles(dir.path).size());
  EXPECT_FALSE(store.load("golden", "k").has_value());
}

TEST(ArtifactStore, ZeroMaxAgeNeverExpires) {
  TempDir dir;
  ArtifactStore store(ArtifactStoreConfig{dir.str(), 0, /*maxAgeSeconds=*/0});
  store.store("golden", "k", "payload");
  for (const fs::path& f : entryFiles(dir.path)) backdate(f, std::chrono::seconds(1u << 20));
  EXPECT_EQ(0u, store.gc());
  EXPECT_EQ(0u, store.stats().expired);
  EXPECT_EQ("payload", store.load("golden", "k").value());
}

TEST(ArtifactStore, GcEnforcesByteCapWithoutAgeLimit) {
  TempDir dir;
  std::uint64_t bytes = 0;
  {
    // Populate unbounded, then reopen with a cap: gc() must evict down.
    ArtifactStore store(ArtifactStoreConfig{dir.str(), 0});
    for (int i = 0; i < 8; ++i) {
      const auto before = entryFiles(dir.path);
      store.store("golden", "key-" + std::to_string(i), std::string(256, 'x'));
      // Backdate only the just-written entry: genuinely distinct mtimes
      // keep the LRU order deterministic on coarse-resolution filesystems.
      for (const fs::path& f : entryFiles(dir.path)) {
        if (std::find(before.begin(), before.end(), f) == before.end()) {
          backdate(f, std::chrono::seconds(100 - i * 10));
        }
      }
    }
    bytes = store.diskBytes();
  }
  ASSERT_GT(bytes, 0u);
  ArtifactStore capped(ArtifactStoreConfig{dir.str(), bytes / 2, 0});
  EXPECT_GT(capped.gc(), 0u);
  EXPECT_LE(capped.diskBytes(), bytes / 2);
  EXPECT_GT(entryFiles(dir.path).size(), 0u);
}

}  // namespace
}  // namespace xlv::util
