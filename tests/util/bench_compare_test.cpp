// Perf-ratchet comparator (util/bench_compare.h): parser, direction rules,
// and the CI contract — identical reports pass, a deliberately injected
// slowdown fails.
#include "util/bench_compare.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xlv::util {
namespace {

/// A report in the exact shape bench/common.h writeBenchJson() emits.
constexpr const char* kSample = R"({
  "bench": "campaign_shard",
  "metrics": {
    "wall_seconds_single": 0.123,
    "cycles_simulated_fast": 4000,
    "cycle_reduction_single": 12.5,
    "self_check_ok": 1
  }
})";

BenchReport make(const char* bench,
                 std::vector<std::pair<std::string, double>> metrics) {
  BenchReport r;
  r.bench = bench;
  r.metrics = std::move(metrics);
  return r;
}

TEST(BenchCompare, ParsesWriterShapedJson) {
  const BenchReport r = parseBenchJson(kSample);
  EXPECT_EQ("campaign_shard", r.bench);
  ASSERT_EQ(4u, r.metrics.size());
  EXPECT_EQ("wall_seconds_single", r.metrics[0].first);
  EXPECT_DOUBLE_EQ(0.123, r.metrics[0].second);
  ASSERT_NE(nullptr, r.find("cycles_simulated_fast"));
  EXPECT_DOUBLE_EQ(4000.0, *r.find("cycles_simulated_fast"));
  EXPECT_EQ(nullptr, r.find("absent"));
}

TEST(BenchCompare, MalformedReportsThrow) {
  EXPECT_THROW(parseBenchJson(""), std::invalid_argument);
  EXPECT_THROW(parseBenchJson("{\"metrics\": {}}"), std::invalid_argument);
  EXPECT_THROW(parseBenchJson("{\"bench\": \"x\"}"), std::invalid_argument);
  EXPECT_THROW(parseBenchJson("{\"bench\": \"x\", \"metrics\": {\"a\": }}"),
               std::invalid_argument);
  EXPECT_THROW(parseBenchJson("{\"bench\": \"x\", \"metrics\": {\"a\": 1"),
               std::invalid_argument);
}

TEST(BenchCompare, DirectionRulesFollowNames) {
  EXPECT_EQ(MetricDirection::Exact, metricDirection("self_check_ok"));
  EXPECT_EQ(MetricDirection::Exact, metricDirection("native_available"));
  EXPECT_EQ(MetricDirection::HigherIsBetter, metricDirection("native_speedup_single"));
  EXPECT_EQ(MetricDirection::HigherIsBetter, metricDirection("cycle_reduction_smoke"));
  EXPECT_EQ(MetricDirection::LowerIsBetter, metricDirection("cycles_simulated_fast"));
  EXPECT_EQ(MetricDirection::Informational, metricDirection("wall_seconds_single"));
  EXPECT_EQ(MetricDirection::Informational, metricDirection("cycles_skipped_fast"));
  EXPECT_EQ(MetricDirection::Informational, metricDirection("points"));
}

TEST(BenchCompare, IdenticalReportsPass) {
  const BenchReport r = parseBenchJson(kSample);
  const BenchComparison cmp = compareBenchReports(r, r, 0.25);
  EXPECT_TRUE(cmp.ok);
  EXPECT_EQ(4u, cmp.rows.size());
  for (const auto& row : cmp.rows) EXPECT_FALSE(row.regressed);
}

TEST(BenchCompare, InjectedSlowdownFails) {
  // The CI-contract case: a deliberate 2x blow-up of the simulated-cycle
  // counter (far past any tolerance) must fail the ratchet.
  const BenchReport baseline =
      make("b", {{"cycles_simulated_fast", 4000.0}, {"self_check_ok", 1.0}});
  const BenchReport slow =
      make("b", {{"cycles_simulated_fast", 8000.0}, {"self_check_ok", 1.0}});
  const BenchComparison cmp = compareBenchReports(baseline, slow, 0.25);
  EXPECT_FALSE(cmp.ok);
  ASSERT_EQ(2u, cmp.rows.size());
  EXPECT_TRUE(cmp.rows[0].regressed);
  EXPECT_FALSE(cmp.rows[1].regressed);
  EXPECT_NE(std::string::npos, cmp.render().find("REGRESSION"));
}

TEST(BenchCompare, SpeedupDropFails) {
  const BenchReport baseline = make("b", {{"native_speedup_single", 4.0}});
  // Within tolerance: 4.0 * (1 - 0.25) = 3.0 is still acceptable...
  EXPECT_TRUE(compareBenchReports(baseline, make("b", {{"native_speedup_single", 3.0}}), 0.25).ok);
  // ...but a collapse below the slack line fails.
  EXPECT_FALSE(
      compareBenchReports(baseline, make("b", {{"native_speedup_single", 1.4}}), 0.25).ok);
}

TEST(BenchCompare, SelfCheckDropIsExact) {
  const BenchReport baseline = make("b", {{"self_check_ok", 1.0}});
  // Exact metrics get no tolerance: any drop below baseline regresses.
  EXPECT_FALSE(compareBenchReports(baseline, make("b", {{"self_check_ok", 0.0}}), 10.0).ok);
  EXPECT_TRUE(compareBenchReports(baseline, make("b", {{"self_check_ok", 1.0}}), 0.0).ok);
}

TEST(BenchCompare, MissingMetricRegressesAndNewMetricInforms) {
  const BenchReport baseline = make("b", {{"cycles_simulated_fast", 100.0}});
  const BenchReport current = make("b", {{"brand_new_metric", 7.0}});
  const BenchComparison cmp = compareBenchReports(baseline, current, 0.25);
  EXPECT_FALSE(cmp.ok);
  ASSERT_EQ(2u, cmp.rows.size());
  EXPECT_TRUE(cmp.rows[0].missing);
  EXPECT_TRUE(cmp.rows[0].regressed);
  EXPECT_TRUE(cmp.rows[1].currentOnly);
  EXPECT_FALSE(cmp.rows[1].regressed);
}

TEST(BenchCompare, InformationalMetricsNeverGate) {
  const BenchReport baseline = make("b", {{"wall_seconds_single", 0.1}});
  // A 100x wall-time blow-up on an absolute timing is host noise, not a
  // ratchet failure (the gating metrics are counters and ratios).
  EXPECT_TRUE(compareBenchReports(baseline, make("b", {{"wall_seconds_single", 10.0}}), 0.25).ok);
}

TEST(BenchCompare, MismatchedBenchNamesThrow) {
  EXPECT_THROW(compareBenchReports(make("a", {}), make("b", {}), 0.25),
               std::invalid_argument);
  EXPECT_THROW(compareBenchReports(make("a", {}), make("a", {}), -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace xlv::util
