// Utility layer: PRNG determinism, statistics accumulators, table renderer.
#include <gtest/gtest.h>

#include "util/prng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace xlv::util {
namespace {

TEST(Prng, DeterministicPerSeed) {
  Prng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Prng a2(123), c2(124);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Prng, BelowStaysInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Prng, RangeInclusive) {
  Prng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Prng, BitsMasksWidth) {
  Prng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.bits(5), 32u);
  }
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(0.5, sum / 10000, 0.02);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(8u, s.count());
  EXPECT_DOUBLE_EQ(5.0, s.mean());
  EXPECT_NEAR(4.571, s.variance(), 0.001);  // sample variance
  EXPECT_DOUBLE_EQ(2.0, s.min());
  EXPECT_DOUBLE_EQ(9.0, s.max());
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(1.0, s.min());
  EXPECT_DOUBLE_EQ(100.0, s.max());
  EXPECT_NEAR(50.5, s.percentile(0.5), 0.01);
  EXPECT_NEAR(90.1, s.percentile(0.9), 0.01);
  EXPECT_DOUBLE_EQ(50.5, s.mean());
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.percentile(0.5), std::out_of_range);
  EXPECT_THROW(s.min(), std::out_of_range);
}

TEST(Table, RendersAlignedGrid) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addSeparator();
  t.addRow({"longer-name", "123"});
  const std::string out = t.render();
  EXPECT_NE(std::string::npos, out.find("| name "));
  EXPECT_NE(std::string::npos, out.find("alpha"));
  EXPECT_NE(std::string::npos, out.find("longer-name"));
  // Numbers right-aligned: "  1 |" style padding before the short number.
  EXPECT_NE(std::string::npos, out.find("  1 |"));
}

TEST(Table, FixedFormatsDigits) {
  EXPECT_EQ("3.14", Table::fixed(3.14159, 2));
  EXPECT_EQ("3", Table::fixed(3.14159, 0));
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.addRow({"x"});
  EXPECT_NO_THROW(t.render());
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double s = t.seconds();
  EXPECT_GT(s, 0.0);
  // millis() reads the clock again: allow the elapsed delta.
  EXPECT_GE(t.millis(), s * 1e3);
  t.reset();
  EXPECT_LT(t.seconds(), s + 1.0);
}

}  // namespace
}  // namespace xlv::util
