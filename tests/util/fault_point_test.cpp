// Unit tests of the chaos-injection registry (util/fault_point.h): the
// XLV_FAULTS grammar is STRICT (a typo'd chaos spec must abort startup, not
// silently run a clean experiment), draws are deterministic per seed, and
// an unset env leaves every point inert.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/fault_point.h"

namespace xlv::util {
namespace {

/// Sets XLV_FAULTS for the duration of a test and re-arms the registry;
/// restores an inert registry on the way out.
struct FaultsEnv {
  explicit FaultsEnv(const std::string& spec) {
    ::setenv("XLV_FAULTS", spec.c_str(), 1);
    reloadFaultPointsFromEnv();
  }
  ~FaultsEnv() {
    ::unsetenv("XLV_FAULTS");
    reloadFaultPointsFromEnv();
  }
};

TEST(FaultPoint, UnsetEnvIsInert) {
  ::unsetenv("XLV_FAULTS");
  reloadFaultPointsFromEnv();
  EXPECT_FALSE(faultPointsArmed());
  for (const char* p : {"store.write", "frame.write", "worker.spawn", "server.accept"}) {
    EXPECT_EQ(faultPoint(p), FaultAction::None) << p;
  }
}

TEST(FaultPoint, CertainFailFiresEveryDraw) {
  FaultsEnv env("store.write:fail");
  EXPECT_TRUE(faultPointsArmed());
  const std::uint64_t before = faultPointFireCount("store.write");
  for (int i = 0; i < 5; ++i) EXPECT_EQ(faultPoint("store.write"), FaultAction::Fail);
  EXPECT_EQ(faultPointFireCount("store.write") - before, 5u);
  // The other points stay clean — clauses are per-point, not global.
  EXPECT_EQ(faultPoint("frame.write"), FaultAction::None);
}

TEST(FaultPoint, TimesBoundsTheTriggerCount) {
  FaultsEnv env("worker.spawn:fail:times=2");
  EXPECT_EQ(faultPoint("worker.spawn"), FaultAction::Fail);
  EXPECT_EQ(faultPoint("worker.spawn"), FaultAction::Fail);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(faultPoint("worker.spawn"), FaultAction::None) << "times= cap ignored";
  }
}

TEST(FaultPoint, SeededProbabilityIsDeterministic) {
  std::vector<FaultAction> first, second;
  {
    FaultsEnv env("frame.write:short:p=0.5:seed=42");
    for (int i = 0; i < 64; ++i) first.push_back(faultPoint("frame.write"));
  }
  {
    FaultsEnv env("frame.write:short:p=0.5:seed=42");
    for (int i = 0; i < 64; ++i) second.push_back(faultPoint("frame.write"));
  }
  EXPECT_EQ(first, second) << "same seed must reproduce the same draw sequence";
  int fired = 0;
  for (const FaultAction a : first) {
    if (a != FaultAction::None) {
      ++fired;
      EXPECT_EQ(a, FaultAction::Short);
    }
  }
  EXPECT_GT(fired, 0) << "p=0.5 over 64 draws fired never";
  EXPECT_LT(fired, 64) << "p=0.5 over 64 draws fired always";
}

TEST(FaultPoint, MultipleClausesArmIndependently) {
  FaultsEnv env("store.write:fail:times=1,server.accept:fail");
  EXPECT_EQ(faultPoint("store.write"), FaultAction::Fail);
  EXPECT_EQ(faultPoint("store.write"), FaultAction::None);
  EXPECT_EQ(faultPoint("server.accept"), FaultAction::Fail);
  EXPECT_EQ(faultPoint("server.accept"), FaultAction::Fail);
}

TEST(FaultPoint, MalformedSpecsThrowInsteadOfRunningClean) {
  for (const char* bad : {
           "store.write",                    // missing action
           "bogus.point:fail",               // unknown point
           "store.write:explode",            // unknown action
           "store.write:fail:p=1.5",         // probability out of range
           "store.write:fail:p=nope",        // unparsable value
           "store.write:fail:frequency=2",   // unknown key
           "store.write:fail:ms=10",         // ms only belongs to delay
           "store.write:delay",              // delay without ms=
           ",",                              // empty clause
       }) {
    ::setenv("XLV_FAULTS", bad, 1);
    EXPECT_THROW(reloadFaultPointsFromEnv(), FaultConfigError) << bad;
  }
  ::unsetenv("XLV_FAULTS");
  reloadFaultPointsFromEnv();
  EXPECT_FALSE(faultPointsArmed());
}

}  // namespace
}  // namespace xlv::util
