// End-to-end flow on the case studies (small cycle budgets): every step of
// Fig. 3 executes and the headline results of the paper hold in shape.
#include <gtest/gtest.h>

#include "core/flow.h"

namespace xlv::core {
namespace {

using insertion::SensorKind;

FlowOptions quickOpts(SensorKind kind) {
  FlowOptions opts;
  opts.sensorKind = kind;
  opts.testbenchCycles = 120;
  opts.measureRtl = true;
  opts.measureOptimized = true;
  opts.runMutationAnalysis = true;
  return opts;
}

class FlowOnCaseP : public ::testing::TestWithParam<int> {};

ips::CaseStudy caseFor(int idx) {
  switch (idx) {
    case 0: return ips::buildPlasmaCase();
    case 1: return ips::buildDspCase();
    default: return ips::buildFilterCase();
  }
}

TEST_P(FlowOnCaseP, RazorFlowCompletes) {
  ips::CaseStudy cs = caseFor(GetParam());
  FlowReport r = runFlow(cs, quickOpts(SensorKind::Razor));

  EXPECT_GT(r.sensors.size(), 0u);
  EXPECT_EQ(r.mutantSpecs.size(), r.sensors.size() * 2);
  EXPECT_EQ(r.analysis.total(), static_cast<int>(r.mutantSpecs.size()));
  // Headline shape: all mutants killed, all errors risen, all corrected.
  EXPECT_DOUBLE_EQ(100.0, r.analysis.killedPct()) << cs.name;
  EXPECT_DOUBLE_EQ(100.0, r.analysis.risenPct()) << cs.name;
  EXPECT_DOUBLE_EQ(100.0, r.analysis.correctedPct()) << cs.name;
  // Lines of code grow along the flow: clean RTL < augmented RTL, and the
  // injected TLM exceeds the clean TLM.
  EXPECT_GT(r.loc.rtlAugmented, r.loc.rtlClean);
  EXPECT_GT(r.loc.tlmInjected, r.loc.tlm);
  // Augmentation preserved the IP (metric_ok stayed high during the golden
  // run is asserted inside the analysis via kill comparisons).
  EXPECT_GT(r.timings.tlmSeconds, 0.0);
}

TEST_P(FlowOnCaseP, CounterFlowCompletes) {
  ips::CaseStudy cs = caseFor(GetParam());
  FlowReport r = runFlow(cs, quickOpts(SensorKind::Counter));

  EXPECT_GT(r.sensors.size(), 0u);
  EXPECT_EQ(r.mutantSpecs.size(), r.sensors.size() * 3);
  EXPECT_DOUBLE_EQ(100.0, r.analysis.killedPct()) << cs.name;
  // Counter has no correction capability.
  EXPECT_DOUBLE_EQ(-1.0, r.analysis.correctedPct());
  // Errors risen only for above-threshold delays: strictly between 0 and
  // 100 is the expected shape (threshold = 8 of 10 ticks).
  EXPECT_GT(r.analysis.risenPct(), 0.0) << cs.name;
  EXPECT_LT(r.analysis.risenPct(), 100.0) << cs.name;
  // Every delta mutant was measured by its sensor.
  for (const auto& res : r.analysis.results) {
    EXPECT_GT(res.measuredDelay, 0u) << cs.name << " mutant " << res.id;
    EXPECT_EQ(static_cast<std::uint64_t>(res.deltaTicks), res.measuredDelay)
        << cs.name << " mutant " << res.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, FlowOnCaseP, ::testing::Values(0, 1, 2));

TEST(Flow, TlmFasterThanRtl) {
  // The abstraction speedup claim (Table 3) in shape: measured on the
  // largest case study with a meaningful cycle budget.
  ips::CaseStudy cs = ips::buildPlasmaCase();
  FlowOptions opts = quickOpts(insertion::SensorKind::Razor);
  opts.testbenchCycles = 300;
  opts.runMutationAnalysis = false;
  FlowReport r = runFlow(cs, opts);
  EXPECT_LT(r.timings.tlmSeconds, r.timings.rtlSeconds)
      << "abstracted TLM must outrun the event-driven kernel";
}

TEST(Flow, StaTimeRecordedAndSmall) {
  ips::CaseStudy cs = ips::buildFilterCase();
  FlowOptions opts = quickOpts(insertion::SensorKind::Razor);
  opts.testbenchCycles = 60;
  opts.runMutationAnalysis = false;
  FlowReport r = runFlow(cs, opts);
  EXPECT_GE(r.timings.staSeconds, 0.0);
  EXPECT_LT(r.timings.staSeconds, 10.0);
}

}  // namespace
}  // namespace xlv::core
