// Heart-rate DSP: beat detection on the synthetic blood-flow waveform,
// filter-stage sanity, structural characteristics.
#include <gtest/gtest.h>

#include "ips/case_study.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"

namespace xlv::ips {
namespace {

using namespace xlv::ir;
using rtl::KernelConfig;
using rtl::RtlSimulator;

struct DspRun {
  int beats = 0;
  std::vector<std::uint64_t> rrIntervals;
  std::uint64_t maxEnergy = 0;
};

DspRun runDsp(int cycles) {
  CaseStudy cs = buildDspCase();
  Design d = elaborate(*cs.module);
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });
  DspRun out;
  for (int c = 0; c < cycles; ++c) {
    sim.runCycles(1);
    if (sim.valueUintByName("beat") == 1) {
      ++out.beats;
      out.rrIntervals.push_back(sim.valueUintByName("rr_interval"));
    }
    out.maxEnergy = std::max(out.maxEnergy, sim.valueUintByName("energy"));
  }
  return out;
}

TEST(Dsp, DetectsPulseTrain) {
  // Pulse period is 40 samples; in 2000 cycles ~50 pulses arrive. Allow for
  // threshold adaptation at the start.
  DspRun run = runDsp(2000);
  EXPECT_GE(run.beats, 30) << "missed most beats";
  EXPECT_LE(run.beats, 60) << "double-detections";
}

TEST(Dsp, InterBeatIntervalTracksPulsePeriod) {
  DspRun run = runDsp(2000);
  ASSERT_GE(run.rrIntervals.size(), 10u);
  // Skip the adaptation phase; the steady-state interval is the pulse
  // period (40) within a small tolerance.
  int good = 0, considered = 0;
  for (std::size_t i = 5; i < run.rrIntervals.size(); ++i) {
    ++considered;
    if (run.rrIntervals[i] >= 34 && run.rrIntervals[i] <= 46) ++good;
  }
  EXPECT_GE(good, (considered * 3) / 4)
      << "steady-state RR intervals strayed from the pulse period";
}

TEST(Dsp, EnergyRespondsToPulses) {
  DspRun run = runDsp(500);
  EXPECT_GT(run.maxEnergy, 1000u) << "integrator never charged";
}

TEST(Dsp, QuietInputProducesNoBeats) {
  CaseStudy cs = buildDspCase();
  Design d = elaborate(*cs.module);
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    s.setInputByName("rst", c < 2 ? 1 : 0);
    s.setInputByName("sample", 0);
  });
  int beats = 0;
  for (int c = 0; c < 800; ++c) {
    sim.runCycles(1);
    beats += static_cast<int>(sim.valueUintByName("beat"));
  }
  EXPECT_EQ(0, beats);
}

TEST(Dsp, StructuralCharacteristicsNearPaper) {
  CaseStudy cs = buildDspCase();
  Design d = elaborate(*cs.module);
  // Paper Table 1: FF = 536, 2 synchronous processes.
  EXPECT_GE(d.flipFlopBits(), 400);
  EXPECT_LE(d.flipFlopBits(), 700);
  EXPECT_EQ(2, d.countProcesses(true));
  EXPECT_GT(d.countProcesses(false), 8);
}

TEST(Dsp, ResetClearsState) {
  CaseStudy cs = buildDspCase();
  Design d = elaborate(*cs.module);
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    // Run, then re-assert reset.
    s.setInputByName("rst", (c < 2 || (c >= 300 && c < 302)) ? 1 : 0);
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) {
      if (n != "rst") s.setInputByName(n, v);
    });
  });
  sim.runCycles(303);
  EXPECT_EQ(0u, sim.valueUintByName("energy"));
  EXPECT_EQ(0u, sim.valueUintByName("rr_interval"));
}

}  // namespace
}  // namespace xlv::ips
