// Decimation filter: CIC DC gain, sine reconstruction, decimation strobe,
// structural characteristics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ips/case_study.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"

namespace xlv::ips {
namespace {

using namespace xlv::ir;
using rtl::KernelConfig;
using rtl::RtlSimulator;

std::vector<std::int64_t> collectPcm(
    const std::function<std::uint64_t(std::uint64_t)>& pdmOf, int cycles) {
  CaseStudy cs = buildFilterCase();
  Design d = elaborate(*cs.module);
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    s.setInputByName("rst", c < 2 ? 1 : 0);
    s.setInputByName("pdm", pdmOf(c));
  });
  std::vector<std::int64_t> pcm;
  for (int c = 0; c < cycles; ++c) {
    sim.runCycles(1);
    if (sim.valueUintByName("pcm_valid") == 1) {
      pcm.push_back(sim.store().get(d.findSymbol("pcm")).toInt());
    }
  }
  return pcm;
}

TEST(Filter, DecimationStrobeEverySixteenCycles) {
  auto pcm = collectPcm([](std::uint64_t) { return 1; }, 500);
  // ~500/16 outputs expected.
  EXPECT_GE(static_cast<int>(pcm.size()), 28);
  EXPECT_LE(static_cast<int>(pcm.size()), 33);
}

TEST(Filter, DcPositiveFullScale) {
  auto pcm = collectPcm([](std::uint64_t) { return 1; }, 900);
  ASSERT_GE(pcm.size(), 20u);
  // CIC DC gain 16^3 = 4096, FIR gain 1, output shift 4 => 256.
  for (std::size_t i = 12; i < pcm.size(); ++i) {
    EXPECT_NEAR(256.0, static_cast<double>(pcm[i]), 2.0) << "sample " << i;
  }
}

TEST(Filter, DcNegativeFullScale) {
  auto pcm = collectPcm([](std::uint64_t) { return 0; }, 900);
  ASSERT_GE(pcm.size(), 20u);
  for (std::size_t i = 12; i < pcm.size(); ++i) {
    EXPECT_NEAR(-256.0, static_cast<double>(pcm[i]), 2.0) << "sample " << i;
  }
}

TEST(Filter, FiftyPercentDutyIsMidScale) {
  auto pcm = collectPcm([](std::uint64_t c) { return c & 1; }, 900);
  ASSERT_GE(pcm.size(), 20u);
  for (std::size_t i = 12; i < pcm.size(); ++i) {
    EXPECT_NEAR(0.0, static_cast<double>(pcm[i]), 4.0) << "sample " << i;
  }
}

TEST(Filter, SineModulationReconstructs) {
  // Use the case study's own sigma-delta stream (sine + DC offset).
  CaseStudy cs = buildFilterCase();
  Design d = elaborate(*cs.module);
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });
  std::vector<std::int64_t> pcm;
  for (int c = 0; c < 2100; ++c) {
    sim.runCycles(1);
    if (sim.valueUintByName("pcm_valid") == 1) {
      pcm.push_back(sim.store().get(d.findSymbol("pcm")).toInt());
    }
  }
  ASSERT_GE(pcm.size(), 100u);
  // Discard the CIC settling transient, then check the signal swings with
  // the sine (amplitude 0.45 -> ~115 counts) around the DC offset (~51).
  const auto first = pcm.begin() + 24;
  const auto [mn, mx] = std::minmax_element(first, pcm.end());
  EXPECT_GT(*mx - *mn, 120) << "no visible sine swing";
  EXPECT_LT(*mx, 256);
  EXPECT_GT(*mn, -256);
  double mean = 0;
  for (auto it = first; it != pcm.end(); ++it) mean += static_cast<double>(*it);
  mean /= static_cast<double>(pcm.end() - first);
  EXPECT_NEAR(0.2 * 256.0, mean, 25.0) << "DC offset not reconstructed";
}

TEST(Filter, StructuralCharacteristicsNearPaper) {
  CaseStudy cs = buildFilterCase();
  Design d = elaborate(*cs.module);
  // Paper Table 1: FF = 128 — ours is wider (24-bit CIC datapath); same
  // order of magnitude, recorded in EXPERIMENTS.md.
  EXPECT_GE(d.flipFlopBits(), 120);
  EXPECT_LE(d.flipFlopBits(), 500);
  EXPECT_GE(d.countProcesses(true), 5);
  EXPECT_GT(d.countProcesses(false), 5);
}

}  // namespace
}  // namespace xlv::ips
