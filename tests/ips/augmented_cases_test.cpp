// Augmented case studies at RTL: the Counter-monitored IPs run healthy
// (MEAS_VAL = 0 everywhere), measure injected aging quantitatively, and the
// Razor-monitored IPs stay silent until a window delay appears — the
// system-level behaviours the flow certifies, exercised on the real IPs.
#include <gtest/gtest.h>

#include "core/flow.h"
#include "rtl/kernel.h"

namespace xlv::ips {
namespace {

using insertion::SensorKind;

core::FlowReport augmentedFlow(const CaseStudy& cs, SensorKind kind) {
  core::FlowOptions opts;
  opts.sensorKind = kind;
  opts.runMutationAnalysis = false;
  opts.measureRtl = false;
  opts.measureOptimized = false;
  opts.testbenchCycles = 1;
  return core::runFlow(cs, opts);
}

class AugmentedCaseP : public ::testing::TestWithParam<int> {
 protected:
  static CaseStudy caseFor(int idx) {
    switch (idx) {
      case 0: return buildPlasmaCase();
      case 1: return buildDspCase();
      default: return buildFilterCase();
    }
  }
};

TEST_P(AugmentedCaseP, CounterVersionHealthySiliconMeasuresZero) {
  CaseStudy cs = caseFor(GetParam());
  auto flow = augmentedFlow(cs, SensorKind::Counter);
  rtl::RtlSimulator<hdt::FourState> sim(
      flow.augmentedDesign, rtl::KernelConfig{cs.periodPs, cs.hfRatio, 100000});
  sim.setStimulus([&](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });
  for (int c = 0; c < 60; ++c) {
    sim.runCycles(1);
    EXPECT_EQ(1u, sim.valueUintByName("metric_ok")) << cs.name << " cycle " << c;
    EXPECT_EQ(0u, sim.valueUintByName("meas_val")) << cs.name << " cycle " << c;
  }
}

TEST_P(AugmentedCaseP, CounterVersionMeasuresInjectedAging) {
  CaseStudy cs = caseFor(GetParam());
  auto flow = augmentedFlow(cs, SensorKind::Counter);
  ASSERT_FALSE(flow.sensors.empty());
  // Age the most critical monitored path by 6 HF periods.
  const auto& worst = flow.sensors.front();
  const std::uint64_t tick = (cs.periodPs / 2) / static_cast<std::uint64_t>(cs.hfRatio + 1);

  rtl::RtlSimulator<hdt::FourState> sim(
      flow.augmentedDesign, rtl::KernelConfig{cs.periodPs, cs.hfRatio, 100000});
  sim.setStimulus([&](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });
  sim.injectDelay(flow.augmentedDesign.findSymbol(worst.endpointName), 6 * tick);
  std::uint64_t maxMeas = 0;
  for (int c = 0; c < 120; ++c) {
    sim.runCycles(1);
    maxMeas = std::max(maxMeas, sim.valueUintByName(worst.measValSignal));
  }
  EXPECT_EQ(6u, maxMeas) << cs.name << " endpoint " << worst.endpointName;
  // 6 <= threshold 8: tolerable, METRIC_OK holds.
  EXPECT_EQ(1u, sim.valueUintByName("metric_ok"));
}

TEST_P(AugmentedCaseP, RazorVersionSilentUntilWindowDelay) {
  CaseStudy cs = caseFor(GetParam());
  auto flow = augmentedFlow(cs, SensorKind::Razor);
  ASSERT_FALSE(flow.sensors.empty());
  const auto& worst = flow.sensors.front();

  rtl::RtlSimulator<hdt::FourState> sim(flow.augmentedDesign,
                                        rtl::KernelConfig{cs.periodPs, 0, 100000});
  sim.setStimulus([&](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
    s.setInputByName("recovery_en", 1);
  });
  for (int c = 0; c < 60; ++c) {
    sim.runCycles(1);
    ASSERT_EQ(1u, sim.valueUintByName("metric_ok")) << cs.name << " false alarm, cycle " << c;
  }
  // A window delay on the worst path raises the flag within a few cycles.
  sim.injectDelay(flow.augmentedDesign.findSymbol(worst.endpointName), cs.periodPs / 4);
  bool risen = false;
  for (int c = 0; c < 60 && !risen; ++c) {
    sim.runCycles(1);
    risen = sim.valueUintByName(worst.errorSignal) == 1;
  }
  EXPECT_TRUE(risen) << cs.name << " endpoint " << worst.endpointName;
}

INSTANTIATE_TEST_SUITE_P(Cases, AugmentedCaseP, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace xlv::ips
