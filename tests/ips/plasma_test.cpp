// Plasma CPU: instruction-level correctness against an architectural
// reference interpreter of the same MIPS subset, plus pipeline behaviours
// (forwarding, flush) and structural characteristics.
#include <gtest/gtest.h>

#include <vector>

#include "ips/case_study.h"
#include "ips/mips_asm.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"

namespace xlv::ips {
namespace {

using namespace xlv::ir;
using rtl::KernelConfig;
using rtl::RtlSimulator;

/// Architectural (non-pipelined) reference executor for the implemented
/// subset. Used as the golden ISA model: the pipelined core must produce the
/// same sequence of I/O writes.
class MipsRef {
 public:
  explicit MipsRef(std::vector<std::uint64_t> image) : imem_(std::move(image)), dmem_(256, 0) {}

  void step() {
    using u32 = std::uint32_t;
    const u32 instr = pc_ / 4 < imem_.size() ? static_cast<u32>(imem_[pc_ / 4]) : 0;
    u32 nextPc = pc_ + 4;
    const u32 op = instr >> 26;
    const u32 rs = (instr >> 21) & 31;
    const u32 rt = (instr >> 16) & 31;
    const u32 rd = (instr >> 11) & 31;
    const u32 sh = (instr >> 6) & 31;
    const u32 fn = instr & 63;
    const u32 imm = instr & 0xFFFF;
    const u32 simm = static_cast<u32>(static_cast<std::int32_t>(static_cast<std::int16_t>(imm)));
    auto wr = [&](u32 r, u32 v) {
      if (r != 0) rf_[r] = v;
    };
    switch (op) {
      case 0x00:
        switch (fn) {
          case 0x20: case 0x21: wr(rd, rf_[rs] + rf_[rt]); break;
          case 0x22: case 0x23: wr(rd, rf_[rs] - rf_[rt]); break;
          case 0x24: wr(rd, rf_[rs] & rf_[rt]); break;
          case 0x25: wr(rd, rf_[rs] | rf_[rt]); break;
          case 0x26: wr(rd, rf_[rs] ^ rf_[rt]); break;
          case 0x27: wr(rd, ~(rf_[rs] | rf_[rt])); break;
          case 0x2A:
            wr(rd, static_cast<std::int32_t>(rf_[rs]) < static_cast<std::int32_t>(rf_[rt]) ? 1 : 0);
            break;
          case 0x2B: wr(rd, rf_[rs] < rf_[rt] ? 1 : 0); break;
          case 0x00: wr(rd, rf_[rt] << sh); break;
          case 0x02: wr(rd, rf_[rt] >> sh); break;
          case 0x03:
            wr(rd, static_cast<u32>(static_cast<std::int32_t>(rf_[rt]) >> sh));
            break;
          case 0x04: wr(rd, rf_[rt] << (rf_[rs] & 31)); break;
          case 0x06: wr(rd, rf_[rt] >> (rf_[rs] & 31)); break;
          case 0x07:
            wr(rd, static_cast<u32>(static_cast<std::int32_t>(rf_[rt]) >> (rf_[rs] & 31)));
            break;
          case 0x08: nextPc = rf_[rs]; break;
          case 0x18: {
            const std::uint64_t p = static_cast<std::uint64_t>(rf_[rs]) * rf_[rt];
            hi_ = static_cast<u32>(p >> 32);
            lo_ = static_cast<u32>(p);
            break;
          }
          case 0x10: wr(rd, hi_); break;
          case 0x12: wr(rd, lo_); break;
          default: break;
        }
        break;
      case 0x08: case 0x09: wr(rt, rf_[rs] + simm); break;
      case 0x0A:
        wr(rt, static_cast<std::int32_t>(rf_[rs]) < static_cast<std::int32_t>(simm) ? 1 : 0);
        break;
      case 0x0B: wr(rt, rf_[rs] < simm ? 1 : 0); break;
      case 0x0C: wr(rt, rf_[rs] & imm); break;
      case 0x0D: wr(rt, rf_[rs] | imm); break;
      case 0x0E: wr(rt, rf_[rs] ^ imm); break;
      case 0x0F: wr(rt, imm << 16); break;
      case 0x23: {
        const u32 addr = rf_[rs] + simm;
        wr(rt, addr == 0x1004 ? ioIn : dmem_[(addr >> 2) & 0xFF]);
        break;
      }
      case 0x2B: {
        const u32 addr = rf_[rs] + simm;
        if (addr == 0x1000) {
          if (rf_[rt] != ioOut_) ioTrace.push_back(rf_[rt]);
          ioOut_ = rf_[rt];
        } else {
          dmem_[(addr >> 2) & 0xFF] = rf_[rt];
        }
        break;
      }
      case 0x04: if (rf_[rs] == rf_[rt]) nextPc = pc_ + 4 + (simm << 2); break;
      case 0x05: if (rf_[rs] != rf_[rt]) nextPc = pc_ + 4 + (simm << 2); break;
      case 0x02: nextPc = (pc_ & 0xF0000000) | ((instr & 0x03FFFFFF) << 2); break;
      case 0x03:
        wr(31, pc_ + 4);
        nextPc = (pc_ & 0xF0000000) | ((instr & 0x03FFFFFF) << 2);
        break;
      default: break;
    }
    pc_ = nextPc;
  }

  std::uint32_t reg(int i) const { return rf_[i]; }
  std::uint32_t ioIn = 0;
  std::vector<std::uint32_t> ioTrace;

 private:
  std::vector<std::uint64_t> imem_;
  std::vector<std::uint32_t> dmem_;
  std::uint32_t rf_[32] = {};
  std::uint32_t pc_ = 0, hi_ = 0, lo_ = 0;
  std::uint32_t ioOut_ = 0;
};

TEST(Plasma, IoWriteSequenceMatchesIsaReference) {
  CaseStudy cs = buildPlasmaCase();
  Design d = elaborate(*cs.module);

  // Pipelined core under the standard testbench.
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  std::vector<std::uint32_t> rtlTrace;
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });
  std::uint32_t lastIo = 0;
  for (int c = 0; c < 600; ++c) {
    sim.runCycles(1);
    const auto io = static_cast<std::uint32_t>(sim.valueUintByName("io_out"));
    if (io != lastIo) rtlTrace.push_back(io);
    lastIo = io;
  }

  // Reference executes the same firmware image architecturally.
  SymbolId imem = d.findSymbol("imem");
  ASSERT_NE(kNoSymbol, imem);
  std::vector<std::uint64_t> image;
  for (const auto& ai : d.arrayInits) {
    if (ai.array == imem) image = ai.words;
  }
  ASSERT_FALSE(image.empty());
  MipsRef ref(image);
  ref.ioIn = 0xC0FFEE00;
  for (int i = 0; i < 700; ++i) ref.step();

  ASSERT_GE(rtlTrace.size(), 12u) << "core produced too few I/O writes";
  ASSERT_GE(ref.ioTrace.size(), rtlTrace.size());
  for (std::size_t i = 0; i < rtlTrace.size(); ++i) {
    EXPECT_EQ(ref.ioTrace[i], rtlTrace[i]) << "I/O write #" << i;
  }
}

TEST(Plasma, FibonacciValuesAppearOnIo) {
  CaseStudy cs = buildPlasmaCase();
  Design d = elaborate(*cs.module);
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });
  std::vector<std::uint64_t> seen;
  std::uint64_t last = 0;
  for (int c = 0; c < 300; ++c) {
    sim.runCycles(1);
    const auto io = sim.valueUintByName("io_out");
    if (io != last) seen.push_back(io);
    last = io;
  }
  // First round (seed 0): Fibonacci values 1,2,3,5,8,13 over six
  // iterations, then HI of 13 * 2^30 = 3.
  const std::uint64_t expected[] = {1, 2, 3, 5, 8, 13, 3};
  ASSERT_GE(seen.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(expected[i], seen[i]) << "write " << i;
}

TEST(Plasma, InstructionsRetireContinuously) {
  CaseStudy cs = buildPlasmaCase();
  Design d = elaborate(*cs.module);
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });
  sim.runCycles(200);
  const auto ret200 = sim.valueUintByName("instret_out");
  sim.runCycles(200);
  const auto ret400 = sim.valueUintByName("instret_out");
  // The firmware loops forever; IPC is below 1 due to flush bubbles but
  // must stay well above 0.5 (only 1-in-~8 instructions branches).
  EXPECT_GT(ret200, 100u);
  EXPECT_GT(ret400, ret200 + 100);
}

TEST(Plasma, StructuralCharacteristicsNearPaper) {
  CaseStudy cs = buildPlasmaCase();
  Design d = elaborate(*cs.module);
  // Paper Table 1: FF = 1297 (32x32 register file plus pipeline state).
  const int ff = d.flipFlopBits();
  EXPECT_GE(ff, 1100);
  EXPECT_LE(ff, 1700);
  // Paper: 7 synchronous processes; ours is the same order.
  EXPECT_GE(d.countProcesses(true), 6);
  EXPECT_LE(d.countProcesses(true), 10);
  EXPECT_GT(d.countProcesses(false), 15);
}

TEST(Plasma, RegisterZeroStaysZero) {
  // A firmware writing to $0 must leave it zero: exercised implicitly by the
  // reference comparison, checked explicitly here via the register file.
  CaseStudy cs = buildPlasmaCase();
  Design d = elaborate(*cs.module);
  RtlSimulator<hdt::FourState> sim(d, KernelConfig{cs.periodPs, 0, 2000});
  sim.setStimulus([&](std::uint64_t c, RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });
  sim.runCycles(150);
  EXPECT_EQ(0u, sim.store().getArray(d.findSymbol("rf"), 0).toUint());
}

}  // namespace
}  // namespace xlv::ips
