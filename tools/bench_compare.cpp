// bench_compare — the CI perf ratchet (util/bench_compare.h).
//
// Compares freshly produced BENCH_<name>.json reports against the committed
// baselines in bench/baselines/ and exits nonzero when a ratcheted metric
// regressed. Run the benches at the SAME XLV_BENCH_SCALE the baselines were
// recorded at (see bench/baselines/README note in src/campaign/README.md) —
// the gating metrics are either scale-deterministic work counters or
// host-cancelling ratios, so a healthy run passes on any machine.
//
//   bench_compare --baseline-dir bench/baselines [--tolerance 0.25] BENCH_x.json...
//   bench_compare --baseline bench/baselines/BENCH_x.json --current BENCH_x.json
//
// Exit codes: 0 all reports within the ratchet, 1 usage / unreadable or
// malformed report, 2 at least one metric regressed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bench_compare.h"

namespace {

using namespace xlv;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "bench_compare: %s\n\n", error);
  std::fputs(
      "usage:\n"
      "  bench_compare --baseline-dir DIR [--tolerance T] CURRENT_JSON...\n"
      "  bench_compare --baseline FILE --current FILE [--tolerance T]\n"
      "\n"
      "Each CURRENT_JSON is compared against DIR/<its basename>. T is the\n"
      "fractional slack for the higher/lower-is-better rules (default 0.25).\n"
      "Exit 0 when every ratcheted metric holds, 2 on any regression.\n",
      stderr);
  std::exit(1);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string baseName(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselineDir, baselineFile, currentFile;
  double tolerance = 0.25;
  std::vector<std::string> currents;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage((std::string(flag) + " requires a value").c_str());
      return argv[++i];
    };
    if (arg == "--baseline-dir") {
      baselineDir = next("--baseline-dir");
    } else if (arg == "--baseline") {
      baselineFile = next("--baseline");
    } else if (arg == "--current") {
      currentFile = next("--current");
    } else if (arg == "--tolerance") {
      try {
        tolerance = std::stod(next("--tolerance"));
      } catch (const std::exception&) {
        usage("--tolerance: invalid number");
      }
    } else if (!arg.empty() && arg[0] == '-') {
      usage(("unknown flag '" + arg + "'").c_str());
    } else {
      currents.push_back(arg);
    }
  }
  if (tolerance < 0.0) usage("--tolerance must be >= 0");

  std::vector<std::pair<std::string, std::string>> pairs;  // (baseline, current)
  if (!baselineFile.empty() || !currentFile.empty()) {
    if (baselineFile.empty() || currentFile.empty() || !baselineDir.empty() ||
        !currents.empty()) {
      usage("--baseline/--current form takes exactly those two files");
    }
    pairs.emplace_back(baselineFile, currentFile);
  } else {
    if (baselineDir.empty()) usage("--baseline-dir DIR (or --baseline/--current) required");
    if (currents.empty()) usage("no current report files given");
    for (const auto& cur : currents) {
      pairs.emplace_back(baselineDir + "/" + baseName(cur), cur);
    }
  }

  bool regressed = false;
  try {
    for (const auto& [basePath, curPath] : pairs) {
      const util::BenchReport baseline = util::parseBenchJson(readFile(basePath));
      const util::BenchReport current = util::parseBenchJson(readFile(curPath));
      const util::BenchComparison cmp =
          util::compareBenchReports(baseline, current, tolerance);
      std::fputs(cmp.render().c_str(), stdout);
      regressed = regressed || !cmp.ok;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 1;
  }
  if (regressed) {
    std::fprintf(stderr,
                 "bench_compare: performance ratchet failed — a gated metric regressed "
                 "beyond tolerance %.2f\n",
                 tolerance);
    return 2;
  }
  std::printf("bench_compare: %zu report(s) within the ratchet (tolerance %.2f)\n",
              pairs.size(), tolerance);
  return 0;
}
