// xlv_campaign — process-level campaign sharding CLI (campaign/shard.h).
//
// Splits a campaign spec into N deterministic shards, runs each shard in a
// separate OS process, and merges the shard outputs back into one result
// that is bit-identical (CampaignResult::sameResults) to the single-process
// run. Typical multi-process session (shards may run on different hosts —
// every artifact is a self-contained versioned file):
//
//   xlv_campaign spec --preset smoke -o spec.xlv
//   xlv_campaign run --spec spec.xlv -o single.xlv          # reference
//   xlv_campaign plan --spec spec.xlv --shards 3 -o plan.xlv
//   xlv_campaign run-shard --spec spec.xlv --plan plan.xlv --index 0 -o s0.xlv &
//   xlv_campaign run-shard --spec spec.xlv --plan plan.xlv --index 1 -o s1.xlv &
//   xlv_campaign run-shard --spec spec.xlv --plan plan.xlv --index 2 -o s2.xlv &
//   wait
//   xlv_campaign merge --spec spec.xlv -o merged.xlv s0.xlv s1.xlv s2.xlv
//   xlv_campaign diff single.xlv merged.xlv                 # exit 0 iff identical
//
// Cross-run / cross-process artifact reuse: pass --cache-dir DIR to run and
// run-shard and the expensive immutable artifacts (golden traces, flow
// prefixes, per-mutant results) persist under DIR — a warm re-run, or a
// worker sharing DIR with its siblings, loads instead of recomputing while
// staying bit-identical. --cache-max-bytes caps the store with LRU
// eviction; --require-disk-hits makes a supposedly-warm run fail (exit 4)
// when the store served nothing, so CI catches a silently disabled cache.
//
// Native simulation backend: --backend native compiles the injected model
// into a shared library (see src/campaign/README.md); when no system C++
// compiler is available the campaign silently degrades to the bit-identical
// interpreter, so CI passes --require-native to turn that degradation into
// exit 5. --batch K co-simulates K mutants lock-step per analysis task.
//
// Service submissions: `submit` sends the spec to a running
// `xlv_campaignd serve` daemon over its Unix-domain socket (--socket) or
// loopback TCP port (--tcp-port), streams the per-unit results back, and
// reassembles them with the same mergeShards used everywhere else — so the
// served result diffs clean against a local run:
//
//   xlv_campaignd serve --socket /tmp/xlv.sock --workers 3 &
//   xlv_campaign submit --spec spec.xlv --socket /tmp/xlv.sock -o served.xlv
//   xlv_campaign diff single.xlv served.xlv
//
// Exit codes: 0 success (diff: identical), 1 usage or runtime error,
// 2 diff divergence, 3 campaign completed but one or more items errored
// (the output file is still written so the failure can be inspected and
// merged, but CI pipelines fail instead of passing vacuously), 4 a
// --require-disk-hits run reported zero artifact-store hits, 5 a
// --require-native run performed no native-backend work (interpreter
// fallback, e.g. no system compiler), 7 the server rejected the submission
// (backpressure or malformed spec; the reject reason and retry hint are
// printed), 9 the --disconnect-after-items test hook closed the connection
// on purpose.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/serialize.h"
#include "campaign/server.h"
#include "campaign/shard.h"
#include "util/artifact_store.h"
#include "util/fault_point.h"
#include "util/log.h"

namespace {

using namespace xlv;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "xlv_campaign: %s\n\n", error);
  std::fputs(
      "usage:\n"
      "  xlv_campaign spec --preset <name> [--threads N] [-o FILE]\n"
      "  xlv_campaign plan --spec FILE --shards N [--max-fragment M] [-o FILE]\n"
      "  xlv_campaign run --spec FILE [run flags] [cache flags] [-o FILE]\n"
      "  xlv_campaign run-shard --spec FILE --plan FILE --index I [run flags]\n"
      "                         [cache flags] [-o FILE]\n"
      "  xlv_campaign merge --spec FILE -o FILE SHARD_FILE...\n"
      "  xlv_campaign submit --spec FILE (--socket PATH | --tcp-port P)\n"
      "                      [--max-fragment M] [--client-name NAME]\n"
      "                      [--max-retries N] [--deadline-ms N]\n"
      "                      [--disconnect-after-items N] [-o FILE]\n"
      "  xlv_campaign diff RESULT_A RESULT_B\n"
      "  xlv_campaign show RESULT_FILE\n"
      "  xlv_campaign cache-gc --cache-dir DIR [--max-age-seconds N]\n"
      "                        [--cache-max-bytes N]\n"
      "\n"
      "submit sends the spec to a running `xlv_campaignd serve` daemon,\n"
      "streams the per-unit results back and merges them (bit-identical to\n"
      "a local run). --max-fragment asks the server for that stealable-unit\n"
      "granularity; --client-name labels the server's ledger entry;\n"
      "--max-retries N retries a rejected submission (or a refused\n"
      "connection) with jittered exponential backoff honoring the server's\n"
      "retry hint; --deadline-ms N asks the server to fail the campaign\n"
      "past that wall-clock budget; --disconnect-after-items N hard-closes\n"
      "the socket after N streamed results (a fault-injection hook;\n"
      "exits 9).\n"
      "presets: smoke (2 IPs x 2 sensor kinds x 2 corners), single (one\n"
      "Counter item, for --max-fragment splitting), failing (broken mid-\n"
      "campaign items, exercises the exit-3 path). -o defaults to stdout.\n"
      "cache flags: --cache-dir DIR persists golden traces, flow prefixes\n"
      "and per-mutant results under DIR (shared across processes and runs,\n"
      "bit-identical warm or cold); --cache-max-bytes N caps the store with\n"
      "LRU eviction; --require-disk-hits exits 4 when a warm run loaded\n"
      "nothing from the store. cache-gc runs store housekeeping: entries\n"
      "older than --max-age-seconds expire, then the byte cap is enforced.\n"
      "run flags: --backend auto|interpreter|native picks the simulation\n"
      "engine for every item (native compiles the injected model with the\n"
      "system C++ compiler and falls back to the bit-identical interpreter\n"
      "when none exists; auto defers to XLV_BACKEND); --batch K co-simulates\n"
      "K mutants lock-step per task (XLV_BATCH; results identical for any\n"
      "K); --require-native exits 5 when the run performed no native work.\n"
      "XLV_REFERENCE_SIM=1 disables the divergence-driven mutant fast path\n"
      "(full replay from reset; results are bit-identical either way).\n"
      "--verbose raises the log level to info.\n",
      stderr);
  std::exit(1);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeOutput(const std::string& path, const std::string& data) {
  if (path.empty() || path == "-") {
    std::fwrite(data.data(), 1, data.size(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << data)) throw std::runtime_error("cannot write '" + path + "'");
}

/// Minimal flag cursor: named flags in any order, positional operands kept.
struct Args {
  std::vector<std::string> positional;
  std::string spec, plan, out, preset, cacheDir, backend, socket, clientName;
  long shards = 0, index = -1, maxFragment = 0, threads = 0, cacheMaxBytes = 0;
  long maxAgeSeconds = 0, batch = 0, tcpPort = 0, disconnectAfterItems = -1;
  long maxRetries = 0, deadlineMs = 0;
  bool requireDiskHits = false;
  bool requireNative = false;

  static long parseLong(const std::string& flag, const std::string& v) {
    try {
      std::size_t end = 0;
      const long n = std::stol(v, &end);
      if (end != v.size()) throw std::invalid_argument(v);
      return n;
    } catch (const std::exception&) {
      usage(("flag " + flag + ": invalid integer '" + v + "'").c_str());
    }
  }
};

Args parseArgs(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage((std::string(flag) + " requires a value").c_str());
      return argv[++i];
    };
    if (arg == "--spec") {
      a.spec = next("--spec");
    } else if (arg == "--plan") {
      a.plan = next("--plan");
    } else if (arg == "-o" || arg == "--out") {
      a.out = next("-o");
    } else if (arg == "--preset") {
      a.preset = next("--preset");
    } else if (arg == "--shards") {
      a.shards = Args::parseLong(arg, next("--shards"));
    } else if (arg == "--index") {
      a.index = Args::parseLong(arg, next("--index"));
    } else if (arg == "--max-fragment") {
      a.maxFragment = Args::parseLong(arg, next("--max-fragment"));
    } else if (arg == "--threads") {
      a.threads = Args::parseLong(arg, next("--threads"));
    } else if (arg == "--cache-dir") {
      a.cacheDir = next("--cache-dir");
    } else if (arg == "--cache-max-bytes") {
      a.cacheMaxBytes = Args::parseLong(arg, next("--cache-max-bytes"));
    } else if (arg == "--max-age-seconds") {
      a.maxAgeSeconds = Args::parseLong(arg, next("--max-age-seconds"));
    } else if (arg == "--require-disk-hits") {
      a.requireDiskHits = true;
    } else if (arg == "--backend") {
      a.backend = next("--backend");
    } else if (arg == "--batch") {
      a.batch = Args::parseLong(arg, next("--batch"));
    } else if (arg == "--require-native") {
      a.requireNative = true;
    } else if (arg == "--socket") {
      a.socket = next("--socket");
    } else if (arg == "--tcp-port") {
      a.tcpPort = Args::parseLong(arg, next("--tcp-port"));
    } else if (arg == "--client-name") {
      a.clientName = next("--client-name");
    } else if (arg == "--disconnect-after-items") {
      a.disconnectAfterItems = Args::parseLong(arg, next("--disconnect-after-items"));
    } else if (arg == "--max-retries") {
      a.maxRetries = Args::parseLong(arg, next("--max-retries"));
    } else if (arg == "--deadline-ms") {
      a.deadlineMs = Args::parseLong(arg, next("--deadline-ms"));
    } else if (arg == "--verbose") {
      util::setLogLevel(util::LogLevel::Info);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      usage(("unknown flag '" + arg + "'").c_str());
    } else {
      a.positional.push_back(arg);
    }
  }
  return a;
}

campaign::CampaignSpec loadSpec(const Args& a) {
  if (a.spec.empty()) usage("--spec FILE is required");
  return campaign::decodeCampaignSpec(readFile(a.spec));
}

/// Apply the run-time engine overrides (--backend / --batch) to every item
/// of the loaded spec. The overrides never change results — backends and
/// batch sizes are bit-identical by construction — so a native run still
/// diffs clean against an interpreter reference.
void applyBackendOverrides(const Args& a, campaign::CampaignSpec& spec) {
  if (!a.backend.empty()) {
    const analysis::SimBackend be = analysis::simBackendFromName(a.backend);
    for (auto& item : spec.items) item.options.backend = be;
  }
  if (a.batch != 0) {
    if (a.batch < 1) usage("--batch must be >= 1");
    for (auto& item : spec.items) item.options.batch = static_cast<int>(a.batch);
  }
}

/// Subcommands that never run a campaign must reject the run flags too.
void rejectRunFlags(const Args& a, const char* cmd) {
  if (!a.backend.empty() || a.batch != 0 || a.requireNative) {
    usage((std::string(cmd) +
           " does not take run flags (--backend/--batch/--require-native "
           "apply to run and run-shard)")
              .c_str());
  }
}

/// Only submit talks to a server; the flags are meaningless elsewhere.
void rejectServiceFlags(const Args& a, const char* cmd) {
  if (!a.socket.empty() || a.tcpPort != 0 || !a.clientName.empty() ||
      a.disconnectAfterItems != -1 || a.maxRetries != 0 || a.deadlineMs != 0) {
    usage((std::string(cmd) +
           " does not take service flags (--socket/--tcp-port/--client-name/"
           "--max-retries/--deadline-ms/--disconnect-after-items apply to "
           "submit)")
              .c_str());
  }
}

/// Subcommands that never touch the store must REJECT cache flags, not
/// silently ignore them (a flag on the wrong pipeline stage doing nothing
/// is how a "cached" pipeline runs cold without anyone noticing).
void rejectCacheFlags(const Args& a, const char* cmd) {
  if (!a.cacheDir.empty() || a.cacheMaxBytes != 0 || a.maxAgeSeconds != 0 ||
      a.requireDiskHits) {
    usage((std::string(cmd) +
           " does not take cache flags (--cache-dir/--cache-max-bytes/"
           "--max-age-seconds/--require-disk-hits apply to run, run-shard, "
           "merge and cache-gc)")
              .c_str());
  }
}

/// Install the process-wide artifact store when --cache-dir was given.
void configureCache(const Args& a) {
  if (a.cacheMaxBytes < 0) usage("--cache-max-bytes must be >= 0 (0 = unbounded)");
  if (a.maxAgeSeconds < 0) usage("--max-age-seconds must be >= 0 (0 = never expire)");
  if (a.cacheDir.empty()) {
    if (a.requireDiskHits) usage("--require-disk-hits needs --cache-dir");
    if (a.cacheMaxBytes != 0) usage("--cache-max-bytes needs --cache-dir");
    if (a.maxAgeSeconds != 0) usage("--max-age-seconds needs --cache-dir");
    return;
  }
  util::configureProcessArtifactStore(util::ArtifactStoreConfig{
      a.cacheDir, static_cast<std::uint64_t>(a.cacheMaxBytes),
      static_cast<std::uint64_t>(a.maxAgeSeconds)});
}

/// Per-item failures don't abort a campaign, but they must fail the
/// process (campaign::campaignExitCode, exit 3): a pipeline whose every
/// stage exits 0 while zero mutants were simulated would pass vacuously.
/// Similarly, --require-disk-hits fails (exit 4) a run whose supposedly
/// warm artifact store served nothing.
int reportItemErrors(const char* what, const Args& a, const campaign::CampaignResult& r) {
  if (!r.ok()) {
    const auto* first = r.firstError();
    std::fprintf(stderr, "%s finished with item errors; first: task %zu (%s): %s\n", what,
                 first->taskId, first->label.c_str(), first->error.c_str());
    return campaign::campaignExitCode(r);
  }
  if (a.requireDiskHits && r.diskHits == 0) {
    std::fprintf(stderr,
                 "%s expected artifact-store hits (--require-disk-hits) but the store "
                 "served none (stores %d, evictions %d) — cache silently cold?\n",
                 what, r.diskStores, r.diskEvictions);
    return 4;
  }
  if (a.requireNative && r.nativeCompiles + r.nativeCacheHits == 0) {
    std::fprintf(stderr,
                 "%s expected native-backend work (--require-native) but none ran — "
                 "interpreter fallback (no system C++ compiler, or --backend/"
                 "XLV_BACKEND not set to native)?\n",
                 what);
    return 5;
  }
  return 0;
}

void printSummary(const campaign::CampaignResult& r) {
  std::printf("campaign '%s': %zu items, %s\n", r.name.c_str(), r.items.size(),
              r.ok() ? "ok" : "ERRORS");
  for (const auto& it : r.items) {
    if (!it.error.empty()) {
      std::printf("  [%4zu] %-44s ERROR: %s\n", it.taskId, it.label.c_str(),
                  it.error.c_str());
      continue;
    }
    const auto& an = it.report.analysis;
    std::printf("  [%4zu] %-44s mutants %3d  killed %5.1f%%  risen %5.1f%%\n", it.taskId,
                it.label.c_str(), an.total(), an.killedPct(), an.risenPct());
  }
  std::printf(
      "ledger: sim %.3fs, golden %.3fs, wall %.3fs, golden hits %d, prefix hits %d, "
      "mutant hits %d, threads %d\n"
      "cycles: simulated %llu, skipped %llu (fast-forward + early exit)\n"
      "store:  disk hits %d, stores %d, evictions %d\n"
      "native: compiles %d, cache hits %d, batched mutants %d\n",
      r.simSeconds, r.goldenSeconds, r.wallSeconds, r.goldenCacheHits, r.prefixCacheHits,
      r.mutantCacheHits, r.threadsUsed,
      static_cast<unsigned long long>(r.cyclesSimulated),
      static_cast<unsigned long long>(r.cyclesSkipped), r.diskHits, r.diskStores,
      r.diskEvictions, r.nativeCompiles, r.nativeCacheHits, r.batchedMutants);
}

int cmdSpec(const Args& a) {
  rejectServiceFlags(a, "spec");
  rejectCacheFlags(a, "spec");
  rejectRunFlags(a, "spec");
  if (a.preset.empty()) usage("--preset <name> is required");
  if (a.threads < 0) usage("--threads must be >= 0 (0 = auto)");
  campaign::CampaignSpec spec = campaign::builtinCampaignSpec(a.preset);
  if (a.threads != 0) spec.executor.threads = static_cast<int>(a.threads);
  writeOutput(a.out, campaign::encodeCampaignSpec(spec));
  std::fprintf(stderr, "spec '%s': %zu items, fingerprint %016llx\n", spec.name.c_str(),
               spec.items.size(),
               static_cast<unsigned long long>(campaign::campaignSpecFnv(spec)));
  return 0;
}

int cmdPlan(const Args& a) {
  rejectServiceFlags(a, "plan");
  rejectCacheFlags(a, "plan");
  rejectRunFlags(a, "plan");
  if (a.shards < 1) usage("--shards N (>= 1) is required");
  if (a.maxFragment < 0) usage("--max-fragment must be >= 0");
  const campaign::CampaignSpec spec = loadSpec(a);
  campaign::ShardPlanOptions opt;
  opt.shards = static_cast<int>(a.shards);
  opt.maxFragmentMutants = static_cast<std::size_t>(a.maxFragment);
  const campaign::ShardPlan plan = campaign::planShards(spec, opt);
  writeOutput(a.out, campaign::encodeShardPlan(plan));
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    std::size_t whole = 0, fragments = 0;
    for (const auto& u : plan.shards[s]) (u.wholeItem() ? whole : fragments)++;
    std::fprintf(stderr, "shard %zu: %zu whole items, %zu fragments\n", s, whole,
                 fragments);
  }
  return 0;
}

int cmdRun(const Args& a) {
  rejectServiceFlags(a, "run");
  campaign::CampaignSpec spec = loadSpec(a);
  applyBackendOverrides(a, spec);
  configureCache(a);
  const campaign::CampaignResult result = campaign::runCampaign(spec);
  writeOutput(a.out, campaign::encodeCampaignResult(result));
  return reportItemErrors("campaign", a, result);
}

int cmdRunShard(const Args& a) {
  rejectServiceFlags(a, "run-shard");
  if (a.plan.empty()) usage("--plan FILE is required");
  if (a.index < 0) usage("--index I (>= 0) is required");
  campaign::CampaignSpec spec = loadSpec(a);
  applyBackendOverrides(a, spec);
  configureCache(a);
  const campaign::ShardPlan plan = campaign::decodeShardPlan(readFile(a.plan));
  const campaign::ShardOutput out =
      campaign::runShard(spec, plan, static_cast<int>(a.index));
  writeOutput(a.out, campaign::encodeShardOutput(out));
  return reportItemErrors("shard", a, out.result);
}

int cmdMerge(const Args& a) {
  rejectServiceFlags(a, "merge");
  // merge aggregates the shards' ledgers, so --require-disk-hits can gate
  // it; the store itself plays no part here.
  if (!a.cacheDir.empty() || a.cacheMaxBytes != 0) {
    usage("merge takes --require-disk-hits only (no store is opened)");
  }
  rejectRunFlags(a, "merge");
  if (a.positional.empty()) usage("merge needs at least one shard output file");
  if (a.out.empty()) usage("merge requires -o FILE (the merged result)");
  const campaign::CampaignSpec spec = loadSpec(a);
  std::vector<campaign::ShardOutput> outputs;
  outputs.reserve(a.positional.size());
  for (const auto& path : a.positional) {
    outputs.push_back(campaign::decodeShardOutput(readFile(path)));
  }
  const campaign::CampaignResult merged = campaign::mergeShards(spec, outputs);
  writeOutput(a.out, campaign::encodeCampaignResult(merged));
  return reportItemErrors("merged campaign", a, merged);
}

/// Submit the spec to a running `xlv_campaignd serve` daemon and merge the
/// streamed results. The served result goes through the same writeOutput /
/// reportItemErrors path as a local run, so pipelines can swap `run` for
/// `submit` without changing their failure handling.
int cmdSubmit(const Args& a) {
  rejectCacheFlags(a, "submit");
  rejectRunFlags(a, "submit");
  if (a.socket.empty() && a.tcpPort == 0) {
    usage("submit needs a server address (--socket PATH or --tcp-port P)");
  }
  if (a.tcpPort < 0 || a.tcpPort > 65535) usage("--tcp-port must be in [1, 65535]");
  if (a.maxFragment < 0) usage("--max-fragment must be >= 0");
  if (a.maxRetries < 0) usage("--max-retries must be >= 0");
  if (a.deadlineMs < 0) usage("--deadline-ms must be >= 0 (0 = no deadline)");
  const campaign::CampaignSpec spec = loadSpec(a);
  campaign::SubmitOptions opt;
  opt.socketPath = a.socket;
  opt.tcpPort = static_cast<int>(a.tcpPort);
  if (!a.clientName.empty()) opt.clientName = a.clientName;
  opt.maxFragmentMutants = static_cast<std::size_t>(a.maxFragment);
  opt.disconnectAfterItems = a.disconnectAfterItems;
  opt.maxRetries = static_cast<int>(a.maxRetries);
  opt.deadlineMs = static_cast<std::uint64_t>(a.deadlineMs);
  const campaign::SubmitOutcome outcome = campaign::submitCampaign(spec, opt);
  if (outcome.retries > 0) {
    std::fprintf(stderr, "submission retried %llu time(s)\n",
                 static_cast<unsigned long long>(outcome.retries));
  }
  if (outcome.rejected) {
    std::fprintf(stderr,
                 "submission rejected: %s (retry after %llu ms)\n",
                 outcome.rejectReason.c_str(),
                 static_cast<unsigned long long>(outcome.retryAfterMs));
    return 7;
  }
  if (outcome.disconnected) {
    std::fprintf(stderr,
                 "disconnected on purpose after %zu item results "
                 "(--disconnect-after-items %ld)\n",
                 outcome.outputs.size(), a.disconnectAfterItems);
    return 9;
  }
  if (!outcome.error.empty()) {
    std::fprintf(stderr, "submit failed: %s\n", outcome.error.c_str());
    return 1;
  }
  writeOutput(a.out, campaign::encodeCampaignResult(outcome.result));
  std::fprintf(stderr,
               "served campaign %llu: %llu units over %zu result frames\n",
               static_cast<unsigned long long>(outcome.campaignId),
               static_cast<unsigned long long>(outcome.unitCount),
               outcome.outputs.size());
  if (!outcome.quarantined.empty()) {
    std::fprintf(stderr, "server quarantined %zu unit(s); their items carry errors\n",
                 outcome.quarantined.size());
  }
  return reportItemErrors("served campaign", a, outcome.result);
}

int cmdDiff(const Args& a) {
  rejectServiceFlags(a, "diff");
  rejectCacheFlags(a, "diff");
  rejectRunFlags(a, "diff");
  if (a.positional.size() != 2) usage("diff takes exactly two result files");
  const campaign::CampaignResult x = campaign::decodeCampaignResult(readFile(a.positional[0]));
  const campaign::CampaignResult y = campaign::decodeCampaignResult(readFile(a.positional[1]));
  if (x.sameResults(y)) {
    std::printf("identical: %zu items\n", x.items.size());
    return 0;
  }
  if (x.items.size() != y.items.size()) {
    std::printf("DIVERGED: %zu vs %zu items\n", x.items.size(), y.items.size());
    return 2;
  }
  for (std::size_t i = 0; i < x.items.size(); ++i) {
    // Narrow the divergence per item with the same comparator, by
    // comparing single-item results.
    campaign::CampaignResult a1, b1;
    a1.items.push_back(x.items[i]);
    b1.items.push_back(y.items[i]);
    if (!a1.sameResults(b1)) {
      std::printf("DIVERGED at task %zu: '%s' vs '%s'\n", i, x.items[i].label.c_str(),
                  y.items[i].label.c_str());
    }
  }
  return 2;
}

int cmdShow(const Args& a) {
  rejectServiceFlags(a, "show");
  rejectCacheFlags(a, "show");
  rejectRunFlags(a, "show");
  if (a.positional.size() != 1) usage("show takes exactly one result file");
  printSummary(campaign::decodeCampaignResult(readFile(a.positional[0])));
  return 0;
}

int cmdCacheGc(const Args& a) {
  rejectServiceFlags(a, "cache-gc");
  rejectRunFlags(a, "cache-gc");
  if (a.cacheDir.empty()) usage("cache-gc requires --cache-dir DIR");
  if (a.requireDiskHits) usage("cache-gc does not take --require-disk-hits");
  if (a.cacheMaxBytes < 0) usage("--cache-max-bytes must be >= 0 (0 = unbounded)");
  if (a.maxAgeSeconds < 0) usage("--max-age-seconds must be >= 0 (0 = never expire)");
  util::ArtifactStore store(util::ArtifactStoreConfig{
      a.cacheDir, static_cast<std::uint64_t>(a.cacheMaxBytes),
      static_cast<std::uint64_t>(a.maxAgeSeconds)});
  // Construction already swept (aged entries + temp orphans); gc() reports
  // a complete pass so the numbers below reflect this invocation.
  store.gc();
  const util::ArtifactStoreStats s = store.stats();
  std::printf("cache-gc '%s': expired %zu, evicted %zu, remaining %llu bytes\n",
              a.cacheDir.c_str(), s.expired, s.evictions,
              static_cast<unsigned long long>(store.diskBytes()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    // Strict XLV_FAULTS parse up front: a typo aborts with a message here
    // instead of throwing from a noexcept write path mid-run.
    xlv::util::initFaultPointsFromEnv();
    const Args a = parseArgs(argc, argv, 2);
    if (cmd == "spec") return cmdSpec(a);
    if (cmd == "plan") return cmdPlan(a);
    if (cmd == "run") return cmdRun(a);
    if (cmd == "run-shard") return cmdRunShard(a);
    if (cmd == "merge") return cmdMerge(a);
    if (cmd == "submit") return cmdSubmit(a);
    if (cmd == "diff") return cmdDiff(a);
    if (cmd == "show") return cmdShow(a);
    if (cmd == "cache-gc") return cmdCacheGc(a);
    usage(("unknown command '" + cmd + "'").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xlv_campaign %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
