// xlv_campaignd — campaign dispatcher daemon (campaign/dispatch.h) and
// campaign service (campaign/server.h).
//
// Where xlv_campaign shards a campaign STATICALLY (plan once, run each slice
// in its own process, merge by hand), the daemon owns the whole loop: it
// splits the spec into stealable units (whole items and mutant-range
// fragments), spawns a pool of worker subprocesses of ITSELF (the internal
// `worker` subcommand), schedules by work-stealing — an idle worker claims
// the heaviest queued unit — and merges the streamed results incrementally
// into one CampaignResult that is bit-identical (sameResults) to the
// single-process run. A worker that crashes, exits or goes silent past the
// heartbeat timeout is SIGKILLed/reaped and its unit re-queued; the retry
// is safe because unit results are bit-identical by construction.
//
//   xlv_campaign spec --preset single -o spec.xlv
//   xlv_campaignd run --spec spec.xlv --workers 3 --max-fragment 2 \
//                     --ledger ledger.json -o daemon.xlv
//   xlv_campaign run --spec spec.xlv -o single.xlv
//   xlv_campaign diff single.xlv daemon.xlv     # exit 0 iff identical
//
// `serve` turns the same worker pool into a long-lived service on a
// Unix-domain socket (or loopback TCP): many clients submit campaigns
// concurrently (`xlv_campaign submit --socket ...`), units are scheduled
// round-robin-fair across campaigns and heaviest-first within one, results
// stream back per unit, and a bounded admission queue answers overload with
// a structured reject instead of buffering without limit:
//
//   xlv_campaignd serve --socket /tmp/xlv.sock --workers 3 \
//                       --max-campaigns-served 3 --ledger serve_ledger.json
//
// Workers accept the same --cache-dir/--cache-max-bytes flags as
// xlv_campaign run, so the pool shares ONE artifact store: the first worker
// to finish a golden trace or flow prefix stores it, the others load it.
//
// Env knobs (all strict — a malformed value aborts with a message, it never
// silently runs with a default): XLV_WORKERS (pool size when --workers is
// absent), XLV_HEARTBEAT_MS / XLV_HEARTBEAT_TIMEOUT_MS (defaults for the
// corresponding flags). Fault-injection hooks for the test harness
// (XLV_TEST_DIE_AFTER_ITEMS / XLV_TEST_HANG_AFTER_ITEMS /
// XLV_TEST_EXIT_AFTER_ITEMS, scoped by XLV_TEST_FAULT_WORKER to one
// worker's generation 0) are documented in campaign/dispatch.h.
//
// Exit codes: 0 success, 1 usage or runtime error, 3 campaign completed but
// one or more items errored (the merged output is still written), 6
// dispatch failure (a unit exhausted its retry budget, or the whole worker
// pool died). The internal worker subcommand exits 0 on clean shutdown and
// nonzero on protocol errors (see campaign/dispatch.h).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/dispatch.h"
#include "campaign/serialize.h"
#include "campaign/server.h"
#include "campaign/shard.h"
#include "util/artifact_store.h"
#include "util/fault_point.h"
#include "util/log.h"

namespace {

using namespace xlv;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "xlv_campaignd: %s\n\n", error);
  std::fputs(
      "usage:\n"
      "  xlv_campaignd run --spec FILE [--workers N] [--max-fragment M]\n"
      "                    [--heartbeat-ms N] [--heartbeat-timeout-ms N]\n"
      "                    [--max-attempts N] [--max-respawns N]\n"
      "                    [--cache-dir DIR] [--cache-max-bytes N]\n"
      "                    [--ledger FILE] [-o FILE] [--verbose]\n"
      "  xlv_campaignd serve (--socket PATH | --tcp-port P) [--workers N]\n"
      "                    [--max-fragment M] [--max-pending-units N]\n"
      "                    [--max-campaigns N] [--max-campaigns-served N]\n"
      "                    [--retry-after-ms N] [--heartbeat-ms N]\n"
      "                    [--heartbeat-timeout-ms N] [--max-attempts N]\n"
      "                    [--max-respawns N] [--max-client-frame-bytes N]\n"
      "                    [--client-read-timeout-ms N] [cache flags]\n"
      "                    [--ledger FILE] [--verbose]\n"
      "  xlv_campaignd worker [--spec FILE] --index I --generation G\n"
      "                       --heartbeat-ms N [cache flags]   (internal)\n"
      "\n"
      "run dispatches one campaign across a pool of worker subprocesses with\n"
      "work-stealing scheduling and crash-recovery re-queue; the merged\n"
      "result (-o, default stdout) is bit-identical to a single-process\n"
      "`xlv_campaign run`. --max-fragment M splits items into mutant-range\n"
      "fragments of at most M mutants — the stealable unit size. --ledger\n"
      "writes the scheduling ledger (submissions, re-queues, kills) as JSON.\n"
      "\n"
      "serve accepts campaign submissions from many concurrent clients\n"
      "(`xlv_campaign submit`) on a Unix-domain socket (--socket) or\n"
      "loopback TCP port (--tcp-port), multiplexing them over one worker\n"
      "pool: round-robin-fair across campaigns, heaviest-first within one,\n"
      "bounded admission (--max-pending-units/--max-campaigns; overload is\n"
      "answered with a structured reject carrying --retry-after-ms). A\n"
      "dying client's campaign is cancelled. --max-campaigns-served stops\n"
      "the server after that many campaigns finished (0 = serve forever);\n"
      "--ledger writes per-campaign scheduling entries as JSON on exit.\n"
      "SIGTERM/SIGINT drain the server: in-flight campaigns finish, new\n"
      "submissions are rejected with a retry hint, then it exits 0 (a\n"
      "second signal stops immediately). A unit that exhausts its attempt\n"
      "budget no longer fails its campaign: multi-mutant fragments are\n"
      "bisected to isolate the poison mutant and the irreducible unit is\n"
      "quarantined with a structured per-item error. --max-client-frame-\n"
      "bytes caps untrusted client frames (default 16 MiB, structured\n"
      "reject); --client-read-timeout-ms closes half-open clients that\n"
      "never complete a submission (default 30000, 0 = off). XLV_FAULTS\n"
      "arms deterministic chaos injection (util/fault_point.h grammar).\n"
      "\n"
      "--cache-dir is forwarded to every worker, so the pool shares one\n"
      "artifact store. XLV_WORKERS sets the pool size when --workers is\n"
      "absent; XLV_HEARTBEAT_MS / XLV_HEARTBEAT_TIMEOUT_MS set the flag\n"
      "defaults (strict parses: a malformed value aborts).\n",
      stderr);
  std::exit(1);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeOutput(const std::string& path, const std::string& data) {
  if (path.empty() || path == "-") {
    std::fwrite(data.data(), 1, data.size(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !(out << data)) throw std::runtime_error("cannot write '" + path + "'");
}

struct Args {
  std::string spec, out, ledger, cacheDir, socket;
  long workers = 0, maxFragment = 0, index = -1, generation = -1;
  long heartbeatMs = 0, heartbeatTimeoutMs = 0, maxAttempts = 0, maxRespawns = -1;
  long cacheMaxBytes = 0;
  long tcpPort = 0, maxPendingUnits = 0, maxCampaigns = 0, maxCampaignsServed = 0;
  long retryAfterMs = -1;
  long maxClientFrameBytes = 0, clientReadTimeoutMs = -1;

  static long parseLong(const std::string& flag, const std::string& v) {
    try {
      std::size_t end = 0;
      const long n = std::stol(v, &end);
      if (end != v.size()) throw std::invalid_argument(v);
      return n;
    } catch (const std::exception&) {
      usage(("flag " + flag + ": invalid integer '" + v + "'").c_str());
    }
  }
};

/// Strict env default for a positive tunable: envLongStrict's contract
/// (throw on malformed, fallback when unset) plus a positivity check —
/// exactly as strict as XLV_WORKERS.
long envPositive(const char* name, long fallback) {
  const long v = campaign::envLongStrict(name, fallback);
  if (v < 1) {
    throw std::invalid_argument(std::string(name) + "=" + std::to_string(v) +
                                " must be a positive integer");
  }
  return v;
}

Args parseArgs(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage((std::string(flag) + " requires a value").c_str());
      return argv[++i];
    };
    if (arg == "--spec") {
      a.spec = next("--spec");
    } else if (arg == "-o" || arg == "--out") {
      a.out = next("-o");
    } else if (arg == "--ledger") {
      a.ledger = next("--ledger");
    } else if (arg == "--socket") {
      a.socket = next("--socket");
    } else if (arg == "--tcp-port") {
      a.tcpPort = Args::parseLong(arg, next("--tcp-port"));
    } else if (arg == "--workers") {
      a.workers = Args::parseLong(arg, next("--workers"));
    } else if (arg == "--max-fragment") {
      a.maxFragment = Args::parseLong(arg, next("--max-fragment"));
    } else if (arg == "--max-pending-units") {
      a.maxPendingUnits = Args::parseLong(arg, next("--max-pending-units"));
    } else if (arg == "--max-campaigns") {
      a.maxCampaigns = Args::parseLong(arg, next("--max-campaigns"));
    } else if (arg == "--max-campaigns-served") {
      a.maxCampaignsServed = Args::parseLong(arg, next("--max-campaigns-served"));
    } else if (arg == "--retry-after-ms") {
      a.retryAfterMs = Args::parseLong(arg, next("--retry-after-ms"));
    } else if (arg == "--max-client-frame-bytes") {
      a.maxClientFrameBytes = Args::parseLong(arg, next("--max-client-frame-bytes"));
    } else if (arg == "--client-read-timeout-ms") {
      a.clientReadTimeoutMs = Args::parseLong(arg, next("--client-read-timeout-ms"));
    } else if (arg == "--index") {
      a.index = Args::parseLong(arg, next("--index"));
    } else if (arg == "--generation") {
      a.generation = Args::parseLong(arg, next("--generation"));
    } else if (arg == "--heartbeat-ms") {
      a.heartbeatMs = Args::parseLong(arg, next("--heartbeat-ms"));
    } else if (arg == "--heartbeat-timeout-ms") {
      a.heartbeatTimeoutMs = Args::parseLong(arg, next("--heartbeat-timeout-ms"));
    } else if (arg == "--max-attempts") {
      a.maxAttempts = Args::parseLong(arg, next("--max-attempts"));
    } else if (arg == "--max-respawns") {
      a.maxRespawns = Args::parseLong(arg, next("--max-respawns"));
    } else if (arg == "--cache-dir") {
      a.cacheDir = next("--cache-dir");
    } else if (arg == "--cache-max-bytes") {
      a.cacheMaxBytes = Args::parseLong(arg, next("--cache-max-bytes"));
    } else if (arg == "--verbose") {
      util::setLogLevel(util::LogLevel::Info);
    } else {
      usage(("unknown argument '" + arg + "'").c_str());
    }
  }
  return a;
}

void configureCache(const Args& a) {
  if (a.cacheMaxBytes < 0) usage("--cache-max-bytes must be >= 0 (0 = unbounded)");
  if (a.cacheDir.empty()) {
    if (a.cacheMaxBytes != 0) usage("--cache-max-bytes needs --cache-dir");
    return;
  }
  util::configureProcessArtifactStore(util::ArtifactStoreConfig{
      a.cacheDir, static_cast<std::uint64_t>(a.cacheMaxBytes), 0});
}

std::vector<std::string> workerCommand(const char* self, const Args& a) {
  std::vector<std::string> cmd = {self, "worker"};
  if (!a.cacheDir.empty()) {
    cmd.push_back("--cache-dir");
    cmd.push_back(a.cacheDir);
    if (a.cacheMaxBytes > 0) {
      cmd.push_back("--cache-max-bytes");
      cmd.push_back(std::to_string(a.cacheMaxBytes));
    }
  }
  return cmd;
}

int cmdRun(const char* self, const Args& a) {
  if (a.spec.empty()) usage("--spec FILE is required");
  if (a.workers < 0) usage("--workers must be >= 0 (0 = XLV_WORKERS or hardware)");
  if (a.maxFragment < 0) usage("--max-fragment must be >= 0 (0 = whole items)");
  const campaign::CampaignSpec spec = campaign::decodeCampaignSpec(readFile(a.spec));

  campaign::DispatchOptions opt;
  opt.workers = static_cast<int>(a.workers);
  opt.maxFragmentMutants = static_cast<std::size_t>(a.maxFragment);
  opt.heartbeatIntervalMs = static_cast<int>(
      a.heartbeatMs > 0 ? a.heartbeatMs : envPositive("XLV_HEARTBEAT_MS", 200));
  opt.heartbeatTimeoutMs =
      static_cast<int>(a.heartbeatTimeoutMs > 0
                           ? a.heartbeatTimeoutMs
                           : envPositive("XLV_HEARTBEAT_TIMEOUT_MS", 10000));
  if (a.maxAttempts > 0) opt.maxTaskAttempts = static_cast<int>(a.maxAttempts);
  if (a.maxRespawns >= 0) opt.maxWorkerRespawns = static_cast<int>(a.maxRespawns);
  opt.workerCommand = workerCommand(self, a);

  campaign::DispatchResult res;
  try {
    res = campaign::runDispatcher(spec, opt);
  } catch (const campaign::DispatchError& e) {
    std::fprintf(stderr, "xlv_campaignd run: %s\n", e.what());
    return 6;
  }
  writeOutput(a.out, campaign::encodeCampaignResult(res.result));
  if (!a.ledger.empty()) {
    writeOutput(a.ledger, campaign::encodeDispatchLedgerJson(res.ledger));
  }
  std::fprintf(stderr,
               "campaignd: %llu tasks, %llu submissions, %zu re-queues, %llu duplicate "
               "results, %llu workers spawned (%llu respawns, %llu killed)\n",
               static_cast<unsigned long long>(res.ledger.tasksTotal),
               static_cast<unsigned long long>(res.ledger.submissions),
               res.ledger.requeuedShards.size(),
               static_cast<unsigned long long>(res.ledger.duplicateResults),
               static_cast<unsigned long long>(res.ledger.workersSpawned),
               static_cast<unsigned long long>(res.ledger.workerRespawns),
               static_cast<unsigned long long>(res.ledger.workersKilled));
  if (!res.result.ok()) {
    const auto* first = res.result.firstError();
    std::fprintf(stderr, "campaignd finished with item errors; first: task %zu (%s): %s\n",
                 first->taskId, first->label.c_str(), first->error.c_str());
    return campaign::campaignExitCode(res.result);
  }
  return 0;
}

int cmdServe(const char* self, const Args& a) {
  if (a.socket.empty() && a.tcpPort <= 0) {
    usage("serve: --socket PATH or --tcp-port P is required");
  }
  if (a.workers < 0) usage("--workers must be >= 0 (0 = XLV_WORKERS or hardware)");
  if (a.maxFragment < 0) usage("--max-fragment must be >= 0 (0 = whole items)");

  campaign::ServeOptions opt;
  opt.socketPath = a.socket;
  opt.tcpPort = static_cast<int>(a.tcpPort);
  opt.workers = static_cast<int>(a.workers);
  opt.maxFragmentMutants = static_cast<std::size_t>(a.maxFragment);
  opt.heartbeatIntervalMs = static_cast<int>(
      a.heartbeatMs > 0 ? a.heartbeatMs : envPositive("XLV_HEARTBEAT_MS", 200));
  opt.heartbeatTimeoutMs =
      static_cast<int>(a.heartbeatTimeoutMs > 0
                           ? a.heartbeatTimeoutMs
                           : envPositive("XLV_HEARTBEAT_TIMEOUT_MS", 10000));
  if (a.maxAttempts > 0) opt.maxTaskAttempts = static_cast<int>(a.maxAttempts);
  if (a.maxRespawns >= 0) opt.maxWorkerRespawns = static_cast<int>(a.maxRespawns);
  if (a.maxPendingUnits > 0) opt.maxPendingUnits = static_cast<std::size_t>(a.maxPendingUnits);
  if (a.maxCampaigns > 0) opt.maxCampaigns = static_cast<std::size_t>(a.maxCampaigns);
  if (a.maxCampaignsServed > 0) {
    opt.maxCampaignsServed = static_cast<std::uint64_t>(a.maxCampaignsServed);
  }
  if (a.retryAfterMs >= 0) opt.rejectRetryAfterMs = static_cast<std::uint64_t>(a.retryAfterMs);
  if (a.maxClientFrameBytes < 0) usage("--max-client-frame-bytes must be >= 1");
  if (a.maxClientFrameBytes > 0) {
    opt.maxClientFrameBytes = static_cast<std::size_t>(a.maxClientFrameBytes);
  }
  if (a.clientReadTimeoutMs >= 0) {
    opt.clientReadTimeoutMs = static_cast<int>(a.clientReadTimeoutMs);
  }
  // The daemon owns its process: SIGTERM/SIGINT mean "drain and exit 0".
  opt.enableSignalDrain = true;
  opt.workerCommand = workerCommand(self, a);

  campaign::ServeResult res;
  try {
    res = campaign::runCampaignServer(opt);
  } catch (const campaign::DispatchError& e) {
    std::fprintf(stderr, "xlv_campaignd serve: %s\n", e.what());
    return 6;
  }
  if (!a.ledger.empty()) {
    writeOutput(a.ledger, campaign::encodeServeLedgerJson(res.ledger));
  }
  std::fprintf(stderr,
               "campaignd serve: %llu accepted (%llu completed, %llu cancelled), "
               "%llu rejected, %llu submissions, %llu workers spawned (%llu respawns, "
               "%llu killed)\n",
               static_cast<unsigned long long>(res.ledger.campaignsAccepted),
               static_cast<unsigned long long>(res.ledger.campaignsCompleted),
               static_cast<unsigned long long>(res.ledger.campaignsCancelled),
               static_cast<unsigned long long>(res.ledger.campaignsRejected),
               static_cast<unsigned long long>(res.ledger.submissions),
               static_cast<unsigned long long>(res.ledger.workersSpawned),
               static_cast<unsigned long long>(res.ledger.workerRespawns),
               static_cast<unsigned long long>(res.ledger.workersKilled));
  return 0;
}

int cmdWorker(const Args& a) {
  if (a.index < 0) usage("worker: --index I (>= 0) is required");
  if (a.generation < 0) usage("worker: --generation G (>= 0) is required");
  configureCache(a);
  // --spec is optional: run-mode workers get their campaign up front,
  // serve-mode workers get per-submit spec handoff paths instead.
  campaign::CampaignSpec spec;
  const bool haveSpec = !a.spec.empty();
  if (haveSpec) spec = campaign::decodeCampaignSpec(readFile(a.spec));
  campaign::DispatchWorkerOptions opt;
  opt.workerIndex = static_cast<int>(a.index);
  opt.generation = static_cast<int>(a.generation);
  opt.heartbeatIntervalMs = a.heartbeatMs > 0 ? static_cast<int>(a.heartbeatMs) : 200;
  return campaign::runDispatchWorker(haveSpec ? &spec : nullptr, opt);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    // Parse XLV_FAULTS up front so a malformed grammar is a clean startup
    // diagnostic, not a throw from deep inside a noexcept write path.
    xlv::util::initFaultPointsFromEnv();
    const Args a = parseArgs(argc, argv, 2);
    if (cmd == "run") return cmdRun(argv[0], a);
    if (cmd == "serve") return cmdServe(argv[0], a);
    if (cmd == "worker") return cmdWorker(a);
    usage(("unknown command '" + cmd + "'").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xlv_campaignd %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
