// Saboteur insertion: the RTL-level fault-injection alternative the paper
// positions itself against (Section 2.2, MEFISTO [41]).
//
// A saboteur is a structural modification of the RTL: a corruption element
// spliced onto a signal, activated by a dedicated control input. Where the
// paper's mutants live at TLM and displace updates in *time*, saboteurs live
// at RTL and corrupt *values*. Supporting both lets the library demonstrate
// the methodology comparison: saboteur campaigns require an RTL simulation
// per fault, while the mutant campaigns run at TLM speed.
//
// Mechanics: for target signal s driven by process P, the saboteur renames
// s's driver to feed an internal wire s__pre, then adds a combinational
// corruption stage:
//     s = sab_enable ? corrupt(s__pre) : s__pre
// with corruption kinds: stuck-at-0, stuck-at-1, bit-flip (XOR mask).
// A top-level input port `sab_enable` controls activation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.h"

namespace xlv::mutation {

enum class SaboteurKind { StuckAtZero, StuckAtOne, BitFlip };

const char* saboteurKindName(SaboteurKind k);

struct SaboteurSpec {
  std::string targetSignal;
  SaboteurKind kind = SaboteurKind::BitFlip;
  std::uint64_t mask = ~0ULL;  ///< BitFlip: which bits to invert
};

struct InsertedSaboteur {
  SaboteurSpec spec;
  std::string preSignal;     ///< renamed original driver target
  std::string enablePort;    ///< activation input
};

struct SaboteurResult {
  std::shared_ptr<ir::Module> sabotaged;
  std::vector<InsertedSaboteur> saboteurs;
};

/// Splice saboteurs onto `ip`. Each spec gets its own enable port
/// ("sab_en_<i>"). Targets must be scalar signals driven by exactly one
/// process of the top module; violations throw std::invalid_argument.
SaboteurResult insertSaboteurs(const ir::Module& ip, const std::vector<SaboteurSpec>& specs);

}  // namespace xlv::mutation
