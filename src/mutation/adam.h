// ADAM — Automatic Delay Analysis and Mutation (paper Section 6 / Fig. 9).
//
// Delays do not exist at TLM, so they are modeled as mutants: code
// modifications that postpone one signal's update to a chosen point of the
// TLM scheduler. ADAM performs the injection exactly as the paper's
// Fig. 9(g)(h): each assignment `sig <= expr` in the driving synchronous
// process is rewritten to `tmp := expr` (an immediate variable write), and
// the actual signal update `sig <= tmp` is applied by the scheduler at the
// phase selected by the mutant class:
//
//   * MinDelay  — first delta cycle after the rising edge (Fig. 9b);
//   * MaxDelay  — just before the falling edge of the clock (Fig. 9c);
//   * DeltaDelay(n) — after n high-frequency clock periods (Fig. 9d),
//     requires the design to have a high-frequency clock.
//
// While a mutant is inactive, its target's update is applied at the normal
// edge-commit point, so the injected model is cycle-equivalent to the
// original (verified by tests).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/design.h"

namespace xlv::mutation {

enum class MutantKind { MinDelay, MaxDelay, DeltaDelay };

const char* mutantKindName(MutantKind k);

/// Reverse of mutantKindName (the one canonical mapping shared by wire
/// codecs and cache keys); nullopt on an unknown name.
std::optional<MutantKind> mutantKindFromName(std::string_view name);

struct MutantSpec {
  std::string targetSignal;  ///< flat name of the monitored register
  MutantKind kind = MutantKind::MinDelay;
  int deltaTicks = 1;        ///< DeltaDelay: HF periods of delay (1-based)

  bool operator==(const MutantSpec&) const = default;
};

struct InjectedMutant {
  int id = -1;
  MutantSpec spec;
  ir::SymbolId target = ir::kNoSymbol;
  ir::SymbolId tmpVar = ir::kNoSymbol;  ///< shared per target
};

struct InjectedDesign {
  ir::Design design;
  std::vector<InjectedMutant> mutants;

  /// Distinct mutated target symbols (each has one tmp variable).
  std::vector<std::pair<ir::SymbolId, ir::SymbolId>> targets() const;
};

/// Inject all `specs` into a copy of `original`. Mutants naming the same
/// target share one tmp variable and one code rewrite.
///
/// Throws std::invalid_argument when a target does not exist, is not a
/// scalar register driven by a single rising-edge synchronous process, is
/// assigned through bit-ranges, or when a DeltaDelay mutant is requested on
/// a design without a high-frequency clock.
InjectedDesign injectMutants(const ir::Design& original, const std::vector<MutantSpec>& specs);

}  // namespace xlv::mutation
