#include "mutation/saboteur.h"

#include <stdexcept>
#include <unordered_map>

#include "ir/builder.h"
#include "ir/walk.h"

namespace xlv::mutation {

using namespace xlv::ir;

const char* saboteurKindName(SaboteurKind k) {
  switch (k) {
    case SaboteurKind::StuckAtZero: return "stuck-at-0";
    case SaboteurKind::StuckAtOne: return "stuck-at-1";
    case SaboteurKind::BitFlip: return "bit-flip";
  }
  return "?";
}

namespace {

/// Deep-copy of the module (same helper shape as insertion's cloneModule,
/// local to avoid a dependency cycle between the two libraries).
std::shared_ptr<Module> clone(const Module& m, const std::string& name) {
  auto out = std::make_shared<Module>(name);
  for (const auto& s : m.symbols()) out->addSymbol(s);
  for (const auto& p : m.processes()) out->addProcess(p);
  for (const auto& i : m.instances()) out->addInstance(i);
  for (const auto& ai : m.arrayInits()) out->addArrayInit(ai);
  return out;
}

ExprPtr corruptExpr(SaboteurKind kind, std::uint64_t mask, SymbolId pre, Type t) {
  ExprPtr ref = makeRef(pre, t);
  switch (kind) {
    case SaboteurKind::StuckAtZero:
      return makeConst(t.width, 0);
    case SaboteurKind::StuckAtOne:
      return makeConst(t.width,
                       t.width >= 64 ? ~0ULL : ((1ULL << t.width) - 1));
    case SaboteurKind::BitFlip:
      return makeBinary(BinOp::Xor, ref, makeConst(t.width, mask));
  }
  return ref;
}

}  // namespace

SaboteurResult insertSaboteurs(const ir::Module& ip, const std::vector<SaboteurSpec>& specs) {
  SaboteurResult result;
  result.sabotaged = clone(ip, ip.name() + "_sab");
  Module& m = *result.sabotaged;

  int idx = 0;
  for (const auto& spec : specs) {
    const SymbolId target = m.findSymbol(spec.targetSignal);
    if (target == kNoSymbol) {
      throw std::invalid_argument("saboteur: no signal named '" + spec.targetSignal + "'");
    }
    const Symbol targetSym = m.symbol(target);
    if (targetSym.kind != SymKind::Signal) {
      throw std::invalid_argument("saboteur: target '" + spec.targetSignal +
                                  "' is not a scalar signal");
    }

    // Find the unique driving process.
    int driver = -1;
    for (std::size_t pi = 0; pi < m.processes().size(); ++pi) {
      std::set<SymbolId> writes;
      collectWrites(*m.processes()[pi].body, writes);
      if (writes.count(target)) {
        if (driver >= 0) {
          throw std::invalid_argument("saboteur: target '" + spec.targetSignal +
                                      "' has multiple drivers");
        }
        driver = static_cast<int>(pi);
      }
    }
    if (driver < 0) {
      throw std::invalid_argument("saboteur: target '" + spec.targetSignal +
                                  "' has no driving process");
    }

    const std::string suffix = std::to_string(idx);

    // New pre-corruption wire takes over the original driver's writes.
    Symbol pre;
    pre.name = spec.targetSignal + "__pre" + suffix;
    pre.kind = SymKind::Signal;
    pre.type = targetSym.type;
    const SymbolId preId = m.addSymbol(std::move(pre));
    {
      std::unordered_map<SymbolId, SymbolId> remap{{target, preId}};
      auto& proc = m.processes()[static_cast<std::size_t>(driver)];
      proc.body = remapStmt(proc.body, remap);
      if (!proc.isSync) proc.sensitivity = deriveSensitivity(*proc.body);
    }

    // Activation port.
    Symbol en;
    en.name = "sab_en_" + suffix;
    en.kind = SymKind::Signal;
    en.type = Type{1, false};
    en.dir = PortDir::In;
    const SymbolId enId = m.addSymbol(std::move(en));

    // Corruption stage.
    Process p;
    p.name = "saboteur_" + suffix;
    p.isSync = false;
    ExprPtr cond = makeBinary(BinOp::Eq, makeRef(enId, Type{1, false}), makeConst(1, 1));
    ExprPtr corrupted = corruptExpr(spec.kind, spec.mask, preId, targetSym.type);
    ExprPtr pass = makeRef(preId, targetSym.type);
    p.body = makeBlock({makeAssign(target, makeSelect(cond, corrupted, pass))});
    p.sensitivity = deriveSensitivity(*p.body);
    m.addProcess(std::move(p));

    InsertedSaboteur info;
    info.spec = spec;
    info.preSignal = spec.targetSignal + "__pre" + suffix;
    info.enablePort = "sab_en_" + suffix;
    result.saboteurs.push_back(std::move(info));
    ++idx;
  }
  return result;
}

}  // namespace xlv::mutation
