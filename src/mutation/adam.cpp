#include "mutation/adam.h"

#include <map>
#include <stdexcept>

#include "ir/walk.h"

namespace xlv::mutation {

using namespace xlv::ir;

const char* mutantKindName(MutantKind k) {
  switch (k) {
    case MutantKind::MinDelay: return "min-delay";
    case MutantKind::MaxDelay: return "max-delay";
    case MutantKind::DeltaDelay: return "delta-delay";
  }
  return "?";
}

std::optional<MutantKind> mutantKindFromName(std::string_view name) {
  if (name == "min-delay") return MutantKind::MinDelay;
  if (name == "max-delay") return MutantKind::MaxDelay;
  if (name == "delta-delay") return MutantKind::DeltaDelay;
  return std::nullopt;
}

std::vector<std::pair<SymbolId, SymbolId>> InjectedDesign::targets() const {
  std::vector<std::pair<SymbolId, SymbolId>> out;
  for (const auto& m : mutants) {
    bool seen = false;
    for (const auto& [t, v] : out) {
      if (t == m.target) {
        seen = true;
        break;
      }
    }
    if (!seen) out.emplace_back(m.target, m.tmpVar);
  }
  return out;
}

namespace {

/// Locate the unique rising-edge synchronous process assigning `target`.
int findDriver(const Design& d, SymbolId target, const std::string& name) {
  int driver = -1;
  for (std::size_t pi = 0; pi < d.processes.size(); ++pi) {
    std::set<SymbolId> writes;
    collectWrites(*d.processes[pi].body, writes);
    if (writes.count(target) == 0) continue;
    const auto& p = d.processes[pi];
    if (!p.isSync || p.edge != EdgeKind::Rising || p.clock != d.mainClock || p.postEdge) {
      throw std::invalid_argument("adam: target '" + name +
                                  "' is not driven by a rising-edge synchronous process");
    }
    driver = static_cast<int>(pi);
  }
  if (driver < 0) {
    throw std::invalid_argument("adam: target '" + name + "' has no driving process");
  }
  return driver;
}

}  // namespace

InjectedDesign injectMutants(const Design& original, const std::vector<MutantSpec>& specs) {
  InjectedDesign out;
  out.design = original;  // deep enough: statement trees are immutable/shared

  std::map<SymbolId, SymbolId> tmpOf;  // target -> tmp variable
  int nextId = 0;

  for (const auto& spec : specs) {
    Design& d = out.design;
    const SymbolId target = d.findSymbol(spec.targetSignal);
    if (target == kNoSymbol) {
      throw std::invalid_argument("adam: no signal named '" + spec.targetSignal + "'");
    }
    const Symbol& ts = d.symbol(target);
    if (ts.kind != SymKind::Signal) {
      throw std::invalid_argument("adam: target '" + spec.targetSignal +
                                  "' is not a scalar signal");
    }
    if (!d.isRegister[static_cast<std::size_t>(target)]) {
      throw std::invalid_argument("adam: target '" + spec.targetSignal + "' is not a register");
    }
    if (spec.kind == MutantKind::DeltaDelay && d.hfClock == kNoSymbol) {
      throw std::invalid_argument(
          "adam: delta-delay mutant requires a high-frequency clock in the design");
    }

    auto it = tmpOf.find(target);
    if (it == tmpOf.end()) {
      // First mutant on this target: perform the Fig. 9(g)(h) rewrite.
      const int driver = findDriver(d, target, spec.targetSignal);

      Symbol tmp;
      tmp.name = "adam_tmp_" + spec.targetSignal;
      tmp.kind = SymKind::Variable;
      tmp.type = ts.type;
      const SymbolId tmpId = d.symbols.size();
      d.symbols.push_back(std::move(tmp));
      d.isRegister.push_back(false);

      bool sawRange = false;
      auto newBody = rewriteAssigns(
          d.processes[static_cast<std::size_t>(driver)].body,
          [&](const StmtPtr& s) -> StmtPtr {
            if (s->target != target) return s;
            if (s->kind == StmtKind::ArrayWrite) {
              throw std::invalid_argument("adam: array targets are unsupported");
            }
            if (s->hi >= 0) {
              sawRange = true;
              return s;
            }
            auto n = std::make_shared<Stmt>(*s);
            n->target = tmpId;
            return n;
          });
      if (sawRange) {
        throw std::invalid_argument("adam: target '" + spec.targetSignal +
                                    "' uses bit-range assignments (unsupported)");
      }
      d.processes[static_cast<std::size_t>(driver)].body = newBody;
      it = tmpOf.emplace(target, tmpId).first;
    }

    InjectedMutant im;
    im.id = nextId++;
    im.spec = spec;
    im.target = target;
    im.tmpVar = it->second;
    out.mutants.push_back(std::move(im));
  }
  return out;
}

}  // namespace xlv::mutation
