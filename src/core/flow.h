// VerificationFlow: the paper's four-step methodology (Fig. 3) as
// composable stages plus a facade:
//
//   stageElaborate   — elaborate the clean IP (step 0);
//   stageInsertion   — STA-driven sensor insertion (step 1, Section 4);
//   stageAbstraction — RTL-to-TLM abstraction (step 2, Section 5);
//   stageInjection   — delay-mutant injection (step 3, Section 6);
//   stageTimings     — the cross-level timing measurements behind
//                      Tables 3, 4 and 5;
//   stageAnalysis    — mutation analysis (step 4, Section 7).
//
// runFlow() chains all stages on one (IP × sensor-kind) combination —
// today's monolithic behavior. The stages are public so the campaign layer
// (campaign/campaign.h) can launch them per combination across threads, or
// reuse an expensive prefix (elaborate + insertion + injection) while
// sweeping only the analysis stage.
//
// Each stage reads its inputs from, and writes its outputs into, the
// FlowReport accumulator; stages after stageInsertion only touch fields the
// earlier stages produced, so a FlowReport fragment can be shared read-only
// once its producing stage has run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abstraction/abstractor.h"
#include "analysis/mutation_analysis.h"
#include "insertion/insertion.h"
#include "ips/case_study.h"
#include "mutation/adam.h"
#include "rtl/kernel.h"
#include "sta/sta.h"

namespace xlv::core {

struct FlowOptions {
  insertion::SensorKind sensorKind = insertion::SensorKind::Razor;
  /// Override the case study's testbench length (0 = keep).
  std::uint64_t testbenchCycles = 0;
  /// Simulation-time measurements repeat this many times; the mean is kept
  /// (the paper averages over a number of executions).
  int timingRepetitions = 1;
  bool measureRtl = true;          ///< event-driven kernel baseline (Table 3)
  bool measureOptimized = true;    ///< HDTLib 2-state policy (Table 4)
  bool runMutationAnalysis = true; ///< Table 5
  /// Worker threads for the per-mutant analysis campaign: 1 = serial,
  /// 0 = auto (XLV_THREADS / hardware), n > 1 = exactly n. A campaign that
  /// already parallelizes across flows should keep this at 1.
  int analysisThreads = 1;
};

struct FlowTimings {
  double rtlSeconds = 0.0;        ///< event-driven RTL kernel, 4-state
  double tlmSeconds = 0.0;        ///< abstracted TLM model, 4-state
  double tlmOptSeconds = 0.0;     ///< abstracted TLM model, HDTLib 2-state
  double injectedSeconds = 0.0;   ///< injected TLM model (mutants inactive)
  double staSeconds = 0.0;
};

struct FlowLoc {
  int rtlClean = 0;      ///< emitted VHDL of the original IP
  int rtlAugmented = 0;  ///< emitted VHDL after sensor insertion
  int tlm = 0;           ///< emitted SystemC-TLM C++ of the abstracted IP
  int tlmInjected = 0;   ///< with ADAM mutants
};

struct FlowReport {
  std::string ipName;
  insertion::SensorKind sensorKind = insertion::SensorKind::Razor;
  sta::StaReport sta;
  ir::Design cleanDesign;
  ir::Design augmentedDesign;
  std::vector<insertion::InsertedSensor> sensors;
  int skippedEndpoints = 0;
  double sensorAreaGates = 0.0;
  mutation::InjectedDesign injected;
  std::vector<mutation::MutantSpec> mutantSpecs;
  analysis::AnalysisReport analysis;
  FlowTimings timings;
  FlowLoc loc;
  int hfRatio = 0;  ///< 0 for Razor versions, case-study ratio for Counter
};

/// The effective cycle budget of a flow invocation.
std::uint64_t flowCycles(const ips::CaseStudy& cs, const FlowOptions& opts);

// --- composable stages (each fills its slice of the FlowReport) -------------
void stageElaborate(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);
void stageInsertion(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);
void stageAbstraction(FlowReport& report);
void stageInjection(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);
void stageTimings(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);
void stageAnalysis(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);

/// Execute the full flow on one case study (all stages, in order).
FlowReport runFlow(const ips::CaseStudy& cs, const FlowOptions& opts);

/// Individual timing probes (used by the benches for finer control).
double timeRtlSimulation(const ir::Design& d, const ips::CaseStudy& cs, int hfRatio,
                         std::uint64_t cycles);
template <class P>
double timeTlmSimulation(const ir::Design& d, const ips::CaseStudy& cs, int hfRatio,
                         std::uint64_t cycles);

extern template double timeTlmSimulation<hdt::FourState>(const ir::Design&,
                                                         const ips::CaseStudy&, int,
                                                         std::uint64_t);
extern template double timeTlmSimulation<hdt::TwoState>(const ir::Design&,
                                                        const ips::CaseStudy&, int,
                                                        std::uint64_t);

}  // namespace xlv::core
