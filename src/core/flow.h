// VerificationFlow: the paper's four-step methodology as one facade
// (Fig. 3): (1) STA-driven sensor insertion, (2) RTL-to-TLM abstraction,
// (3) delay-mutant injection, (4) mutation analysis — plus the cross-level
// timing measurements behind Tables 3, 4 and 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abstraction/abstractor.h"
#include "analysis/mutation_analysis.h"
#include "insertion/insertion.h"
#include "ips/case_study.h"
#include "mutation/adam.h"
#include "rtl/kernel.h"
#include "sta/sta.h"

namespace xlv::core {

struct FlowOptions {
  insertion::SensorKind sensorKind = insertion::SensorKind::Razor;
  /// Override the case study's testbench length (0 = keep).
  std::uint64_t testbenchCycles = 0;
  /// Simulation-time measurements repeat this many times; the mean is kept
  /// (the paper averages over a number of executions).
  int timingRepetitions = 1;
  bool measureRtl = true;          ///< event-driven kernel baseline (Table 3)
  bool measureOptimized = true;    ///< HDTLib 2-state policy (Table 4)
  bool runMutationAnalysis = true; ///< Table 5
};

struct FlowTimings {
  double rtlSeconds = 0.0;        ///< event-driven RTL kernel, 4-state
  double tlmSeconds = 0.0;        ///< abstracted TLM model, 4-state
  double tlmOptSeconds = 0.0;     ///< abstracted TLM model, HDTLib 2-state
  double injectedSeconds = 0.0;   ///< injected TLM model (mutants inactive)
  double staSeconds = 0.0;
};

struct FlowLoc {
  int rtlClean = 0;      ///< emitted VHDL of the original IP
  int rtlAugmented = 0;  ///< emitted VHDL after sensor insertion
  int tlm = 0;           ///< emitted SystemC-TLM C++ of the abstracted IP
  int tlmInjected = 0;   ///< with ADAM mutants
};

struct FlowReport {
  std::string ipName;
  insertion::SensorKind sensorKind = insertion::SensorKind::Razor;
  sta::StaReport sta;
  ir::Design cleanDesign;
  ir::Design augmentedDesign;
  std::vector<insertion::InsertedSensor> sensors;
  int skippedEndpoints = 0;
  double sensorAreaGates = 0.0;
  mutation::InjectedDesign injected;
  std::vector<mutation::MutantSpec> mutantSpecs;
  analysis::AnalysisReport analysis;
  FlowTimings timings;
  FlowLoc loc;
  int hfRatio = 0;  ///< 0 for Razor versions, case-study ratio for Counter
};

/// Execute the full flow on one case study.
FlowReport runFlow(const ips::CaseStudy& cs, const FlowOptions& opts);

/// Individual timing probes (used by the benches for finer control).
double timeRtlSimulation(const ir::Design& d, const ips::CaseStudy& cs, int hfRatio,
                         std::uint64_t cycles);
template <class P>
double timeTlmSimulation(const ir::Design& d, const ips::CaseStudy& cs, int hfRatio,
                         std::uint64_t cycles);

extern template double timeTlmSimulation<hdt::FourState>(const ir::Design&,
                                                         const ips::CaseStudy&, int,
                                                         std::uint64_t);
extern template double timeTlmSimulation<hdt::TwoState>(const ir::Design&,
                                                        const ips::CaseStudy&, int,
                                                        std::uint64_t);

}  // namespace xlv::core
