// VerificationFlow: the paper's four-step methodology (Fig. 3) as
// composable stages plus a facade:
//
//   stageElaborate   — elaborate the clean IP (step 0);
//   stageInsertion   — STA-driven sensor insertion (step 1, Section 4);
//   stageAbstraction — RTL-to-TLM abstraction (step 2, Section 5);
//   stageInjection   — delay-mutant injection (step 3, Section 6);
//   stageTimings     — the cross-level timing measurements behind
//                      Tables 3, 4 and 5;
//   stageAnalysis    — mutation analysis (step 4, Section 7).
//
// runFlow() chains all stages on one (IP × sensor-kind) combination —
// today's monolithic behavior. The stages are public so the campaign layer
// (campaign/campaign.h) can launch them per combination across threads, or
// reuse an expensive prefix (elaborate + insertion + injection) while
// sweeping only the analysis stage.
//
// Each stage reads its inputs from, and writes its outputs into, the
// FlowReport accumulator; stages after stageInsertion only touch fields the
// earlier stages produced, so a FlowReport fragment can be shared read-only
// once its producing stage has run.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "abstraction/abstractor.h"
#include "analysis/mutation_analysis.h"
#include "insertion/insertion.h"
#include "ips/case_study.h"
#include "mutation/adam.h"
#include "rtl/kernel.h"
#include "sta/sta.h"
#include "util/once_cache.h"

namespace xlv::core {

/// Which slice of the generated mutant set an analysis runs — the
/// "mutant-set variant" sweep axis. Full keeps every mutant; MinDelay /
/// MaxDelay keep, per monitored endpoint, only the least / most severe
/// mutant (Razor: the MinDelay / MaxDelay kind; Counter: the smallest /
/// largest deltaTicks of the endpoint's DeltaDelay triple).
enum class MutantSetVariant { Full, MinDelay, MaxDelay };

const char* mutantSetVariantName(MutantSetVariant v) noexcept;

struct FlowOptions {
  insertion::SensorKind sensorKind = insertion::SensorKind::Razor;
  /// Override the case study's testbench length (0 = keep).
  std::uint64_t testbenchCycles = 0;
  // --- sweep-axis overrides (unset = keep the case study's value) ----------
  /// PVT / V-f operating-point corner for the STA binning (Table 1 points;
  /// unset = sta::StaConfig's default worst-setup corner).
  std::optional<sta::Corner> staCorner;
  std::optional<double> staThresholdFraction;
  std::optional<double> staSpreadFraction;
  /// Counter-version HF clock ratio override (ignored for Razor).
  std::optional<int> hfRatio;
  /// Mutant-set slice injected and analyzed (see MutantSetVariant).
  MutantSetVariant mutantSet = MutantSetVariant::Full;
  /// Analyze only injected-mutant indices [mutantBegin, mutantEnd) of the
  /// (already variant-sliced) set; 0/0 = every mutant. Process-level shard
  /// fragments of one oversized item use this — the full set is still
  /// injected (so the augmented design, its fingerprint and the golden
  /// trace stay identical to the unsharded run) and MutantResult ids stay
  /// global, which is what lets campaign/shard.h stitch fragment reports
  /// back into the single-process result bit-identically.
  std::size_t mutantBegin = 0;
  std::size_t mutantEnd = 0;
  /// Share the golden trace through the process-wide cache
  /// (analysis/golden_cache.h). Off by default: single flows gain nothing;
  /// sweeps turn it on so axis points differing only in mutant set / STA
  /// binning of an identical critical set skip the golden re-run.
  bool useGoldenCache = false;
  /// Reuse per-mutant results through the process-wide cache
  /// (analysis/mutant_cache.h). Off by default for the same reason; sweeps
  /// turn it on so mutant-set-variant points (full ⊃ min/max) — and, with a
  /// util::processArtifactStore() configured, warm re-runs and sharded
  /// workers — skip the per-mutant co-simulations.
  bool useMutantCache = false;
  /// Simulation engine for the mutation campaign (golden recording and all
  /// mutant co-simulations): Auto defers to XLV_BACKEND, Native compiles
  /// the injected model into a shared library (interpreter fallback when no
  /// system compiler is available). Results are bit-identical either way.
  analysis::SimBackend backend = analysis::SimBackend::Auto;
  /// Mutants co-simulated lock-step per campaign task (0 = XLV_BATCH or 1).
  int batch = 0;
  /// Simulation-time measurements repeat this many times; the mean is kept
  /// (the paper averages over a number of executions).
  int timingRepetitions = 1;
  bool measureRtl = true;          ///< event-driven kernel baseline (Table 3)
  bool measureTlm = true;          ///< abstracted TLM model timing (Table 3)
  bool measureOptimized = true;    ///< HDTLib 2-state policy (Table 4)
  bool runMutationAnalysis = true; ///< Table 5
  /// Worker threads for the per-mutant analysis campaign: 1 = serial,
  /// 0 = auto (XLV_THREADS / hardware), n > 1 = exactly n. A campaign that
  /// already parallelizes across flows should keep this at 1.
  int analysisThreads = 1;
};

struct FlowTimings {
  double rtlSeconds = 0.0;        ///< event-driven RTL kernel, 4-state
  double tlmSeconds = 0.0;        ///< abstracted TLM model, 4-state
  double tlmOptSeconds = 0.0;     ///< abstracted TLM model, HDTLib 2-state
  double injectedSeconds = 0.0;   ///< injected TLM model (mutants inactive)
  double staSeconds = 0.0;
};

struct FlowLoc {
  int rtlClean = 0;      ///< emitted VHDL of the original IP
  int rtlAugmented = 0;  ///< emitted VHDL after sensor insertion
  int tlm = 0;           ///< emitted SystemC-TLM C++ of the abstracted IP
  int tlmInjected = 0;   ///< with ADAM mutants
};

struct FlowReport {
  std::string ipName;
  insertion::SensorKind sensorKind = insertion::SensorKind::Razor;
  sta::StaReport sta;
  ir::Design cleanDesign;
  ir::Design augmentedDesign;
  std::vector<insertion::InsertedSensor> sensors;
  int skippedEndpoints = 0;
  double sensorAreaGates = 0.0;
  mutation::InjectedDesign injected;
  std::vector<mutation::MutantSpec> mutantSpecs;
  analysis::AnalysisReport analysis;
  FlowTimings timings;
  FlowLoc loc;
  int hfRatio = 0;  ///< 0 for Razor versions, case-study ratio for Counter
};

/// The effective cycle budget of a flow invocation.
std::uint64_t flowCycles(const ips::CaseStudy& cs, const FlowOptions& opts);

/// The effective HF clock ratio (Counter: case-study value unless
/// overridden; Razor: always 0).
int flowHfRatio(const ips::CaseStudy& cs, const FlowOptions& opts);

/// Apply the mutant-set variant slice (FlowOptions::mutantSet) to a
/// generated mutant set. Full returns the input unchanged; MinDelay /
/// MaxDelay keep one mutant per endpoint (stable: first match wins on ties).
std::vector<mutation::MutantSpec> sliceMutantSet(
    const std::vector<mutation::MutantSpec>& specs, MutantSetVariant variant);

// --- shared stage prefixes ---------------------------------------------------
// A FlowPrefix is the immutable result of the elaborate + insertion stages
// (the re-elaboration a sweep must not repeat): sweep points that agree on
// (IP, sensor kind, corner, threshold/spread binning, clock period) share
// one prefix and only run injection/timings/analysis per point. hfRatio,
// cycles and the mutant set deliberately do NOT key the prefix — they only
// affect later stages, and runFlowWithPrefix recomputes the per-point
// hfRatio on its private FlowReport copy.

struct FlowPrefix {
  FlowReport report;  ///< fragment filled by stageElaborate + stageInsertion
};
using FlowPrefixPtr = std::shared_ptr<const FlowPrefix>;

/// Build the shared prefix: stageElaborate + stageInsertion.
FlowPrefix buildFlowPrefix(const ips::CaseStudy& cs, const FlowOptions& opts);

/// Rebuild a prefix from a previously computed STA report — the disk-spill
/// path of the prefix cache (campaign/serialize.h: decodeFlowPrefix).
/// Elaboration and sensor insertion re-run deterministically against the
/// given report (skipping the STA traversal), so the result is identical to
/// buildFlowPrefix modulo timing fields, provided `sta` came from the same
/// (cs, opts) — which the artifact key guarantees and the decoder
/// cross-checks.
FlowPrefix rebuildFlowPrefix(const ips::CaseStudy& cs, const FlowOptions& opts,
                             const sta::StaReport& sta);

/// Deterministic identity of the prefix a (cs, opts) pair would build —
/// the key of the process-wide prefix cache (serialized axis values, exact
/// double rendering).
std::string flowPrefixKey(const ips::CaseStudy& cs, const FlowOptions& opts);

/// The process-wide prefix cache (util::OnceCache semantics: concurrent
/// requests for one key elaborate exactly once). Cleared only by
/// tests/benches.
util::OnceCache<FlowPrefix>& flowPrefixCache();

/// Test/bench hook: clear EVERY process-wide in-memory artifact cache —
/// stage prefixes, golden traces, per-mutant results — i.e. exactly what a
/// fresh worker process starts with. One helper so a newly added cache
/// cannot be missed by one of the "cold leg" call sites (which would
/// silently turn a bit-identity or zero-hit assertion vacuous). Does not
/// touch the on-disk artifact store.
void clearProcessCaches();

/// Run the remaining stages (abstraction, injection, timings, analysis) on a
/// private copy of the prefix fragment. The prefix must have been built for
/// the same case study, sensor kind and STA binning as `opts`.
FlowReport runFlowWithPrefix(const FlowPrefix& prefix, const ips::CaseStudy& cs,
                             const FlowOptions& opts);

// --- composable stages (each fills its slice of the FlowReport) -------------
void stageElaborate(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);
void stageInsertion(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);
void stageAbstraction(FlowReport& report);
void stageInjection(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);
void stageTimings(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);
void stageAnalysis(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report);

/// Execute the full flow on one case study (all stages, in order).
FlowReport runFlow(const ips::CaseStudy& cs, const FlowOptions& opts);

/// Individual timing probes (used by the benches for finer control).
double timeRtlSimulation(const ir::Design& d, const ips::CaseStudy& cs, int hfRatio,
                         std::uint64_t cycles);
template <class P>
double timeTlmSimulation(const ir::Design& d, const ips::CaseStudy& cs, int hfRatio,
                         std::uint64_t cycles);

extern template double timeTlmSimulation<hdt::FourState>(const ir::Design&,
                                                         const ips::CaseStudy&, int,
                                                         std::uint64_t);
extern template double timeTlmSimulation<hdt::TwoState>(const ir::Design&,
                                                        const ips::CaseStudy&, int,
                                                        std::uint64_t);

}  // namespace xlv::core
