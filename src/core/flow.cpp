#include "core/flow.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "abstraction/emit_vhdl.h"
#include "abstraction/native_backend.h"
#include "analysis/checkpoint_cache.h"
#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "ir/elaborate.h"
#include "util/fnv.h"
#include "util/timer.h"

namespace xlv::core {

using abstraction::TlmIpModel;
using abstraction::TlmModelConfig;
using insertion::SensorKind;

namespace {

/// Adapter: drive a simulator's inputs from a testbench driver session.
/// Callers obtain one driver per simulation run via driverForTask(), so
/// makeDriver-only (stateful) testbenches work everywhere, not just in the
/// mutation campaign.
template <class Sim>
void driveInputs(const analysis::DriveFn& drive, std::uint64_t cycle, Sim& sim) {
  drive(cycle, [&](const std::string& name, std::uint64_t v) {
    sim.setInputByName(name, v);
  });
  // The Razor recovery enable is an insertion-added port the stock
  // testbench does not know about.
  if (sim.design().findSymbol("recovery_en") != ir::kNoSymbol) {
    sim.setInputByName("recovery_en", 1);
  }
}

}  // namespace

std::uint64_t flowCycles(const ips::CaseStudy& cs, const FlowOptions& opts) {
  return opts.testbenchCycles != 0 ? opts.testbenchCycles : cs.testbench.cycles;
}

int flowHfRatio(const ips::CaseStudy& cs, const FlowOptions& opts) {
  if (opts.sensorKind != SensorKind::Counter) return 0;
  return opts.hfRatio.value_or(cs.hfRatio);
}

const char* mutantSetVariantName(MutantSetVariant v) noexcept {
  switch (v) {
    case MutantSetVariant::MinDelay: return "min";
    case MutantSetVariant::MaxDelay: return "max";
    case MutantSetVariant::Full: break;
  }
  return "full";
}

std::vector<mutation::MutantSpec> sliceMutantSet(
    const std::vector<mutation::MutantSpec>& specs, MutantSetVariant variant) {
  if (variant == MutantSetVariant::Full) return specs;
  // Keep, per endpoint, the least (MinDelay) or most (MaxDelay) severe
  // mutant. Razor sets carry one MinDelay + one MaxDelay spec per endpoint
  // (kind decides); Counter sets carry a DeltaDelay triple ordered by
  // ascending severity factor, so severity is the deltaTicks value. The
  // scan is stable: the first spec of the winning severity represents its
  // endpoint, and endpoint order follows first appearance in the input.
  const bool wantMax = variant == MutantSetVariant::MaxDelay;
  std::vector<mutation::MutantSpec> out;
  std::vector<std::string> seen;
  for (const auto& spec : specs) {
    if (std::find(seen.begin(), seen.end(), spec.targetSignal) != seen.end()) continue;
    seen.push_back(spec.targetSignal);
    const mutation::MutantSpec* best = &spec;
    for (const auto& s : specs) {
      if (s.targetSignal != spec.targetSignal) continue;
      if (s.kind != best->kind) {
        // Razor: the MaxDelay kind is the severe one.
        const bool sIsMax = s.kind == mutation::MutantKind::MaxDelay;
        if (sIsMax == wantMax) best = &s;
      } else if (wantMax ? s.deltaTicks > best->deltaTicks
                         : s.deltaTicks < best->deltaTicks) {
        best = &s;
      }
    }
    out.push_back(*best);
  }
  return out;
}

double timeRtlSimulation(const ir::Design& d, const ips::CaseStudy& cs, int hfRatio,
                         std::uint64_t cycles) {
  rtl::RtlSimulator<hdt::FourState> sim(
      d, rtl::KernelConfig{cs.periodPs, hfRatio, 100000});
  const analysis::DriveFn drive = cs.testbench.driverForTask(0);
  sim.setStimulus([&, drive](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
    driveInputs(drive, c, s);
  });
  util::Timer t;
  sim.runCycles(cycles);
  return t.seconds();
}

template <class P>
double timeTlmSimulation(const ir::Design& d, const ips::CaseStudy& cs, int hfRatio,
                         std::uint64_t cycles) {
  TlmIpModel<P> model(d, TlmModelConfig{hfRatio, false});
  const analysis::DriveFn drive = cs.testbench.driverForTask(0);
  util::Timer t;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    driveInputs(drive, c, model);
    model.scheduler();
  }
  return t.seconds();
}

template double timeTlmSimulation<hdt::FourState>(const ir::Design&, const ips::CaseStudy&,
                                                  int, std::uint64_t);
template double timeTlmSimulation<hdt::TwoState>(const ir::Design&, const ips::CaseStudy&, int,
                                                 std::uint64_t);

// --- Step 0: elaborate the clean IP -----------------------------------------
namespace {

/// Option sanity shared by EVERY entry into the flow — the direct stages
/// and the cached-prefix path alike, so an invalid item fails with the
/// SAME error string whichever path (and whichever cache-population order)
/// it takes; error text is part of CampaignResult::sameResults.
void validateFlowOptions(const ips::CaseStudy& cs, const FlowOptions& opts) {
  if (opts.sensorKind == SensorKind::Counter && flowHfRatio(cs, opts) < 1) {
    // A Counter flow schedules a high-frequency clock at hfRatio ticks per
    // main-clock cycle; a non-positive ratio cannot drive the dual-clock
    // scheduler and must fail the item up front, not deep inside a model.
    throw std::invalid_argument("flow: Counter flow on '" + cs.name +
                                "' requires hfRatio >= 1, got " +
                                std::to_string(flowHfRatio(cs, opts)));
  }
}

}  // namespace

void stageElaborate(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report) {
  if (cs.module == nullptr) {
    throw std::invalid_argument("flow: case study '" + cs.name + "' has no module");
  }
  validateFlowOptions(cs, opts);
  report.ipName = cs.name;
  report.sensorKind = opts.sensorKind;
  report.hfRatio = flowHfRatio(cs, opts);
  report.cleanDesign = ir::elaborate(*cs.module);
  report.loc.rtlClean = abstraction::countLines(abstraction::emitVhdl(*cs.module));
}

// --- Step 1: STA + sensor insertion (Section 4) ------------------------------

namespace {

/// The post-STA half of stageInsertion: deterministic in (cs, opts,
/// report.sta). Shared by the normal stage and the disk-spill rebuild path
/// (rebuildFlowPrefix), which re-runs insertion against a stored report.
void applyInsertion(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report) {
  insertion::InsertionConfig icfg;
  icfg.kind = opts.sensorKind;
  auto ins = insertion::insertSensors(*cs.module, report.sta, icfg);
  report.sensors = ins.sensors;
  report.skippedEndpoints = ins.skippedEndpoints;
  report.sensorAreaGates = ins.sensorAreaGates;
  report.loc.rtlAugmented = abstraction::countLines(abstraction::emitVhdl(*ins.augmented));
  report.augmentedDesign = ir::elaborate(*ins.augmented);
}

}  // namespace

void stageInsertion(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report) {
  sta::StaConfig staCfg;
  staCfg.clockPeriodPs = static_cast<double>(cs.periodPs);
  staCfg.thresholdFraction = opts.staThresholdFraction.value_or(cs.staThresholdFraction);
  staCfg.spreadFraction = opts.staSpreadFraction.value_or(cs.staSpreadFraction);
  if (opts.staCorner) staCfg.corner = *opts.staCorner;
  report.sta = sta::analyze(report.cleanDesign, staCfg);
  report.timings.staSeconds = report.sta.analysisSeconds;
  applyInsertion(cs, opts, report);
}

// --- Step 2: RTL-to-TLM abstraction (Section 5) ------------------------------
void stageAbstraction(FlowReport& report) {
  abstraction::AbstractionOptions aopts;
  aopts.hfRatio = report.hfRatio;
  report.loc.tlm = abstraction::abstractDesign(report.augmentedDesign, aopts).sourceLines;
}

// --- Step 3: mutant injection (Section 6) ------------------------------------
void stageInjection(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report) {
  if (opts.sensorKind == SensorKind::Razor) {
    report.mutantSpecs = analysis::razorMutantSet(report.sensors);
  } else {
    report.mutantSpecs = analysis::counterMutantSet(
        report.sensors, static_cast<double>(cs.periodPs), report.hfRatio);
  }
  report.mutantSpecs = sliceMutantSet(report.mutantSpecs, opts.mutantSet);
  report.injected = mutation::injectMutants(report.augmentedDesign, report.mutantSpecs);
  abstraction::AbstractionOptions aopts;
  aopts.hfRatio = report.hfRatio;
  report.loc.tlmInjected =
      abstraction::abstractInjected(report.injected, aopts).sourceLines;
}

// --- Timing measurements -----------------------------------------------------
void stageTimings(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report) {
  const std::uint64_t cycles = flowCycles(cs, opts);
  auto repeat = [&](auto&& fn) {
    double total = 0.0;
    const int n = std::max(1, opts.timingRepetitions);
    for (int i = 0; i < n; ++i) total += fn();
    return total / n;
  };
  if (opts.measureRtl) {
    report.timings.rtlSeconds = repeat([&] {
      return timeRtlSimulation(report.augmentedDesign, cs, report.hfRatio, cycles);
    });
  }
  if (opts.measureTlm) {
    report.timings.tlmSeconds = repeat([&] {
      return timeTlmSimulation<hdt::FourState>(report.augmentedDesign, cs, report.hfRatio,
                                               cycles);
    });
  }
  if (opts.measureOptimized) {
    report.timings.tlmOptSeconds = repeat([&] {
      return timeTlmSimulation<hdt::TwoState>(report.augmentedDesign, cs, report.hfRatio,
                                              cycles);
    });
  }
  if (opts.measureTlm) {
    // Injected model with all mutants inactive (Table 5's simulation cost).
    TlmIpModel<hdt::FourState> model(report.injected,
                                     TlmModelConfig{report.hfRatio, false});
    const analysis::DriveFn drive = cs.testbench.driverForTask(0);
    util::Timer t;
    for (std::uint64_t c = 0; c < cycles; ++c) {
      driveInputs(drive, c, model);
      model.scheduler();
    }
    report.timings.injectedSeconds = t.seconds();
  }
}

// --- Step 4: mutation analysis (Section 7) -----------------------------------
void stageAnalysis(const ips::CaseStudy& cs, const FlowOptions& opts, FlowReport& report) {
  analysis::AnalysisConfig acfg;
  acfg.hfRatio = report.hfRatio;
  acfg.sensorKind = opts.sensorKind;
  acfg.threads = opts.analysisThreads;
  acfg.useGoldenCache = opts.useGoldenCache;
  acfg.useMutantCache = opts.useMutantCache;
  acfg.mutantBegin = opts.mutantBegin;
  acfg.mutantEnd = opts.mutantEnd;
  acfg.backend = opts.backend;
  acfg.batch = opts.batch;
  analysis::Testbench tb = cs.testbench;
  tb.cycles = flowCycles(cs, opts);
  report.analysis = analysis::analyzeMutations<hdt::FourState>(
      report.augmentedDesign, report.injected, report.sensors, tb, acfg);
}

// --- shared stage prefixes ----------------------------------------------------

FlowPrefix buildFlowPrefix(const ips::CaseStudy& cs, const FlowOptions& opts) {
  FlowPrefix prefix;
  stageElaborate(cs, opts, prefix.report);
  stageInsertion(cs, opts, prefix.report);
  return prefix;
}

FlowPrefix rebuildFlowPrefix(const ips::CaseStudy& cs, const FlowOptions& opts,
                             const sta::StaReport& sta) {
  FlowPrefix prefix;
  stageElaborate(cs, opts, prefix.report);
  prefix.report.sta = sta;
  // No STA traversal ran here; its historical cost stays with the process
  // that recorded the artifact.
  prefix.report.sta.analysisSeconds = 0.0;
  prefix.report.timings.staSeconds = 0.0;
  applyInsertion(cs, opts, prefix.report);
  return prefix;
}

std::string flowPrefixKey(const ips::CaseStudy& cs, const FlowOptions& opts) {
  // Exactly the inputs stageElaborate + stageInsertion consume — including
  // the module *content* (hash of its canonical emitted VHDL), so two
  // same-named case studies with different modules never alias. hfRatio,
  // cycle budget and mutant set are later-stage concerns and must NOT key
  // the prefix (that is what makes sweeping them free).
  const std::uint64_t moduleHash =
      cs.module ? util::fnv1a64(abstraction::emitVhdl(*cs.module)) : 0;
  const sta::Corner corner = opts.staCorner.value_or(sta::StaConfig{}.corner);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "m=%016" PRIx64 "|kind=%s|thr=%.17g|spread=%.17g|period=%" PRIu64
                "|cp=%.17g|cv=%.17g|ct=%.17g",
                moduleHash, insertion::sensorKindName(opts.sensorKind),
                opts.staThresholdFraction.value_or(cs.staThresholdFraction),
                opts.staSpreadFraction.value_or(cs.staSpreadFraction),
                static_cast<std::uint64_t>(cs.periodPs), corner.processFactor,
                corner.voltageFactor, corner.temperatureFactor);
  // Variable-length names are length-prefixed so a '|' inside one cannot
  // alias another field boundary.
  std::string key("ip=");
  key.append(std::to_string(cs.name.size())).append(":").append(cs.name);
  key.append("|corner=").append(std::to_string(corner.name.size())).append(":");
  key.append(corner.name).append("|").append(buf);
  return key;
}

util::OnceCache<FlowPrefix>& flowPrefixCache() {
  static util::OnceCache<FlowPrefix> cache;
  return cache;
}

void clearProcessCaches() {
  flowPrefixCache().clear();
  analysis::goldenTraceCache().clear();
  analysis::mutantResultCache().clear();
  analysis::checkpointCache().clear();
  abstraction::clearNativeLibraryCache();
}

FlowReport runFlowWithPrefix(const FlowPrefix& prefix, const ips::CaseStudy& cs,
                             const FlowOptions& opts) {
  // The prefix key deliberately excludes hfRatio, so an item with an
  // invalid per-point option can arrive here on a prefix some VALID item
  // built: re-validate, or the error (and the report) would depend on
  // which item populated the cache first.
  validateFlowOptions(cs, opts);
  if (prefix.report.ipName != cs.name || prefix.report.sensorKind != opts.sensorKind) {
    throw std::invalid_argument("flow: prefix built for " + prefix.report.ipName +
                                " does not match case study '" + cs.name + "'");
  }
  FlowReport report = prefix.report;
  // hfRatio is a per-point axis the shared prefix cannot carry.
  report.hfRatio = flowHfRatio(cs, opts);
  stageAbstraction(report);
  stageInjection(cs, opts, report);
  stageTimings(cs, opts, report);
  if (opts.runMutationAnalysis) {
    stageAnalysis(cs, opts, report);
  }
  return report;
}

FlowReport runFlow(const ips::CaseStudy& cs, const FlowOptions& opts) {
  FlowReport report;
  stageElaborate(cs, opts, report);
  stageInsertion(cs, opts, report);
  stageAbstraction(report);
  stageInjection(cs, opts, report);
  stageTimings(cs, opts, report);
  if (opts.runMutationAnalysis) {
    stageAnalysis(cs, opts, report);
  }
  return report;
}

}  // namespace xlv::core
