// Expression evaluation and statement execution over a flat Design.
//
// Templated on a value policy (hdt::FourState or hdt::TwoState, see
// hdt/policy.h): the same IR runs with faithful 4-value semantics or with the
// HDTLib-optimized 2-value types — the switch measured by Table 4 of the
// paper.
//
// Assignment semantics (VHDL rules):
//   * Variable targets update the store immediately;
//   * Signal and array targets are collected into a nonblocking write buffer
//     that the calling engine commits at a delta boundary.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "hdt/policy.h"
#include "ir/design.h"
#include "util/log.h"

namespace xlv::ir {

/// One pending nonblocking write.
template <class P>
struct SignalWrite {
  using Vec = typename P::Vec;
  SymbolId sym = kNoSymbol;
  int hi = -1, lo = -1;            ///< optional bit range (-1,-1 = whole vector)
  std::int64_t arrayIndex = -1;    ///< >= 0 for array element writes
  Vec value;
};

/// Storage of current values for every symbol (and array) of a Design.
template <class P>
class ValueStore {
 public:
  using Vec = typename P::Vec;

  explicit ValueStore(const Design& d) : arrayBase_(d.symbols.size(), -1) {
    vals_.reserve(d.symbols.size());
    for (const auto& s : d.symbols) {
      if (s.kind == SymKind::Array) {
        arrayBase_[vals_.size()] = static_cast<int>(arrayPool_.size());
        arrayPool_.emplace_back(static_cast<std::size_t>(s.arraySize), Vec(s.type.width));
        vals_.emplace_back(1);  // placeholder slot, never read
      } else if (s.hasInit) {
        vals_.push_back(Vec::fromUint(s.type.width, s.initValue));
      } else {
        vals_.emplace_back(s.type.width);
      }
    }
    for (const auto& ai : d.arrayInits) {
      auto& pool = arrayPool_[static_cast<std::size_t>(arrayBase_[static_cast<std::size_t>(ai.array)])];
      const int w = d.symbol(ai.array).type.width;
      for (std::size_t i = 0; i < ai.words.size() && i < pool.size(); ++i) {
        pool[i] = Vec::fromUint(w, ai.words[i]);
      }
    }
  }

  const Vec& get(SymbolId s) const noexcept { return vals_[static_cast<std::size_t>(s)]; }
  void set(SymbolId s, const Vec& v) { vals_[static_cast<std::size_t>(s)] = v; }
  void set(SymbolId s, Vec&& v) { vals_[static_cast<std::size_t>(s)] = std::move(v); }
  Vec& mut(SymbolId s) noexcept { return vals_[static_cast<std::size_t>(s)]; }

  bool isArray(SymbolId s) const noexcept {
    return arrayBase_[static_cast<std::size_t>(s)] >= 0;
  }
  std::size_t arraySize(SymbolId s) const noexcept { return pool(s).size(); }
  const Vec& getArray(SymbolId s, std::uint64_t idx) const noexcept {
    const auto& p = pool(s);
    return p[static_cast<std::size_t>(idx % p.size())];  // clamp by wrap, documented
  }
  void setArray(SymbolId s, std::uint64_t idx, const Vec& v) {
    auto& p = pool(s);
    p[static_cast<std::size_t>(idx % p.size())] = v;
  }

 private:
  const std::vector<Vec>& pool(SymbolId s) const noexcept {
    return arrayPool_[static_cast<std::size_t>(arrayBase_[static_cast<std::size_t>(s)])];
  }
  std::vector<Vec>& pool(SymbolId s) noexcept {
    return arrayPool_[static_cast<std::size_t>(arrayBase_[static_cast<std::size_t>(s)])];
  }

  std::vector<Vec> vals_;
  std::vector<int> arrayBase_;
  std::vector<std::vector<Vec>> arrayPool_;
};

/// Commit one nonblocking write; returns true when the stored value changed
/// (the information that drives delta-cycle sensitivity wake-ups).
template <class P>
bool commitWrite(ValueStore<P>& st, const SignalWrite<P>& w) {
  using hdt::vec_setSlice;
  if (w.arrayIndex >= 0) {
    const auto& old = st.getArray(w.sym, static_cast<std::uint64_t>(w.arrayIndex));
    if (old.identical(w.value)) return false;
    st.setArray(w.sym, static_cast<std::uint64_t>(w.arrayIndex), w.value);
    return true;
  }
  if (w.hi >= 0) {
    auto& cur = st.mut(w.sym);
    typename P::Vec next = cur;
    vec_setSlice(next, w.hi, w.lo, w.value);
    if (cur.identical(next)) return false;
    cur = std::move(next);
    return true;
  }
  auto& cur = st.mut(w.sym);
  if (cur.identical(w.value)) return false;
  cur = w.value;
  return true;
}

/// Executes process bodies against a ValueStore, buffering nonblocking
/// writes. One Executor per engine; it is stateless between calls.
template <class P>
class Executor {
 public:
  using Vec = typename P::Vec;

  Executor(const Design& d, ValueStore<P>& store) : d_(d), store_(store) {}

  /// Run a process body, appending nonblocking writes to `nba`.
  void run(const Stmt& body, std::vector<SignalWrite<P>>& nba) {
    nba_ = &nba;
    exec(body);
    nba_ = nullptr;
  }

  Vec eval(const Expr& e) const {
    using namespace hdt;
    switch (e.kind) {
      case ExprKind::Const:
        return Vec::fromUint(e.type.width, e.cval);
      case ExprKind::Ref:
        return store_.get(e.sym);
      case ExprKind::ArrayRef: {
        const Vec idx = eval(*e.a);
        if (idx.anyUnknown()) return Vec::allX(e.type.width);
        return store_.getArray(e.sym, idx.toUint());
      }
      case ExprKind::Unary: {
        const Vec a = eval(*e.a);
        switch (e.uop) {
          case UnOp::Not: return vec_not(a);
          case UnOp::Neg: return vec_neg(a);
          case UnOp::RedAnd: return vec_redand(a);
          case UnOp::RedOr: return vec_redor(a);
          case UnOp::RedXor: return vec_redxor(a);
          case UnOp::BoolNot:
            return Vec::fromUint(1, vec_isTrue(a) ? 0 : 1);
        }
        return Vec(e.type.width);
      }
      case ExprKind::Binary:
        return evalBinary(e);
      case ExprKind::Slice:
        return vec_slice(eval(*e.a), e.hi, e.lo);
      case ExprKind::Select: {
        // Pessimistic condition: unknown selects the else arm (documented).
        return vec_isTrue(eval(*e.a)) ? eval(*e.b) : eval(*e.c);
      }
      case ExprKind::Resize:
        return vec_resize(eval(*e.a), e.type.width);
      case ExprKind::Sext:
        return vec_sext(eval(*e.a), e.type.width);
    }
    return Vec(e.type.width);
  }

 private:
  Vec evalBinary(const Expr& e) const {
    using namespace hdt;
    switch (e.bop) {
      case BinOp::Shl:
      case BinOp::Shr:
      case BinOp::AShr: {
        const Vec a = eval(*e.a);
        const Vec amt = eval(*e.b);
        if (amt.anyUnknown()) return Vec::allX(e.type.width);
        const std::uint64_t raw = amt.toUint();
        const int amount = raw > static_cast<std::uint64_t>(std::numeric_limits<int>::max())
                               ? std::numeric_limits<int>::max()
                               : static_cast<int>(raw);
        if (e.bop == BinOp::Shl) return vec_shl(a, amount);
        if (e.bop == BinOp::Shr) return vec_shr(a, amount);
        return vec_ashr(a, amount);
      }
      default:
        break;
    }
    const Vec a = eval(*e.a);
    const Vec b = eval(*e.b);
    const bool sgn = e.a->type.isSigned && e.b->type.isSigned;
    using namespace hdt;
    switch (e.bop) {
      case BinOp::And: return vec_and(a, b);
      case BinOp::Or: return vec_or(a, b);
      case BinOp::Xor: return vec_xor(a, b);
      case BinOp::Add: return vec_add(a, b);
      case BinOp::Sub: return vec_sub(a, b);
      case BinOp::Mul: return vec_mul(a, b);
      case BinOp::Div: return vec_div(a, b);
      case BinOp::Mod: return vec_mod(a, b);
      case BinOp::Eq: return vec_eq(a, b);
      case BinOp::Ne: return vec_ne(a, b);
      case BinOp::Lt: return sgn ? vec_lts(a, b) : vec_ltu(a, b);
      case BinOp::Le: return sgn ? vec_les(a, b) : vec_leu(a, b);
      case BinOp::Gt: return sgn ? vec_lts(b, a) : vec_ltu(b, a);
      case BinOp::Ge: return sgn ? vec_les(b, a) : vec_leu(b, a);
      case BinOp::Concat: return vec_concat(a, b);
      default: break;
    }
    return Vec(e.type.width);
  }

  void exec(const Stmt& s) {
    using namespace hdt;
    switch (s.kind) {
      case StmtKind::Assign: {
        Vec v = eval(*s.value);
        const Symbol& sym = d_.symbol(s.target);
        if (sym.kind == SymKind::Variable) {
          if (s.hi >= 0) {
            vec_setSlice(store_.mut(s.target), s.hi, s.lo, v);
          } else {
            store_.set(s.target, std::move(v));
          }
        } else {
          nba_->push_back(SignalWrite<P>{s.target, s.hi, s.lo, -1, std::move(v)});
        }
        break;
      }
      case StmtKind::ArrayWrite: {
        const Vec idx = eval(*s.index);
        if (idx.anyUnknown()) {
          XLV_WARN("ir.eval") << "array write with unknown index skipped (array '"
                              << d_.symbol(s.target).name << "')";
          break;
        }
        Vec v = eval(*s.value);
        nba_->push_back(SignalWrite<P>{s.target, -1, -1,
                                       static_cast<std::int64_t>(idx.toUint()), std::move(v)});
        break;
      }
      case StmtKind::If: {
        if (vec_isTrue(eval(*s.value))) {
          if (s.thenS) exec(*s.thenS);
        } else if (s.elseS) {
          exec(*s.elseS);
        }
        break;
      }
      case StmtKind::Case: {
        const Vec selv = eval(*s.value);
        if (!selv.anyUnknown()) {
          const std::uint64_t key = selv.toUint();
          for (const auto& arm : s.arms) {
            for (std::uint64_t label : arm.labels) {
              if (label == key) {
                if (arm.body) exec(*arm.body);
                return;
              }
            }
          }
        }
        if (s.defaultArm) exec(*s.defaultArm);
        break;
      }
      case StmtKind::Block:
        for (const auto& st : s.stmts) exec(*st);
        break;
    }
  }

  const Design& d_;
  ValueStore<P>& store_;
  std::vector<SignalWrite<P>>* nba_ = nullptr;
};

}  // namespace xlv::ir
