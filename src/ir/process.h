// Processes: the concurrent statements of an RTL module.
//
// Two kinds exist, mirroring the paper's scheduler model (Fig. 6):
//   * synchronous — triggered by one edge of one clock; these become the
//     exec_synchronous_processes() calls of the TLM scheduler;
//   * asynchronous (combinational) — triggered by any change of a symbol in
//     the sensitivity list; these run inside the delta-cycle loops.
// Sensitivity lists for asynchronous processes are derived automatically
// from the read set of the body (see walk.h).
#pragma once

#include <string>
#include <vector>

#include "ir/stmt.h"
#include "ir/symbol.h"

namespace xlv::ir {

enum class EdgeKind { Rising, Falling };

struct Process {
  std::string name;
  bool isSync = false;
  SymbolId clock = kNoSymbol;  ///< valid when isSync
  EdgeKind edge = EdgeKind::Rising;
  /// Post-edge sampler: a rising-edge synchronous process that runs after the
  /// edge's nonblocking commits have been applied and combinational logic has
  /// settled. This models a sampling element placed immediately behind the
  /// registers (the Razor main flip-flop's view): it observes on-time commits
  /// but misses anything postponed by a transport delay or a delay mutant.
  bool postEdge = false;
  std::vector<SymbolId> sensitivity;  ///< async processes: symbols whose change wakes this up
  StmtPtr body;
};

}  // namespace xlv::ir
