#include "ir/builder.h"

#include <stdexcept>

namespace xlv::ir {

namespace {
void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(std::string("ir::builder: ") + what);
}

/// Align two operands to a common width, extending each according to its own
/// signedness (VHDL numeric_std convention).
void align(Ex& a, Ex& b) {
  require(a.ptr() && b.ptr(), "null expression operand");
  const int w = std::max(a.width(), b.width());
  if (a.width() < w) a = a.isSigned() ? sext(a, w) : zext(a, w);
  if (b.width() < w) b = b.isSigned() ? sext(b, w) : zext(b, w);
}

Ex bin(BinOp op, Ex a, Ex b, bool alignWidths = true) {
  if (alignWidths) align(a, b);
  return Ex(makeBinary(op, a.ptr(), b.ptr()));
}
}  // namespace

Ex lit(int width, std::uint64_t v) { return Ex(makeConst(width, v, false)); }

Ex litS(int width, std::int64_t v) {
  return Ex(makeConst(width, static_cast<std::uint64_t>(v), true));
}

Ex zext(Ex a, int width) { return Ex(makeResize(a.ptr(), width)); }
Ex sext(Ex a, int width) { return Ex(makeSext(a.ptr(), width)); }
Ex fit(Ex a, int width) { return a.isSigned() ? sext(a, width) : zext(a, width); }

Ex slice(Ex a, int hi, int lo) { return Ex(makeSlice(a.ptr(), hi, lo)); }
Ex bitof(Ex a, int i) { return slice(a, i, i); }

Ex bitsel(Ex a, Ex idx) {
  return zext(Ex(makeBinary(BinOp::Shr, a.ptr(), idx.ptr())), 1);
}

Ex concat(Ex hiPart, Ex loPart) {
  return Ex(makeBinary(BinOp::Concat, hiPart.ptr(), loPart.ptr()));
}

Ex operator&(Ex a, Ex b) { return bin(BinOp::And, std::move(a), std::move(b)); }
Ex operator|(Ex a, Ex b) { return bin(BinOp::Or, std::move(a), std::move(b)); }
Ex operator^(Ex a, Ex b) { return bin(BinOp::Xor, std::move(a), std::move(b)); }
Ex operator~(Ex a) { return Ex(makeUnary(UnOp::Not, a.ptr())); }
Ex redand(Ex a) { return Ex(makeUnary(UnOp::RedAnd, a.ptr())); }
Ex redor(Ex a) { return Ex(makeUnary(UnOp::RedOr, a.ptr())); }
Ex redxor(Ex a) { return Ex(makeUnary(UnOp::RedXor, a.ptr())); }
Ex bnot(Ex a) { return Ex(makeUnary(UnOp::BoolNot, a.ptr())); }

Ex operator+(Ex a, Ex b) { return bin(BinOp::Add, std::move(a), std::move(b)); }
Ex operator-(Ex a, Ex b) { return bin(BinOp::Sub, std::move(a), std::move(b)); }
Ex operator*(Ex a, Ex b) { return bin(BinOp::Mul, std::move(a), std::move(b)); }
Ex operator/(Ex a, Ex b) { return bin(BinOp::Div, std::move(a), std::move(b)); }
Ex operator%(Ex a, Ex b) { return bin(BinOp::Mod, std::move(a), std::move(b)); }
Ex neg(Ex a) { return Ex(makeUnary(UnOp::Neg, a.ptr())); }

Ex shl(Ex a, Ex amount) { return bin(BinOp::Shl, std::move(a), std::move(amount), false); }
Ex shr(Ex a, Ex amount) { return bin(BinOp::Shr, std::move(a), std::move(amount), false); }
Ex ashr(Ex a, Ex amount) { return bin(BinOp::AShr, std::move(a), std::move(amount), false); }
Ex shl(Ex a, int amount) { return shl(std::move(a), lit(32, static_cast<std::uint64_t>(amount))); }
Ex shr(Ex a, int amount) { return shr(std::move(a), lit(32, static_cast<std::uint64_t>(amount))); }
Ex ashr(Ex a, int amount) { return ashr(std::move(a), lit(32, static_cast<std::uint64_t>(amount))); }

Ex operator==(Ex a, Ex b) { return bin(BinOp::Eq, std::move(a), std::move(b)); }
Ex operator!=(Ex a, Ex b) { return bin(BinOp::Ne, std::move(a), std::move(b)); }
Ex operator<(Ex a, Ex b) { return bin(BinOp::Lt, std::move(a), std::move(b)); }
Ex operator<=(Ex a, Ex b) { return bin(BinOp::Le, std::move(a), std::move(b)); }
Ex operator>(Ex a, Ex b) { return bin(BinOp::Gt, std::move(a), std::move(b)); }
Ex operator>=(Ex a, Ex b) { return bin(BinOp::Ge, std::move(a), std::move(b)); }

Ex operator==(Ex a, std::uint64_t v) {
  const int w = a.width();
  return a == lit(w, v);
}
Ex operator!=(Ex a, std::uint64_t v) {
  const int w = a.width();
  return a != lit(w, v);
}
Ex operator+(Ex a, std::uint64_t v) {
  const int w = a.width();
  return a + lit(w, v);
}
Ex operator-(Ex a, std::uint64_t v) {
  const int w = a.width();
  return a - lit(w, v);
}

Ex sel(Ex cond, Ex t, Ex f) {
  align(t, f);
  return Ex(makeSelect(cond.ptr(), t.ptr(), f.ptr()));
}

Ex at(const Arr& arr, Ex index) { return Ex(makeArrayRef(arr.id, arr.elemType, index.ptr())); }

// --- ProcBuilder -------------------------------------------------------------

void ProcBuilder::assign(const Sig& target, Ex value) {
  require(target.valid(), "assign to undeclared signal");
  require(value.ptr() != nullptr, "assign of null expression");
  Ex rhs = value.width() == target.type.width ? value : fit(value, target.type.width);
  stack_.back().push_back(makeAssign(target.id, rhs.ptr()));
}

void ProcBuilder::assignRange(const Sig& target, int hi, int lo, Ex value) {
  require(target.valid(), "assign to undeclared signal");
  Ex rhs = value.width() == hi - lo + 1 ? value : fit(value, hi - lo + 1);
  stack_.back().push_back(makeAssignRange(target.id, hi, lo, rhs.ptr()));
}

void ProcBuilder::write(const Arr& target, Ex index, Ex value) {
  require(target.id != kNoSymbol, "write to undeclared array");
  Ex rhs = value.width() == target.elemType.width ? value : fit(value, target.elemType.width);
  stack_.back().push_back(makeArrayWrite(target.id, index.ptr(), rhs.ptr()));
}

void ProcBuilder::if_(Ex cond, const std::function<void()>& thenFn,
                      const std::function<void()>& elseFn) {
  require(cond.ptr() != nullptr, "if with null condition");
  stack_.emplace_back();
  thenFn();
  StmtPtr thenS = makeBlock(popLevel());
  StmtPtr elseS;
  if (elseFn) {
    stack_.emplace_back();
    elseFn();
    elseS = makeBlock(popLevel());
  }
  stack_.back().push_back(makeIf(cond.ptr(), thenS, elseS));
}

void ProcBuilder::switch_(
    Ex selector,
    std::vector<std::pair<std::vector<std::uint64_t>, std::function<void()>>> arms,
    const std::function<void()>& defaultFn) {
  require(selector.ptr() != nullptr, "switch with null selector");
  std::vector<CaseArm> irArms;
  irArms.reserve(arms.size());
  for (auto& [labels, fn] : arms) {
    stack_.emplace_back();
    fn();
    irArms.push_back(CaseArm{labels, makeBlock(popLevel())});
  }
  StmtPtr dflt;
  if (defaultFn) {
    stack_.emplace_back();
    defaultFn();
    dflt = makeBlock(popLevel());
  }
  stack_.back().push_back(makeCase(selector.ptr(), std::move(irArms), dflt));
}

std::vector<StmtPtr> ProcBuilder::popLevel() {
  auto stmts = std::move(stack_.back());
  stack_.pop_back();
  return stmts;
}

StmtPtr ProcBuilder::finish() {
  require(stack_.size() == 1, "unbalanced control nesting in process body");
  return makeBlock(popLevel());
}

// --- ModuleBuilder -----------------------------------------------------------

Sig ModuleBuilder::declare(const std::string& name, SymKind kind, Type t, PortDir dir,
                           ClockRole role, std::uint64_t init, bool hasInit) {
  require(module_->findSymbol(name) == kNoSymbol, "duplicate symbol name");
  Symbol s;
  s.name = name;
  s.kind = kind;
  s.type = t;
  s.dir = dir;
  s.clock = role;
  s.initValue = init;
  s.hasInit = hasInit;
  const SymbolId id = module_->addSymbol(std::move(s));
  return Sig{id, t};
}

Sig ModuleBuilder::in(const std::string& name, int width, bool isSigned) {
  return declare(name, SymKind::Signal, Type{width, isSigned}, PortDir::In);
}

Sig ModuleBuilder::out(const std::string& name, int width, bool isSigned) {
  return declare(name, SymKind::Signal, Type{width, isSigned}, PortDir::Out);
}

Sig ModuleBuilder::clock(const std::string& name, ClockRole role) {
  return declare(name, SymKind::Signal, Type{1, false}, PortDir::In, role);
}

Sig ModuleBuilder::signal(const std::string& name, int width, bool isSigned) {
  return declare(name, SymKind::Signal, Type{width, isSigned}, PortDir::None);
}

Sig ModuleBuilder::signalInit(const std::string& name, int width, std::uint64_t init,
                              bool isSigned) {
  return declare(name, SymKind::Signal, Type{width, isSigned}, PortDir::None, ClockRole::None,
                 init, true);
}

Sig ModuleBuilder::var(const std::string& name, int width, bool isSigned) {
  return declare(name, SymKind::Variable, Type{width, isSigned}, PortDir::None);
}

Arr ModuleBuilder::array(const std::string& name, int elemWidth, int size, bool isSigned) {
  require(size >= 1, "array size must be >= 1");
  Symbol s;
  s.name = name;
  s.kind = SymKind::Array;
  s.type = Type{elemWidth, isSigned};
  s.arraySize = size;
  const SymbolId id = module_->addSymbol(std::move(s));
  return Arr{id, Type{elemWidth, isSigned}, size};
}

Arr ModuleBuilder::memory(const std::string& name, int elemWidth, int size, bool isSigned) {
  Arr a = array(name, elemWidth, size, isSigned);
  module_->symbol(a.id).isMacro = true;
  return a;
}

void ModuleBuilder::initArray(const Arr& arr, std::vector<std::uint64_t> image) {
  require(arr.id != kNoSymbol, "initArray on undeclared array");
  require(static_cast<int>(image.size()) <= arr.size, "array init image too large");
  module_->addArrayInit(ArrayInit{arr.id, std::move(image)});
}

void ModuleBuilder::sync(const std::string& name, const Sig& clk, EdgeKind edge,
                         const std::function<void(ProcBuilder&)>& fn) {
  require(clk.valid(), "sync process without clock");
  ProcBuilder pb;
  fn(pb);
  Process p;
  p.name = name;
  p.isSync = true;
  p.clock = clk.id;
  p.edge = edge;
  p.body = pb.finish();
  module_->addProcess(std::move(p));
}

void ModuleBuilder::onPostEdge(const std::string& name, const Sig& clk,
                               const std::function<void(ProcBuilder&)>& fn) {
  sync(name, clk, EdgeKind::Rising, fn);
  module_->processes().back().postEdge = true;
}

void ModuleBuilder::comb(const std::string& name, const std::function<void(ProcBuilder&)>& fn) {
  ProcBuilder pb;
  fn(pb);
  Process p;
  p.name = name;
  p.isSync = false;
  p.body = pb.finish();
  p.sensitivity = deriveSensitivity(*p.body);
  module_->addProcess(std::move(p));
}

void ModuleBuilder::instance(const std::string& name, std::shared_ptr<const Module> child,
                             const std::vector<std::pair<std::string, Sig>>& portMap) {
  require(child != nullptr, "instance of null module");
  Instance inst;
  inst.name = name;
  inst.module = child;
  for (const auto& [portName, parentSig] : portMap) {
    const SymbolId childPort = child->findSymbol(portName);
    require(childPort != kNoSymbol, "instance port name not found in child");
    require(child->symbol(childPort).isPort(), "instance binding to non-port symbol");
    require(child->symbol(childPort).type.width == parentSig.type.width,
            "instance port width mismatch");
    inst.bindings.push_back(PortBinding{childPort, parentSig.id});
  }
  module_->addInstance(std::move(inst));
}

}  // namespace xlv::ir
