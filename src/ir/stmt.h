// Statement nodes of the RTL IR.
//
// Assignment semantics follow VHDL: assigning to a Signal is nonblocking
// (scheduled on the next delta boundary), assigning to a Variable takes
// effect immediately. Which of the two applies is decided by the target
// symbol's kind at execution time, so the node itself carries no flag.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/expr.h"

namespace xlv::ir {

enum class StmtKind { Assign, ArrayWrite, If, Case, Block };

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct CaseArm {
  std::vector<std::uint64_t> labels;
  StmtPtr body;
};

struct Stmt {
  StmtKind kind = StmtKind::Block;

  // Assign: target[hi:lo] <= value   (hi == -1 means the whole vector)
  SymbolId target = kNoSymbol;
  int hi = -1, lo = -1;
  ExprPtr value;  ///< Assign RHS / If condition / Case selector / ArrayWrite data

  // ArrayWrite: target[index] <= value
  ExprPtr index;

  // If
  StmtPtr thenS, elseS;

  // Case
  std::vector<CaseArm> arms;
  StmtPtr defaultArm;

  // Block
  std::vector<StmtPtr> stmts;
};

StmtPtr makeAssign(SymbolId target, ExprPtr value);
StmtPtr makeAssignRange(SymbolId target, int hi, int lo, ExprPtr value);
StmtPtr makeArrayWrite(SymbolId target, ExprPtr index, ExprPtr value);
StmtPtr makeIf(ExprPtr cond, StmtPtr thenS, StmtPtr elseS = nullptr);
StmtPtr makeCase(ExprPtr selector, std::vector<CaseArm> arms, StmtPtr defaultArm = nullptr);
StmtPtr makeBlock(std::vector<StmtPtr> stmts);

/// Number of leaf statements (assignments) in a tree — used for LoC-style
/// complexity metrics and mutation site enumeration.
int countAssignments(const Stmt& s);

}  // namespace xlv::ir
