// Module: one RTL design unit — symbols, processes, child instances.
//
// Modules are built through ModuleBuilder (builder.h), then either
// instantiated inside other modules or elaborated into a flat Design
// (elaborate.h) for simulation, timing analysis and abstraction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/process.h"
#include "ir/symbol.h"

namespace xlv::ir {

class Module;

/// Connects a child port symbol to a parent symbol of the same width.
struct PortBinding {
  SymbolId childPort = kNoSymbol;
  SymbolId parentSym = kNoSymbol;
};

struct Instance {
  std::string name;
  std::shared_ptr<const Module> module;
  std::vector<PortBinding> bindings;
};

/// Initialization image for an array symbol (ROMs, program memories).
struct ArrayInit {
  SymbolId array = kNoSymbol;
  std::vector<std::uint64_t> words;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  SymbolId addSymbol(Symbol s) {
    symbols_.push_back(std::move(s));
    return static_cast<SymbolId>(symbols_.size() - 1);
  }

  const std::vector<Symbol>& symbols() const noexcept { return symbols_; }
  const Symbol& symbol(SymbolId id) const { return symbols_.at(static_cast<std::size_t>(id)); }
  Symbol& symbol(SymbolId id) { return symbols_.at(static_cast<std::size_t>(id)); }

  void addProcess(Process p) { processes_.push_back(std::move(p)); }
  const std::vector<Process>& processes() const noexcept { return processes_; }
  std::vector<Process>& processes() noexcept { return processes_; }

  void addInstance(Instance i) { instances_.push_back(std::move(i)); }
  const std::vector<Instance>& instances() const noexcept { return instances_; }

  void addArrayInit(ArrayInit ai) { arrayInits_.push_back(std::move(ai)); }
  const std::vector<ArrayInit>& arrayInits() const noexcept { return arrayInits_; }

  /// Find a symbol by name; returns kNoSymbol when absent.
  SymbolId findSymbol(const std::string& name) const;

  /// Port symbols in declaration order.
  std::vector<SymbolId> ports() const;

  int countProcesses(bool sync) const;

 private:
  std::string name_;
  std::vector<Symbol> symbols_;
  std::vector<Process> processes_;
  std::vector<Instance> instances_;
  std::vector<ArrayInit> arrayInits_;
};

}  // namespace xlv::ir
