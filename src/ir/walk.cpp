#include "ir/walk.h"

namespace xlv::ir {

void collectReads(const Expr& e, std::set<SymbolId>& out) {
  switch (e.kind) {
    case ExprKind::Const:
      break;
    case ExprKind::Ref:
      out.insert(e.sym);
      break;
    case ExprKind::ArrayRef:
      out.insert(e.sym);
      collectReads(*e.a, out);
      break;
    case ExprKind::Unary:
    case ExprKind::Slice:
    case ExprKind::Resize:
    case ExprKind::Sext:
      collectReads(*e.a, out);
      break;
    case ExprKind::Binary:
      collectReads(*e.a, out);
      collectReads(*e.b, out);
      break;
    case ExprKind::Select:
      collectReads(*e.a, out);
      collectReads(*e.b, out);
      collectReads(*e.c, out);
      break;
  }
}

void collectReads(const Stmt& s, std::set<SymbolId>& out) {
  switch (s.kind) {
    case StmtKind::Assign:
      collectReads(*s.value, out);
      break;
    case StmtKind::ArrayWrite:
      collectReads(*s.index, out);
      collectReads(*s.value, out);
      break;
    case StmtKind::If:
      collectReads(*s.value, out);
      if (s.thenS) collectReads(*s.thenS, out);
      if (s.elseS) collectReads(*s.elseS, out);
      break;
    case StmtKind::Case:
      collectReads(*s.value, out);
      for (const auto& arm : s.arms) {
        if (arm.body) collectReads(*arm.body, out);
      }
      if (s.defaultArm) collectReads(*s.defaultArm, out);
      break;
    case StmtKind::Block:
      for (const auto& st : s.stmts) collectReads(*st, out);
      break;
  }
}

void collectWrites(const Stmt& s, std::set<SymbolId>& out) {
  switch (s.kind) {
    case StmtKind::Assign:
    case StmtKind::ArrayWrite:
      out.insert(s.target);
      break;
    case StmtKind::If:
      if (s.thenS) collectWrites(*s.thenS, out);
      if (s.elseS) collectWrites(*s.elseS, out);
      break;
    case StmtKind::Case:
      for (const auto& arm : s.arms) {
        if (arm.body) collectWrites(*arm.body, out);
      }
      if (s.defaultArm) collectWrites(*s.defaultArm, out);
      break;
    case StmtKind::Block:
      for (const auto& st : s.stmts) collectWrites(*st, out);
      break;
  }
}

void forEachAssign(const Stmt& s, const std::function<void(const Stmt&)>& fn) {
  switch (s.kind) {
    case StmtKind::Assign:
    case StmtKind::ArrayWrite:
      fn(s);
      break;
    case StmtKind::If:
      if (s.thenS) forEachAssign(*s.thenS, fn);
      if (s.elseS) forEachAssign(*s.elseS, fn);
      break;
    case StmtKind::Case:
      for (const auto& arm : s.arms) {
        if (arm.body) forEachAssign(*arm.body, fn);
      }
      if (s.defaultArm) forEachAssign(*s.defaultArm, fn);
      break;
    case StmtKind::Block:
      for (const auto& st : s.stmts) forEachAssign(*st, fn);
      break;
  }
}

namespace {
SymbolId mapSym(SymbolId s, const std::unordered_map<SymbolId, SymbolId>& map) {
  auto it = map.find(s);
  return it == map.end() ? s : it->second;
}
}  // namespace

ExprPtr remapExpr(const ExprPtr& e, const std::unordered_map<SymbolId, SymbolId>& map) {
  if (!e) return nullptr;
  auto n = std::make_shared<Expr>(*e);
  n->sym = e->sym == kNoSymbol ? kNoSymbol : mapSym(e->sym, map);
  n->a = remapExpr(e->a, map);
  n->b = remapExpr(e->b, map);
  n->c = remapExpr(e->c, map);
  return n;
}

StmtPtr remapStmt(const StmtPtr& s, const std::unordered_map<SymbolId, SymbolId>& map) {
  if (!s) return nullptr;
  auto n = std::make_shared<Stmt>();
  n->kind = s->kind;
  n->target = s->target == kNoSymbol ? kNoSymbol : mapSym(s->target, map);
  n->hi = s->hi;
  n->lo = s->lo;
  n->value = remapExpr(s->value, map);
  n->index = remapExpr(s->index, map);
  n->thenS = remapStmt(s->thenS, map);
  n->elseS = remapStmt(s->elseS, map);
  n->arms.reserve(s->arms.size());
  for (const auto& arm : s->arms) {
    n->arms.push_back(CaseArm{arm.labels, remapStmt(arm.body, map)});
  }
  n->defaultArm = remapStmt(s->defaultArm, map);
  n->stmts.reserve(s->stmts.size());
  for (const auto& st : s->stmts) n->stmts.push_back(remapStmt(st, map));
  return n;
}

StmtPtr rewriteAssigns(const StmtPtr& s, const std::function<StmtPtr(const StmtPtr&)>& fn) {
  if (!s) return nullptr;
  switch (s->kind) {
    case StmtKind::Assign:
    case StmtKind::ArrayWrite:
      return fn(s);
    case StmtKind::If: {
      auto n = std::make_shared<Stmt>(*s);
      n->thenS = rewriteAssigns(s->thenS, fn);
      n->elseS = rewriteAssigns(s->elseS, fn);
      return n;
    }
    case StmtKind::Case: {
      auto n = std::make_shared<Stmt>(*s);
      n->arms.clear();
      for (const auto& arm : s->arms) {
        n->arms.push_back(CaseArm{arm.labels, rewriteAssigns(arm.body, fn)});
      }
      n->defaultArm = rewriteAssigns(s->defaultArm, fn);
      return n;
    }
    case StmtKind::Block: {
      auto n = std::make_shared<Stmt>(*s);
      n->stmts.clear();
      for (const auto& st : s->stmts) n->stmts.push_back(rewriteAssigns(st, fn));
      return n;
    }
  }
  return s;
}

std::vector<SymbolId> deriveSensitivity(const Stmt& body) {
  std::set<SymbolId> reads;
  collectReads(body, reads);
  return {reads.begin(), reads.end()};
}

}  // namespace xlv::ir
