#include "ir/module.h"

namespace xlv::ir {

SymbolId Module::findSymbol(const std::string& name) const {
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name == name) return static_cast<SymbolId>(i);
  }
  return kNoSymbol;
}

std::vector<SymbolId> Module::ports() const {
  std::vector<SymbolId> out;
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].isPort()) out.push_back(static_cast<SymbolId>(i));
  }
  return out;
}

int Module::countProcesses(bool sync) const {
  int n = 0;
  for (const auto& p : processes_) {
    if (p.isSync == sync) ++n;
  }
  return n;
}

}  // namespace xlv::ir
