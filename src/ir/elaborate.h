// Elaboration: flatten a module hierarchy into a Design.
//
// Performs static legality checks along the way:
//   * every signal is driven by at most one process (no resolution),
//   * clock symbols are never written by processes,
//   * input ports of the top module are never written by processes,
//   * instance port bindings are width-compatible (checked at build time).
// Violations throw ElaborationError.
#pragma once

#include <memory>
#include <stdexcept>

#include "ir/design.h"

namespace xlv::ir {

class ElaborationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

Design elaborate(const Module& top);

}  // namespace xlv::ir
