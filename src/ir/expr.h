// Expression nodes of the RTL IR.
//
// Expressions are immutable and shared (shared_ptr<const Expr>), so rewriting
// passes (elaboration renaming, mutant injection) clone only the spine they
// change. Every node carries its result Type, fixed at construction by the
// factory functions, which also enforce the width rules:
//   * bitwise/arithmetic binary ops require equal operand widths,
//   * comparisons and reductions produce width-1 unsigned,
//   * Concat produces wa + wb,
//   * shifts take the width of the shifted operand (any amount width).
// The builder DSL (builder.h) performs automatic operand resizing so IP code
// never constructs ill-typed nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/symbol.h"
#include "ir/type.h"

namespace xlv::ir {

enum class ExprKind { Const, Ref, ArrayRef, Unary, Binary, Slice, Select, Resize, Sext };

enum class UnOp { Not, Neg, RedAnd, RedOr, RedXor, BoolNot };

enum class BinOp {
  And, Or, Xor,
  Add, Sub, Mul, Div, Mod,
  Shl, Shr, AShr,
  Eq, Ne, Lt, Le, Gt, Ge,   // Lt/Le/Gt/Ge signedness taken from operand a's type
  Concat,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind = ExprKind::Const;
  Type type;

  std::uint64_t cval = 0;      ///< Const (widths up to 64; wider constants are built by Concat)
  SymbolId sym = kNoSymbol;    ///< Ref / ArrayRef
  ExprPtr a, b, c;             ///< unary: a; binary: a,b; slice: a; select: a=cond,b=then,c=else; arrayref: a=index
  UnOp uop = UnOp::Not;
  BinOp bop = BinOp::And;
  int hi = 0, lo = 0;          ///< Slice bounds (inclusive)
};

// --- factories (each validates and computes the result type) ---------------

ExprPtr makeConst(int width, std::uint64_t value, bool isSigned = false);
ExprPtr makeRef(SymbolId sym, Type t);
ExprPtr makeArrayRef(SymbolId arr, Type elemType, ExprPtr index);
ExprPtr makeUnary(UnOp op, ExprPtr a);
ExprPtr makeBinary(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr makeSlice(ExprPtr a, int hi, int lo);
ExprPtr makeSelect(ExprPtr cond, ExprPtr t, ExprPtr f);
/// Zero-extend (or truncate) keeping unsigned interpretation. Resize/Sext are
/// pure wiring in hardware; they are distinct node kinds so timing analysis
/// can cost them at zero delay.
ExprPtr makeResize(ExprPtr a, int width);
/// Sign-extend (or truncate).
ExprPtr makeSext(ExprPtr a, int width);

/// Human-readable rendering for diagnostics and the code emitters.
std::string exprToString(const Expr& e, const std::vector<Symbol>& symbols);

}  // namespace xlv::ir
