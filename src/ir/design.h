// Design: a fully elaborated (flattened) RTL description.
//
// Elaboration inlines the instance hierarchy: child symbols get
// "instance.name"-prefixed flat entries, child ports unify with the parent
// symbols they are bound to, and all process bodies are rewritten onto the
// flat symbol space. Every engine downstream — the event-driven RTL kernel,
// the TLM scheduler, the STA, the mutation injector — operates on a Design.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace xlv::ir {

struct Design {
  std::string name;
  std::vector<Symbol> symbols;
  std::vector<Process> processes;
  std::vector<ArrayInit> arrayInits;

  SymbolId mainClock = kNoSymbol;
  SymbolId hfClock = kNoSymbol;

  std::vector<SymbolId> inputs;   ///< non-clock input ports of the top module
  std::vector<SymbolId> outputs;  ///< output ports of the top module

  /// symbols assigned in a synchronous process (register outputs / memories).
  std::vector<bool> isRegister;

  const Symbol& symbol(SymbolId id) const { return symbols.at(static_cast<std::size_t>(id)); }
  SymbolId findSymbol(const std::string& n) const {
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      if (symbols[i].name == n) return static_cast<SymbolId>(i);
    }
    return kNoSymbol;
  }

  int numSymbols() const noexcept { return static_cast<int>(symbols.size()); }

  /// Total flip-flop bits: width of every register signal plus array bits of
  /// register arrays (the FF (#) column of Table 1).
  int flipFlopBits() const;

  int countProcesses(bool sync) const;
};

}  // namespace xlv::ir
