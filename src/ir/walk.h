// IR traversal and rewriting utilities.
//
// These back three consumers:
//   * sensitivity derivation (read set of an async process body),
//   * static timing analysis (per-assignment cone walks),
//   * mutant injection and elaboration (symbol-remapping clones).
#pragma once

#include <functional>
#include <set>
#include <unordered_map>

#include "ir/process.h"
#include "ir/stmt.h"

namespace xlv::ir {

/// All symbols read by an expression (Refs, ArrayRefs, and indices).
void collectReads(const Expr& e, std::set<SymbolId>& out);

/// All symbols read anywhere in a statement tree (conditions included).
void collectReads(const Stmt& s, std::set<SymbolId>& out);

/// All symbols written (Assign targets and ArrayWrite targets).
void collectWrites(const Stmt& s, std::set<SymbolId>& out);

/// Visit every Assign / ArrayWrite leaf in execution-order.
void forEachAssign(const Stmt& s, const std::function<void(const Stmt&)>& fn);

/// Clone an expression, substituting symbol ids through `map` (ids absent
/// from the map are kept). Shared subtrees are re-cloned (exprs are small).
ExprPtr remapExpr(const ExprPtr& e, const std::unordered_map<SymbolId, SymbolId>& map);

/// Clone a statement tree with the same substitution.
StmtPtr remapStmt(const StmtPtr& s, const std::unordered_map<SymbolId, SymbolId>& map);

/// Clone a statement tree, transforming every Assign/ArrayWrite leaf through
/// `fn`; `fn` returns the replacement (possibly the input unchanged).
StmtPtr rewriteAssigns(const StmtPtr& s, const std::function<StmtPtr(const StmtPtr&)>& fn);

/// Derive the sensitivity list of an async process: its read set.
std::vector<SymbolId> deriveSensitivity(const Stmt& body);

}  // namespace xlv::ir
