// Symbols: signals, variables and arrays of an RTL module.
//
// A Symbol is everything the simulators need to know about one named object:
// its kind decides assignment semantics (signals update on delta boundaries,
// variables immediately — VHDL rules), its port direction makes it part of
// the module interface, and its clock role lets the engines find the main
// and high-frequency clocks that drive scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace xlv::ir {

using SymbolId = std::int32_t;
inline constexpr SymbolId kNoSymbol = -1;

enum class SymKind {
  Signal,    ///< delta-scheduled (nonblocking) updates
  Variable,  ///< immediate updates, process-local semantics
  Array,     ///< array of Signal-like elements (register files, memories)
};

enum class PortDir { None, In, Out };

enum class ClockRole {
  None,
  Main,      ///< the IP clock; one TLM transaction per cycle (Section 5.2.1)
  HighFreq,  ///< finer-grain clock wrapped inside a transaction (Section 5.2.2)
};

struct Symbol {
  std::string name;
  SymKind kind = SymKind::Signal;
  Type type;
  PortDir dir = PortDir::None;
  int arraySize = 0;  ///< element count when kind == Array
  ClockRole clock = ClockRole::None;
  std::uint64_t initValue = 0;  ///< power-on value (applied before reset)
  bool hasInit = false;
  /// Memory macro (SRAM/ROM): excluded from flip-flop and gate counts, the
  /// convention of synthesis reports where memories map to hard macros.
  bool isMacro = false;

  bool isPort() const noexcept { return dir != PortDir::None; }
  bool isClock() const noexcept { return clock != ClockRole::None; }
};

}  // namespace xlv::ir
