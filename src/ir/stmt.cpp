#include "ir/stmt.h"

#include <stdexcept>

namespace xlv::ir {

namespace {
void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(std::string("ir::Stmt: ") + what);
}

std::shared_ptr<Stmt> node(StmtKind k) {
  auto s = std::make_shared<Stmt>();
  s->kind = k;
  return s;
}
}  // namespace

StmtPtr makeAssign(SymbolId target, ExprPtr value) {
  require(target != kNoSymbol, "assign to no symbol");
  require(value != nullptr, "assign without value");
  auto s = node(StmtKind::Assign);
  s->target = target;
  s->value = std::move(value);
  return s;
}

StmtPtr makeAssignRange(SymbolId target, int hi, int lo, ExprPtr value) {
  require(target != kNoSymbol, "assign to no symbol");
  require(value != nullptr, "assign without value");
  require(hi >= lo && lo >= 0, "bad assign range");
  require(value->type.width == hi - lo + 1, "range assign width mismatch");
  auto s = node(StmtKind::Assign);
  s->target = target;
  s->hi = hi;
  s->lo = lo;
  s->value = std::move(value);
  return s;
}

StmtPtr makeArrayWrite(SymbolId target, ExprPtr index, ExprPtr value) {
  require(target != kNoSymbol, "array write to no symbol");
  require(index != nullptr && value != nullptr, "array write needs index and value");
  auto s = node(StmtKind::ArrayWrite);
  s->target = target;
  s->index = std::move(index);
  s->value = std::move(value);
  return s;
}

StmtPtr makeIf(ExprPtr cond, StmtPtr thenS, StmtPtr elseS) {
  require(cond != nullptr, "if without condition");
  auto s = node(StmtKind::If);
  s->value = std::move(cond);
  s->thenS = std::move(thenS);
  s->elseS = std::move(elseS);
  return s;
}

StmtPtr makeCase(ExprPtr selector, std::vector<CaseArm> arms, StmtPtr defaultArm) {
  require(selector != nullptr, "case without selector");
  auto s = node(StmtKind::Case);
  s->value = std::move(selector);
  s->arms = std::move(arms);
  s->defaultArm = std::move(defaultArm);
  return s;
}

StmtPtr makeBlock(std::vector<StmtPtr> stmts) {
  auto s = node(StmtKind::Block);
  s->stmts = std::move(stmts);
  return s;
}

int countAssignments(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign:
    case StmtKind::ArrayWrite:
      return 1;
    case StmtKind::If: {
      int n = 0;
      if (s.thenS) n += countAssignments(*s.thenS);
      if (s.elseS) n += countAssignments(*s.elseS);
      return n;
    }
    case StmtKind::Case: {
      int n = 0;
      for (const auto& arm : s.arms) {
        if (arm.body) n += countAssignments(*arm.body);
      }
      if (s.defaultArm) n += countAssignments(*s.defaultArm);
      return n;
    }
    case StmtKind::Block: {
      int n = 0;
      for (const auto& st : s.stmts) n += countAssignments(*st);
      return n;
    }
  }
  return 0;
}

}  // namespace xlv::ir
