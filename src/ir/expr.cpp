#include "ir/expr.h"

#include <sstream>
#include <stdexcept>

namespace xlv::ir {

namespace {
void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(std::string("ir::Expr: ") + what);
}

std::shared_ptr<Expr> node(ExprKind k, Type t) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  e->type = t;
  return e;
}
}  // namespace

ExprPtr makeConst(int width, std::uint64_t value, bool isSigned) {
  require(width >= 1, "const width must be >= 1");
  auto e = node(ExprKind::Const, Type{width, isSigned});
  e->cval = width >= 64 ? value : (value & ((1ULL << width) - 1));
  return e;
}

ExprPtr makeRef(SymbolId sym, Type t) {
  require(sym != kNoSymbol, "ref to no symbol");
  auto e = node(ExprKind::Ref, t);
  e->sym = sym;
  return e;
}

ExprPtr makeArrayRef(SymbolId arr, Type elemType, ExprPtr index) {
  require(arr != kNoSymbol, "array ref to no symbol");
  require(index != nullptr, "array ref needs an index");
  auto e = node(ExprKind::ArrayRef, elemType);
  e->sym = arr;
  e->a = std::move(index);
  return e;
}

ExprPtr makeUnary(UnOp op, ExprPtr a) {
  require(a != nullptr, "unary operand missing");
  Type t = a->type;
  switch (op) {
    case UnOp::Not:
    case UnOp::Neg:
      break;  // same width
    case UnOp::RedAnd:
    case UnOp::RedOr:
    case UnOp::RedXor:
    case UnOp::BoolNot:
      t = Type{1, false};
      break;
  }
  auto e = node(ExprKind::Unary, t);
  e->uop = op;
  e->a = std::move(a);
  return e;
}

ExprPtr makeBinary(BinOp op, ExprPtr a, ExprPtr b) {
  require(a != nullptr && b != nullptr, "binary operand missing");
  Type t;
  switch (op) {
    case BinOp::And:
    case BinOp::Or:
    case BinOp::Xor:
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Mod:
      require(a->type.width == b->type.width, "binary op width mismatch");
      t = Type{a->type.width, a->type.isSigned && b->type.isSigned};
      break;
    case BinOp::Shl:
    case BinOp::Shr:
    case BinOp::AShr:
      t = a->type;  // amount width is free
      break;
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      require(a->type.width == b->type.width, "comparison width mismatch");
      t = Type{1, false};
      break;
    case BinOp::Concat:
      t = Type{a->type.width + b->type.width, false};
      break;
  }
  auto e = node(ExprKind::Binary, t);
  e->bop = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprPtr makeSlice(ExprPtr a, int hi, int lo) {
  require(a != nullptr, "slice operand missing");
  require(lo >= 0 && hi >= lo && hi < a->type.width, "slice bounds out of range");
  auto e = node(ExprKind::Slice, Type{hi - lo + 1, false});
  e->a = std::move(a);
  e->hi = hi;
  e->lo = lo;
  return e;
}

ExprPtr makeSelect(ExprPtr cond, ExprPtr t, ExprPtr f) {
  require(cond != nullptr && t != nullptr && f != nullptr, "select operand missing");
  require(t->type.width == f->type.width, "select arm width mismatch");
  auto e = node(ExprKind::Select, Type{t->type.width, t->type.isSigned && f->type.isSigned});
  e->a = std::move(cond);
  e->b = std::move(t);
  e->c = std::move(f);
  return e;
}

ExprPtr makeResize(ExprPtr a, int width) {
  require(a != nullptr, "resize operand missing");
  require(width >= 1, "resize width must be >= 1");
  if (a->type.width == width) return a;
  auto e = node(ExprKind::Resize, Type{width, false});
  e->a = std::move(a);
  return e;
}

ExprPtr makeSext(ExprPtr a, int width) {
  require(a != nullptr, "sext operand missing");
  require(width >= 1, "sext width must be >= 1");
  if (a->type.width == width) return a;
  auto e = node(ExprKind::Sext, Type{width, true});
  e->a = std::move(a);
  return e;
}

namespace {
const char* binOpToken(BinOp op) {
  switch (op) {
    case BinOp::And: return "&";
    case BinOp::Or: return "|";
    case BinOp::Xor: return "^";
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::AShr: return ">>>";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Concat: return ",";
  }
  return "?";
}
}  // namespace

std::string exprToString(const Expr& e, const std::vector<Symbol>& symbols) {
  auto symName = [&](SymbolId s) -> std::string {
    if (s >= 0 && static_cast<std::size_t>(s) < symbols.size())
      return symbols[static_cast<std::size_t>(s)].name;
    return "?sym" + std::to_string(s);
  };
  std::ostringstream os;
  switch (e.kind) {
    case ExprKind::Const:
      os << e.type.width << "'d" << e.cval;
      break;
    case ExprKind::Ref:
      os << symName(e.sym);
      break;
    case ExprKind::ArrayRef:
      os << symName(e.sym) << "[" << exprToString(*e.a, symbols) << "]";
      break;
    case ExprKind::Unary: {
      const char* t = "~";
      switch (e.uop) {
        case UnOp::Not: t = "~"; break;
        case UnOp::Neg: t = "-"; break;
        case UnOp::RedAnd: t = "&"; break;
        case UnOp::RedOr: t = "|"; break;
        case UnOp::RedXor: t = "^"; break;
        case UnOp::BoolNot: t = "!"; break;
      }
      os << t << "(" << exprToString(*e.a, symbols) << ")";
      break;
    }
    case ExprKind::Binary:
      if (e.bop == BinOp::Concat) {
        os << "{" << exprToString(*e.a, symbols) << ", " << exprToString(*e.b, symbols) << "}";
      } else {
        os << "(" << exprToString(*e.a, symbols) << " " << binOpToken(e.bop) << " "
           << exprToString(*e.b, symbols) << ")";
      }
      break;
    case ExprKind::Slice:
      os << exprToString(*e.a, symbols) << "[" << e.hi << ":" << e.lo << "]";
      break;
    case ExprKind::Select:
      os << "(" << exprToString(*e.a, symbols) << " ? " << exprToString(*e.b, symbols) << " : "
         << exprToString(*e.c, symbols) << ")";
      break;
    case ExprKind::Resize:
      os << "zext(" << exprToString(*e.a, symbols) << ", " << e.type.width << ")";
      break;
    case ExprKind::Sext:
      os << "sext(" << exprToString(*e.a, symbols) << ", " << e.type.width << ")";
      break;
  }
  return os.str();
}

}  // namespace xlv::ir
