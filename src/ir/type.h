// Value types of the RTL intermediate representation.
#pragma once

namespace xlv::ir {

/// An RTL vector type: bit width plus signedness interpretation.
/// Width 1 models both std_logic and 1-bit vectors.
struct Type {
  int width = 1;
  bool isSigned = false;

  bool operator==(const Type&) const = default;
};

}  // namespace xlv::ir
