// Builder DSL for constructing RTL IR modules in C++.
//
// Design code reads close to HDL:
//
//   ModuleBuilder mb("accum");
//   auto clk = mb.clock("clk");
//   auto rst = mb.in("rst", 1);
//   auto din = mb.in("din", 8);
//   auto acc = mb.out("acc", 16);
//   mb.sync("acc_p", clk, EdgeKind::Rising, [&](ProcBuilder& p) {
//     p.if_(Ex(rst) == 1u,
//           [&] { p.assign(acc, lit(16, 0)); },
//           [&] { p.assign(acc, Ex(acc) + zext(din, 16)); });
//   });
//   auto m = mb.finish();
//
// The Ex wrapper aligns operand widths automatically (zero-extension for
// unsigned, sign-extension for signed operands), so built expressions always
// satisfy the IR width rules.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/module.h"
#include "ir/walk.h"

namespace xlv::ir {

class ModuleBuilder;

/// Handle to a declared signal/variable; knows its symbol and type.
struct Sig {
  SymbolId id = kNoSymbol;
  Type type;

  bool valid() const noexcept { return id != kNoSymbol; }
};

/// Handle to a declared array.
struct Arr {
  SymbolId id = kNoSymbol;
  Type elemType;
  int size = 0;
};

/// Expression wrapper enabling operator syntax.
class Ex {
 public:
  Ex() = default;
  explicit Ex(ExprPtr e) : e_(std::move(e)) {}
  Ex(const Sig& s) : e_(makeRef(s.id, s.type)) {}  // NOLINT: implicit by design

  const ExprPtr& ptr() const noexcept { return e_; }
  int width() const noexcept { return e_ ? e_->type.width : 0; }
  bool isSigned() const noexcept { return e_ && e_->type.isSigned; }

 private:
  ExprPtr e_;
};

// --- literals ---------------------------------------------------------------
Ex lit(int width, std::uint64_t v);
Ex litS(int width, std::int64_t v);

// --- width manipulation -----------------------------------------------------
Ex zext(Ex a, int width);
Ex sext(Ex a, int width);
/// Resize according to the operand's own signedness.
Ex fit(Ex a, int width);
Ex slice(Ex a, int hi, int lo);
Ex bitof(Ex a, int i);
/// Dynamic single-bit select: a[idx].
Ex bitsel(Ex a, Ex idx);
Ex concat(Ex hiPart, Ex loPart);

// --- logic ------------------------------------------------------------------
Ex operator&(Ex a, Ex b);
Ex operator|(Ex a, Ex b);
Ex operator^(Ex a, Ex b);
Ex operator~(Ex a);
Ex redand(Ex a);
Ex redor(Ex a);
Ex redxor(Ex a);
/// Logical not: 1 iff a == 0.
Ex bnot(Ex a);

// --- arithmetic ---------------------------------------------------------------
Ex operator+(Ex a, Ex b);
Ex operator-(Ex a, Ex b);
Ex operator*(Ex a, Ex b);
Ex operator/(Ex a, Ex b);
Ex operator%(Ex a, Ex b);
Ex neg(Ex a);

// --- shifts -------------------------------------------------------------------
Ex shl(Ex a, Ex amount);
Ex shr(Ex a, Ex amount);
Ex ashr(Ex a, Ex amount);
Ex shl(Ex a, int amount);
Ex shr(Ex a, int amount);
Ex ashr(Ex a, int amount);

// --- comparisons (1-bit results) ---------------------------------------------
Ex operator==(Ex a, Ex b);
Ex operator!=(Ex a, Ex b);
Ex operator<(Ex a, Ex b);
Ex operator<=(Ex a, Ex b);
Ex operator>(Ex a, Ex b);
Ex operator>=(Ex a, Ex b);

// Convenience right-hand literals sized to the left operand.
Ex operator==(Ex a, std::uint64_t v);
Ex operator!=(Ex a, std::uint64_t v);
Ex operator+(Ex a, std::uint64_t v);
Ex operator-(Ex a, std::uint64_t v);

/// Conditional: cond ? t : f (arm widths aligned).
Ex sel(Ex cond, Ex t, Ex f);

/// Array element read.
Ex at(const Arr& arr, Ex index);

/// Statement accumulation with structured nesting. Obtained from
/// ModuleBuilder::sync / comb callbacks; the callback records statements by
/// calling the methods below.
class ProcBuilder {
 public:
  void assign(const Sig& target, Ex value);
  void assignRange(const Sig& target, int hi, int lo, Ex value);
  void write(const Arr& target, Ex index, Ex value);
  void if_(Ex cond, const std::function<void()>& thenFn,
           const std::function<void()>& elseFn = {});
  /// switch/case over a selector with integer labels.
  void switch_(Ex selector,
               std::vector<std::pair<std::vector<std::uint64_t>, std::function<void()>>> arms,
               const std::function<void()>& defaultFn = {});

 private:
  friend class ModuleBuilder;
  ProcBuilder() { stack_.emplace_back(); }
  StmtPtr finish();
  std::vector<StmtPtr> popLevel();

  std::vector<std::vector<StmtPtr>> stack_;
};

class ModuleBuilder {
 public:
  explicit ModuleBuilder(std::string name)
      : module_(std::make_shared<Module>(std::move(name))) {}

  // --- declarations ---------------------------------------------------------
  Sig in(const std::string& name, int width, bool isSigned = false);
  Sig out(const std::string& name, int width, bool isSigned = false);
  Sig clock(const std::string& name, ClockRole role = ClockRole::Main);
  Sig signal(const std::string& name, int width, bool isSigned = false);
  /// Signal with an explicit power-on value.
  Sig signalInit(const std::string& name, int width, std::uint64_t init, bool isSigned = false);
  /// Process variable (immediate assignment semantics).
  Sig var(const std::string& name, int width, bool isSigned = false);
  Arr array(const std::string& name, int elemWidth, int size, bool isSigned = false);
  /// Array backed by a memory macro (SRAM/ROM): excluded from FF/gate counts.
  Arr memory(const std::string& name, int elemWidth, int size, bool isSigned = false);
  void initArray(const Arr& arr, std::vector<std::uint64_t> image);

  // --- processes --------------------------------------------------------------
  void sync(const std::string& name, const Sig& clk, EdgeKind edge,
            const std::function<void(ProcBuilder&)>& fn);
  void onRising(const std::string& name, const Sig& clk,
                const std::function<void(ProcBuilder&)>& fn) {
    sync(name, clk, EdgeKind::Rising, fn);
  }
  void onFalling(const std::string& name, const Sig& clk,
                 const std::function<void(ProcBuilder&)>& fn) {
    sync(name, clk, EdgeKind::Falling, fn);
  }
  /// Post-edge sampler process (see Process::postEdge): runs after the rising
  /// edge's commits and settling, before any delayed update can land.
  void onPostEdge(const std::string& name, const Sig& clk,
                  const std::function<void(ProcBuilder&)>& fn);
  /// Combinational process; sensitivity derived from the body's read set.
  void comb(const std::string& name, const std::function<void(ProcBuilder&)>& fn);

  // --- hierarchy ----------------------------------------------------------------
  /// Instantiate `child`, binding child port names to parent signals.
  void instance(const std::string& name, std::shared_ptr<const Module> child,
                const std::vector<std::pair<std::string, Sig>>& portMap);

  Module& module() noexcept { return *module_; }
  std::shared_ptr<Module> finish() { return module_; }

 private:
  Sig declare(const std::string& name, SymKind kind, Type t, PortDir dir,
              ClockRole role = ClockRole::None, std::uint64_t init = 0, bool hasInit = false);
  std::shared_ptr<Module> module_;
};

}  // namespace xlv::ir
