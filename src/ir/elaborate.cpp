#include "ir/elaborate.h"

#include <unordered_map>

#include "ir/walk.h"

namespace xlv::ir {

namespace {

/// Recursive flattening of one module into the design under construction.
/// `bound` maps the module's port symbols to already-created flat ids (empty
/// for the top module); unbound ports become flat symbols themselves.
void flatten(const Module& m, const std::string& prefix,
             const std::unordered_map<SymbolId, SymbolId>& bound, Design& d) {
  std::unordered_map<SymbolId, SymbolId> map;

  // Create flat symbols (or reuse bound ones for connected ports).
  const auto& syms = m.symbols();
  for (std::size_t i = 0; i < syms.size(); ++i) {
    const auto id = static_cast<SymbolId>(i);
    if (auto it = bound.find(id); it != bound.end()) {
      map[id] = it->second;
      continue;
    }
    Symbol flat = syms[i];
    flat.name = prefix.empty() ? flat.name : prefix + "." + flat.name;
    if (!prefix.empty()) flat.dir = PortDir::None;  // only top-level ports stay ports
    d.symbols.push_back(std::move(flat));
    map[id] = static_cast<SymbolId>(d.symbols.size() - 1);
  }

  // Processes and array images, rewritten onto flat ids.
  for (const auto& p : m.processes()) {
    Process fp;
    fp.name = prefix.empty() ? p.name : prefix + "." + p.name;
    fp.isSync = p.isSync;
    fp.clock = p.isSync ? map.at(p.clock) : kNoSymbol;
    fp.edge = p.edge;
    fp.postEdge = p.postEdge;
    fp.body = remapStmt(p.body, map);
    if (!p.isSync) {
      fp.sensitivity.reserve(p.sensitivity.size());
      for (SymbolId s : p.sensitivity) fp.sensitivity.push_back(map.at(s));
    }
    d.processes.push_back(std::move(fp));
  }
  for (const auto& ai : m.arrayInits()) {
    d.arrayInits.push_back(ArrayInit{map.at(ai.array), ai.words});
  }

  // Recurse into instances.
  for (const auto& inst : m.instances()) {
    std::unordered_map<SymbolId, SymbolId> childBound;
    for (const auto& b : inst.bindings) childBound[b.childPort] = map.at(b.parentSym);
    const std::string childPrefix = prefix.empty() ? inst.name : prefix + "." + inst.name;
    flatten(*inst.module, childPrefix, childBound, d);
  }
}

void checkDrivers(const Design& d) {
  // driver[sym] = index of the (unique) writing process, or -2 for multiple.
  std::vector<int> driver(d.symbols.size(), -1);
  for (std::size_t pi = 0; pi < d.processes.size(); ++pi) {
    std::set<SymbolId> writes;
    collectWrites(*d.processes[pi].body, writes);
    for (SymbolId s : writes) {
      const Symbol& sym = d.symbol(s);
      if (sym.kind == SymKind::Variable) continue;  // variables are process-local by convention
      if (sym.isClock()) {
        throw ElaborationError("process '" + d.processes[pi].name + "' writes clock '" +
                               sym.name + "'");
      }
      if (sym.dir == PortDir::In) {
        throw ElaborationError("process '" + d.processes[pi].name + "' writes input port '" +
                               sym.name + "'");
      }
      auto& slot = driver[static_cast<std::size_t>(s)];
      if (slot == -1) {
        slot = static_cast<int>(pi);
      } else if (slot != static_cast<int>(pi)) {
        throw ElaborationError("signal '" + sym.name + "' has multiple drivers ('" +
                               d.processes[static_cast<std::size_t>(slot)].name + "' and '" +
                               d.processes[pi].name + "')");
      }
    }
  }
}

}  // namespace

int Design::flipFlopBits() const {
  int bits = 0;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (!isRegister[i]) continue;
    const Symbol& s = symbols[i];
    if (s.kind == SymKind::Array) {
      if (!s.isMacro) bits += s.type.width * s.arraySize;
    } else {
      bits += s.type.width;
    }
  }
  return bits;
}

int Design::countProcesses(bool sync) const {
  int n = 0;
  for (const auto& p : processes) {
    if (p.isSync == sync) ++n;
  }
  return n;
}

Design elaborate(const Module& top) {
  Design d;
  d.name = top.name();
  flatten(top, "", {}, d);

  checkDrivers(d);

  // Locate clocks and classify top-level ports.
  for (std::size_t i = 0; i < d.symbols.size(); ++i) {
    const auto id = static_cast<SymbolId>(i);
    const Symbol& s = d.symbols[i];
    if (s.clock == ClockRole::Main) {
      if (d.mainClock != kNoSymbol && d.mainClock != id) {
        throw ElaborationError("multiple main clocks: '" + d.symbol(d.mainClock).name +
                               "' and '" + s.name + "'");
      }
      d.mainClock = id;
    } else if (s.clock == ClockRole::HighFreq) {
      if (d.hfClock != kNoSymbol && d.hfClock != id) {
        throw ElaborationError("multiple high-frequency clocks: '" +
                               d.symbol(d.hfClock).name + "' and '" + s.name + "'");
      }
      d.hfClock = id;
    }
    if (s.dir == PortDir::In && !s.isClock()) d.inputs.push_back(id);
    if (s.dir == PortDir::Out) d.outputs.push_back(id);
  }

  // Mark registers: symbols written by synchronous processes.
  d.isRegister.assign(d.symbols.size(), false);
  for (const auto& p : d.processes) {
    if (!p.isSync) continue;
    std::set<SymbolId> writes;
    collectWrites(*p.body, writes);
    for (SymbolId s : writes) d.isRegister[static_cast<std::size_t>(s)] = true;
  }

  return d;
}

}  // namespace xlv::ir
