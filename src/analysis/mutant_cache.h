// Process-wide per-mutant result cache (ROADMAP: "per-mutant result
// sharing across variants").
//
// The mutant-set-variant sweep axis re-simulates work: `full` injects and
// simulates every generated mutant, while `min`/`max` keep a subset of the
// very same mutants (core::sliceMutantSet) — their golden-vs-injected
// co-simulations are identical because an inactive mutant commits its
// target at the normal edge point (mutation/adam.h: the injected model is
// cycle-equivalent to the augmented design whichever other mutants ride
// along). A MutantResult is therefore fully determined by
//
//   (augmented-design identity, observed endpoints, testbench identity,
//    scheduler/recording config)  x  (mutant spec),
//
// where the first factor is exactly the golden-trace key
// (analysis/golden_cache.h) — the golden trace is derived from the same
// inputs — and the second is the (targetSignal, kind, deltaTicks) triple.
//
// The only field that is NOT part of that identity is MutantResult::id: the
// index of the mutant in the *current* injected set, which differs between
// variants (mutant 7 of `full` may be mutant 2 of `min`). Cached values are
// id-normalized (id = -1); consumers fix the id up from their own injected
// set on every reuse (mutation_analysis.cpp), which is what keeps variant
// and fragment reports bit-identical to their from-scratch runs.
//
// Enabled by AnalysisConfig/FlowOptions::useMutantCache (sweeps turn it on
// by default); layered over util::processArtifactStore() (domain "mutant")
// when one is configured, so warm processes skip the simulations entirely.
#pragma once

#include <string>
#include <string_view>

#include "analysis/mutation_analysis.h"
#include "mutation/adam.h"
#include "util/codec.h"
#include "util/once_cache.h"

namespace xlv::analysis {

/// Cache key of one mutant's result: the golden-trace key of its analysis
/// (design fingerprint, endpoints, testbench, config, value policy) plus
/// the mutant spec. Length-prefixed like every other cache key.
std::string mutantResultKey(const std::string& goldenKey, const mutation::MutantSpec& spec);

/// The process-wide cache. Values are id-normalized (id = -1); copy and fix
/// the id up before putting one into a report.
util::OnceCache<MutantResult>& mutantResultCache();

/// Field-level codec of a MutantResult's CONTENT — every field except the
/// id (which is variant-local and handled by each caller). The ONE field
/// list shared by the campaign wire codec (campaign/serialize.cpp, prefix
/// "mut.") and the artifact codec below (no prefix): a new MutantResult
/// field added here reaches both formats, so warm-vs-cold bit-identity
/// cannot silently drift. getMutantResultFields returns id = -1 and throws
/// util::DecodeError on an unknown mutant kind.
void putMutantResultFields(util::Encoder& e, std::string_view prefix,
                           const MutantResult& result);
MutantResult getMutantResultFields(util::Decoder& d, std::string_view prefix);

/// Byte-stable artifact codec (util/codec.h) for the disk spill. The id
/// travels as the normalized -1 so one entry serves every variant; decode
/// throws util::DecodeError on truncation, version skew or an unknown
/// mutant kind.
std::string encodeMutantResultArtifact(const MutantResult& result);
MutantResult decodeMutantResultArtifact(std::string_view data);

}  // namespace xlv::analysis
