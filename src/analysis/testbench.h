// Testbench: the per-cycle stimulus shared by every engine of the flow.
//
// The paper drives mutation analysis with "the testbench shipped with the
// IP" (Section 7). A Testbench here is an engine-agnostic input driver: the
// same object stimulates the event-driven RTL kernel, the abstracted TLM
// model and the injected TLM model, guaranteeing identical inputs across
// levels.
//
// Concurrency contract: `drive` must be safe to call concurrently for
// distinct cycles (the stock case-study testbenches are pure functions of
// the cycle index, deriving any randomness from the cycle, so they qualify).
// A testbench whose driver keeps mutable session state (an incremental PRNG,
// a protocol FSM) instead provides `makeDriver`: each campaign task then
// gets its own driver instance via driverForTask(), seeded deterministically
// from (seed, taskId) — the same task always replays the same stimulus, on
// any thread, at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace xlv::analysis {

/// Receives (portName, value) for each input to drive this cycle.
using PortSetter = std::function<void(const std::string&, std::uint64_t)>;

/// Drives the DUT inputs for the given cycle.
using DriveFn = std::function<void(std::uint64_t cycle, const PortSetter&)>;

struct Testbench {
  std::string name;
  std::uint64_t cycles = 100;
  /// Shared driver; must be thread-safe (stateless / pure in the cycle).
  DriveFn drive;

  /// Campaign-level base seed mixed into every per-task seed.
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  /// Optional factory for stateful drivers: called once per campaign task
  /// with a deterministic per-task seed; the returned driver is owned by
  /// that task alone, so it may keep mutable state. The factory itself IS
  /// invoked concurrently from worker threads — it must not touch shared
  /// mutable state (construct everything from the seed argument).
  std::function<DriveFn(std::uint64_t taskSeed)> makeDriver;

  /// Deterministic per-task seed: splitmix64 finalizer over (seed, taskId).
  std::uint64_t taskSeed(std::uint64_t taskId) const noexcept {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (taskId + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// The driver a campaign task should use: a fresh per-task instance when
  /// the testbench is stateful, the shared (pure) driver otherwise.
  DriveFn driverForTask(std::uint64_t taskId) const {
    if (makeDriver) return makeDriver(taskSeed(taskId));
    return drive;
  }
};

}  // namespace xlv::analysis
