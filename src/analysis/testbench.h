// Testbench: the per-cycle stimulus shared by every engine of the flow.
//
// The paper drives mutation analysis with "the testbench shipped with the
// IP" (Section 7). A Testbench here is an engine-agnostic input driver: the
// same object stimulates the event-driven RTL kernel, the abstracted TLM
// model and the injected TLM model, guaranteeing identical inputs across
// levels.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace xlv::analysis {

/// Receives (portName, value) for each input to drive this cycle.
using PortSetter = std::function<void(const std::string&, std::uint64_t)>;

struct Testbench {
  std::string name;
  std::uint64_t cycles = 100;
  /// Drive the DUT inputs for the given cycle.
  std::function<void(std::uint64_t cycle, const PortSetter&)> drive;
};

}  // namespace xlv::analysis
