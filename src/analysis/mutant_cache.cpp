#include "analysis/mutant_cache.h"

#include "util/codec.h"

namespace xlv::analysis {

std::string mutantResultKey(const std::string& goldenKey,
                            const mutation::MutantSpec& spec) {
  std::string key = goldenKey;
  key.append("|mut=")
      .append(std::to_string(spec.targetSignal.size()))
      .append(":")
      .append(spec.targetSignal);
  key.append("|mk=").append(mutation::mutantKindName(spec.kind));
  key.append("|dt=").append(std::to_string(spec.deltaTicks));
  return key;
}

util::OnceCache<MutantResult>& mutantResultCache() {
  static util::OnceCache<MutantResult> cache;
  return cache;
}

namespace {

constexpr const char* kMutantArtifactTag = "mutant-artifact";
constexpr int kMutantArtifactVersion = 1;

std::string fieldName(std::string_view prefix, const char* name) {
  std::string s(prefix);
  s += name;
  return s;
}

}  // namespace

void putMutantResultFields(util::Encoder& e, std::string_view prefix,
                           const MutantResult& result) {
  // id deliberately not encoded: it is variant-local (see header comment).
  e.str(fieldName(prefix, "endpoint"), result.endpoint);
  e.str(fieldName(prefix, "kind"), mutation::mutantKindName(result.kind));
  e.i64(fieldName(prefix, "deltaTicks"), result.deltaTicks);
  e.boolean(fieldName(prefix, "killed"), result.killed);
  e.boolean(fieldName(prefix, "detected"), result.detected);
  e.boolean(fieldName(prefix, "errorRisen"), result.errorRisen);
  e.boolean(fieldName(prefix, "corrected"), result.corrected);
  e.boolean(fieldName(prefix, "correctionChecked"), result.correctionChecked);
  e.u64(fieldName(prefix, "measuredDelay"), result.measuredDelay);
}

MutantResult getMutantResultFields(util::Decoder& d, std::string_view prefix) {
  MutantResult r;
  r.id = -1;
  r.endpoint = d.str(fieldName(prefix, "endpoint"));
  const std::string kind = d.str(fieldName(prefix, "kind"));
  const auto parsed = mutation::mutantKindFromName(kind);
  if (!parsed) throw util::DecodeError("unknown mutant kind '" + kind + "'");
  r.kind = *parsed;
  r.deltaTicks = static_cast<int>(d.i64(fieldName(prefix, "deltaTicks")));
  r.killed = d.boolean(fieldName(prefix, "killed"));
  r.detected = d.boolean(fieldName(prefix, "detected"));
  r.errorRisen = d.boolean(fieldName(prefix, "errorRisen"));
  r.corrected = d.boolean(fieldName(prefix, "corrected"));
  r.correctionChecked = d.boolean(fieldName(prefix, "correctionChecked"));
  r.measuredDelay = d.u64(fieldName(prefix, "measuredDelay"));
  return r;
}

std::string encodeMutantResultArtifact(const MutantResult& result) {
  util::Encoder e(kMutantArtifactTag, kMutantArtifactVersion);
  putMutantResultFields(e, "", result);
  return e.take();
}

MutantResult decodeMutantResultArtifact(std::string_view data) {
  util::Decoder d(data, kMutantArtifactTag, kMutantArtifactVersion);
  MutantResult r = getMutantResultFields(d, "");
  d.finish();
  return r;
}

}  // namespace xlv::analysis
