// Process-wide golden-trace cache (ROADMAP: "Golden-trace sharing across
// analyses").
//
// recordGoldenTrace simulates the clean augmented design for the full
// testbench length — for corner sweeps that vary only the mutant set or the
// STA binning of an identical critical set, that run is byte-identical
// across sweep points. This cache shares it: analyses whose (design
// identity, observed endpoints, testbench, cycles, hfRatio, stimulus)
// agree reuse one immutable GoldenTrace.
//
// Keying rules (see also campaign/README.md):
//   * design identity — a structural fingerprint of the elaborated golden
//     design (hash of its canonical emitted C++ plus symbol/FF counts), so
//     two sweep points hit iff sensor insertion produced the same design;
//   * endpoints — the ordered sensor endpoint names (the trace records one
//     column per sensor);
//   * testbench — (name, seed, cycles, stimulusId). The drive function
//     itself is not hashable: two testbenches with different behavior MUST
//     differ in name or seed, which every stock case study does;
//   * hfRatio / recovery port / value policy — scheduler and recording
//     configuration that changes the trace contents.
//
// Thread safety: backed by util::OnceCache — concurrent analyses racing for
// one key record the trace exactly once (waiters block on the recording),
// and the shared trace is immutable afterwards, so reports stay
// bit-identical at any thread count with the cache on or off.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/design.h"
#include "util/once_cache.h"

namespace xlv::insertion {
struct InsertedSensor;
}

namespace xlv::analysis {

struct Testbench;
struct AnalysisConfig;
struct GoldenTrace;

/// Structural fingerprint of an elaborated design: FNV-1a over the canonical
/// emitted C++ (process bodies, symbols, scheduler shape) mixed with cheap
/// structural counts. Designs that simulate differently hash differently
/// modulo 64-bit collisions.
std::uint64_t designFingerprint(const ir::Design& design, int hfRatio);

/// The full cache key for one golden recording, serialized to a string
/// (doubles and hashes rendered exactly). `policyTag` distinguishes value
/// policies ("4s" / "2s").
std::string goldenTraceKey(const ir::Design& golden,
                           const std::vector<insertion::InsertedSensor>& sensors,
                           const Testbench& tb, const AnalysisConfig& cfg,
                           const char* policyTag);

/// The process-wide trace cache. Unbounded by default (entries live until
/// clear()); a long-lived process sweeping an unbounded key set (many IPs x
/// testbench lengths) can bound it with OnceCache::setCapacity (LRU). When
/// a util::processArtifactStore() is configured, the analysis layer spills
/// recordings to disk under the same keys (domain "golden"), so sharded
/// multi-process campaigns — and evicted entries — reload instead of
/// re-simulating.
util::OnceCache<GoldenTrace>& goldenTraceCache();

/// Byte-stable artifact codec for a GoldenTrace (util/codec.h envelope;
/// trace words packed 8-byte little-endian): the disk-spill format of the
/// golden cache. decodeGoldenTrace throws util::DecodeError on truncation,
/// version skew or a word-count mismatch. The version constant is exposed
/// so hostile-input tests can craft current-version documents that reach
/// the plausibility guards instead of silently decaying into
/// version-mismatch tests on the next bump.
inline constexpr int kGoldenTraceCodecVersion = 3;
std::string encodeGoldenTrace(const GoldenTrace& trace);
GoldenTrace decodeGoldenTrace(std::string_view data);

}  // namespace xlv::analysis
