#include "analysis/mutation_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "campaign/executor.h"
#include "util/artifact_store.h"
#include "util/timer.h"

namespace xlv::analysis {

using abstraction::SV;
using abstraction::TlmIpModel;
using abstraction::TlmModelConfig;
using insertion::InsertedSensor;
using insertion::SensorKind;
using mutation::InjectedDesign;
using mutation::MutantKind;

bool referenceSimMode() noexcept {
  const char* v = std::getenv("XLV_REFERENCE_SIM");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

const char* simBackendName(SimBackend b) noexcept {
  switch (b) {
    case SimBackend::Interpreter:
      return "interpreter";
    case SimBackend::Native:
      return "native";
    case SimBackend::Auto:
      break;
  }
  return "auto";
}

SimBackend simBackendFromName(std::string_view name) {
  if (name == "auto") return SimBackend::Auto;
  if (name == "interpreter") return SimBackend::Interpreter;
  if (name == "native") return SimBackend::Native;
  throw std::invalid_argument("unknown simulation backend '" + std::string(name) +
                              "' (expected auto, interpreter or native)");
}

SimBackend resolveSimBackend(SimBackend requested) noexcept {
  if (requested != SimBackend::Auto) return requested;
  if (const char* v = std::getenv("XLV_BACKEND"); v != nullptr) {
    const std::string_view name(v);
    if (name == "native") return SimBackend::Native;
    if (name == "interpreter") return SimBackend::Interpreter;
  }
  return SimBackend::Interpreter;
}

int resolveBatchSize(int requested) noexcept {
  if (requested >= 1) return requested;
  if (const char* v = std::getenv("XLV_BATCH"); v != nullptr) {
    return std::max(1, std::atoi(v));
  }
  return 1;
}

namespace {

/// One campaign run's simulation session, on whichever engine the campaign
/// resolved to: a private TlmIpModel when `lib` is null, a dlopen'd native
/// session otherwise. The two are bit-identical (the conformance suite pins
/// it), so everything above this wrapper is engine-agnostic. State moves
/// between engines in the shared snapshot word layout
/// (abstraction/emit_native.h).
template <class P>
class Session {
 public:
  Session(const abstraction::TlmModelLayoutPtr& layout,
          const abstraction::NativeLibraryPtr& lib)
      : layout_(layout) {
    if (lib != nullptr) {
      native_ = std::make_unique<abstraction::NativeSession>(lib);
    } else {
      interp_ = std::make_unique<TlmIpModel<P>>(layout);
    }
  }

  const ir::Design& design() const noexcept { return layout_->design; }
  void activateMutant(int id) {
    native_ ? native_->activateMutant(id) : interp_->activateMutant(id);
  }
  void setInputUint(ir::SymbolId sym, std::uint64_t v) {
    native_ ? native_->setInputUint(sym, v) : interp_->setInputUint(sym, v);
  }
  void scheduler() { native_ ? native_->scheduler() : interp_->scheduler(); }
  std::uint64_t valueUint(ir::SymbolId sym) const {
    return native_ ? native_->valueUint(sym) : interp_->valueUint(sym);
  }
  SV rawValue(ir::SymbolId sym) const {
    return native_ ? native_->rawValue(sym) : interp_->rawValue(sym);
  }
  /// Append the session state in the shared word layout.
  void saveWords(std::vector<std::uint64_t>& out) const {
    if (native_ != nullptr) {
      native_->saveWords(out);
    } else {
      abstraction::snapshotToWords(*layout_, interp_->snapshot(), out);
    }
  }
  void loadWords(const std::vector<std::uint64_t>& words) {
    if (native_ != nullptr) {
      native_->loadWords(words);
    } else {
      interp_->restore(abstraction::wordsToSnapshot(*layout_, words));
    }
  }

 private:
  abstraction::TlmModelLayoutPtr layout_;
  std::unique_ptr<TlmIpModel<P>> interp_;
  std::unique_ptr<abstraction::NativeSession> native_;
};

/// De-stringed testbench driver: resolves each driven port name to its
/// SymbolId once per run (first use) and pushes values through the
/// boxing-free setInputUint. One name lookup per (run, port) instead of one
/// per (cycle, port) — the hot-loop de-stringing of the campaign rewrite.
/// M is any model with design() and setInputUint (TlmIpModel or Session).
template <class M>
class PortBinder {
 public:
  explicit PortBinder(M& model) : model_(&model) {}

  void operator()(const std::string& name, std::uint64_t v) {
    auto it = ids_.find(name);
    if (it == ids_.end()) {
      const ir::SymbolId sym = model_->design().findSymbol(name);
      if (sym == ir::kNoSymbol) {
        throw std::invalid_argument("TlmIpModel: no symbol named '" + name + "'");
      }
      it = ids_.emplace(name, sym).first;
    }
    model_->setInputUint(it->second, v);
  }

  PortSetter setter() {
    return [this](const std::string& name, std::uint64_t v) { (*this)(name, v); };
  }

 private:
  M* model_;
  std::unordered_map<std::string, ir::SymbolId> ids_;
};

/// Stimulus sink for batched co-simulation: the shared driver runs ONCE per
/// cycle into this recorder, and the captured (symbol, value) row is then
/// replayed into every live batch member — K mutants, one driver pass.
class DriveRecorder {
 public:
  explicit DriveRecorder(const ir::Design& design) : design_(&design) {}

  void clear() { row_.clear(); }
  const std::vector<std::pair<ir::SymbolId, std::uint64_t>>& row() const noexcept {
    return row_;
  }

  PortSetter setter() {
    return [this](const std::string& name, std::uint64_t v) {
      auto it = ids_.find(name);
      if (it == ids_.end()) {
        const ir::SymbolId sym = design_->findSymbol(name);
        if (sym == ir::kNoSymbol) {
          throw std::invalid_argument("TlmIpModel: no symbol named '" + name + "'");
        }
        it = ids_.emplace(name, sym).first;
      }
      row_.emplace_back(it->second, v);
    };
  }

 private:
  const ir::Design* design_;
  std::unordered_map<std::string, ir::SymbolId> ids_;
  std::vector<std::pair<ir::SymbolId, std::uint64_t>> row_;
};

/// Clamp the requested mutant subrange (AnalysisConfig::mutantBegin/End)
/// to the injected set; the default 0/0 selects every mutant. The ONE
/// range rule shared by the task scheduler and the checkpoint recorder —
/// a desync would silently mis-size the recording run.
std::pair<std::size_t, std::size_t> clampMutantRange(const AnalysisConfig& cfg,
                                                     std::size_t total) {
  const std::size_t begin = std::min(cfg.mutantBegin, total);
  const std::size_t end =
      std::max(begin, cfg.mutantEnd == 0 ? total : std::min(cfg.mutantEnd, total));
  return {begin, end};
}

/// Stimulus sink for driver replay: a stateful testbench driver
/// (Testbench::makeDriver) must be stepped through the fast-forwarded
/// prefix so its internal FSM/PRNG state matches the restored model state,
/// but the driven values are already baked into the checkpoint — discard
/// them. (Drivers are write-only: they cannot observe the model, so a null
/// sink replays their state trajectory exactly.)
const PortSetter& nullPortSetter() {
  static const PortSetter sink = [](const std::string&, std::uint64_t) {};
  return sink;
}

}  // namespace

int AnalysisReport::countKilled() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.killed ? 1 : 0;
  return n;
}

int AnalysisReport::countRisen() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.errorRisen ? 1 : 0;
  return n;
}

int AnalysisReport::countDetected() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.detected ? 1 : 0;
  return n;
}

double AnalysisReport::killedPct() const noexcept {
  return results.empty() ? 0.0 : 100.0 * countKilled() / static_cast<double>(results.size());
}

double AnalysisReport::risenPct() const noexcept {
  return results.empty() ? 0.0 : 100.0 * countRisen() / static_cast<double>(results.size());
}

double AnalysisReport::correctedPct() const noexcept {
  int checked = 0, ok = 0;
  for (const auto& r : results) {
    if (r.correctionChecked) {
      ++checked;
      ok += r.corrected ? 1 : 0;
    }
  }
  if (checked == 0) return -1.0;
  return 100.0 * ok / static_cast<double>(checked);
}

template <class P>
GoldenTrace recordGoldenTrace(const ir::Design& golden,
                              const std::vector<InsertedSensor>& sensors, const Testbench& tb,
                              const AnalysisConfig& cfg,
                              abstraction::NativeUseStats* nativeStats) {
  // The recording runs on the campaign's resolved backend too — on the
  // native path the golden replay would otherwise dominate the remaining
  // interpreter time (Amdahl), and a fallback here is safe because the
  // engines are bit-identical.
  const auto layout =
      abstraction::buildTlmModelLayout(golden, TlmModelConfig{cfg.hfRatio, false});
  abstraction::NativeLibraryPtr lib;
  if (resolveSimBackend(cfg.backend) == SimBackend::Native) {
    lib = abstraction::getNativeLibrary(*layout, std::is_same_v<P, hdt::FourState>,
                                        nativeStats);
  }
  Session<P> model(layout, lib);
  const std::size_t n = sensors.size();
  std::vector<ir::SymbolId> endpointSyms, eSyms(n, ir::kNoSymbol), mvSyms(n, ir::kNoSymbol),
      okSyms(n, ir::kNoSymbol);
  endpointSyms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const InsertedSensor& s = sensors[i];
    endpointSyms.push_back(golden.findSymbol(s.endpointName));
    if (!s.errorSignal.empty()) eSyms[i] = golden.findSymbol(s.errorSignal);
    if (!s.measValSignal.empty()) mvSyms[i] = golden.findSymbol(s.measValSignal);
    if (!s.outOkSignal.empty()) okSyms[i] = golden.findSymbol(s.outOkSignal);
  }

  GoldenTrace trace;
  trace.outputs.reserve(tb.cycles);
  trace.endpoints.reserve(tb.cycles);
  // "No activity yet" and "quiet for the whole run" share the tb.cycles
  // sentinel: a sensor that never fires simply keeps it. A zero-cycle
  // trace has no endpoint columns at all — the codec derives the metadata
  // width from the (empty) endpoint rows, and recorder and encoder must
  // agree.
  trace.firstActivity.assign(tb.cycles == 0 ? 0 : n, tb.cycles);
  // Endpoint state at the previous cycle boundary, full SV planes (the
  // initial values before cycle 0 seed the comparison).
  std::vector<SV> prev(n);
  for (std::size_t i = 0; i < n; ++i) prev[i] = model.rawValue(endpointSyms[i]);

  const ir::SymbolId recoverySym = golden.findSymbol(cfg.recoveryPort);
  const DriveFn drive = tb.driverForTask(cfg.stimulusId);
  PortBinder<Session<P>> ports(model);
  const PortSetter setter = ports.setter();
  for (std::uint64_t c = 0; c < tb.cycles; ++c) {
    drive(c, setter);
    if (recoverySym != ir::kNoSymbol) model.setInputUint(recoverySym, 1);
    model.scheduler();
    std::vector<std::uint64_t> outs;
    outs.reserve(golden.outputs.size());
    for (ir::SymbolId o : golden.outputs) outs.push_back(model.valueUint(o));
    trace.outputs.push_back(std::move(outs));
    std::vector<std::uint64_t> eps;
    eps.reserve(endpointSyms.size());
    for (ir::SymbolId e : endpointSyms) eps.push_back(model.valueUint(e));
    trace.endpoints.push_back(std::move(eps));
    // First-activity tracking: the first value-plane change of the endpoint
    // register OR the first cycle the golden run itself would trip one of
    // the mutant loop's observation predicates. Until that cycle a mutant
    // at this endpoint is provably transparent (no value-changing commit to
    // re-time) and provably unobserved (state-identical to this run, whose
    // observations are all quiet), so the fast path may skip straight to it.
    for (std::size_t i = 0; i < n; ++i) {
      if (trace.firstActivity[i] != tb.cycles) continue;
      const SV cur = model.rawValue(endpointSyms[i]);
      const bool toggled = cur.val != prev[i].val || cur.unk != prev[i].unk;
      const bool observed =
          (eSyms[i] != ir::kNoSymbol && model.valueUint(eSyms[i]) == 1) ||
          (mvSyms[i] != ir::kNoSymbol && model.valueUint(mvSyms[i]) != 0) ||
          (okSyms[i] != ir::kNoSymbol && model.valueUint(okSyms[i]) == 0);
      if (toggled || observed) trace.firstActivity[i] = c;
    }
  }
  return trace;
}

namespace {

template <class P>
constexpr const char* policyTag() {
  return std::is_same_v<P, hdt::TwoState> ? "2s" : "4s";
}

}  // namespace

template <class P>
MutationCampaignContext prepareMutationCampaign(const ir::Design& golden,
                                                const InjectedDesign& injected,
                                                const std::vector<InsertedSensor>& sensors,
                                                const Testbench& tb,
                                                const AnalysisConfig& cfg) {
  MutationCampaignContext ctx;
  ctx.sensors = sensors;
  ctx.tb = tb;
  ctx.cfg = cfg;
  if (cfg.useGoldenCache || cfg.useMutantCache) {
    ctx.goldenKey = goldenTraceKey(golden, sensors, tb, cfg, policyTag<P>());
  }
  if (cfg.useGoldenCache) {
    // Time the recording inside the build lambda: only the task that
    // actually records is charged goldenSeconds. A waiter blocked on an
    // in-flight recording reports ~0 — its wait shows up in wall time, not
    // in the "golden work spent" ledger (which must not inflate with
    // thread count). A disk load is likewise not a recording: it charges 0
    // and counts as served-from-cache.
    double recordSeconds = 0.0;
    bool memHit = false;
    abstraction::NativeUseStats goldNative;
    ctx.gold = util::getOrBuildWithStore<GoldenTrace>(
        goldenTraceCache(), util::processArtifactStore(), "golden", ctx.goldenKey,
        [&] {
          util::Timer t;
          GoldenTrace trace = recordGoldenTrace<P>(golden, sensors, tb, cfg, &goldNative);
          recordSeconds = t.seconds();
          return trace;
        },
        encodeGoldenTrace, decodeGoldenTrace, &memHit, &ctx.goldenFromDisk);
    ctx.goldenFromCache = memHit || ctx.goldenFromDisk;
    ctx.goldenSeconds = recordSeconds;
    ctx.nativeCompiles += goldNative.compiles;
    ctx.nativeCacheHits += goldNative.cacheHits;
  } else {
    util::Timer t;
    abstraction::NativeUseStats goldNative;
    ctx.gold = std::make_shared<const GoldenTrace>(
        recordGoldenTrace<P>(golden, sensors, tb, cfg, &goldNative));
    ctx.goldenSeconds = t.seconds();
    ctx.nativeCompiles += goldNative.compiles;
    ctx.nativeCacheHits += goldNative.cacheHits;
  }
  // Compile + levelize the injected design once; every task clones a cheap
  // private session from this shared layout.
  ctx.layout = abstraction::buildTlmModelLayout(
      injected.design, TlmModelConfig{cfg.hfRatio, false}, injected.mutants);
  ctx.recoverySym = ctx.layout->design.findSymbol(cfg.recoveryPort);
  ctx.hasRecovery = ctx.recoverySym != ir::kNoSymbol;
  ctx.referenceSim = referenceSimMode();
  // Backend/batch resolution happens exactly once per campaign: every run
  // (checkpoint recording included) shares one dlopen'd library, and a
  // failed native build degrades the whole campaign to the interpreter.
  if (resolveSimBackend(cfg.backend) == SimBackend::Native) {
    abstraction::NativeUseStats injNative;
    ctx.nativeLib = abstraction::getNativeLibrary(
        *ctx.layout, std::is_same_v<P, hdt::FourState>, &injNative);
    ctx.nativeCompiles += injNative.compiles;
    ctx.nativeCacheHits += injNative.cacheHits;
  }
  ctx.batch = resolveBatchSize(cfg.batch);
  // ~16 checkpoints across the run: fine enough that a fast-forward lands
  // close to the divergence cycle, coarse enough that the recording run's
  // snapshot cost stays a fraction of one mutant simulation.
  ctx.checkpointInterval = std::max<std::uint64_t>(1, tb.cycles / 16);
  ctx.checkpoints = std::make_shared<CampaignCheckpoints>();
  return ctx;
}

namespace {

/// Record the campaign checkpoints exactly once (any number of tasks may
/// race here; losers block on the winner): one clean no-mutant run over the
/// injected layout — by mutant transparency, the golden trajectory — with a
/// state snapshot at every interval boundary.
template <class P>
const CampaignCheckpoints& ensureCheckpoints(const MutationCampaignContext& ctx) {
  CampaignCheckpoints& cp = *ctx.checkpoints;
  std::call_once(cp.once, [&] {
    const std::uint64_t k = ctx.checkpointInterval;
    // The deepest restorable point any mutant can use is the last interval
    // boundary at or before the largest fast-forward limit of THIS
    // analysis's mutant subrange (a shard fragment must not pay for the
    // prefixes of mutants other fragments own; a limit >= tb.cycles is a
    // full skip that needs no checkpoint at all) — the recording run stops
    // there instead of replaying the whole bench. Computed BEFORE any
    // simulation so the cache key below is known up front.
    const auto [begin, end] = clampMutantRange(ctx.cfg, ctx.layout->mutants.size());
    std::uint64_t deepest = 0;
    for (std::size_t m = begin; m < end; ++m) {
      const std::string& endpoint = ctx.layout->mutants[m].spec.targetSignal;
      for (std::size_t i = 0; i < ctx.sensors.size(); ++i) {
        if (ctx.sensors[i].endpointName != endpoint) continue;
        if (i < ctx.gold->firstActivity.size() &&
            ctx.gold->firstActivity[i] < ctx.tb.cycles) {
          deepest = std::max(deepest, ctx.gold->firstActivity[i]);
        }
        break;
      }
    }
    const std::uint64_t last = (deepest / k) * k;

    const auto record = [&]() -> CheckpointRecording {
      CheckpointRecording rec;
      rec.interval = k;
      rec.recordedCycles = last;
      Session<P> model(ctx.layout, ctx.nativeLib);
      const DriveFn drive = ctx.tb.driverForTask(ctx.cfg.stimulusId);
      PortBinder<Session<P>> ports(model);
      const PortSetter setter = ports.setter();
      for (std::uint64_t c = 0; c < last; ++c) {
        if (c != 0 && c % k == 0) {
          rec.cycles.push_back(c);
          model.saveWords(rec.snapWords.emplace_back());
        }
        drive(c, setter);
        if (ctx.hasRecovery) model.setInputUint(ctx.recoverySym, 1);
        model.scheduler();
      }
      if (last != 0) {
        rec.cycles.push_back(last);
        model.saveWords(rec.snapWords.emplace_back());
      }
      return rec;
    };

    if (!ctx.goldenKey.empty()) {
      // Cross-campaign sharing (warm re-runs, sweep variants over the same
      // injected design, shard processes that agree on the depth): keyed by
      // golden identity x injected layout fingerprint x interval x depth,
      // spilled through the artifact store like the traces it derives from.
      bool memHit = false, diskHit = false;
      cp.rec = util::getOrBuildWithStore<CheckpointRecording>(
          checkpointCache(), util::processArtifactStore(), "ckpt",
          checkpointKey(ctx.goldenKey,
                        designFingerprint(ctx.layout->design, ctx.cfg.hfRatio), k, last),
          record, encodeCheckpointRecording, decodeCheckpointRecording, &memHit, &diskHit);
      cp.fromCache = memHit || diskHit;
    } else {
      cp.rec = std::make_shared<const CheckpointRecording>(record());
    }
    cp.recorded.store(true, std::memory_order_release);
  });
  return cp;
}

}  // namespace

namespace {

/// One member of a batched co-simulation: the per-mutant state the solo
/// path kept in locals, lifted so K members can march lock-step.
template <class P>
struct BatchMember {
  int mutantIndex = -1;
  int sensorIdx = -1;
  ir::SymbolId eSym = ir::kNoSymbol, qSym = ir::kNoSymbol, mvSym = ir::kNoSymbol,
               okSym = ir::kNoSymbol;
  bool isDelta = false;
  std::uint64_t deltaCap = 0;
  std::uint64_t limit = 0;
  std::uint64_t startCycle = 0;
  bool correctionViolated = false;
  bool correctionObserved = false;
  bool retired = false;
  std::uint64_t executed = 0;
  std::unique_ptr<Session<P>> model;
};

/// Simulate the mutants `indices` together: K private sessions (one per
/// mutant) march lock-step against ONE shared testbench replay — the driver
/// runs once per cycle into a recorder, and the captured row fans out to
/// every live member. Per-member verdicts, fast-forward limits, checkpoint
/// restores and saturation exits are evaluated independently, exactly as in
/// the solo path, so results AND per-member cycle ledgers are bit-identical
/// at any batch size (the conformance suite pins K in {1,4,64} against
/// K=1). Returns the number of live members when two or more actually
/// co-simulated (the report's batchedMutants ledger), 0 otherwise.
template <class P>
int simulateMutantGroup(const MutationCampaignContext& ctx, const std::vector<int>& indices,
                        std::vector<MutantResult>& results,
                        std::vector<MutantSimStats>& stats) {
  const ir::Design& design = ctx.layout->design;
  const std::uint64_t cycles = ctx.tb.cycles;
  const GoldenTrace& gold = *ctx.gold;
  const bool fast = !ctx.referenceSim;

  results.assign(indices.size(), MutantResult{});
  stats.assign(indices.size(), MutantSimStats{});

  std::vector<BatchMember<P>> live;
  live.reserve(indices.size());
  for (std::size_t slot = 0; slot < indices.size(); ++slot) {
    const int mutantIndex = indices[slot];
    const auto& mutant = ctx.layout->mutants.at(static_cast<std::size_t>(mutantIndex));
    MutantResult& res = results[slot];
    res.id = mutant.id;
    res.endpoint = mutant.spec.targetSignal;
    res.kind = mutant.spec.kind;
    res.deltaTicks = mutant.spec.deltaTicks;

    BatchMember<P> m;
    m.mutantIndex = mutantIndex;
    const InsertedSensor* sensor = nullptr;
    for (std::size_t i = 0; i < ctx.sensors.size(); ++i) {
      if (ctx.sensors[i].endpointName == res.endpoint) {
        sensor = &ctx.sensors[i];
        m.sensorIdx = static_cast<int>(i);
        break;
      }
    }
    if (sensor != nullptr) {
      if (!sensor->errorSignal.empty()) m.eSym = design.findSymbol(sensor->errorSignal);
      if (!sensor->qSignal.empty()) m.qSym = design.findSymbol(sensor->qSignal);
      if (!sensor->measValSignal.empty()) m.mvSym = design.findSymbol(sensor->measValSignal);
      if (!sensor->outOkSignal.empty()) m.okSym = design.findSymbol(sensor->outOkSignal);
    }

    // Fast-forward limit: the cycle before which this mutant is provably
    // transparent AND provably unobserved (GoldenTrace::firstActivity).
    // Zero (no skip) in reference mode, for unsensored targets and for
    // traces predating the metadata (size guard: a trace without
    // per-sensor first-activity data cannot justify skipping anything).
    if (fast && m.sensorIdx >= 0 && gold.firstActivity.size() == ctx.sensors.size()) {
      m.limit = std::min<std::uint64_t>(
          gold.firstActivity[static_cast<std::size_t>(m.sensorIdx)], cycles);
    }
    if (fast && m.limit >= cycles) {
      // Quiet for the whole run: the mutant never re-times a value-changing
      // commit and the golden run never trips an observation predicate, so
      // the co-simulation is the golden run — nothing is killed, detected
      // or measured. The default-initialized result IS the full-replay
      // result; the member never joins the march.
      stats[slot].cyclesSkipped += cycles;
      continue;
    }
    m.isDelta = mutant.spec.kind == MutantKind::DeltaDelay;
    m.deltaCap = static_cast<std::uint64_t>(std::max(0, res.deltaTicks));
    live.push_back(std::move(m));
  }
  const int batched = live.size() >= 2 ? static_cast<int>(live.size()) : 0;

  // Slot map back into results/stats (full-skips left gaps).
  std::unordered_map<int, std::size_t> slotOf;
  for (std::size_t slot = 0; slot < indices.size(); ++slot) slotOf[indices[slot]] = slot;

  // Checkpoint fast-forward, member by member: restore the deepest campaign
  // checkpoint at or before each member's limit instead of re-simulating
  // its quiet prefix from reset.
  const CheckpointRecording* rec = nullptr;
  if (fast) {
    for (const auto& m : live) {
      if (m.limit >= ctx.checkpointInterval) {
        rec = ensureCheckpoints<P>(ctx).rec.get();
        break;
      }
    }
  }
  for (auto& m : live) {
    m.model = std::make_unique<Session<P>>(ctx.layout, ctx.nativeLib);
    m.model->activateMutant(ctx.layout->mutants[static_cast<std::size_t>(m.mutantIndex)].id);
    if (rec != nullptr && m.limit >= ctx.checkpointInterval) {
      for (std::size_t i = rec->cycles.size(); i-- > 0;) {
        if (rec->cycles[i] <= m.limit) {
          m.model->loadWords(rec->snapWords[i]);
          m.startCycle = rec->cycles[i];
          break;
        }
      }
    }
  }

  if (live.empty()) return 0;

  // ONE fresh driver for the whole group, same stimulus id as the golden
  // run: every solo task would construct an identical driver, so sharing
  // the replay preserves the stimulus bit-for-bit. The march starts at the
  // earliest member's start cycle; members with deeper checkpoints join
  // when the cycle counter reaches them (their restored state already
  // contains the earlier drives). A stateful driver is stepped through the
  // pre-march prefix against a null sink so its session state matches.
  std::uint64_t minStart = cycles;
  for (const auto& m : live) minStart = std::min(minStart, m.startCycle);
  const DriveFn drive = ctx.tb.driverForTask(ctx.cfg.stimulusId);
  if (minStart > 0 && ctx.tb.makeDriver) {
    for (std::uint64_t c = 0; c < minStart; ++c) drive(c, nullPortSetter());
  }

  // Verdict saturation: true once no remaining cycle can change any field
  // of the member's result, at which point it retires from the march.
  //   * killed, detected, errorRisen are sticky — they only go false->true;
  //   * the Razor correction verdict is pinned once a violation was
  //     observed (corrected is then false forever); while the correction
  //     holds, any future error cycle could still violate it, so the run
  //     must continue;
  //   * a DeltaDelay mutant's MEAS_VAL is structurally capped at its own
  //     deltaTicks: the target's only driver commits exactly at HF period
  //     deltaTicks, so every toggle window measures that count (and quiet
  //     windows measure 0) — once the max is reached it cannot rise, and
  //     the per-toggle OUT_OK comparison against the constant LUT threshold
  //     repeats identically, so errorRisen is final once a toggle was
  //     detected. (This reasoning assumes two-valued operation of the
  //     monitored path, which holds for initialized registers under known
  //     stimulus — the conformance suite pins fast == reference.)
  const auto saturated = [](const BatchMember<P>& m, const MutantResult& res) noexcept {
    if (!res.killed) return false;
    if (m.eSym != ir::kNoSymbol && !(res.detected && res.errorRisen)) return false;
    if (m.qSym != ir::kNoSymbol && !(m.correctionObserved && m.correctionViolated)) {
      return false;
    }
    if (m.mvSym != ir::kNoSymbol &&
        !(m.isDelta && m.deltaCap > 0 && res.measuredDelay >= m.deltaCap)) {
      return false;
    }
    if (m.okSym != ir::kNoSymbol && !res.errorRisen && !(m.isDelta && res.detected)) {
      return false;
    }
    return true;
  };

  DriveRecorder recorder(design);
  const PortSetter recSetter = recorder.setter();
  const std::vector<ir::SymbolId>& outSyms = design.outputs;
  std::size_t active = live.size();
  for (std::uint64_t c = minStart; c < cycles && active > 0; ++c) {
    recorder.clear();
    drive(c, recSetter);
    for (auto& m : live) {
      if (m.retired || c < m.startCycle) continue;
      MutantResult& res = results[slotOf[m.mutantIndex]];
      for (const auto& [sym, v] : recorder.row()) m.model->setInputUint(sym, v);
      if (ctx.hasRecovery) m.model->setInputUint(ctx.recoverySym, 1);
      m.model->scheduler();
      ++m.executed;

      // Kill check against the golden output row; a killed mutant stays
      // killed, so the scan is skipped once it has fired.
      if (!res.killed) {
        const std::vector<std::uint64_t>& goldRow = gold.outputs[c];
        for (std::size_t o = 0; o < outSyms.size(); ++o) {
          if (m.model->valueUint(outSyms[o]) != goldRow[o]) {
            res.killed = true;
            break;
          }
        }
      }
      // Sensor observation at the mutated endpoint.
      if (m.eSym != ir::kNoSymbol && m.model->valueUint(m.eSym) == 1) {
        res.detected = true;
        res.errorRisen = true;
        // Correction check: q presents the golden endpoint value of the
        // previous cycle.
        if (m.qSym != ir::kNoSymbol && c >= 1 && m.sensorIdx >= 0) {
          m.correctionObserved = true;
          if (m.model->valueUint(m.qSym) !=
              gold.endpoints[c - 1][static_cast<std::size_t>(m.sensorIdx)]) {
            m.correctionViolated = true;
          }
        }
      }
      if (m.mvSym != ir::kNoSymbol) {
        const std::uint64_t mv = m.model->valueUint(m.mvSym);
        if (mv != 0) {
          res.detected = true;
          res.measuredDelay = std::max(res.measuredDelay, mv);
        }
      }
      if (m.okSym != ir::kNoSymbol && m.model->valueUint(m.okSym) == 0) {
        res.errorRisen = true;
      }

      if (fast && saturated(m, res)) {
        m.retired = true;
        --active;
      }
    }
  }

  for (const auto& m : live) {
    const std::size_t slot = slotOf[m.mutantIndex];
    stats[slot].cyclesSimulated += m.executed;
    stats[slot].cyclesSkipped += cycles - m.executed;
    if (m.qSym != ir::kNoSymbol) {
      results[slot].correctionChecked = m.correctionObserved;
      results[slot].corrected = m.correctionObserved && !m.correctionViolated;
    }
  }
  return batched;
}

}  // namespace

template <class P>
MutantResult simulateMutant(const MutationCampaignContext& ctx, int mutantIndex,
                            MutantSimStats* stats) {
  std::vector<MutantResult> results;
  std::vector<MutantSimStats> groupStats;
  simulateMutantGroup<P>(ctx, {mutantIndex}, results, groupStats);
  if (stats != nullptr) {
    stats->cyclesSimulated += groupStats[0].cyclesSimulated;
    stats->cyclesSkipped += groupStats[0].cyclesSkipped;
  }
  return results[0];
}

template <class P>
AnalysisReport analyzeMutations(const ir::Design& golden, const InjectedDesign& injected,
                                const std::vector<InsertedSensor>& sensors, const Testbench& tb,
                                const AnalysisConfig& cfg) {
  util::Timer wall;
  AnalysisReport report;
  report.cyclesPerRun = tb.cycles;

  util::Timer prepareTimer;
  const MutationCampaignContext ctx =
      prepareMutationCampaign<P>(golden, injected, sensors, tb, cfg);
  const double prepareSeconds = prepareTimer.seconds();
  report.goldenSeconds = ctx.goldenSeconds;
  report.goldenFromCache = ctx.goldenFromCache;
  report.goldenFromDisk = ctx.goldenFromDisk;

  report.nativeCompiles = ctx.nativeCompiles;
  report.nativeCacheHits = ctx.nativeCacheHits;

  const auto [begin, end] = clampMutantRange(cfg, ctx.layout->mutants.size());
  const std::size_t n = end - begin;
  report.results.resize(n);
  std::vector<MutantSimStats> simStats(n);
  std::vector<char> servedFromCache(n, 0);

  // One parallel task per batch of ctx.batch consecutive mutants; each task
  // co-simulates its members lock-step against one shared stimulus replay
  // (simulateMutantGroup). batch == 1 degenerates to the classic
  // one-task-per-mutant schedule.
  const std::size_t batch = static_cast<std::size_t>(ctx.batch);
  const std::size_t numTasks = n == 0 ? 0 : (n + batch - 1) / batch;
  std::vector<double> taskSeconds(numTasks, 0.0);
  std::vector<int> batchedPerTask(numTasks, 0);

  campaign::Executor executor(campaign::ExecutorConfig{cfg.threads, 0});
  report.threadsUsed = executor.effectiveThreads(numTasks);
  executor.run(numTasks, [&](std::size_t t) {
    util::Timer timer;
    const std::size_t lo = t * batch;
    const std::size_t hi = std::min(n, lo + batch);
    if (cfg.useMutantCache) {
      // A mutant's result is independent of which other (inactive) mutants
      // ride along in the injected design (mutation/adam.h), so it is keyed
      // by (golden key, spec) alone and shared across mutant-set variants,
      // re-runs and — through the artifact store — processes. Only the id
      // is variant-local: the cached value is id-normalized and fixed up
      // here against this run's injected set.
      //
      // Cache x batch: the first member whose build lambda actually runs
      // batch-simulates every group member not yet produced locally into
      // freshResults; later misses in the same group serve from that map.
      // A member whose key hits (memory or disk) never charges its
      // simulation stats — any speculative fresh result for it is simply
      // dropped, keeping the ledger identical to the solo schedule.
      std::unordered_map<int, MutantResult> freshResults;
      std::unordered_map<int, MutantSimStats> freshStats;
      for (std::size_t i = lo; i < hi; ++i) {
        const int mutantIndex = static_cast<int>(begin + i);
        const auto& mutant = ctx.layout->mutants.at(static_cast<std::size_t>(mutantIndex));
        bool memHit = false, diskHit = false;
        const std::shared_ptr<const MutantResult> cached =
            util::getOrBuildWithStore<MutantResult>(
                mutantResultCache(), util::processArtifactStore(), "mutant",
                mutantResultKey(ctx.goldenKey, mutant.spec),
                [&] {
                  if (freshResults.find(mutantIndex) == freshResults.end()) {
                    std::vector<int> pending;
                    for (std::size_t j = i; j < hi; ++j) {
                      const int idx = static_cast<int>(begin + j);
                      if (freshResults.find(idx) == freshResults.end()) {
                        pending.push_back(idx);
                      }
                    }
                    std::vector<MutantResult> rs;
                    std::vector<MutantSimStats> ss;
                    batchedPerTask[t] += simulateMutantGroup<P>(ctx, pending, rs, ss);
                    for (std::size_t p = 0; p < pending.size(); ++p) {
                      freshResults[pending[p]] = rs[p];
                      freshStats[pending[p]] = ss[p];
                    }
                  }
                  MutantResult fresh = freshResults[mutantIndex];
                  fresh.id = -1;
                  return fresh;
                },
                encodeMutantResultArtifact, decodeMutantResultArtifact, &memHit, &diskHit);
        MutantResult res = *cached;
        res.id = mutant.id;
        report.results[i] = res;
        servedFromCache[i] = (memHit || diskHit) ? 1 : 0;
        if (!(memHit || diskHit)) simStats[i] = freshStats[mutantIndex];
      }
    } else {
      std::vector<int> indices;
      indices.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) indices.push_back(static_cast<int>(begin + i));
      std::vector<MutantResult> rs;
      std::vector<MutantSimStats> ss;
      batchedPerTask[t] = simulateMutantGroup<P>(ctx, indices, rs, ss);
      for (std::size_t i = lo; i < hi; ++i) {
        report.results[i] = rs[i - lo];
        simStats[i] = ss[i - lo];
      }
    }
    taskSeconds[t] = timer.seconds();
  });
  for (char hit : servedFromCache) report.mutantCacheHits += hit ? 1 : 0;
  for (int b : batchedPerTask) report.batchedMutants += b;
  // Cycle ledger: per-mutant executed/skipped sums (deterministic — slots
  // are summed in task order) plus the lazy checkpoint recording run, which
  // ran at most once, only if some task fast-forwarded, and is charged only
  // when THIS campaign performed the recording (a cache hit did no work).
  for (const MutantSimStats& s : simStats) {
    report.cyclesSimulated += s.cyclesSimulated;
    report.cyclesSkipped += s.cyclesSkipped;
  }
  if (ctx.checkpoints != nullptr &&
      ctx.checkpoints->recorded.load(std::memory_order_acquire) &&
      !ctx.checkpoints->fromCache && ctx.checkpoints->rec != nullptr) {
    report.cyclesSimulated += ctx.checkpoints->rec->recordedCycles;
  }

  // simSeconds aggregates the work (sum of per-run times); wallSeconds is
  // what elapsed — they coincide on one thread. A golden-cache hit shrinks
  // the prepare component (layout build remains, recording is skipped).
  report.simSeconds = prepareSeconds;
  for (double s : taskSeconds) report.simSeconds += s;
  report.wallSeconds = wall.seconds();
  return report;
}

template GoldenTrace recordGoldenTrace<hdt::FourState>(const ir::Design&,
                                                       const std::vector<InsertedSensor>&,
                                                       const Testbench&, const AnalysisConfig&,
                                                       abstraction::NativeUseStats*);
template GoldenTrace recordGoldenTrace<hdt::TwoState>(const ir::Design&,
                                                      const std::vector<InsertedSensor>&,
                                                      const Testbench&, const AnalysisConfig&,
                                                      abstraction::NativeUseStats*);
template MutationCampaignContext prepareMutationCampaign<hdt::FourState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template MutationCampaignContext prepareMutationCampaign<hdt::TwoState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template MutantResult simulateMutant<hdt::FourState>(const MutationCampaignContext&, int,
                                                     MutantSimStats*);
template MutantResult simulateMutant<hdt::TwoState>(const MutationCampaignContext&, int,
                                                    MutantSimStats*);
template AnalysisReport analyzeMutations<hdt::FourState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template AnalysisReport analyzeMutations<hdt::TwoState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);

std::vector<mutation::MutantSpec> razorMutantSet(const std::vector<InsertedSensor>& sensors) {
  std::vector<mutation::MutantSpec> specs;
  specs.reserve(sensors.size() * 2);
  for (const auto& s : sensors) {
    specs.push_back({s.endpointName, MutantKind::MinDelay, 0});
    specs.push_back({s.endpointName, MutantKind::MaxDelay, 0});
  }
  return specs;
}

std::vector<mutation::MutantSpec> counterMutantSet(const std::vector<InsertedSensor>& sensors,
                                                   double clockPeriodPs, int hfRatio) {
  (void)clockPeriodPs;
  std::vector<mutation::MutantSpec> specs;
  specs.reserve(sensors.size() * 3);
  if (sensors.empty()) return specs;

  // Severity model: each path's modeled lateness is proportional to its
  // arrival relative to the 75th percentile of the monitored arrivals
  // (capped at 1.25 so one deep outlier does not compress everyone else),
  // scaled by three variability factors — nominal, derated and worst-case.
  // The resulting delta ticks straddle the sensor's LUT threshold, so the
  // fraction of "errors risen" reflects the IP's own slack distribution,
  // as in Table 5.
  std::vector<double> arrivals;
  arrivals.reserve(sensors.size());
  for (const auto& s : sensors) arrivals.push_back(s.endpointArrivalPs);
  std::sort(arrivals.begin(), arrivals.end());
  const double p75 =
      std::max(1.0, arrivals[(arrivals.size() * 3) / 4 >= arrivals.size()
                                 ? arrivals.size() - 1
                                 : (arrivals.size() * 3) / 4]);

  const double factors[3] = {0.8, 1.2, 1.6};
  for (const auto& s : sensors) {
    const double severity = std::min(1.25, s.endpointArrivalPs / p75);
    for (double f : factors) {
      int tick = static_cast<int>(std::lround(hfRatio * severity * f));
      tick = std::clamp(tick, 1, hfRatio);
      specs.push_back({s.endpointName, MutantKind::DeltaDelay, tick});
    }
  }
  return specs;
}

}  // namespace xlv::analysis
