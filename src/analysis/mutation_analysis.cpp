#include "analysis/mutation_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "campaign/executor.h"
#include "util/artifact_store.h"
#include "util/timer.h"

namespace xlv::analysis {

using abstraction::SV;
using abstraction::TlmIpModel;
using abstraction::TlmModelConfig;
using insertion::InsertedSensor;
using insertion::SensorKind;
using mutation::InjectedDesign;
using mutation::MutantKind;

bool referenceSimMode() noexcept {
  const char* v = std::getenv("XLV_REFERENCE_SIM");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

namespace {

/// De-stringed testbench driver: resolves each driven port name to its
/// SymbolId once per run (first use) and pushes values through the
/// boxing-free setInputUint. One name lookup per (run, port) instead of one
/// per (cycle, port) — the hot-loop de-stringing of the campaign rewrite.
template <class P>
class PortBinder {
 public:
  explicit PortBinder(TlmIpModel<P>& model) : model_(&model) {}

  void operator()(const std::string& name, std::uint64_t v) {
    auto it = ids_.find(name);
    if (it == ids_.end()) {
      const ir::SymbolId sym = model_->design().findSymbol(name);
      if (sym == ir::kNoSymbol) {
        throw std::invalid_argument("TlmIpModel: no symbol named '" + name + "'");
      }
      it = ids_.emplace(name, sym).first;
    }
    model_->setInputUint(it->second, v);
  }

  PortSetter setter() {
    return [this](const std::string& name, std::uint64_t v) { (*this)(name, v); };
  }

 private:
  TlmIpModel<P>* model_;
  std::unordered_map<std::string, ir::SymbolId> ids_;
};

/// Clamp the requested mutant subrange (AnalysisConfig::mutantBegin/End)
/// to the injected set; the default 0/0 selects every mutant. The ONE
/// range rule shared by the task scheduler and the checkpoint recorder —
/// a desync would silently mis-size the recording run.
std::pair<std::size_t, std::size_t> clampMutantRange(const AnalysisConfig& cfg,
                                                     std::size_t total) {
  const std::size_t begin = std::min(cfg.mutantBegin, total);
  const std::size_t end =
      std::max(begin, cfg.mutantEnd == 0 ? total : std::min(cfg.mutantEnd, total));
  return {begin, end};
}

/// Stimulus sink for driver replay: a stateful testbench driver
/// (Testbench::makeDriver) must be stepped through the fast-forwarded
/// prefix so its internal FSM/PRNG state matches the restored model state,
/// but the driven values are already baked into the checkpoint — discard
/// them. (Drivers are write-only: they cannot observe the model, so a null
/// sink replays their state trajectory exactly.)
const PortSetter& nullPortSetter() {
  static const PortSetter sink = [](const std::string&, std::uint64_t) {};
  return sink;
}

}  // namespace

int AnalysisReport::countKilled() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.killed ? 1 : 0;
  return n;
}

int AnalysisReport::countRisen() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.errorRisen ? 1 : 0;
  return n;
}

int AnalysisReport::countDetected() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.detected ? 1 : 0;
  return n;
}

double AnalysisReport::killedPct() const noexcept {
  return results.empty() ? 0.0 : 100.0 * countKilled() / static_cast<double>(results.size());
}

double AnalysisReport::risenPct() const noexcept {
  return results.empty() ? 0.0 : 100.0 * countRisen() / static_cast<double>(results.size());
}

double AnalysisReport::correctedPct() const noexcept {
  int checked = 0, ok = 0;
  for (const auto& r : results) {
    if (r.correctionChecked) {
      ++checked;
      ok += r.corrected ? 1 : 0;
    }
  }
  if (checked == 0) return -1.0;
  return 100.0 * ok / static_cast<double>(checked);
}

template <class P>
GoldenTrace recordGoldenTrace(const ir::Design& golden,
                              const std::vector<InsertedSensor>& sensors, const Testbench& tb,
                              const AnalysisConfig& cfg) {
  TlmIpModel<P> model(golden, TlmModelConfig{cfg.hfRatio, false});
  const std::size_t n = sensors.size();
  std::vector<ir::SymbolId> endpointSyms, eSyms(n, ir::kNoSymbol), mvSyms(n, ir::kNoSymbol),
      okSyms(n, ir::kNoSymbol);
  endpointSyms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const InsertedSensor& s = sensors[i];
    endpointSyms.push_back(golden.findSymbol(s.endpointName));
    if (!s.errorSignal.empty()) eSyms[i] = golden.findSymbol(s.errorSignal);
    if (!s.measValSignal.empty()) mvSyms[i] = golden.findSymbol(s.measValSignal);
    if (!s.outOkSignal.empty()) okSyms[i] = golden.findSymbol(s.outOkSignal);
  }

  GoldenTrace trace;
  trace.outputs.reserve(tb.cycles);
  trace.endpoints.reserve(tb.cycles);
  // "No activity yet" and "quiet for the whole run" share the tb.cycles
  // sentinel: a sensor that never fires simply keeps it. A zero-cycle
  // trace has no endpoint columns at all — the codec derives the metadata
  // width from the (empty) endpoint rows, and recorder and encoder must
  // agree.
  trace.firstActivity.assign(tb.cycles == 0 ? 0 : n, tb.cycles);
  // Endpoint state at the previous cycle boundary, full SV planes (the
  // initial values before cycle 0 seed the comparison).
  std::vector<SV> prev(n);
  for (std::size_t i = 0; i < n; ++i) prev[i] = model.rawValue(endpointSyms[i]);

  const ir::SymbolId recoverySym = golden.findSymbol(cfg.recoveryPort);
  const DriveFn drive = tb.driverForTask(cfg.stimulusId);
  PortBinder<P> ports(model);
  const PortSetter setter = ports.setter();
  for (std::uint64_t c = 0; c < tb.cycles; ++c) {
    drive(c, setter);
    if (recoverySym != ir::kNoSymbol) model.setInputUint(recoverySym, 1);
    model.scheduler();
    std::vector<std::uint64_t> outs;
    outs.reserve(golden.outputs.size());
    for (ir::SymbolId o : golden.outputs) outs.push_back(model.valueUint(o));
    trace.outputs.push_back(std::move(outs));
    std::vector<std::uint64_t> eps;
    eps.reserve(endpointSyms.size());
    for (ir::SymbolId e : endpointSyms) eps.push_back(model.valueUint(e));
    trace.endpoints.push_back(std::move(eps));
    // First-activity tracking: the first value-plane change of the endpoint
    // register OR the first cycle the golden run itself would trip one of
    // the mutant loop's observation predicates. Until that cycle a mutant
    // at this endpoint is provably transparent (no value-changing commit to
    // re-time) and provably unobserved (state-identical to this run, whose
    // observations are all quiet), so the fast path may skip straight to it.
    for (std::size_t i = 0; i < n; ++i) {
      if (trace.firstActivity[i] != tb.cycles) continue;
      const SV cur = model.rawValue(endpointSyms[i]);
      const bool toggled = cur.val != prev[i].val || cur.unk != prev[i].unk;
      const bool observed =
          (eSyms[i] != ir::kNoSymbol && model.valueUint(eSyms[i]) == 1) ||
          (mvSyms[i] != ir::kNoSymbol && model.valueUint(mvSyms[i]) != 0) ||
          (okSyms[i] != ir::kNoSymbol && model.valueUint(okSyms[i]) == 0);
      if (toggled || observed) trace.firstActivity[i] = c;
    }
  }
  return trace;
}

namespace {

template <class P>
constexpr const char* policyTag() {
  return std::is_same_v<P, hdt::TwoState> ? "2s" : "4s";
}

}  // namespace

template <class P>
MutationCampaignContext prepareMutationCampaign(const ir::Design& golden,
                                                const InjectedDesign& injected,
                                                const std::vector<InsertedSensor>& sensors,
                                                const Testbench& tb,
                                                const AnalysisConfig& cfg) {
  MutationCampaignContext ctx;
  ctx.sensors = sensors;
  ctx.tb = tb;
  ctx.cfg = cfg;
  if (cfg.useGoldenCache || cfg.useMutantCache) {
    ctx.goldenKey = goldenTraceKey(golden, sensors, tb, cfg, policyTag<P>());
  }
  if (cfg.useGoldenCache) {
    // Time the recording inside the build lambda: only the task that
    // actually records is charged goldenSeconds. A waiter blocked on an
    // in-flight recording reports ~0 — its wait shows up in wall time, not
    // in the "golden work spent" ledger (which must not inflate with
    // thread count). A disk load is likewise not a recording: it charges 0
    // and counts as served-from-cache.
    double recordSeconds = 0.0;
    bool memHit = false;
    ctx.gold = util::getOrBuildWithStore<GoldenTrace>(
        goldenTraceCache(), util::processArtifactStore(), "golden", ctx.goldenKey,
        [&] {
          util::Timer t;
          GoldenTrace trace = recordGoldenTrace<P>(golden, sensors, tb, cfg);
          recordSeconds = t.seconds();
          return trace;
        },
        encodeGoldenTrace, decodeGoldenTrace, &memHit, &ctx.goldenFromDisk);
    ctx.goldenFromCache = memHit || ctx.goldenFromDisk;
    ctx.goldenSeconds = recordSeconds;
  } else {
    util::Timer t;
    ctx.gold = std::make_shared<const GoldenTrace>(
        recordGoldenTrace<P>(golden, sensors, tb, cfg));
    ctx.goldenSeconds = t.seconds();
  }
  // Compile + levelize the injected design once; every task clones a cheap
  // private session from this shared layout.
  ctx.layout = abstraction::buildTlmModelLayout(
      injected.design, TlmModelConfig{cfg.hfRatio, false}, injected.mutants);
  ctx.recoverySym = ctx.layout->design.findSymbol(cfg.recoveryPort);
  ctx.hasRecovery = ctx.recoverySym != ir::kNoSymbol;
  ctx.referenceSim = referenceSimMode();
  // ~16 checkpoints across the run: fine enough that a fast-forward lands
  // close to the divergence cycle, coarse enough that the recording run's
  // snapshot cost stays a fraction of one mutant simulation.
  ctx.checkpointInterval = std::max<std::uint64_t>(1, tb.cycles / 16);
  ctx.checkpoints = std::make_shared<CampaignCheckpoints>();
  return ctx;
}

namespace {

/// Record the campaign checkpoints exactly once (any number of tasks may
/// race here; losers block on the winner): one clean no-mutant run over the
/// injected layout — by mutant transparency, the golden trajectory — with a
/// state snapshot at every interval boundary.
template <class P>
const CampaignCheckpoints& ensureCheckpoints(const MutationCampaignContext& ctx) {
  CampaignCheckpoints& cp = *ctx.checkpoints;
  std::call_once(cp.once, [&] {
    TlmIpModel<P> model(ctx.layout);
    const DriveFn drive = ctx.tb.driverForTask(ctx.cfg.stimulusId);
    PortBinder<P> ports(model);
    const PortSetter setter = ports.setter();
    const std::uint64_t k = ctx.checkpointInterval;
    // The deepest restorable point any mutant can use is the last interval
    // boundary at or before the largest fast-forward limit of THIS
    // analysis's mutant subrange (a shard fragment must not pay for the
    // prefixes of mutants other fragments own; a limit >= tb.cycles is a
    // full skip that needs no checkpoint at all) — the recording run stops
    // there instead of replaying the whole bench.
    const auto [begin, end] = clampMutantRange(ctx.cfg, ctx.layout->mutants.size());
    std::uint64_t deepest = 0;
    for (std::size_t m = begin; m < end; ++m) {
      const std::string& endpoint = ctx.layout->mutants[m].spec.targetSignal;
      for (std::size_t i = 0; i < ctx.sensors.size(); ++i) {
        if (ctx.sensors[i].endpointName != endpoint) continue;
        if (i < ctx.gold->firstActivity.size() &&
            ctx.gold->firstActivity[i] < ctx.tb.cycles) {
          deepest = std::max(deepest, ctx.gold->firstActivity[i]);
        }
        break;
      }
    }
    const std::uint64_t last = (deepest / k) * k;
    for (std::uint64_t c = 0; c < last; ++c) {
      if (c != 0 && c % k == 0) {
        cp.cycles.push_back(c);
        cp.snaps.push_back(model.snapshot());
      }
      drive(c, setter);
      if (ctx.hasRecovery) model.setInputUint(ctx.recoverySym, 1);
      model.scheduler();
    }
    if (last != 0) {
      cp.cycles.push_back(last);
      cp.snaps.push_back(model.snapshot());
    }
    cp.recordedCycles = last;
    cp.recorded.store(true, std::memory_order_release);
  });
  return cp;
}

}  // namespace

template <class P>
MutantResult simulateMutant(const MutationCampaignContext& ctx, int mutantIndex,
                            MutantSimStats* stats) {
  const ir::Design& design = ctx.layout->design;
  const auto& mutant = ctx.layout->mutants.at(static_cast<std::size_t>(mutantIndex));
  const std::uint64_t cycles = ctx.tb.cycles;
  const GoldenTrace& gold = *ctx.gold;

  MutantResult res;
  res.id = mutant.id;
  res.endpoint = mutant.spec.targetSignal;
  res.kind = mutant.spec.kind;
  res.deltaTicks = mutant.spec.deltaTicks;

  const InsertedSensor* sensor = nullptr;
  int sensorIdx = -1;
  for (std::size_t i = 0; i < ctx.sensors.size(); ++i) {
    if (ctx.sensors[i].endpointName == res.endpoint) {
      sensor = &ctx.sensors[i];
      sensorIdx = static_cast<int>(i);
      break;
    }
  }
  ir::SymbolId eSym = ir::kNoSymbol, qSym = ir::kNoSymbol, mvSym = ir::kNoSymbol,
               okSym = ir::kNoSymbol;
  if (sensor != nullptr) {
    if (!sensor->errorSignal.empty()) eSym = design.findSymbol(sensor->errorSignal);
    if (!sensor->qSignal.empty()) qSym = design.findSymbol(sensor->qSignal);
    if (!sensor->measValSignal.empty()) mvSym = design.findSymbol(sensor->measValSignal);
    if (!sensor->outOkSignal.empty()) okSym = design.findSymbol(sensor->outOkSignal);
  }

  // Fast-forward limit: the cycle before which this mutant is provably
  // transparent AND provably unobserved (GoldenTrace::firstActivity). Zero
  // (no skip) in reference mode, for unsensored targets and for traces
  // predating the metadata (size guard: a trace without per-sensor
  // first-activity data cannot justify skipping anything).
  const bool fast = !ctx.referenceSim;
  std::uint64_t limit = 0;
  if (fast && sensorIdx >= 0 && gold.firstActivity.size() == ctx.sensors.size()) {
    limit = std::min<std::uint64_t>(gold.firstActivity[static_cast<std::size_t>(sensorIdx)],
                                    cycles);
  }

  if (fast && limit >= cycles) {
    // Quiet for the whole run: the mutant never re-times a value-changing
    // commit and the golden run never trips an observation predicate, so
    // the co-simulation is the golden run — nothing is killed, detected or
    // measured. The default-initialized result IS the full-replay result.
    if (stats != nullptr) stats->cyclesSkipped += cycles;
    return res;
  }

  TlmIpModel<P> model(ctx.layout);
  model.activateMutant(mutant.id);

  // Checkpoint fast-forward: restore the deepest campaign checkpoint at or
  // before the limit instead of re-simulating the quiet prefix from reset.
  std::uint64_t startCycle = 0;
  if (fast && limit >= ctx.checkpointInterval) {
    const CampaignCheckpoints& cp = ensureCheckpoints<P>(ctx);
    for (std::size_t i = cp.cycles.size(); i-- > 0;) {
      if (cp.cycles[i] <= limit) {
        model.restore(cp.snaps[i]);
        startCycle = cp.cycles[i];
        break;
      }
    }
  }

  // Fresh driver per task, same stimulus id as the golden run: stateful
  // testbenches replay identical inputs from a private session. A stateful
  // driver is additionally stepped through the skipped prefix against a
  // null sink so its session state matches the restored model state; pure
  // drivers are functions of the cycle index and need no replay.
  const DriveFn drive = ctx.tb.driverForTask(ctx.cfg.stimulusId);
  if (startCycle > 0 && ctx.tb.makeDriver) {
    for (std::uint64_t c = 0; c < startCycle; ++c) drive(c, nullPortSetter());
  }

  bool correctionViolated = false;
  bool correctionObserved = false;

  // Verdict saturation: true once no remaining cycle can change any field
  // of the result, at which point the loop may stop early.
  //   * killed, detected, errorRisen are sticky — they only go false->true;
  //   * the Razor correction verdict is pinned once a violation was
  //     observed (corrected is then false forever); while the correction
  //     holds, any future error cycle could still violate it, so the run
  //     must continue;
  //   * a DeltaDelay mutant's MEAS_VAL is structurally capped at its own
  //     deltaTicks: the target's only driver commits exactly at HF period
  //     deltaTicks, so every toggle window measures that count (and quiet
  //     windows measure 0) — once the max is reached it cannot rise, and
  //     the per-toggle OUT_OK comparison against the constant LUT threshold
  //     repeats identically, so errorRisen is final once a toggle was
  //     detected. (This reasoning assumes two-valued operation of the
  //     monitored path, which holds for initialized registers under known
  //     stimulus — the conformance suite pins fast == reference.)
  const bool isDelta = mutant.spec.kind == MutantKind::DeltaDelay;
  const std::uint64_t deltaCap = static_cast<std::uint64_t>(std::max(0, res.deltaTicks));
  const auto saturated = [&]() noexcept {
    if (!res.killed) return false;
    if (eSym != ir::kNoSymbol && !(res.detected && res.errorRisen)) return false;
    if (qSym != ir::kNoSymbol && !(correctionObserved && correctionViolated)) return false;
    if (mvSym != ir::kNoSymbol && !(isDelta && deltaCap > 0 && res.measuredDelay >= deltaCap)) {
      return false;
    }
    if (okSym != ir::kNoSymbol && !res.errorRisen && !(isDelta && res.detected)) return false;
    return true;
  };

  PortBinder<P> ports(model);
  const PortSetter setter = ports.setter();
  const std::vector<ir::SymbolId>& outSyms = design.outputs;
  std::uint64_t executed = 0;
  for (std::uint64_t c = startCycle; c < cycles; ++c) {
    drive(c, setter);
    if (ctx.hasRecovery) model.setInputUint(ctx.recoverySym, 1);
    model.scheduler();
    ++executed;

    // Kill check against the golden output row; a killed mutant stays
    // killed, so the scan is skipped once it has fired.
    if (!res.killed) {
      const std::vector<std::uint64_t>& goldRow = gold.outputs[c];
      for (std::size_t o = 0; o < outSyms.size(); ++o) {
        if (model.valueUint(outSyms[o]) != goldRow[o]) {
          res.killed = true;
          break;
        }
      }
    }
    // Sensor observation at the mutated endpoint.
    if (eSym != ir::kNoSymbol && model.valueUint(eSym) == 1) {
      res.detected = true;
      res.errorRisen = true;
      // Correction check: q presents the golden endpoint value of the
      // previous cycle.
      if (qSym != ir::kNoSymbol && c >= 1 && sensorIdx >= 0) {
        correctionObserved = true;
        if (model.valueUint(qSym) != gold.endpoints[c - 1][static_cast<std::size_t>(sensorIdx)]) {
          correctionViolated = true;
        }
      }
    }
    if (mvSym != ir::kNoSymbol) {
      const std::uint64_t mv = model.valueUint(mvSym);
      if (mv != 0) {
        res.detected = true;
        res.measuredDelay = std::max(res.measuredDelay, mv);
      }
    }
    if (okSym != ir::kNoSymbol && model.valueUint(okSym) == 0) res.errorRisen = true;

    if (fast && saturated()) break;
  }

  if (stats != nullptr) {
    stats->cyclesSimulated += executed;
    stats->cyclesSkipped += cycles - executed;
  }
  if (qSym != ir::kNoSymbol) {
    res.correctionChecked = correctionObserved;
    res.corrected = correctionObserved && !correctionViolated;
  }
  return res;
}

template <class P>
AnalysisReport analyzeMutations(const ir::Design& golden, const InjectedDesign& injected,
                                const std::vector<InsertedSensor>& sensors, const Testbench& tb,
                                const AnalysisConfig& cfg) {
  util::Timer wall;
  AnalysisReport report;
  report.cyclesPerRun = tb.cycles;

  util::Timer prepareTimer;
  const MutationCampaignContext ctx =
      prepareMutationCampaign<P>(golden, injected, sensors, tb, cfg);
  const double prepareSeconds = prepareTimer.seconds();
  report.goldenSeconds = ctx.goldenSeconds;
  report.goldenFromCache = ctx.goldenFromCache;
  report.goldenFromDisk = ctx.goldenFromDisk;

  const auto [begin, end] = clampMutantRange(cfg, ctx.layout->mutants.size());
  const std::size_t n = end - begin;
  report.results.resize(n);
  std::vector<double> taskSeconds(n, 0.0);
  std::vector<MutantSimStats> simStats(n);
  std::vector<char> servedFromCache(n, 0);

  campaign::Executor executor(campaign::ExecutorConfig{cfg.threads, 0});
  report.threadsUsed = executor.effectiveThreads(n);
  executor.run(n, [&](std::size_t i) {
    util::Timer t;
    const int mutantIndex = static_cast<int>(begin + i);
    if (cfg.useMutantCache) {
      // A mutant's result is independent of which other (inactive) mutants
      // ride along in the injected design (mutation/adam.h), so it is keyed
      // by (golden key, spec) alone and shared across mutant-set variants,
      // re-runs and — through the artifact store — processes. Only the id
      // is variant-local: the cached value is id-normalized and fixed up
      // here against this run's injected set.
      const auto& mutant = ctx.layout->mutants.at(static_cast<std::size_t>(mutantIndex));
      bool memHit = false, diskHit = false;
      const std::shared_ptr<const MutantResult> cached =
          util::getOrBuildWithStore<MutantResult>(
              mutantResultCache(), util::processArtifactStore(), "mutant",
              mutantResultKey(ctx.goldenKey, mutant.spec),
              [&] {
                MutantResult fresh = simulateMutant<P>(ctx, mutantIndex, &simStats[i]);
                fresh.id = -1;
                return fresh;
              },
              encodeMutantResultArtifact, decodeMutantResultArtifact, &memHit, &diskHit);
      MutantResult res = *cached;
      res.id = mutant.id;
      report.results[i] = res;
      servedFromCache[i] = (memHit || diskHit) ? 1 : 0;
    } else {
      report.results[i] = simulateMutant<P>(ctx, mutantIndex, &simStats[i]);
    }
    taskSeconds[i] = t.seconds();
  });
  for (char hit : servedFromCache) report.mutantCacheHits += hit ? 1 : 0;
  // Cycle ledger: per-mutant executed/skipped sums (deterministic — slots
  // are summed in task order) plus the lazy checkpoint recording run, which
  // ran at most once and only if some task fast-forwarded.
  for (const MutantSimStats& s : simStats) {
    report.cyclesSimulated += s.cyclesSimulated;
    report.cyclesSkipped += s.cyclesSkipped;
  }
  if (ctx.checkpoints != nullptr && ctx.checkpoints->recorded.load(std::memory_order_acquire)) {
    report.cyclesSimulated += ctx.checkpoints->recordedCycles;
  }

  // simSeconds aggregates the work (sum of per-run times); wallSeconds is
  // what elapsed — they coincide on one thread. A golden-cache hit shrinks
  // the prepare component (layout build remains, recording is skipped).
  report.simSeconds = prepareSeconds;
  for (double s : taskSeconds) report.simSeconds += s;
  report.wallSeconds = wall.seconds();
  return report;
}

template GoldenTrace recordGoldenTrace<hdt::FourState>(const ir::Design&,
                                                       const std::vector<InsertedSensor>&,
                                                       const Testbench&, const AnalysisConfig&);
template GoldenTrace recordGoldenTrace<hdt::TwoState>(const ir::Design&,
                                                      const std::vector<InsertedSensor>&,
                                                      const Testbench&, const AnalysisConfig&);
template MutationCampaignContext prepareMutationCampaign<hdt::FourState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template MutationCampaignContext prepareMutationCampaign<hdt::TwoState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template MutantResult simulateMutant<hdt::FourState>(const MutationCampaignContext&, int,
                                                     MutantSimStats*);
template MutantResult simulateMutant<hdt::TwoState>(const MutationCampaignContext&, int,
                                                    MutantSimStats*);
template AnalysisReport analyzeMutations<hdt::FourState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template AnalysisReport analyzeMutations<hdt::TwoState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);

std::vector<mutation::MutantSpec> razorMutantSet(const std::vector<InsertedSensor>& sensors) {
  std::vector<mutation::MutantSpec> specs;
  specs.reserve(sensors.size() * 2);
  for (const auto& s : sensors) {
    specs.push_back({s.endpointName, MutantKind::MinDelay, 0});
    specs.push_back({s.endpointName, MutantKind::MaxDelay, 0});
  }
  return specs;
}

std::vector<mutation::MutantSpec> counterMutantSet(const std::vector<InsertedSensor>& sensors,
                                                   double clockPeriodPs, int hfRatio) {
  (void)clockPeriodPs;
  std::vector<mutation::MutantSpec> specs;
  specs.reserve(sensors.size() * 3);
  if (sensors.empty()) return specs;

  // Severity model: each path's modeled lateness is proportional to its
  // arrival relative to the 75th percentile of the monitored arrivals
  // (capped at 1.25 so one deep outlier does not compress everyone else),
  // scaled by three variability factors — nominal, derated and worst-case.
  // The resulting delta ticks straddle the sensor's LUT threshold, so the
  // fraction of "errors risen" reflects the IP's own slack distribution,
  // as in Table 5.
  std::vector<double> arrivals;
  arrivals.reserve(sensors.size());
  for (const auto& s : sensors) arrivals.push_back(s.endpointArrivalPs);
  std::sort(arrivals.begin(), arrivals.end());
  const double p75 =
      std::max(1.0, arrivals[(arrivals.size() * 3) / 4 >= arrivals.size()
                                 ? arrivals.size() - 1
                                 : (arrivals.size() * 3) / 4]);

  const double factors[3] = {0.8, 1.2, 1.6};
  for (const auto& s : sensors) {
    const double severity = std::min(1.25, s.endpointArrivalPs / p75);
    for (double f : factors) {
      int tick = static_cast<int>(std::lround(hfRatio * severity * f));
      tick = std::clamp(tick, 1, hfRatio);
      specs.push_back({s.endpointName, MutantKind::DeltaDelay, tick});
    }
  }
  return specs;
}

}  // namespace xlv::analysis
