#include "analysis/mutation_analysis.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <type_traits>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "campaign/executor.h"
#include "util/artifact_store.h"
#include "util/timer.h"

namespace xlv::analysis {

using abstraction::TlmIpModel;
using abstraction::TlmModelConfig;
using insertion::InsertedSensor;
using insertion::SensorKind;
using mutation::InjectedDesign;
using mutation::MutantKind;

int AnalysisReport::countKilled() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.killed ? 1 : 0;
  return n;
}

int AnalysisReport::countRisen() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.errorRisen ? 1 : 0;
  return n;
}

int AnalysisReport::countDetected() const noexcept {
  int n = 0;
  for (const auto& r : results) n += r.detected ? 1 : 0;
  return n;
}

double AnalysisReport::killedPct() const noexcept {
  return results.empty() ? 0.0 : 100.0 * countKilled() / static_cast<double>(results.size());
}

double AnalysisReport::risenPct() const noexcept {
  return results.empty() ? 0.0 : 100.0 * countRisen() / static_cast<double>(results.size());
}

double AnalysisReport::correctedPct() const noexcept {
  int checked = 0, ok = 0;
  for (const auto& r : results) {
    if (r.correctionChecked) {
      ++checked;
      ok += r.corrected ? 1 : 0;
    }
  }
  if (checked == 0) return -1.0;
  return 100.0 * ok / static_cast<double>(checked);
}

template <class P>
GoldenTrace recordGoldenTrace(const ir::Design& golden,
                              const std::vector<InsertedSensor>& sensors, const Testbench& tb,
                              const AnalysisConfig& cfg) {
  TlmIpModel<P> model(golden, TlmModelConfig{cfg.hfRatio, false});
  std::vector<ir::SymbolId> endpointSyms;
  endpointSyms.reserve(sensors.size());
  for (const auto& s : sensors) endpointSyms.push_back(golden.findSymbol(s.endpointName));

  GoldenTrace trace;
  trace.outputs.reserve(tb.cycles);
  trace.endpoints.reserve(tb.cycles);
  const bool hasRecovery = golden.findSymbol(cfg.recoveryPort) != ir::kNoSymbol;
  const DriveFn drive = tb.driverForTask(cfg.stimulusId);
  for (std::uint64_t c = 0; c < tb.cycles; ++c) {
    drive(c, [&](const std::string& name, std::uint64_t v) { model.setInputByName(name, v); });
    if (hasRecovery) model.setInputByName(cfg.recoveryPort, 1);
    model.scheduler();
    std::vector<std::uint64_t> outs;
    outs.reserve(golden.outputs.size());
    for (ir::SymbolId o : golden.outputs) outs.push_back(model.valueUint(o));
    trace.outputs.push_back(std::move(outs));
    std::vector<std::uint64_t> eps;
    eps.reserve(endpointSyms.size());
    for (ir::SymbolId e : endpointSyms) eps.push_back(model.valueUint(e));
    trace.endpoints.push_back(std::move(eps));
  }
  return trace;
}

namespace {

template <class P>
constexpr const char* policyTag() {
  return std::is_same_v<P, hdt::TwoState> ? "2s" : "4s";
}

}  // namespace

template <class P>
MutationCampaignContext prepareMutationCampaign(const ir::Design& golden,
                                                const InjectedDesign& injected,
                                                const std::vector<InsertedSensor>& sensors,
                                                const Testbench& tb,
                                                const AnalysisConfig& cfg) {
  MutationCampaignContext ctx;
  ctx.sensors = sensors;
  ctx.tb = tb;
  ctx.cfg = cfg;
  if (cfg.useGoldenCache || cfg.useMutantCache) {
    ctx.goldenKey = goldenTraceKey(golden, sensors, tb, cfg, policyTag<P>());
  }
  if (cfg.useGoldenCache) {
    // Time the recording inside the build lambda: only the task that
    // actually records is charged goldenSeconds. A waiter blocked on an
    // in-flight recording reports ~0 — its wait shows up in wall time, not
    // in the "golden work spent" ledger (which must not inflate with
    // thread count). A disk load is likewise not a recording: it charges 0
    // and counts as served-from-cache.
    double recordSeconds = 0.0;
    bool memHit = false;
    ctx.gold = util::getOrBuildWithStore<GoldenTrace>(
        goldenTraceCache(), util::processArtifactStore(), "golden", ctx.goldenKey,
        [&] {
          util::Timer t;
          GoldenTrace trace = recordGoldenTrace<P>(golden, sensors, tb, cfg);
          recordSeconds = t.seconds();
          return trace;
        },
        encodeGoldenTrace, decodeGoldenTrace, &memHit, &ctx.goldenFromDisk);
    ctx.goldenFromCache = memHit || ctx.goldenFromDisk;
    ctx.goldenSeconds = recordSeconds;
  } else {
    util::Timer t;
    ctx.gold = std::make_shared<const GoldenTrace>(
        recordGoldenTrace<P>(golden, sensors, tb, cfg));
    ctx.goldenSeconds = t.seconds();
  }
  // Compile + levelize the injected design once; every task clones a cheap
  // private session from this shared layout.
  ctx.layout = abstraction::buildTlmModelLayout(
      injected.design, TlmModelConfig{cfg.hfRatio, false}, injected.mutants);
  ctx.hasRecovery = injected.design.findSymbol(cfg.recoveryPort) != ir::kNoSymbol;
  return ctx;
}

template <class P>
MutantResult simulateMutant(const MutationCampaignContext& ctx, int mutantIndex) {
  const ir::Design& design = ctx.layout->design;
  const auto& mutant = ctx.layout->mutants.at(static_cast<std::size_t>(mutantIndex));

  TlmIpModel<P> model(ctx.layout);
  model.activateMutant(mutant.id);

  MutantResult res;
  res.id = mutant.id;
  res.endpoint = mutant.spec.targetSignal;
  res.kind = mutant.spec.kind;
  res.deltaTicks = mutant.spec.deltaTicks;

  const InsertedSensor* sensor = nullptr;
  int sensorIdx = -1;
  for (std::size_t i = 0; i < ctx.sensors.size(); ++i) {
    if (ctx.sensors[i].endpointName == res.endpoint) {
      sensor = &ctx.sensors[i];
      sensorIdx = static_cast<int>(i);
      break;
    }
  }
  ir::SymbolId eSym = ir::kNoSymbol, qSym = ir::kNoSymbol, mvSym = ir::kNoSymbol,
               okSym = ir::kNoSymbol;
  if (sensor != nullptr) {
    if (!sensor->errorSignal.empty()) eSym = design.findSymbol(sensor->errorSignal);
    if (!sensor->qSignal.empty()) qSym = design.findSymbol(sensor->qSignal);
    if (!sensor->measValSignal.empty()) mvSym = design.findSymbol(sensor->measValSignal);
    if (!sensor->outOkSignal.empty()) okSym = design.findSymbol(sensor->outOkSignal);
  }

  bool correctionViolated = false;
  bool correctionObserved = false;

  // Fresh driver per task, same stimulus id as the golden run: stateful
  // testbenches replay identical inputs from a private session.
  const DriveFn drive = ctx.tb.driverForTask(ctx.cfg.stimulusId);
  const GoldenTrace& gold = *ctx.gold;

  for (std::uint64_t c = 0; c < ctx.tb.cycles; ++c) {
    drive(c, [&](const std::string& name, std::uint64_t v) { model.setInputByName(name, v); });
    if (ctx.hasRecovery) model.setInputByName(ctx.cfg.recoveryPort, 1);
    model.scheduler();

    // Kill check: any output differs from the golden run.
    for (std::size_t o = 0; o < design.outputs.size(); ++o) {
      if (model.valueUint(design.outputs[o]) != gold.outputs[c][o]) {
        res.killed = true;
        break;
      }
    }
    // Sensor observation at the mutated endpoint.
    if (eSym != ir::kNoSymbol && model.valueUint(eSym) == 1) {
      res.detected = true;
      res.errorRisen = true;
      // Correction check: q presents the golden endpoint value of the
      // previous cycle.
      if (qSym != ir::kNoSymbol && c >= 1 && sensorIdx >= 0) {
        correctionObserved = true;
        if (model.valueUint(qSym) != gold.endpoints[c - 1][static_cast<std::size_t>(sensorIdx)]) {
          correctionViolated = true;
        }
      }
    }
    if (mvSym != ir::kNoSymbol) {
      const std::uint64_t mv = model.valueUint(mvSym);
      if (mv != 0) {
        res.detected = true;
        res.measuredDelay = std::max(res.measuredDelay, mv);
      }
    }
    if (okSym != ir::kNoSymbol && model.valueUint(okSym) == 0) res.errorRisen = true;
  }

  if (qSym != ir::kNoSymbol) {
    res.correctionChecked = correctionObserved;
    res.corrected = correctionObserved && !correctionViolated;
  }
  return res;
}

template <class P>
AnalysisReport analyzeMutations(const ir::Design& golden, const InjectedDesign& injected,
                                const std::vector<InsertedSensor>& sensors, const Testbench& tb,
                                const AnalysisConfig& cfg) {
  util::Timer wall;
  AnalysisReport report;
  report.cyclesPerRun = tb.cycles;

  util::Timer prepareTimer;
  const MutationCampaignContext ctx =
      prepareMutationCampaign<P>(golden, injected, sensors, tb, cfg);
  const double prepareSeconds = prepareTimer.seconds();
  report.goldenSeconds = ctx.goldenSeconds;
  report.goldenFromCache = ctx.goldenFromCache;
  report.goldenFromDisk = ctx.goldenFromDisk;

  // Clamp the requested mutant subrange (AnalysisConfig::mutantBegin/End)
  // to the injected set; the default 0/0 selects every mutant.
  const std::size_t total = ctx.layout->mutants.size();
  const std::size_t begin = std::min(cfg.mutantBegin, total);
  const std::size_t end =
      std::max(begin, cfg.mutantEnd == 0 ? total : std::min(cfg.mutantEnd, total));
  const std::size_t n = end - begin;
  report.results.resize(n);
  std::vector<double> taskSeconds(n, 0.0);
  std::vector<char> servedFromCache(n, 0);

  campaign::Executor executor(campaign::ExecutorConfig{cfg.threads, 0});
  report.threadsUsed = executor.effectiveThreads(n);
  executor.run(n, [&](std::size_t i) {
    util::Timer t;
    const int mutantIndex = static_cast<int>(begin + i);
    if (cfg.useMutantCache) {
      // A mutant's result is independent of which other (inactive) mutants
      // ride along in the injected design (mutation/adam.h), so it is keyed
      // by (golden key, spec) alone and shared across mutant-set variants,
      // re-runs and — through the artifact store — processes. Only the id
      // is variant-local: the cached value is id-normalized and fixed up
      // here against this run's injected set.
      const auto& mutant = ctx.layout->mutants.at(static_cast<std::size_t>(mutantIndex));
      bool memHit = false, diskHit = false;
      const std::shared_ptr<const MutantResult> cached =
          util::getOrBuildWithStore<MutantResult>(
              mutantResultCache(), util::processArtifactStore(), "mutant",
              mutantResultKey(ctx.goldenKey, mutant.spec),
              [&] {
                MutantResult fresh = simulateMutant<P>(ctx, mutantIndex);
                fresh.id = -1;
                return fresh;
              },
              encodeMutantResultArtifact, decodeMutantResultArtifact, &memHit, &diskHit);
      MutantResult res = *cached;
      res.id = mutant.id;
      report.results[i] = res;
      servedFromCache[i] = (memHit || diskHit) ? 1 : 0;
    } else {
      report.results[i] = simulateMutant<P>(ctx, mutantIndex);
    }
    taskSeconds[i] = t.seconds();
  });
  for (char hit : servedFromCache) report.mutantCacheHits += hit ? 1 : 0;

  // simSeconds aggregates the work (sum of per-run times); wallSeconds is
  // what elapsed — they coincide on one thread. A golden-cache hit shrinks
  // the prepare component (layout build remains, recording is skipped).
  report.simSeconds = prepareSeconds;
  for (double s : taskSeconds) report.simSeconds += s;
  report.wallSeconds = wall.seconds();
  return report;
}

template GoldenTrace recordGoldenTrace<hdt::FourState>(const ir::Design&,
                                                       const std::vector<InsertedSensor>&,
                                                       const Testbench&, const AnalysisConfig&);
template GoldenTrace recordGoldenTrace<hdt::TwoState>(const ir::Design&,
                                                      const std::vector<InsertedSensor>&,
                                                      const Testbench&, const AnalysisConfig&);
template MutationCampaignContext prepareMutationCampaign<hdt::FourState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template MutationCampaignContext prepareMutationCampaign<hdt::TwoState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template MutantResult simulateMutant<hdt::FourState>(const MutationCampaignContext&, int);
template MutantResult simulateMutant<hdt::TwoState>(const MutationCampaignContext&, int);
template AnalysisReport analyzeMutations<hdt::FourState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);
template AnalysisReport analyzeMutations<hdt::TwoState>(
    const ir::Design&, const InjectedDesign&, const std::vector<InsertedSensor>&,
    const Testbench&, const AnalysisConfig&);

std::vector<mutation::MutantSpec> razorMutantSet(const std::vector<InsertedSensor>& sensors) {
  std::vector<mutation::MutantSpec> specs;
  specs.reserve(sensors.size() * 2);
  for (const auto& s : sensors) {
    specs.push_back({s.endpointName, MutantKind::MinDelay, 0});
    specs.push_back({s.endpointName, MutantKind::MaxDelay, 0});
  }
  return specs;
}

std::vector<mutation::MutantSpec> counterMutantSet(const std::vector<InsertedSensor>& sensors,
                                                   double clockPeriodPs, int hfRatio) {
  (void)clockPeriodPs;
  std::vector<mutation::MutantSpec> specs;
  specs.reserve(sensors.size() * 3);
  if (sensors.empty()) return specs;

  // Severity model: each path's modeled lateness is proportional to its
  // arrival relative to the 75th percentile of the monitored arrivals
  // (capped at 1.25 so one deep outlier does not compress everyone else),
  // scaled by three variability factors — nominal, derated and worst-case.
  // The resulting delta ticks straddle the sensor's LUT threshold, so the
  // fraction of "errors risen" reflects the IP's own slack distribution,
  // as in Table 5.
  std::vector<double> arrivals;
  arrivals.reserve(sensors.size());
  for (const auto& s : sensors) arrivals.push_back(s.endpointArrivalPs);
  std::sort(arrivals.begin(), arrivals.end());
  const double p75 =
      std::max(1.0, arrivals[(arrivals.size() * 3) / 4 >= arrivals.size()
                                 ? arrivals.size() - 1
                                 : (arrivals.size() * 3) / 4]);

  const double factors[3] = {0.8, 1.2, 1.6};
  for (const auto& s : sensors) {
    const double severity = std::min(1.25, s.endpointArrivalPs / p75);
    for (double f : factors) {
      int tick = static_cast<int>(std::lround(hfRatio * severity * f));
      tick = std::clamp(tick, 1, hfRatio);
      specs.push_back({s.endpointName, MutantKind::DeltaDelay, tick});
    }
  }
  return specs;
}

}  // namespace xlv::analysis
