// Cross-level / cross-design equivalence checking.
//
// The flow's correctness rests on cycle equivalence between levels (RTL
// kernel vs abstracted TLM model) and between design variants (clean vs
// augmented, clean vs inactive-injected). This utility runs any two of those
// side by side under a shared stimulus and reports the first divergence —
// the library-grade version of the checks the test suite performs, usable by
// downstream adopters on their own IPs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/testbench.h"
#include "ir/design.h"
#include "mutation/adam.h"

namespace xlv::analysis {

struct Divergence {
  std::uint64_t cycle = 0;
  std::string symbol;
  std::string lhsValue;
  std::string rhsValue;
};

struct EquivalenceReport {
  bool equivalent = true;
  std::uint64_t cyclesCompared = 0;
  std::optional<Divergence> firstDivergence;
  /// Divergences found (capped; comparison stops at the cap).
  std::vector<Divergence> divergences;
};

enum class CompareScope {
  Outputs,     ///< top-level output ports only
  AllSignals,  ///< every non-clock scalar signal (names must match)
};

struct EquivalenceConfig {
  CompareScope scope = CompareScope::Outputs;
  int hfRatio = 0;
  std::uint64_t mainPeriodPs = 1000;
  int maxDivergences = 8;
};

/// RTL kernel vs abstracted TLM model of the SAME design (the flow's
/// invariant 1).
EquivalenceReport checkRtlVsTlm(const ir::Design& design, const Testbench& tb,
                                const EquivalenceConfig& cfg);

/// Two TLM models, possibly of different designs (clean vs augmented /
/// injected). Symbols are matched by name; symbols present on one side only
/// are ignored under AllSignals and an error under Outputs unless they are
/// sensor-added ports listed in `ignore`.
EquivalenceReport checkTlmVsTlm(const ir::Design& lhs, const ir::Design& rhs,
                                const Testbench& tb, const EquivalenceConfig& cfg,
                                const std::vector<std::string>& ignore = {});

/// Clean design vs an ADAM-injected design with all mutants INACTIVE — the
/// "injection is behaviour-preserving" invariant. (An injected design must
/// carry its mutant list: without the scheduler-phase apply mechanism the
/// rewritten targets would never commit.)
EquivalenceReport checkCleanVsInjected(const ir::Design& clean,
                                       const mutation::InjectedDesign& injected,
                                       const Testbench& tb, const EquivalenceConfig& cfg);

}  // namespace xlv::analysis
