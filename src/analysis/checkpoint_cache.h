// Process-wide campaign-checkpoint cache (ISSUE 6 satellite: "spill the
// clean-run checkpoint recordings through the ArtifactStore").
//
// The campaign's divergence-driven fast path records one clean (no-mutant)
// run over the injected layout with periodic state snapshots, so every
// mutant task can restore the deepest checkpoint at or before its
// fast-forward limit instead of replaying the quiet prefix from reset
// (analysis/mutation_analysis.h, CampaignCheckpoints). Before this cache,
// each campaign — and each shard process — re-recorded that run privately.
//
// Snapshots are stored in the engine-neutral word layout of
// abstraction/emit_native.h, so a recording made by the native backend
// restores into interpreter sessions and vice versa (the backends are
// bit-identical by the conformance suite).
//
// Keying: the golden-trace key (design identity, endpoints, testbench,
// cycles, hfRatio, value policy — analysis/golden_cache.h) extended with
// the INJECTED layout's fingerprint (snapshots carry mutant scratch
// symbols, so different mutant sets have incompatible shapes), the
// checkpoint interval and the recording depth (shard fragments stop at
// their own subrange's deepest fast-forward limit; fragments that agree on
// the depth share one recording). Campaigns with caching disabled (no
// golden key) keep a context-local recording and never touch this cache.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/once_cache.h"

namespace xlv::analysis {

/// One campaign's clean-run checkpoint recording. snapWords[i] is the full
/// session state (shared word layout) at the start of cycles[i]; cycles are
/// increasing multiples of `interval`, the last one at `recordedCycles`.
struct CheckpointRecording {
  std::uint64_t interval = 1;
  std::vector<std::uint64_t> cycles;
  std::vector<std::vector<std::uint64_t>> snapWords;
  /// Scheduler transactions the recording run executed — charged to the
  /// campaign that performed the recording, NOT to campaigns that loaded it
  /// from this cache (like goldenSeconds: the ledger reports work done, a
  /// cache hit did none).
  std::uint64_t recordedCycles = 0;
};

/// Cache key for one recording: golden-trace key x injected-layout
/// fingerprint x interval x depth.
std::string checkpointKey(const std::string& goldenKey,
                          std::uint64_t injectedFingerprint, std::uint64_t interval,
                          std::uint64_t recordedCycles);

/// The process-wide recording cache; spilled through the configured
/// util::processArtifactStore() under domain "ckpt" by the analysis layer.
util::OnceCache<CheckpointRecording>& checkpointCache();

/// Byte-stable artifact codec (util/codec.h envelope; snapshot words packed
/// 8-byte little-endian). decodeCheckpointRecording throws util::DecodeError
/// on truncation, version skew or a shape mismatch.
inline constexpr int kCheckpointCodecVersion = 1;
std::string encodeCheckpointRecording(const CheckpointRecording& rec);
CheckpointRecording decodeCheckpointRecording(std::string_view data);

}  // namespace xlv::analysis
