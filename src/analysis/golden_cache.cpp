#include "analysis/golden_cache.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "abstraction/emit_cpp.h"
#include "analysis/mutation_analysis.h"
#include "util/codec.h"
#include "util/fnv.h"

namespace xlv::analysis {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  return util::fnv1a64(s, h);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) { return util::fnv1a64Mix(v, h); }

}  // namespace

std::uint64_t designFingerprint(const ir::Design& design, int hfRatio) {
  // The emitted C++ is a canonical rendering of everything the simulators
  // execute: symbols, init values, process bodies, the scheduler shape
  // (single- vs dual-clock). Hash it, then mix in structural counts as a
  // cheap second opinion against text-level coincidences.
  abstraction::EmitCppOptions opts;
  opts.hfRatio = hfRatio;
  std::uint64_t h = fnv1a(util::kFnvOffset, abstraction::emitCpp(design, opts));
  h = fnv1a(h, design.name);
  h = mix(h, static_cast<std::uint64_t>(design.numSymbols()));
  h = mix(h, static_cast<std::uint64_t>(design.flipFlopBits()));
  h = mix(h, static_cast<std::uint64_t>(design.processes.size()));
  for (const auto& init : design.arrayInits) {
    h = mix(h, static_cast<std::uint64_t>(init.words.size()));
    for (std::uint64_t v : init.words) h = mix(h, v);
  }
  return h;
}

std::string goldenTraceKey(const ir::Design& golden,
                           const std::vector<insertion::InsertedSensor>& sensors,
                           const Testbench& tb, const AnalysisConfig& cfg,
                           const char* policyTag) {
  std::uint64_t endpointHash = util::kFnvOffset;
  for (const auto& s : sensors) {
    endpointHash = fnv1a(endpointHash, s.endpointName);
    endpointHash = fnv1a(endpointHash, "|");
  }
  endpointHash = mix(endpointHash, sensors.size());

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "d=%016" PRIx64 "|e=%016" PRIx64 "|seed=%016" PRIx64 "|stim=%" PRIu64
                "|cyc=%" PRIu64 "|hf=%d|p=%s",
                designFingerprint(golden, cfg.hfRatio), endpointHash, tb.seed,
                cfg.stimulusId, tb.cycles, cfg.hfRatio, policyTag);
  // Variable-length fields go through std::string (no truncation) and are
  // length-prefixed so a '|' or '=' inside a name cannot alias another
  // field boundary.
  std::string key(buf);
  key.append("|tb=").append(std::to_string(tb.name.size())).append(":").append(tb.name);
  key.append("|rec=")
      .append(std::to_string(cfg.recoveryPort.size()))
      .append(":")
      .append(cfg.recoveryPort);
  return key;
}

util::OnceCache<GoldenTrace>& goldenTraceCache() {
  static util::OnceCache<GoldenTrace> cache;
  return cache;
}

// --- disk-spill codec --------------------------------------------------------

namespace {

constexpr const char* kTraceTag = "golden-trace";
// v3: adds the per-endpoint firstActivity fast-forward metadata (one LE
// word per sensor column). Older artifacts fail the version check and are
// dropped as corrupt -> re-recorded; a trace without the metadata could
// otherwise silently disable the divergence-driven fast path.
constexpr int kTraceVersion = kGoldenTraceCodecVersion;

/// Pack a [cycle][idx] word matrix into width * cycles little-endian
/// 8-byte words (row-major). Fixed-width binary inside one length-prefixed
/// codec field: byte-stable, compact, endianness-explicit.
std::string packWords(const std::vector<std::vector<std::uint64_t>>& rows,
                      std::size_t width) {
  std::string out;
  out.reserve(rows.size() * width * 8);
  for (const auto& row : rows) {
    for (std::uint64_t w : row) {
      for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((w >> (8 * b)) & 0xff));
    }
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> unpackWords(std::string_view bytes,
                                                    std::size_t cycles, std::size_t width,
                                                    const char* what) {
  if (bytes.size() != cycles * width * 8) {
    throw util::DecodeError(std::string(what) + ": expected " +
                            std::to_string(cycles * width * 8) + " bytes, found " +
                            std::to_string(bytes.size()));
  }
  std::vector<std::vector<std::uint64_t>> rows(cycles);
  std::size_t pos = 0;
  for (auto& row : rows) {
    row.resize(width);
    for (auto& w : row) {
      w = 0;
      for (int b = 0; b < 8; ++b) {
        w |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos++])) << (8 * b);
      }
    }
  }
  return rows;
}

}  // namespace

std::string encodeGoldenTrace(const GoldenTrace& trace) {
  const std::size_t cycles = trace.outputs.size();
  const std::size_t outWidth = cycles == 0 ? 0 : trace.outputs.front().size();
  const std::size_t epWidth =
      trace.endpoints.empty() ? 0 : trace.endpoints.front().size();
  // The format assumes the invariants recordGoldenTrace guarantees — one
  // row per cycle in BOTH matrices, uniform row widths. Enforce them here
  // so a malformed trace fails loudly at encode time instead of producing
  // an artifact its own decode rejects as corrupt on every warm run.
  if (trace.endpoints.size() != cycles) {
    throw std::invalid_argument("golden trace: endpoints rows != outputs rows");
  }
  for (const auto& row : trace.outputs) {
    if (row.size() != outWidth) {
      throw std::invalid_argument("golden trace: ragged outputs rows");
    }
  }
  for (const auto& row : trace.endpoints) {
    if (row.size() != epWidth) {
      throw std::invalid_argument("golden trace: ragged endpoints rows");
    }
  }
  if (trace.firstActivity.size() != epWidth) {
    throw std::invalid_argument("golden trace: firstActivity size != endpoint count");
  }
  util::Encoder e(kTraceTag, kTraceVersion);
  e.u64("cycles", cycles);
  e.u64("outWidth", outWidth);
  e.u64("epWidth", epWidth);
  e.str("outputs", packWords(trace.outputs, outWidth));
  e.str("endpoints", packWords(trace.endpoints, epWidth));
  e.str("firstActivity", packWords({trace.firstActivity}, epWidth));
  return e.take();
}

GoldenTrace decodeGoldenTrace(std::string_view data) {
  util::Decoder d(data, kTraceTag, kTraceVersion);
  const std::size_t cycles = static_cast<std::size_t>(d.u64("cycles"));
  const std::size_t outWidth = static_cast<std::size_t>(d.u64("outWidth"));
  const std::size_t epWidth = static_cast<std::size_t>(d.u64("epWidth"));
  // Plausibility bounds before any arithmetic or allocation (same rule as
  // Decoder::beginList): each count is individually capped by the input
  // size FIRST, so the products below cannot wrap around and sneak an
  // absurd row width past the byte-count check. Deliberate asymmetry: a
  // zero-width trace (no outputs AND no sensors — nothing the analysis
  // could compare, unreachable from recordGoldenTrace on any accepted
  // design) is bounded by cycles <= data.size(), so such a degenerate
  // artifact rebuilds rather than driving an unbounded row allocation.
  if (cycles > data.size() || outWidth > data.size() / 8 || epWidth > data.size() / 8) {
    throw util::DecodeError("golden trace: implausible cycle/word counts");
  }
  // Canonical zero-cycle traces carry zero widths (encode derives both from
  // the first row, which doesn't exist): nonzero widths here are corrupt
  // bytes that would otherwise decode to a value re-encoding differently.
  if (cycles == 0 && (outWidth != 0 || epWidth != 0)) {
    throw util::DecodeError("golden trace: zero-cycle trace with nonzero widths");
  }
  const std::size_t wordBytes = (outWidth + epWidth) * 8;
  if (cycles != 0 && wordBytes != 0 && cycles > data.size() / wordBytes) {
    throw util::DecodeError("golden trace: implausible cycle/word counts");
  }
  GoldenTrace trace;
  trace.outputs = unpackWords(d.str("outputs"), cycles, outWidth, "golden trace outputs");
  trace.endpoints =
      unpackWords(d.str("endpoints"), cycles, epWidth, "golden trace endpoints");
  std::vector<std::vector<std::uint64_t>> fa =
      unpackWords(d.str("firstActivity"), 1, epWidth, "golden trace firstActivity");
  trace.firstActivity = std::move(fa.front());
  d.finish();
  return trace;
}

}  // namespace xlv::analysis
