#include "analysis/golden_cache.h"

#include <cinttypes>
#include <cstdio>

#include "abstraction/emit_cpp.h"
#include "analysis/mutation_analysis.h"
#include "util/fnv.h"

namespace xlv::analysis {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  return util::fnv1a64(s, h);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) { return util::fnv1a64Mix(v, h); }

}  // namespace

std::uint64_t designFingerprint(const ir::Design& design, int hfRatio) {
  // The emitted C++ is a canonical rendering of everything the simulators
  // execute: symbols, init values, process bodies, the scheduler shape
  // (single- vs dual-clock). Hash it, then mix in structural counts as a
  // cheap second opinion against text-level coincidences.
  abstraction::EmitCppOptions opts;
  opts.hfRatio = hfRatio;
  std::uint64_t h = fnv1a(util::kFnvOffset, abstraction::emitCpp(design, opts));
  h = fnv1a(h, design.name);
  h = mix(h, static_cast<std::uint64_t>(design.numSymbols()));
  h = mix(h, static_cast<std::uint64_t>(design.flipFlopBits()));
  h = mix(h, static_cast<std::uint64_t>(design.processes.size()));
  for (const auto& init : design.arrayInits) {
    h = mix(h, static_cast<std::uint64_t>(init.words.size()));
    for (std::uint64_t v : init.words) h = mix(h, v);
  }
  return h;
}

std::string goldenTraceKey(const ir::Design& golden,
                           const std::vector<insertion::InsertedSensor>& sensors,
                           const Testbench& tb, const AnalysisConfig& cfg,
                           const char* policyTag) {
  std::uint64_t endpointHash = util::kFnvOffset;
  for (const auto& s : sensors) {
    endpointHash = fnv1a(endpointHash, s.endpointName);
    endpointHash = fnv1a(endpointHash, "|");
  }
  endpointHash = mix(endpointHash, sensors.size());

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "d=%016" PRIx64 "|e=%016" PRIx64 "|seed=%016" PRIx64 "|stim=%" PRIu64
                "|cyc=%" PRIu64 "|hf=%d|p=%s",
                designFingerprint(golden, cfg.hfRatio), endpointHash, tb.seed,
                cfg.stimulusId, tb.cycles, cfg.hfRatio, policyTag);
  // Variable-length fields go through std::string (no truncation) and are
  // length-prefixed so a '|' or '=' inside a name cannot alias another
  // field boundary.
  std::string key(buf);
  key.append("|tb=").append(std::to_string(tb.name.size())).append(":").append(tb.name);
  key.append("|rec=")
      .append(std::to_string(cfg.recoveryPort.size()))
      .append(":")
      .append(cfg.recoveryPort);
  return key;
}

util::OnceCache<GoldenTrace>& goldenTraceCache() {
  static util::OnceCache<GoldenTrace> cache;
  return cache;
}

}  // namespace xlv::analysis
