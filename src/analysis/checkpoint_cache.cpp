#include "analysis/checkpoint_cache.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "util/codec.h"

namespace xlv::analysis {

std::string checkpointKey(const std::string& goldenKey,
                          std::uint64_t injectedFingerprint, std::uint64_t interval,
                          std::uint64_t recordedCycles) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "|inj=%016" PRIx64 "|k=%" PRIu64 "|last=%" PRIu64,
                injectedFingerprint, interval, recordedCycles);
  return goldenKey + buf;
}

util::OnceCache<CheckpointRecording>& checkpointCache() {
  static util::OnceCache<CheckpointRecording> cache;
  return cache;
}

namespace {

constexpr const char* kTag = "campaign-checkpoints";

std::string packWords(const std::vector<std::uint64_t>& words) {
  std::string out;
  out.reserve(words.size() * 8);
  for (std::uint64_t w : words) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((w >> (8 * b)) & 0xff));
  }
  return out;
}

std::vector<std::uint64_t> unpackWords(std::string_view bytes, std::size_t count,
                                       const char* what) {
  if (bytes.size() != count * 8) {
    throw util::DecodeError(std::string(what) + ": expected " + std::to_string(count * 8) +
                            " bytes, found " + std::to_string(bytes.size()));
  }
  std::vector<std::uint64_t> words(count);
  std::size_t pos = 0;
  for (auto& w : words) {
    w = 0;
    for (int b = 0; b < 8; ++b) {
      w |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos++])) << (8 * b);
    }
  }
  return words;
}

}  // namespace

std::string encodeCheckpointRecording(const CheckpointRecording& rec) {
  if (rec.cycles.size() != rec.snapWords.size()) {
    throw std::invalid_argument("checkpoint recording: cycles/snapshots size mismatch");
  }
  const std::size_t stateWords = rec.snapWords.empty() ? 0 : rec.snapWords.front().size();
  for (const auto& snap : rec.snapWords) {
    if (snap.size() != stateWords) {
      throw std::invalid_argument("checkpoint recording: ragged snapshot widths");
    }
  }
  util::Encoder e(kTag, kCheckpointCodecVersion);
  e.u64("interval", rec.interval);
  e.u64("recordedCycles", rec.recordedCycles);
  e.u64("count", rec.cycles.size());
  e.u64("stateWords", stateWords);
  e.str("cycles", packWords(rec.cycles));
  std::string words;
  words.reserve(rec.snapWords.size() * stateWords * 8);
  for (const auto& snap : rec.snapWords) words.append(packWords(snap));
  e.str("snapWords", words);
  return e.take();
}

CheckpointRecording decodeCheckpointRecording(std::string_view data) {
  util::Decoder d(data, kTag, kCheckpointCodecVersion);
  CheckpointRecording rec;
  rec.interval = d.u64("interval");
  rec.recordedCycles = d.u64("recordedCycles");
  const std::size_t count = static_cast<std::size_t>(d.u64("count"));
  const std::size_t stateWords = static_cast<std::size_t>(d.u64("stateWords"));
  // Plausibility bounds before allocation: each count is individually
  // capped by the input size, so the product cannot wrap.
  if (count > data.size() || stateWords > data.size() / 8 ||
      (count != 0 && stateWords != 0 && count > data.size() / (stateWords * 8))) {
    throw util::DecodeError("checkpoint recording: implausible snapshot counts");
  }
  if (rec.interval == 0) {
    throw util::DecodeError("checkpoint recording: zero interval");
  }
  rec.cycles = unpackWords(d.str("cycles"), count, "checkpoint cycles");
  const std::string words = d.str("snapWords");
  if (words.size() != count * stateWords * 8) {
    throw util::DecodeError("checkpoint recording: snapshot byte count mismatch");
  }
  rec.snapWords.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    rec.snapWords[i] = unpackWords(
        std::string_view(words).substr(i * stateWords * 8, stateWords * 8), stateWords,
        "checkpoint snapshot");
  }
  d.finish();
  return rec;
}

}  // namespace xlv::analysis
