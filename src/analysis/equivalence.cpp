#include "analysis/equivalence.h"

#include <algorithm>

#include "abstraction/tlm_model.h"
#include "rtl/kernel.h"

namespace xlv::analysis {

using abstraction::TlmIpModel;
using abstraction::TlmModelConfig;

namespace {

template <class L, class R>
EquivalenceReport compareModels(L& l, R& r, const ir::Design& lhs, const ir::Design& rhs,
                                const Testbench& tb, const EquivalenceConfig& cfg,
                                const std::vector<std::string>& ignore);

void record(EquivalenceReport& rep, const EquivalenceConfig& cfg, std::uint64_t cycle,
            const std::string& name, std::string lhs, std::string rhs) {
  rep.equivalent = false;
  Divergence d{cycle, name, std::move(lhs), std::move(rhs)};
  if (!rep.firstDivergence) rep.firstDivergence = d;
  if (static_cast<int>(rep.divergences.size()) < cfg.maxDivergences) {
    rep.divergences.push_back(std::move(d));
  }
}

bool comparable(const ir::Design& d, ir::SymbolId id, CompareScope scope) {
  const auto& s = d.symbol(id);
  if (s.isClock() || s.kind == ir::SymKind::Array) return false;
  if (scope == CompareScope::Outputs) return s.dir == ir::PortDir::Out;
  return true;
}

}  // namespace

EquivalenceReport checkRtlVsTlm(const ir::Design& design, const Testbench& tb,
                                const EquivalenceConfig& cfg) {
  EquivalenceReport rep;
  rtl::RtlSimulator<hdt::FourState> rtlSim(
      design, rtl::KernelConfig{cfg.mainPeriodPs, cfg.hfRatio, 100000});
  TlmIpModel<hdt::FourState> tlmSim(design, TlmModelConfig{cfg.hfRatio, false});

  // Separate driver sessions for the two engines, same stimulus id: a
  // stateful (makeDriver-only) testbench replays identical inputs into both.
  const DriveFn rtlDrive = tb.driverForTask(0);
  const DriveFn tlmDrive = tb.driverForTask(0);
  rtlSim.setStimulus([&](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
    rtlDrive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });

  for (std::uint64_t c = 0; c < tb.cycles; ++c) {
    rtlSim.runCycles(1);
    tlmDrive(c, [&](const std::string& n, std::uint64_t v) { tlmSim.setInputByName(n, v); });
    tlmSim.scheduler();
    for (std::size_t i = 0; i < design.symbols.size(); ++i) {
      const auto id = static_cast<ir::SymbolId>(i);
      if (!comparable(design, id, cfg.scope)) continue;
      if (!rtlSim.value(id).identical(tlmSim.value(id))) {
        record(rep, cfg, c, design.symbols[i].name, rtlSim.value(id).toString(),
               tlmSim.value(id).toString());
        if (static_cast<int>(rep.divergences.size()) >= cfg.maxDivergences) {
          rep.cyclesCompared = c + 1;
          return rep;
        }
      }
    }
    ++rep.cyclesCompared;
  }
  return rep;
}

EquivalenceReport checkTlmVsTlm(const ir::Design& lhs, const ir::Design& rhs,
                                const Testbench& tb, const EquivalenceConfig& cfg,
                                const std::vector<std::string>& ignore) {
  TlmIpModel<hdt::FourState> l(lhs, TlmModelConfig{cfg.hfRatio, false});
  // The rhs may lack an HF clock even when lhs has one (clean vs counter-
  // augmented): fall back to a single-clock schedule for it.
  const int rhsRatio = rhs.hfClock != ir::kNoSymbol ? cfg.hfRatio : 0;
  TlmIpModel<hdt::FourState> r(rhs, TlmModelConfig{rhsRatio, false});
  return compareModels(l, r, lhs, rhs, tb, cfg, ignore);
}

EquivalenceReport checkCleanVsInjected(const ir::Design& clean,
                                       const mutation::InjectedDesign& injected,
                                       const Testbench& tb, const EquivalenceConfig& cfg) {
  TlmIpModel<hdt::FourState> l(clean, TlmModelConfig{cfg.hfRatio, false});
  const int rhsRatio = injected.design.hfClock != ir::kNoSymbol ? cfg.hfRatio : 0;
  TlmIpModel<hdt::FourState> r(injected, TlmModelConfig{rhsRatio, false});
  // ADAM tmp variables exist only on the injected side; exclude by name.
  std::vector<std::string> ignore;
  for (const auto& m : injected.mutants) {
    ignore.push_back(injected.design.symbol(m.tmpVar).name);
  }
  return compareModels(l, r, clean, injected.design, tb, cfg, ignore);
}

namespace {

template <class L, class R>
EquivalenceReport compareModels(L& l, R& r, const ir::Design& lhs, const ir::Design& rhs,
                                const Testbench& tb, const EquivalenceConfig& cfg,
                                const std::vector<std::string>& ignore) {
  EquivalenceReport rep;
  auto ignored = [&](const std::string& n) {
    return std::find(ignore.begin(), ignore.end(), n) != ignore.end();
  };

  // Names compared: intersection of both designs' comparable symbols.
  std::vector<std::pair<ir::SymbolId, ir::SymbolId>> pairs;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < lhs.symbols.size(); ++i) {
    const auto id = static_cast<ir::SymbolId>(i);
    if (!comparable(lhs, id, cfg.scope)) continue;
    if (ignored(lhs.symbols[i].name)) continue;
    const ir::SymbolId other = rhs.findSymbol(lhs.symbols[i].name);
    if (other == ir::kNoSymbol || !comparable(rhs, other, cfg.scope)) continue;
    pairs.emplace_back(id, other);
    names.push_back(lhs.symbols[i].name);
  }

  // One driver session per model, same stimulus id (see checkRtlVsTlm).
  const DriveFn lDrive = tb.driverForTask(0);
  const DriveFn rDrive = tb.driverForTask(0);
  auto driveInto = [&](const DriveFn& drive, std::uint64_t c, auto& model) {
    drive(c, [&](const std::string& n, std::uint64_t v) {
      if (model.design().findSymbol(n) != ir::kNoSymbol) model.setInputByName(n, v);
    });
  };

  for (std::uint64_t c = 0; c < tb.cycles; ++c) {
    driveInto(lDrive, c, l);
    driveInto(rDrive, c, r);
    l.scheduler();
    r.scheduler();
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const auto [li, ri] = pairs[k];
      if (!l.value(li).identical(r.value(ri))) {
        record(rep, cfg, c, names[k], l.value(li).toString(), r.value(ri).toString());
        if (static_cast<int>(rep.divergences.size()) >= cfg.maxDivergences) {
          rep.cyclesCompared = c + 1;
          return rep;
        }
      }
    }
    ++rep.cyclesCompared;
  }
  return rep;
}

}  // namespace

}  // namespace xlv::analysis
