// Mutation analysis of sensor-augmented TLM models (paper Section 7).
//
// For each injected mutant, the injected TLM model (with exactly that mutant
// active) is simulated against the golden (non-injected) TLM model under the
// same testbench. Per mutant we classify:
//
//   * killed      — any top-level output differed in any cycle (the sensor
//                   outputs are part of the augmented IP's interface, so a
//                   raised error flag kills the mutant, as in the paper);
//   * detected    — the sensor at the mutant's endpoint observed the delay
//                   (Razor: E raised; Counter: MEAS_VAL != 0);
//   * errorRisen  — the sensor *notified* an error (Razor: E raised;
//                   Counter: OUT_OK deasserted, i.e. measured delay above
//                   the LUT threshold — delays below it are tolerable);
//   * corrected   — Razor only: during every error cycle, the recovery
//                   output q presented the golden endpoint value of the
//                   previous cycle (the paper's "correction of output values
//                   with some clock cycles of delay").
//
// The mutation score is killed / total (all delay mutants are
// non-equivalent by construction when the testbench toggles the monitored
// registers).
//
// Execution model: the analysis is a mutation *campaign*. The golden trace
// is recorded once and shared read-only; the injected design is compiled
// and levelized once into a shared TlmModelLayout; then one independent
// task per mutant instantiates a private TlmIpModel session from the shared
// layout and simulates it against the trace. Tasks are scheduled by the
// campaign executor (campaign/executor.h); results land in pre-assigned
// slots (merge in task-id order), so the report is bit-identical to the
// serial path — excluding the timing fields — at any thread count, and
// threads = 1 is byte-for-byte today's serial flow.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "abstraction/native_backend.h"
#include "abstraction/tlm_model.h"
#include "analysis/checkpoint_cache.h"
#include "analysis/testbench.h"
#include "insertion/insertion.h"
#include "mutation/adam.h"

namespace xlv::analysis {

/// Simulation engine for every run of a campaign (golden recording,
/// checkpoint recording, per-mutant co-simulations). The two engines are
/// bit-identical — the conformance suite pins sameResults across them — so
/// the choice is purely a wall-time knob.
enum class SimBackend {
  /// Defer to the XLV_BACKEND environment variable ("native" or
  /// "interpreter"); interpreter when unset.
  Auto = 0,
  /// The in-process ScalarMachine interpreter (always available).
  Interpreter = 1,
  /// Emitted C++ compiled by the system compiler and dlopen'd
  /// (abstraction/native_backend.h). Falls back to the interpreter when no
  /// toolchain is available or the compile fails (warned once per design).
  Native = 2,
};

/// Canonical names ("auto" / "interpreter" / "native") — the CLI flag and
/// serialization vocabulary.
const char* simBackendName(SimBackend b) noexcept;
/// Inverse of simBackendName; throws std::invalid_argument on anything else.
SimBackend simBackendFromName(std::string_view name);
/// Resolve Auto against the XLV_BACKEND environment variable (one env read
/// per call; campaigns resolve once at prepare time).
SimBackend resolveSimBackend(SimBackend requested) noexcept;
/// Resolve a batch size: values >= 1 pass through; 0 defers to the
/// XLV_BATCH environment variable, defaulting to 1 (no batching).
int resolveBatchSize(int requested) noexcept;

struct MutantResult {
  int id = -1;
  std::string endpoint;
  mutation::MutantKind kind = mutation::MutantKind::MinDelay;
  int deltaTicks = 0;
  bool killed = false;
  bool detected = false;
  bool errorRisen = false;
  bool corrected = false;       ///< meaningful only when correctionChecked
  bool correctionChecked = false;
  std::uint64_t measuredDelay = 0;  ///< Counter: max MEAS_VAL over the run

  /// Full-field equality — MutantResult carries no timing, so this is the
  /// per-mutant bit-identity check the determinism tests and benches share.
  bool operator==(const MutantResult&) const = default;
};

/// Cycle ledger of one mutant co-simulation (out-parameter of
/// simulateMutant): how many scheduler transactions actually ran versus how
/// many the divergence-driven fast path proved unnecessary (checkpoint
/// fast-forward over the pre-divergence prefix plus verdict-saturation
/// early exit over the tail). simulated + skipped == the testbench length.
struct MutantSimStats {
  std::uint64_t cyclesSimulated = 0;
  std::uint64_t cyclesSkipped = 0;
};

struct AnalysisReport {
  std::vector<MutantResult> results;
  std::uint64_t cyclesPerRun = 0;
  /// Mutant-campaign cycle ledger: scheduler transactions actually executed
  /// by the per-mutant co-simulations (including the once-per-campaign
  /// checkpoint recording run, charged here because it exists only to serve
  /// the mutant loop) versus transactions the divergence-driven fast path
  /// skipped. Under XLV_REFERENCE_SIM=1, cyclesSkipped is 0 and
  /// cyclesSimulated == results * cyclesPerRun. Mutants served from the
  /// result cache contribute to neither (like simSeconds). Not part of
  /// sameResults — a ledger, not a verdict.
  std::uint64_t cyclesSimulated = 0;
  std::uint64_t cyclesSkipped = 0;
  /// Simulation work: sum of per-run wall times (golden + every injected
  /// run). Equals wallSeconds on one thread, exceeds it under parallel
  /// execution. Per-run times are wall clock, so oversubscription (threads
  /// beyond available cores) inflates this with timeslice waits.
  double simSeconds = 0.0;
  /// Elapsed wall time of the whole analysis (what a user waits for).
  double wallSeconds = 0.0;
  /// Golden-trace recording time charged to this analysis: the actual
  /// recording when this run performed it, exactly 0 on a cache hit (a
  /// waiter blocked on another task's in-flight recording is not charged —
  /// its wait lands in wallSeconds). The component the cache saves;
  /// thread-count independent in meaning.
  double goldenSeconds = 0.0;
  /// True when the golden trace came from the process-wide cache
  /// (AnalysisConfig::useGoldenCache) instead of a fresh recording.
  bool goldenFromCache = false;
  /// True when the golden trace was loaded from the cross-process artifact
  /// store (util/artifact_store.h) rather than recorded or found in memory.
  bool goldenFromDisk = false;
  /// Mutant results served from the per-mutant result cache
  /// (analysis/mutant_cache.h, AnalysisConfig::useMutantCache) instead of a
  /// fresh co-simulation. Equal to results.size() on a fully warm run —
  /// the "zero re-simulations" ledger the variant-sweep tests assert.
  int mutantCacheHits = 0;
  int threadsUsed = 1;
  /// Native-backend ledger: shared-object compiles this analysis performed
  /// versus libraries served from the in-process or artifact-store cache.
  /// Both zero on the interpreter path (and when the toolchain is missing —
  /// the silent-fallback case the CLI's --require-native flag turns into a
  /// hard error). Ledgers, not verdicts: excluded from sameResults.
  int nativeCompiles = 0;
  int nativeCacheHits = 0;
  /// Mutants whose fresh co-simulation ran lock-step in a batch of two or
  /// more live members against one shared stimulus replay
  /// (AnalysisConfig::batch). Cache-served and fully-skipped mutants do not
  /// count; 0 when batching is off.
  int batchedMutants = 0;

  /// Deterministic-content equality: per-mutant results and cycle budget,
  /// ignoring the timing/threading/cache fields. The single comparator
  /// behind every "bit-identical across thread counts / cache modes" check.
  bool sameResults(const AnalysisReport& other) const noexcept {
    return cyclesPerRun == other.cyclesPerRun && results == other.results;
  }

  int total() const noexcept { return static_cast<int>(results.size()); }
  int countKilled() const noexcept;
  int countRisen() const noexcept;
  int countDetected() const noexcept;
  /// Percentages as reported in Table 5.
  double killedPct() const noexcept;
  double risenPct() const noexcept;
  /// Corrected percentage over correction-checked mutants; -1 when the
  /// sensor has no correction capability ("n.a." in Table 5).
  double correctedPct() const noexcept;
  double mutationScorePct() const noexcept { return killedPct(); }
};

struct AnalysisConfig {
  int hfRatio = 0;  ///< dual-clock scheduler ratio for Counter designs
  insertion::SensorKind sensorKind = insertion::SensorKind::Razor;
  /// Drive the Razor recovery input high (named port, ignored if absent).
  std::string recoveryPort = "recovery_en";
  /// Worker threads for the per-mutant campaign: 1 = serial (today's
  /// behavior), 0 = auto (XLV_THREADS env override, else hardware
  /// concurrency), n > 1 = exactly n.
  int threads = 1;
  /// Stimulus identity for stateful testbenches: every run (golden and each
  /// mutant) uses a fresh driver from Testbench::driverForTask(stimulusId),
  /// so all runs replay the identical stimulus from independent sessions.
  std::uint64_t stimulusId = 0;
  /// Share the golden trace through the process-wide cache
  /// (analysis/golden_cache.h): analyses keyed identically — same design
  /// identity, endpoints, testbench, cycles, hfRatio — reuse one recording.
  /// The shared trace is immutable, so the report stays bit-identical with
  /// the cache on or off; only goldenSeconds/simSeconds shrink on a hit.
  bool useGoldenCache = false;
  /// Reuse per-mutant results through the process-wide cache
  /// (analysis/mutant_cache.h): mutants whose (design identity, spec,
  /// testbench identity) agree — e.g. the same mutant under another
  /// mutant-set variant, or a re-run of an identical analysis — skip the
  /// co-simulation. Ids are fixed up per injected set, so the report stays
  /// bit-identical with the cache on or off.
  bool useMutantCache = false;
  /// Simulate only injected-mutant indices [mutantBegin, mutantEnd), clamped
  /// to the injected set; mutantEnd == 0 means "to the end". The report's
  /// results are exactly that subrange in index order with their global ids,
  /// so concatenating adjacent subrange reports reproduces the full run —
  /// the contract process-level shard fragments rely on.
  std::size_t mutantBegin = 0;
  std::size_t mutantEnd = 0;
  /// Simulation engine for every run of this campaign (golden recording,
  /// checkpoints, mutant co-simulations). Auto defers to XLV_BACKEND.
  /// Results are bit-identical across backends; only timing ledgers move.
  SimBackend backend = SimBackend::Auto;
  /// Mutants per co-simulation task: K sessions march lock-step against ONE
  /// shared stimulus replay, amortizing the testbench driver across the
  /// batch. 1 = today's one-mutant-per-task behavior; 0 defers to XLV_BATCH
  /// (default 1). Results and per-mutant cycle ledgers are bit-identical at
  /// any K — members fast-forward and saturate individually.
  int batch = 0;
};

/// Golden trajectory: per cycle, the output-port values and the monitored
/// endpoint register values (for the correction check). Recorded once per
/// analysis and shared read-only across all mutant tasks.
///
/// v3 additionally records, per sensor, the first cycle a mutant at that
/// endpoint may NOT be fast-forwarded past: the minimum of (a) the first
/// cycle the endpoint register's committed value changes (full value+unknown
/// planes — a delay mutant is behaviorally transparent until its target's
/// first value-changing commit, because a no-change commit is phase
/// invariant) and (b) the first cycle the golden run itself trips one of the
/// sensor-observation predicates the mutant loop evaluates (E == 1,
/// MEAS_VAL != 0, OUT_OK == 0) — before that cycle the mutant run's state is
/// bit-identical to the golden run's, so the skipped prefix provably
/// contributes nothing to the MutantResult. A value of outputs.size() means
/// the whole run is quiet for that endpoint (the mutant is transparent end
/// to end and needs no simulation at all).
struct GoldenTrace {
  std::vector<std::vector<std::uint64_t>> outputs;    // [cycle][outIdx]
  std::vector<std::vector<std::uint64_t>> endpoints;  // [cycle][sensorIdx]
  std::vector<std::uint64_t> firstActivity;           // [sensorIdx]
};

/// Record the golden trajectory on the backend cfg.backend resolves to
/// (native falls back to the interpreter when unavailable). `nativeStats`,
/// when non-null, receives the native-library compile/cache ledger of this
/// recording.
template <class P>
GoldenTrace recordGoldenTrace(const ir::Design& golden,
                              const std::vector<insertion::InsertedSensor>& sensors,
                              const Testbench& tb, const AnalysisConfig& cfg,
                              abstraction::NativeUseStats* nativeStats = nullptr);

/// True when the XLV_REFERENCE_SIM environment variable is exactly "1":
/// every mutant replays the full testbench from reset (no checkpoint
/// fast-forward, no verdict-saturation early exit). The reference path the
/// conformance suite and the CI Release leg diff the fast path against;
/// results are bit-identical either way, only the cycle ledgers move.
bool referenceSimMode() noexcept;

/// Campaign checkpoint store: periodic state snapshots of the injected
/// layout simulated with NO active mutant (which, by mutant transparency,
/// replays the golden trajectory), letting each mutant task restore the
/// last checkpoint at or before its fast-forward limit instead of
/// re-simulating from reset. Recorded lazily, exactly once per campaign, by
/// the first task whose limit clears the checkpoint interval — a campaign
/// whose mutants all come from the result cache (or all diverge in the
/// first interval) never pays for it. Snapshots are layout-specific session
/// state, so they live in the campaign context, not in the cross-variant
/// golden-trace cache.
struct CampaignCheckpoints {
  std::once_flag once;
  /// The recording (analysis/checkpoint_cache.h), in the engine-neutral
  /// snapshot word layout so interpreter and native sessions restore the
  /// same bytes. Null until the call_once completed; possibly shared with
  /// other campaigns through the checkpoint cache.
  std::shared_ptr<const CheckpointRecording> rec;
  /// True when `rec` was served by the cross-campaign cache (memory or
  /// artifact store): its recordedCycles were charged by the campaign that
  /// recorded it, so this one charges 0 (a ledger, like goldenSeconds).
  bool fromCache = false;
  std::atomic<bool> recorded{false};
};

/// The shared read-only context of one mutation campaign: everything a
/// per-mutant task needs that is derived once, not per mutant.
struct MutationCampaignContext {
  abstraction::TlmModelLayoutPtr layout;  ///< injected design, compiled once
  /// Immutable, possibly cache-shared across analyses (never null after
  /// prepareMutationCampaign).
  std::shared_ptr<const GoldenTrace> gold;
  std::vector<insertion::InsertedSensor> sensors;
  Testbench tb;
  AnalysisConfig cfg;
  bool hasRecovery = false;
  /// Recovery port symbol in the injected design (kNoSymbol when absent),
  /// resolved once so the cycle loop never re-hashes the port name.
  ir::SymbolId recoverySym = ir::kNoSymbol;
  double goldenSeconds = 0.0;  ///< time spent obtaining the trace
  bool goldenFromCache = false;
  bool goldenFromDisk = false;  ///< trace loaded from the artifact store
  /// The golden-trace key of this campaign (also the per-mutant cache key
  /// prefix); empty when neither cache is enabled.
  std::string goldenKey;
  /// Snapshot of referenceSimMode() at prepare time (one env read per
  /// campaign, every task agrees on the mode).
  bool referenceSim = false;
  /// Cycle stride between checkpoints (>= 1; ~1/16 of the testbench).
  std::uint64_t checkpointInterval = 1;
  /// Lazily recorded checkpoint store (never null after prepare; shared so
  /// the context stays movable).
  std::shared_ptr<CampaignCheckpoints> checkpoints;
  /// Resolved simulation engine: the dlopen'd library every campaign run
  /// shares (null = interpreter, either by choice or by fallback).
  abstraction::NativeLibraryPtr nativeLib;
  /// Resolved batch size (>= 1; AnalysisConfig::batch after XLV_BATCH).
  int batch = 1;
  /// Native-library acquisition ledger of prepare (golden recording +
  /// injected layout), surfaced on the report.
  int nativeCompiles = 0;
  int nativeCacheHits = 0;
};

/// Build the shared context (golden trace + compiled injected layout).
template <class P>
MutationCampaignContext prepareMutationCampaign(
    const ir::Design& golden, const mutation::InjectedDesign& injected,
    const std::vector<insertion::InsertedSensor>& sensors, const Testbench& tb,
    const AnalysisConfig& cfg);

/// One campaign task: simulate mutant `mutantIndex` on a private session
/// cloned from the shared layout. Thread-safe for distinct indices (the
/// lazy checkpoint recording serializes through the context's call_once).
///
/// Fast path (default): the task restores the last campaign checkpoint at
/// or before the mutant's fast-forward limit (GoldenTrace::firstActivity —
/// the prefix where the mutant is provably transparent), then stops the
/// cycle loop as soon as the verdict saturates — every MutantResult field
/// is sticky or structurally pinned, so later cycles cannot change it (see
/// the saturation predicate in mutation_analysis.cpp). Under
/// XLV_REFERENCE_SIM=1 the full testbench replays from reset. Both paths
/// return bit-identical results; `stats`, when non-null, receives the
/// executed-vs-skipped cycle ledger.
template <class P>
MutantResult simulateMutant(const MutationCampaignContext& ctx, int mutantIndex,
                            MutantSimStats* stats = nullptr);

/// Run the full analysis: one golden run plus one injected run per mutant,
/// scheduled on cfg.threads workers (see AnalysisConfig::threads).
template <class P>
AnalysisReport analyzeMutations(const ir::Design& golden,
                                const mutation::InjectedDesign& injected,
                                const std::vector<insertion::InsertedSensor>& sensors,
                                const Testbench& tb, const AnalysisConfig& cfg);

// Explicit instantiations are provided for both value policies.
extern template GoldenTrace recordGoldenTrace<hdt::FourState>(
    const ir::Design&, const std::vector<insertion::InsertedSensor>&, const Testbench&,
    const AnalysisConfig&, abstraction::NativeUseStats*);
extern template GoldenTrace recordGoldenTrace<hdt::TwoState>(
    const ir::Design&, const std::vector<insertion::InsertedSensor>&, const Testbench&,
    const AnalysisConfig&, abstraction::NativeUseStats*);
extern template MutationCampaignContext prepareMutationCampaign<hdt::FourState>(
    const ir::Design&, const mutation::InjectedDesign&,
    const std::vector<insertion::InsertedSensor>&, const Testbench&, const AnalysisConfig&);
extern template MutationCampaignContext prepareMutationCampaign<hdt::TwoState>(
    const ir::Design&, const mutation::InjectedDesign&,
    const std::vector<insertion::InsertedSensor>&, const Testbench&, const AnalysisConfig&);
extern template MutantResult simulateMutant<hdt::FourState>(const MutationCampaignContext&,
                                                            int, MutantSimStats*);
extern template MutantResult simulateMutant<hdt::TwoState>(const MutationCampaignContext&,
                                                           int, MutantSimStats*);
extern template AnalysisReport analyzeMutations<hdt::FourState>(
    const ir::Design&, const mutation::InjectedDesign&,
    const std::vector<insertion::InsertedSensor>&, const Testbench&, const AnalysisConfig&);
extern template AnalysisReport analyzeMutations<hdt::TwoState>(
    const ir::Design&, const mutation::InjectedDesign&,
    const std::vector<insertion::InsertedSensor>&, const Testbench&, const AnalysisConfig&);

/// Generate the Table 5 mutant sets.
/// Razor versions: one MinDelay plus one MaxDelay mutant per sensor.
std::vector<mutation::MutantSpec> razorMutantSet(
    const std::vector<insertion::InsertedSensor>& sensors);
/// Counter versions: three DeltaDelay mutants per sensor, sized from the
/// endpoint's STA arrival: tick = clamp(round(R * arrival/period * f), 1, R)
/// for f in {0.5, 1.0, 1.5} — modeling nominal, derated and worst-case
/// lateness of that path.
std::vector<mutation::MutantSpec> counterMutantSet(
    const std::vector<insertion::InsertedSensor>& sensors, double clockPeriodPs, int hfRatio);

}  // namespace xlv::analysis
