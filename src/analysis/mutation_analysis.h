// Mutation analysis of sensor-augmented TLM models (paper Section 7).
//
// For each injected mutant, the injected TLM model (with exactly that mutant
// active) is simulated against the golden (non-injected) TLM model under the
// same testbench. Per mutant we classify:
//
//   * killed      — any top-level output differed in any cycle (the sensor
//                   outputs are part of the augmented IP's interface, so a
//                   raised error flag kills the mutant, as in the paper);
//   * detected    — the sensor at the mutant's endpoint observed the delay
//                   (Razor: E raised; Counter: MEAS_VAL != 0);
//   * errorRisen  — the sensor *notified* an error (Razor: E raised;
//                   Counter: OUT_OK deasserted, i.e. measured delay above
//                   the LUT threshold — delays below it are tolerable);
//   * corrected   — Razor only: during every error cycle, the recovery
//                   output q presented the golden endpoint value of the
//                   previous cycle (the paper's "correction of output values
//                   with some clock cycles of delay").
//
// The mutation score is killed / total (all delay mutants are
// non-equivalent by construction when the testbench toggles the monitored
// registers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "abstraction/tlm_model.h"
#include "analysis/testbench.h"
#include "insertion/insertion.h"
#include "mutation/adam.h"

namespace xlv::analysis {

struct MutantResult {
  int id = -1;
  std::string endpoint;
  mutation::MutantKind kind = mutation::MutantKind::MinDelay;
  int deltaTicks = 0;
  bool killed = false;
  bool detected = false;
  bool errorRisen = false;
  bool corrected = false;       ///< meaningful only when correctionChecked
  bool correctionChecked = false;
  std::uint64_t measuredDelay = 0;  ///< Counter: max MEAS_VAL over the run
};

struct AnalysisReport {
  std::vector<MutantResult> results;
  std::uint64_t cyclesPerRun = 0;
  double simSeconds = 0.0;  ///< wall time of all runs (golden + injected)

  int total() const noexcept { return static_cast<int>(results.size()); }
  int countKilled() const noexcept;
  int countRisen() const noexcept;
  int countDetected() const noexcept;
  /// Percentages as reported in Table 5.
  double killedPct() const noexcept;
  double risenPct() const noexcept;
  /// Corrected percentage over correction-checked mutants; -1 when the
  /// sensor has no correction capability ("n.a." in Table 5).
  double correctedPct() const noexcept;
  double mutationScorePct() const noexcept { return killedPct(); }
};

struct AnalysisConfig {
  int hfRatio = 0;  ///< dual-clock scheduler ratio for Counter designs
  insertion::SensorKind sensorKind = insertion::SensorKind::Razor;
  /// Drive the Razor recovery input high (named port, ignored if absent).
  std::string recoveryPort = "recovery_en";
};

/// Run the full analysis: one golden run plus one injected run per mutant.
template <class P>
AnalysisReport analyzeMutations(const ir::Design& golden,
                                const mutation::InjectedDesign& injected,
                                const std::vector<insertion::InsertedSensor>& sensors,
                                const Testbench& tb, const AnalysisConfig& cfg);

// Explicit instantiations are provided for both value policies.
extern template AnalysisReport analyzeMutations<hdt::FourState>(
    const ir::Design&, const mutation::InjectedDesign&,
    const std::vector<insertion::InsertedSensor>&, const Testbench&, const AnalysisConfig&);
extern template AnalysisReport analyzeMutations<hdt::TwoState>(
    const ir::Design&, const mutation::InjectedDesign&,
    const std::vector<insertion::InsertedSensor>&, const Testbench&, const AnalysisConfig&);

/// Generate the Table 5 mutant sets.
/// Razor versions: one MinDelay plus one MaxDelay mutant per sensor.
std::vector<mutation::MutantSpec> razorMutantSet(
    const std::vector<insertion::InsertedSensor>& sensors);
/// Counter versions: three DeltaDelay mutants per sensor, sized from the
/// endpoint's STA arrival: tick = clamp(round(R * arrival/period * f), 1, R)
/// for f in {0.5, 1.0, 1.5} — modeling nominal, derated and worst-case
/// lateness of that path.
std::vector<mutation::MutantSpec> counterMutantSet(
    const std::vector<insertion::InsertedSensor>& sensors, double clockPeriodPs, int hfRatio);

}  // namespace xlv::analysis
