#include "sta/sta.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "util/prng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace xlv::sta {

namespace {

using ir::Design;
using ir::Expr;
using ir::ExprKind;
using ir::kNoSymbol;
using ir::Stmt;
using ir::StmtKind;
using ir::SymbolId;

/// Partial arrival: picoseconds (underated), logic levels, and the launching
/// startpoint of the max path.
struct Arrival {
  double ps = 0.0;
  double levels = 0.0;
  SymbolId start = kNoSymbol;
};

Arrival maxArrival(const Arrival& a, const Arrival& b) { return a.ps >= b.ps ? a : b; }

/// One assignment reaching a combinational signal, with the conditions
/// guarding it (each contributes a mux stage).
struct DriveArc {
  const Expr* value = nullptr;
  const Expr* index = nullptr;  // for array writes
  std::vector<const Expr*> conds;
};

class ConeAnalyzer {
 public:
  ConeAnalyzer(const Design& d, const TechLibrary& lib) : d_(d), lib_(lib) {
    buildDrivers();
  }

  /// Arrival of the D-input cone of one endpoint assignment.
  Arrival arcArrival(const DriveArc& arc) {
    Arrival a = exprArrival(*arc.value);
    if (arc.index != nullptr) {
      Arrival ia = exprArrival(*arc.index);
      ia.levels += lib_.arrayDecodeLevels(8);
      ia.ps += lib_.arrayDecodeLevels(8) * lib_.levelDelayPs();
      a = maxArrival(a, ia);
    }
    for (const Expr* c : arc.conds) a = maxArrival(a, exprArrival(*c));
    const double muxes = static_cast<double>(arc.conds.size()) * lib_.muxLevels();
    a.ps += muxes * lib_.levelDelayPs();
    a.levels += muxes;
    return a;
  }

  /// Collect endpoint arcs from every synchronous process: target -> arcs.
  std::unordered_map<SymbolId, std::vector<DriveArc>> endpointArcs() const {
    std::unordered_map<SymbolId, std::vector<DriveArc>> out;
    for (const auto& p : d_.processes) {
      if (!p.isSync) continue;
      std::vector<const Expr*> conds;
      collectArcs(*p.body, conds, [&](SymbolId target, DriveArc arc) {
        out[target].push_back(std::move(arc));
      });
    }
    return out;
  }

  /// Output ports driven combinationally are endpoints too.
  std::unordered_map<SymbolId, std::vector<DriveArc>> outputArcs() const {
    std::unordered_map<SymbolId, std::vector<DriveArc>> out;
    for (SymbolId o : d_.outputs) {
      if (d_.isRegister[static_cast<std::size_t>(o)]) continue;  // already a register endpoint
      auto it = drivers_.find(o);
      if (it == drivers_.end()) continue;
      out[o] = it->second;
    }
    return out;
  }

  Arrival exprArrival(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Const:
        return {};
      case ExprKind::Ref:
        return refArrival(e.sym);
      case ExprKind::ArrayRef: {
        Arrival idx = exprArrival(*e.a);
        const double dec = lib_.arrayDecodeLevels(d_.symbol(e.sym).arraySize);
        Arrival best{idx.ps + dec * lib_.levelDelayPs(), idx.levels + dec, idx.start};
        if (best.start == kNoSymbol) best.start = e.sym;  // constant index: path starts at the array
        return best;
      }
      case ExprKind::Unary: {
        Arrival a = exprArrival(*e.a);
        const double lv = lib_.levelsOf(e.uop, e.a->type.width);
        return {a.ps + lv * lib_.levelDelayPs(), a.levels + lv, a.start};
      }
      case ExprKind::Binary: {
        Arrival a = maxArrival(exprArrival(*e.a), exprArrival(*e.b));
        const double lv = lib_.levelsOf(e.bop, std::max(e.a->type.width, e.b->type.width));
        return {a.ps + lv * lib_.levelDelayPs(), a.levels + lv, a.start};
      }
      case ExprKind::Slice:
      case ExprKind::Resize:
      case ExprKind::Sext:
        return exprArrival(*e.a);
      case ExprKind::Select: {
        Arrival a = maxArrival(exprArrival(*e.a),
                               maxArrival(exprArrival(*e.b), exprArrival(*e.c)));
        const double lv = lib_.muxLevels();
        return {a.ps + lv * lib_.levelDelayPs(), a.levels + lv, a.start};
      }
    }
    return {};
  }

 private:
  void buildDrivers() {
    for (const auto& p : d_.processes) {
      if (p.isSync) continue;
      std::vector<const Expr*> conds;
      collectArcs(*p.body, conds, [&](SymbolId target, DriveArc arc) {
        drivers_[target].push_back(std::move(arc));
      });
    }
  }

  template <typename Sink>
  static void collectArcs(const Stmt& s, std::vector<const Expr*>& conds, const Sink& sink) {
    switch (s.kind) {
      case StmtKind::Assign: {
        DriveArc arc;
        arc.value = s.value.get();
        arc.conds = conds;
        sink(s.target, std::move(arc));
        break;
      }
      case StmtKind::ArrayWrite: {
        DriveArc arc;
        arc.value = s.value.get();
        arc.index = s.index.get();
        arc.conds = conds;
        sink(s.target, std::move(arc));
        break;
      }
      case StmtKind::If:
        conds.push_back(s.value.get());
        if (s.thenS) collectArcs(*s.thenS, conds, sink);
        if (s.elseS) collectArcs(*s.elseS, conds, sink);
        conds.pop_back();
        break;
      case StmtKind::Case:
        conds.push_back(s.value.get());
        for (const auto& arm : s.arms) {
          if (arm.body) collectArcs(*arm.body, conds, sink);
        }
        if (s.defaultArm) collectArcs(*s.defaultArm, conds, sink);
        conds.pop_back();
        break;
      case StmtKind::Block:
        for (const auto& st : s.stmts) collectArcs(*st, conds, sink);
        break;
    }
  }

  Arrival refArrival(SymbolId sym) {
    const auto& s = d_.symbol(sym);
    // Launch points: registers, input ports, clocks (treated as stable).
    if (d_.isRegister[static_cast<std::size_t>(sym)] || s.dir == ir::PortDir::In ||
        s.kind == ir::SymKind::Variable) {
      // Variables written earlier in the same process body are conservative
      // launch-0 references only if they are register-like; treat them as
      // pass-through of their last assignment instead (approximation: use
      // cached combinational arrival when one exists).
      if (s.kind != ir::SymKind::Variable || drivers_.find(sym) == drivers_.end()) {
        return {0.0, 0.0, sym};
      }
    }
    auto memoIt = memo_.find(sym);
    if (memoIt != memo_.end()) return memoIt->second;
    if (visiting_.count(sym) != 0) {
      throw std::runtime_error("sta: combinational loop through signal '" + s.name + "'");
    }
    auto drvIt = drivers_.find(sym);
    if (drvIt == drivers_.end()) {
      // Undriven signal: constant-like, arrival 0, its own startpoint.
      Arrival a{0.0, 0.0, sym};
      memo_[sym] = a;
      return a;
    }
    visiting_.insert(sym);
    Arrival best;
    for (const auto& arc : drvIt->second) {
      Arrival a = exprArrival(*arc.value);
      for (const Expr* c : arc.conds) a = maxArrival(a, exprArrival(*c));
      const double muxes = static_cast<double>(arc.conds.size()) * lib_.muxLevels();
      a.ps += muxes * lib_.levelDelayPs();
      a.levels += muxes;
      best = maxArrival(best, a);
    }
    visiting_.erase(sym);
    memo_[sym] = best;
    return best;
  }

  const Design& d_;
  const TechLibrary& lib_;
  std::unordered_map<SymbolId, std::vector<DriveArc>> drivers_;
  std::unordered_map<SymbolId, Arrival> memo_;
  std::set<SymbolId> visiting_;
};

double derateArrival(const Arrival& a, const StaConfig& cfg) {
  double ps = a.ps * cfg.corner.derate() * TechLibrary::agingDerate(cfg.agingYears) *
              cfg.ocvDerate;
  if (cfg.statistical) {
    ps += cfg.nSigma * cfg.sigmaPerLevelPs * std::sqrt(std::max(a.levels, 0.0));
  }
  return ps;
}

}  // namespace

StaReport analyze(const ir::Design& design, const StaConfig& cfg, const TechLibrary& lib) {
  util::Timer timer;
  ConeAnalyzer cones(design, lib);

  StaReport report;
  report.clockPeriodPs = cfg.clockPeriodPs;
  report.thresholdPs = cfg.effectiveThresholdPs();

  auto addEndpoint = [&](SymbolId target, const std::vector<DriveArc>& arcs) {
    Arrival worst;
    for (const auto& arc : arcs) worst = maxArrival(worst, cones.arcArrival(arc));
    PathRecord rec;
    rec.endpoint = target;
    rec.endpointName = design.symbol(target).name;
    rec.startpoint = worst.start;
    rec.startpointName = worst.start == kNoSymbol ? "-" : design.symbol(worst.start).name;
    rec.arrivalPs = derateArrival(worst, cfg);
    rec.logicLevels = worst.levels;
    rec.slackPs = cfg.clockPeriodPs - cfg.clockUncertaintyPs - cfg.setupTimePs - rec.arrivalPs;
    rec.critical = rec.slackPs < report.thresholdPs;
    report.paths.push_back(std::move(rec));
  };

  // Use an id-ordered traversal for deterministic reports.
  auto arcsByEndpoint = [](auto&& m) {
    std::vector<std::pair<SymbolId, std::vector<DriveArc>>> v(m.begin(), m.end());
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return v;
  };
  for (auto& [sym, arcs] : arcsByEndpoint(cones.endpointArcs())) addEndpoint(sym, arcs);
  for (auto& [sym, arcs] : arcsByEndpoint(cones.outputArcs())) addEndpoint(sym, arcs);

  std::sort(report.paths.begin(), report.paths.end(),
            [](const PathRecord& a, const PathRecord& b) {
              if (a.slackPs != b.slackPs) return a.slackPs < b.slackPs;
              return a.endpointName < b.endpointName;
            });
  report.minSlackPs = report.paths.empty() ? 0.0 : report.paths.front().slackPs;
  if (cfg.spreadFraction >= 0.0 && !report.paths.empty()) {
    const double maxSlack = report.paths.back().slackPs;
    report.thresholdPs =
        report.minSlackPs + cfg.spreadFraction * (maxSlack - report.minSlackPs);
    for (auto& p : report.paths) p.critical = p.slackPs <= report.thresholdPs;
  }
  report.criticalCount = 0;
  for (const auto& p : report.paths) {
    if (p.critical) ++report.criticalCount;
  }
  report.analysisSeconds = timer.seconds();
  return report;
}

namespace {
double exprArea(const ir::Expr& e, const TechLibrary& lib) {
  double a = 0.0;
  switch (e.kind) {
    case ExprKind::Const:
    case ExprKind::Ref:
      return 0.0;
    case ExprKind::ArrayRef:
      return exprArea(*e.a, lib) + 2.0 * e.type.width;  // read mux column
    case ExprKind::Unary:
      return lib.areaGates(e.uop, e.a->type.width) + exprArea(*e.a, lib);
    case ExprKind::Binary:
      a = lib.areaGates(e.bop, std::max(e.a->type.width, e.b->type.width));
      return a + exprArea(*e.a, lib) + exprArea(*e.b, lib);
    case ExprKind::Slice:
    case ExprKind::Resize:
    case ExprKind::Sext:
      return exprArea(*e.a, lib);
    case ExprKind::Select:
      return lib.muxAreaGates(e.type.width) + exprArea(*e.a, lib) + exprArea(*e.b, lib) +
             exprArea(*e.c, lib);
  }
  return a;
}

double stmtArea(const ir::Stmt& s, const TechLibrary& lib) {
  double a = 0.0;
  switch (s.kind) {
    case StmtKind::Assign:
      return exprArea(*s.value, lib) + lib.muxAreaGates(s.value->type.width);
    case StmtKind::ArrayWrite:
      return exprArea(*s.value, lib) + exprArea(*s.index, lib) +
             lib.muxAreaGates(s.value->type.width);
    case StmtKind::If:
      a = exprArea(*s.value, lib);
      if (s.thenS) a += stmtArea(*s.thenS, lib);
      if (s.elseS) a += stmtArea(*s.elseS, lib);
      return a;
    case StmtKind::Case:
      a = exprArea(*s.value, lib);
      for (const auto& arm : s.arms) {
        if (arm.body) a += stmtArea(*arm.body, lib);
      }
      if (s.defaultArm) a += stmtArea(*s.defaultArm, lib);
      return a;
    case StmtKind::Block:
      for (const auto& st : s.stmts) a += stmtArea(*st, lib);
      return a;
  }
  return a;
}
}  // namespace

double estimateAreaGates(const ir::Design& design, const TechLibrary& lib) {
  double gates = lib.ffAreaGates() * design.flipFlopBits();
  for (const auto& p : design.processes) gates += stmtArea(*p.body, lib);
  return gates;
}

MonteCarloReport monteCarlo(const ir::Design& design, const StaConfig& cfg,
                            const MonteCarloConfig& mc, const TechLibrary& lib) {
  // Base: the deterministic nominal analysis (corner/aging derates off — the
  // sampling replaces them for the global axis).
  StaConfig nominal = cfg;
  nominal.statistical = false;
  const StaReport base = analyze(design, nominal, lib);

  const double budget = cfg.clockPeriodPs - cfg.clockUncertaintyPs - cfg.setupTimePs;
  util::Prng rng(mc.seed);
  auto gauss = [&rng]() {
    // Box-Muller on the deterministic generator.
    double u1 = rng.uniform();
    double u2 = rng.uniform();
    if (u1 < 1e-12) u1 = 1e-12;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979 * u2);
  };

  MonteCarloReport report;
  report.samples = mc.samples;
  report.endpoints.reserve(base.paths.size());
  std::vector<util::SampleSet> arrivals(base.paths.size());
  std::vector<int> fails(base.paths.size(), 0);
  int designFails = 0;

  for (int s = 0; s < mc.samples; ++s) {
    const double global = 1.0 + mc.globalSigma * gauss();
    bool anyFail = false;
    for (std::size_t i = 0; i < base.paths.size(); ++i) {
      const auto& p = base.paths[i];
      // Local variation RSS-combines over the path depth.
      const double localSigma =
          mc.localSigmaPerLevel * std::sqrt(std::max(1.0, p.logicLevels));
      const double sample = p.arrivalPs * std::max(0.0, global + localSigma * gauss());
      arrivals[i].add(sample);
      if (sample > budget) {
        ++fails[i];
        anyFail = true;
      }
    }
    if (anyFail) ++designFails;
  }

  for (std::size_t i = 0; i < base.paths.size(); ++i) {
    EndpointYield y;
    y.endpoint = base.paths[i].endpoint;
    y.name = base.paths[i].endpointName;
    y.meanArrivalPs = arrivals[i].mean();
    y.p95ArrivalPs = arrivals[i].count() ? arrivals[i].percentile(0.95) : 0.0;
    y.failProb = static_cast<double>(fails[i]) / mc.samples;
    report.endpoints.push_back(std::move(y));
  }
  std::sort(report.endpoints.begin(), report.endpoints.end(),
            [](const EndpointYield& a, const EndpointYield& b) {
              if (a.failProb != b.failProb) return a.failProb > b.failProb;
              return a.name < b.name;
            });
  report.designYield = 1.0 - static_cast<double>(designFails) / mc.samples;
  return report;
}

std::string formatReport(const StaReport& report, int maxPaths) {
  std::string out;
  out += "STA report: period=" + std::to_string(report.clockPeriodPs) +
         "ps threshold=" + std::to_string(report.thresholdPs) +
         "ps critical=" + std::to_string(report.criticalCount) + "/" +
         std::to_string(report.paths.size()) + "\n";
  int n = 0;
  for (const auto& p : report.paths) {
    if (n++ >= maxPaths) break;
    out += "  " + p.endpointName + " <- " + p.startpointName +
           "  arrival=" + std::to_string(p.arrivalPs) + "ps slack=" +
           std::to_string(p.slackPs) + "ps levels=" + std::to_string(p.logicLevels) +
           (p.critical ? "  CRITICAL" : "") + "\n";
  }
  return out;
}

}  // namespace xlv::sta
