#include "sta/tech_library.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace xlv::sta {

Corner Corner::byName(const std::string& name) {
  if (name == "typical") return typical();
  if (name == "slow") return slow();
  if (name == "fast") return fast();
  throw std::invalid_argument("sta: unknown corner '" + name +
                              "' (expected typical|slow|fast)");
}

Corner Corner::atOperatingPoint(double vdd, double nominalVdd) {
  if (vdd <= 0.0 || nominalVdd <= 0.0) {
    throw std::invalid_argument("sta: operating-point supply must be positive");
  }
  // Alpha-power-law delay scaling: d(V) ~ V / (V - Vth)^alpha, normalized to
  // the nominal supply so the typical corner stays at factor 1.0.
  constexpr double kVth = 0.35;   // 45nm-flavored threshold
  constexpr double kAlpha = 1.3;  // velocity-saturation exponent
  auto delay = [](double v) { return v / std::pow(std::max(v - kVth, 0.05), kAlpha); };
  char name[32];
  std::snprintf(name, sizeof(name), "vf_%.2fv", vdd);
  return {name, 1.0, delay(vdd) / delay(nominalVdd), 1.0};
}

std::vector<Corner> standardCorners() {
  return {Corner::typical(), Corner::slow(), Corner::fast()};
}

namespace {
double log2w(int width) noexcept { return std::log2(static_cast<double>(width < 2 ? 2 : width)); }
}  // namespace

double TechLibrary::levelsOf(ir::BinOp op, int width) const noexcept {
  using ir::BinOp;
  switch (op) {
    case BinOp::And:
    case BinOp::Or:
      return 1.0;
    case BinOp::Xor:
      return 2.0;
    case BinOp::Add:
    case BinOp::Sub:
      return 1.5 * log2w(width) + 2.0;
    case BinOp::Mul:
      return 2.0 * log2w(width) + 4.0;
    case BinOp::Div:
    case BinOp::Mod:
      // Iterative restoring divider, one subtract per bit.
      return static_cast<double>(width) * (1.5 * log2w(width) + 2.0);
    case BinOp::Shl:
    case BinOp::Shr:
    case BinOp::AShr:
      return log2w(width);  // barrel shifter stages
    case BinOp::Eq:
    case BinOp::Ne:
      return log2w(width) + 1.0;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      return log2w(width) + 2.0;
    case BinOp::Concat:
      return 0.0;  // wiring
  }
  return 0.0;
}

double TechLibrary::levelsOf(ir::UnOp op, int width) const noexcept {
  using ir::UnOp;
  switch (op) {
    case UnOp::Not:
      return 0.5;  // inverter
    case UnOp::Neg:
      return 1.5 * log2w(width) + 2.0;  // adder-based
    case UnOp::RedAnd:
    case UnOp::RedOr:
    case UnOp::RedXor:
      return log2w(width);
    case UnOp::BoolNot:
      return log2w(width) + 0.5;  // reduction + inverter
  }
  return 0.0;
}

double TechLibrary::arrayDecodeLevels(int size) const noexcept { return log2w(size); }

double TechLibrary::areaGates(ir::BinOp op, int width) const noexcept {
  using ir::BinOp;
  const double w = width;
  switch (op) {
    case BinOp::And:
    case BinOp::Or:
      return w;
    case BinOp::Xor:
      return 3.0 * w;
    case BinOp::Add:
    case BinOp::Sub:
      return 7.0 * w;
    case BinOp::Mul:
      return 3.5 * w * w;
    case BinOp::Div:
    case BinOp::Mod:
      return 9.0 * w * w;
    case BinOp::Shl:
    case BinOp::Shr:
    case BinOp::AShr:
      return 3.0 * w * log2w(width);  // one mux layer per stage
    case BinOp::Eq:
    case BinOp::Ne:
      return 3.0 * w + w;  // xor plane + reduction
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      return 7.0 * w;  // subtract-based
    case BinOp::Concat:
      return 0.0;
  }
  return 0.0;
}

double TechLibrary::areaGates(ir::UnOp op, int width) const noexcept {
  using ir::UnOp;
  const double w = width;
  switch (op) {
    case UnOp::Not:
      return 0.5 * w;
    case UnOp::Neg:
      return 7.0 * w;
    case UnOp::RedAnd:
    case UnOp::RedOr:
      return w;
    case UnOp::RedXor:
      return 3.0 * w;
    case UnOp::BoolNot:
      return w + 0.5;
  }
  return 0.0;
}

double TechLibrary::agingDerate(double years) noexcept {
  if (years <= 0.0) return 1.0;
  return 1.0 + 0.037 * std::pow(years, 0.2);
}

}  // namespace xlv::sta
