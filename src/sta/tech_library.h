// Technology library: per-operator delay and area models.
//
// This stands in for the 45nm STM standard-cell library + logic synthesis of
// the paper's experimental setup (Table 1 reports gate counts from Synopsys
// DC). Delays are modeled as logic levels times a per-level delay; areas as
// NAND2-equivalent gate counts — the unit the paper uses ("the occupied area
// is equivalent to approximately 352 NAND2 gates").
//
// Rationale for the level counts (width w):
//   * and/or: 1 level; xor: 2 levels (4 NAND2 each);
//   * add/sub: carry-lookahead, ~1.5*log2(w) + 2 levels;
//   * mul: Wallace-tree-like, ~2*log2(w) + 4 levels;
//   * comparisons: log2(w) reduction tree + 1..2;
//   * dynamic shift: log2(w) mux stages (barrel shifter);
//   * select (mux): 1 level; slicing/resizing: pure wiring, 0.
// These do not reproduce any specific cell library; they only need to induce
// a realistic relative ordering of path delays, which is all the insertion
// flow consumes (paper Section 4.2 — the methodology is agnostic of the
// timing engine as long as binning is conservative).
#pragma once

#include <string>
#include <vector>

#include "ir/expr.h"

namespace xlv::sta {

/// A process/voltage/temperature corner: a multiplicative delay derate.
struct Corner {
  std::string name = "typical";
  double processFactor = 1.0;
  double voltageFactor = 1.0;
  double temperatureFactor = 1.0;

  double derate() const noexcept {
    return processFactor * voltageFactor * temperatureFactor;
  }

  static Corner typical() { return {"typical", 1.0, 1.0, 1.0}; }
  /// Slow process, low voltage, high temperature (worst setup corner).
  static Corner slow() { return {"ss_0.95v_125c", 1.12, 1.08, 1.06}; }
  /// Fast process, high voltage, low temperature.
  static Corner fast() { return {"ff_1.15v_m40c", 0.90, 0.94, 0.97}; }

  /// Named-corner lookup ("typical" | "slow" | "fast"); throws
  /// std::invalid_argument on an unknown name. Sweep specs address corners
  /// by name so campaign labels and cache keys stay human-readable.
  static Corner byName(const std::string& name);

  /// A V-f operating-point derate in the style of Table 1: voltage scaling
  /// relative to the library's nominal supply, alpha-power-law delay model
  /// (delay ~ Vdd / (Vdd - Vth)^alpha, alpha ≈ 1.3 at 45nm). Lower supply
  /// → larger factor → earlier critical binning, which is exactly how the
  /// paper tightens monitor insertion at low-voltage points.
  static Corner atOperatingPoint(double vdd, double nominalVdd = 1.05);
};

/// The corner axis the sweep layer offers by default: typical, slow, fast.
std::vector<Corner> standardCorners();

class TechLibrary {
 public:
  /// 45nm-flavored defaults: one logic level = 22 ps, one FF = 6.2 NAND2.
  TechLibrary() = default;
  TechLibrary(double levelDelayPs, double ffAreaGates)
      : levelDelayPs_(levelDelayPs), ffAreaGates_(ffAreaGates) {}

  double levelDelayPs() const noexcept { return levelDelayPs_; }
  double ffAreaGates() const noexcept { return ffAreaGates_; }

  /// Logic depth (in levels) of one operator at the given operand width.
  double levelsOf(ir::BinOp op, int width) const noexcept;
  double levelsOf(ir::UnOp op, int width) const noexcept;
  /// Mux stage inserted by one conditional nesting level.
  double muxLevels() const noexcept { return 1.0; }
  /// Array access decode depth for `size` elements.
  double arrayDecodeLevels(int size) const noexcept;

  double delayPs(ir::BinOp op, int width) const noexcept {
    return levelsOf(op, width) * levelDelayPs_;
  }
  double delayPs(ir::UnOp op, int width) const noexcept {
    return levelsOf(op, width) * levelDelayPs_;
  }

  /// NAND2-equivalent area of one operator at the given width.
  double areaGates(ir::BinOp op, int width) const noexcept;
  double areaGates(ir::UnOp op, int width) const noexcept;
  double muxAreaGates(int width) const noexcept { return 3.0 * width; }

  /// NBTI-style aging derate: delay multiplier after `years` of stress
  /// (power-law drift, ~6% at 10 years).
  static double agingDerate(double years) noexcept;

 private:
  double levelDelayPs_ = 22.0;
  double ffAreaGates_ = 6.2;
};

}  // namespace xlv::sta
