// Static timing analysis over the RTL IR.
//
// This module substitutes for the synthesis + PrimeTime step of the paper's
// flow (Section 4.2 / Table 2). For every register (and output port)
// endpoint it computes the worst-case combinational arrival from the clocked
// startpoints feeding it, derated by the selected PVT corner and an aging
// factor, optionally with a statistical (RSS) variability term. Endpoints
// whose setup slack falls below a threshold are binned critical — the
// locations where delay sensors must be inserted.
//
// The analysis is "static" in the paper's sense: no simulation is involved,
// only a traversal of the design's combinational cones.
#pragma once

#include <string>
#include <vector>

#include "ir/design.h"
#include "sta/tech_library.h"

namespace xlv::sta {

struct StaConfig {
  double clockPeriodPs = 1000.0;
  double setupTimePs = 35.0;
  double clockUncertaintyPs = 20.0;
  /// Endpoints with slack below this are critical. If negative, the
  /// threshold is taken as `thresholdFraction` of the clock period.
  double slackThresholdPs = -1.0;
  double thresholdFraction = 0.18;
  /// Alternative spread-relative binning: when in [0,1], the threshold is
  /// minSlack + spreadFraction * (maxSlack - minSlack). This keeps critical
  /// sets meaningful when the design's arrivals sit far from the clock
  /// period (equivalent to tightening the margin budget, Section 4.2).
  double spreadFraction = -1.0;

  Corner corner = Corner::slow();
  double agingYears = 10.0;
  /// Local on-chip-variation derate applied per path (multiplicative).
  double ocvDerate = 1.05;

  /// Statistical mode: add nSigma * sigmaPerLevel * sqrt(levels) to arrival.
  bool statistical = false;
  double sigmaPerLevelPs = 2.2;
  double nSigma = 3.0;

  double effectiveThresholdPs() const noexcept {
    return slackThresholdPs >= 0.0 ? slackThresholdPs : thresholdFraction * clockPeriodPs;
  }
};

/// Worst path into one endpoint.
struct PathRecord {
  ir::SymbolId endpoint = ir::kNoSymbol;
  std::string endpointName;
  ir::SymbolId startpoint = ir::kNoSymbol;  ///< register/input launching the max path
  std::string startpointName;
  double arrivalPs = 0.0;  ///< derated worst-case data arrival
  double slackPs = 0.0;
  double logicLevels = 0.0;
  bool critical = false;
};

struct StaReport {
  std::vector<PathRecord> paths;  ///< one per endpoint, sorted by ascending slack
  double thresholdPs = 0.0;
  double clockPeriodPs = 0.0;
  int criticalCount = 0;
  double minSlackPs = 0.0;
  double analysisSeconds = 0.0;

  const PathRecord* findEndpoint(ir::SymbolId sym) const {
    for (const auto& p : paths) {
      if (p.endpoint == sym) return &p;
    }
    return nullptr;
  }

  std::vector<PathRecord> criticalPaths() const {
    std::vector<PathRecord> out;
    for (const auto& p : paths) {
      if (p.critical) out.push_back(p);
    }
    return out;
  }
};

/// Run STA on an elaborated design.
StaReport analyze(const ir::Design& design, const StaConfig& cfg,
                  const TechLibrary& lib = TechLibrary{});

/// NAND2-equivalent area of the whole design (combinational operators plus
/// flip-flops) — the Gates (#) column of Table 1.
double estimateAreaGates(const ir::Design& design, const TechLibrary& lib = TechLibrary{});

/// Render a human-readable timing report (bench/table2 uses the structured
/// data; this is for the examples and logs).
std::string formatReport(const StaReport& report, int maxPaths = 10);

// --- Monte-Carlo statistical timing -----------------------------------------
// Extension beyond the paper's deterministic STA: sample-based yield
// analysis with the standard global + local variation decomposition
// (global: correlated process spread; local: per-level OCV, RSS-combined
// over the path depth). Complements StaConfig::statistical's closed-form
// 3-sigma margin.

struct MonteCarloConfig {
  int samples = 2000;
  double globalSigma = 0.05;        ///< correlated process spread (fraction)
  double localSigmaPerLevel = 0.02; ///< local variation per logic level
  std::uint64_t seed = 1;
};

struct EndpointYield {
  ir::SymbolId endpoint = ir::kNoSymbol;
  std::string name;
  double meanArrivalPs = 0.0;
  double p95ArrivalPs = 0.0;
  double failProb = 0.0;  ///< P(arrival > period - setup - uncertainty)
};

struct MonteCarloReport {
  std::vector<EndpointYield> endpoints;  ///< sorted by descending failProb
  double designYield = 1.0;              ///< P(every endpoint meets timing)
  int samples = 0;
};

MonteCarloReport monteCarlo(const ir::Design& design, const StaConfig& cfg,
                            const MonteCarloConfig& mc,
                            const TechLibrary& lib = TechLibrary{});

}  // namespace xlv::sta
