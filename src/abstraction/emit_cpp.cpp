#include "abstraction/emit_cpp.h"

#include <sstream>

namespace xlv::abstraction {

using namespace xlv::ir;

namespace {

std::string cname(const std::vector<Symbol>& syms, SymbolId id) {
  std::string n = syms[static_cast<std::size_t>(id)].name;
  for (auto& c : n) {
    if (c == '.') c = '_';
  }
  return n;
}

std::string vecType(const EmitCppOptions& opts) {
  return opts.twoStateTypes ? "hdt::BitVector" : "hdt::LogicVector";
}

class CppPrinter {
 public:
  CppPrinter(const Design& d, const EmitCppOptions& opts) : d_(d), opts_(opts) {}

  std::string expr(const Expr& e) {
    std::ostringstream os;
    switch (e.kind) {
      case ExprKind::Const:
        os << "V::fromUint(" << e.type.width << ", 0x" << std::hex << e.cval << std::dec << ")";
        break;
      case ExprKind::Ref:
        os << cname(d_.symbols, e.sym);
        break;
      case ExprKind::ArrayRef:
        os << cname(d_.symbols, e.sym) << "[" << expr(*e.a) << ".toUint()]";
        break;
      case ExprKind::Unary: {
        const char* fn = "vec_not";
        switch (e.uop) {
          case UnOp::Not: fn = "vec_not"; break;
          case UnOp::Neg: fn = "vec_neg"; break;
          case UnOp::RedAnd: fn = "vec_redand"; break;
          case UnOp::RedOr: fn = "vec_redor"; break;
          case UnOp::RedXor: fn = "vec_redxor"; break;
          case UnOp::BoolNot: fn = "vec_boolnot"; break;
        }
        os << fn << "(" << expr(*e.a) << ")";
        break;
      }
      case ExprKind::Binary: {
        const char* fn = "?";
        switch (e.bop) {
          case BinOp::And: fn = "vec_and"; break;
          case BinOp::Or: fn = "vec_or"; break;
          case BinOp::Xor: fn = "vec_xor"; break;
          case BinOp::Add: fn = "vec_add"; break;
          case BinOp::Sub: fn = "vec_sub"; break;
          case BinOp::Mul: fn = "vec_mul"; break;
          case BinOp::Div: fn = "vec_div"; break;
          case BinOp::Mod: fn = "vec_mod"; break;
          case BinOp::Shl: fn = "vec_shl"; break;
          case BinOp::Shr: fn = "vec_shr"; break;
          case BinOp::AShr: fn = "vec_ashr"; break;
          case BinOp::Eq: fn = "vec_eq"; break;
          case BinOp::Ne: fn = "vec_ne"; break;
          case BinOp::Lt: fn = "vec_lt"; break;
          case BinOp::Le: fn = "vec_le"; break;
          case BinOp::Gt: fn = "vec_gt"; break;
          case BinOp::Ge: fn = "vec_ge"; break;
          case BinOp::Concat: fn = "vec_concat"; break;
        }
        os << fn << "(" << expr(*e.a) << ", " << expr(*e.b) << ")";
        break;
      }
      case ExprKind::Slice:
        os << "vec_slice(" << expr(*e.a) << ", " << e.hi << ", " << e.lo << ")";
        break;
      case ExprKind::Select:
        os << "(vec_isTrue(" << expr(*e.a) << ") ? " << expr(*e.b) << " : " << expr(*e.c)
           << ")";
        break;
      case ExprKind::Resize:
        os << "vec_resize(" << expr(*e.a) << ", " << e.type.width << ")";
        break;
      case ExprKind::Sext:
        os << "vec_sext(" << expr(*e.a) << ", " << e.type.width << ")";
        break;
    }
    return os.str();
  }

  void stmt(std::ostringstream& os, const Stmt& s, int indent) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    switch (s.kind) {
      case StmtKind::Assign: {
        const Symbol& t = d_.symbols[static_cast<std::size_t>(s.target)];
        if (t.kind == SymKind::Variable) {
          os << pad << cname(d_.symbols, s.target) << " = " << expr(*s.value) << ";\n";
        } else if (s.hi >= 0) {
          os << pad << "nba_range(" << cname(d_.symbols, s.target) << ", " << s.hi << ", "
             << s.lo << ", " << expr(*s.value) << ");\n";
        } else {
          os << pad << "nba(" << cname(d_.symbols, s.target) << ", " << expr(*s.value)
             << ");\n";
        }
        break;
      }
      case StmtKind::ArrayWrite:
        os << pad << "nba_elem(" << cname(d_.symbols, s.target) << ", " << expr(*s.index)
           << ".toUint(), " << expr(*s.value) << ");\n";
        break;
      case StmtKind::If:
        os << pad << "if (vec_isTrue(" << expr(*s.value) << ")) {\n";
        if (s.thenS) stmt(os, *s.thenS, indent + 1);
        if (s.elseS) {
          os << pad << "} else {\n";
          stmt(os, *s.elseS, indent + 1);
        }
        os << pad << "}\n";
        break;
      case StmtKind::Case:
        os << pad << "switch (" << expr(*s.value) << ".toUint()) {\n";
        for (const auto& arm : s.arms) {
          for (std::uint64_t label : arm.labels) {
            os << pad << "  case " << label << ":\n";
          }
          if (arm.body) stmt(os, *arm.body, indent + 2);
          os << pad << "    break;\n";
        }
        os << pad << "  default:\n";
        if (s.defaultArm) stmt(os, *s.defaultArm, indent + 2);
        os << pad << "    break;\n";
        os << pad << "}\n";
        break;
      case StmtKind::Block:
        for (const auto& st : s.stmts) stmt(os, *st, indent);
        break;
    }
  }

 private:
  const Design& d_;
  const EmitCppOptions& opts_;
};

std::string procFnName(const Process& p) {
  std::string n = p.name;
  for (auto& c : n) {
    if (c == '.') c = '_';
  }
  return "proc_" + n;
}

void emitBody(std::ostringstream& os, const Design& d, const EmitCppOptions& opts,
              const std::vector<mutation::InjectedMutant>& mutants) {
  CppPrinter pr(d, opts);
  const std::string V = vecType(opts);

  os << "// Generated by xlv::abstraction — RTL-to-TLM abstracted model.\n";
  os << "// One scheduler() invocation == one TLM transaction == one clock cycle.\n";
  os << "#include \"hdt/" << (opts.twoStateTypes ? "bit_vector" : "logic_vector") << ".h\"\n";
  os << "#include \"tlm/socket.h\"\n\n";
  os << "namespace generated {\n\n";
  os << "using V = " << V << ";\n\n";
  os << "class " << d.name << "_tlm final : public xlv::tlm::BTransportIf {\n";
  os << " public:\n";

  // Signal/variable members.
  os << "  // --- signals and variables (flattened design) ---\n";
  for (std::size_t i = 0; i < d.symbols.size(); ++i) {
    const Symbol& s = d.symbols[i];
    if (s.kind == SymKind::Array) {
      os << "  std::vector<V> " << cname(d.symbols, static_cast<SymbolId>(i)) << " = "
         << "std::vector<V>(" << s.arraySize << ", V(" << s.type.width << "));\n";
    } else {
      os << "  V " << cname(d.symbols, static_cast<SymbolId>(i)) << " = V("
         << s.type.width << ");\n";
    }
  }
  os << "\n";

  // Process functions.
  for (const auto& p : d.processes) {
    os << "  // " << (p.isSync ? (p.postEdge ? "post-edge sampler" : "synchronous") : "asynchronous")
       << " process\n";
    os << "  void " << procFnName(p) << "() {\n";
    pr.stmt(os, *p.body, 2);
    os << "  }\n\n";
  }

  // Mutant application functions (Fig. 9h).
  for (const auto& m : mutants) {
    os << "  void apply_mutant_" << cname(d.symbols, m.target) << "_" << m.id << "() {\n";
    os << "    // " << mutation::mutantKindName(m.spec.kind);
    if (m.spec.kind == mutation::MutantKind::DeltaDelay) {
      os << " (" << m.spec.deltaTicks << " HF periods)";
    }
    os << "\n";
    os << "    nba(" << cname(d.symbols, m.target) << ", " << cname(d.symbols, m.tmpVar)
       << ");\n";
    os << "  }\n\n";
  }

  // The scheduler (Fig. 6b / Fig. 8b).
  os << "  // Reproduction of the HDL simulation cycle (one clock cycle).\n";
  os << "  void scheduler() {\n";
  os << "    exec_async_settle();\n";
  os << "    // 1. rising edge of clock: execute synchronous processes\n";
  for (const auto& p : d.processes) {
    if (p.isSync && !p.postEdge && p.edge == EdgeKind::Rising && p.clock == d.mainClock) {
      os << "    " << procFnName(p) << "();\n";
    }
  }
  os << "    commit_nonblocking();\n";
  os << "    while (any_event()) { exec_async_sensitive(); }\n";
  for (const auto& p : d.processes) {
    if (p.isSync && p.postEdge) {
      os << "    " << procFnName(p) << "();  // post-edge sampler\n";
    }
  }
  if (!mutants.empty()) {
    os << "    if (first_delta_cycle()) { apply_active_mutants(MIN_DELAY); }\n";
  }
  if (opts.hfRatio > 0) {
    os << "    // higher frequency clock wrapped inside this transaction\n";
    os << "    for (int hfclk = 1; hfclk <= " << opts.hfRatio << "; ++hfclk) {\n";
    if (!mutants.empty()) {
      os << "      apply_active_mutants(DELTA_DELAY, hfclk);\n";
    }
    for (const auto& p : d.processes) {
      if (p.isSync && p.clock == d.hfClock && p.edge == EdgeKind::Rising) {
        os << "      " << procFnName(p) << "();\n";
      }
    }
    os << "      commit_nonblocking();\n";
    os << "      while (any_event()) { exec_async_sensitive(); }\n";
    os << "    }\n";
  }
  if (!mutants.empty()) {
    os << "    apply_active_mutants(MAX_DELAY);  // just before the falling edge\n";
  }
  os << "    // 3. falling edge of clock: execute synchronous processes\n";
  for (const auto& p : d.processes) {
    if (p.isSync && !p.postEdge && p.edge == EdgeKind::Falling && p.clock == d.mainClock) {
      os << "    " << procFnName(p) << "();\n";
    }
  }
  os << "    commit_nonblocking();\n";
  os << "    while (any_event()) { exec_async_sensitive(); }\n";
  os << "  }\n\n";

  // TLM wrapping.
  os << "  // TLM-2.0 blocking transport: each payload batch advances cycles.\n";
  os << "  void b_transport(xlv::tlm::GenericPayload& trans, xlv::tlm::Time& delay) override {\n";
  os << "    decode_and_access(trans);\n";
  os << "    for (unsigned i = 0; i < pending_cycles(); ++i) { scheduler(); }\n";
  os << "    delay += cycle_latency();\n";
  os << "  }\n";
  os << "};\n\n";
  os << "}  // namespace generated\n";
}

}  // namespace

std::string emitCpp(const Design& design, const EmitCppOptions& opts) {
  std::ostringstream os;
  emitBody(os, design, opts, {});
  return os.str();
}

std::string emitCppInjected(const mutation::InjectedDesign& injected,
                            const EmitCppOptions& opts) {
  std::ostringstream os;
  emitBody(os, injected.design, opts, injected.mutants);
  return os.str();
}

int countLines(const std::string& text) {
  int n = 0;
  for (char c : text) {
    if (c == '\n') ++n;
  }
  return n;
}

}  // namespace xlv::abstraction
