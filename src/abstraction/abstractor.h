// Abstraction tool facade: RTL IR -> executable TLM model + generated code.
//
// Mirrors the role of the RTL-to-TLM abstraction tools of the paper
// (HIFSuite [21], [12], [13]): given an elaborated design it produces
//   (a) an executable TlmIpModel (tlm_model.h), and
//   (b) SystemC-TLM-style C++ source text (emit_cpp.h) whose line count is
//       the "Abstracted TLM (loc)" metric of Table 3.
// The data-type optimization switch (HDTLib, Section 5.3) selects the
// 2-state value policy measured by Table 4.
//
// TlmIpTarget wraps the model behind a TLM-2.0 target socket: each
// b_transport-triggered cycle batch maps one scheduler() call per clock
// cycle, with a small memory-mapped register file for port access.
#pragma once

#include <memory>
#include <string>

#include "abstraction/emit_cpp.h"
#include "abstraction/tlm_model.h"
#include "tlm/socket.h"

namespace xlv::abstraction {

struct AbstractionOptions {
  int hfRatio = 0;             ///< >0 selects the dual-clock scheduler (Fig. 8b)
  bool emitSource = true;      ///< generate the SystemC-TLM text
};

struct AbstractionArtifacts {
  std::string source;          ///< generated SystemC-TLM-style C++
  int sourceLines = 0;
  double abstractionSeconds = 0.0;
};

/// Run the abstraction step on a clean design.
AbstractionArtifacts abstractDesign(const ir::Design& design, const AbstractionOptions& opts);

/// Run the abstraction step on an ADAM-injected design (Table 5's
/// "Injected TLM (loc)").
AbstractionArtifacts abstractInjected(const mutation::InjectedDesign& injected,
                                      const AbstractionOptions& opts);

/// Memory map of TlmIpTarget.
struct TlmIpMap {
  static constexpr std::uint64_t kCtrl = 0x00;       ///< write n: run n cycles
  static constexpr std::uint64_t kCycleCount = 0x04; ///< read: executed cycles
  static constexpr std::uint64_t kInputBase = 0x100; ///< +4*i: i-th input port
  static constexpr std::uint64_t kOutputBase = 0x200;///< +4*i: i-th output port
};

/// TLM-2.0 target exposing a TlmIpModel: write input registers, trigger a
/// batch of cycles through CTRL, read output registers. Each triggered cycle
/// is one scheduler() invocation — one transaction per RTL clock cycle.
/// Implements both the loosely-timed (b_transport) and approximately-timed
/// (nb_transport, base-protocol early completion) interfaces plus the debug
/// transport — the protocol set of paper Section 2.4.
template <class P>
class TlmIpTarget : public tlm::BTransportIf, public tlm::NbTransportFwIf, public tlm::DebugIf {
 public:
  TlmIpTarget(TlmIpModel<P>& model, tlm::Time cycleLatency)
      : model_(model), cycleLatency_(cycleLatency) {
    socket_.registerBTransport(this);
    socket_.registerNbFw(this);
    socket_.registerDebug(this);
  }

  tlm::TargetSocket& socket() noexcept { return socket_; }

  std::uint64_t inputAddress(int i) const noexcept {
    return TlmIpMap::kInputBase + 4ull * static_cast<std::uint64_t>(i);
  }
  std::uint64_t outputAddress(int i) const noexcept {
    return TlmIpMap::kOutputBase + 4ull * static_cast<std::uint64_t>(i);
  }

  void b_transport(tlm::GenericPayload& trans, tlm::Time& delay) override {
    access(trans, &delay);
  }

  tlm::SyncEnum nb_transport_fw(tlm::GenericPayload& trans, tlm::Phase& phase,
                                tlm::Time& t) override {
    if (phase != tlm::Phase::BeginReq) {
      trans.response = tlm::Response::GenericError;
      return tlm::SyncEnum::Completed;
    }
    access(trans, &t);
    phase = tlm::Phase::BeginResp;
    return tlm::SyncEnum::Completed;  // AT base-protocol early completion
  }

  std::size_t transport_dbg(tlm::GenericPayload& trans) override {
    access(trans, nullptr);
    return trans.data.size();
  }

 private:
  void access(tlm::GenericPayload& trans, tlm::Time* delay) {
    const auto& d = model_.design();
    const std::uint64_t a = trans.address;
    if (trans.command == tlm::Command::Write) {
      const std::uint32_t w = trans.dataWord();
      if (a == TlmIpMap::kCtrl) {
        for (std::uint32_t i = 0; i < w; ++i) model_.scheduler();
        if (delay != nullptr) *delay += tlm::Time(cycleLatency_.ps() * w);
      } else if (a >= TlmIpMap::kInputBase && a < TlmIpMap::kOutputBase) {
        const std::size_t idx = (a - TlmIpMap::kInputBase) / 4;
        if (idx >= d.inputs.size()) {
          trans.response = tlm::Response::AddressError;
          return;
        }
        model_.setInput(d.inputs[idx], w);
      } else {
        trans.response = tlm::Response::AddressError;
        return;
      }
      trans.response = tlm::Response::Ok;
    } else if (trans.command == tlm::Command::Read) {
      std::uint32_t w = 0;
      if (a == TlmIpMap::kCycleCount) {
        w = static_cast<std::uint32_t>(model_.cycle());
      } else if (a >= TlmIpMap::kOutputBase) {
        const std::size_t idx = (a - TlmIpMap::kOutputBase) / 4;
        if (idx >= d.outputs.size()) {
          trans.response = tlm::Response::AddressError;
          return;
        }
        w = static_cast<std::uint32_t>(model_.valueUint(d.outputs[idx]));
      } else {
        trans.response = tlm::Response::AddressError;
        return;
      }
      trans.data.assign(4, 0);
      for (int i = 0; i < 4; ++i) trans.data[static_cast<std::size_t>(i)] = (w >> (8 * i)) & 0xFF;
      trans.response = tlm::Response::Ok;
    } else {
      trans.response = tlm::Response::Ok;  // TLM ignore command
    }
  }

  tlm::TargetSocket socket_;
  TlmIpModel<P>& model_;
  tlm::Time cycleLatency_;
};

}  // namespace xlv::abstraction
