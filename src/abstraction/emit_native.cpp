#include "abstraction/emit_native.h"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace xlv::abstraction {

namespace {

std::string hexU64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v << "ull";
  return os.str();
}

std::string maskLit(int width) { return hexU64(maskOf(width)); }

/// Per-symbol array-pool offsets into the flat element store, -1 for
/// non-arrays; also returns the total element count.
std::vector<int> arrayOffsets(const ir::Design& d, std::size_t* totalOut) {
  std::vector<int> off(d.symbols.size(), -1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < d.symbols.size(); ++i) {
    if (d.symbols[i].kind == ir::SymKind::Array) {
      off[i] = static_cast<int>(total);
      total += static_cast<std::size_t>(d.symbols[i].arraySize);
    }
  }
  if (totalOut != nullptr) *totalOut = total;
  return off;
}

/// Emit one compiled process body as a straight-line function with goto
/// labels at jump targets. Policy branches are resolved here, at emit time;
/// each op is the literal ScalarMachine<P> case with constants folded in.
void emitProc(std::ostringstream& os, const TlmModelLayout& L, int procIndex,
              bool fourState, const std::vector<int>& arrOff) {
  const ir::Design& d = L.design;
  const CompiledProc& proc = L.code.procs[static_cast<std::size_t>(procIndex)];
  const auto& ops = proc.ops;

  std::unordered_set<std::size_t> targets;
  for (const Op& op : ops) {
    if (op.code == OpCode::Jump || op.code == OpCode::JumpIfFalse ||
        op.code == OpCode::JumpIfTrue) {
      targets.insert(static_cast<std::size_t>(op.a));
    }
  }

  // allX(w) and isTrue(v), policy-resolved.
  const auto allX = [&](int w) -> std::string {
    return fourState ? "SV{0ull, " + maskLit(w) + "}" : "SV{0ull, 0ull}";
  };
  const auto isTrue = [&](const std::string& v) -> std::string {
    return fourState ? "(" + v + ".unk == 0 && " + v + ".val != 0)"
                     : "(" + v + ".val != 0)";
  };

  os << "static void proc_" << procIndex << "(State& st) {\n";
  os << "  SV stk[" << (proc.maxStack + 8 < 9 ? 9 : proc.maxStack + 8) << "];\n";
  os << "  SV* sp = stk;\n";
  os << "  (void)sp;\n";

  for (std::size_t pc = 0; pc < ops.size(); ++pc) {
    if (targets.count(pc) != 0) os << "L" << pc << ":;\n";
    const Op& op = ops[pc];
    const int symI = static_cast<int>(op.sym);
    os << "  ";
    switch (op.code) {
      case OpCode::PushConst:
        os << "*sp++ = kConst[" << op.a << "];";
        break;
      case OpCode::PushSig:
        os << "*sp++ = st.vals[" << symI << "];";
        break;
      case OpCode::PushArrayElem: {
        const int off = arrOff[static_cast<std::size_t>(op.sym)];
        const int size = d.symbol(op.sym).arraySize;
        os << "{ SV idx = *--sp; if (idx.unk != 0) { *sp++ = " << allX(op.a)
           << "; } else { *sp++ = st.arr[" << off << " + (int)(idx.val % " << size
           << "ull)]; } }";
        break;
      }
      case OpCode::UnNot:
        if (fourState) {
          os << "{ SV& a = sp[-1]; a.val = ~a.val & ~a.unk & " << maskLit(op.a)
             << "; a.unk &= " << maskLit(op.a) << "; }";
        } else {
          os << "{ SV& a = sp[-1]; a.val = ~a.val & " << maskLit(op.a) << "; }";
        }
        break;
      case OpCode::UnNeg:
        os << "{ SV& a = sp[-1]; if (a.unk) { a = " << allX(op.a)
           << "; } else { a = SV{(~a.val + 1) & " << maskLit(op.a) << ", 0ull}; } }";
        break;
      case OpCode::UnRedAnd:
        os << "{ SV& a = sp[-1]; if (a.unk) { a = " << allX(1)
           << "; } else { a = SV{a.val == " << maskLit(op.a)
           << " ? 1ull : 0ull, 0ull}; } }";
        break;
      case OpCode::UnRedOr:
        os << "{ SV& a = sp[-1]; if ((a.val & ~a.unk) != 0) { a = SV{1ull, 0ull}; } "
              "else if (a.unk) { a = "
           << allX(1) << "; } else { a = SV{0ull, 0ull}; } }";
        break;
      case OpCode::UnRedXor:
        os << "{ SV& a = sp[-1]; if (a.unk) { a = " << allX(1)
           << "; } else { a = SV{parity64(a.val), 0ull}; } }";
        break;
      case OpCode::UnBoolNot:
        os << "{ SV& a = sp[-1]; a = SV{" << isTrue("a") << " ? 0ull : 1ull, 0ull}; }";
        break;
      case OpCode::BiAnd:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; a = and4(a, b); }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val &= b.val; }";
        }
        break;
      case OpCode::BiOr:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; a = or4(a, b); }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val |= b.val; }";
        }
        break;
      case OpCode::BiXor:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; a = xor4(a, b); }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val ^= b.val; }";
        }
        break;
      case OpCode::BiAdd:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(op.a)
             << "; } else { a = SV{(a.val + b.val) & " << maskLit(op.a) << ", 0ull}; } }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val = (sp[-1].val + b.val) & " << maskLit(op.a)
             << "; }";
        }
        break;
      case OpCode::BiSub:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(op.a)
             << "; } else { a = SV{(a.val - b.val) & " << maskLit(op.a) << ", 0ull}; } }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val = (sp[-1].val - b.val) & " << maskLit(op.a)
             << "; }";
        }
        break;
      case OpCode::BiMul:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(op.a)
             << "; } else { a = SV{(a.val * b.val) & " << maskLit(op.a) << ", 0ull}; } }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val = (sp[-1].val * b.val) & " << maskLit(op.a)
             << "; }";
        }
        break;
      case OpCode::BiDiv:
        os << "{ SV b = *--sp; SV& a = sp[-1]; if ((a.unk | b.unk) || b.val == 0) { a = "
           << allX(op.a) << "; } else { a = SV{a.val / b.val, 0ull}; } }";
        break;
      case OpCode::BiMod:
        os << "{ SV b = *--sp; SV& a = sp[-1]; if ((a.unk | b.unk) || b.val == 0) { a = "
           << allX(op.a) << "; } else { a = SV{a.val % b.val, 0ull}; } }";
        break;
      case OpCode::BiShl:
        os << "{ SV amt = *--sp; SV& a = sp[-1]; if (amt.unk != 0) { a = " << allX(op.a)
           << "; } else if (amt.val >= " << op.a
           << "ull) { a = SV{0ull, 0ull}; } else { a = SV{(a.val << amt.val) & "
           << maskLit(op.a) << ", (a.unk << amt.val) & " << maskLit(op.a) << "}; } }";
        break;
      case OpCode::BiShr:
        os << "{ SV amt = *--sp; SV& a = sp[-1]; if (amt.unk != 0) { a = " << allX(op.a)
           << "; } else if (amt.val >= " << op.a
           << "ull) { a = SV{0ull, 0ull}; } else { a = SV{a.val >> amt.val, a.unk >> "
              "amt.val}; } }";
        break;
      case OpCode::BiAShr:
        os << "{ SV amt = *--sp; SV& a = sp[-1]; if (amt.unk != 0) { a = " << allX(op.a)
           << "; } else { const u64 sVal = a.val & " << hexU64(1ULL << (op.a - 1))
           << "; const u64 sUnk = a.unk & " << hexU64(1ULL << (op.a - 1))
           << "; const u64 n = amt.val >= " << op.a << "ull ? " << op.a
           << "ull : amt.val; const u64 fill = n == 0 ? 0 : (maskOf64(n) << (" << op.a
           << " - n)); a.val = ((a.val >> n) | (sVal ? fill : 0)) & " << maskLit(op.a)
           << "; a.unk = ((a.unk >> n) | (sUnk ? fill : 0)) & " << maskLit(op.a)
           << "; } }";
        break;
      case OpCode::BiEq:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(1)
             << "; } else { a = SV{a.val == b.val ? 1ull : 0ull, 0ull}; } }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val = sp[-1].val == b.val ? 1ull : 0ull; }";
        }
        break;
      case OpCode::BiNe:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(1)
             << "; } else { a = SV{a.val != b.val ? 1ull : 0ull, 0ull}; } }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val = sp[-1].val != b.val ? 1ull : 0ull; }";
        }
        break;
      case OpCode::BiLtu:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(1)
             << "; } else { a = SV{a.val < b.val ? 1ull : 0ull, 0ull}; } }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val = sp[-1].val < b.val ? 1ull : 0ull; }";
        }
        break;
      case OpCode::BiLeu:
        if (fourState) {
          os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(1)
             << "; } else { a = SV{a.val <= b.val ? 1ull : 0ull, 0ull}; } }";
        } else {
          os << "{ SV b = *--sp; sp[-1].val = sp[-1].val <= b.val ? 1ull : 0ull; }";
        }
        break;
      case OpCode::BiLts:
        os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(1)
           << "; } else { a = SV{sext64(a.val, " << op.a << ") < sext64(b.val, " << op.a
           << ") ? 1ull : 0ull, 0ull}; } }";
        break;
      case OpCode::BiLes:
        os << "{ SV b = *--sp; SV& a = sp[-1]; if (a.unk | b.unk) { a = " << allX(1)
           << "; } else { a = SV{sext64(a.val, " << op.a << ") <= sext64(b.val, " << op.a
           << ") ? 1ull : 0ull, 0ull}; } }";
        break;
      case OpCode::BiConcat:
        os << "{ SV b = *--sp; SV& a = sp[-1]; a = SV{(a.val << " << op.b
           << ") | b.val, (a.unk << " << op.b << ") | b.unk}; }";
        break;
      case OpCode::Slice:
        os << "{ SV& a = sp[-1]; a = SV{(a.val >> " << op.b << ") & "
           << maskLit(op.a - op.b + 1) << ", (a.unk >> " << op.b << ") & "
           << maskLit(op.a - op.b + 1) << "}; }";
        break;
      case OpCode::Resize:
        os << "{ SV& a = sp[-1]; a.val &= " << maskLit(op.a) << "; a.unk &= "
           << maskLit(op.a) << "; }";
        break;
      case OpCode::Sext: {
        const int sw = op.b;
        const int tw = op.a;
        if (tw <= sw) {
          os << "{ SV& a = sp[-1]; a.val &= " << maskLit(tw) << "; a.unk &= "
             << maskLit(tw) << "; }";
        } else {
          const std::uint64_t signMask = 1ULL << (sw - 1);
          const std::uint64_t ext = maskOf(tw) & ~maskOf(sw);
          os << "{ SV& a = sp[-1]; const bool sUnk = (a.unk & " << hexU64(signMask)
             << ") != 0; const bool sVal = (a.val & " << hexU64(signMask)
             << ") != 0; if (sUnk) { a.unk |= " << hexU64(ext) << "; if (sVal) a.val |= "
             << hexU64(ext) << "; } else if (sVal) { a.val |= " << hexU64(ext)
             << "; } }";
        }
        break;
      }
      case OpCode::JumpIfFalse:
        os << "{ SV c = *--sp; if (!" << isTrue("c") << ") goto L" << op.a << "; }";
        break;
      case OpCode::JumpIfTrue:
        os << "{ SV c = *--sp; if (" << isTrue("c") << ") goto L" << op.a << "; }";
        break;
      case OpCode::Jump:
        os << "goto L" << op.a << ";";
        break;
      case OpCode::Dup:
        os << "{ *sp = sp[-1]; ++sp; }";
        break;
      case OpCode::Pop:
        os << "--sp;";
        break;
      case OpCode::StoreVar:
        os << "st.vals[" << symI << "] = *--sp;";
        break;
      case OpCode::StoreVarRange: {
        const std::uint64_t m = maskOf(op.a - op.b + 1) << op.b;
        os << "{ SV v = *--sp; SV& cur = st.vals[" << symI << "]; cur.val = (cur.val & "
           << hexU64(~m) << ") | ((v.val << " << op.b << ") & " << hexU64(m)
           << "); cur.unk = (cur.unk & " << hexU64(~m) << ") | ((v.unk << " << op.b
           << ") & " << hexU64(m) << "); }";
        break;
      }
      case OpCode::StoreSig:
        os << "{ Write& w = st.nba[st.nbaCount++]; w.sym = " << symI
           << "; w.hi = -1; w.lo = -1; w.idx = -1; w.v = *--sp; }";
        break;
      case OpCode::StoreSigRange:
        os << "{ Write& w = st.nba[st.nbaCount++]; w.sym = " << symI << "; w.hi = "
           << op.a << "; w.lo = " << op.b << "; w.idx = -1; w.v = *--sp; }";
        break;
      case OpCode::StoreArray:
        os << "{ SV v = *--sp; SV idx = *--sp; if (idx.unk == 0) { Write& w = "
              "st.nba[st.nbaCount++]; w.sym = "
           << symI << "; w.hi = -1; w.lo = -1; w.idx = (long long)idx.val; w.v = v; } }";
        break;
      case OpCode::End:
        os << "return;";
        break;
    }
    os << "\n";
  }
  // A Jump target one past the last op lands here.
  if (targets.count(ops.size()) != 0) os << "L" << ops.size() << ":;\n";
  os << "  return;\n";
  os << "}\n\n";
}

void emitIntList(std::ostringstream& os, const char* name, const std::vector<int>& v) {
  os << "static const int " << name << "[" << (v.empty() ? 1 : v.size()) << "] = {";
  if (v.empty()) {
    os << "0";
  } else {
    for (std::size_t i = 0; i < v.size(); ++i) os << (i ? ", " : "") << v[i];
  }
  os << "};\n";
}

}  // namespace

std::size_t nativeStateWords(const TlmModelLayout& layout) {
  std::size_t totalArr = 0;
  arrayOffsets(layout.design, &totalArr);
  return 2 + layout.sweepOrder.size() + 2 * layout.design.symbols.size() + 2 * totalArr;
}

void snapshotToWords(const TlmModelLayout& layout, const TlmModelSnapshot& snap,
                     std::vector<std::uint64_t>& out) {
  out.reserve(out.size() + nativeStateWords(layout));
  out.push_back(snap.cycle);
  out.push_back(snap.anyDirty ? 1 : 0);
  for (char d : snap.dirty) out.push_back(static_cast<std::uint64_t>(d));
  for (const SV& v : snap.machine.vals) {
    out.push_back(v.val);
    out.push_back(v.unk);
  }
  for (const auto& pool : snap.machine.arrays) {
    for (const SV& v : pool) {
      out.push_back(v.val);
      out.push_back(v.unk);
    }
  }
}

TlmModelSnapshot wordsToSnapshot(const TlmModelLayout& layout,
                                 const std::vector<std::uint64_t>& words) {
  if (words.size() != nativeStateWords(layout)) {
    throw std::invalid_argument("native snapshot: word count mismatch for layout");
  }
  TlmModelSnapshot snap;
  std::size_t i = 0;
  snap.cycle = words[i++];
  snap.anyDirty = words[i++] != 0;
  snap.dirty.resize(layout.sweepOrder.size());
  for (std::size_t s = 0; s < snap.dirty.size(); ++s) {
    snap.dirty[s] = static_cast<char>(words[i++]);
  }
  snap.machine.vals.resize(layout.design.symbols.size());
  for (SV& v : snap.machine.vals) {
    v.val = words[i++];
    v.unk = words[i++];
  }
  for (const auto& sym : layout.design.symbols) {
    if (sym.kind != ir::SymKind::Array) continue;
    std::vector<SV> pool(static_cast<std::size_t>(sym.arraySize));
    for (SV& v : pool) {
      v.val = words[i++];
      v.unk = words[i++];
    }
    snap.machine.arrays.push_back(std::move(pool));
  }
  return snap;
}

std::string emitNativeCpp(const TlmModelLayout& layout, bool fourState,
                          const std::string& identity) {
  const ir::Design& d = layout.design;
  const std::size_t nSym = d.symbols.size();
  const std::size_t nSweep = layout.sweepOrder.size();
  const std::size_t nProc = layout.code.procs.size();
  const std::size_t nMut = layout.mutants.size();
  std::size_t totalArr = 0;
  const std::vector<int> arrOff = arrayOffsets(d, &totalArr);

  // Nonblocking-write capacity: process bodies have no backward jumps, so
  // every store op executes at most once per run; the buffer drains after
  // each phase list / sweep slot, so the sum over all procs bounds it.
  std::size_t nbaCap = 8;
  for (const auto& proc : layout.code.procs) {
    for (const Op& op : proc.ops) {
      if (op.code == OpCode::StoreSig || op.code == OpCode::StoreSigRange ||
          op.code == OpCode::StoreArray) {
        ++nbaCap;
      }
    }
  }

  std::ostringstream os;
  os << "// Auto-generated native TLM scheduler for design '" << d.name << "' ("
     << (fourState ? "4-state" : "2-state") << ").\n";
  os << "// Transliterated from the compiled op streams; do not edit.\n";
  os << "#include <cstdint>\n\n";
  os << "namespace {\n\n";
  os << "using u64 = std::uint64_t;\n";
  os << "struct SV { u64 val; u64 unk; };\n";
  os << "struct Write { int sym; int hi; int lo; long long idx; SV v; };\n\n";
  os << "inline u64 maskOf64(u64 w) { return w >= 64 ? ~0ull : ((1ull << w) - 1); }\n";
  os << "inline u64 parity64(u64 v) { v ^= v >> 32; v ^= v >> 16; v ^= v >> 8; v ^= v >> "
        "4; v ^= v >> 2; v ^= v >> 1; return v & 1; }\n";
  os << "inline long long sext64(u64 v, int w) { if (w >= 64) return (long long)v; const "
        "u64 s = 1ull << (w - 1); return (long long)((v ^ s) - s); }\n";
  if (fourState) {
    os << "inline SV and4(SV a, SV b) { const u64 k0 = (~a.val & ~a.unk) | (~b.val & "
          "~b.unk); const u64 u = (a.unk | b.unk) & ~k0; const u64 v = a.val & b.val & "
          "~a.unk & ~b.unk; return SV{v, u}; }\n";
    os << "inline SV or4(SV a, SV b) { const u64 k1 = (a.val & ~a.unk) | (b.val & "
          "~b.unk); const u64 u = (a.unk | b.unk) & ~k1; const u64 v = ((a.val | b.val) "
          "& ~a.unk & ~b.unk) | k1; return SV{v, u}; }\n";
    os << "inline SV xor4(SV a, SV b) { const u64 u = a.unk | b.unk; const u64 v = "
          "(a.val ^ b.val) & ~u; return SV{v, u}; }\n";
  }
  os << "\n";
  os << "enum : int { kNSym = " << nSym << ", kNSweep = " << static_cast<int>(nSweep)
     << ", kNMut = " << static_cast<int>(nMut) << ", kHfRatio = " << layout.cfg.hfRatio
     << ", kMainClk = " << static_cast<int>(d.mainClock)
     << ", kHfClk = " << static_cast<int>(d.hfClock) << " };\n";
  os << "enum : int { kTotArr = " << static_cast<int>(totalArr) << ", kNbaCap = "
     << static_cast<int>(nbaCap) << " };\n\n";

  // --- baked tables ---------------------------------------------------------
  os << "static const u64 kMask[kNSym] = {";
  for (std::size_t i = 0; i < nSym; ++i) {
    os << (i ? ", " : "") << hexU64(maskOf(d.symbols[i].type.width));
  }
  os << "};\n";

  os << "static const SV kInit[kNSym] = {";
  for (std::size_t i = 0; i < nSym; ++i) {
    const auto& s = d.symbols[i];
    const std::uint64_t v =
        (s.kind != ir::SymKind::Array && s.hasInit) ? (s.initValue & maskOf(s.type.width))
                                                    : 0;
    os << (i ? ", " : "") << "{" << hexU64(v) << ", 0ull}";
  }
  os << "};\n";

  {
    // Array pools with arrayInits applied, flattened in symbol id order.
    std::vector<SV> flat(totalArr);
    for (const auto& ai : d.arrayInits) {
      const int base = arrOff[static_cast<std::size_t>(ai.array)];
      const std::size_t size =
          static_cast<std::size_t>(d.symbol(ai.array).arraySize);
      const std::uint64_t m = maskOf(d.symbol(ai.array).type.width);
      for (std::size_t k = 0; k < ai.words.size() && k < size; ++k) {
        flat[static_cast<std::size_t>(base) + k] = SV{ai.words[k] & m, 0};
      }
    }
    os << "static const SV kArrInit[" << (totalArr == 0 ? 1 : totalArr) << "] = {";
    if (totalArr == 0) {
      os << "{0ull, 0ull}";
    } else {
      for (std::size_t i = 0; i < totalArr; ++i) {
        os << (i ? ", " : "") << "{" << hexU64(flat[i].val) << ", " << hexU64(flat[i].unk)
           << "}";
      }
    }
    os << "};\n";
  }

  os << "static const SV kConst[" << (layout.code.constants.empty() ? 1 : layout.code.constants.size())
     << "] = {";
  if (layout.code.constants.empty()) {
    os << "{0ull, 0ull}";
  } else {
    for (std::size_t i = 0; i < layout.code.constants.size(); ++i) {
      const auto& c = layout.code.constants[i];
      os << (i ? ", " : "") << "{" << hexU64(c.value & maskOf(c.width)) << ", 0ull}";
    }
  }
  os << "};\n";

  {
    // Sensitivity CSR: symbol id -> sweep slots to dirty.
    std::vector<int> off, slots;
    off.reserve(nSym + 1);
    off.push_back(0);
    for (std::size_t i = 0; i < nSym; ++i) {
      for (int s : layout.sensitiveSlots[i]) slots.push_back(s);
      off.push_back(static_cast<int>(slots.size()));
    }
    emitIntList(os, "kSensOff", off);
    emitIntList(os, "kSensSlot", slots);
  }
  emitIntList(os, "kSweepOrder", layout.sweepOrder);
  emitIntList(os, "kMainRise", layout.mainRise);
  emitIntList(os, "kMainPost", layout.mainPost);
  emitIntList(os, "kMainFall", layout.mainFall);
  emitIntList(os, "kHfRise", layout.hfRise);
  emitIntList(os, "kHfFall", layout.hfFall);

  {
    // Mutant table: kind encoded 0 = MinDelay, 1 = MaxDelay, 2 = DeltaDelay;
    // `first` marks the first mutant of each target (edge-commit dedup).
    os << "struct Mut { int target; int tmpVar; int kind; int deltaTicks; int first; };\n";
    os << "static const Mut kMut[" << (nMut == 0 ? 1 : nMut) << "] = {";
    if (nMut == 0) {
      os << "{-1, -1, 0, 0, 0}";
    } else {
      for (std::size_t i = 0; i < nMut; ++i) {
        const auto& m = layout.mutants[i];
        int kind = 0;
        switch (m.spec.kind) {
          case mutation::MutantKind::MinDelay: kind = 0; break;
          case mutation::MutantKind::MaxDelay: kind = 1; break;
          case mutation::MutantKind::DeltaDelay: kind = 2; break;
        }
        bool first = true;
        for (std::size_t k = 0; k < i; ++k) {
          if (layout.mutants[k].target == m.target) {
            first = false;
            break;
          }
        }
        os << (i ? ", " : "") << "{" << static_cast<int>(m.target) << ", "
           << static_cast<int>(m.tmpVar) << ", " << kind << ", " << m.spec.deltaTicks
           << ", " << (first ? 1 : 0) << "}";
      }
    }
    os << "};\n\n";
  }

  // --- state + kernel -------------------------------------------------------
  os << "struct State {\n";
  os << "  SV vals[kNSym];\n";
  os << "  SV arr[kTotArr == 0 ? 1 : kTotArr];\n";
  os << "  unsigned char dirty[kNSweep == 0 ? 1 : kNSweep];\n";
  os << "  int anyDirty;\n";
  os << "  u64 cycle;\n";
  os << "  int activeMutant;\n";
  os << "  int nbaCount;\n";
  os << "  Write nba[kNbaCap];\n";
  os << "};\n\n";

  os << "inline void markDirty(State& st, int sym) {\n";
  os << "  for (int i = kSensOff[sym]; i < kSensOff[sym + 1]; ++i) {\n";
  os << "    const int slot = kSensSlot[i];\n";
  os << "    if (!st.dirty[slot]) { st.dirty[slot] = 1; st.anyDirty = 1; }\n";
  os << "  }\n";
  os << "}\n\n";

  os << "inline int commitW(State& st, const Write& w) {\n";
  os << "  if (w.idx >= 0) {\n";
  os << "    SV& cur = st.arr[kArrOffOf(w.sym) + (int)((u64)w.idx % kArrSizeOf(w.sym))];\n";
  os << "    if (cur.val == w.v.val && cur.unk == w.v.unk) return 0;\n";
  os << "    cur = w.v; return 1;\n";
  os << "  }\n";
  os << "  if (w.hi >= 0) {\n";
  os << "    const u64 m = maskOf64((u64)(w.hi - w.lo + 1)) << w.lo;\n";
  os << "    SV& cur = st.vals[w.sym];\n";
  os << "    const SV next{(cur.val & ~m) | ((w.v.val << w.lo) & m),\n";
  os << "                  (cur.unk & ~m) | ((w.v.unk << w.lo) & m)};\n";
  os << "    if (cur.val == next.val && cur.unk == next.unk) return 0;\n";
  os << "    cur = next; return 1;\n";
  os << "  }\n";
  os << "  SV& cur = st.vals[w.sym];\n";
  os << "  if (cur.val == w.v.val && cur.unk == w.v.unk) return 0;\n";
  os << "  cur = w.v; return 1;\n";
  os << "}\n\n";

  // Array offset/size lookups used by commitW (StoreArray targets only).
  {
    std::vector<int> sizes(nSym, 0);
    for (std::size_t i = 0; i < nSym; ++i) {
      if (d.symbols[i].kind == ir::SymKind::Array) sizes[i] = d.symbols[i].arraySize;
    }
    // Emitted before commitW in source order matters: declare first.
  }

  // commitW references kArrOffOf/kArrSizeOf; emit them before it by
  // splicing — build the final text with the helpers placed earlier.
  std::string body = os.str();
  {
    std::ostringstream helpers;
    std::vector<int> sizes(nSym, 0);
    for (std::size_t i = 0; i < nSym; ++i) {
      if (d.symbols[i].kind == ir::SymKind::Array) sizes[i] = d.symbols[i].arraySize;
    }
    emitIntList(helpers, "kArrOffTab", arrOff);
    emitIntList(helpers, "kArrSizeTab", sizes);
    helpers << "inline int kArrOffOf(int sym) { return kArrOffTab[sym]; }\n";
    helpers << "inline u64 kArrSizeOf(int sym) { return (u64)kArrSizeTab[sym]; }\n\n";
    const std::string marker = "inline int commitW";
    const std::size_t pos = body.find(marker);
    body.insert(pos, helpers.str());
  }
  std::ostringstream os2;
  os2 << body;

  os2 << "inline void commitNba(State& st) {\n";
  os2 << "  for (int i = 0; i < st.nbaCount; ++i) {\n";
  os2 << "    if (commitW(st, st.nba[i])) markDirty(st, st.nba[i].sym);\n";
  os2 << "  }\n";
  os2 << "  st.nbaCount = 0;\n";
  os2 << "}\n\n";

  // Process bodies + dispatch table.
  for (std::size_t pi = 0; pi < nProc; ++pi) {
    emitProc(os2, layout, static_cast<int>(pi), fourState, arrOff);
  }
  os2 << "typedef void (*ProcFn)(State&);\n";
  os2 << "static const ProcFn kProcFn[" << (nProc == 0 ? 1 : nProc) << "] = {";
  if (nProc == 0) {
    os2 << "nullptr";
  } else {
    for (std::size_t pi = 0; pi < nProc; ++pi) os2 << (pi ? ", " : "") << "proc_" << pi;
  }
  os2 << "};\n\n";

  os2 << "inline void runList(State& st, const int* list, int n) {\n";
  os2 << "  for (int i = 0; i < n; ++i) kProcFn[list[i]](st);\n";
  os2 << "}\n\n";

  os2 << "inline int sweepSt(State& st) {\n";
  os2 << "  if (!st.anyDirty) return 0;\n";
  os2 << "  for (int round = 0; st.anyDirty; ++round) {\n";
  os2 << "    if (round > 64) return -1;\n";
  os2 << "    st.anyDirty = 0;\n";
  os2 << "    for (int slot = 0; slot < kNSweep; ++slot) {\n";
  os2 << "      if (!st.dirty[slot]) continue;\n";
  os2 << "      st.dirty[slot] = 0;\n";
  os2 << "      kProcFn[kSweepOrder[slot]](st);\n";
  os2 << "      for (int i = 0; i < st.nbaCount; ++i) {\n";
  os2 << "        if (commitW(st, st.nba[i])) markDirty(st, st.nba[i].sym);\n";
  os2 << "      }\n";
  os2 << "      st.nbaCount = 0;\n";
  os2 << "    }\n";
  os2 << "  }\n";
  os2 << "  return 0;\n";
  os2 << "}\n\n";

  os2 << "inline void applyMutants(State& st, int minPhase, int maxPhase, int deltaTick, "
         "int inactiveOnly) {\n";
  if (nMut > 0) {
    os2 << "  for (int i = 0; i < kNMut; ++i) {\n";
    os2 << "    const Mut& m = kMut[i];\n";
    os2 << "    if (inactiveOnly) {\n";
    os2 << "      if (st.activeMutant >= 0 && kMut[st.activeMutant].target == m.target) "
           "continue;\n";
    os2 << "      if (!m.first) continue;\n";
    os2 << "    } else {\n";
    os2 << "      if (i != st.activeMutant) continue;\n";
    os2 << "      if (m.kind == 0) { if (!minPhase) continue; }\n";
    os2 << "      else if (m.kind == 1) { if (!maxPhase) continue; }\n";
    os2 << "      else { if (deltaTick != m.deltaTicks) continue; }\n";
    os2 << "    }\n";
    os2 << "    Write w; w.sym = m.target; w.hi = -1; w.lo = -1; w.idx = -1;\n";
    os2 << "    w.v = st.vals[m.tmpVar];\n";
    os2 << "    if (commitW(st, w)) markDirty(st, w.sym);\n";
    os2 << "  }\n";
  } else {
    os2 << "  (void)st; (void)minPhase; (void)maxPhase; (void)deltaTick; "
           "(void)inactiveOnly;\n";
  }
  os2 << "}\n\n";

  // The scheduler: TlmIpModel::scheduler() phase for phase (Fig. 6b/8b).
  // setClock writes bypass dirty marking, exactly like the interpreter.
  os2 << "inline int stepSt(State& st) {\n";
  os2 << "  ++st.cycle;\n";
  os2 << "  if (sweepSt(st)) return -1;\n";
  if (d.mainClock != ir::kNoSymbol) {
    os2 << "  st.vals[kMainClk] = SV{1ull, 0ull};\n";
  }
  os2 << "  runList(st, kMainRise, " << layout.mainRise.size() << ");\n";
  os2 << "  commitNba(st);\n";
  os2 << "  applyMutants(st, 0, 0, -1, 1);\n";
  os2 << "  if (sweepSt(st)) return -1;\n";
  if (!layout.mainPost.empty()) {
    os2 << "  runList(st, kMainPost, " << layout.mainPost.size() << ");\n";
    os2 << "  commitNba(st);\n";
    os2 << "  if (sweepSt(st)) return -1;\n";
  }
  os2 << "  applyMutants(st, 1, 0, -1, 0);\n";
  os2 << "  if (sweepSt(st)) return -1;\n";
  if (layout.cfg.hfRatio > 0) {
    os2 << "  for (int j = 1; j <= kHfRatio; ++j) {\n";
    os2 << "    applyMutants(st, 0, 0, j, 0);\n";
    os2 << "    if (sweepSt(st)) return -1;\n";
    if (d.hfClock != ir::kNoSymbol) {
      os2 << "    st.vals[kHfClk] = SV{1ull, 0ull};\n";
    }
    os2 << "    runList(st, kHfRise, " << layout.hfRise.size() << ");\n";
    os2 << "    commitNba(st);\n";
    os2 << "    if (sweepSt(st)) return -1;\n";
    if (d.hfClock != ir::kNoSymbol) {
      os2 << "    st.vals[kHfClk] = SV{0ull, 0ull};\n";
    }
    if (!layout.hfFall.empty()) {
      os2 << "    runList(st, kHfFall, " << layout.hfFall.size() << ");\n";
      os2 << "    commitNba(st);\n";
      os2 << "    if (sweepSt(st)) return -1;\n";
    }
    os2 << "  }\n";
  }
  os2 << "  applyMutants(st, 0, 1, -1, 0);\n";
  os2 << "  if (sweepSt(st)) return -1;\n";
  if (d.mainClock != ir::kNoSymbol) {
    os2 << "  st.vals[kMainClk] = SV{0ull, 0ull};\n";
  }
  os2 << "  runList(st, kMainFall, " << layout.mainFall.size() << ");\n";
  os2 << "  commitNba(st);\n";
  os2 << "  if (sweepSt(st)) return -1;\n";
  os2 << "  return 0;\n";
  os2 << "}\n\n";
  os2 << "}  // namespace\n\n";

  // --- C ABI ----------------------------------------------------------------
  os2 << "extern \"C\" {\n\n";
  os2 << "void* xlvn_create(void) {\n";
  os2 << "  State* st = new State;\n";
  os2 << "  for (int i = 0; i < kNSym; ++i) st->vals[i] = kInit[i];\n";
  os2 << "  for (int i = 0; i < kTotArr; ++i) st->arr[i] = kArrInit[i];\n";
  os2 << "  for (int i = 0; i < kNSweep; ++i) st->dirty[i] = 1;\n";
  os2 << "  st->anyDirty = kNSweep > 0 ? 1 : 0;\n";
  os2 << "  st->cycle = 0; st->activeMutant = -1; st->nbaCount = 0;\n";
  os2 << "  return st;\n";
  os2 << "}\n\n";
  os2 << "void xlvn_destroy(void* p) { delete static_cast<State*>(p); }\n\n";
  os2 << "void xlvn_set_mutant(void* p, int id) { static_cast<State*>(p)->activeMutant = "
         "id; }\n\n";
  os2 << "void xlvn_set_input(void* p, int sym, u64 v) {\n";
  os2 << "  State& st = *static_cast<State*>(p);\n";
  os2 << "  const SV nv{v & kMask[sym], 0ull};\n";
  os2 << "  SV& cur = st.vals[sym];\n";
  os2 << "  if (cur.val != nv.val || cur.unk != nv.unk) { cur = nv; markDirty(st, sym); "
         "}\n";
  os2 << "}\n\n";
  os2 << "int xlvn_step(void* p) { return stepSt(*static_cast<State*>(p)); }\n\n";
  os2 << "u64 xlvn_value(void* p, int sym) {\n";
  os2 << "  const SV& v = static_cast<State*>(p)->vals[sym];\n";
  os2 << "  return v.val & ~v.unk;\n";
  os2 << "}\n\n";
  os2 << "void xlvn_raw(void* p, int sym, u64* val, u64* unk) {\n";
  os2 << "  const SV& v = static_cast<State*>(p)->vals[sym];\n";
  os2 << "  *val = v.val; *unk = v.unk;\n";
  os2 << "}\n\n";
  os2 << "u64 xlvn_cycle(void* p) { return static_cast<State*>(p)->cycle; }\n\n";
  os2 << "u64 xlvn_state_words(void) { return 2 + (u64)kNSweep + 2 * (u64)kNSym + 2 * "
         "(u64)kTotArr; }\n\n";
  os2 << "void xlvn_save(void* p, u64* buf) {\n";
  os2 << "  const State& st = *static_cast<State*>(p);\n";
  os2 << "  u64* o = buf;\n";
  os2 << "  *o++ = st.cycle;\n";
  os2 << "  *o++ = st.anyDirty ? 1 : 0;\n";
  os2 << "  for (int i = 0; i < kNSweep; ++i) *o++ = st.dirty[i];\n";
  os2 << "  for (int i = 0; i < kNSym; ++i) { *o++ = st.vals[i].val; *o++ = "
         "st.vals[i].unk; }\n";
  os2 << "  for (int i = 0; i < kTotArr; ++i) { *o++ = st.arr[i].val; *o++ = "
         "st.arr[i].unk; }\n";
  os2 << "}\n\n";
  os2 << "void xlvn_load(void* p, const u64* buf) {\n";
  os2 << "  State& st = *static_cast<State*>(p);\n";
  os2 << "  const u64* o = buf;\n";
  os2 << "  st.cycle = *o++;\n";
  os2 << "  st.anyDirty = *o++ != 0 ? 1 : 0;\n";
  os2 << "  for (int i = 0; i < kNSweep; ++i) st.dirty[i] = (unsigned char)*o++;\n";
  os2 << "  for (int i = 0; i < kNSym; ++i) { st.vals[i].val = *o++; st.vals[i].unk = "
         "*o++; }\n";
  os2 << "  for (int i = 0; i < kTotArr; ++i) { st.arr[i].val = *o++; st.arr[i].unk = "
         "*o++; }\n";
  os2 << "  st.nbaCount = 0;\n";
  os2 << "}\n\n";
  os2 << "int xlvn_abi(void) { return " << kNativeAbiVersion << "; }\n\n";
  os2 << "const char* xlvn_identity(void) { return \"" << identity << "\"; }\n\n";
  os2 << "}  // extern \"C\"\n";
  return os2.str();
}

}  // namespace xlv::abstraction
