#include "abstraction/emit_vhdl.h"

#include <set>
#include <sstream>

namespace xlv::abstraction {

using namespace xlv::ir;

namespace {

std::string typeStr(const Type& t) {
  if (t.width == 1) return "std_logic";
  std::ostringstream os;
  os << (t.isSigned ? "signed" : "std_logic_vector") << "(" << t.width - 1 << " downto 0)";
  return os.str();
}

std::string nameOf(const std::vector<Symbol>& syms, SymbolId id) {
  std::string n = syms[static_cast<std::size_t>(id)].name;
  for (auto& c : n) {
    if (c == '.') c = '_';
  }
  return n;
}

class VhdlPrinter {
 public:
  explicit VhdlPrinter(const Module& m) : m_(m) {}

  std::string expr(const Expr& e) {
    std::ostringstream os;
    switch (e.kind) {
      case ExprKind::Const:
        if (e.type.width == 1) {
          os << "'" << (e.cval & 1) << "'";
        } else {
          os << "std_logic_vector(to_unsigned(" << e.cval << ", " << e.type.width << "))";
        }
        break;
      case ExprKind::Ref:
        os << nameOf(m_.symbols(), e.sym);
        break;
      case ExprKind::ArrayRef:
        os << nameOf(m_.symbols(), e.sym) << "(to_integer(unsigned(" << expr(*e.a) << ")))";
        break;
      case ExprKind::Unary: {
        const char* op = "not";
        switch (e.uop) {
          case UnOp::Not: op = "not"; break;
          case UnOp::Neg: op = "-"; break;
          case UnOp::RedAnd: op = "and_reduce"; break;
          case UnOp::RedOr: op = "or_reduce"; break;
          case UnOp::RedXor: op = "xor_reduce"; break;
          case UnOp::BoolNot: op = "nor_reduce"; break;
        }
        os << op << "(" << expr(*e.a) << ")";
        break;
      }
      case ExprKind::Binary: {
        if (e.bop == BinOp::Concat) {
          os << "(" << expr(*e.a) << " & " << expr(*e.b) << ")";
          break;
        }
        const char* op = "?";
        switch (e.bop) {
          case BinOp::And: op = "and"; break;
          case BinOp::Or: op = "or"; break;
          case BinOp::Xor: op = "xor"; break;
          case BinOp::Add: op = "+"; break;
          case BinOp::Sub: op = "-"; break;
          case BinOp::Mul: op = "*"; break;
          case BinOp::Div: op = "/"; break;
          case BinOp::Mod: op = "mod"; break;
          case BinOp::Shl: op = "sll"; break;
          case BinOp::Shr: op = "srl"; break;
          case BinOp::AShr: op = "sra"; break;
          case BinOp::Eq: op = "="; break;
          case BinOp::Ne: op = "/="; break;
          case BinOp::Lt: op = "<"; break;
          case BinOp::Le: op = "<="; break;
          case BinOp::Gt: op = ">"; break;
          case BinOp::Ge: op = ">="; break;
          case BinOp::Concat: op = "&"; break;
        }
        os << "(" << expr(*e.a) << " " << op << " " << expr(*e.b) << ")";
        break;
      }
      case ExprKind::Slice:
        if (e.hi == e.lo) {
          os << expr(*e.a) << "(" << e.hi << ")";
        } else {
          os << expr(*e.a) << "(" << e.hi << " downto " << e.lo << ")";
        }
        break;
      case ExprKind::Select:
        os << "mux(" << expr(*e.a) << ", " << expr(*e.b) << ", " << expr(*e.c) << ")";
        break;
      case ExprKind::Resize:
        os << "std_logic_vector(resize(unsigned(" << expr(*e.a) << "), " << e.type.width
           << "))";
        break;
      case ExprKind::Sext:
        os << "std_logic_vector(resize(signed(" << expr(*e.a) << "), " << e.type.width << "))";
        break;
    }
    return os.str();
  }

  void stmt(std::ostringstream& os, const Stmt& s, int indent) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    switch (s.kind) {
      case StmtKind::Assign: {
        const Symbol& t = m_.symbols()[static_cast<std::size_t>(s.target)];
        const char* op = t.kind == SymKind::Variable ? " := " : " <= ";
        os << pad << nameOf(m_.symbols(), s.target);
        if (s.hi >= 0) {
          if (s.hi == s.lo) {
            os << "(" << s.hi << ")";
          } else {
            os << "(" << s.hi << " downto " << s.lo << ")";
          }
        }
        os << op << expr(*s.value) << ";\n";
        break;
      }
      case StmtKind::ArrayWrite:
        os << pad << nameOf(m_.symbols(), s.target) << "(to_integer(unsigned("
           << expr(*s.index) << "))) <= " << expr(*s.value) << ";\n";
        break;
      case StmtKind::If:
        os << pad << "if " << expr(*s.value) << " = '1' then\n";
        if (s.thenS) stmt(os, *s.thenS, indent + 1);
        if (s.elseS) {
          os << pad << "else\n";
          stmt(os, *s.elseS, indent + 1);
        }
        os << pad << "end if;\n";
        break;
      case StmtKind::Case:
        os << pad << "case " << expr(*s.value) << " is\n";
        for (const auto& arm : s.arms) {
          os << pad << "  when ";
          for (std::size_t i = 0; i < arm.labels.size(); ++i) {
            if (i > 0) os << " | ";
            os << arm.labels[i];
          }
          os << " =>\n";
          if (arm.body) stmt(os, *arm.body, indent + 2);
        }
        os << pad << "  when others =>\n";
        if (s.defaultArm) {
          stmt(os, *s.defaultArm, indent + 2);
        } else {
          os << pad << "    null;\n";
        }
        os << pad << "end case;\n";
        break;
      case StmtKind::Block:
        for (const auto& st : s.stmts) stmt(os, *st, indent);
        break;
    }
  }

 private:
  const Module& m_;
};

void emitModule(const Module& m, std::ostringstream& os, std::set<std::string>& done) {
  if (!done.insert(m.name()).second) return;
  // Children first (VHDL requires declaration before instantiation).
  for (const auto& inst : m.instances()) emitModule(*inst.module, os, done);

  VhdlPrinter pr(m);
  os << "library ieee;\n";
  os << "use ieee.std_logic_1164.all;\n";
  os << "use ieee.numeric_std.all;\n\n";
  os << "entity " << m.name() << " is\n  port (\n";
  bool first = true;
  for (std::size_t i = 0; i < m.symbols().size(); ++i) {
    const Symbol& s = m.symbols()[i];
    if (!s.isPort()) continue;
    if (!first) os << ";\n";
    first = false;
    os << "    " << s.name << " : " << (s.dir == PortDir::In ? "in " : "out ")
       << typeStr(s.type);
  }
  os << "\n  );\nend entity " << m.name() << ";\n\n";
  os << "architecture rtl of " << m.name() << " is\n";
  for (std::size_t i = 0; i < m.symbols().size(); ++i) {
    const Symbol& s = m.symbols()[i];
    if (s.isPort()) continue;
    if (s.kind == SymKind::Array) {
      os << "  type " << s.name << "_t is array (0 to " << s.arraySize - 1 << ") of "
         << typeStr(s.type) << ";\n";
      os << "  signal " << s.name << " : " << s.name << "_t;\n";
    } else if (s.kind == SymKind::Variable) {
      os << "  shared variable " << s.name << " : " << typeStr(s.type) << ";\n";
    } else {
      os << "  signal " << s.name << " : " << typeStr(s.type);
      if (s.hasInit) os << " := std_logic_vector(to_unsigned(" << s.initValue << ", "
                        << s.type.width << "))";
      os << ";\n";
    }
  }
  os << "begin\n\n";

  for (const auto& p : m.processes()) {
    os << "  " << p.name << " : process (";
    if (p.isSync) {
      os << m.symbols()[static_cast<std::size_t>(p.clock)].name;
    } else {
      for (std::size_t i = 0; i < p.sensitivity.size(); ++i) {
        if (i > 0) os << ", ";
        os << nameOf(m.symbols(), p.sensitivity[i]);
      }
    }
    os << ")\n  begin\n";
    if (p.isSync) {
      const std::string clk = m.symbols()[static_cast<std::size_t>(p.clock)].name;
      if (p.edge == EdgeKind::Rising) {
        if (p.postEdge) {
          os << "    -- post-edge sampler (delayed-clock sampling element)\n";
        }
        os << "    if rising_edge(" << clk << ") then\n";
      } else {
        os << "    if falling_edge(" << clk << ") then\n";
      }
      pr.stmt(os, *p.body, 3);
      os << "    end if;\n";
    } else {
      pr.stmt(os, *p.body, 2);
    }
    os << "  end process;\n\n";
  }

  for (const auto& inst : m.instances()) {
    os << "  " << inst.name << " : entity work." << inst.module->name() << "\n    port map (\n";
    for (std::size_t i = 0; i < inst.bindings.size(); ++i) {
      if (i > 0) os << ",\n";
      os << "      " << inst.module->symbols()[static_cast<std::size_t>(inst.bindings[i].childPort)].name
         << " => " << nameOf(m.symbols(), inst.bindings[i].parentSym);
    }
    os << "\n    );\n\n";
  }

  os << "end architecture rtl;\n\n";
}

}  // namespace

std::string emitVhdl(const Module& m) {
  std::ostringstream os;
  std::set<std::string> done;
  emitModule(m, os, done);
  return os.str();
}

}  // namespace xlv::abstraction
