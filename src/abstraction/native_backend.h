// Native simulation backend: compile the emitted TLM translation unit
// (abstraction/emit_native.h) with the system C++ compiler into a shared
// object, dlopen it, and expose it behind the same session operations the
// interpreter offers — the ROADMAP "native-codegen simulation backend".
//
// Caching, two layers like every other expensive artifact:
//   * in-process: a build-once cache keyed by (source fingerprint ×
//     compiler id × flags × ABI version), so one campaign compiles each
//     design once no matter how many items/threads ask;
//   * cross-process: the compiled .so bytes spill through the configured
//     util::ArtifactStore (domain "native"), so sharded workers and warm
//     re-runs dlopen instead of recompiling.
//
// Failure is never fatal: no system compiler, a failed compile or a corrupt
// cached object all degrade to a null library (warned once per design);
// callers fall back to the interpreter, whose results are bit-identical by
// the conformance suite.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "abstraction/emit_native.h"
#include "abstraction/scalar_machine.h"
#include "abstraction/tlm_model.h"

namespace xlv::abstraction {

/// Per-call ledger of getNativeLibrary: a fresh compile vs a reuse (memory
/// or artifact-store hit). Feeds AnalysisReport::nativeCompiles/CacheHits.
struct NativeUseStats {
  int compiles = 0;
  int cacheHits = 0;
};

/// A dlopen'd emitted translation unit with its xlvn_* entry points
/// resolved and verified (ABI version, identity string, state word count).
/// Immutable after construction; shared read-only across sessions/threads.
class NativeLibrary {
 public:
  NativeLibrary() = default;
  ~NativeLibrary();
  NativeLibrary(const NativeLibrary&) = delete;
  NativeLibrary& operator=(const NativeLibrary&) = delete;

  void* (*create)() = nullptr;
  void (*destroy)(void*) = nullptr;
  void (*setMutant)(void*, int) = nullptr;
  void (*setInput)(void*, int, std::uint64_t) = nullptr;
  int (*step)(void*) = nullptr;
  std::uint64_t (*value)(void*, int) = nullptr;
  void (*raw)(void*, int, std::uint64_t*, std::uint64_t*) = nullptr;
  std::uint64_t (*cycleOf)(void*) = nullptr;
  void (*save)(void*, std::uint64_t*) = nullptr;
  void (*load)(void*, const std::uint64_t*) = nullptr;

  std::size_t stateWords = 0;

 private:
  friend class NativeLibraryBuilder;
  void* handle_ = nullptr;
};

using NativeLibraryPtr = std::shared_ptr<const NativeLibrary>;

/// True when a usable system C++ compiler was found (XLV_CC env override,
/// else the first of c++/g++/clang++ answering --version). Probed once per
/// process; benches and tests gate their native legs on it.
bool nativeToolchainAvailable();

/// Human-readable identity of the discovered compiler ("path (first version
/// line)"), empty when unavailable. For logs and the README's env notes.
std::string nativeToolchainDescription();

/// The native library for `layout` under the given policy, or null when the
/// backend is unavailable (no toolchain / compile failure — warned once per
/// design). `stats`, when non-null, is incremented by what THIS call did:
/// one compile, or one cache hit (memory or artifact store). Thread-safe;
/// concurrent callers for the same layout share one build.
NativeLibraryPtr getNativeLibrary(const TlmModelLayout& layout, bool fourState,
                                  NativeUseStats* stats = nullptr);

/// Drop every cached library handle (test/bench isolation between phases,
/// and core::clearProcessCaches). Sessions holding a NativeLibraryPtr keep
/// their library alive; only the cache entries go.
void clearNativeLibraryCache();

/// One native simulation session: the TlmIpModel surface the analysis layer
/// drives, backed by an xlvn_* instance. Not thread-safe (one session per
/// task, like TlmIpModel).
class NativeSession {
 public:
  explicit NativeSession(NativeLibraryPtr lib);
  ~NativeSession();
  NativeSession(const NativeSession&) = delete;
  NativeSession& operator=(const NativeSession&) = delete;

  void activateMutant(int id) { lib_->setMutant(handle_, id); }
  void setInputUint(ir::SymbolId sym, std::uint64_t v) {
    lib_->setInput(handle_, static_cast<int>(sym), v);
  }
  /// One scheduler() transaction; throws std::runtime_error on the
  /// combinational iteration limit, mirroring TlmIpModel::sweep.
  void scheduler();
  std::uint64_t valueUint(ir::SymbolId sym) const {
    return lib_->value(handle_, static_cast<int>(sym));
  }
  SV rawValue(ir::SymbolId sym) const {
    SV v;
    lib_->raw(handle_, static_cast<int>(sym), &v.val, &v.unk);
    return v;
  }
  std::uint64_t cycle() const { return lib_->cycleOf(handle_); }

  std::size_t stateWords() const { return lib_->stateWords; }
  /// Snapshot in the shared word layout (emit_native.h).
  void saveWords(std::vector<std::uint64_t>& out) const;
  /// Restore from the shared word layout; throws std::invalid_argument on a
  /// word-count mismatch.
  void loadWords(const std::vector<std::uint64_t>& words);

 private:
  NativeLibraryPtr lib_;
  void* handle_ = nullptr;
};

}  // namespace xlv::abstraction
