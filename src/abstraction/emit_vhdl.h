// VHDL code generator for RTL IR modules.
//
// Renders a module (hierarchy included) as VHDL-93-style source: entity with
// ports, architecture with signal declarations, one process statement per IR
// process, and component instantiations for child modules. Used to report
// the "RTL (loc)" metrics of Tables 1 and 2 and to let users inspect the
// augmented IPs in a familiar syntax.
#pragma once

#include <string>

#include "ir/module.h"

namespace xlv::abstraction {

/// Emit `m` and (recursively, once per distinct module) its children.
std::string emitVhdl(const ir::Module& m);

}  // namespace xlv::abstraction
