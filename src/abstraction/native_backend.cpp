#include "abstraction/native_backend.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "util/artifact_store.h"
#include "util/fnv.h"
#include "util/log.h"
#include "util/once_cache.h"
#include "util/subprocess.h"

namespace xlv::abstraction {

namespace {

constexpr const char* kCompileFlags = "-std=c++17 -O2 -fPIC -shared";

struct Toolchain {
  bool available = false;
  std::string cc;       ///< compiler command (resolved through PATH)
  std::string version;  ///< first line of `cc --version`
};

const Toolchain& systemToolchain() {
  static const Toolchain tc = [] {
    Toolchain t;
    std::vector<std::string> candidates;
    if (const char* env = std::getenv("XLV_CC"); env != nullptr && env[0] != '\0') {
      candidates.push_back(env);
    } else {
      candidates = {"c++", "g++", "clang++"};
    }
    for (const std::string& cand : candidates) {
      const util::SubprocessResult probe = util::runCommandCapture({cand, "--version"});
      if (!probe.ok()) continue;
      t.available = true;
      t.cc = cand;
      const std::size_t eol = probe.output.find('\n');
      t.version = eol == std::string::npos ? probe.output : probe.output.substr(0, eol);
      break;
    }
    return t;
  }();
  return tc;
}

std::string tempPath(const char* suffix) {
  static std::atomic<std::uint64_t> seq{0};
  const char* dir = std::getenv("TMPDIR");
  std::ostringstream os;
  os << (dir != nullptr && dir[0] != '\0' ? dir : "/tmp") << "/xlvn_" << getpid() << "_"
     << seq.fetch_add(1) << suffix;
  return os.str();
}

bool writeFile(const std::string& path, std::string_view bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream os;
  os << f.rdbuf();
  out = os.str();
  return true;
}

/// dlopen `bytes` (materialized to a temp file, unlinked immediately — the
/// mapping survives, POSIX semantics) and resolve+verify the xlvn_* ABI.
/// Returns null with a reason on any mismatch.
std::shared_ptr<NativeLibrary> openLibrary(const std::string& bytes,
                                           const std::string& identity,
                                           std::size_t expectWords, std::string* why);

}  // namespace

NativeLibrary::~NativeLibrary() {
  if (handle_ != nullptr) dlclose(handle_);
}

class NativeLibraryBuilder {
 public:
  static std::shared_ptr<NativeLibrary> open(const std::string& bytes,
                                             const std::string& identity,
                                             std::size_t expectWords, std::string* why) {
    const std::string path = tempPath(".so");
    if (!writeFile(path, bytes)) {
      if (why != nullptr) *why = "cannot write temp .so at " + path;
      return nullptr;
    }
    void* handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    unlink(path.c_str());
    if (handle == nullptr) {
      if (why != nullptr) {
        const char* err = dlerror();
        *why = std::string("dlopen failed: ") + (err != nullptr ? err : "?");
      }
      return nullptr;
    }
    auto lib = std::make_shared<NativeLibrary>();
    lib->handle_ = handle;
    const auto resolve = [&](const char* name) -> void* {
      return dlsym(handle, name);
    };
    using u64 = std::uint64_t;
    const auto abi = reinterpret_cast<int (*)()>(resolve("xlvn_abi"));
    const auto ident = reinterpret_cast<const char* (*)()>(resolve("xlvn_identity"));
    const auto words = reinterpret_cast<u64 (*)()>(resolve("xlvn_state_words"));
    lib->create = reinterpret_cast<void* (*)()>(resolve("xlvn_create"));
    lib->destroy = reinterpret_cast<void (*)(void*)>(resolve("xlvn_destroy"));
    lib->setMutant = reinterpret_cast<void (*)(void*, int)>(resolve("xlvn_set_mutant"));
    lib->setInput =
        reinterpret_cast<void (*)(void*, int, u64)>(resolve("xlvn_set_input"));
    lib->step = reinterpret_cast<int (*)(void*)>(resolve("xlvn_step"));
    lib->value = reinterpret_cast<u64 (*)(void*, int)>(resolve("xlvn_value"));
    lib->raw =
        reinterpret_cast<void (*)(void*, int, u64*, u64*)>(resolve("xlvn_raw"));
    lib->cycleOf = reinterpret_cast<u64 (*)(void*)>(resolve("xlvn_cycle"));
    lib->save = reinterpret_cast<void (*)(void*, u64*)>(resolve("xlvn_save"));
    lib->load = reinterpret_cast<void (*)(void*, const u64*)>(resolve("xlvn_load"));
    if (abi == nullptr || ident == nullptr || words == nullptr ||
        lib->create == nullptr || lib->destroy == nullptr || lib->setMutant == nullptr ||
        lib->setInput == nullptr || lib->step == nullptr || lib->value == nullptr ||
        lib->raw == nullptr || lib->cycleOf == nullptr || lib->save == nullptr ||
        lib->load == nullptr) {
      if (why != nullptr) *why = "missing xlvn_* entry points";
      return nullptr;
    }
    if (abi() != kNativeAbiVersion) {
      if (why != nullptr) *why = "ABI version mismatch";
      return nullptr;
    }
    if (identity != ident()) {
      if (why != nullptr) *why = "identity mismatch";
      return nullptr;
    }
    lib->stateWords = static_cast<std::size_t>(words());
    if (lib->stateWords != expectWords) {
      if (why != nullptr) *why = "snapshot word-count mismatch";
      return nullptr;
    }
    return lib;
  }
};

namespace {

std::shared_ptr<NativeLibrary> openLibrary(const std::string& bytes,
                                           const std::string& identity,
                                           std::size_t expectWords, std::string* why) {
  return NativeLibraryBuilder::open(bytes, identity, expectWords, why);
}

util::OnceCache<NativeLibraryPtr>& nativeLibCache() {
  static util::OnceCache<NativeLibraryPtr> cache;
  return cache;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

bool nativeToolchainAvailable() { return systemToolchain().available; }

std::string nativeToolchainDescription() {
  const Toolchain& tc = systemToolchain();
  if (!tc.available) return "";
  return tc.cc + " (" + tc.version + ")";
}

NativeLibraryPtr getNativeLibrary(const TlmModelLayout& layout, bool fourState,
                                  NativeUseStats* stats) {
  // Identity: source fingerprint (emitted with a blank identity to break
  // the self-reference) × compiler × flags × ABI. The key IS the identity
  // baked back into the final source, so a hash-collided or stale .so is
  // rejected at load, never silently used.
  const Toolchain& tc = systemToolchain();
  const std::string bare = emitNativeCpp(layout, fourState, "");
  std::uint64_t h = util::fnv1a64(bare);
  h = util::fnv1a64(tc.cc + "\n" + tc.version + "\n" + kCompileFlags, h);
  h = util::fnv1a64Mix(static_cast<std::uint64_t>(kNativeAbiVersion), h);
  const std::string identity = (fourState ? "n4s-" : "n2s-") + hex64(h);
  const std::size_t expectWords = nativeStateWords(layout);

  bool wasHit = false;
  bool compiledHere = false;
  bool diskHere = false;
  const std::shared_ptr<const NativeLibraryPtr> cached = nativeLibCache().getOrBuild(
      identity,
      [&]() -> NativeLibraryPtr {
        util::ArtifactStore* store = util::processArtifactStore();
        if (!tc.available) {
          XLV_WARN("native") << "no system C++ compiler found (tried XLV_CC, c++, "
                                "g++, clang++); design '"
                             << layout.design.name << "' falls back to the interpreter";
          return nullptr;
        }
        // Cross-process reuse: the compiled object spills through the
        // artifact store keyed by the same identity.
        if (store != nullptr) {
          if (std::optional<std::string> bytes = store->load("native", identity)) {
            std::string why;
            if (auto lib = openLibrary(*bytes, identity, expectWords, &why)) {
              diskHere = true;
              return lib;
            }
            store->dropCorrupt("native", identity);
            XLV_WARN("native") << "cached object for '" << layout.design.name
                               << "' rejected (" << why << "); recompiling";
          }
        }
        const std::string source = emitNativeCpp(layout, fourState, identity);
        const std::string srcPath = tempPath(".cpp");
        const std::string objPath = tempPath(".so");
        if (!writeFile(srcPath, source)) {
          XLV_WARN("native") << "cannot write temp source at " << srcPath
                             << "; falling back to the interpreter";
          return nullptr;
        }
        std::vector<std::string> cmd{tc.cc};
        {
          std::istringstream flags(kCompileFlags);
          std::string f;
          while (flags >> f) cmd.push_back(f);
        }
        cmd.insert(cmd.end(), {"-x", "c++", srcPath, "-o", objPath});
        const util::SubprocessResult cc = util::runCommandCapture(cmd);
        unlink(srcPath.c_str());
        if (!cc.ok()) {
          unlink(objPath.c_str());
          XLV_WARN("native") << "compile failed for '" << layout.design.name << "' ("
                             << tc.cc << " exit " << cc.exitCode
                             << "); falling back to the interpreter. Output: "
                             << cc.output.substr(0, 512);
          return nullptr;
        }
        std::string bytes;
        const bool haveBytes = readFile(objPath, bytes);
        unlink(objPath.c_str());
        if (!haveBytes) {
          XLV_WARN("native") << "cannot read compiled object for '"
                             << layout.design.name
                             << "'; falling back to the interpreter";
          return nullptr;
        }
        std::string why;
        auto lib = openLibrary(bytes, identity, expectWords, &why);
        if (lib == nullptr) {
          XLV_WARN("native") << "freshly compiled object for '" << layout.design.name
                             << "' unusable (" << why
                             << "); falling back to the interpreter";
          return nullptr;
        }
        compiledHere = true;
        if (store != nullptr) store->store("native", identity, bytes);
        return lib;
      },
      &wasHit);

  const NativeLibraryPtr lib = cached != nullptr ? *cached : nullptr;
  if (stats != nullptr && lib != nullptr) {
    if (compiledHere) {
      stats->compiles += 1;
    } else if (wasHit || diskHere) {
      stats->cacheHits += 1;
    }
  }
  return lib;
}

void clearNativeLibraryCache() { nativeLibCache().clear(); }

NativeSession::NativeSession(NativeLibraryPtr lib) : lib_(std::move(lib)) {
  if (lib_ == nullptr) {
    throw std::invalid_argument("NativeSession: null library");
  }
  handle_ = lib_->create();
  if (handle_ == nullptr) {
    throw std::runtime_error("NativeSession: xlvn_create failed");
  }
}

NativeSession::~NativeSession() {
  if (handle_ != nullptr) lib_->destroy(handle_);
}

void NativeSession::scheduler() {
  if (lib_->step(handle_) != 0) {
    throw std::runtime_error("native scheduler: combinational iteration limit");
  }
}

void NativeSession::saveWords(std::vector<std::uint64_t>& out) const {
  const std::size_t base = out.size();
  out.resize(base + lib_->stateWords);
  lib_->save(handle_, out.data() + base);
}

void NativeSession::loadWords(const std::vector<std::uint64_t>& words) {
  if (words.size() != lib_->stateWords) {
    throw std::invalid_argument("native session: snapshot word count mismatch");
  }
  lib_->load(handle_, words.data());
}

}  // namespace xlv::abstraction
