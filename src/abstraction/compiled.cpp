#include "abstraction/compiled.h"

#include <unordered_map>

namespace xlv::abstraction {

using namespace xlv::ir;

namespace {

class Compiler {
 public:
  Compiler(const Design& d, std::vector<ConstEntry>& pool) : d_(d), pool_(pool) {}

  CompiledProc compile(const Stmt& body) {
    ops_.clear();
    depth_ = 0;
    maxDepth_ = 0;
    stmt(body);
    emit(OpCode::End);
    CompiledProc out;
    out.ops = ops_;
    out.maxStack = maxDepth_;
    return out;
  }

 private:
  int emit(OpCode code, std::int32_t a = 0, std::int32_t b = 0, SymbolId sym = kNoSymbol) {
    ops_.push_back(Op{code, a, b, sym});
    return static_cast<int>(ops_.size() - 1);
  }

  void push(int n = 1) {
    depth_ += n;
    maxDepth_ = std::max(maxDepth_, depth_);
  }
  void pop(int n = 1) { depth_ -= n; }

  int constIndex(int width, std::uint64_t value) {
    const std::uint64_t key = (static_cast<std::uint64_t>(width) << 56) ^ value;
    auto it = constMap_.find(key);
    if (it != constMap_.end()) return it->second;
    pool_.push_back(ConstEntry{width, value});
    const int idx = static_cast<int>(pool_.size() - 1);
    constMap_.emplace(key, idx);
    return idx;
  }

  void expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Const:
        emit(OpCode::PushConst, constIndex(e.type.width, e.cval));
        push();
        break;
      case ExprKind::Ref:
        emit(OpCode::PushSig, 0, 0, e.sym);
        push();
        break;
      case ExprKind::ArrayRef:
        expr(*e.a);
        emit(OpCode::PushArrayElem, e.type.width, 0, e.sym);
        break;
      case ExprKind::Unary: {
        expr(*e.a);
        OpCode c = OpCode::UnNot;
        switch (e.uop) {
          case UnOp::Not: c = OpCode::UnNot; break;
          case UnOp::Neg: c = OpCode::UnNeg; break;
          case UnOp::RedAnd: c = OpCode::UnRedAnd; break;
          case UnOp::RedOr: c = OpCode::UnRedOr; break;
          case UnOp::RedXor: c = OpCode::UnRedXor; break;
          case UnOp::BoolNot: c = OpCode::UnBoolNot; break;
        }
        emit(c, e.a->type.width);
        break;
      }
      case ExprKind::Binary:
        binary(e);
        break;
      case ExprKind::Slice:
        expr(*e.a);
        emit(OpCode::Slice, e.hi, e.lo);
        break;
      case ExprKind::Select: {
        // cond ? t : f, with only the chosen arm evaluated.
        expr(*e.a);
        const int jf = emit(OpCode::JumpIfFalse);
        pop();
        expr(*e.b);
        const int jend = emit(OpCode::Jump);
        pop();  // the then-value is popped conceptually for the else path
        ops_[static_cast<std::size_t>(jf)].a = static_cast<std::int32_t>(ops_.size());
        expr(*e.c);
        ops_[static_cast<std::size_t>(jend)].a = static_cast<std::int32_t>(ops_.size());
        break;
      }
      case ExprKind::Resize:
        expr(*e.a);
        emit(OpCode::Resize, e.type.width);
        break;
      case ExprKind::Sext:
        expr(*e.a);
        emit(OpCode::Sext, e.type.width, e.a->type.width);
        break;
    }
  }

  void binary(const Expr& e) {
    // Gt/Ge compile as Lt/Le with operands pushed in swapped order
    // (expressions are pure, so evaluation order is free).
    const bool swapped = e.bop == BinOp::Gt || e.bop == BinOp::Ge;
    if (swapped) {
      expr(*e.b);
      expr(*e.a);
    } else {
      expr(*e.a);
      expr(*e.b);
    }
    const bool sgn = e.a->type.isSigned && e.b->type.isSigned;
    OpCode c = OpCode::BiAnd;
    switch (e.bop) {
      case BinOp::And: c = OpCode::BiAnd; break;
      case BinOp::Or: c = OpCode::BiOr; break;
      case BinOp::Xor: c = OpCode::BiXor; break;
      case BinOp::Add: c = OpCode::BiAdd; break;
      case BinOp::Sub: c = OpCode::BiSub; break;
      case BinOp::Mul: c = OpCode::BiMul; break;
      case BinOp::Div: c = OpCode::BiDiv; break;
      case BinOp::Mod: c = OpCode::BiMod; break;
      case BinOp::Shl: c = OpCode::BiShl; break;
      case BinOp::Shr: c = OpCode::BiShr; break;
      case BinOp::AShr: c = OpCode::BiAShr; break;
      case BinOp::Eq: c = OpCode::BiEq; break;
      case BinOp::Ne: c = OpCode::BiNe; break;
      case BinOp::Lt:
      case BinOp::Gt:
        c = sgn ? OpCode::BiLts : OpCode::BiLtu;
        break;
      case BinOp::Le:
      case BinOp::Ge:
        c = sgn ? OpCode::BiLes : OpCode::BiLeu;
        break;
      case BinOp::Concat: c = OpCode::BiConcat; break;
    }
    switch (e.bop) {
      case BinOp::Shl:
      case BinOp::Shr:
      case BinOp::AShr:
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
      case BinOp::Div:
      case BinOp::Mod:
        emit(c, e.type.width);  // result width (mask / all-X width)
        break;
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        emit(c, e.a->type.width);  // operand width (signed compare position)
        break;
      case BinOp::Concat:
        emit(c, e.type.width, e.b->type.width);  // low-part shift amount
        break;
      default:
        emit(c);
        break;
    }
    pop();  // two operands -> one result
  }

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign: {
        expr(*s.value);
        const Symbol& t = d_.symbol(s.target);
        if (t.kind == SymKind::Variable) {
          if (s.hi >= 0) {
            emit(OpCode::StoreVarRange, s.hi, s.lo, s.target);
          } else {
            emit(OpCode::StoreVar, 0, 0, s.target);
          }
        } else if (s.hi >= 0) {
          emit(OpCode::StoreSigRange, s.hi, s.lo, s.target);
        } else {
          emit(OpCode::StoreSig, 0, 0, s.target);
        }
        pop();
        break;
      }
      case StmtKind::ArrayWrite:
        expr(*s.index);
        expr(*s.value);
        emit(OpCode::StoreArray, 0, 0, s.target);
        pop(2);
        break;
      case StmtKind::If: {
        expr(*s.value);
        const int jf = emit(OpCode::JumpIfFalse);
        pop();
        if (s.thenS) stmt(*s.thenS);
        if (s.elseS) {
          const int jend = emit(OpCode::Jump);
          ops_[static_cast<std::size_t>(jf)].a = static_cast<std::int32_t>(ops_.size());
          stmt(*s.elseS);
          ops_[static_cast<std::size_t>(jend)].a = static_cast<std::int32_t>(ops_.size());
        } else {
          ops_[static_cast<std::size_t>(jf)].a = static_cast<std::int32_t>(ops_.size());
        }
        break;
      }
      case StmtKind::Case: {
        expr(*s.value);
        // Dispatch chain: compare the (dup'ed) selector against each label.
        std::vector<int> armJumps;  // JumpIfTrue sites, one per label
        std::vector<std::size_t> armFirstLabel;
        for (const auto& arm : s.arms) {
          armFirstLabel.push_back(armJumps.size());
          for (std::uint64_t label : arm.labels) {
            emit(OpCode::Dup);
            push();
            emit(OpCode::PushConst, constIndex(s.value->type.width, label));
            push();
            emit(OpCode::BiEq);
            pop();
            armJumps.push_back(emit(OpCode::JumpIfTrue));
            pop();
          }
        }
        // No label hit: drop the selector, run the default, jump to end.
        emit(OpCode::Pop);
        std::vector<int> endJumps;
        if (s.defaultArm) stmt(*s.defaultArm);
        endJumps.push_back(emit(OpCode::Jump));

        for (std::size_t ai = 0; ai < s.arms.size(); ++ai) {
          const std::size_t first = armFirstLabel[ai];
          const std::size_t last = ai + 1 < s.arms.size() ? armFirstLabel[ai + 1]
                                                          : armJumps.size();
          const auto target = static_cast<std::int32_t>(ops_.size());
          for (std::size_t k = first; k < last; ++k) {
            ops_[static_cast<std::size_t>(armJumps[k])].a = target;
          }
          emit(OpCode::Pop);  // drop the selector copy
          if (s.arms[ai].body) stmt(*s.arms[ai].body);
          endJumps.push_back(emit(OpCode::Jump));
        }
        pop();  // selector accounted
        const auto end = static_cast<std::int32_t>(ops_.size());
        for (int j : endJumps) ops_[static_cast<std::size_t>(j)].a = end;
        break;
      }
      case StmtKind::Block:
        for (const auto& st : s.stmts) stmt(*st);
        break;
    }
  }

  const Design& d_;
  std::vector<ConstEntry>& pool_;
  std::unordered_map<std::uint64_t, int> constMap_;
  std::vector<Op> ops_;
  int depth_ = 0;
  int maxDepth_ = 0;
};

}  // namespace

CompiledDesign compileDesign(const Design& d) {
  CompiledDesign out;
  Compiler compiler(d, out.constants);
  out.procs.reserve(d.processes.size());
  for (const auto& p : d.processes) {
    out.procs.push_back(compiler.compile(*p.body));
  }
  return out;
}

}  // namespace xlv::abstraction
