// TlmIpModel: the abstracted (RTL-to-TLM) executable model.
//
// This is the product of the abstraction step (paper Section 5): the RTL
// scheduler is replaced by an explicit scheduler() function that reproduces,
// per clock cycle, the phases of the HDL simulation cycle (Fig. 6b), with
// the dual-clock extension wrapping the high-frequency clock periods inside
// the same transaction (Fig. 8b). One scheduler() call == one TLM
// transaction == one RTL clock cycle, preserving cycle accuracy.
//
// Why it is faster than the event-driven kernel (Table 3):
//   * no time wheel, no event objects, no per-timestep bookkeeping;
//   * asynchronous processes are levelized: a topological order is computed
//     once, and each settling pass is a single ordered sweep over the dirty
//     processes instead of iterated delta cycles with wake-up queues.
// For acyclic combinational logic the sweep reaches the identical fixpoint
// the delta iteration would (verified by the cycle-equivalence tests).
//
// Concurrency model: everything that is expensive to derive and immutable
// after construction — the elaborated design copy, the compiled process
// bodies, the process classification and the levelized sweep order — lives
// in a TlmModelLayout shared read-only (via shared_ptr-const) by any number
// of model instances. A TlmIpModel is then a cheap, independent simulation
// session: per-instance value store, dirty flags, cycle counter and active
// mutant. A mutation campaign compiles the injected design once and clones
// one session per task/thread; sessions never share mutable state.
//
// Mutant support (Section 6): the model owns the scheduler-phase application
// points. Inactive mutants commit their target at the normal edge-commit
// point (making the injected model cycle-equivalent to the original); the
// active mutant commits at its class's phase:
//   MinDelay   -> first delta after the rising edge,
//   DeltaDelay(n) -> at the n-th high-frequency period,
//   MaxDelay   -> just before the falling edge.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "abstraction/compiled.h"
#include "abstraction/scalar_machine.h"
#include "ir/eval.h"
#include "ir/walk.h"
#include "mutation/adam.h"

namespace xlv::abstraction {

struct TlmModelStats {
  std::uint64_t transactions = 0;
  std::uint64_t processRuns = 0;
  std::uint64_t sweepPasses = 0;
  std::uint64_t commits = 0;
};

struct TlmModelConfig {
  /// High-frequency periods per clock cycle (0 = single-clock scheduler,
  /// Section 5.2.1; >0 = dual-clock scheduler, Section 5.2.2).
  int hfRatio = 0;
  /// Guard for designs whose combinational network is cyclic (rejected).
  bool allowCombLoops = false;
};

/// The immutable, policy-independent part of an abstracted model: one
/// elaboration + compilation + levelization, shared read-only by every
/// session instantiated from it. Thread-safe to share once built.
struct TlmModelLayout {
  ir::Design design;   ///< owned copy: sessions outlive construction inputs
  TlmModelConfig cfg;
  CompiledDesign code;  ///< compiled process bodies (the abstraction product)
  std::vector<mutation::InjectedMutant> mutants;

  std::vector<int> mainRise, mainPost, mainFall, hfRise, hfFall;
  std::vector<int> sweepOrder;  ///< async process indices in topological order
  std::vector<std::vector<int>> sensitiveSlots;  ///< symbol -> sweep slots
};

using TlmModelLayoutPtr = std::shared_ptr<const TlmModelLayout>;

/// A restorable state of one TlmIpModel session, valid at the transaction
/// boundary or at the stimulus point (i.e. between scheduler() calls, with
/// setInput calls since the last transaction captured through the dirty
/// flags). Policy-independent; restore() requires a session over the same
/// layout shape. The active mutant and the stats counters are session
/// configuration/diagnostics and deliberately NOT part of the state.
struct TlmModelSnapshot {
  ScalarSnapshot machine;
  std::vector<char> dirty;
  bool anyDirty = false;
  std::uint64_t cycle = 0;
};

/// Build the shared layout for a (possibly injected) design. Throws
/// std::invalid_argument on an hfRatio without an HF clock, on processes
/// with unknown clocks, and on combinational cycles (unless allowed).
inline TlmModelLayoutPtr buildTlmModelLayout(
    const ir::Design& design, TlmModelConfig cfg,
    std::vector<mutation::InjectedMutant> mutants = {}) {
  auto layout = std::make_shared<TlmModelLayout>();
  layout->design = design;
  layout->cfg = cfg;
  layout->code = compileDesign(layout->design);
  layout->mutants = std::move(mutants);
  const ir::Design& d = layout->design;

  if (cfg.hfRatio > 0 && d.hfClock == ir::kNoSymbol) {
    throw std::invalid_argument("TlmIpModel: hfRatio set but design has no HF clock");
  }

  // Classify processes by clock and edge.
  std::vector<int> asyncProcs;
  for (std::size_t pi = 0; pi < d.processes.size(); ++pi) {
    const auto& p = d.processes[pi];
    if (!p.isSync) {
      asyncProcs.push_back(static_cast<int>(pi));
      continue;
    }
    const bool rising = p.edge == ir::EdgeKind::Rising;
    if (p.clock == d.mainClock) {
      if (p.postEdge) {
        layout->mainPost.push_back(static_cast<int>(pi));
      } else {
        (rising ? layout->mainRise : layout->mainFall).push_back(static_cast<int>(pi));
      }
    } else if (p.clock == d.hfClock) {
      (rising ? layout->hfRise : layout->hfFall).push_back(static_cast<int>(pi));
    } else {
      throw std::invalid_argument("TlmIpModel: process '" + p.name + "' uses unknown clock");
    }
  }

  // Topologically order the asynchronous processes by write->read signal
  // dependencies; build the dirty-marking index.
  const int n = static_cast<int>(asyncProcs.size());
  layout->sensitiveSlots.assign(d.symbols.size(), {});
  std::vector<std::set<ir::SymbolId>> writes(static_cast<std::size_t>(n));
  std::vector<std::set<ir::SymbolId>> reads(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const auto& p = d.processes[static_cast<std::size_t>(asyncProcs[static_cast<std::size_t>(k)])];
    ir::collectWrites(*p.body, writes[static_cast<std::size_t>(k)]);
    for (ir::SymbolId s : p.sensitivity) reads[static_cast<std::size_t>(k)].insert(s);
  }
  // Edges: k -> m when k writes a symbol m reads.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (int k = 0; k < n; ++k) {
    for (int m = 0; m < n; ++m) {
      if (k == m) continue;
      bool dep = false;
      for (ir::SymbolId s : writes[static_cast<std::size_t>(k)]) {
        if (reads[static_cast<std::size_t>(m)].count(s)) {
          dep = true;
          break;
        }
      }
      if (dep) {
        adj[static_cast<std::size_t>(k)].push_back(m);
        ++indeg[static_cast<std::size_t>(m)];
      }
    }
  }
  // Kahn topological sort.
  std::vector<int> order;
  std::vector<int> queue;
  for (int k = 0; k < n; ++k) {
    if (indeg[static_cast<std::size_t>(k)] == 0) queue.push_back(k);
  }
  while (!queue.empty()) {
    const int k = queue.back();
    queue.pop_back();
    order.push_back(k);
    for (int m : adj[static_cast<std::size_t>(k)]) {
      if (--indeg[static_cast<std::size_t>(m)] == 0) queue.push_back(m);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    if (!cfg.allowCombLoops) {
      throw std::invalid_argument(
          "TlmIpModel: combinational cycle among asynchronous processes in '" + d.name + "'");
    }
    order.clear();
    for (int k = 0; k < n; ++k) order.push_back(k);
  }
  // sweepOrder[slot] = process index; slotOfK[k] = slot of async order k.
  layout->sweepOrder.resize(static_cast<std::size_t>(n));
  std::vector<int> slotOfK(static_cast<std::size_t>(n));
  for (int slot = 0; slot < n; ++slot) {
    layout->sweepOrder[static_cast<std::size_t>(slot)] =
        asyncProcs[static_cast<std::size_t>(order[static_cast<std::size_t>(slot)])];
    slotOfK[static_cast<std::size_t>(order[static_cast<std::size_t>(slot)])] = slot;
  }
  // Sensitivity: symbol -> sweep slots to dirty.
  for (int k = 0; k < n; ++k) {
    for (ir::SymbolId s : reads[static_cast<std::size_t>(k)]) {
      if (s == d.mainClock || s == d.hfClock) continue;
      layout->sensitiveSlots[static_cast<std::size_t>(s)].push_back(
          slotOfK[static_cast<std::size_t>(k)]);
    }
  }
  return layout;
}

template <class P>
class TlmIpModel {
 public:
  using Vec = typename P::Vec;

  /// Abstract a clean design (no mutants).
  TlmIpModel(const ir::Design& design, TlmModelConfig cfg)
      : TlmIpModel(buildTlmModelLayout(design, cfg)) {}

  /// Abstract an ADAM-injected design.
  TlmIpModel(const mutation::InjectedDesign& injected, TlmModelConfig cfg)
      : TlmIpModel(buildTlmModelLayout(injected.design, cfg, injected.mutants)) {}

  /// Instantiate a fresh session over a pre-built shared layout: cheap
  /// (per-instance value store only), safe to do concurrently.
  explicit TlmIpModel(TlmModelLayoutPtr layout)
      : layout_(std::move(layout)), machine_(layout_->design, layout_->code) {
    // HDL initialization semantics: every combinational process evaluates
    // once before the first transaction.
    dirty_.assign(layout_->sweepOrder.size(), 1);
    anyDirty_ = !dirty_.empty();
  }

  const ir::Design& design() const noexcept { return layout_->design; }
  const TlmModelLayoutPtr& layout() const noexcept { return layout_; }
  const TlmModelStats& stats() const noexcept { return stats_; }
  std::uint64_t cycle() const noexcept { return cycleCount_; }

  // --- port access -----------------------------------------------------------
  void setInput(ir::SymbolId sym, const Vec& v) {
    if (machine_.setScalar(sym, machine_.fromVec(v))) markDirty(sym);
  }
  void setInput(ir::SymbolId sym, std::uint64_t v) {
    setInput(sym, Vec::fromUint(design().symbol(sym).type.width, v));
  }
  void setInputByName(const std::string& name, std::uint64_t v) { setInput(mustFind(name), v); }
  /// Hot-path drive: identical semantics to setInput(sym, uint64) without
  /// the Vec round trip (the per-mutant campaign loop calls this once per
  /// port per cycle — see analysis::simulateMutant's de-stringed driver).
  void setInputUint(ir::SymbolId sym, std::uint64_t v) {
    if (machine_.setScalar(sym, SV{v & maskOf(machine_.width(sym)), 0})) markDirty(sym);
  }

  Vec value(ir::SymbolId sym) const { return machine_.toVec(sym); }
  std::uint64_t valueUint(ir::SymbolId sym) const noexcept { return machine_.valueUint(sym); }
  /// Both scalar planes, unmasked: the value+unknown comparison the golden
  /// recorder uses to detect endpoint activity (a 0 -> X transition is a
  /// real change valueUint alone would miss).
  SV rawValue(ir::SymbolId sym) const noexcept { return machine_.get(sym); }
  Vec arrayElem(ir::SymbolId sym, std::uint64_t idx) const {
    return machine_.arrayElem(sym, idx);
  }
  std::uint64_t valueUintByName(const std::string& name) const {
    return machine_.valueUint(mustFind(name));
  }

  // --- checkpointing ----------------------------------------------------------
  /// Capture this session's state between scheduler() calls. The write
  /// buffer is always drained at that boundary, so the state is exactly
  /// (machine values, dirty flags, cycle counter).
  TlmModelSnapshot snapshot() const {
    return TlmModelSnapshot{machine_.snapshot(), dirty_, anyDirty_, cycleCount_};
  }

  /// Restore a snapshot taken from a session over the same layout shape
  /// (typically the same TlmModelLayoutPtr). The active mutant selection is
  /// untouched — a mutant session fast-forwarding from a clean-run
  /// checkpoint keeps its own mutant active — and the stats counters keep
  /// accumulating (they are diagnostics, not simulation state). Throws
  /// std::invalid_argument on a shape mismatch.
  void restore(const TlmModelSnapshot& s) {
    if (s.dirty.size() != dirty_.size()) {
      throw std::invalid_argument("TlmIpModel: snapshot dirty-flag shape mismatch");
    }
    machine_.restore(s.machine);
    dirty_ = s.dirty;
    anyDirty_ = s.anyDirty;
    cycleCount_ = s.cycle;
    nba_.clear();
  }

  // --- mutant control ---------------------------------------------------------
  int mutantCount() const noexcept { return static_cast<int>(layout_->mutants.size()); }
  const mutation::InjectedMutant& mutant(int id) const {
    return layout_->mutants.at(static_cast<std::size_t>(id));
  }
  /// Activate exactly one mutant (or none with id = -1).
  void activateMutant(int id) {
    if (id < -1 || id >= mutantCount()) {
      throw std::out_of_range("TlmIpModel: mutant id out of range");
    }
    activeMutant_ = id;
  }
  int activeMutant() const noexcept { return activeMutant_; }

  // --- execution ---------------------------------------------------------------
  /// One TLM transaction: one cycle of the main clock (Fig. 6b / Fig. 8b).
  void scheduler() {
    const TlmModelLayout& L = *layout_;
    ++stats_.transactions;
    ++cycleCount_;

    // Inputs changed since the last call settle first (stimulus phase).
    sweep();

    // Rising edge of clock: execute synchronous processes.
    setClock(L.design.mainClock, 1);
    runProcs(L.mainRise);
    // Edge commit: nonblocking writes plus every *inactive* mutated target.
    commitNba();
    applyMutants(/*min=*/false, /*max=*/false, /*deltaTick=*/-1, /*inactiveOnly=*/true);
    sweep();

    // Post-edge samplers (sensor main flip-flops).
    if (!L.mainPost.empty()) {
      runProcs(L.mainPost);
      commitNba();
      sweep();
    }

    // First delta cycle: minimum-delay mutants land here (Fig. 9b).
    applyMutants(true, false, -1, false);
    sweep();

    // High-frequency clock periods wrapped inside this transaction (Fig. 8b);
    // delta-delay mutants land at their period (Fig. 9d).
    for (int j = 1; j <= L.cfg.hfRatio; ++j) {
      applyMutants(false, false, j, false);
      sweep();
      setClock(L.design.hfClock, 1);
      runProcs(L.hfRise);
      commitNba();
      sweep();
      setClock(L.design.hfClock, 0);
      if (!L.hfFall.empty()) {
        runProcs(L.hfFall);
        commitNba();
        sweep();
      }
    }

    // Just before the falling edge: maximum-delay mutants (Fig. 9c).
    applyMutants(false, true, -1, false);
    sweep();

    // Falling edge of clock.
    setClock(L.design.mainClock, 0);
    runProcs(L.mainFall);
    commitNba();
    sweep();
  }

  /// Convenience: run n transactions with a stimulus callback.
  void run(std::uint64_t n,
           const std::function<void(std::uint64_t, TlmIpModel&)>& stimulus = {}) {
    for (std::uint64_t i = 0; i < n; ++i) {
      if (stimulus) stimulus(cycleCount_, *this);
      scheduler();
    }
  }

 private:
  void markDirty(ir::SymbolId s) {
    for (int slot : layout_->sensitiveSlots[static_cast<std::size_t>(s)]) {
      if (!dirty_[static_cast<std::size_t>(slot)]) {
        dirty_[static_cast<std::size_t>(slot)] = 1;
        anyDirty_ = true;
      }
    }
  }

  /// One levelized settling pass: run dirty async processes in topological
  /// order, committing each process's writes immediately so downstream
  /// processes (later slots) observe them within the same pass.
  void sweep() {
    if (!anyDirty_) return;
    ++stats_.sweepPasses;
    // A pass can re-dirty later slots only (topological order), except for
    // loops tolerated under allowCombLoops; iterate until clean.
    for (int round = 0; anyDirty_; ++round) {
      if (round > 64) {
        throw std::runtime_error("TlmIpModel: combinational iteration limit in '" +
                                 layout_->design.name + "'");
      }
      anyDirty_ = false;
      for (std::size_t slot = 0; slot < layout_->sweepOrder.size(); ++slot) {
        if (!dirty_[slot]) continue;
        dirty_[slot] = 0;
        ++stats_.processRuns;
        machine_.run(layout_->sweepOrder[slot], nba_);
        for (auto& w : nba_) {
          if (machine_.commit(w)) {
            ++stats_.commits;
            markDirty(w.sym);
          }
        }
        nba_.clear();
      }
    }
  }

  void runProcs(const std::vector<int>& procs) {
    for (int pi : procs) {
      ++stats_.processRuns;
      machine_.run(pi, nba_);
    }
  }

  /// Commit buffered nonblocking writes; skip mutated targets (they are
  /// handled by applyMutants at their phase).
  void commitNba() {
    for (auto& w : nba_) {
      if (machine_.commit(w)) {
        ++stats_.commits;
        markDirty(w.sym);
      }
    }
    nba_.clear();
  }

  /// Apply mutated-target updates whose phase matches.
  void applyMutants(bool minPhase, bool maxPhase, int deltaTick, bool inactiveOnly) {
    const auto& mutants = layout_->mutants;
    for (std::size_t i = 0; i < mutants.size(); ++i) {
      const auto& m = mutants[i];
      const bool active = static_cast<int>(i) == activeMutant_;
      if (inactiveOnly) {
        // Edge-commit phase: targets whose mutants are all inactive update
        // normally. A target shared by an active mutant must NOT commit here.
        if (targetHasActiveMutant(m.target)) continue;
        if (!firstMutantOfTarget(i)) continue;  // apply once per target
      } else {
        if (!active) continue;
        switch (m.spec.kind) {
          case mutation::MutantKind::MinDelay:
            if (!minPhase) continue;
            break;
          case mutation::MutantKind::MaxDelay:
            if (!maxPhase) continue;
            break;
          case mutation::MutantKind::DeltaDelay:
            if (deltaTick != m.spec.deltaTicks) continue;
            break;
        }
      }
      ScalarWrite w;
      w.sym = m.target;
      w.value = machine_.get(m.tmpVar);
      if (machine_.commit(w)) {
        ++stats_.commits;
        markDirty(w.sym);
      }
    }
  }

  bool targetHasActiveMutant(ir::SymbolId target) const {
    if (activeMutant_ < 0) return false;
    return layout_->mutants[static_cast<std::size_t>(activeMutant_)].target == target;
  }

  bool firstMutantOfTarget(std::size_t i) const {
    const auto& mutants = layout_->mutants;
    for (std::size_t k = 0; k < i; ++k) {
      if (mutants[k].target == mutants[i].target) return false;
    }
    return true;
  }

  void setClock(ir::SymbolId clk, std::uint64_t v) {
    if (clk != ir::kNoSymbol) machine_.setScalar(clk, SV{v & 1, 0});
  }

  ir::SymbolId mustFind(const std::string& name) const {
    const ir::SymbolId s = design().findSymbol(name);
    if (s == ir::kNoSymbol) {
      throw std::invalid_argument("TlmIpModel: no symbol named '" + name + "'");
    }
    return s;
  }

  TlmModelLayoutPtr layout_;  ///< shared read-only; keeps design/code alive
  ScalarMachine<P> machine_;  ///< per-session native-word execution backend
  int activeMutant_ = -1;

  std::vector<char> dirty_;
  bool anyDirty_ = false;

  std::vector<ScalarWrite> nba_;
  std::uint64_t cycleCount_ = 0;
  TlmModelStats stats_;
};

}  // namespace xlv::abstraction
