// Scalar execution backend for the compiled TLM model.
//
// Generated TLM C++ represents HDL vectors with native machine words
// (HDTLib maps data types onto statically allocated arrays of unsigned
// integers — one 64-bit word suffices for every signal of the case
// studies). This backend executes the compiled instruction stream over
// two-plane (value, unknown) scalars, giving the abstracted model the
// native-word performance of generated code, while the event-driven RTL
// kernel keeps executing the elaborated IR — the cost structure behind the
// paper's Table 3/4 speedups.
//
// Semantics are bit-identical to the LogicVector/BitVector operations
// (4-state pessimism included); the RTL-vs-TLM cycle-equivalence tests pin
// this. Designs with symbols wider than 64 bits are rejected by this
// backend; TlmIpModel reports them with a clear error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "abstraction/compiled.h"
#include "hdt/policy.h"
#include "ir/design.h"

namespace xlv::abstraction {

/// One 4-state scalar: value plane + unknown plane (bit i unknown when
/// unk bit set; val distinguishes X(0) / Z(1)). 2-state keeps unk == 0.
struct SV {
  std::uint64_t val = 0;
  std::uint64_t unk = 0;
};

struct ScalarWrite {
  ir::SymbolId sym = ir::kNoSymbol;
  int hi = -1, lo = -1;
  std::int64_t arrayIndex = -1;
  SV value;
};

/// A full copy of a ScalarMachine's mutable state: every scalar symbol's
/// value+unknown planes plus every array pool. Policy-independent (2-state
/// machines simply keep unk == 0 everywhere), so one snapshot type serves
/// both backends and the campaign checkpoint store.
struct ScalarSnapshot {
  std::vector<SV> vals;
  std::vector<std::vector<SV>> arrays;
};

inline std::uint64_t maskOf(int width) noexcept {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

template <class P>
class ScalarMachine {
 public:
  static constexpr bool kFourState = std::is_same_v<P, hdt::FourState>;
  using Vec = typename P::Vec;

  ScalarMachine(const ir::Design& d, const CompiledDesign& code) : d_(d), code_(code) {
    vals_.resize(d.symbols.size());
    widths_.resize(d.symbols.size());
    arrayBase_.assign(d.symbols.size(), -1);
    for (std::size_t i = 0; i < d.symbols.size(); ++i) {
      const auto& s = d.symbols[i];
      if (s.type.width > 64) {
        throw std::invalid_argument(
            "scalar TLM backend: symbol '" + s.name + "' is wider than 64 bits");
      }
      widths_[i] = s.type.width;
      if (s.kind == ir::SymKind::Array) {
        arrayBase_[i] = static_cast<int>(arrays_.size());
        arrays_.emplace_back(static_cast<std::size_t>(s.arraySize), SV{});
      } else if (s.hasInit) {
        vals_[i].val = s.initValue & maskOf(s.type.width);
      }
    }
    for (const auto& ai : d.arrayInits) {
      auto& pool = arrays_[static_cast<std::size_t>(arrayBase_[static_cast<std::size_t>(ai.array)])];
      const std::uint64_t m = maskOf(d.symbol(ai.array).type.width);
      for (std::size_t k = 0; k < ai.words.size() && k < pool.size(); ++k) {
        pool[k] = SV{ai.words[k] & m, 0};
      }
    }
    consts_.reserve(code.constants.size());
    for (const auto& c : code.constants) consts_.push_back(SV{c.value & maskOf(c.width), 0});
    stack_.resize(64);
  }

  // --- store access ------------------------------------------------------------
  SV get(ir::SymbolId s) const noexcept { return vals_[static_cast<std::size_t>(s)]; }

  int width(ir::SymbolId s) const noexcept { return widths_[static_cast<std::size_t>(s)]; }

  // --- checkpointing -----------------------------------------------------------
  /// Capture the complete mutable state (both value planes, all arrays).
  /// The compiled code, constants and scratch stack are immutable or
  /// transient and are not part of the state.
  ScalarSnapshot snapshot() const { return ScalarSnapshot{vals_, arrays_}; }

  /// Restore a snapshot taken from a machine over the SAME design/layout.
  /// Throws std::invalid_argument on a shape mismatch (symbol or array-pool
  /// counts differ) — restoring across layouts is always a caller bug.
  void restore(const ScalarSnapshot& s) {
    if (s.vals.size() != vals_.size() || s.arrays.size() != arrays_.size()) {
      throw std::invalid_argument("scalar machine: snapshot shape mismatch");
    }
    for (std::size_t i = 0; i < arrays_.size(); ++i) {
      if (s.arrays[i].size() != arrays_[i].size()) {
        throw std::invalid_argument("scalar machine: snapshot array-pool size mismatch");
      }
    }
    vals_ = s.vals;
    arrays_ = s.arrays;
  }

  bool setScalar(ir::SymbolId s, SV v) {
    SV& cur = vals_[static_cast<std::size_t>(s)];
    if (cur.val == v.val && cur.unk == v.unk) return false;
    cur = v;
    return true;
  }

  std::uint64_t valueUint(ir::SymbolId s) const noexcept {
    const SV& v = vals_[static_cast<std::size_t>(s)];
    return v.val & ~v.unk;
  }

  Vec toVec(ir::SymbolId s) const {
    const SV v = vals_[static_cast<std::size_t>(s)];
    const int w = widths_[static_cast<std::size_t>(s)];
    if constexpr (kFourState) {
      hdt::LogicVector out(w);
      out.setWord(0, {v.val, v.unk});
      out.maskTop();
      return out;
    } else {
      return Vec::fromUint(w, v.val);
    }
  }

  SV fromVec(const Vec& v) const {
    if constexpr (kFourState) {
      return SV{v.valWord(0), v.unkWord(0)};
    } else {
      return SV{v.word(0), 0};
    }
  }

  Vec arrayElem(ir::SymbolId s, std::uint64_t idx) const {
    const auto& pool = arrays_[static_cast<std::size_t>(arrayBase_[static_cast<std::size_t>(s)])];
    const SV v = pool[static_cast<std::size_t>(idx % pool.size())];
    const int w = widths_[static_cast<std::size_t>(s)];
    if constexpr (kFourState) {
      hdt::LogicVector out(w);
      out.setWord(0, {v.val, v.unk});
      out.maskTop();
      return out;
    } else {
      return Vec::fromUint(w, v.val);
    }
  }

  /// Commit one nonblocking write; true when the stored value changed.
  bool commit(const ScalarWrite& w) {
    if (w.arrayIndex >= 0) {
      auto& pool =
          arrays_[static_cast<std::size_t>(arrayBase_[static_cast<std::size_t>(w.sym)])];
      SV& cur = pool[static_cast<std::size_t>(w.arrayIndex) % pool.size()];
      if (cur.val == w.value.val && cur.unk == w.value.unk) return false;
      cur = w.value;
      return true;
    }
    if (w.hi >= 0) {
      const std::uint64_t m = maskOf(w.hi - w.lo + 1) << w.lo;
      SV& cur = vals_[static_cast<std::size_t>(w.sym)];
      const SV next{(cur.val & ~m) | ((w.value.val << w.lo) & m),
                    (cur.unk & ~m) | ((w.value.unk << w.lo) & m)};
      if (cur.val == next.val && cur.unk == next.unk) return false;
      cur = next;
      return true;
    }
    return setScalar(w.sym, w.value);
  }

  // --- execution -----------------------------------------------------------------
  void run(int procIndex, std::vector<ScalarWrite>& nba) {
    const auto& ops = code_.procs[static_cast<std::size_t>(procIndex)].ops;
    if (static_cast<int>(stack_.size()) <
        code_.procs[static_cast<std::size_t>(procIndex)].maxStack + 4) {
      stack_.resize(static_cast<std::size_t>(
          code_.procs[static_cast<std::size_t>(procIndex)].maxStack + 8));
    }
    SV* sp = stack_.data();  // points one past the top
    std::size_t pc = 0;
    while (true) {
      const Op& op = ops[pc];
      switch (op.code) {
        case OpCode::PushConst: *sp++ = consts_[static_cast<std::size_t>(op.a)]; break;
        case OpCode::PushSig: *sp++ = vals_[static_cast<std::size_t>(op.sym)]; break;
        case OpCode::PushArrayElem: {
          const SV idx = *--sp;
          if (idx.unk != 0) {
            *sp++ = allX(op.a);
          } else {
            const auto& pool =
                arrays_[static_cast<std::size_t>(arrayBase_[static_cast<std::size_t>(op.sym)])];
            *sp++ = pool[static_cast<std::size_t>(idx.val) % pool.size()];
          }
          break;
        }
        case OpCode::UnNot: {
          SV& a = sp[-1];
          if constexpr (kFourState) {
            a.val = ~a.val & ~a.unk & maskOf(op.a);
            a.unk &= maskOf(op.a);
          } else {
            a.val = ~a.val & maskOf(op.a);
          }
          break;
        }
        case OpCode::UnNeg: {
          SV& a = sp[-1];
          a = a.unk ? allX(op.a) : norm(SV{(~a.val + 1), 0}, op.a);
          break;
        }
        case OpCode::UnRedAnd: {
          SV& a = sp[-1];
          a = a.unk ? allX(1) : SV{a.val == maskOf(op.a) ? 1ULL : 0ULL, 0};
          break;
        }
        case OpCode::UnRedOr: {
          SV& a = sp[-1];
          if ((a.val & ~a.unk) != 0) {
            a = SV{1, 0};
          } else {
            a = a.unk ? allX(1) : SV{0, 0};
          }
          break;
        }
        case OpCode::UnRedXor: {
          SV& a = sp[-1];
          a = a.unk ? allX(1)
                    : SV{static_cast<std::uint64_t>(__builtin_parityll(a.val)), 0};
          break;
        }
        case OpCode::UnBoolNot: {
          SV& a = sp[-1];
          a = SV{isTrue(a) ? 0ULL : 1ULL, 0};
          break;
        }
        case OpCode::BiAnd: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            const hdt::W4 r = hdt::and4({a.val, a.unk}, {b.val, b.unk});
            a = SV{r.val, r.unk};
          } else {
            a.val &= b.val;  // single-plane fast path (HDTLib 2-state)
          }
          break;
        }
        case OpCode::BiOr: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            const hdt::W4 r = hdt::or4({a.val, a.unk}, {b.val, b.unk});
            a = SV{r.val, r.unk};
          } else {
            a.val |= b.val;
          }
          break;
        }
        case OpCode::BiXor: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            const hdt::W4 r = hdt::xor4({a.val, a.unk}, {b.val, b.unk});
            a = SV{r.val, r.unk};
          } else {
            a.val ^= b.val;
          }
          break;
        }
        case OpCode::BiAdd: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            a = (a.unk | b.unk) ? allX(op.a)
                                : norm(SV{a.val + b.val, 0}, op.a);
          } else {
            a.val = (a.val + b.val) & maskOf(op.a);
          }
          break;
        }
        case OpCode::BiSub: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            a = (a.unk | b.unk) ? allX(op.a)
                                : norm(SV{a.val - b.val, 0}, op.a);
          } else {
            a.val = (a.val - b.val) & maskOf(op.a);
          }
          break;
        }
        case OpCode::BiMul: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            a = (a.unk | b.unk) ? allX(op.a)
                                : norm(SV{a.val * b.val, 0}, op.a);
          } else {
            a.val = (a.val * b.val) & maskOf(op.a);
          }
          break;
        }
        case OpCode::BiDiv: {
          const SV b = *--sp;
          SV& a = sp[-1];
          a = (a.unk | b.unk || b.val == 0) ? allX(op.a) : SV{a.val / b.val, 0};
          break;
        }
        case OpCode::BiMod: {
          const SV b = *--sp;
          SV& a = sp[-1];
          a = (a.unk | b.unk || b.val == 0) ? allX(op.a) : SV{a.val % b.val, 0};
          break;
        }
        case OpCode::BiShl:
        case OpCode::BiShr:
        case OpCode::BiAShr: {
          const SV amtv = *--sp;
          SV& a = sp[-1];
          if (amtv.unk != 0) {
            a = allX(op.a);
            break;
          }
          const int w = op.a;
          const std::uint64_t amt = amtv.val;
          if (op.code == OpCode::BiShl) {
            a = amt >= static_cast<std::uint64_t>(w)
                    ? SV{0, 0}
                    : norm(SV{a.val << amt, a.unk << amt}, w);
          } else if (op.code == OpCode::BiShr) {
            a = amt >= static_cast<std::uint64_t>(w) ? SV{0, 0}
                                                     : SV{a.val >> amt, a.unk >> amt};
          } else {
            // Arithmetic shift: replicate the (possibly unknown) sign bit.
            const std::uint64_t signMask = 1ULL << (w - 1);
            const std::uint64_t sVal = a.val & signMask;
            const std::uint64_t sUnk = a.unk & signMask;
            const std::uint64_t n = amt >= static_cast<std::uint64_t>(w)
                                        ? static_cast<std::uint64_t>(w)
                                        : amt;
            std::uint64_t fill = n == 0 ? 0 : (maskOf(static_cast<int>(n)) << (w - n));
            // Fill with the sign logic value: 1 -> ones, X -> X, Z -> Z.
            a.val = ((a.val >> n) | (sVal ? fill : 0)) & maskOf(w);
            a.unk = ((a.unk >> n) | (sUnk ? fill : 0)) & maskOf(w);
            break;
          }
          break;
        }
        case OpCode::BiEq: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            a = (a.unk | b.unk) ? allX(1) : SV{a.val == b.val ? 1ULL : 0ULL, 0};
          } else {
            a.val = a.val == b.val ? 1ULL : 0ULL;
          }
          break;
        }
        case OpCode::BiNe: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            a = (a.unk | b.unk) ? allX(1) : SV{a.val != b.val ? 1ULL : 0ULL, 0};
          } else {
            a.val = a.val != b.val ? 1ULL : 0ULL;
          }
          break;
        }
        case OpCode::BiLtu: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            a = (a.unk | b.unk) ? allX(1) : SV{a.val < b.val ? 1ULL : 0ULL, 0};
          } else {
            a.val = a.val < b.val ? 1ULL : 0ULL;
          }
          break;
        }
        case OpCode::BiLeu: {
          const SV b = *--sp;
          SV& a = sp[-1];
          if constexpr (kFourState) {
            a = (a.unk | b.unk) ? allX(1) : SV{a.val <= b.val ? 1ULL : 0ULL, 0};
          } else {
            a.val = a.val <= b.val ? 1ULL : 0ULL;
          }
          break;
        }
        case OpCode::BiLts: {
          const SV b = *--sp;
          SV& a = sp[-1];
          a = (a.unk | b.unk) ? allX(1)
                              : SV{sext64(a.val, op.a) < sext64(b.val, op.a) ? 1ULL : 0ULL, 0};
          break;
        }
        case OpCode::BiLes: {
          const SV b = *--sp;
          SV& a = sp[-1];
          a = (a.unk | b.unk) ? allX(1)
                              : SV{sext64(a.val, op.a) <= sext64(b.val, op.a) ? 1ULL : 0ULL, 0};
          break;
        }
        case OpCode::BiConcat: {
          const SV b = *--sp;
          SV& a = sp[-1];
          a = SV{(a.val << op.b) | b.val, (a.unk << op.b) | b.unk};
          break;
        }
        case OpCode::Slice: {
          SV& a = sp[-1];
          const std::uint64_t m = maskOf(op.a - op.b + 1);
          a = SV{(a.val >> op.b) & m, (a.unk >> op.b) & m};
          break;
        }
        case OpCode::Resize: {
          SV& a = sp[-1];
          a.val &= maskOf(op.a);
          a.unk &= maskOf(op.a);
          break;
        }
        case OpCode::Sext: {
          SV& a = sp[-1];
          const int sw = op.b;
          const int tw = op.a;
          if (tw <= sw) {
            a.val &= maskOf(tw);
            a.unk &= maskOf(tw);
            break;
          }
          const std::uint64_t signMask = 1ULL << (sw - 1);
          const std::uint64_t ext = maskOf(tw) & ~maskOf(sw);
          const bool sUnk = (a.unk & signMask) != 0;
          const bool sVal = (a.val & signMask) != 0;
          if (sUnk) {
            a.unk |= ext;
            if (sVal) a.val |= ext;  // Z sign fills Z; X sign fills X
          } else if (sVal) {
            a.val |= ext;
          }
          break;
        }
        case OpCode::JumpIfFalse: {
          const SV c = *--sp;
          if (!isTrue(c)) {
            pc = static_cast<std::size_t>(op.a);
            continue;
          }
          break;
        }
        case OpCode::JumpIfTrue: {
          const SV c = *--sp;
          if (isTrue(c)) {
            pc = static_cast<std::size_t>(op.a);
            continue;
          }
          break;
        }
        case OpCode::Jump:
          pc = static_cast<std::size_t>(op.a);
          continue;
        case OpCode::Dup:
          *sp = sp[-1];
          ++sp;
          break;
        case OpCode::Pop:
          --sp;
          break;
        case OpCode::StoreVar:
          vals_[static_cast<std::size_t>(op.sym)] = *--sp;
          break;
        case OpCode::StoreVarRange: {
          const SV v = *--sp;
          SV& cur = vals_[static_cast<std::size_t>(op.sym)];
          const std::uint64_t m = maskOf(op.a - op.b + 1) << op.b;
          cur.val = (cur.val & ~m) | ((v.val << op.b) & m);
          cur.unk = (cur.unk & ~m) | ((v.unk << op.b) & m);
          break;
        }
        case OpCode::StoreSig:
          nba.push_back(ScalarWrite{op.sym, -1, -1, -1, *--sp});
          break;
        case OpCode::StoreSigRange:
          nba.push_back(ScalarWrite{op.sym, op.a, op.b, -1, *--sp});
          break;
        case OpCode::StoreArray: {
          const SV v = *--sp;
          const SV idx = *--sp;
          if (idx.unk == 0) {
            nba.push_back(
                ScalarWrite{op.sym, -1, -1, static_cast<std::int64_t>(idx.val), v});
          }
          break;
        }
        case OpCode::End:
          return;
      }
      ++pc;
    }
  }

 private:
  static bool isTrue(SV v) noexcept {
    if constexpr (kFourState) {
      return v.unk == 0 && v.val != 0;
    } else {
      return v.val != 0;
    }
  }

  static SV norm(SV v, int width) noexcept {
    v.val &= maskOf(width);
    v.unk &= maskOf(width);
    return v;
  }

  SV allX(int width) const noexcept {
    if constexpr (kFourState) {
      return SV{0, maskOf(width)};
    } else {
      // 2-state library scrubs unknowns to 0 (HDTLib abstraction).
      return SV{0, 0};
    }
  }

  static std::int64_t sext64(std::uint64_t v, int width) noexcept {
    if (width >= 64) return static_cast<std::int64_t>(v);
    const std::uint64_t sign = 1ULL << (width - 1);
    return static_cast<std::int64_t>((v ^ sign) - sign);
  }

  const ir::Design& d_;
  const CompiledDesign& code_;
  std::vector<SV> vals_;
  std::vector<int> widths_;
  std::vector<int> arrayBase_;
  std::vector<std::vector<SV>> arrays_;
  std::vector<SV> consts_;
  std::vector<SV> stack_;
};

}  // namespace xlv::abstraction
