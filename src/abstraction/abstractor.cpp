#include "abstraction/abstractor.h"

#include "util/timer.h"

namespace xlv::abstraction {

AbstractionArtifacts abstractDesign(const ir::Design& design, const AbstractionOptions& opts) {
  util::Timer t;
  AbstractionArtifacts a;
  if (opts.emitSource) {
    EmitCppOptions eo;
    eo.hfRatio = opts.hfRatio;
    a.source = emitCpp(design, eo);
    a.sourceLines = countLines(a.source);
  }
  a.abstractionSeconds = t.seconds();
  return a;
}

AbstractionArtifacts abstractInjected(const mutation::InjectedDesign& injected,
                                      const AbstractionOptions& opts) {
  util::Timer t;
  AbstractionArtifacts a;
  if (opts.emitSource) {
    EmitCppOptions eo;
    eo.hfRatio = opts.hfRatio;
    a.source = emitCppInjected(injected, eo);
    a.sourceLines = countLines(a.source);
  }
  a.abstractionSeconds = t.seconds();
  return a;
}

}  // namespace xlv::abstraction
