// Native code generation for the abstracted TLM model (ROADMAP:
// "Native-codegen + mutant-batched simulation backend").
//
// emit_cpp.h renders the abstraction product for *reading* — the C++ a
// designer would inspect, mirroring the paper's Fig. 6b/8b listings. This
// module renders it for *running*: emitNativeCpp() transliterates every
// compiled process body (abstraction/compiled.h op streams) into
// straight-line C++ over two-plane scalars, bakes the layout's tables
// (widths, init values, constant pool, array pools, sweep order,
// sensitivity lists, mutant table, scheduler phase lists) into static
// arrays, and wraps the whole thing in a small C ABI:
//
//   xlvn_create/destroy         — session lifetime
//   xlvn_set_mutant             — activate one mutant (or -1)
//   xlvn_set_input              — TlmIpModel::setInputUint semantics
//   xlvn_step                   — one scheduler() transaction (0 ok,
//                                 -1 combinational iteration limit)
//   xlvn_value / xlvn_raw       — valueUint / both scalar planes
//   xlvn_cycle                  — transaction counter
//   xlvn_state_words/save/load  — snapshot in the shared word layout below
//   xlvn_abi / xlvn_identity    — link-time compatibility checks
//
// The emitted translation unit is fully self-contained (standard headers
// only): the system compiler that builds it (abstraction/native_backend.h)
// has no access to this repository's include paths. Every operation is a
// 1:1 transliteration of ScalarMachine<P> with the policy branches resolved
// at emit time, and the scheduler replicates TlmIpModel::scheduler() phase
// for phase — bit-identity with the interpreter is by construction and
// pinned by the native conformance suite.
//
// Shared snapshot word layout (xlvn_save/load AND the host-side
// snapshotToWords/wordsToSnapshot below, so one campaign checkpoint serves
// both backends):
//
//   [ cycle, anyDirty,
//     dirty[0..nSweep),                      one word per sweep slot,
//     (val, unk) per symbol in id order,
//     (val, unk) per array element, pools in array-symbol id order ]
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "abstraction/tlm_model.h"

namespace xlv::abstraction {

/// Version of the xlvn_* C ABI; baked into the emitted code and verified
/// after dlopen so a stale cached .so from an older emitter is rejected.
inline constexpr int kNativeAbiVersion = 1;

/// Render the self-contained native translation unit for `layout`.
/// `fourState` resolves the value policy at emit time (the emitted code has
/// no templates); `identity` is returned verbatim by xlvn_identity() —
/// callers bake the cache key in so a hash-collided .so cannot be used.
/// Deterministic: equal layouts yield byte-equal sources (the source
/// fingerprint is the cache key).
std::string emitNativeCpp(const TlmModelLayout& layout, bool fourState,
                          const std::string& identity);

/// Word count of the shared snapshot layout for `layout`.
std::size_t nativeStateWords(const TlmModelLayout& layout);

/// Serialize an interpreter snapshot into the shared word layout
/// (appends exactly nativeStateWords(layout) words to `out`).
void snapshotToWords(const TlmModelLayout& layout, const TlmModelSnapshot& snap,
                     std::vector<std::uint64_t>& out);

/// Rebuild an interpreter snapshot from the shared word layout. Throws
/// std::invalid_argument on a word-count mismatch (wrong layout).
TlmModelSnapshot wordsToSnapshot(const TlmModelLayout& layout,
                                 const std::vector<std::uint64_t>& words);

}  // namespace xlv::abstraction
