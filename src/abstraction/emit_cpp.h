// SystemC-TLM-style C++ code generator.
//
// Renders an elaborated design as the C++ a HIFSuite-style abstraction tool
// would emit: one C++ function per RTL process, member variables for
// signals, the explicit scheduler() reproducing the HDL simulation cycle
// (Fig. 6b, dual-clock variant Fig. 8b), TLM-2.0 b_transport() wrapping, and
// — for ADAM-injected designs — the split `tmp = expr` assignments plus the
// apply_mutant_<sig>() functions of Fig. 9(g)(h).
//
// The emitted text is the artifact whose line count the paper reports as
// "Abstracted TLM (loc)" (Table 3) and "Injected TLM (loc)" (Table 5).
#pragma once

#include <string>

#include "ir/design.h"
#include "mutation/adam.h"

namespace xlv::abstraction {

struct EmitCppOptions {
  int hfRatio = 0;           ///< emit the dual-clock scheduler when > 0
  bool twoStateTypes = false;///< emit HDTLib 2-state types instead of 4-state
};

std::string emitCpp(const ir::Design& design, const EmitCppOptions& opts);
std::string emitCppInjected(const mutation::InjectedDesign& injected, const EmitCppOptions& opts);

int countLines(const std::string& text);

}  // namespace xlv::abstraction
