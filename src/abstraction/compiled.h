// Compiled process bodies for the abstracted TLM model.
//
// The abstraction step of the paper's tools translates RTL processes into
// C++ functions that are *compiled* — direct variable access, no simulator
// object model. The event-driven RTL kernel, in contrast, executes the
// elaborated design representation (tree-walking the IR), like an HDL
// simulator executing its elaborated database. This module reproduces that
// dichotomy honestly: TlmIpModel compiles each process body once into a
// linear instruction stream with a pooled constant table and pre-resolved
// operation variants (signedness, widths), then executes it on a reusable
// value stack — the dominant performance lever behind Table 3's speedup.
//
// Semantics are identical to ir::Executor by construction: every opcode is
// implemented with the same hdt vector operations (verified by the
// RTL-vs-TLM cycle-equivalence tests).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/design.h"
#include "ir/eval.h"

namespace xlv::abstraction {

enum class OpCode : std::uint8_t {
  PushConst,      // a = constant pool index
  PushSig,        // sym
  PushArrayElem,  // sym; pops index
  UnNot, UnNeg, UnRedAnd, UnRedOr, UnRedXor, UnBoolNot,
  BiAnd, BiOr, BiXor, BiAdd, BiSub, BiMul, BiDiv, BiMod,
  BiShl, BiShr, BiAShr,  // a = result width; pops amount then value
  BiEq, BiNe, BiLtu, BiLeu, BiLts, BiLes,
  BiConcat,
  Slice,   // a = hi, b = lo
  Resize,  // a = width
  Sext,    // a = width
  JumpIfFalse,  // a = target pc; pops condition
  JumpIfTrue,   // a = target pc; pops condition
  Jump,         // a = target pc
  Dup,
  Pop,
  StoreVar,       // sym; pops value (immediate)
  StoreVarRange,  // sym, a = hi, b = lo
  StoreSig,       // sym; pops value (nonblocking)
  StoreSigRange,  // sym, a = hi, b = lo
  StoreArray,     // sym; pops value, then index
  End,
};

struct Op {
  OpCode code = OpCode::End;
  std::int32_t a = 0;
  std::int32_t b = 0;
  ir::SymbolId sym = ir::kNoSymbol;
};

struct ConstEntry {
  int width = 1;
  std::uint64_t value = 0;
};

/// One compiled process body (policy-independent program text).
struct CompiledProc {
  std::vector<Op> ops;
  int maxStack = 0;
};

/// Shared constant pool for a design's compiled processes.
struct CompiledDesign {
  std::vector<CompiledProc> procs;  // index == process index in the Design
  std::vector<ConstEntry> constants;
};

/// Compile every process body of `d`.
CompiledDesign compileDesign(const ir::Design& d);

/// Stack-machine executor, templated on the value policy.
template <class P>
class CompiledExecutor {
 public:
  using Vec = typename P::Vec;

  CompiledExecutor(const ir::Design& d, const CompiledDesign& code, ir::ValueStore<P>& store)
      : d_(d), code_(code), store_(store) {
    constPool_.reserve(code.constants.size());
    for (const auto& c : code.constants) {
      constPool_.push_back(Vec::fromUint(c.width, c.value));
    }
    int maxStack = 8;
    for (const auto& p : code.procs) maxStack = std::max(maxStack, p.maxStack);
    stack_.reserve(static_cast<std::size_t>(maxStack) + 4);
  }

  void run(int procIndex, std::vector<ir::SignalWrite<P>>& nba) {
    using namespace hdt;
    const auto& ops = code_.procs[static_cast<std::size_t>(procIndex)].ops;
    stack_.clear();
    std::size_t pc = 0;
    while (true) {
      const Op& op = ops[pc];
      switch (op.code) {
        case OpCode::PushConst:
          stack_.push_back(constPool_[static_cast<std::size_t>(op.a)]);
          break;
        case OpCode::PushSig:
          stack_.push_back(store_.get(op.sym));
          break;
        case OpCode::PushArrayElem: {
          Vec idx = std::move(stack_.back());
          stack_.pop_back();
          if (idx.anyUnknown()) {
            stack_.push_back(Vec::allX(d_.symbol(op.sym).type.width));
          } else {
            stack_.push_back(store_.getArray(op.sym, idx.toUint()));
          }
          break;
        }
        case OpCode::UnNot: top() = vec_not(top()); break;
        case OpCode::UnNeg: top() = vec_neg(top()); break;
        case OpCode::UnRedAnd: top() = vec_redand(top()); break;
        case OpCode::UnRedOr: top() = vec_redor(top()); break;
        case OpCode::UnRedXor: top() = vec_redxor(top()); break;
        case OpCode::UnBoolNot:
          top() = Vec::fromUint(1, vec_isTrue(top()) ? 0 : 1);
          break;
        case OpCode::BiAnd: binop([](const Vec& x, const Vec& y) { return vec_and(x, y); }); break;
        case OpCode::BiOr: binop([](const Vec& x, const Vec& y) { return vec_or(x, y); }); break;
        case OpCode::BiXor: binop([](const Vec& x, const Vec& y) { return vec_xor(x, y); }); break;
        case OpCode::BiAdd: binop([](const Vec& x, const Vec& y) { return vec_add(x, y); }); break;
        case OpCode::BiSub: binop([](const Vec& x, const Vec& y) { return vec_sub(x, y); }); break;
        case OpCode::BiMul: binop([](const Vec& x, const Vec& y) { return vec_mul(x, y); }); break;
        case OpCode::BiDiv: binop([](const Vec& x, const Vec& y) { return vec_div(x, y); }); break;
        case OpCode::BiMod: binop([](const Vec& x, const Vec& y) { return vec_mod(x, y); }); break;
        case OpCode::BiShl:
        case OpCode::BiShr:
        case OpCode::BiAShr: {
          Vec amt = std::move(stack_.back());
          stack_.pop_back();
          Vec& v = top();
          if (amt.anyUnknown()) {
            v = Vec::allX(op.a);
            break;
          }
          const std::uint64_t raw = amt.toUint();
          const int amount = raw > 1u << 20 ? (1 << 20) : static_cast<int>(raw);
          if (op.code == OpCode::BiShl) {
            v = vec_shl(v, amount);
          } else if (op.code == OpCode::BiShr) {
            v = vec_shr(v, amount);
          } else {
            v = vec_ashr(v, amount);
          }
          break;
        }
        case OpCode::BiEq: binop([](const Vec& x, const Vec& y) { return vec_eq(x, y); }); break;
        case OpCode::BiNe: binop([](const Vec& x, const Vec& y) { return vec_ne(x, y); }); break;
        case OpCode::BiLtu: binop([](const Vec& x, const Vec& y) { return vec_ltu(x, y); }); break;
        case OpCode::BiLeu: binop([](const Vec& x, const Vec& y) { return vec_leu(x, y); }); break;
        case OpCode::BiLts: binop([](const Vec& x, const Vec& y) { return vec_lts(x, y); }); break;
        case OpCode::BiLes: binop([](const Vec& x, const Vec& y) { return vec_les(x, y); }); break;
        case OpCode::BiConcat:
          binop([](const Vec& x, const Vec& y) { return vec_concat(x, y); });
          break;
        case OpCode::Slice: top() = vec_slice(top(), op.a, op.b); break;
        case OpCode::Resize: top() = vec_resize(top(), op.a); break;
        case OpCode::Sext: top() = vec_sext(top(), op.a); break;
        case OpCode::JumpIfFalse: {
          const bool t = hdt::vec_isTrue(stack_.back());
          stack_.pop_back();
          if (!t) {
            pc = static_cast<std::size_t>(op.a);
            continue;
          }
          break;
        }
        case OpCode::JumpIfTrue: {
          const bool t = hdt::vec_isTrue(stack_.back());
          stack_.pop_back();
          if (t) {
            pc = static_cast<std::size_t>(op.a);
            continue;
          }
          break;
        }
        case OpCode::Jump:
          pc = static_cast<std::size_t>(op.a);
          continue;
        case OpCode::Dup:
          stack_.push_back(stack_.back());
          break;
        case OpCode::Pop:
          stack_.pop_back();
          break;
        case OpCode::StoreVar:
          store_.set(op.sym, std::move(stack_.back()));
          stack_.pop_back();
          break;
        case OpCode::StoreVarRange: {
          hdt::vec_setSlice(store_.mut(op.sym), op.a, op.b, stack_.back());
          stack_.pop_back();
          break;
        }
        case OpCode::StoreSig:
          nba.push_back(ir::SignalWrite<P>{op.sym, -1, -1, -1, std::move(stack_.back())});
          stack_.pop_back();
          break;
        case OpCode::StoreSigRange:
          nba.push_back(ir::SignalWrite<P>{op.sym, op.a, op.b, -1, std::move(stack_.back())});
          stack_.pop_back();
          break;
        case OpCode::StoreArray: {
          Vec v = std::move(stack_.back());
          stack_.pop_back();
          Vec idx = std::move(stack_.back());
          stack_.pop_back();
          if (!idx.anyUnknown()) {
            nba.push_back(ir::SignalWrite<P>{op.sym, -1, -1,
                                             static_cast<std::int64_t>(idx.toUint()),
                                             std::move(v)});
          }
          break;
        }
        case OpCode::End:
          return;
      }
      ++pc;
    }
  }

 private:
  Vec& top() noexcept { return stack_.back(); }

  template <typename F>
  void binop(F f) {
    Vec rhs = std::move(stack_.back());
    stack_.pop_back();
    Vec& lhs = stack_.back();
    lhs = f(lhs, rhs);
  }

  const ir::Design& d_;
  const CompiledDesign& code_;
  ir::ValueStore<P>& store_;
  std::vector<Vec> constPool_;
  std::vector<Vec> stack_;
};

}  // namespace xlv::abstraction
