// Versioned, length-prefixed text codec for cross-process artifacts.
//
// Process-level campaign sharding (campaign/shard.h) moves specs, plans and
// results between processes through files. The format must be (a) byte-stable
// — encode(decode(encode(x))) == encode(x), so shard outputs can be diffed and
// content-addressed with util/fnv.h like the in-process cache keys — and
// (b) strict: a truncated file, a version bump or a field written out of
// order is a hard DecodeError with a diagnostic, never a silently skewed
// result merged into a campaign.
//
// Wire format (text, one field per line):
//
//   xlv <tag> v<version>\n          header: domain tag + domain version
//   <name>=<len>:<payload>\n        every field, in a fixed schema order
//
// The payload is length-prefixed raw bytes (strings may contain '=' , ':'
// or newlines without escaping); numbers are rendered canonically — decimal
// for integers, hexfloat ("%a") for doubles so every finite value
// round-trips exactly. Lists are a count field named "<name>[]" followed by
// the elements' fields. The decoder checks each field's *name* against the
// schema the caller asks for, which is what rejects reordered or
// version-skewed inputs even when the header matches.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace xlv::util {

/// Strict decode failure: truncation, header/version mismatch, field-name
/// mismatch (reordering), or a malformed scalar rendering.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error("codec: " + what) {}
};

/// Parse the document header "xlv <tag> v<version>" and return its tag
/// without consuming any fields — how a stream multiplexing several
/// document kinds (the dispatcher's submit/status/result/heartbeat frames)
/// picks the decoder to run. Throws DecodeError on a malformed header; the
/// version is still validated by the actual Decoder afterwards.
std::string peekDocumentTag(std::string_view data);

class Encoder {
 public:
  Encoder(std::string_view tag, int version);

  void u64(std::string_view name, std::uint64_t v);
  void i64(std::string_view name, std::int64_t v);
  /// Hexfloat rendering: exact for every finite double, byte-stable across
  /// encode→decode→encode (also accepts inf/nan).
  void f64(std::string_view name, double v);
  void boolean(std::string_view name, bool v);
  void str(std::string_view name, std::string_view v);
  /// Emit the "<name>[]" count field; the caller then encodes `count`
  /// elements' fields.
  void beginList(std::string_view name, std::size_t count);

  const std::string& out() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void field(std::string_view name, std::string_view payload);
  std::string out_;
};

class Decoder {
 public:
  /// Parses and validates the header; throws DecodeError when the magic,
  /// tag or version does not match what the caller expects.
  Decoder(std::string_view data, std::string_view tag, int version);

  std::uint64_t u64(std::string_view name);
  std::int64_t i64(std::string_view name);
  double f64(std::string_view name);
  bool boolean(std::string_view name);
  std::string str(std::string_view name);
  std::size_t beginList(std::string_view name);

  /// Asserts the input was fully consumed (rejects trailing data).
  void finish() const;

 private:
  /// Read the next "<name>=<len>:<payload>\n" entry, checking the name.
  std::string_view payload(std::string_view name);
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace xlv::util
