// Perf-ratchet comparison of bench JSON reports (ISSUE 6 satellite).
//
// Every bench binary writes a BENCH_<name>.json report (bench/common.h,
// writeBenchJson): a flat map of metric name -> double. Committed baselines
// live under bench/baselines/; CI re-runs the benches and feeds both files
// to tools/bench_compare, which exits nonzero when a ratcheted metric
// regressed — so a perf regression fails the pipeline like a test failure,
// instead of decaying silently PR over PR.
//
// Not every metric can gate a heterogeneous CI fleet. The direction rules,
// derived from the metric NAME so benches stay self-describing:
//
//   *_ok, *_available           exact    — self-check booleans: current must
//                                          be >= baseline (a 1 -> 0 drop is
//                                          a broken invariant, not noise);
//   *speedup*, *reduction*      higher   — machine-relative ratios (two
//                                          timings on the same host, so host
//                                          speed cancels); current must be
//                                          >= baseline * (1 - tolerance);
//   cycles_simulated*           lower    — deterministic work counters for a
//                                          fixed XLV_BENCH_SCALE; current
//                                          must be <= baseline * (1 + tol);
//   everything else             info     — absolute seconds, point counts,
//                                          cache ledgers: host-dependent,
//                                          reported but never gating.
//
// A metric present in the baseline but MISSING from the current report is a
// regression (a renamed metric must not silently drop out of the ratchet);
// extra current-only metrics are reported as informational.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xlv::util {

/// One parsed bench report: the bench name plus metric (name, value) pairs
/// in file order.
struct BenchReport {
  std::string bench;
  std::vector<std::pair<std::string, double>> metrics;

  const double* find(std::string_view name) const noexcept;
};

/// Parse a writeBenchJson()-style report. Throws std::invalid_argument on
/// files the bench writer cannot have produced (no "bench" key, malformed
/// metric values) — a truncated artifact must fail the ratchet loudly.
BenchReport parseBenchJson(std::string_view text);

enum class MetricDirection { Exact, HigherIsBetter, LowerIsBetter, Informational };

/// The name-derived direction rule (see file comment).
MetricDirection metricDirection(std::string_view name) noexcept;

const char* metricDirectionName(MetricDirection d) noexcept;

struct MetricComparison {
  std::string name;
  MetricDirection direction = MetricDirection::Informational;
  double baseline = 0.0;
  double current = 0.0;
  bool missing = false;    ///< in baseline but absent from current
  bool currentOnly = false;  ///< in current but absent from baseline (info)
  bool regressed = false;
};

struct BenchComparison {
  std::string bench;
  std::vector<MetricComparison> rows;
  bool ok = true;  ///< no row regressed

  /// Human-readable per-row summary (one line each), regressions marked.
  std::string render() const;
};

/// Compare a current report against its committed baseline. `tolerance` is
/// the fractional slack for the higher/lower-is-better rules (0.25 = 25%).
/// Throws std::invalid_argument when the reports name different benches.
BenchComparison compareBenchReports(const BenchReport& baseline,
                                    const BenchReport& current, double tolerance);

}  // namespace xlv::util
