#include "util/table.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace xlv::util {

namespace {
bool looksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != 'x' && c != '%' && c != ',' && c != 'e')
      return false;
  }
  return std::isdigit(static_cast<unsigned char>(s.front())) ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}
}  // namespace

void Table::addRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::addSeparator() { rows_.emplace_back(); }

std::string Table::fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto renderRule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto renderCells = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      const std::size_t pad = width[c] - s.size();
      if (looksNumeric(s)) {
        os << ' ' << std::string(pad, ' ') << s << ' ';
      } else {
        os << ' ' << s << std::string(pad, ' ') << ' ';
      }
      os << '|';
    }
    os << '\n';
  };

  std::ostringstream os;
  renderRule(os);
  renderCells(os, header_);
  renderRule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      renderRule(os);
    } else {
      renderCells(os, row);
    }
  }
  renderRule(os);
  return os.str();
}

}  // namespace xlv::util
