// Deterministic pseudo-random number generation for stimuli and benchmarks.
//
// All randomness in xlv flows through this generator so that every experiment
// is reproducible from its seed. The implementation is splitmix64 seeding a
// xoshiro256** core — fast, well-distributed, and header-only.
#pragma once

#include <cstdint>

namespace xlv::util {

class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free reduction (slightly biased for
    // astronomically large bounds; fine for stimuli generation).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// A masked value with the given bit width (width in [1,64]).
  std::uint64_t bits(int width) noexcept {
    if (width >= 64) return next();
    return next() & ((1ULL << width) - 1);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace xlv::util
