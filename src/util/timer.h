// Wall-clock timer used to report simulation and analysis times.
#pragma once

#include <chrono>

namespace xlv::util {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}
  void reset() noexcept { start_ = Clock::now(); }
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const noexcept { return seconds() * 1e3; }
  double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xlv::util
