#include "util/codec.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace xlv::util {

namespace {

/// The strto* parsers skip leading whitespace and accept '+'; the canonical
/// renderings the encoder emits never contain either, so a strict decoder
/// must reject them explicitly (byte-stability: re-encoding a decoded value
/// must reproduce the input bytes).
bool nonCanonicalNumber(const std::string& s) {
  return s.empty() || s[0] == '+' ||
         std::isspace(static_cast<unsigned char>(s[0])) != 0;
}

std::string preview(std::string_view s, std::size_t limit = 40) {
  std::string out;
  for (char c : s.substr(0, limit)) {
    out += (c == '\n' ? ' ' : c);
  }
  if (s.size() > limit) out += "...";
  return out;
}

}  // namespace

std::string peekDocumentTag(std::string_view data) {
  const std::size_t nl = data.find('\n');
  if (nl == std::string_view::npos) {
    throw DecodeError("truncated header: '" + preview(data) + "'");
  }
  const std::string_view header = data.substr(0, nl);
  if (header.substr(0, 4) != "xlv ") {
    throw DecodeError("header mismatch: missing 'xlv ' magic in '" +
                      std::string(header) + "'");
  }
  const std::size_t tagEnd = header.rfind(" v");
  if (tagEnd == std::string_view::npos || tagEnd <= 4) {
    throw DecodeError("header mismatch: no version suffix in '" + std::string(header) +
                      "'");
  }
  return std::string(header.substr(4, tagEnd - 4));
}

// --- Encoder -----------------------------------------------------------------

Encoder::Encoder(std::string_view tag, int version) {
  out_ = "xlv ";
  out_.append(tag);
  out_ += " v";
  out_ += std::to_string(version);
  out_ += '\n';
}

void Encoder::field(std::string_view name, std::string_view payload) {
  out_.append(name);
  out_ += '=';
  out_ += std::to_string(payload.size());
  out_ += ':';
  out_.append(payload);
  out_ += '\n';
}

void Encoder::u64(std::string_view name, std::uint64_t v) { field(name, std::to_string(v)); }

void Encoder::i64(std::string_view name, std::int64_t v) { field(name, std::to_string(v)); }

void Encoder::f64(std::string_view name, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  field(name, buf);
}

void Encoder::boolean(std::string_view name, bool v) { field(name, v ? "1" : "0"); }

void Encoder::str(std::string_view name, std::string_view v) { field(name, v); }

void Encoder::beginList(std::string_view name, std::size_t count) {
  std::string countName(name);
  countName += "[]";
  field(countName, std::to_string(count));
}

// --- Decoder -----------------------------------------------------------------

Decoder::Decoder(std::string_view data, std::string_view tag, int version) : data_(data) {
  const std::size_t nl = data_.find('\n');
  if (nl == std::string_view::npos) {
    throw DecodeError("truncated header: '" + preview(data_) + "'");
  }
  const std::string_view header = data_.substr(0, nl);
  std::string expected = "xlv ";
  expected.append(tag);
  expected += " v";
  expected += std::to_string(version);
  if (header != expected) {
    throw DecodeError("header mismatch: expected '" + expected + "', found '" +
                      std::string(header) + "'");
  }
  pos_ = nl + 1;
}

std::string_view Decoder::payload(std::string_view name) {
  if (pos_ >= data_.size()) {
    throw DecodeError("truncated input: expected field '" + std::string(name) +
                      "', found end of data");
  }
  const std::size_t eq = data_.find('=', pos_);
  if (eq == std::string_view::npos) {
    throw DecodeError("malformed field near '" + preview(data_.substr(pos_)) + "'");
  }
  const std::string_view found = data_.substr(pos_, eq - pos_);
  if (found != name) {
    throw DecodeError("field order mismatch: expected '" + std::string(name) +
                      "', found '" + std::string(found) + "'");
  }
  const std::size_t colon = data_.find(':', eq + 1);
  if (colon == std::string_view::npos) {
    throw DecodeError("truncated length prefix of field '" + std::string(name) + "'");
  }
  std::size_t len = 0;
  if (colon == eq + 1) {
    throw DecodeError("malformed length prefix of field '" + std::string(name) + "'");
  }
  for (std::size_t i = eq + 1; i < colon; ++i) {
    const char c = data_[i];
    if (c < '0' || c > '9') {
      throw DecodeError("malformed length prefix of field '" + std::string(name) + "'");
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
    if (len > data_.size()) {
      throw DecodeError("truncated payload of field '" + std::string(name) + "' (need " +
                        std::to_string(len) + " bytes)");
    }
  }
  const std::size_t start = colon + 1;
  // Need the payload plus its terminating newline.
  if (data_.size() - start < len + 1) {
    throw DecodeError("truncated payload of field '" + std::string(name) + "' (need " +
                      std::to_string(len) + " bytes)");
  }
  if (data_[start + len] != '\n') {
    throw DecodeError("length prefix of field '" + std::string(name) +
                      "' does not end at a field boundary");
  }
  pos_ = start + len + 1;
  return data_.substr(start, len);
}

std::uint64_t Decoder::u64(std::string_view name) {
  const std::string s(payload(name));
  if (nonCanonicalNumber(s) || s[0] == '-') {
    throw DecodeError("field '" + std::string(name) + "': invalid u64 '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  // Canonical-form check: re-rendering must reproduce the payload bytes
  // (rejects leading zeros and overflow along with outright garbage), so
  // encode(decode(x)) == x holds field by field.
  if (errno == ERANGE || end != s.c_str() + s.size() || std::to_string(v) != s) {
    throw DecodeError("field '" + std::string(name) + "': invalid u64 '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

std::int64_t Decoder::i64(std::string_view name) {
  const std::string s(payload(name));
  if (nonCanonicalNumber(s)) {
    throw DecodeError("field '" + std::string(name) + "': invalid i64 '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size() || std::to_string(v) != s) {
    throw DecodeError("field '" + std::string(name) + "': invalid i64 '" + s + "'");
  }
  return static_cast<std::int64_t>(v);
}

double Decoder::f64(std::string_view name) {
  const std::string s(payload(name));
  if (nonCanonicalNumber(s)) {
    throw DecodeError("field '" + std::string(name) + "': invalid double '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  char canonical[48];
  std::snprintf(canonical, sizeof(canonical), "%a", v);
  // Only the exact "%a" rendering (the encoder's output) is accepted:
  // decimal text, uppercase hexfloat, leading zeros and values strtod
  // saturates (1e999 -> inf) all re-render differently and are rejected.
  if (end != s.c_str() + s.size() || s != canonical) {
    throw DecodeError("field '" + std::string(name) + "': non-canonical double '" + s +
                      "' (expected the hexfloat rendering)");
  }
  return v;
}

bool Decoder::boolean(std::string_view name) {
  const std::string_view s = payload(name);
  if (s == "1") return true;
  if (s == "0") return false;
  throw DecodeError("field '" + std::string(name) + "': invalid bool '" + std::string(s) +
                    "'");
}

std::string Decoder::str(std::string_view name) { return std::string(payload(name)); }

std::size_t Decoder::beginList(std::string_view name) {
  std::string countName(name);
  countName += "[]";
  const std::size_t count = static_cast<std::size_t>(u64(countName));
  // Plausibility bound before any caller resizes a vector from this count:
  // every element contributes at least one field line of >= 5 bytes
  // ("a=0:\n"), so a count beyond remaining/4 is certainly corrupt — throw
  // a diagnostic instead of letting the caller attempt a huge allocation.
  const std::size_t remaining = data_.size() - pos_;
  if (count > remaining / 4) {
    throw DecodeError("field '" + std::string(name) + "': implausible list count " +
                      std::to_string(count) + " with " + std::to_string(remaining) +
                      " bytes of input left");
  }
  return count;
}

void Decoder::finish() const {
  if (pos_ != data_.size()) {
    throw DecodeError("trailing data after the last field: '" +
                      preview(data_.substr(pos_)) + "'");
  }
}

}  // namespace xlv::util
