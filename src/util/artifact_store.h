// ArtifactStore: a disk-backed, size-capped LRU artifact cache shared
// across processes (ROADMAP: "cache eviction + cross-process persistence").
//
// The in-memory OnceCaches de-duplicate work within one process; sharded
// campaigns (campaign/shard.h, `xlv_campaign run-shard --cache-dir DIR`)
// run in separate processes that today share nothing. This store is the
// layer underneath: immutable artifacts — golden traces, flow prefixes,
// per-mutant results — keyed by the same strings as the memory caches,
// serialized with the byte-stable util/codec.h codecs and persisted under a
// shared directory so a warm process (or a later run) loads instead of
// recomputing.
//
// Durability rules, in order of importance:
//   * never a torn read — entries are written to a temp file and atomically
//     rename()d into place, so a concurrent reader sees the whole entry or
//     no entry;
//   * never a wrong result — every entry embeds its full key (hash-collision
//     check) and the FNV-1a fingerprint of its payload; a mismatch, a
//     truncated file or any DecodeError counts the entry corrupt, drops it
//     and reports a miss (the caller rebuilds);
//   * bounded size — when the summed entry size exceeds maxBytes, the
//     least-recently-used entries (by file mtime; loads touch it) are
//     deleted. Concurrent processes may race an eviction against a load:
//     the loser sees a plain miss and rebuilds, results never change.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "util/codec.h"
#include "util/once_cache.h"

namespace xlv::util {

struct ArtifactStoreConfig {
  /// Root directory (created on construction); entries live in
  /// <dir>/<domain>/<fnv64-of-key>.art.
  std::string dir;
  /// LRU byte cap over all domains; 0 = unbounded.
  std::uint64_t maxBytes = 0;
  /// Age-based expiry: entries whose recency (file mtime, refreshed by
  /// loads) is older than this many seconds are deleted by gc() and by the
  /// construction-time sweep. 0 = never expire. Age expiry protects a
  /// long-lived shared cache dir from artifacts nobody asks for anymore
  /// (renamed sweeps, retired corners) that LRU byte eviction alone would
  /// keep until the byte cap forces them out.
  std::uint64_t maxAgeSeconds = 0;
};

struct ArtifactStoreStats {
  std::size_t hits = 0;        ///< loads served from a verified entry
  std::size_t misses = 0;      ///< loads that found no (usable) entry
  std::size_t stores = 0;      ///< entries written
  std::size_t evictions = 0;   ///< entries deleted by the LRU byte cap
  std::size_t expired = 0;     ///< entries deleted by the age limit
  std::size_t corrupt = 0;     ///< entries dropped by verification
};

class ArtifactStore {
 public:
  /// Creates cfg.dir (and parents). Throws std::runtime_error when the
  /// directory cannot be created — a configured-but-unusable cache dir is a
  /// setup error, not something to silently ignore.
  explicit ArtifactStore(ArtifactStoreConfig cfg);

  const ArtifactStoreConfig& config() const noexcept { return cfg_; }

  /// Fetch the payload stored under (domain, key), or nullopt on miss.
  /// Verifies the embedded key and payload fingerprint; corrupt entries are
  /// deleted and reported as misses. A hit refreshes the entry's recency.
  std::optional<std::string> load(std::string_view domain, const std::string& key);

  /// Persist `payload` under (domain, key) (atomic temp-file + rename),
  /// then enforce the byte cap. Filesystem failures are swallowed — a store
  /// is an optimization; the caller already holds the value.
  void store(std::string_view domain, const std::string& key, std::string_view payload);

  /// Count (domain, key)'s entry corrupt and delete it. Used by callers
  /// whose *decode* of a verified payload failed (schema skew): the bytes
  /// are intact but unusable, so the entry must not be served again.
  void dropCorrupt(std::string_view domain, const std::string& key);

  /// Summed size of all entries currently on disk (scan).
  std::uint64_t diskBytes() const;

  /// Housekeeping pass (the `xlv_campaign cache-gc` entry point): delete
  /// entries older than cfg.maxAgeSeconds (no-op when 0), then enforce the
  /// byte cap (no-op when 0). Also runs once at construction, so a
  /// long-lived cache dir self-cleans on the next process start. Returns
  /// the number of entries deleted by this pass (expired + evicted).
  std::size_t gc();

  ArtifactStoreStats stats() const;
  void resetStats();

 private:
  /// Delete entries whose mtime is older than cfg.maxAgeSeconds; returns
  /// the count (also booked in stats().expired).
  std::size_t expireOldEntriesLocked();
  std::string entryPath(std::string_view domain, const std::string& key) const;
  void removeEntryLocked(const std::string& path);
  /// Sum the entry bytes on disk; optionally sweep temp-file orphans older
  /// than the stale age (a crashed writer's leftovers).
  std::uint64_t scanLocked(bool sweepStaleTemps) const;
  void evictOverCapLocked();

  ArtifactStoreConfig cfg_;
  /// Guards the metadata (stats_, approxBytes_) and eviction — NOT the
  /// entry file I/O, which is already process- and thread-safe through
  /// atomic rename publication (parallel tasks stream reads concurrently).
  mutable std::mutex mutex_;
  ArtifactStoreStats stats_;
  std::atomic<std::uint64_t> tempSeq_{0};
  /// Running byte census (store/remove-adjusted, rescans resync it), so the
  /// capped store does not stat the whole directory on every write.
  std::uint64_t approxBytes_ = 0;
};

/// The process-wide store, or null when none is configured (the default:
/// purely in-memory caching). Configured once per process from
/// `xlv_campaign --cache-dir` (or by tests/benches).
ArtifactStore* processArtifactStore() noexcept;

/// Install (or, with nullopt, remove) the process-wide store. Not
/// thread-safe against concurrent cache users — call during startup /
/// between test phases, like OnceCache::clear().
void configureProcessArtifactStore(const std::optional<ArtifactStoreConfig>& cfg);

/// The OnceCache spill hook: memory first, then disk, then build — with the
/// build's result written through to the store so other processes (and this
/// one after an eviction or restart) load instead of rebuilding.
///
/// `wasHit` keeps OnceCache semantics (served by work this call did not run
/// itself); `diskHit` additionally reports that the value was loaded from
/// the store by THIS call. A payload whose decode throws DecodeError is
/// dropped as corrupt and rebuilt — decode failures must degrade to a
/// rebuild, never to a wrong or torn artifact. The contract is exact:
/// decoders signal bad BYTES (truncation, version skew, implausible
/// counts, cross-check mismatches) via DecodeError only; any OTHER
/// exception from `decode` is a failure of the REQUEST's own context
/// (e.g. invalid item options hit while re-deriving a prefix) and
/// propagates to fail that caller without deleting a shared entry that is
/// perfectly valid for everyone else.
template <class V>
std::shared_ptr<const V> getOrBuildWithStore(
    OnceCache<V>& mem, ArtifactStore* store, std::string_view domain,
    const std::string& key, const std::function<V()>& build,
    const std::function<std::string(const V&)>& encode,
    const std::function<V(std::string_view)>& decode, bool* wasHit = nullptr,
    bool* diskHit = nullptr) {
  if (diskHit != nullptr) *diskHit = false;
  return mem.getOrBuild(
      key,
      [&]() -> V {
        if (store != nullptr) {
          if (std::optional<std::string> payload = store->load(domain, key)) {
            try {
              V value = decode(*payload);
              if (diskHit != nullptr) *diskHit = true;
              return value;
            } catch (const DecodeError&) {
              store->dropCorrupt(domain, key);
            }
          }
        }
        V value = build();
        if (store != nullptr) store->store(domain, key, encode(value));
        return value;
      },
      wasHit);
}

}  // namespace xlv::util
