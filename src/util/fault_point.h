// Chaos-injection registry: named fault points on the infrastructure paths
// (artifact-store writes, frame writes, worker spawns, socket accepts) that
// the XLV_FAULTS environment spec arms with seeded probabilistic failures.
//
// Grammar (strictly parsed — any malformed clause throws FaultConfigError):
//
//   XLV_FAULTS = clause[,clause...]
//   clause     = <point>:<action>[:key=<value>...]
//   point      = store.write | frame.write | worker.spawn | server.accept
//   action     = fail   (the operation reports failure without happening)
//              | short  (a write persists/sends only a prefix, then fails)
//              | delay  (the operation blocks for ms= milliseconds first)
//   keys       = p=<probability in [0,1]>   default 1.0
//                seed=<u64>                 per-clause Prng seed, default 0
//                ms=<u64>                   required for delay, rejected otherwise
//                times=<u64>                max triggers (0 = unlimited, default)
//
// Example: XLV_FAULTS="store.write:fail:p=0.2:seed=7,frame.write:short:p=0.05"
//
// When XLV_FAULTS is unset the registry is inert: faultPoint() is a single
// relaxed atomic load returning None. Fault draws are deterministic per
// clause (util::Prng seeded by seed=), and thread-safe (worker heartbeat
// threads share the frame.write point with the main loop).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace xlv::util {

/// Malformed XLV_FAULTS spec: unknown point/action/key or unparsable value.
struct FaultConfigError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class FaultAction {
  None,   ///< proceed normally (delay clauses may still have slept)
  Fail,   ///< report failure without performing the operation
  Short,  ///< perform a truncated write, then report failure
};

/// Parse XLV_FAULTS and arm the registry. Unset/empty disarms it. Throws
/// FaultConfigError on a malformed spec. Tools call this from main() for a
/// clean diagnostic; library call sites that hit an unparsed registry
/// lazily initialise it (and propagate the same error).
void initFaultPointsFromEnv();

/// Test hook: drop the armed state and re-read XLV_FAULTS.
void reloadFaultPointsFromEnv();

/// True when at least one clause is armed.
bool faultPointsArmed();

/// Draw the named point. Performs any armed delay internally, then returns
/// the first Fail/Short clause (in spec order) whose probability fires.
FaultAction faultPoint(std::string_view point);

/// How many times any clause on the named point has fired (delays included).
std::uint64_t faultPointFireCount(std::string_view point);

}  // namespace xlv::util
