#include "util/bench_compare.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace xlv::util {

const double* BenchReport::find(std::string_view name) const noexcept {
  for (const auto& [k, v] : metrics) {
    if (k == name) return &v;
  }
  return nullptr;
}

namespace {

/// Scan past whitespace from `pos`.
std::size_t skipWs(std::string_view s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  return pos;
}

/// Parse the double-quoted string starting at s[pos] == '"'; returns the
/// content and advances pos past the closing quote. The bench writer never
/// emits escapes inside names, so none are interpreted.
std::string quoted(std::string_view s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != '"') {
    throw std::invalid_argument("bench json: expected '\"' at offset " +
                                std::to_string(pos));
  }
  const std::size_t end = s.find('"', pos + 1);
  if (end == std::string_view::npos) {
    throw std::invalid_argument("bench json: unterminated string");
  }
  std::string out(s.substr(pos + 1, end - pos - 1));
  pos = end + 1;
  return out;
}

}  // namespace

BenchReport parseBenchJson(std::string_view text) {
  // A purpose-built reader for the exact shape writeBenchJson() emits (one
  // "bench" string, one flat "metrics" object of numbers) — not a general
  // JSON parser. Anything else in the file is a corrupt artifact and
  // throws, so the ratchet fails loudly instead of comparing garbage.
  BenchReport report;
  std::size_t pos = text.find("\"bench\"");
  if (pos == std::string_view::npos) {
    throw std::invalid_argument("bench json: no \"bench\" key");
  }
  pos = skipWs(text, pos + 7);
  if (pos >= text.size() || text[pos] != ':') {
    throw std::invalid_argument("bench json: \"bench\" not followed by ':'");
  }
  pos = skipWs(text, pos + 1);
  report.bench = quoted(text, pos);

  pos = text.find("\"metrics\"", pos);
  if (pos == std::string_view::npos) {
    throw std::invalid_argument("bench json: no \"metrics\" key");
  }
  pos = text.find('{', pos);
  if (pos == std::string_view::npos) {
    throw std::invalid_argument("bench json: \"metrics\" has no object");
  }
  ++pos;
  for (;;) {
    pos = skipWs(text, pos);
    if (pos >= text.size()) throw std::invalid_argument("bench json: unterminated metrics");
    if (text[pos] == '}') break;
    if (text[pos] == ',') {
      ++pos;
      continue;
    }
    const std::string name = quoted(text, pos);
    pos = skipWs(text, pos);
    if (pos >= text.size() || text[pos] != ':') {
      throw std::invalid_argument("bench json: metric '" + name + "' has no ':'");
    }
    pos = skipWs(text, pos + 1);
    const char* begin = text.data() + pos;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      throw std::invalid_argument("bench json: metric '" + name + "' has no number");
    }
    pos += static_cast<std::size_t>(end - begin);
    report.metrics.emplace_back(name, v);
  }
  return report;
}

MetricDirection metricDirection(std::string_view name) noexcept {
  auto endsWith = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
  };
  auto contains = [&](std::string_view needle) {
    return name.find(needle) != std::string_view::npos;
  };
  if (endsWith("_ok") || endsWith("_available")) return MetricDirection::Exact;
  if (contains("speedup") || contains("reduction")) return MetricDirection::HigherIsBetter;
  if (name.substr(0, 16) == "cycles_simulated") return MetricDirection::LowerIsBetter;
  return MetricDirection::Informational;
}

const char* metricDirectionName(MetricDirection d) noexcept {
  switch (d) {
    case MetricDirection::Exact: return "exact";
    case MetricDirection::HigherIsBetter: return "higher";
    case MetricDirection::LowerIsBetter: return "lower";
    case MetricDirection::Informational: break;
  }
  return "info";
}

BenchComparison compareBenchReports(const BenchReport& baseline,
                                    const BenchReport& current, double tolerance) {
  if (baseline.bench != current.bench) {
    throw std::invalid_argument("bench compare: baseline is '" + baseline.bench +
                                "', current is '" + current.bench + "'");
  }
  if (tolerance < 0.0) throw std::invalid_argument("bench compare: negative tolerance");
  BenchComparison cmp;
  cmp.bench = baseline.bench;
  for (const auto& [name, base] : baseline.metrics) {
    MetricComparison row;
    row.name = name;
    row.direction = metricDirection(name);
    row.baseline = base;
    const double* cur = current.find(name);
    if (cur == nullptr) {
      // A metric that vanished must not silently drop out of the ratchet.
      row.missing = true;
      row.regressed = true;
    } else {
      row.current = *cur;
      switch (row.direction) {
        case MetricDirection::Exact:
          row.regressed = *cur < base;
          break;
        case MetricDirection::HigherIsBetter:
          row.regressed = *cur < base * (1.0 - tolerance);
          break;
        case MetricDirection::LowerIsBetter:
          row.regressed = *cur > base * (1.0 + tolerance);
          break;
        case MetricDirection::Informational:
          break;
      }
    }
    cmp.ok = cmp.ok && !row.regressed;
    cmp.rows.push_back(std::move(row));
  }
  for (const auto& [name, value] : current.metrics) {
    if (baseline.find(name) != nullptr) continue;
    MetricComparison row;
    row.name = name;
    row.direction = metricDirection(name);
    row.current = value;
    row.currentOnly = true;
    cmp.rows.push_back(std::move(row));
  }
  return cmp;
}

std::string BenchComparison::render() const {
  std::string out = "bench '" + bench + "': " + (ok ? "ok" : "REGRESSED") + "\n";
  char buf[256];
  for (const auto& r : rows) {
    if (r.missing) {
      std::snprintf(buf, sizeof(buf), "  %-34s %-6s baseline %.4g -> MISSING  REGRESSION\n",
                    r.name.c_str(), metricDirectionName(r.direction), r.baseline);
    } else if (r.currentOnly) {
      std::snprintf(buf, sizeof(buf), "  %-34s %-6s (new) %.4g\n", r.name.c_str(),
                    metricDirectionName(r.direction), r.current);
    } else {
      std::snprintf(buf, sizeof(buf), "  %-34s %-6s baseline %.4g -> %.4g%s\n",
                    r.name.c_str(), metricDirectionName(r.direction), r.baseline, r.current,
                    r.regressed ? "  REGRESSION" : "");
    }
    out += buf;
  }
  return out;
}

}  // namespace xlv::util
