#include "util/fault_point.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/prng.h"

namespace xlv::util {
namespace {

enum class ClauseAction { Fail, Short, Delay };

struct Clause {
  std::string point;
  ClauseAction action = ClauseAction::Fail;
  double probability = 1.0;
  std::uint64_t seed = 0;
  std::uint64_t delayMs = 0;
  std::uint64_t maxTimes = 0;  // 0 = unlimited
  std::uint64_t fired = 0;
  Prng rng;
};

struct Registry {
  std::mutex mu;
  std::vector<Clause> clauses;
  bool parsed = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Armed flag outside the mutex so an unarmed faultPoint() is one atomic load.
std::atomic<bool> gArmed{false};
std::once_flag gInitOnce;

const char* const kKnownPoints[] = {"store.write", "frame.write", "worker.spawn",
                                    "server.accept"};

bool knownPoint(std::string_view p) {
  for (const char* k : kKnownPoints) {
    if (p == k) return true;
  }
  return false;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t parseU64(std::string_view v, std::string_view clause) {
  if (v.empty()) throw FaultConfigError("XLV_FAULTS: empty integer in '" + std::string(clause) + "'");
  std::uint64_t out = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') {
      throw FaultConfigError("XLV_FAULTS: bad integer '" + std::string(v) + "' in '" +
                             std::string(clause) + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10) {
      throw FaultConfigError("XLV_FAULTS: integer overflow in '" + std::string(clause) + "'");
    }
    out = out * 10 + digit;
  }
  return out;
}

double parseProbability(std::string_view v, std::string_view clause) {
  if (v.empty()) throw FaultConfigError("XLV_FAULTS: empty probability in '" + std::string(clause) + "'");
  const std::string s(v);
  char* end = nullptr;
  const double p = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !(p >= 0.0) || !(p <= 1.0)) {
    throw FaultConfigError("XLV_FAULTS: probability must be in [0,1], got '" + s + "' in '" +
                           std::string(clause) + "'");
  }
  return p;
}

Clause parseClause(std::string_view text) {
  const std::vector<std::string_view> fields = split(text, ':');
  if (fields.size() < 2) {
    throw FaultConfigError("XLV_FAULTS: clause '" + std::string(text) +
                           "' needs <point>:<action>");
  }
  Clause c;
  c.point = std::string(fields[0]);
  if (!knownPoint(c.point)) {
    throw FaultConfigError("XLV_FAULTS: unknown fault point '" + c.point + "'");
  }
  const std::string_view action = fields[1];
  if (action == "fail") {
    c.action = ClauseAction::Fail;
  } else if (action == "short") {
    c.action = ClauseAction::Short;
  } else if (action == "delay") {
    c.action = ClauseAction::Delay;
  } else {
    throw FaultConfigError("XLV_FAULTS: unknown action '" + std::string(action) + "' in '" +
                           std::string(text) + "' (want fail|short|delay)");
  }
  bool sawMs = false;
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const std::string_view field = fields[i];
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      throw FaultConfigError("XLV_FAULTS: expected key=value, got '" + std::string(field) +
                             "' in '" + std::string(text) + "'");
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "p") {
      c.probability = parseProbability(value, text);
    } else if (key == "seed") {
      c.seed = parseU64(value, text);
    } else if (key == "ms") {
      c.delayMs = parseU64(value, text);
      sawMs = true;
    } else if (key == "times") {
      c.maxTimes = parseU64(value, text);
    } else {
      throw FaultConfigError("XLV_FAULTS: unknown key '" + std::string(key) + "' in '" +
                             std::string(text) + "'");
    }
  }
  if (c.action == ClauseAction::Delay && !sawMs) {
    throw FaultConfigError("XLV_FAULTS: delay clause '" + std::string(text) +
                           "' requires ms=<milliseconds>");
  }
  if (c.action != ClauseAction::Delay && sawMs) {
    throw FaultConfigError("XLV_FAULTS: ms= only applies to delay, in '" + std::string(text) +
                           "'");
  }
  c.rng.reseed(c.seed);
  return c;
}

void parseIntoRegistry() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.clauses.clear();
  r.parsed = true;
  gArmed.store(false, std::memory_order_relaxed);
  const char* env = std::getenv("XLV_FAULTS");
  if (env == nullptr || *env == '\0') return;
  for (const std::string_view text : split(env, ',')) {
    if (text.empty()) {
      throw FaultConfigError("XLV_FAULTS: empty clause in spec");
    }
    r.clauses.push_back(parseClause(text));
  }
  gArmed.store(!r.clauses.empty(), std::memory_order_relaxed);
}

void ensureParsed() {
  std::call_once(gInitOnce, [] { parseIntoRegistry(); });
}

}  // namespace

void initFaultPointsFromEnv() { ensureParsed(); }

void reloadFaultPointsFromEnv() {
  ensureParsed();  // make sure the once-flag is consumed
  parseIntoRegistry();
}

bool faultPointsArmed() {
  ensureParsed();
  return gArmed.load(std::memory_order_relaxed);
}

FaultAction faultPoint(std::string_view point) {
  if (!gArmed.load(std::memory_order_relaxed)) {
    ensureParsed();
    if (!gArmed.load(std::memory_order_relaxed)) return FaultAction::None;
  }
  std::uint64_t sleepMs = 0;
  FaultAction result = FaultAction::None;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (Clause& c : r.clauses) {
      if (c.point != point) continue;
      if (c.maxTimes != 0 && c.fired >= c.maxTimes) continue;
      if (!c.rng.chance(c.probability)) continue;
      ++c.fired;
      if (c.action == ClauseAction::Delay) {
        sleepMs += c.delayMs;
      } else if (result == FaultAction::None) {
        result = c.action == ClauseAction::Fail ? FaultAction::Fail : FaultAction::Short;
      }
    }
  }
  if (sleepMs != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleepMs));
  }
  return result;
}

std::uint64_t faultPointFireCount(std::string_view point) {
  ensureParsed();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const Clause& c : r.clauses) {
    if (c.point == point) total += c.fired;
  }
  return total;
}

}  // namespace xlv::util
