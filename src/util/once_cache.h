// OnceCache: a process-wide, thread-safe build-once/share-forever cache.
//
// The campaign layer derives several expensive immutable artifacts whose
// identity is fully captured by a string key: golden traces (analysis/
// golden_cache.h) and flow stage prefixes (core/flow.h). Sweep points that
// agree on a key must share one artifact; concurrent executor tasks racing
// for the same key must build it exactly once, with the losers blocking on
// the winner rather than duplicating work.
//
// Concurrency model: a mutex guards only the key -> entry map; each entry
// carries its own std::once_flag, so builds for *different* keys proceed in
// parallel while builds for the *same* key serialize through call_once. A
// build that throws leaves the once_flag unset (std::call_once semantics),
// so the next caller retries instead of caching the failure.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace xlv::util {

struct OnceCacheStats {
  std::size_t hits = 0;    ///< requests served from an already-present entry
  std::size_t misses = 0;  ///< requests that inserted the entry (and built it)
  double hitRate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <class V>
class OnceCache {
 public:
  /// Return the cached value for `key`, building it via `build` on first
  /// request. `wasHit`, when non-null, reports whether this call's work was
  /// served by a build it did not run itself (a waiter on an in-flight
  /// build counts as a hit: the work is not repeated). A caller that
  /// re-runs the build because an earlier attempt threw counts as a miss.
  std::shared_ptr<const V> getOrBuild(const std::string& key,
                                      const std::function<V()>& build,
                                      bool* wasHit = nullptr) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        it = entries_.emplace(key, std::make_shared<Entry>()).first;
      }
      entry = it->second;
    }
    bool builtHere = false;
    std::call_once(entry->once, [&] {
      builtHere = true;
      auto value = std::make_shared<const V>(build());
      std::lock_guard<std::mutex> lock(mutex_);
      entry->value = std::move(value);
    });
    if (builtHere) {
      ++misses_;
    } else {
      ++hits_;
    }
    if (wasHit != nullptr) *wasHit = !builtHere;
    // call_once synchronizes-with the winning build, so value is visible.
    std::lock_guard<std::mutex> lock(mutex_);
    return entry->value;
  }

  /// Peek without building; null when absent or still being built.
  std::shared_ptr<const V> find(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second->value;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  OnceCacheStats stats() const {
    return OnceCacheStats{hits_.load(std::memory_order_relaxed),
                          misses_.load(std::memory_order_relaxed)};
  }

  /// Drop all entries and reset the counters. Not linearizable with respect
  /// to concurrent getOrBuild calls (in-flight builds complete against the
  /// old entries); intended for test/bench isolation between phases.
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const V> value;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace xlv::util
