// OnceCache: a process-wide, thread-safe build-once/share-forever cache.
//
// The campaign layer derives several expensive immutable artifacts whose
// identity is fully captured by a string key: golden traces (analysis/
// golden_cache.h), flow stage prefixes (core/flow.h) and per-mutant results
// (analysis/mutant_cache.h). Sweep points that agree on a key must share one
// artifact; concurrent executor tasks racing for the same key must build it
// exactly once, with the losers blocking on the winner rather than
// duplicating work.
//
// Concurrency model: a mutex guards only the key -> entry map; each entry
// carries its own std::once_flag, so builds for *different* keys proceed in
// parallel while builds for the *same* key serialize through call_once. A
// build that throws leaves the once_flag unset (std::call_once semantics),
// so the next caller retries instead of caching the failure.
//
// Capacity: setCapacity(n) bounds the entry count with LRU eviction (a
// long-lived service sweeping an unbounded key set must not grow without
// limit — the ROADMAP eviction item). Eviction only drops completed
// entries; an in-flight build keeps its entry alive through the builder's
// own shared_ptr, so exactly-once still holds per *residency* — an evicted
// key rebuilds on its next request. Layer util::ArtifactStore underneath
// (util/artifact_store.h, getOrBuildWithStore) to turn those rebuilds into
// disk loads shared across processes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace xlv::util {

struct OnceCacheStats {
  std::size_t hits = 0;    ///< requests served from an already-present entry
  std::size_t misses = 0;  ///< requests that inserted the entry (and built it)
  std::size_t evictions = 0;  ///< completed entries dropped by the LRU cap
  double hitRate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <class V>
class OnceCache {
 public:
  /// Return the cached value for `key`, building it via `build` on first
  /// request. `wasHit`, when non-null, reports whether this call's work was
  /// served by a build it did not run itself (a waiter on an in-flight
  /// build counts as a hit: the work is not repeated). A caller that
  /// re-runs the build because an earlier attempt threw counts as a miss.
  std::shared_ptr<const V> getOrBuild(const std::string& key,
                                      const std::function<V()>& build,
                                      bool* wasHit = nullptr) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        it = entries_.emplace(key, std::make_shared<Entry>()).first;
      }
      entry = it->second;
      entry->lastUse = ++tick_;
      // Entries with callers inside call_once are never eviction victims;
      // the count also covers a build that THROWS (decremented in the
      // catch below), so a failed entry with no remaining callers becomes
      // evictable instead of pinning the map above its capacity forever.
      ++entry->activeCallers;
    }
    bool builtHere = false;
    try {
      std::call_once(entry->once, [&] {
        builtHere = true;
        auto value = std::make_shared<const V>(build());
        std::lock_guard<std::mutex> lock(mutex_);
        entry->value = std::move(value);
      });
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      --entry->activeCallers;
      // A failed build still inserted an entry: enforce the cap here too,
      // or a stream of distinct always-throwing keys would grow the map
      // unboundedly until some unrelated build succeeds.
      evictOverCapacityLocked(nullptr);
      throw;
    }
    if (wasHit != nullptr) *wasHit = !builtHere;
    // call_once synchronizes-with the winning build, so value is visible.
    std::lock_guard<std::mutex> lock(mutex_);
    --entry->activeCallers;
    if (builtHere) {
      ++misses_;
    } else {
      ++hits_;
    }
    entry->lastUse = ++tick_;
    if (builtHere) evictOverCapacityLocked(entry);
    return entry->value;
  }

  /// Peek without building; null when absent or still being built.
  std::shared_ptr<const V> find(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second->value;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// Bound the entry count (0 = unlimited, the default). Shrinking below the
  /// current size evicts immediately, least recently used first.
  void setCapacity(std::size_t maxEntries) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = maxEntries;
    evictOverCapacityLocked(nullptr);
  }

  OnceCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return OnceCacheStats{hits_, misses_, evictions_};
  }

  /// Drop all entries and reset the counters. Not linearizable with respect
  /// to concurrent getOrBuild calls (in-flight builds complete against the
  /// old entries); intended for test/bench isolation between phases.
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }

 private:
  struct Entry {
    std::once_flag once;
    std::shared_ptr<const V> value;
    std::uint64_t lastUse = 0;
    int activeCallers = 0;  ///< callers currently inside getOrBuild
  };

  /// Drop least-recently-used entries until within capacity. `keep` (the
  /// entry just built/requested) and entries with active callers (an
  /// in-flight build, or waiters about to read the value) are never
  /// victims; if only those remain, the cache temporarily exceeds the cap
  /// rather than corrupting an in-flight build. An idle entry whose build
  /// threw (value still null, nobody inside) IS evictable — the next
  /// request re-inserts and retries it.
  void evictOverCapacityLocked(const std::shared_ptr<Entry>& keep) {
    if (capacity_ == 0) return;
    while (entries_.size() > capacity_) {
      auto victim = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second == keep || it->second->activeCallers > 0) continue;
        if (victim == entries_.end() || it->second->lastUse < victim->second->lastUse) {
          victim = it;
        }
      }
      if (victim == entries_.end()) break;
      entries_.erase(victim);
      ++evictions_;
    }
  }

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::size_t capacity_ = 0;
  std::uint64_t tick_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace xlv::util
