#include "util/artifact_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fault_point.h"
#include "util/fnv.h"
#include "util/log.h"

namespace xlv::util {

namespace fs = std::filesystem;

namespace {

// Entry envelope (util/codec.h): the full key (hash-collision check) plus
// the payload and its fingerprint. Version-bump on any change so stale
// stores are dropped as corrupt instead of misread.
constexpr const char* kEntryTag = "artifact";
constexpr int kEntryVersion = 1;
constexpr const char* kEntrySuffix = ".art";
// Temp files carry this marker; a crashed writer's orphan is swept once it
// is old enough that no live writer can still own it.
constexpr const char* kTempMarker = ".art.tmp.";
constexpr auto kStaleTempAge = std::chrono::hours(1);

bool isTempFile(const fs::path& p) {
  return p.filename().string().find(kTempMarker) != std::string::npos;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::optional<std::string> readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in && !in.eof()) return std::nullopt;
  return ss.str();
}

}  // namespace

ArtifactStore::ArtifactStore(ArtifactStoreConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.dir.empty()) {
    throw std::runtime_error("artifact store: empty cache directory");
  }
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
  if (ec || !fs::is_directory(cfg_.dir)) {
    throw std::runtime_error("artifact store: cannot create directory '" + cfg_.dir +
                             "': " + ec.message());
  }
  // Sweep temp orphans left by crashed writers, expire aged entries and
  // take the initial byte census the capped store's running total starts
  // from.
  std::lock_guard<std::mutex> lock(mutex_);
  expireOldEntriesLocked();
  approxBytes_ = scanLocked(/*sweepStaleTemps=*/true);
}

std::string ArtifactStore::entryPath(std::string_view domain, const std::string& key) const {
  return (fs::path(cfg_.dir) / std::string(domain) / (hex64(fnv1a64(key)) + kEntrySuffix))
      .string();
}

std::optional<std::string> ArtifactStore::load(std::string_view domain,
                                               const std::string& key) {
  const std::string path = entryPath(domain, key);
  // File I/O runs without the mutex: rename() publication means a read
  // sees a whole entry or none, so the lock only needs to cover the
  // stats/census metadata — concurrent executor tasks must not serialize
  // their disk reads behind one another.
  std::optional<std::string> raw = readWholeFile(path);
  if (!raw) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return std::nullopt;
  }
  try {
    Decoder d(*raw, kEntryTag, kEntryVersion);
    const std::string storedKey = d.str("key");
    const std::uint64_t fingerprint = d.u64("fnv");
    std::string payload = d.str("payload");
    d.finish();
    if (storedKey != key) {
      // A different key hashing to the same file: a valid entry that is
      // simply not ours. Leave it in place (last writer owns the slot).
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return std::nullopt;
    }
    if (fnv1a64(payload) != fingerprint) {
      throw DecodeError("payload fingerprint mismatch");
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
    }
    // LRU recency: a hit makes the entry the freshest. Failures (entry
    // raced away by an eviction) are harmless — recency is advisory.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return payload;
  } catch (const DecodeError& e) {
    XLV_WARN("artifact") << "dropping corrupt entry " << path << ": " << e.what();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt;
    removeEntryLocked(path);
    ++stats_.misses;
    return std::nullopt;
  }
}

void ArtifactStore::store(std::string_view domain, const std::string& key,
                          std::string_view payload) {
  // Chaos hook: a "fail" skips the store (a later load is a plain miss and
  // rebuilds), a "short" publishes a truncated entry (the load-side FNV
  // check drops it and rebuilds) — both degrade to recomputation, never to
  // wrong results.
  const FaultAction fault = faultPoint("store.write");
  if (fault == FaultAction::Fail) return;

  const std::string path = entryPath(domain, key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return;

  Encoder e(kEntryTag, kEntryVersion);
  e.str("key", key);
  e.u64("fnv", fnv1a64(payload));
  e.str("payload", payload);
  std::string entry = e.take();
  if (fault == FaultAction::Short) entry.resize(entry.size() / 2);

  // Unique temp name per (process, write): the pid keeps concurrent shard
  // processes sharing one cache dir from colliding, the atomic sequence
  // keeps this process's threads apart, and rename() publishes atomically
  // — a reader sees the old entry, the new entry, or none, never a torn
  // one. Like load(), the write itself runs without the mutex.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "-" +
      std::to_string(static_cast<unsigned long long>(tempSeq_.fetch_add(1) + 1));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(entry.data(), static_cast<std::streamsize>(entry.size()))) {
      fs::remove(temp, ec);
      return;
    }
  }
  // A replaced entry's size leaves the census. file_size can fail even
  // after exists() (another process's eviction racing us); an errored size
  // must read as 0, not as uintmax_t(-1) collapsing the running total.
  std::uint64_t replacedBytes = 0;
  if (fs::exists(path, ec) && !ec) {
    const std::uintmax_t sz = fs::file_size(path, ec);
    if (!ec) replacedBytes = static_cast<std::uint64_t>(sz);
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stores;
  approxBytes_ += entry.size();
  approxBytes_ -= std::min<std::uint64_t>(approxBytes_, replacedBytes);
  // The running total makes the common case O(1); a full rescan (which
  // also resyncs the total against files other processes added or
  // removed) runs only when the cap looks crossed.
  if (cfg_.maxBytes != 0 && approxBytes_ > cfg_.maxBytes) evictOverCapLocked();
}

void ArtifactStore::dropCorrupt(std::string_view domain, const std::string& key) {
  const std::string path = entryPath(domain, key);
  std::lock_guard<std::mutex> lock(mutex_);
  XLV_WARN("artifact") << "dropping undecodable entry " << path;
  ++stats_.corrupt;
  // The preceding load() booked this entry as a hit, but the caller could
  // not use it: re-book it as a miss so warm-run ledgers (and the
  // --require-disk-hits guard built on them) cannot pass on entries that
  // were all rebuilt.
  if (stats_.hits > 0) {
    --stats_.hits;
    ++stats_.misses;
  }
  removeEntryLocked(path);
}

void ArtifactStore::removeEntryLocked(const std::string& path) {
  std::error_code ec;
  std::uint64_t bytes = 0;
  if (fs::exists(path, ec) && !ec) {
    const std::uintmax_t sz = fs::file_size(path, ec);
    if (!ec) bytes = static_cast<std::uint64_t>(sz);
  }
  if (fs::remove(path, ec) && !ec) {
    approxBytes_ -= std::min<std::uint64_t>(approxBytes_, bytes);
  }
}

std::uint64_t ArtifactStore::diskBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scanLocked(/*sweepStaleTemps=*/false);
}

std::uint64_t ArtifactStore::scanLocked(bool sweepStaleTemps) const {
  std::uint64_t total = 0;
  // The walk's error code is separate from the per-entry ones: a file
  // raced away by a sibling process's eviction mid-scan must neither abort
  // the walk nor contribute file_size's uintmax_t(-1) sentinel (which
  // would collapse the census and trigger spurious evictions).
  std::error_code walkEc;
  const auto now = fs::file_time_type::clock::now();
  for (fs::recursive_directory_iterator it(cfg_.dir, walkEc), end;
       !walkEc && it != end; it.increment(walkEc)) {
    std::error_code ec;
    if (!it->is_regular_file(ec) || ec) continue;
    if (isTempFile(it->path())) {
      // An orphan of a crashed writer: invisible to readers, but it eats
      // cache-dir space outside the byte cap — sweep it once it is too old
      // to belong to a live write.
      const auto mtime = it->last_write_time(ec);
      if (sweepStaleTemps && !ec && now - mtime > kStaleTempAge) {
        std::error_code rec;
        fs::remove(it->path(), rec);
      }
      continue;
    }
    if (it->path().extension() == kEntrySuffix) {
      const std::uintmax_t sz = it->file_size(ec);
      if (!ec) total += static_cast<std::uint64_t>(sz);
    }
  }
  return total;
}

void ArtifactStore::evictOverCapLocked() {
  struct EntryFile {
    fs::file_time_type mtime;
    std::string path;
    std::uint64_t size = 0;
  };
  std::vector<EntryFile> files;
  std::uint64_t total = 0;
  // Separate walk vs per-entry error codes, as in scanLocked: one raced-away
  // file must not abort the walk or poison the census.
  std::error_code walkEc;
  const auto now = fs::file_time_type::clock::now();
  for (fs::recursive_directory_iterator it(cfg_.dir, walkEc), end; !walkEc && it != end;
       it.increment(walkEc)) {
    std::error_code ec;
    if (!it->is_regular_file(ec) || ec) continue;
    if (isTempFile(it->path())) {
      const auto mtime = it->last_write_time(ec);
      if (!ec && now - mtime > kStaleTempAge) {
        std::error_code rec;
        fs::remove(it->path(), rec);
      }
      continue;
    }
    if (it->path().extension() != kEntrySuffix) continue;
    EntryFile f;
    f.path = it->path().string();
    f.size = it->file_size(ec);
    f.mtime = it->last_write_time(ec);
    if (ec) continue;
    total += f.size;
    files.push_back(std::move(f));
  }
  if (total > cfg_.maxBytes) {
    // Oldest first; path tiebreak keeps the order deterministic on coarse
    // mtime filesystems. Evict below a LOW-WATER mark (7/8 of the cap):
    // stopping at exactly the cap would leave the very next store to
    // re-cross it and rescan, i.e. one full directory walk per write in
    // steady state.
    const std::uint64_t lowWater = cfg_.maxBytes - cfg_.maxBytes / 8;
    std::sort(files.begin(), files.end(), [](const EntryFile& a, const EntryFile& b) {
      return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
    });
    for (const EntryFile& f : files) {
      if (total <= lowWater) break;
      std::error_code rec;
      if (fs::remove(f.path, rec) && !rec) {
        total -= f.size;
        ++stats_.evictions;
      }
    }
  }
  // The scan is ground truth (other processes may have added or evicted
  // entries since our last census): resync the running total.
  approxBytes_ = total;
}

std::size_t ArtifactStore::expireOldEntriesLocked() {
  if (cfg_.maxAgeSeconds == 0) return 0;
  std::size_t removed = 0;
  const auto cutoff =
      fs::file_time_type::clock::now() - std::chrono::seconds(cfg_.maxAgeSeconds);
  std::error_code walkEc;
  for (fs::recursive_directory_iterator it(cfg_.dir, walkEc), end; !walkEc && it != end;
       it.increment(walkEc)) {
    std::error_code ec;
    if (!it->is_regular_file(ec) || ec) continue;
    if (isTempFile(it->path()) || it->path().extension() != kEntrySuffix) continue;
    const auto mtime = it->last_write_time(ec);
    if (ec || mtime >= cutoff) continue;
    // No approxBytes_ bookkeeping here: both callers rescan the census
    // right after the expiry pass.
    std::error_code rec;
    if (fs::remove(it->path(), rec) && !rec) {
      ++stats_.expired;
      ++removed;
    }
  }
  return removed;
}

std::size_t ArtifactStore::gc() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t evictionsBefore = stats_.evictions;
  const std::size_t expired = expireOldEntriesLocked();
  approxBytes_ = scanLocked(/*sweepStaleTemps=*/true);
  if (cfg_.maxBytes != 0 && approxBytes_ > cfg_.maxBytes) evictOverCapLocked();
  return expired + (stats_.evictions - evictionsBefore);
}

ArtifactStoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ArtifactStore::resetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = ArtifactStoreStats{};
}

// --- process-wide store ------------------------------------------------------

namespace {

std::unique_ptr<ArtifactStore>& processStoreSlot() {
  static std::unique_ptr<ArtifactStore> store;
  return store;
}

}  // namespace

ArtifactStore* processArtifactStore() noexcept { return processStoreSlot().get(); }

void configureProcessArtifactStore(const std::optional<ArtifactStoreConfig>& cfg) {
  if (!cfg) {
    processStoreSlot().reset();
    return;
  }
  processStoreSlot() = std::make_unique<ArtifactStore>(*cfg);
  XLV_INFO("artifact") << "cache dir '" << cfg->dir << "'"
                       << (cfg->maxBytes > 0
                               ? " (cap " + std::to_string(cfg->maxBytes) + " bytes)"
                               : std::string(" (unbounded)"));
}

}  // namespace xlv::util
