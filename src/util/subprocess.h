// Child-process management for toolchain invocations and worker pools.
//
// Two layers:
//   * runCommandCapture — the original blocking runner (the native
//     simulation backend shells out to the system C++ compiler): POSIX
//     fork/execvp with stdout+stderr captured into one string.
//   * Subprocess — an asynchronous child handle for long-lived workers
//     (campaign/dispatch.h): stdin/stdout pipes for a frame protocol,
//     non-blocking liveness polling via waitpid(WNOHANG), signal delivery
//     (SIGKILL on heartbeat timeout) and guaranteed reaping on destruction,
//     so a dispatcher owning N workers never leaks zombies.
#pragma once

#include <sys/types.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xlv::util {

struct SubprocessResult {
  /// False when the child could not be spawned at all (fork/exec failure,
  /// command not found). exitCode/output are meaningless then.
  bool started = false;
  /// Child exit code; -1 when it terminated abnormally (signal).
  int exitCode = -1;
  /// Combined stdout+stderr of the child.
  std::string output;

  bool ok() const noexcept { return started && exitCode == 0; }
};

/// Run `argv` (argv[0] resolved through PATH) and wait for it to finish.
/// Never throws; a spawn failure reports started == false.
SubprocessResult runCommandCapture(const std::vector<std::string>& argv);

/// Put `fd` into O_NONBLOCK mode (preserving the other status flags).
/// The dispatcher and the campaign server switch every worker/client fd to
/// non-blocking and buffer outbound bytes per connection, so one peer with
/// a full pipe can never wedge the single-threaded poll loop. Returns false
/// when fcntl fails (bad fd).
bool setNonBlocking(int fd) noexcept;

/// Extra environment entries set in the child after fork (inheriting the
/// parent environment otherwise); the dispatcher uses this for per-worker
/// coordinates (XLV_WORKER_INDEX / XLV_WORKER_GENERATION).
using SubprocessEnv = std::vector<std::pair<std::string, std::string>>;

/// Asynchronous child process with piped stdin/stdout (stderr is inherited
/// so worker diagnostics land on the parent's stderr). Move-only; the
/// destructor SIGKILLs and reaps a still-running child.
class Subprocess {
 public:
  Subprocess() = default;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  /// Fork/execvp `argv` (argv[0] resolved through PATH) with pipes on the
  /// child's stdin and stdout. Never throws; on failure the returned handle
  /// reports started() == false.
  static Subprocess spawn(const std::vector<std::string>& argv,
                          const SubprocessEnv& extraEnv = {});

  bool started() const noexcept { return pid_ > 0; }
  pid_t pid() const noexcept { return pid_; }

  /// Pipe ends owned by the parent: write tasks into stdinFd, poll/read
  /// frames from stdoutFd. -1 once closed (or when spawn failed).
  int stdinFd() const noexcept { return stdinFd_; }
  int stdoutFd() const noexcept { return stdoutFd_; }

  /// Write all bytes to the child's stdin. Returns false on any error
  /// (notably EPIPE after the child died) — callers treat that as a dead
  /// worker, never a crash.
  bool writeAll(std::string_view data) noexcept;
  /// Close the child's stdin (EOF = clean shutdown request for workers).
  void closeStdin() noexcept;

  /// Non-blocking liveness check (waitpid WNOHANG). Once this returns
  /// false, exitCode()/termSignal() describe how the child ended.
  bool running() noexcept;
  /// Deliver a signal; no-op once the child was reaped.
  void kill(int signal) noexcept;
  /// Block until the child exits (reaping it), then return exitCode().
  int wait() noexcept;

  /// After the child was reaped: its exit code, or -1 when it was
  /// terminated by a signal (see termSignal()).
  int exitCode() const noexcept { return exitCode_; }
  /// Terminating signal number, or 0 when the child exited normally.
  int termSignal() const noexcept { return termSignal_; }

 private:
  void reapStatus(int status) noexcept;
  void closeFds() noexcept;

  pid_t pid_ = -1;
  int stdinFd_ = -1;
  int stdoutFd_ = -1;
  bool reaped_ = false;
  int exitCode_ = -1;
  int termSignal_ = 0;
};

}  // namespace xlv::util
