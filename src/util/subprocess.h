// Minimal child-process runner for toolchain invocations (the native
// simulation backend shells out to the system C++ compiler). POSIX
// fork/execvp with stdout+stderr captured into one string — enough to probe
// `cc --version` and to surface compile diagnostics in a warning, without
// pulling in a process-management dependency.
#pragma once

#include <string>
#include <vector>

namespace xlv::util {

struct SubprocessResult {
  /// False when the child could not be spawned at all (fork/exec failure,
  /// command not found). exitCode/output are meaningless then.
  bool started = false;
  /// Child exit code; -1 when it terminated abnormally (signal).
  int exitCode = -1;
  /// Combined stdout+stderr of the child.
  std::string output;

  bool ok() const noexcept { return started && exitCode == 0; }
};

/// Run `argv` (argv[0] resolved through PATH) and wait for it to finish.
/// Never throws; a spawn failure reports started == false.
SubprocessResult runCommandCapture(const std::vector<std::string>& argv);

}  // namespace xlv::util
