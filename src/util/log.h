// Minimal leveled logging for the xlv libraries.
//
// Logging in a simulation kernel must be cheap when disabled: the macros below
// compile to a level check plus a lazily-formatted message. The default level
// is Warn so that simulators stay silent in benchmarks.
#pragma once

#include <sstream>
#include <string>

namespace xlv::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log level. Reads and writes are atomic (campaign workers log
/// concurrently); benchmarks still set this once at startup.
LogLevel logLevel() noexcept;
void setLogLevel(LogLevel lvl) noexcept;

/// Emit one log line (already formatted) at the given level.
void logLine(LogLevel lvl, const std::string& component, const std::string& msg);

namespace detail {
/// Stream-building helper so call sites can write `logf(...) << "x=" << x;`.
class LogStream {
 public:
  LogStream(LogLevel lvl, std::string component) : lvl_(lvl), component_(std::move(component)) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { logLine(lvl_, component_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

inline bool logEnabled(LogLevel lvl) noexcept { return lvl >= logLevel(); }

}  // namespace xlv::util

#define XLV_LOG(lvl, component)                  \
  if (!::xlv::util::logEnabled(lvl)) {           \
  } else                                         \
    ::xlv::util::detail::LogStream(lvl, component)

#define XLV_TRACE(component) XLV_LOG(::xlv::util::LogLevel::Trace, component)
#define XLV_DEBUG(component) XLV_LOG(::xlv::util::LogLevel::Debug, component)
#define XLV_INFO(component) XLV_LOG(::xlv::util::LogLevel::Info, component)
#define XLV_WARN(component) XLV_LOG(::xlv::util::LogLevel::Warn, component)
#define XLV_ERROR(component) XLV_LOG(::xlv::util::LogLevel::Error, component)
