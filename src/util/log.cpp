#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace xlv::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel logLevel() noexcept { return g_level.load(std::memory_order_relaxed); }
void setLogLevel(LogLevel lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }

void logLine(LogLevel lvl, const std::string& component, const std::string& msg) {
  // One fprintf call per line keeps concurrent workers' lines unscrambled.
  std::fprintf(stderr, "[%s] %s: %s\n", levelName(lvl), component.c_str(), msg.c_str());
}

}  // namespace xlv::util
