#include "util/log.h"

#include <cstdio>

namespace xlv::util {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* levelName(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel logLevel() noexcept { return g_level; }
void setLogLevel(LogLevel lvl) noexcept { g_level = lvl; }

void logLine(LogLevel lvl, const std::string& component, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s: %s\n", levelName(lvl), component.c_str(), msg.c_str());
}

}  // namespace xlv::util
