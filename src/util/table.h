// Plain-text table rendering for the benchmark binaries: every bench prints
// the same rows/columns as the corresponding table in the paper.
#pragma once

#include <string>
#include <vector>

namespace xlv::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void addRow(std::vector<std::string> row);
  /// Insert a horizontal separator before the next row.
  void addSeparator();

  /// Render with column alignment; numbers right-aligned heuristically.
  std::string render() const;

  static std::string fixed(double v, int digits);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace xlv::util
