#include "util/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace xlv::util {

SubprocessResult runCommandCapture(const std::vector<std::string>& argv) {
  SubprocessResult res;
  if (argv.empty()) return res;

  int pipefd[2];
  if (pipe(pipefd) != 0) return res;

  const pid_t pid = fork();
  if (pid < 0) {
    close(pipefd[0]);
    close(pipefd[1]);
    return res;
  }
  if (pid == 0) {
    // Child: stdout+stderr into the pipe, stdin from /dev/null.
    dup2(pipefd[1], STDOUT_FILENO);
    dup2(pipefd[1], STDERR_FILENO);
    close(pipefd[0]);
    close(pipefd[1]);
    const int devnull = open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      dup2(devnull, STDIN_FILENO);
      close(devnull);
    }
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    execvp(args[0], args.data());
    _exit(127);  // exec failed (command not found)
  }

  close(pipefd[1]);
  res.started = true;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(pipefd[0], buf, sizeof buf);
    if (n > 0) {
      res.output.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0 || errno != EINTR) {
      break;
    }
  }
  close(pipefd[0]);

  int status = 0;
  pid_t waited;
  do {
    waited = waitpid(pid, &status, 0);
  } while (waited < 0 && errno == EINTR);
  if (waited == pid && WIFEXITED(status)) {
    res.exitCode = WEXITSTATUS(status);
    // execvp failure in the child surfaces as exit 127 with no output;
    // report it as "not started" so callers treat a missing compiler the
    // same as an unspawnable one.
    if (res.exitCode == 127 && res.output.empty()) res.started = false;
  } else {
    res.exitCode = -1;
  }
  return res;
}

bool setNonBlocking(int fd) noexcept {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// --- Subprocess --------------------------------------------------------------

Subprocess::Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this == &other) return *this;
  // Dispose of whatever this handle owned before adopting the other's child.
  if (started() && !reaped_) {
    kill(SIGKILL);
    wait();
  }
  closeFds();
  pid_ = other.pid_;
  stdinFd_ = other.stdinFd_;
  stdoutFd_ = other.stdoutFd_;
  reaped_ = other.reaped_;
  exitCode_ = other.exitCode_;
  termSignal_ = other.termSignal_;
  other.pid_ = -1;
  other.stdinFd_ = -1;
  other.stdoutFd_ = -1;
  other.reaped_ = true;
  return *this;
}

Subprocess::~Subprocess() {
  if (started() && !reaped_) {
    kill(SIGKILL);
    wait();
  }
  closeFds();
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const SubprocessEnv& extraEnv) {
  Subprocess p;
  if (argv.empty()) return p;

  int inPipe[2], outPipe[2];  // parent -> child stdin, child stdout -> parent
  if (pipe(inPipe) != 0) return p;
  if (pipe(outPipe) != 0) {
    close(inPipe[0]);
    close(inPipe[1]);
    return p;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    close(inPipe[0]);
    close(inPipe[1]);
    close(outPipe[0]);
    close(outPipe[1]);
    return p;
  }
  if (pid == 0) {
    // Child: stdin from the in-pipe, stdout into the out-pipe; stderr
    // inherited so worker diagnostics surface on the parent's stderr.
    dup2(inPipe[0], STDIN_FILENO);
    dup2(outPipe[1], STDOUT_FILENO);
    close(inPipe[0]);
    close(inPipe[1]);
    close(outPipe[0]);
    close(outPipe[1]);
    for (const auto& [name, value] : extraEnv) {
      setenv(name.c_str(), value.c_str(), 1);
    }
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    execvp(args[0], args.data());
    _exit(127);  // exec failed (command not found)
  }

  close(inPipe[0]);
  close(outPipe[1]);
  p.pid_ = pid;
  p.stdinFd_ = inPipe[1];
  p.stdoutFd_ = outPipe[0];
  p.reaped_ = false;
  return p;
}

bool Subprocess::writeAll(std::string_view data) noexcept {
  if (stdinFd_ < 0) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(stdinFd_, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return false;  // EPIPE (child died) or other write failure
    }
  }
  return true;
}

void Subprocess::closeStdin() noexcept {
  if (stdinFd_ >= 0) {
    close(stdinFd_);
    stdinFd_ = -1;
  }
}

bool Subprocess::running() noexcept {
  if (!started() || reaped_) return false;
  int status = 0;
  const pid_t r = waitpid(pid_, &status, WNOHANG);
  if (r == 0) return true;
  if (r == pid_) reapStatus(status);
  // r < 0 (ECHILD — already reaped elsewhere): treat as gone.
  if (r < 0) reaped_ = true;
  return false;
}

void Subprocess::kill(int signal) noexcept {
  if (started() && !reaped_) ::kill(pid_, signal);
}

int Subprocess::wait() noexcept {
  if (!started()) return -1;
  if (!reaped_) {
    int status = 0;
    pid_t r;
    do {
      r = waitpid(pid_, &status, 0);
    } while (r < 0 && errno == EINTR);
    if (r == pid_) {
      reapStatus(status);
    } else {
      reaped_ = true;
    }
  }
  return exitCode_;
}

void Subprocess::reapStatus(int status) noexcept {
  reaped_ = true;
  if (WIFEXITED(status)) {
    exitCode_ = WEXITSTATUS(status);
    termSignal_ = 0;
  } else if (WIFSIGNALED(status)) {
    exitCode_ = -1;
    termSignal_ = WTERMSIG(status);
  }
}

void Subprocess::closeFds() noexcept {
  closeStdin();
  if (stdoutFd_ >= 0) {
    close(stdoutFd_);
    stdoutFd_ = -1;
  }
}

}  // namespace xlv::util
