#include "util/subprocess.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xlv::util {

SubprocessResult runCommandCapture(const std::vector<std::string>& argv) {
  SubprocessResult res;
  if (argv.empty()) return res;

  int pipefd[2];
  if (pipe(pipefd) != 0) return res;

  const pid_t pid = fork();
  if (pid < 0) {
    close(pipefd[0]);
    close(pipefd[1]);
    return res;
  }
  if (pid == 0) {
    // Child: stdout+stderr into the pipe, stdin from /dev/null.
    dup2(pipefd[1], STDOUT_FILENO);
    dup2(pipefd[1], STDERR_FILENO);
    close(pipefd[0]);
    close(pipefd[1]);
    const int devnull = open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      dup2(devnull, STDIN_FILENO);
      close(devnull);
    }
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    execvp(args[0], args.data());
    _exit(127);  // exec failed (command not found)
  }

  close(pipefd[1]);
  res.started = true;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(pipefd[0], buf, sizeof buf);
    if (n > 0) {
      res.output.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0 || errno != EINTR) {
      break;
    }
  }
  close(pipefd[0]);

  int status = 0;
  pid_t waited;
  do {
    waited = waitpid(pid, &status, 0);
  } while (waited < 0 && errno == EINTR);
  if (waited == pid && WIFEXITED(status)) {
    res.exitCode = WEXITSTATUS(status);
    // execvp failure in the child surfaces as exit 127 with no output;
    // report it as "not started" so callers treat a missing compiler the
    // same as an unspawnable one.
    if (res.exitCode == 127 && res.output.empty()) res.started = false;
  } else {
    res.exitCode = -1;
  }
  return res;
}

}  // namespace xlv::util
