// Streaming statistics accumulators used by the benchmark harness and the
// mutation-analysis reports.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace xlv::util {

/// Welford-style running mean / variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers percentile queries (used to report simulation
/// time distributions, as the paper averages over multiple runs).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  /// q in [0,1]; linear interpolation between closest ranks.
  double percentile(double q) const;
  double min() const;
  double max() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensureSorted() const;
};

}  // namespace xlv::util
