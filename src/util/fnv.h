// FNV-1a 64-bit hashing, shared by the cache-key builders (golden traces,
// flow prefixes). Not cryptographic — collision resistance is "64 bits over
// canonical serializations", which is the usual content-addressing trade.
#pragma once

#include <cstdint>
#include <string_view>

namespace xlv::util {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a64(std::string_view data,
                             std::uint64_t h = kFnvOffset) noexcept {
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Mix an integer into the hash byte-by-byte (endianness-independent).
inline std::uint64_t fnv1a64Mix(std::uint64_t v, std::uint64_t h) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace xlv::util
