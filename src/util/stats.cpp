#include "util/stats.h"

#include <cmath>
#include <stdexcept>

namespace xlv::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void SampleSet::ensureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) throw std::out_of_range("SampleSet::percentile on empty set");
  ensureSorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::min() const {
  if (samples_.empty()) throw std::out_of_range("SampleSet::min on empty set");
  ensureSorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) throw std::out_of_range("SampleSet::max on empty set");
  ensureSorted();
  return samples_.back();
}

}  // namespace xlv::util
